package wrsn_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun builds and executes every runnable example end to end.
// This is the "does the public API actually drive" check; skipped in
// -short runs because each example takes a second or two.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take seconds each")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	if len(entries) < 3 {
		t.Fatalf("want at least 3 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s did not finish in 120s", name)
			}
			if runErr != nil {
				t.Fatalf("example failed: %v\n%s", runErr, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Fatalf("example produced no output")
			}
		})
	}
}
