package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wrsn"
	"wrsn/internal/model"
)

// fixture writes a small solved instance to disk and returns the problem
// path and the solution JSON.
func fixture(t *testing.T) (problemPath, solutionJSON string) {
	t.Helper()
	field := wrsn.Square(200)
	rng := rand.New(rand.NewSource(5))
	var p *wrsn.Problem
	for attempt := 0; ; attempt++ {
		p = &wrsn.Problem{
			Posts:    field.RandomPoints(rng, 10),
			BS:       field.Corner(),
			Nodes:    40,
			Energy:   wrsn.DefaultEnergyModel(),
			Charging: wrsn.DefaultChargingModel(),
		}
		if p.Validate() == nil {
			break
		}
		if attempt > 500 {
			t.Fatal("no connected instance")
		}
	}
	res, err := wrsn.SolveIterativeRFH(p)
	if err != nil {
		t.Fatal(err)
	}
	var pb, sb bytes.Buffer
	if err := model.WriteProblem(&pb, p); err != nil {
		t.Fatal(err)
	}
	if err := model.WriteSolution(&sb, &res.Solution); err != nil {
		t.Fatal(err)
	}
	problemPath = filepath.Join(t.TempDir(), "problem.json")
	if err := os.WriteFile(problemPath, pb.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	return problemPath, sb.String()
}

func TestSimRunWithCharger(t *testing.T) {
	problemPath, solution := fixture(t)
	tracePath := filepath.Join(t.TempDir(), "trace.csv")
	var out bytes.Buffer
	err := run([]string{
		"-problem", problemPath,
		"-rounds", "2000",
		"-charger-power", "1e8",
		"-charger-speed", "100",
		"-policy", "tour",
		"-trace", tracePath,
		"-trace-every", "100",
	}, strings.NewReader(solution), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, frag := range []string{"simulated 2000 rounds", "delivery:", "empirical cost:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q:\n%s", frag, s)
		}
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if lines := strings.Count(string(trace), "\n"); lines != 21 { // header + 20 samples
		t.Errorf("trace has %d lines, want 21:\n%s", lines, trace)
	}
}

func TestSimNoCharger(t *testing.T) {
	problemPath, solution := fixture(t)
	var out bytes.Buffer
	err := run([]string{
		"-problem", problemPath,
		"-rounds", "8000",
		"-no-charger",
	}, strings.NewReader(solution), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "first loss:") {
		t.Errorf("chargerless run should report first loss:\n%s", s)
	}
	if strings.Contains(s, "charger disseminated") {
		t.Errorf("chargerless run printed charger stats:\n%s", s)
	}
}

func TestSimFlagValidation(t *testing.T) {
	if err := run([]string{"-rounds", "10"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("missing -problem accepted")
	}
	problemPath, solution := fixture(t)
	err := run([]string{"-problem", problemPath, "-policy", "psychic"},
		strings.NewReader(solution), &bytes.Buffer{})
	if err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestSimFleetAndLinkLossFlags(t *testing.T) {
	problemPath, solution := fixture(t)
	var out bytes.Buffer
	err := run([]string{
		"-problem", problemPath,
		"-rounds", "1500",
		"-chargers", "2",
		"-link-loss", "0.1",
		"-max-retries", "16",
		"-charger-power", "1e8",
		"-charger-speed", "50",
	}, strings.NewReader(solution), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "simulated 1500 rounds") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
	// Short runs start from full batteries, so no steady-state cost
	// assertion here (internal/sim pins the 1/(1-p) inflation); the run
	// must simply report charger stats and full delivery.
	if !strings.Contains(out.String(), "delivery:             100.00%") {
		t.Errorf("expected full delivery with ample retries:\n%s", out.String())
	}
}
