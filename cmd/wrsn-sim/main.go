// Command wrsn-sim runs the round-based network + mobile-charger
// simulator on a solved instance and reports delivery, energy and charger
// metrics, optionally streaming a per-round CSV trace.
//
// Typical pipeline:
//
//	wrsn-plan gen -posts 25 -nodes 100 -side 300 > problem.json
//	wrsn-plan solve -algo rfh < problem.json > solution.json
//	wrsn-sim -problem problem.json -rounds 20000 -policy tour \
//	         -trace trace.csv < solution.json
//
// Omitting -solution/-stdin solving is deliberate: the simulator checks a
// *given* plan, it never plans itself.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wrsn/internal/model"
	"wrsn/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("wrsn-sim", flag.ContinueOnError)
	var (
		problemPath = fs.String("problem", "", "path to the problem JSON (required)")
		rounds      = fs.Int("rounds", 10000, "reporting rounds to simulate")
		packetBits  = fs.Int("packet-bits", 1000, "bits per report")
		battery     = fs.Float64("battery", 0, "battery capacity per node in nJ (0 = auto)")
		noCharger   = fs.Bool("no-charger", false, "disable the charger (lifetime study)")
		power       = fs.Float64("charger-power", 5e7, "charger dissemination per round while parked (nJ)")
		speed       = fs.Float64("charger-speed", 25, "charger travel speed (m per round)")
		policy      = fs.String("policy", "urgency", "charger policy: urgency, round-robin or tour")
		chargers    = fs.Int("chargers", 1, "number of chargers in the fleet")
		failure     = fs.Float64("failure-rate", 0, "per-node per-round probability of a permanent failure")
		transRate   = fs.Float64("transient-rate", 0, "per-node per-round probability of a transient outage")
		transMean   = fs.Float64("transient-mean", 50, "mean transient outage length in rounds (exponential)")
		outageRate  = fs.Float64("outage-rate", 0, "per-round probability of a spatially correlated post outage")
		outageRad   = fs.Float64("outage-radius", 0, "correlated-outage blast radius in meters")
		chFailure   = fs.Float64("charger-failure", 0, "per-charger per-round breakdown probability")
		chRepair    = fs.Int("charger-repair", 200, "rounds a broken charger stays out of service")
		killPosts   = fs.String("kill-post", "", "deterministic post kills as round:post pairs, e.g. 1000:3,2500:7")
		repair      = fs.Bool("repair", false, "enable online routing-tree repair after post deaths")
		repairLat   = fs.Int("repair-latency", 0, "rounds between detecting a dead post and the patched tree taking effect")
		linkLoss    = fs.Float64("link-loss", 0, "per-attempt transmission loss probability")
		retries     = fs.Int("max-retries", 8, "retransmission attempts per report per hop")
		seed        = fs.Int64("seed", 1, "simulation random seed")
		tracePath   = fs.String("trace", "", "write a per-round CSV trace to this file")
		traceEvery  = fs.Int("trace-every", 100, "trace sampling interval in rounds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *problemPath == "" {
		return fmt.Errorf("-problem is required")
	}
	pf, err := os.Open(*problemPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	p, err := model.ReadProblem(pf)
	if err != nil {
		return err
	}
	sol, err := model.ReadSolution(stdin)
	if err != nil {
		return err
	}

	cfg := sim.Config{
		Problem:         p,
		Solution:        *sol,
		PacketBits:      *packetBits,
		BatteryCapacity: *battery,
		LinkLossProb:    *linkLoss,
		MaxRetries:      *retries,
		Seed:            *seed,
	}
	schedule, err := parseKillSchedule(*killPosts)
	if err != nil {
		return err
	}
	if *failure > 0 || *transRate > 0 || *outageRate > 0 || *chFailure > 0 || len(schedule) > 0 {
		cfg.Faults = &sim.FaultConfig{
			NodeFailurePerRound:    *failure,
			TransientPerRound:      *transRate,
			TransientMeanRounds:    *transMean,
			PostOutagePerRound:     *outageRate,
			OutageRadius:           *outageRad,
			ChargerFailurePerRound: *chFailure,
			ChargerRepairRounds:    *chRepair,
			Schedule:               schedule,
		}
	}
	if *repair {
		cfg.Repair = &sim.RepairConfig{LatencyRounds: *repairLat}
	}
	if !*noCharger {
		cfg.Charger = &sim.ChargerConfig{
			PowerPerRound: *power,
			SpeedPerRound: *speed,
			Policy:        sim.ChargerPolicy(*policy),
		}
		cfg.Chargers = *chargers
	}
	s, err := sim.New(cfg)
	if err != nil {
		return err
	}

	var tracer *sim.CSVTracer
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer tf.Close()
		tracer = sim.NewCSVTracer(tf, *traceEvery)
		s.SetTracer(tracer)
	}

	metrics, err := s.Run(*rounds)
	if err != nil {
		return err
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}

	analytic, err := s.AnalyticCostPerBitRound()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "simulated %d rounds (%d posts, %d nodes)\n", metrics.Rounds, p.N(), p.Nodes)
	fmt.Fprintf(stdout, "  delivery:             %.2f%% (%d delivered, %d lost)\n",
		metrics.DeliveryRatio()*100, metrics.ReportsDelivered, metrics.ReportsLost)
	if metrics.FirstLossRound >= 0 {
		fmt.Fprintf(stdout, "  first loss:           round %d\n", metrics.FirstLossRound)
	}
	fmt.Fprintf(stdout, "  network consumed:     %.3f mJ\n", metrics.NetworkEnergy/1e6)
	if !*noCharger {
		fmt.Fprintf(stdout, "  charger disseminated: %.3f mJ over %d visits, %.0f m travelled\n",
			metrics.ChargerEnergy/1e6, metrics.ChargerVisits, metrics.ChargerDistance)
		empirical := metrics.EmpiricalCostPerBitRound(*packetBits)
		fmt.Fprintf(stdout, "  empirical cost:       %.4f nJ per bit-round (analytic %.4f, deviation %+.2f%%)\n",
			empirical, analytic, (empirical/analytic-1)*100)
	}
	if metrics.NodeFailures > 0 || metrics.TransientFaults > 0 || metrics.ChargerBreakdowns > 0 {
		fmt.Fprintf(stdout, "  injected faults:      %d permanent, %d transient, %d outages, %d charger breakdowns\n",
			metrics.NodeFailures, metrics.TransientFaults, metrics.CorrelatedOutages, metrics.ChargerBreakdowns)
	}
	if metrics.PostsDead > 0 {
		fmt.Fprintf(stdout, "  degradation:          %d posts dead, %d stranded\n", metrics.PostsDead, metrics.StrandedPosts)
		if metrics.FirstPartitionRound >= 0 {
			fmt.Fprintf(stdout, "  first partition:      round %d\n", metrics.FirstPartitionRound)
		}
	}
	if *repair {
		fmt.Fprintf(stdout, "  repairs:              %d applied, mean latency %.1f rounds\n",
			metrics.Repairs, metrics.MeanRepairLatency())
		if metrics.Repairs > 0 {
			fmt.Fprintf(stdout, "  post-repair cost:     %.4f nJ per bit-round (%+.2f%% vs plan)\n",
				metrics.DegradedCost, metrics.RepairCostInflation*100)
		}
	}
	return nil
}

// parseKillSchedule turns "round:post,round:post,..." into deterministic
// kill-post fault events. An empty spec yields an empty schedule.
func parseKillSchedule(spec string) (sim.FaultSchedule, error) {
	if spec == "" {
		return nil, nil
	}
	var schedule sim.FaultSchedule
	for _, part := range strings.Split(spec, ",") {
		var round, post int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d:%d", &round, &post); err != nil {
			return nil, fmt.Errorf("bad -kill-post entry %q (want round:post): %w", part, err)
		}
		schedule = append(schedule, sim.FaultEvent{Round: round, Kind: sim.FaultKillPost, Post: post})
	}
	return schedule, nil
}
