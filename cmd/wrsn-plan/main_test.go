package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// gen produces a small connected problem JSON for the other subcommands.
func gen(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	full := append([]string{"gen", "-side", "200", "-posts", "8", "-nodes", "24", "-seed", "3"}, args...)
	if err := run(full, strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	return out.String()
}

func TestGenProducesValidProblem(t *testing.T) {
	problem := gen(t)
	if !strings.Contains(problem, `"posts"`) || !strings.Contains(problem, `"nodes": 24`) {
		t.Fatalf("unexpected gen output: %s", problem)
	}
}

func TestSolveAndCheckRoundTrip(t *testing.T) {
	problem := gen(t)
	problemPath := filepath.Join(t.TempDir(), "problem.json")
	if err := os.WriteFile(problemPath, []byte(problem), 0o600); err != nil {
		t.Fatal(err)
	}

	for _, algo := range []string{"rfh", "basic-rfh", "idb", "local-search", "anneal", "auto", "optimal"} {
		t.Run(algo, func(t *testing.T) {
			var solution, summary bytes.Buffer
			err := run([]string{"solve", "-algo", algo, "-summary"},
				strings.NewReader(problem), &solution, &summary)
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if !strings.Contains(summary.String(), "8 posts, 24 nodes") {
				t.Errorf("summary missing header: %s", summary.String())
			}

			var checkOut bytes.Buffer
			err = run([]string{"check", "-problem", problemPath, "-map"},
				bytes.NewReader(solution.Bytes()), &checkOut, &bytes.Buffer{})
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			out := checkOut.String()
			if !strings.Contains(out, "solution valid") {
				t.Errorf("check did not validate: %s", out)
			}
			if !strings.Contains(out, "@") || !strings.Contains(out, "BS") {
				t.Errorf("check -map missing renderings: %s", out)
			}
		})
	}
}

func TestSolveRejectsUnknownAlgorithm(t *testing.T) {
	problem := gen(t)
	err := run([]string{"solve", "-algo", "quantum"},
		strings.NewReader(problem), &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCheckDetectsTamperedCost(t *testing.T) {
	problem := gen(t)
	problemPath := filepath.Join(t.TempDir(), "problem.json")
	if err := os.WriteFile(problemPath, []byte(problem), 0o600); err != nil {
		t.Fatal(err)
	}
	var solution bytes.Buffer
	if err := run([]string{"solve", "-algo", "rfh"}, strings.NewReader(problem), &solution, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(solution.String(), `"cost_nj": `, `"cost_nj": 1e9, "ignored": `, 1)
	if tampered == solution.String() {
		t.Fatalf("could not tamper with solution: %s", solution.String())
	}
	err := run([]string{"check", "-problem", problemPath},
		strings.NewReader(tampered), &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Errorf("tampered cost not detected: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("no-arg invocation accepted")
	}
	if err := run([]string{"frobnicate"}, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"check"}, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("check without -problem accepted")
	}
}

func TestCompareSubcommand(t *testing.T) {
	problem := gen(t)
	var out bytes.Buffer
	err := run([]string{"compare", "-optimal"},
		strings.NewReader(problem), &out, &bytes.Buffer{})
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	s := out.String()
	for _, frag := range []string{
		"solver comparison: 8 posts, 24 nodes",
		"basic-rfh", "idb", "local-search", "anneal", "optimal",
		"vs best (%)",
		"best solution:",
		"bottleneck:",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("compare output missing %q:\n%s", frag, s)
		}
	}
	// With -optimal included, no solver may sit below 0% vs best.
	if strings.Contains(s, "-0.0") {
		t.Errorf("negative gap vs best:\n%s", s)
	}
}

func TestGenErrorPaths(t *testing.T) {
	var out bytes.Buffer
	// Hopeless geometry: 3 posts in a 5km field cannot connect.
	err := run([]string{"gen", "-side", "5000", "-posts", "3", "-nodes", "6", "-seed", "1"},
		strings.NewReader(""), &out, &bytes.Buffer{})
	if err == nil {
		t.Error("disconnected geometry accepted")
	}
	if err := run([]string{"gen", "-levels", "0"}, strings.NewReader(""), &out, &bytes.Buffer{}); err == nil {
		t.Error("zero power levels accepted")
	}
}

func TestSolveRejectsMalformedProblem(t *testing.T) {
	err := run([]string{"solve"}, strings.NewReader("{not json"), &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil {
		t.Error("malformed problem JSON accepted")
	}
}

func TestCheckRejectsMissingProblemFile(t *testing.T) {
	err := run([]string{"check", "-problem", "/nonexistent/problem.json"},
		strings.NewReader("{}"), &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil {
		t.Error("missing problem file accepted")
	}
}
