// Command wrsn-plan solves a deployment-and-routing problem instance.
//
// Generate a random instance:
//
//	wrsn-plan gen -side 500 -posts 100 -nodes 600 -seed 1 > problem.json
//
// Solve it (algorithms: rfh, basic-rfh, idb, optimal, local-search):
//
//	wrsn-plan solve -algo idb -delta 1 < problem.json > solution.json
//
// Inspect a solution against its problem:
//
//	wrsn-plan check -problem problem.json -map < solution.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"wrsn"
	"wrsn/internal/model"
	"wrsn/internal/render"
	"wrsn/internal/texttable"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-plan:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: wrsn-plan <gen|solve|check> [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], stdout)
	case "solve":
		return runSolve(args[1:], stdin, stdout, stderr)
	case "check":
		return runCheck(args[1:], stdin, stdout)
	case "spares":
		return runSpares(args[1:], stdin, stdout)
	case "compare":
		return runCompare(args[1:], stdin, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, solve, check, spares or compare)", args[0])
	}
}

func runGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	var (
		side     = fs.Float64("side", 500, "square field side in meters")
		posts    = fs.Int("posts", 100, "number of posts")
		nodes    = fs.Int("nodes", 600, "number of sensor nodes")
		seed     = fs.Int64("seed", 1, "random seed")
		levels   = fs.Int("levels", 3, "number of transmission power levels (25m steps)")
		overhead = fs.Float64("overhead", 0, "per-post sensing/computation overhead (nJ per bit-round)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	em, err := wrsn.EnergyModelWithLevels(*levels)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	field := wrsn.Square(*side)
	const attempts = 1000
	for i := 0; i < attempts; i++ {
		p := &wrsn.Problem{
			Posts:         field.RandomPoints(rng, *posts),
			BS:            field.Corner(),
			Nodes:         *nodes,
			Energy:        em,
			Charging:      wrsn.DefaultChargingModel(),
			RoundOverhead: *overhead,
		}
		if p.Validate() == nil {
			return model.WriteProblem(stdout, p)
		}
	}
	return fmt.Errorf("no connected instance found in %d attempts; raise -posts or shrink -side", attempts)
}

func runSolve(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	var (
		algo       = fs.String("algo", "rfh", "algorithm: rfh, basic-rfh, idb, optimal, local-search, anneal or auto")
		delta      = fs.Int("delta", 1, "IDB per-round increment")
		iterations = fs.Int("iterations", 7, "RFH iterations")
		summary    = fs.Bool("summary", false, "print a human-readable summary to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := model.ReadProblem(stdin)
	if err != nil {
		return err
	}
	var res *wrsn.Result
	switch *algo {
	case "rfh":
		res, err = wrsn.SolveRFH(p, wrsn.RFHOptions{Iterations: *iterations})
	case "basic-rfh":
		res, err = wrsn.SolveBasicRFH(p)
	case "idb":
		res, err = wrsn.SolveIDB(p, *delta)
	case "optimal":
		res, err = wrsn.SolveOptimal(p, wrsn.OptimalOptions{})
	case "local-search":
		res, err = wrsn.SolveLocalSearch(p, wrsn.LocalSearchOptions{})
	case "anneal":
		res, err = wrsn.SolveAnneal(p, wrsn.AnnealOptions{Seed: 1})
	case "auto":
		res, err = wrsn.Solve(p)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	if *summary {
		printSummary(stderr, p, &res.Solution)
	}
	return model.WriteSolution(stdout, &res.Solution)
}

func runCheck(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	var (
		problemPath = fs.String("problem", "", "path to the problem JSON the solution belongs to")
		showMap     = fs.Bool("map", false, "render an ASCII field map and routing tree")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *problemPath == "" {
		return fmt.Errorf("check requires -problem")
	}
	pf, err := os.Open(*problemPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	p, err := model.ReadProblem(pf)
	if err != nil {
		return err
	}
	sol, err := model.ReadSolution(stdin)
	if err != nil {
		return err
	}
	cost, err := wrsn.Evaluate(p, sol.Deploy, sol.Tree)
	if err != nil {
		return fmt.Errorf("solution invalid for problem: %w", err)
	}
	fmt.Fprintf(stdout, "solution valid; total recharging cost = %.4f nJ (%.4f µJ)\n", cost, cost/1000)
	if sol.Cost != 0 && !approxEqual(sol.Cost, cost) {
		return fmt.Errorf("recorded cost %.4f disagrees with evaluated %.4f", sol.Cost, cost)
	}
	report, err := model.BuildReport(p, sol.Deploy, sol.Tree)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, report.String())
	printSummary(stdout, p, sol)
	if *showMap {
		fieldMap, err := render.FieldMap(p, sol.Deploy, 72)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, fieldMap)
		treeView, err := render.TreeASCII(p, sol.Deploy, sol.Tree)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, treeView)
	}
	return nil
}

// runSpares inflates a solution's deployment for fault tolerance.
func runSpares(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("spares", flag.ContinueOnError)
	var (
		survive    = fs.Float64("survive", 0.9, "per-node mission survival probability")
		confidence = fs.Float64("confidence", 0.99, "required probability of keeping each post's planned strength")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sol, err := model.ReadSolution(stdin)
	if err != nil {
		return err
	}
	inflated, total, err := wrsn.ProvisionSpares(sol.Deploy, *survive, *confidence)
	if err != nil {
		return err
	}
	planned := sol.Deploy.Sum()
	fmt.Fprintf(stdout, "spare provisioning: survive=%.2f confidence=%.2f\n", *survive, *confidence)
	fmt.Fprintf(stdout, "planned %d nodes -> procure %d (%d spares, +%.1f%%)\n",
		planned, total, total-planned, float64(total-planned)/float64(planned)*100)
	t := texttable.New("", "post", "planned", "with spares")
	for i := range sol.Deploy {
		t.AddRow(i, sol.Deploy[i], inflated[i])
	}
	fmt.Fprintln(stdout, t.String())
	return nil
}

func approxEqual(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= 1e-9+1e-9*scale
}

func printSummary(w io.Writer, p *wrsn.Problem, sol *wrsn.Solution) {
	sizes := sol.Tree.SubtreeSizes(p)
	t := texttable.New(
		fmt.Sprintf("%d posts, %d nodes; cost %.4f µJ per round", p.N(), p.Nodes, sol.Cost/1000),
		"post", "nodes", "parent", "level", "subtree")
	for i := 0; i < p.N(); i++ {
		parent := "BS"
		if sol.Tree.Parent[i] < p.N() {
			parent = fmt.Sprint(sol.Tree.Parent[i])
		}
		t.AddRow(i, sol.Deploy[i], parent, sol.Tree.Level[i]+1, sizes[i])
	}
	fmt.Fprintln(w, t.String())
}

// runCompare solves one problem with the whole portfolio and prints a
// quality/runtime comparison plus the winner's diagnostic report.
func runCompare(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	withOptimal := fs.Bool("optimal", false, "include the exact solver (small instances only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := model.ReadProblem(stdin)
	if err != nil {
		return err
	}
	type entry struct {
		name string
		run  func() (*wrsn.Result, error)
	}
	entries := []entry{
		{"basic-rfh", func() (*wrsn.Result, error) { return wrsn.SolveBasicRFH(p) }},
		{"rfh", func() (*wrsn.Result, error) { return wrsn.SolveIterativeRFH(p) }},
		{"idb", func() (*wrsn.Result, error) { return wrsn.SolveIDB(p, 1) }},
		{"local-search", func() (*wrsn.Result, error) { return wrsn.SolveLocalSearch(p, wrsn.LocalSearchOptions{}) }},
		{"anneal", func() (*wrsn.Result, error) { return wrsn.SolveAnneal(p, wrsn.AnnealOptions{Seed: 1}) }},
	}
	if *withOptimal {
		entries = append(entries, entry{"optimal", func() (*wrsn.Result, error) {
			return wrsn.SolveOptimal(p, wrsn.OptimalOptions{})
		}})
	}

	t := texttable.New(
		fmt.Sprintf("solver comparison: %d posts, %d nodes", p.N(), p.Nodes),
		"solver", "cost (µJ)", "vs best (%)", "runtime (ms)", "max nodes/post")
	best := math.Inf(1)
	var bestRes *wrsn.Result
	type row struct {
		name    string
		res     *wrsn.Result
		elapsed time.Duration
	}
	rows := make([]row, 0, len(entries))
	for _, e := range entries {
		start := time.Now()
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		rows = append(rows, row{e.name, res, time.Since(start)})
		if res.Cost < best {
			best = res.Cost
			bestRes = res
		}
	}
	for _, r := range rows {
		t.AddRow(r.name, r.res.Cost/1000, (r.res.Cost/best-1)*100,
			float64(r.elapsed.Microseconds())/1000, r.res.Deploy.Max())
	}
	fmt.Fprintln(stdout, t.String())

	report, err := wrsn.BuildReport(p, bestRes.Deploy, bestRes.Tree)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "best solution:")
	fmt.Fprintln(stdout, report.String())
	return nil
}
