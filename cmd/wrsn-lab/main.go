// Command wrsn-lab works with the RF charging test bench: it sweeps the
// (simulated) Powercast field experiment, and it calibrates the
// propagation model against measured data so the bench can be
// re-parameterised for different charger hardware.
//
// Sweep the Table II grid with the default bench:
//
//	wrsn-lab sweep > measurements.csv
//
// Calibrate the propagation model from single-sensor measurements
// (CSV columns: sensors,distance_m,spacing_m,power_mw):
//
//	wrsn-lab calibrate -tx-power 3000 -ref-dist 0.2 < measurements.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"wrsn/internal/charging"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-lab:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: wrsn-lab <sweep|calibrate> [flags]")
	}
	switch args[0] {
	case "sweep":
		return runSweep(args[1:], stdout)
	case "calibrate":
		return runCalibrate(args[1:], stdin, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want sweep or calibrate)", args[0])
	}
}

func runSweep(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		seed  = fs.Int64("seed", 1, "random seed for trial noise")
		txPow = fs.Float64("tx-power", 0, "override charger power (mW, 0 = default bench)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *txPow < 0 {
		return fmt.Errorf("-tx-power must be positive (got %g); 0 selects the default bench", *txPow)
	}
	lab := charging.DefaultLab()
	if *txPow > 0 {
		lab.TxPower = *txPow
	}
	if err := lab.Validate(); err != nil {
		return err
	}
	cells, err := lab.RunTableII(rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "sensors,distance_m,spacing_m,power_mw,stddev_mw,network_eff_pct")
	for _, c := range cells {
		fmt.Fprintf(stdout, "%d,%.2f,%.2f,%.6f,%.6f,%.4f\n",
			c.Sensors, c.ChargerDist, c.Spacing, c.MeanPerNodeMW, c.StdDevMW, c.NetworkEffPct)
	}
	return nil
}

func runCalibrate(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	var (
		txPow   = fs.Float64("tx-power", 3000, "charger power in mW")
		refDist = fs.Float64("ref-dist", 0.20, "reference distance in meters")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cells, err := parseMeasurementsCSV(stdin)
	if err != nil {
		return err
	}
	cal, err := charging.Calibrate(*txPow, *refDist, cells)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "calibrated from %d single-sensor measurements (R² = %.4f)\n", cal.Samples, cal.R2)
	fmt.Fprintf(stdout, "  single-node efficiency at %.0fcm: %.4f%%\n", *refDist*100, cal.RefEfficiency*100)
	fmt.Fprintf(stdout, "  exponential decay rate:         %.3f /m\n", cal.Decay)
	if cal.R2 < 0.9 {
		fmt.Fprintln(stdout, "  warning: low R² — the exponential propagation model fits these measurements poorly")
	}
	return nil
}

// parseMeasurementsCSV reads the sweep's CSV format (extra columns are
// ignored; a header line is optional).
func parseMeasurementsCSV(r io.Reader) ([]charging.Measurement, error) {
	sc := bufio.NewScanner(r)
	var out []charging.Measurement
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "sensors,") || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 4 {
			return nil, fmt.Errorf("line %d: want at least 4 CSV columns (sensors,distance_m,spacing_m,power_mw), got %d", line, len(fields))
		}
		sensors, err1 := strconv.Atoi(strings.TrimSpace(fields[0]))
		dist, err2 := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		spacing, err3 := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		power, err4 := strconv.ParseFloat(strings.TrimSpace(fields[3]), 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("line %d: malformed measurement %q", line, text)
		}
		out = append(out, charging.Measurement{
			Sensors:       sensors,
			ChargerDist:   dist,
			Spacing:       spacing,
			MeanPerNodeMW: power,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no measurements found")
	}
	return out, nil
}
