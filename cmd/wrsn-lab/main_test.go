package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSweepThenCalibrateRoundTrip(t *testing.T) {
	var sweep bytes.Buffer
	if err := run([]string{"sweep", "-seed", "2"}, strings.NewReader(""), &sweep); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	lines := strings.Split(strings.TrimRight(sweep.String(), "\n"), "\n")
	// Header + 2 spacings x 4 sensor counts x 5 distances.
	if len(lines) != 1+40 {
		t.Fatalf("sweep produced %d lines, want 41", len(lines))
	}
	if !strings.HasPrefix(lines[0], "sensors,distance_m") {
		t.Fatalf("missing header: %q", lines[0])
	}

	// Calibrating against the bench's own sweep must recover its
	// parameters (0.67% at 20cm, decay 3.5/m).
	var cal bytes.Buffer
	if err := run([]string{"calibrate", "-tx-power", "3000", "-ref-dist", "0.2"},
		bytes.NewReader(sweep.Bytes()), &cal); err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	out := cal.String()
	if !strings.Contains(out, "calibrated from 10 single-sensor measurements") {
		t.Errorf("unexpected sample count:\n%s", out)
	}
	for _, frag := range []string{"single-node efficiency", "decay rate"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "warning: low R²") {
		t.Errorf("self-calibration should fit well:\n%s", out)
	}
}

func TestCalibrateParsing(t *testing.T) {
	good := "1,0.2,0.05,20.0\n1,0.4,0.05,10.0\n1,0.6,0.05,5.0\n"
	var out bytes.Buffer
	if err := run([]string{"calibrate"}, strings.NewReader(good), &out); err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	if err := run([]string{"calibrate"}, strings.NewReader(""), &out); err == nil {
		t.Error("empty input accepted")
	}
	if err := run([]string{"calibrate"}, strings.NewReader("a,b,c,d\n"), &out); err == nil {
		t.Error("malformed row accepted")
	}
	if err := run([]string{"calibrate"}, strings.NewReader("1,0.2\n"), &out); err == nil {
		t.Error("short row accepted")
	}
}

func TestUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"explode"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestSweepFlagOverrides(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"sweep", "-tx-power", "-5"}, strings.NewReader(""), &out); err == nil {
		t.Error("negative tx power accepted")
	}
	out.Reset()
	if err := run([]string{"sweep", "-tx-power", "1000"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("custom tx power rejected: %v", err)
	}
	if !strings.Contains(out.String(), "sensors,distance_m") {
		t.Errorf("custom sweep lost its header:\n%s", out.String())
	}
}
