package main

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"wrsn/internal/engine"
)

func TestCheckBudget(t *testing.T) {
	base := engine.Timing{Figure: "6", WallSeconds: 1.0}
	cases := []struct {
		cur    float64
		tol    float64
		slack  float64
		within bool
	}{
		{cur: 1.0, tol: 0.2, slack: 0, within: true},
		{cur: 1.19, tol: 0.2, slack: 0, within: true},
		{cur: 1.21, tol: 0.2, slack: 0, within: false},
		{cur: 2.0, tol: 0.2, slack: 1.0, within: true}, // slack absorbs noise
		{cur: 60.0, tol: 0.2, slack: 2.0, within: false},
	}
	for _, c := range cases {
		msg, ok := check(base, engine.Timing{Figure: "6", WallSeconds: c.cur}, c.tol, c.slack)
		if ok != c.within {
			t.Errorf("check(cur=%.2f, tol=%.2f, slack=%.2f) = %v, want %v (%s)",
				c.cur, c.tol, c.slack, ok, c.within, msg)
		}
	}
}

func TestLoadFigure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	payload := `{"figures":[{"figure":"6","wall_seconds":1.5,"active_seconds":1.4,"cells":4}]}`
	if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	art, err := loadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if art.Partial {
		t.Error("artifact without partial key loaded as partial")
	}
	tm, err := art.figure(path, "6")
	if err != nil {
		t.Fatal(err)
	}
	if tm.WallSeconds != 1.5 || tm.Cells != 4 {
		t.Errorf("loaded %+v", tm)
	}
	if _, err := art.figure(path, "7a"); err == nil {
		t.Error("missing figure not reported")
	}
	if _, err := loadArtifact(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file not reported")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, wall float64) string {
		path := filepath.Join(dir, name)
		payload := `{"figures":[{"figure":"6","wall_seconds":` + strconv.FormatFloat(wall, 'f', -1, 64) + `}]}`
		if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", 1.0)
	good := write("good.json", 1.1)
	bad := write("bad.json", 60.0)

	if err := run([]string{"-baseline", base, "-current", good, "-slack", "0.5"}, os.Stdout, os.Stderr); err != nil {
		t.Errorf("within-budget run failed: %v", err)
	}
	if err := run([]string{"-baseline", base, "-current", bad, "-slack", "0.5"}, os.Stdout, os.Stderr); err == nil {
		t.Error("regression not flagged")
	}
}

// TestTotalMode: -total guards the suite total and hard-fails on
// mismatched figure coverage (a subset run's small total must never
// read as a pass).
func TestTotalMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name, payload string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json",
		`{"total_wall_seconds":90.0,"figures":[{"figure":"6","wall_seconds":50.0},{"figure":"7a","wall_seconds":40.0}]}`)
	good := write("good.json",
		`{"total_wall_seconds":95.0,"figures":[{"figure":"6","wall_seconds":52.0},{"figure":"7a","wall_seconds":43.0}]}`)
	slow := write("slow.json",
		`{"total_wall_seconds":200.0,"figures":[{"figure":"6","wall_seconds":110.0},{"figure":"7a","wall_seconds":90.0}]}`)
	subset := write("subset.json",
		`{"total_wall_seconds":1.0,"figures":[{"figure":"6","wall_seconds":1.0}]}`)
	superset := write("superset.json",
		`{"total_wall_seconds":91.0,"figures":[{"figure":"6","wall_seconds":50.0},{"figure":"7a","wall_seconds":40.0},{"figure":"8","wall_seconds":1.0}]}`)
	partial := write("partial.json",
		`{"partial":true,"total_wall_seconds":1.0,"figures":[{"figure":"6","wall_seconds":1.0}]}`)

	if err := run([]string{"-baseline", base, "-current", good, "-total"}, os.Stdout, os.Stderr); err != nil {
		t.Errorf("within-budget total failed: %v", err)
	}
	if err := run([]string{"-baseline", base, "-current", slow, "-total"}, os.Stdout, os.Stderr); err == nil {
		t.Error("total regression not flagged")
	}
	if err := run([]string{"-baseline", base, "-current", subset, "-total"}, os.Stdout, os.Stderr); err == nil {
		t.Error("subset run accepted as a suite total")
	}
	if err := run([]string{"-baseline", base, "-current", superset, "-total"}, os.Stdout, os.Stderr); err == nil {
		t.Error("superset run accepted as a suite total")
	}
	// A genuinely interrupted run keeps the flag-and-skip behaviour.
	if err := run([]string{"-baseline", base, "-current", partial, "-total"}, os.Stdout, os.Stderr); err != nil {
		t.Errorf("partial -current not tolerated in total mode: %v", err)
	}
}

// TestEachMode: -each guards every baseline figure individually — a
// single blown figure fails the run even when the suite total is fine,
// and coverage mismatches are hard errors as in -total.
func TestEachMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name, payload string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json",
		`{"total_wall_seconds":102.0,"figures":[{"figure":"6","wall_seconds":100.0},{"figure":"7a","wall_seconds":2.0}]}`)
	good := write("good.json",
		`{"total_wall_seconds":105.0,"figures":[{"figure":"6","wall_seconds":102.0},{"figure":"7a","wall_seconds":3.0}]}`)
	// Figure 7a blows up 10x but the total stays inside its budget:
	// -total passes, -each must fail.
	hidden := write("hidden.json",
		`{"total_wall_seconds":121.0,"figures":[{"figure":"6","wall_seconds":101.0},{"figure":"7a","wall_seconds":20.0}]}`)
	subset := write("subset.json",
		`{"total_wall_seconds":100.0,"figures":[{"figure":"6","wall_seconds":100.0}]}`)

	if err := run([]string{"-baseline", base, "-current", good, "-each"}, os.Stdout, os.Stderr); err != nil {
		t.Errorf("within-budget per-figure run failed: %v", err)
	}
	if err := run([]string{"-baseline", base, "-current", hidden, "-total"}, os.Stdout, os.Stderr); err != nil {
		t.Errorf("setup check: hidden regression should pass -total: %v", err)
	}
	if err := run([]string{"-baseline", base, "-current", hidden, "-each"}, os.Stdout, os.Stderr); err == nil {
		t.Error("per-figure regression hidden inside a healthy total not flagged by -each")
	}
	if err := run([]string{"-baseline", base, "-current", subset, "-each"}, os.Stdout, os.Stderr); err == nil {
		t.Error("subset run accepted by -each")
	}
}

// TestPartialArtifacts: an interrupted run's artifact carries
// "partial": true — tolerated (flagged and skipped) as -current, but a
// hard error as -baseline.
func TestPartialArtifacts(t *testing.T) {
	dir := t.TempDir()
	write := func(name, payload string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	full := write("full.json", `{"figures":[{"figure":"6","wall_seconds":1.0}]}`)
	// Wall time way over budget AND the figure missing entirely: with
	// partial set, neither may fail the guard.
	partial := write("partial.json", `{"partial":true,"figures":[{"figure":"6","wall_seconds":500.0}]}`)
	partialEmpty := write("partial-empty.json", `{"partial":true,"figures":[]}`)

	if err := run([]string{"-baseline", full, "-current", partial}, os.Stdout, os.Stderr); err != nil {
		t.Errorf("partial -current not tolerated: %v", err)
	}
	if err := run([]string{"-baseline", full, "-current", partialEmpty}, os.Stdout, os.Stderr); err != nil {
		t.Errorf("partial empty -current not tolerated: %v", err)
	}
	if err := run([]string{"-baseline", partial, "-current", full}, os.Stdout, os.Stderr); err == nil {
		t.Error("partial -baseline accepted")
	}
}
