// Command benchguard fails CI when a figure's measured wall time
// regresses against a checked-in baseline artifact.
//
// Usage:
//
//	benchguard -baseline ci/fig6-baseline.json -current fig6.json -figure 6
//	benchguard -baseline ci/suite-baseline.json -current suite.json -total
//	benchguard -baseline ci/suite-baseline.json -current suite.json -each
//
// Both files are cmd/wrsn-experiments -bench artifacts. The guard
// compares the named figure's wall_seconds — or, with -total, the whole
// suite's total_wall_seconds, or with -each, every baseline figure's
// wall_seconds individually — and fails when
//
//	current > baseline*(1+tolerance) + slack
//
// -each catches a single figure regressing badly inside an otherwise
// healthy total (a 10x blowup on a 2-second figure moves a 70-second
// suite total by well under the noise floor).
//
// -total additionally requires the current artifact to cover exactly
// the baseline's figure set: a run of a figure subset (or an
// interrupted run whose artifact was hand-stripped of its partial
// marker) produces a small total that would otherwise always pass, so
// mismatched coverage is a hard error, not a pass.
//
// The relative tolerance catches genuine regressions (an accidental
// return to per-iteration graph rebuilds inflates figure 6 by orders of
// magnitude); the absolute slack absorbs runner heterogeneity — CI
// machines are slower and noisier than the machine that recorded the
// baseline, and sub-second measurements would otherwise flake. Guarded
// figures should be measured from a standalone run (one figure per
// invocation): under a shared worker pool a figure's wall clock also
// counts time spent waiting on co-scheduled figures' cells, which is
// why concurrent-run artifacts carry active_seconds separately.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"wrsn/internal/engine"
)

// artifact is the subset of cmd/wrsn-experiments' -bench payload the
// guard reads. Partial marks an artifact from an interrupted run: its
// wall times cover only the cells that completed before the interrupt,
// so they are not comparable to a full run's.
type artifact struct {
	Partial          bool            `json:"partial"`
	TotalWallSeconds float64         `json:"total_wall_seconds"`
	Figures          []engine.Timing `json:"figures"`
}

func loadArtifact(path string) (*artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &a, nil
}

func (a *artifact) figure(path, figure string) (engine.Timing, error) {
	for _, tm := range a.Figures {
		if tm.Figure == figure {
			return tm, nil
		}
	}
	return engine.Timing{}, fmt.Errorf("%s: no figure %q in artifact", path, figure)
}

// check compares one figure's wall time and returns a human-readable
// verdict plus whether the current run is within budget.
func check(base, cur engine.Timing, tolerance, slack float64) (string, bool) {
	budget := base.WallSeconds*(1+tolerance) + slack
	msg := fmt.Sprintf("figure %s: baseline %.3fs, current %.3fs, budget %.3fs (+%.0f%% +%.1fs)",
		base.Figure, base.WallSeconds, cur.WallSeconds, budget, 100*tolerance, slack)
	return msg, cur.WallSeconds <= budget
}

// coverageMatch verifies the current run covers exactly the baseline's
// figure set — a subset run (or a hand-stripped partial) would otherwise
// trivially pass any aggregate or per-figure sweep.
func coverageMatch(baseArt, curArt *artifact) error {
	baseSet := make(map[string]bool, len(baseArt.Figures))
	for _, tm := range baseArt.Figures {
		baseSet[tm.Figure] = true
	}
	curSet := make(map[string]bool, len(curArt.Figures))
	for _, tm := range curArt.Figures {
		curSet[tm.Figure] = true
	}
	for fig := range baseSet {
		if !curSet[fig] {
			return fmt.Errorf("current artifact is missing figure %q from the baseline suite; runs are not comparable", fig)
		}
	}
	for fig := range curSet {
		if !baseSet[fig] {
			return fmt.Errorf("current artifact has figure %q absent from the baseline suite; runs are not comparable", fig)
		}
	}
	return nil
}

// checkTotal compares two artifacts' suite totals under the same
// budget formula, after verifying the current run covers exactly the
// baseline's figures.
func checkTotal(baseArt, curArt *artifact, tolerance, slack float64) (string, bool, error) {
	if err := coverageMatch(baseArt, curArt); err != nil {
		return "", false, err
	}
	budget := baseArt.TotalWallSeconds*(1+tolerance) + slack
	msg := fmt.Sprintf("suite total: baseline %.3fs, current %.3fs, budget %.3fs (+%.0f%% +%.1fs, %d figures)",
		baseArt.TotalWallSeconds, curArt.TotalWallSeconds, budget, 100*tolerance, slack, len(baseArt.Figures))
	return msg, curArt.TotalWallSeconds <= budget, nil
}

// checkEach applies the per-figure budget to every figure in the
// baseline, reporting all verdicts and failing if any figure blew its
// budget. Coverage must match exactly, as for -total.
func checkEach(baseArt, curArt *artifact, tolerance, slack float64, out *os.File) error {
	if err := coverageMatch(baseArt, curArt); err != nil {
		return err
	}
	var failed []string
	for _, base := range baseArt.Figures {
		cur, err := curArt.figure("current", base.Figure)
		if err != nil {
			return err
		}
		msg, ok := check(base, cur, tolerance, slack)
		if !ok {
			failed = append(failed, msg)
			fmt.Fprintln(out, "benchguard: FAIL", msg)
			continue
		}
		fmt.Fprintln(out, "benchguard: ok  ", msg)
	}
	if len(failed) > 0 {
		return fmt.Errorf("wall-time regression on %d of %d figures: %s", len(failed), len(baseArt.Figures), failed[0])
	}
	return nil
}

func run(args []string, out, errOut *os.File) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	var (
		baseline  = fs.String("baseline", "", "checked-in bench artifact to compare against")
		current   = fs.String("current", "", "freshly measured bench artifact")
		figure    = fs.String("figure", "6", "figure id to guard")
		total     = fs.Bool("total", false, "guard the suite's total_wall_seconds instead of one figure (requires matching figure coverage)")
		each      = fs.Bool("each", false, "guard every baseline figure's wall_seconds individually (requires matching figure coverage)")
		tolerance = fs.Float64("tolerance", 0.20, "allowed relative wall-time regression")
		slack     = fs.Float64("slack", 2.0, "allowed absolute wall-time regression in seconds (runner noise floor)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" || *current == "" {
		return fmt.Errorf("both -baseline and -current are required")
	}
	baseArt, err := loadArtifact(*baseline)
	if err != nil {
		return err
	}
	// A partial baseline is a configuration error: an interrupted run's
	// timings would make every future comparison meaningless.
	if baseArt.Partial {
		return fmt.Errorf("%s: baseline artifact is partial (interrupted run); re-record it from a complete run", *baseline)
	}
	curArt, err := loadArtifact(*current)
	if err != nil {
		return err
	}
	// A partial current run carries no comparable timing — flag it and
	// skip the comparison rather than failing CI on an interrupt.
	if curArt.Partial {
		fmt.Fprintf(out, "benchguard: %s is partial (interrupted run); skipping wall-time comparison\n", *current)
		return nil
	}
	if *each {
		return checkEach(baseArt, curArt, *tolerance, *slack, out)
	}
	if *total {
		msg, ok, err := checkTotal(baseArt, curArt, *tolerance, *slack)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("wall-time regression: %s", msg)
		}
		fmt.Fprintln(out, "benchguard:", msg)
		return nil
	}
	base, err := baseArt.figure(*baseline, *figure)
	if err != nil {
		return err
	}
	cur, err := curArt.figure(*current, *figure)
	if err != nil {
		return err
	}
	msg, ok := check(base, cur, *tolerance, *slack)
	if !ok {
		return fmt.Errorf("wall-time regression: %s", msg)
	}
	fmt.Fprintln(out, "benchguard:", msg)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}
