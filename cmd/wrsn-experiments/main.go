// Command wrsn-experiments regenerates the paper's evaluation: every
// figure of Section II (field experiments) and Section VI (simulations).
//
// Usage:
//
//	wrsn-experiments -fig all            # everything, paper-scale
//	wrsn-experiments -fig 8 -seeds 5     # one figure, fewer seeds
//	wrsn-experiments -fig 7a -quick      # scaled-down quick run
//	wrsn-experiments -fig 6 -csv         # emit CSV instead of tables
//	wrsn-experiments -fig all -workers 8 -progress
//	wrsn-experiments -fig all -bench BENCH_PR3.json
//	wrsn-experiments -fig 8 -cpuprofile cpu.pprof -memprofile mem.pprof
//	wrsn-experiments -fig all -checkpoint ckpt        # journal each cell
//	wrsn-experiments -fig all -checkpoint ckpt -resume # skip journaled cells
//	wrsn-experiments -fig 8 -shard-coordinator -shard-spool spool -shard-workers 4
//	wrsn-experiments -fig 8 -shard-merge -shard-spool spool   # merge a finished spool
//
// Figures: 1 (field experiment / Table II), 6 (iterative RFH
// convergence), 7a/7b (heuristics vs optimal), 8 (node-count sweep),
// 9 (post-count sweep), 10 (power-level sweep), plus the ext-* extension
// studies and the solver portfolio.
//
// Selected figures run concurrently on the experiment engine, sharing
// one cell-concurrency budget (-workers); output is buffered per figure
// and printed in a fixed order, so stdout is byte-identical at any
// worker count. Ctrl-C cancels in-flight sweeps; figures completed
// before the interrupt are still printed and written to -json, in-flight
// cells get -grace to finish and be journaled, and artifacts carry
// "partial": true. A second Ctrl-C kills the process immediately. With
// -checkpoint, a later run with -resume replays the journals and
// produces byte-identical output to an uninterrupted run.
//
// Exit codes: 0 on success, 3 for a drained interrupt (completed
// figures were printed and artifacts are valid), 1 for failure.
//
// With -shard-coordinator, each sweep's cell grid is partitioned into
// shards executed by -shard-workers subprocesses (each re-invoking this
// binary in -shard-worker mode) coordinated through -shard-spool:
// leases are revoked and re-granted when workers die or stop
// heartbeating, and the merged output is byte-identical to an
// in-process run. A coordinator killed mid-run can be restarted against
// the same spool; -shard-merge assembles figures from a spool whose
// segments are already complete (e.g. hand-launched workers on a shared
// filesystem).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"wrsn/internal/engine"
	"wrsn/internal/experiments"
	"wrsn/internal/model"
	"wrsn/internal/render"
	"wrsn/internal/shard"
	"wrsn/internal/texttable"
)

// Exit codes. A drained interrupt (Ctrl-C mid-run) is not a failure:
// completed figures were printed, artifacts are valid and resumable, so
// callers get a distinct code for "stopped early, state is good".
const (
	exitFailed  = 1
	exitPartial = 3
)

// exitCode classifies a run error for the process exit status.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.Canceled):
		return exitPartial
	default:
		return exitFailed
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// After the first signal starts a graceful drain, unregister the
	// handler so a second Ctrl-C falls through to the default action and
	// kills the process immediately.
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-experiments:", err)
		os.Exit(exitCode(err))
	}
}

// run keeps the historical single-writer entry point (used by tests).
func run(args []string, stdout io.Writer) error {
	return runCtx(context.Background(), args, stdout, io.Discard)
}

// progressRenderer folds cell events from every concurrently running
// figure into one live stderr line.
type progressRenderer struct {
	mu    sync.Mutex
	done  map[string]int
	total map[string]int
	out   io.Writer
}

func newProgressRenderer(out io.Writer) *progressRenderer {
	return &progressRenderer{done: map[string]int{}, total: map[string]int{}, out: out}
}

func (pr *progressRenderer) observe(ev engine.Event) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.total[ev.Sweep] = ev.Total
	if ev.Kind == engine.CellFinished {
		pr.done[ev.Sweep] = ev.Done
	}
	var done, total int
	for id := range pr.total {
		done += pr.done[id]
		total += pr.total[id]
	}
	fmt.Fprintf(pr.out, "\r%-72s", fmt.Sprintf("%d/%d cells  (%s: %s)", done, total, ev.Sweep, ev.Algorithm))
}

func (pr *progressRenderer) finish() {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if len(pr.total) > 0 {
		fmt.Fprintln(pr.out)
	}
}

// benchArtifact is the machine-readable perf record written by -bench:
// the trajectory future optimisation PRs measure themselves against.
type benchArtifact struct {
	Command string `json:"command"`
	Workers int    `json:"workers"`
	// Self-description: the machine and build configuration the numbers
	// were measured under, so artifacts are comparable without consulting
	// the commit they shipped with.
	GOMAXPROCS         int             `json:"gomaxprocs"`
	MemoEntries        int             `json:"memo_entries"`
	Features           map[string]bool `json:"features"`
	TotalWallSeconds   float64         `json:"total_wall_seconds"`
	TotalActiveSeconds float64         `json:"total_active_seconds"`
	TotalCells         int             `json:"total_cells"`
	TotalEvaluations   int64           `json:"total_solver_evaluations"`
	// Partial marks an artifact from an interrupted run: its numbers
	// cover only the cells that completed and are not comparable to a
	// full run's (cmd/benchguard flags and skips such artifacts).
	Partial bool            `json:"partial,omitempty"`
	Figures []engine.Timing `json:"figures"`
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("wrsn-experiments", flag.ContinueOnError)
	var (
		fig         = fs.String("fig", "all", "figure(s) to regenerate (comma-separated ids, all, or ext)")
		listSolvers = fs.Bool("list-solvers", false, "print the solver registry (name, accepted problem kinds) and exit")
		seeds       = fs.Int("seeds", 0, "random post distributions to average (0 = paper default)")
		seed        = fs.Int64("seed", 1, "base random seed")
		quick       = fs.Bool("quick", false, "scaled-down run (fewer seeds/points, same trends)")
		csv         = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		chart       = fs.Bool("chart", false, "additionally draw each figure as an ASCII chart")
		jsonP       = fs.String("json", "", "additionally write the structured figures as JSON to this file")
		workers     = fs.Int("workers", 0, "engine worker-pool size shared across figures (0 = GOMAXPROCS; results identical at any value)")
		timeout     = fs.Duration("timeout", 0, "per-cell timeout, e.g. 30s (0 = unbounded)")
		memo        = fs.Int("memo-entries", 0, "per-instance shared deployment-cost memo size (0 = disabled, the default; try 16384 — results identical either way)")
		progress    = fs.Bool("progress", false, "render a live cell-progress line on stderr")
		bench       = fs.String("bench", "", "write a machine-readable perf artifact (per-figure wall time, cells/sec, evaluations) to this file")
		cpuProf     = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf     = fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")

		checkpoint = fs.String("checkpoint", "", "journal each completed cell to a crash-safe file per figure under this directory")
		resume     = fs.Bool("resume", false, "replay existing -checkpoint journals and skip already-completed cells (output stays byte-identical)")
		retries    = fs.Int("retries", 1, "attempts per cell before a failure is terminal (1 = no retry)")
		retryBase  = fs.Duration("retry-base", 100*time.Millisecond, "first retry backoff delay (doubles per retry, deterministically jittered)")
		retryMax   = fs.Duration("retry-max", 5*time.Second, "backoff delay cap")
		grace      = fs.Duration("grace", 10*time.Second, "how long in-flight cells may finish (and be journaled) after an interrupt before being hard-cancelled")

		chaosPanic   = fs.Float64("chaos-panic", 0, "TESTING: fraction of cell attempts that panic (deterministic, seeded)")
		chaosError   = fs.Float64("chaos-error", 0, "TESTING: fraction of cell attempts that fail with an injected error")
		chaosLatFrac = fs.Float64("chaos-latency-frac", 0, "TESTING: fraction of cell attempts delayed by -chaos-latency")
		chaosLatency = fs.Duration("chaos-latency", 10*time.Millisecond, "TESTING: injected latency per affected attempt")
		chaosSeed    = fs.Int64("chaos-seed", 0, "TESTING: chaos injection seed")

		chaosWorkerKill  = fs.Float64("chaos-worker-kill", 0, "TESTING: fraction of shard-worker lease attempts killed mid-shard")
		chaosWorkerWedge = fs.Float64("chaos-worker-wedge", 0, "TESTING: fraction of shard-worker lease attempts wedged mid-shard (heartbeats stop)")
		chaosHBDelayFrac = fs.Float64("chaos-heartbeat-delay-frac", 0, "TESTING: fraction of shard-worker leases whose heartbeats are delayed by -chaos-heartbeat-delay")
		chaosHBDelay     = fs.Duration("chaos-heartbeat-delay", 0, "TESTING: injected heartbeat delay per affected lease")

		shardCoord   = fs.Bool("shard-coordinator", false, "run each selected figure's sweeps sharded across worker processes (requires -shard-spool)")
		shardWorkers = fs.Int("shard-workers", 2, "worker processes the shard coordinator keeps running concurrently")
		shardSize    = fs.Int("shard-size", 0, "cells per shard lease (0 = about four shards per worker)")
		shardTTL     = fs.Duration("shard-lease-ttl", 15*time.Second, "revoke a shard lease after this long without a worker heartbeat")
		shardSpool   = fs.String("shard-spool", "", "shared spool directory for sharded sweeps (lease table, segments, heartbeats)")
		shardMerge   = fs.Bool("shard-merge", false, "merge a spool's committed segments into final figures without running any cells (requires -shard-spool)")
		shardWorker  = fs.Bool("shard-worker", false, "INTERNAL: execute one shard lease against -shard-spool and exit")
		shardRange   = fs.String("shard-range", "", "INTERNAL: leased cell range start:end (with -shard-worker)")
		shardEpoch   = fs.Int64("shard-epoch", 0, "INTERNAL: lease attempt epoch (with -shard-worker)")
		shardSweep   = fs.String("shard-sweep", "", "INTERNAL: sweep ID the lease belongs to (with -shard-worker)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *listSolvers {
		// Printed straight from the live registry, so this listing can
		// never drift from what -fig runs actually dispatch to (the
		// stale-figure-list class of bug, fixed once for figure ids).
		fmt.Fprintf(stdout, "%-18s %s\n", "SOLVER", "PROBLEM KINDS")
		for _, info := range engine.Infos() {
			fmt.Fprintf(stdout, "%-18s %s\n", info.Name, strings.Join(info.Kinds, ", "))
		}
		return nil
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	chaosRequested := false
	for name := range explicit {
		if strings.HasPrefix(name, "chaos-") && name != "chaos-seed" {
			chaosRequested = true
		}
	}
	if chaosRequested && !explicit["chaos-seed"] {
		return fmt.Errorf("-chaos-* flags require an explicit -chaos-seed: chaos schedules are deterministic and the seed is part of the experiment record")
	}
	shardModes := 0
	for _, on := range []bool{*shardCoord, *shardWorker, *shardMerge} {
		if on {
			shardModes++
		}
	}
	if shardModes > 1 {
		return fmt.Errorf("-shard-coordinator, -shard-worker and -shard-merge are mutually exclusive")
	}
	if shardModes == 0 {
		for _, name := range []string{"shard-spool", "shard-workers", "shard-size", "shard-lease-ttl", "shard-range", "shard-epoch", "shard-sweep"} {
			if explicit[name] {
				return fmt.Errorf("-%s needs one of -shard-coordinator, -shard-worker or -shard-merge", name)
			}
		}
	}
	if shardModes == 1 {
		if *shardSpool == "" {
			return fmt.Errorf("sharded modes require -shard-spool")
		}
		if *checkpoint != "" {
			return fmt.Errorf("-checkpoint cannot be combined with sharded modes: the spool owns journaling")
		}
	}
	if *shardWorker && (*shardSweep == "" || *shardRange == "" || *shardEpoch < 1) {
		return fmt.Errorf("-shard-worker requires -shard-sweep, -shard-range and -shard-epoch >= 1")
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// Deferred so the profile covers the run's live heap, from the
		// same binary that writes the BENCH_*.json artifacts.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(stderr, "wrsn-experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "wrsn-experiments: memprofile:", err)
			}
		}()
	}
	poolSize := *workers
	if poolSize <= 0 {
		poolSize = runtime.GOMAXPROCS(0)
	}
	baseOpts := experiments.Options{
		Seeds:       *seeds,
		BaseSeed:    *seed,
		Quick:       *quick,
		Context:     ctx,
		Workers:     poolSize,
		Timeout:     *timeout,
		MemoEntries: *memo,
		// One budget for every concurrently running figure: combined
		// active cells never exceed the pool size.
		Limiter:    engine.NewLimiter(poolSize),
		Retry:      engine.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase, MaxDelay: *retryMax},
		DrainGrace: *grace,
	}
	if *checkpoint != "" {
		baseOpts.Checkpoint = &engine.Checkpoint{Dir: *checkpoint, Resume: *resume}
	}
	if *chaosPanic > 0 || *chaosError > 0 || *chaosLatFrac > 0 ||
		*chaosWorkerKill > 0 || *chaosWorkerWedge > 0 || *chaosHBDelayFrac > 0 {
		baseOpts.Chaos = &engine.ChaosConfig{
			Seed:        *chaosSeed,
			PanicFrac:   *chaosPanic,
			ErrorFrac:   *chaosError,
			LatencyFrac: *chaosLatFrac,
			Latency:     *chaosLatency,

			WorkerKillFrac:     *chaosWorkerKill,
			WorkerWedgeFrac:    *chaosWorkerWedge,
			HeartbeatDelayFrac: *chaosHBDelayFrac,
			HeartbeatDelay:     *chaosHBDelay,
		}
	}

	switch {
	case *shardWorker:
		start, end, err := shard.ParseRange(*shardRange)
		if err != nil {
			return err
		}
		lease := shard.Lease{
			Sweep: *shardSweep, Start: start, End: end, Epoch: *shardEpoch,
			Worker: fmt.Sprintf("pid%d", os.Getpid()),
		}
		spool := *shardSpool
		baseOpts.RunSweep = func(ctx context.Context, sw *engine.Sweep, cfg engine.RunConfig) (*engine.Result, error) {
			if sw.ID != lease.Sweep {
				// A figure selection can span several sweeps; those
				// outside the lease run zero cells so figure assembly
				// still proceeds (the worker's stdout is discarded).
				cfg.Shard = &engine.ShardSpec{}
				return engine.Run(ctx, sw, cfg)
			}
			return shard.RunWorker(ctx, sw, shard.WorkerConfig{Spool: spool, Lease: lease, Run: cfg})
		}
	case *shardMerge:
		spool := *shardSpool
		baseOpts.RunSweep = func(ctx context.Context, sw *engine.Sweep, cfg engine.RunConfig) (*engine.Result, error) {
			res, rejected, err := shard.MergeSpool(ctx, sw, cfg, spool)
			for _, rej := range rejected {
				fmt.Fprintf(stderr, "wrsn-experiments: shard merge: rejected %s: %s\n", rej.Path, rej.Reason)
			}
			return res, err
		}
	case *shardCoord:
		bin, err := os.Executable()
		if err != nil {
			return fmt.Errorf("shard coordinator: %w", err)
		}
		// Split the cell budget across worker processes; each worker runs
		// its shard with its own in-process pool.
		perWorker := poolSize / *shardWorkers
		if perWorker < 1 {
			perWorker = 1
		}
		workerArgs := []string{
			"-fig", *fig,
			"-seeds", strconv.Itoa(*seeds),
			"-seed", strconv.FormatInt(*seed, 10),
			"-workers", strconv.Itoa(perWorker),
			"-timeout", timeout.String(),
			"-retries", strconv.Itoa(*retries),
			"-retry-base", retryBase.String(),
			"-retry-max", retryMax.String(),
			"-grace", grace.String(),
		}
		if *quick {
			workerArgs = append(workerArgs, "-quick")
		}
		if c := baseOpts.Chaos; c != nil {
			workerArgs = append(workerArgs,
				"-chaos-seed", strconv.FormatInt(c.Seed, 10),
				"-chaos-panic", fmt.Sprint(c.PanicFrac),
				"-chaos-error", fmt.Sprint(c.ErrorFrac),
				"-chaos-latency-frac", fmt.Sprint(c.LatencyFrac),
				"-chaos-latency", c.Latency.String(),
				"-chaos-worker-kill", fmt.Sprint(c.WorkerKillFrac),
				"-chaos-worker-wedge", fmt.Sprint(c.WorkerWedgeFrac),
				"-chaos-heartbeat-delay-frac", fmt.Sprint(c.HeartbeatDelayFrac),
				"-chaos-heartbeat-delay", c.HeartbeatDelay.String(),
			)
		}
		launch := &execLauncher{bin: bin, args: workerArgs, spool: *shardSpool, stderr: stderr}
		coordCfg := shard.Config{
			Spool:     *shardSpool,
			Workers:   *shardWorkers,
			ShardSize: *shardSize,
			LeaseTTL:  *shardTTL,
			Launch:    launch,
			Log: func(format string, logArgs ...interface{}) {
				fmt.Fprintf(stderr, "wrsn-experiments: "+format+"\n", logArgs...)
			},
		}
		baseOpts.RunSweep = func(ctx context.Context, sw *engine.Sweep, cfg engine.RunConfig) (*engine.Result, error) {
			// Cell execution — pool size, chaos, retries — belongs to the
			// worker processes via their own flags; only progress and the
			// shared limiter stay with the coordinator's merge replay.
			res, _, err := shard.Coordinate(ctx, sw, engine.RunConfig{
				Progress: cfg.Progress,
				Limiter:  cfg.Limiter,
			}, coordCfg)
			return res, err
		}
	}

	type runner struct {
		id string
		fn func(opts experiments.Options) ([]*texttable.Table, []*experiments.Figure, error)
	}
	comparison := func(f func(experiments.Options) (*experiments.Figure, error)) func(experiments.Options) ([]*texttable.Table, []*experiments.Figure, error) {
		return func(opts experiments.Options) ([]*texttable.Table, []*experiments.Figure, error) {
			fig, err := f(opts)
			if err != nil {
				return nil, nil, err
			}
			return []*texttable.Table{experiments.ComparisonTable(fig)}, []*experiments.Figure{fig}, nil
		}
	}
	runners := []runner{
		{"1", func(opts experiments.Options) ([]*texttable.Table, []*experiments.Figure, error) {
			res, err := experiments.Fig1(opts)
			if err != nil {
				return nil, nil, err
			}
			figs := make([]*experiments.Figure, len(res.Figures))
			for i := range res.Figures {
				figs[i] = &res.Figures[i]
			}
			return res.Tables(), figs, nil
		}},
		{"6", func(opts experiments.Options) ([]*texttable.Table, []*experiments.Figure, error) {
			fig, err := experiments.Fig6(opts)
			if err != nil {
				return nil, nil, err
			}
			return []*texttable.Table{experiments.Fig6Table(fig)}, []*experiments.Figure{fig}, nil
		}},
		{"7a", comparison(experiments.Fig7a)},
		{"7b", comparison(experiments.Fig7b)},
		{"8", comparison(experiments.Fig8)},
		{"9", comparison(experiments.Fig9)},
		{"10", comparison(experiments.Fig10)},
		{"ext-gain", comparison(experiments.ExtGain)},
		{"ext-overhead", comparison(experiments.ExtOverhead)},
		{"ext-charger", comparison(experiments.ExtChargerPolicy)},
		{"ext-layout", comparison(experiments.ExtLayout)},
		{"ext-delta", comparison(experiments.ExtDelta)},
		{"ext-validation", comparison(experiments.ExtSimValidation)},
		{"ext-fault", comparison(experiments.ExtFaultTolerance)},
		{"ext-repair", comparison(experiments.ExtRepair)},
		{"ext-placement", comparison(experiments.ExtPlacement)},
		{"portfolio", func(opts experiments.Options) ([]*texttable.Table, []*experiments.Figure, error) {
			entries, err := experiments.ExtPortfolio(opts)
			if err != nil {
				return nil, nil, err
			}
			t := texttable.New("Solver portfolio (350x350m, 40 posts, 200 nodes)",
				"solver", "mean cost (µJ)", "gap to best (%)", "runtime (ms)")
			for _, e := range entries {
				t.AddRow(e.Solver, e.MeanCost, e.MeanGapPct, e.MeanRuntimeMS)
			}
			return []*texttable.Table{t}, nil, nil
		}},
	}

	// "all" and "ext" are derived from the runner table, as is the
	// valid-id list in the error below — new figures can't drift out.
	wanted := strings.Split(strings.ToLower(*fig), ",")
	selected := map[string]bool{}
	for _, w := range wanted {
		w = strings.TrimSpace(w)
		switch w {
		case "all":
			for _, r := range runners {
				if !strings.HasPrefix(r.id, "ext-") && r.id != "portfolio" {
					selected[r.id] = true
				}
			}
		case "ext":
			for _, r := range runners {
				if strings.HasPrefix(r.id, "ext-") || r.id == "portfolio" {
					selected[r.id] = true
				}
			}
		default:
			selected[strings.TrimPrefix(w, "fig")] = true
		}
	}
	var active []runner
	for _, r := range runners {
		if selected[r.id] {
			active = append(active, r)
		}
	}
	if len(active) == 0 {
		valid := make([]string, 0, len(runners))
		for _, r := range runners {
			valid = append(valid, r.id)
		}
		return fmt.Errorf("no figure matches %q (valid: %s, all, ext)", *fig, strings.Join(valid, ", "))
	}

	var renderer *progressRenderer
	if *progress {
		renderer = newProgressRenderer(stderr)
	}

	// Every selected figure runs concurrently under the shared cell
	// limiter; output is buffered per figure and printed in table order
	// below, keeping stdout deterministic.
	type figOutput struct {
		tables  []*texttable.Table
		figures []*experiments.Figure
		timing  engine.Timing
		err     error
	}
	outputs := make([]figOutput, len(active))
	totalStart := time.Now()
	var wg sync.WaitGroup
	for i, r := range active {
		wg.Add(1)
		go func(i int, r runner) {
			defer wg.Done()
			var cells, inflight, peak int
			var evaluations int64
			var active time.Duration
			var firstStart, lastFinish time.Time
			opts := baseOpts
			opts.Progress = func(ev engine.Event) {
				switch ev.Kind {
				case engine.CellStarted:
					if firstStart.IsZero() {
						firstStart = time.Now()
					}
					inflight++
					if inflight > peak {
						peak = inflight
					}
				case engine.CellFinished:
					if inflight > 0 {
						inflight--
					}
					lastFinish = time.Now()
					if ev.Err == nil {
						cells++
						evaluations += ev.Evaluations
						// Summed cell runtimes, not elapsed time: under the
						// shared limiter a figure's wall clock also counts time
						// spent waiting on other figures' cells.
						active += ev.Duration
					}
				}
				if renderer != nil {
					renderer.observe(ev)
				}
			}
			start := time.Now()
			tables, figures, err := r.fn(opts)
			wall := time.Since(start)
			timing := engine.NewTiming(r.id, wall, active, cells, evaluations, poolSize)
			// Attribute honestly under the shared limiter: the window this
			// figure actually had cells in flight, and the most cells it
			// ever ran at once (not the whole pool).
			if !firstStart.IsZero() && !lastFinish.IsZero() {
				timing.SpanSeconds = lastFinish.Sub(firstStart).Seconds()
			}
			timing.PeakWorkers = peak
			outputs[i] = figOutput{
				tables:  tables,
				figures: figures,
				timing:  timing,
				err:     err,
			}
		}(i, r)
	}
	wg.Wait()
	if renderer != nil {
		renderer.finish()
	}

	// Print completed figures in table order; stop at the first failure
	// like the historical sequential runner did.
	allFigures := []*experiments.Figure{} // non-nil: -json writes [] when no runner yields figures
	var timings []engine.Timing
	var firstErr error
	for i, r := range active {
		out := &outputs[i]
		if out.err != nil {
			firstErr = fmt.Errorf("figure %s: %w", r.id, out.err)
			break
		}
		allFigures = append(allFigures, out.figures...)
		timings = append(timings, out.timing)
		fmt.Fprintf(stdout, "=== Figure %s ===\n\n", r.id)
		for _, t := range out.tables {
			if *csv {
				fmt.Fprint(stdout, t.CSV())
			} else {
				fmt.Fprintln(stdout, t.String())
			}
		}
		if *chart {
			for _, f := range out.figures {
				series := make([]render.ChartSeries, len(f.Series))
				for si, s := range f.Series {
					series[si] = render.ChartSeries{Label: s.Label, Y: s.Y}
				}
				drawn, err := render.Chart(f.Title+" ("+f.YLabel+")", f.X, series, 64, 14)
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("figure %s chart: %w", r.id, err)
					}
					break
				}
				fmt.Fprintln(stdout, drawn)
			}
			if firstErr != nil {
				break
			}
		}
	}
	totalWall := time.Since(totalStart)

	for _, tm := range timings {
		fmt.Fprintf(stderr, "figure %-14s %7.2fs wall  %7.2fs active  %4d cells  %8.1f cells/s  %d evaluations\n",
			tm.Figure, tm.WallSeconds, tm.ActiveSeconds, tm.Cells, tm.CellsPerSec, tm.Evaluations)
	}
	if len(timings) > 0 {
		fmt.Fprintf(stderr, "total %21.2fs  (workers=%d)\n", totalWall.Seconds(), poolSize)
	}

	// JSON and bench artifacts are written even after a failure or
	// interrupt: whatever completed is still a valid, parseable payload.
	if *jsonP != "" {
		if err := writeJSON(*jsonP, allFigures); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if *bench != "" {
		artifact := benchArtifact{
			Command:     "wrsn-experiments -fig " + *fig,
			Workers:     poolSize,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			MemoEntries: *memo,
			Features:    model.EvaluatorFeatures(),
			Partial:     ctx.Err() != nil,
			Figures:     timings,
		}
		artifact.TotalWallSeconds = totalWall.Seconds()
		for _, tm := range timings {
			artifact.TotalActiveSeconds += tm.ActiveSeconds
			artifact.TotalCells += tm.Cells
			artifact.TotalEvaluations += tm.Evaluations
		}
		if err := writeJSON(*bench, artifact); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// execLauncher starts shard workers as subprocesses of this binary in
// -shard-worker mode — the process-level half of -shard-coordinator.
// Worker stdout (figure tables assembled from a partial grid) is
// discarded; the committed spool segment is the real output. Worker
// stderr passes through for debugging.
type execLauncher struct {
	bin    string
	args   []string
	spool  string
	stderr io.Writer
}

func (e *execLauncher) Start(_ context.Context, lease shard.Lease) (shard.Handle, error) {
	args := append(append([]string{}, e.args...),
		"-shard-worker",
		"-shard-spool", e.spool,
		"-shard-sweep", lease.Sweep,
		"-shard-range", fmt.Sprintf("%d:%d", lease.Start, lease.End),
		"-shard-epoch", strconv.FormatInt(lease.Epoch, 10),
	)
	cmd := exec.Command(e.bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = e.stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &execHandle{cmd: cmd}, nil
}

type execHandle struct{ cmd *exec.Cmd }

func (h *execHandle) Wait() error { return h.cmd.Wait() }

// Kill revokes the lease with a SIGKILL — the worker gets no chance to
// commit, which is exactly the guarantee revocation needs (anything it
// might still write carries a stale epoch and is fenced at merge).
func (h *execHandle) Kill() {
	if h.cmd.Process != nil {
		_ = h.cmd.Process.Kill()
	}
}

// writeJSON atomically writes v as indented JSON to path: encode into a
// temp file in the destination's directory, fsync, then rename over the
// target. A crash or encode failure at any point leaves an existing
// artifact at path untouched — readers never see a truncated file.
func writeJSON(path string, v interface{}) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	discard := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return discard(err)
	}
	if err := f.Sync(); err != nil {
		return discard(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself; best-effort, as not every filesystem
	// supports directory fsync.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
