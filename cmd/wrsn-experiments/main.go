// Command wrsn-experiments regenerates the paper's evaluation: every
// figure of Section II (field experiments) and Section VI (simulations).
//
// Usage:
//
//	wrsn-experiments -fig all            # everything, paper-scale
//	wrsn-experiments -fig 8 -seeds 5     # one figure, fewer seeds
//	wrsn-experiments -fig 7a -quick      # scaled-down quick run
//	wrsn-experiments -fig 6 -csv         # emit CSV instead of tables
//
// Figures: 1 (field experiment / Table II), 6 (iterative RFH
// convergence), 7a/7b (heuristics vs optimal), 8 (node-count sweep),
// 9 (post-count sweep), 10 (power-level sweep).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"wrsn/internal/experiments"
	"wrsn/internal/render"
	"wrsn/internal/texttable"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wrsn-experiments", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "all", "figure to regenerate: 1, 6, 7a, 7b, 8, 9, 10 or all")
		seeds = fs.Int("seeds", 0, "random post distributions to average (0 = paper default)")
		seed  = fs.Int64("seed", 1, "base random seed")
		quick = fs.Bool("quick", false, "scaled-down run (fewer seeds/points, same trends)")
		csv   = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		chart = fs.Bool("chart", false, "additionally draw each figure as an ASCII chart")
		jsonP = fs.String("json", "", "additionally write the structured figures as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Seeds: *seeds, BaseSeed: *seed, Quick: *quick}

	wanted := strings.Split(strings.ToLower(*fig), ",")
	selected := map[string]bool{}
	for _, w := range wanted {
		w = strings.TrimSpace(w)
		switch w {
		case "all":
			for _, id := range []string{"1", "6", "7a", "7b", "8", "9", "10"} {
				selected[id] = true
			}
		case "ext":
			for _, id := range []string{"ext-gain", "ext-overhead", "ext-charger", "ext-layout", "ext-delta", "ext-validation", "ext-fault", "ext-repair", "portfolio"} {
				selected[id] = true
			}
		default:
			selected[strings.TrimPrefix(w, "fig")] = true
		}
	}

	type runner struct {
		id string
		fn func() ([]*texttable.Table, []*experiments.Figure, error)
	}
	comparison := func(f func(experiments.Options) (*experiments.Figure, error)) func() ([]*texttable.Table, []*experiments.Figure, error) {
		return func() ([]*texttable.Table, []*experiments.Figure, error) {
			fig, err := f(opts)
			if err != nil {
				return nil, nil, err
			}
			return []*texttable.Table{experiments.ComparisonTable(fig)}, []*experiments.Figure{fig}, nil
		}
	}
	runners := []runner{
		{"1", func() ([]*texttable.Table, []*experiments.Figure, error) {
			res, err := experiments.Fig1(opts)
			if err != nil {
				return nil, nil, err
			}
			figs := make([]*experiments.Figure, len(res.Figures))
			for i := range res.Figures {
				figs[i] = &res.Figures[i]
			}
			return res.Tables(), figs, nil
		}},
		{"6", func() ([]*texttable.Table, []*experiments.Figure, error) {
			fig, err := experiments.Fig6(opts)
			if err != nil {
				return nil, nil, err
			}
			return []*texttable.Table{experiments.Fig6Table(fig)}, []*experiments.Figure{fig}, nil
		}},
		{"7a", comparison(experiments.Fig7a)},
		{"7b", comparison(experiments.Fig7b)},
		{"8", comparison(experiments.Fig8)},
		{"9", comparison(experiments.Fig9)},
		{"10", comparison(experiments.Fig10)},
		{"ext-gain", comparison(experiments.ExtGain)},
		{"ext-overhead", comparison(experiments.ExtOverhead)},
		{"ext-charger", comparison(experiments.ExtChargerPolicy)},
		{"ext-layout", comparison(experiments.ExtLayout)},
		{"ext-delta", comparison(experiments.ExtDelta)},
		{"ext-validation", comparison(experiments.ExtSimValidation)},
		{"ext-fault", comparison(experiments.ExtFaultTolerance)},
		{"ext-repair", comparison(experiments.ExtRepair)},
		{"portfolio", func() ([]*texttable.Table, []*experiments.Figure, error) {
			entries, err := experiments.ExtPortfolio(opts)
			if err != nil {
				return nil, nil, err
			}
			t := texttable.New("Solver portfolio (350x350m, 40 posts, 200 nodes)",
				"solver", "mean cost (µJ)", "gap to best (%)", "runtime (ms)")
			for _, e := range entries {
				t.AddRow(e.Solver, e.MeanCost, e.MeanGapPct, e.MeanRuntimeMS)
			}
			return []*texttable.Table{t}, nil, nil
		}},
	}

	ran := 0
	var allFigures []*experiments.Figure
	for _, r := range runners {
		if !selected[r.id] {
			continue
		}
		ran++
		start := time.Now()
		tables, figures, err := r.fn()
		if err != nil {
			return fmt.Errorf("figure %s: %w", r.id, err)
		}
		allFigures = append(allFigures, figures...)
		fmt.Fprintf(stdout, "=== Figure %s (%.1fs) ===\n\n", r.id, time.Since(start).Seconds())
		for _, t := range tables {
			if *csv {
				fmt.Fprint(stdout, t.CSV())
			} else {
				fmt.Fprintln(stdout, t.String())
			}
		}
		if *chart {
			for _, f := range figures {
				series := make([]render.ChartSeries, len(f.Series))
				for si, s := range f.Series {
					series[si] = render.ChartSeries{Label: s.Label, Y: s.Y}
				}
				drawn, err := render.Chart(f.Title+" ("+f.YLabel+")", f.X, series, 64, 14)
				if err != nil {
					return fmt.Errorf("figure %s chart: %w", r.id, err)
				}
				fmt.Fprintln(stdout, drawn)
			}
		}
	}
	if *jsonP != "" && ran > 0 {
		f, err := os.Create(*jsonP)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(allFigures); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if ran == 0 {
		return fmt.Errorf("no figure matches %q (valid: 1, 6, 7a, 7b, 8, 9, 10, all, ext, ext-gain, ext-overhead, ext-charger, ext-fault, ext-repair)", *fig)
	}
	return nil
}
