// Command wrsn-experiments regenerates the paper's evaluation: every
// figure of Section II (field experiments) and Section VI (simulations).
//
// Usage:
//
//	wrsn-experiments -fig all            # everything, paper-scale
//	wrsn-experiments -fig 8 -seeds 5     # one figure, fewer seeds
//	wrsn-experiments -fig 7a -quick      # scaled-down quick run
//	wrsn-experiments -fig 6 -csv         # emit CSV instead of tables
//	wrsn-experiments -fig all -workers 8 -progress
//	wrsn-experiments -fig all -bench BENCH_PR3.json
//	wrsn-experiments -fig 8 -cpuprofile cpu.pprof -memprofile mem.pprof
//	wrsn-experiments -fig all -checkpoint ckpt        # journal each cell
//	wrsn-experiments -fig all -checkpoint ckpt -resume # skip journaled cells
//
// Figures: 1 (field experiment / Table II), 6 (iterative RFH
// convergence), 7a/7b (heuristics vs optimal), 8 (node-count sweep),
// 9 (post-count sweep), 10 (power-level sweep), plus the ext-* extension
// studies and the solver portfolio.
//
// Selected figures run concurrently on the experiment engine, sharing
// one cell-concurrency budget (-workers); output is buffered per figure
// and printed in a fixed order, so stdout is byte-identical at any
// worker count. Ctrl-C cancels in-flight sweeps; figures completed
// before the interrupt are still printed and written to -json, in-flight
// cells get -grace to finish and be journaled, and artifacts carry
// "partial": true. A second Ctrl-C kills the process immediately. With
// -checkpoint, a later run with -resume replays the journals and
// produces byte-identical output to an uninterrupted run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"wrsn/internal/engine"
	"wrsn/internal/experiments"
	"wrsn/internal/render"
	"wrsn/internal/texttable"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// After the first signal starts a graceful drain, unregister the
	// handler so a second Ctrl-C falls through to the default action and
	// kills the process immediately.
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-experiments:", err)
		os.Exit(1)
	}
}

// run keeps the historical single-writer entry point (used by tests).
func run(args []string, stdout io.Writer) error {
	return runCtx(context.Background(), args, stdout, io.Discard)
}

// progressRenderer folds cell events from every concurrently running
// figure into one live stderr line.
type progressRenderer struct {
	mu    sync.Mutex
	done  map[string]int
	total map[string]int
	out   io.Writer
}

func newProgressRenderer(out io.Writer) *progressRenderer {
	return &progressRenderer{done: map[string]int{}, total: map[string]int{}, out: out}
}

func (pr *progressRenderer) observe(ev engine.Event) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.total[ev.Sweep] = ev.Total
	if ev.Kind == engine.CellFinished {
		pr.done[ev.Sweep] = ev.Done
	}
	var done, total int
	for id := range pr.total {
		done += pr.done[id]
		total += pr.total[id]
	}
	fmt.Fprintf(pr.out, "\r%-72s", fmt.Sprintf("%d/%d cells  (%s: %s)", done, total, ev.Sweep, ev.Algorithm))
}

func (pr *progressRenderer) finish() {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if len(pr.total) > 0 {
		fmt.Fprintln(pr.out)
	}
}

// benchArtifact is the machine-readable perf record written by -bench:
// the trajectory future optimisation PRs measure themselves against.
type benchArtifact struct {
	Command            string  `json:"command"`
	Workers            int     `json:"workers"`
	TotalWallSeconds   float64 `json:"total_wall_seconds"`
	TotalActiveSeconds float64 `json:"total_active_seconds"`
	TotalCells         int     `json:"total_cells"`
	TotalEvaluations   int64   `json:"total_solver_evaluations"`
	// Partial marks an artifact from an interrupted run: its numbers
	// cover only the cells that completed and are not comparable to a
	// full run's (cmd/benchguard flags and skips such artifacts).
	Partial bool            `json:"partial,omitempty"`
	Figures []engine.Timing `json:"figures"`
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("wrsn-experiments", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "figure(s) to regenerate (comma-separated ids, all, or ext)")
		seeds    = fs.Int("seeds", 0, "random post distributions to average (0 = paper default)")
		seed     = fs.Int64("seed", 1, "base random seed")
		quick    = fs.Bool("quick", false, "scaled-down run (fewer seeds/points, same trends)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		chart    = fs.Bool("chart", false, "additionally draw each figure as an ASCII chart")
		jsonP    = fs.String("json", "", "additionally write the structured figures as JSON to this file")
		workers  = fs.Int("workers", 0, "engine worker-pool size shared across figures (0 = GOMAXPROCS; results identical at any value)")
		timeout  = fs.Duration("timeout", 0, "per-cell timeout, e.g. 30s (0 = unbounded)")
		progress = fs.Bool("progress", false, "render a live cell-progress line on stderr")
		bench    = fs.String("bench", "", "write a machine-readable perf artifact (per-figure wall time, cells/sec, evaluations) to this file")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")

		checkpoint = fs.String("checkpoint", "", "journal each completed cell to a crash-safe file per figure under this directory")
		resume     = fs.Bool("resume", false, "replay existing -checkpoint journals and skip already-completed cells (output stays byte-identical)")
		retries    = fs.Int("retries", 1, "attempts per cell before a failure is terminal (1 = no retry)")
		retryBase  = fs.Duration("retry-base", 100*time.Millisecond, "first retry backoff delay (doubles per retry, deterministically jittered)")
		retryMax   = fs.Duration("retry-max", 5*time.Second, "backoff delay cap")
		grace      = fs.Duration("grace", 10*time.Second, "how long in-flight cells may finish (and be journaled) after an interrupt before being hard-cancelled")

		chaosPanic   = fs.Float64("chaos-panic", 0, "TESTING: fraction of cell attempts that panic (deterministic, seeded)")
		chaosError   = fs.Float64("chaos-error", 0, "TESTING: fraction of cell attempts that fail with an injected error")
		chaosLatFrac = fs.Float64("chaos-latency-frac", 0, "TESTING: fraction of cell attempts delayed by -chaos-latency")
		chaosLatency = fs.Duration("chaos-latency", 10*time.Millisecond, "TESTING: injected latency per affected attempt")
		chaosSeed    = fs.Int64("chaos-seed", 0, "TESTING: chaos injection seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// Deferred so the profile covers the run's live heap, from the
		// same binary that writes the BENCH_*.json artifacts.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(stderr, "wrsn-experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "wrsn-experiments: memprofile:", err)
			}
		}()
	}
	poolSize := *workers
	if poolSize <= 0 {
		poolSize = runtime.GOMAXPROCS(0)
	}
	baseOpts := experiments.Options{
		Seeds:    *seeds,
		BaseSeed: *seed,
		Quick:    *quick,
		Context:  ctx,
		Workers:  poolSize,
		Timeout:  *timeout,
		// One budget for every concurrently running figure: combined
		// active cells never exceed the pool size.
		Limiter:    engine.NewLimiter(poolSize),
		Retry:      engine.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase, MaxDelay: *retryMax},
		DrainGrace: *grace,
	}
	if *checkpoint != "" {
		baseOpts.Checkpoint = &engine.Checkpoint{Dir: *checkpoint, Resume: *resume}
	}
	if *chaosPanic > 0 || *chaosError > 0 || *chaosLatFrac > 0 {
		baseOpts.Chaos = &engine.ChaosConfig{
			Seed:        *chaosSeed,
			PanicFrac:   *chaosPanic,
			ErrorFrac:   *chaosError,
			LatencyFrac: *chaosLatFrac,
			Latency:     *chaosLatency,
		}
	}

	type runner struct {
		id string
		fn func(opts experiments.Options) ([]*texttable.Table, []*experiments.Figure, error)
	}
	comparison := func(f func(experiments.Options) (*experiments.Figure, error)) func(experiments.Options) ([]*texttable.Table, []*experiments.Figure, error) {
		return func(opts experiments.Options) ([]*texttable.Table, []*experiments.Figure, error) {
			fig, err := f(opts)
			if err != nil {
				return nil, nil, err
			}
			return []*texttable.Table{experiments.ComparisonTable(fig)}, []*experiments.Figure{fig}, nil
		}
	}
	runners := []runner{
		{"1", func(opts experiments.Options) ([]*texttable.Table, []*experiments.Figure, error) {
			res, err := experiments.Fig1(opts)
			if err != nil {
				return nil, nil, err
			}
			figs := make([]*experiments.Figure, len(res.Figures))
			for i := range res.Figures {
				figs[i] = &res.Figures[i]
			}
			return res.Tables(), figs, nil
		}},
		{"6", func(opts experiments.Options) ([]*texttable.Table, []*experiments.Figure, error) {
			fig, err := experiments.Fig6(opts)
			if err != nil {
				return nil, nil, err
			}
			return []*texttable.Table{experiments.Fig6Table(fig)}, []*experiments.Figure{fig}, nil
		}},
		{"7a", comparison(experiments.Fig7a)},
		{"7b", comparison(experiments.Fig7b)},
		{"8", comparison(experiments.Fig8)},
		{"9", comparison(experiments.Fig9)},
		{"10", comparison(experiments.Fig10)},
		{"ext-gain", comparison(experiments.ExtGain)},
		{"ext-overhead", comparison(experiments.ExtOverhead)},
		{"ext-charger", comparison(experiments.ExtChargerPolicy)},
		{"ext-layout", comparison(experiments.ExtLayout)},
		{"ext-delta", comparison(experiments.ExtDelta)},
		{"ext-validation", comparison(experiments.ExtSimValidation)},
		{"ext-fault", comparison(experiments.ExtFaultTolerance)},
		{"ext-repair", comparison(experiments.ExtRepair)},
		{"portfolio", func(opts experiments.Options) ([]*texttable.Table, []*experiments.Figure, error) {
			entries, err := experiments.ExtPortfolio(opts)
			if err != nil {
				return nil, nil, err
			}
			t := texttable.New("Solver portfolio (350x350m, 40 posts, 200 nodes)",
				"solver", "mean cost (µJ)", "gap to best (%)", "runtime (ms)")
			for _, e := range entries {
				t.AddRow(e.Solver, e.MeanCost, e.MeanGapPct, e.MeanRuntimeMS)
			}
			return []*texttable.Table{t}, nil, nil
		}},
	}

	// "all" and "ext" are derived from the runner table, as is the
	// valid-id list in the error below — new figures can't drift out.
	wanted := strings.Split(strings.ToLower(*fig), ",")
	selected := map[string]bool{}
	for _, w := range wanted {
		w = strings.TrimSpace(w)
		switch w {
		case "all":
			for _, r := range runners {
				if !strings.HasPrefix(r.id, "ext-") && r.id != "portfolio" {
					selected[r.id] = true
				}
			}
		case "ext":
			for _, r := range runners {
				if strings.HasPrefix(r.id, "ext-") || r.id == "portfolio" {
					selected[r.id] = true
				}
			}
		default:
			selected[strings.TrimPrefix(w, "fig")] = true
		}
	}
	var active []runner
	for _, r := range runners {
		if selected[r.id] {
			active = append(active, r)
		}
	}
	if len(active) == 0 {
		valid := make([]string, 0, len(runners))
		for _, r := range runners {
			valid = append(valid, r.id)
		}
		return fmt.Errorf("no figure matches %q (valid: %s, all, ext)", *fig, strings.Join(valid, ", "))
	}

	var renderer *progressRenderer
	if *progress {
		renderer = newProgressRenderer(stderr)
	}

	// Every selected figure runs concurrently under the shared cell
	// limiter; output is buffered per figure and printed in table order
	// below, keeping stdout deterministic.
	type figOutput struct {
		tables  []*texttable.Table
		figures []*experiments.Figure
		timing  engine.Timing
		err     error
	}
	outputs := make([]figOutput, len(active))
	totalStart := time.Now()
	var wg sync.WaitGroup
	for i, r := range active {
		wg.Add(1)
		go func(i int, r runner) {
			defer wg.Done()
			var cells int
			var evaluations int64
			var active time.Duration
			opts := baseOpts
			opts.Progress = func(ev engine.Event) {
				if ev.Kind == engine.CellFinished && ev.Err == nil {
					cells++
					evaluations += ev.Evaluations
					// Summed cell runtimes, not elapsed time: under the
					// shared limiter a figure's wall clock also counts time
					// spent waiting on other figures' cells.
					active += ev.Duration
				}
				if renderer != nil {
					renderer.observe(ev)
				}
			}
			start := time.Now()
			tables, figures, err := r.fn(opts)
			wall := time.Since(start)
			outputs[i] = figOutput{
				tables:  tables,
				figures: figures,
				timing:  engine.NewTiming(r.id, wall, active, cells, evaluations, poolSize),
				err:     err,
			}
		}(i, r)
	}
	wg.Wait()
	if renderer != nil {
		renderer.finish()
	}

	// Print completed figures in table order; stop at the first failure
	// like the historical sequential runner did.
	allFigures := []*experiments.Figure{} // non-nil: -json writes [] when no runner yields figures
	var timings []engine.Timing
	var firstErr error
	for i, r := range active {
		out := &outputs[i]
		if out.err != nil {
			firstErr = fmt.Errorf("figure %s: %w", r.id, out.err)
			break
		}
		allFigures = append(allFigures, out.figures...)
		timings = append(timings, out.timing)
		fmt.Fprintf(stdout, "=== Figure %s ===\n\n", r.id)
		for _, t := range out.tables {
			if *csv {
				fmt.Fprint(stdout, t.CSV())
			} else {
				fmt.Fprintln(stdout, t.String())
			}
		}
		if *chart {
			for _, f := range out.figures {
				series := make([]render.ChartSeries, len(f.Series))
				for si, s := range f.Series {
					series[si] = render.ChartSeries{Label: s.Label, Y: s.Y}
				}
				drawn, err := render.Chart(f.Title+" ("+f.YLabel+")", f.X, series, 64, 14)
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("figure %s chart: %w", r.id, err)
					}
					break
				}
				fmt.Fprintln(stdout, drawn)
			}
			if firstErr != nil {
				break
			}
		}
	}
	totalWall := time.Since(totalStart)

	for _, tm := range timings {
		fmt.Fprintf(stderr, "figure %-14s %7.2fs wall  %7.2fs active  %4d cells  %8.1f cells/s  %d evaluations\n",
			tm.Figure, tm.WallSeconds, tm.ActiveSeconds, tm.Cells, tm.CellsPerSec, tm.Evaluations)
	}
	if len(timings) > 0 {
		fmt.Fprintf(stderr, "total %21.2fs  (workers=%d)\n", totalWall.Seconds(), poolSize)
	}

	// JSON and bench artifacts are written even after a failure or
	// interrupt: whatever completed is still a valid, parseable payload.
	if *jsonP != "" {
		if err := writeJSON(*jsonP, allFigures); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if *bench != "" {
		artifact := benchArtifact{
			Command: "wrsn-experiments -fig " + *fig,
			Workers: poolSize,
			Partial: ctx.Err() != nil,
			Figures: timings,
		}
		artifact.TotalWallSeconds = totalWall.Seconds()
		for _, tm := range timings {
			artifact.TotalActiveSeconds += tm.ActiveSeconds
			artifact.TotalCells += tm.Cells
			artifact.TotalEvaluations += tm.Evaluations
		}
		if err := writeJSON(*bench, artifact); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// writeJSON atomically writes v as indented JSON to path: encode into a
// temp file in the destination's directory, fsync, then rename over the
// target. A crash or encode failure at any point leaves an existing
// artifact at path untouched — readers never see a truncated file.
func writeJSON(path string, v interface{}) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	discard := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return discard(err)
	}
	if err := f.Sync(); err != nil {
		return discard(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself; best-effort, as not every filesystem
	// supports directory fsync.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
