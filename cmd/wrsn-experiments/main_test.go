package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestQuickFigureTable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "7a", "-quick", "-seeds", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "=== Figure 7a") {
		t.Errorf("missing figure banner:\n%s", s)
	}
	for _, col := range []string{"Optimal (µJ)", "IDB(δ=1) (µJ)", "RFH (µJ)"} {
		if !strings.Contains(s, col) {
			t.Errorf("missing column %q:\n%s", col, s)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-csv"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "iteration,") {
		t.Errorf("missing CSV header:\n%s", s)
	}
	if strings.Contains(s, "---") {
		t.Errorf("CSV output contains table rules:\n%s", s)
	}
}

func TestFigureSelection(t *testing.T) {
	if err := run([]string{"-fig", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown figure accepted")
	}
	var out bytes.Buffer
	if err := run([]string{"-fig", "1,6", "-quick", "-seeds", "1"}, &out); err != nil {
		t.Fatalf("comma-separated selection: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "=== Figure 1") || !strings.Contains(s, "=== Figure 6") {
		t.Errorf("selection did not run both figures:\n%s", s)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "figs.json")
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-json", jsonPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("json not written: %v", err)
	}
	var figs []map[string]interface{}
	if err := json.Unmarshal(raw, &figs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(figs) != 1 || figs[0]["id"] != "fig6" {
		t.Errorf("unexpected figures payload: %v", figs)
	}
}

// TestJSONEmptyFigures: a selection whose runners produce only tables
// (the portfolio) must still write a valid empty JSON array, not "null".
func TestJSONEmptyFigures(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "figs.json")
	var out bytes.Buffer
	if err := run([]string{"-fig", "portfolio", "-quick", "-seeds", "1", "-json", jsonPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("json not written: %v", err)
	}
	if got := strings.TrimSpace(string(raw)); got != "[]" {
		t.Errorf("want empty JSON array, got %q", got)
	}
}

// TestWorkersByteIdentical: the engine's deterministic cell seeding means
// stdout and the JSON payload are byte-identical at any worker count.
func TestWorkersByteIdentical(t *testing.T) {
	runAt := func(workers string) (string, []byte) {
		t.Helper()
		dir := t.TempDir()
		jsonPath := filepath.Join(dir, "figs.json")
		var out bytes.Buffer
		args := []string{"-fig", "6,7a", "-quick", "-seeds", "2", "-workers", workers, "-json", jsonPath}
		if err := run(args, &out); err != nil {
			t.Fatalf("run -workers %s: %v", workers, err)
		}
		raw, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatalf("json not written: %v", err)
		}
		return out.String(), raw
	}
	baseOut, baseJSON := runAt("1")
	for _, workers := range []string{"2", "4"} {
		gotOut, gotJSON := runAt(workers)
		if gotOut != baseOut {
			t.Errorf("-workers %s stdout differs from -workers 1:\n%s\nvs\n%s", workers, gotOut, baseOut)
		}
		if !bytes.Equal(gotJSON, baseJSON) {
			t.Errorf("-workers %s JSON differs from -workers 1", workers)
		}
	}
}

func TestChartOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-chart"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, frag := range []string{"a = 400 nodes", "+----"} {
		if !strings.Contains(s, frag) {
			t.Errorf("chart output missing %q:\n%s", frag, s)
		}
	}
}

func TestFlagErrors(t *testing.T) {
	if err := run([]string{"-fig", "6", "-json", "/nonexistent-dir/x.json", "-quick", "-seeds", "1"}, &bytes.Buffer{}); err == nil {
		t.Error("unwritable JSON path accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-cpuprofile", cpu, "-memprofile", mem}, &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-cpuprofile", filepath.Join(dir, "no/such/dir.pprof")}, &bytes.Buffer{}); err == nil {
		t.Error("unwritable cpuprofile path accepted")
	}
}

// TestWriteJSONAtomic: a failed write (unmarshalable value) must never
// truncate or clobber an existing artifact at the destination path.
func TestWriteJSONAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := writeJSON(path, map[string]int{"ok": 1}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// NaN is not representable in JSON: Encode fails after os.Create
	// would already have truncated the file under the old implementation.
	if err := writeJSON(path, map[string]float64{"bad": math.NaN()}); err == nil {
		t.Fatal("NaN payload encoded without error")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("existing artifact destroyed by failed write: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("existing artifact modified by failed write:\n%s\nvs\n%s", after, before)
	}
	// No temp-file litter either.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "artifact.json" {
		t.Errorf("directory not clean after failed write: %v", entries)
	}
}

// TestCheckpointResumeCLI: a checkpointed run, a resumed run and a plain
// run all produce byte-identical stdout and JSON.
func TestCheckpointResumeCLI(t *testing.T) {
	runWith := func(extra ...string) (string, []byte) {
		t.Helper()
		jsonPath := filepath.Join(t.TempDir(), "figs.json")
		var out bytes.Buffer
		args := append([]string{"-fig", "8", "-quick", "-seeds", "1", "-json", jsonPath}, extra...)
		if err := run(args, &out); err != nil {
			t.Fatalf("run %v: %v", extra, err)
		}
		raw, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		return out.String(), raw
	}
	plainOut, plainJSON := runWith()

	ckpt := t.TempDir()
	ckptOut, ckptJSON := runWith("-checkpoint", ckpt)
	if ckptOut != plainOut || !bytes.Equal(ckptJSON, plainJSON) {
		t.Error("checkpointed run differs from plain run")
	}
	if _, err := os.Stat(filepath.Join(ckpt, "fig8.journal")); err != nil {
		t.Errorf("journal not written: %v", err)
	}

	// Resume from the complete journal: every cell is replayed, output
	// stays byte-identical.
	resumeOut, resumeJSON := runWith("-checkpoint", ckpt, "-resume")
	if resumeOut != plainOut || !bytes.Equal(resumeJSON, plainJSON) {
		t.Error("resumed run differs from plain run")
	}
}

// TestResumeRequiresCheckpoint: -resume without -checkpoint is a usage
// error, not a silent no-op.
func TestResumeRequiresCheckpoint(t *testing.T) {
	err := run([]string{"-fig", "8", "-quick", "-seeds", "1", "-resume"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-checkpoint") {
		t.Errorf("want -resume usage error, got %v", err)
	}
}

// TestChaosFlagsByteIdentical: with enough retries every injected fault
// is absorbed and the output matches a clean run exactly.
func TestChaosFlagsByteIdentical(t *testing.T) {
	runWith := func(extra ...string) string {
		t.Helper()
		var out bytes.Buffer
		args := append([]string{"-fig", "6", "-quick", "-seeds", "1"}, extra...)
		if err := run(args, &out); err != nil {
			t.Fatalf("run %v: %v", extra, err)
		}
		return out.String()
	}
	clean := runWith()
	chaotic := runWith("-chaos-error", "0.3", "-chaos-panic", "0.1", "-chaos-seed", "11", "-retries", "20")
	if chaotic != clean {
		t.Errorf("chaos run output differs from clean run:\n%s\nvs\n%s", chaotic, clean)
	}
}

// TestBenchArtifactNotPartial: an uninterrupted run must not mark its
// bench artifact partial.
func TestBenchArtifactNotPartial(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-bench", benchPath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var art struct {
		Partial bool `json:"partial"`
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatal(err)
	}
	if art.Partial {
		t.Error("clean run marked partial")
	}
}

// TestInterruptedBenchArtifactPartial: cancelling mid-run still writes
// the bench artifact, marked "partial": true.
func TestInterruptedBenchArtifactPartial(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "bench.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runCtx(ctx, []string{"-fig", "8", "-quick", "-seeds", "1", "-bench", benchPath, "-grace", "0s"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("bench artifact not written on interrupt: %v", err)
	}
	var art struct {
		Partial bool `json:"partial"`
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatal(err)
	}
	if !art.Partial {
		t.Errorf("interrupted artifact not marked partial: %s", raw)
	}
}

// TestExitCodeClassification pins the process exit contract: 0 for a
// complete run, 3 for a drained interrupt (partial but valid), 1 for
// real failure — including that a cancelled runCtx error classifies as
// partial end to end.
func TestExitCodeClassification(t *testing.T) {
	if got := exitCode(nil); got != 0 {
		t.Errorf("exitCode(nil) = %d, want 0", got)
	}
	if got := exitCode(errors.New("boom")); got != exitFailed {
		t.Errorf("exitCode(failure) = %d, want %d", got, exitFailed)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runCtx(ctx, []string{"-fig", "8", "-quick", "-seeds", "1", "-grace", "0s"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if got := exitCode(err); got != exitPartial {
		t.Errorf("exitCode(interrupted run) = %d, want %d (err: %v)", got, exitPartial, err)
	}
}

// TestChaosRequiresSeed: enabling any chaos injection without an
// explicit -chaos-seed is a usage error — the seed is part of the
// experiment record, not an implicit default.
func TestChaosRequiresSeed(t *testing.T) {
	for _, args := range [][]string{
		{"-fig", "6", "-quick", "-seeds", "1", "-chaos-error", "0.1"},
		{"-fig", "6", "-quick", "-seeds", "1", "-chaos-panic", "0.1"},
		{"-fig", "6", "-quick", "-seeds", "1", "-chaos-worker-kill", "0.5"},
	} {
		err := run(args, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), "-chaos-seed") {
			t.Errorf("run %v: want chaos-seed usage error, got %v", args, err)
		}
	}
	// An explicit seed satisfies the check even with chaos disabled.
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-chaos-seed", "7"}, &bytes.Buffer{}); err != nil {
		t.Errorf("explicit -chaos-seed alone rejected: %v", err)
	}
}

// TestShardFlagValidation: malformed shard-mode flag combinations fail
// fast with a usage error instead of half-starting a run.
func TestShardFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-fig", "8", "-shard-coordinator", "-shard-worker", "-shard-spool", "s"}, "mutually exclusive"},
		{[]string{"-fig", "8", "-shard-spool", "s"}, "needs one of"},
		{[]string{"-fig", "8", "-shard-workers", "4"}, "needs one of"},
		{[]string{"-fig", "8", "-shard-coordinator"}, "require -shard-spool"},
		{[]string{"-fig", "8", "-shard-coordinator", "-shard-spool", "s", "-checkpoint", "c"}, "spool owns journaling"},
		{[]string{"-fig", "8", "-shard-worker", "-shard-spool", "s"}, "-shard-worker requires"},
		{[]string{"-fig", "8", "-shard-worker", "-shard-spool", "s", "-shard-sweep", "fig8", "-shard-range", "0:4"}, "-shard-worker requires"},
	}
	for _, tc := range cases {
		err := run(tc.args, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run %v: want error containing %q, got %v", tc.args, tc.want, err)
		}
	}
}

// TestShardWorkerMergeCLI runs a figure as two -shard-worker
// invocations over complementary cell ranges plus a -shard-merge, all
// in-process, and requires stdout and the JSON artifact to be
// byte-identical to a plain run. (The subprocess coordinator path is
// exercised end to end by ci/chaos-smoke.sh.)
func TestShardWorkerMergeCLI(t *testing.T) {
	ckpt := t.TempDir()
	jsonPlain := filepath.Join(t.TempDir(), "figs.json")
	var plainOut bytes.Buffer
	if err := run([]string{"-fig", "8", "-quick", "-seeds", "1", "-json", jsonPlain, "-checkpoint", ckpt}, &plainOut); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	// The journal records one line per cell plus a header: the grid size
	// without hardcoding the figure's quick-mode dimensions.
	journal, err := os.ReadFile(filepath.Join(ckpt, "fig8.journal"))
	if err != nil {
		t.Fatal(err)
	}
	cells := bytes.Count(journal, []byte("\n")) - 1
	if cells < 2 {
		t.Fatalf("fig8 quick grid has %d cells, too small to shard", cells)
	}

	spool := t.TempDir()
	mid := cells / 2
	for _, rng := range [][2]int{{0, mid}, {mid, cells}} {
		args := []string{"-fig", "8", "-quick", "-seeds", "1",
			"-shard-worker", "-shard-spool", spool, "-shard-sweep", "fig8",
			"-shard-range", fmt.Sprintf("%d:%d", rng[0], rng[1]), "-shard-epoch", "1"}
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("worker [%d:%d): %v", rng[0], rng[1], err)
		}
	}

	jsonMerged := filepath.Join(t.TempDir(), "figs.json")
	var mergedOut bytes.Buffer
	if err := run([]string{"-fig", "8", "-quick", "-seeds", "1", "-json", jsonMerged,
		"-shard-merge", "-shard-spool", spool}, &mergedOut); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if mergedOut.String() != plainOut.String() {
		t.Errorf("merged stdout differs from plain run:\n%s\nvs\n%s", mergedOut.String(), plainOut.String())
	}
	plainJSON, _ := os.ReadFile(jsonPlain)
	mergedJSON, _ := os.ReadFile(jsonMerged)
	if !bytes.Equal(plainJSON, mergedJSON) {
		t.Error("merged JSON artifact differs from plain run")
	}
}

func TestListSolversSortedStable(t *testing.T) {
	// The listing is part of the tool's scriptable surface (and the
	// daemon's /v1/solvers mirrors the same registry): it must be sorted
	// by solver name, sort each solver's kinds, and be byte-stable across
	// invocations — no map-iteration-order leaks.
	listing := func() string {
		var out bytes.Buffer
		if err := run([]string{"-list-solvers"}, &out); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	first := listing()
	lines := strings.Split(strings.TrimRight(first, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("listing too short:\n%s", first)
	}
	if !strings.HasPrefix(lines[0], "SOLVER") {
		t.Fatalf("missing header:\n%s", first)
	}
	var names []string
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("row %q has no kinds column", line)
		}
		names = append(names, fields[0])
		kinds := strings.Split(strings.TrimSpace(line[len(fields[0]):]), ", ")
		if !sort.StringsAreSorted(kinds) {
			t.Errorf("solver %s kinds not sorted: %v", fields[0], kinds)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("solver names not sorted: %v", names)
	}
	for _, want := range []string{"rfh", "optimal", "greedy", "auto"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry listing missing %q:\n%s", want, first)
		}
	}
	for i := 0; i < 3; i++ {
		if again := listing(); again != first {
			t.Fatalf("listing not byte-stable:\n%s\nvs\n%s", first, again)
		}
	}
}
