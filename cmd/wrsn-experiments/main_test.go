package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestQuickFigureTable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "7a", "-quick", "-seeds", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "=== Figure 7a") {
		t.Errorf("missing figure banner:\n%s", s)
	}
	for _, col := range []string{"Optimal (µJ)", "IDB(δ=1) (µJ)", "RFH (µJ)"} {
		if !strings.Contains(s, col) {
			t.Errorf("missing column %q:\n%s", col, s)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-csv"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "iteration,") {
		t.Errorf("missing CSV header:\n%s", s)
	}
	if strings.Contains(s, "---") {
		t.Errorf("CSV output contains table rules:\n%s", s)
	}
}

func TestFigureSelection(t *testing.T) {
	if err := run([]string{"-fig", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown figure accepted")
	}
	var out bytes.Buffer
	if err := run([]string{"-fig", "1,6", "-quick", "-seeds", "1"}, &out); err != nil {
		t.Fatalf("comma-separated selection: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "=== Figure 1") || !strings.Contains(s, "=== Figure 6") {
		t.Errorf("selection did not run both figures:\n%s", s)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "figs.json")
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-json", jsonPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("json not written: %v", err)
	}
	var figs []map[string]interface{}
	if err := json.Unmarshal(raw, &figs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(figs) != 1 || figs[0]["id"] != "fig6" {
		t.Errorf("unexpected figures payload: %v", figs)
	}
}

// TestJSONEmptyFigures: a selection whose runners produce only tables
// (the portfolio) must still write a valid empty JSON array, not "null".
func TestJSONEmptyFigures(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "figs.json")
	var out bytes.Buffer
	if err := run([]string{"-fig", "portfolio", "-quick", "-seeds", "1", "-json", jsonPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("json not written: %v", err)
	}
	if got := strings.TrimSpace(string(raw)); got != "[]" {
		t.Errorf("want empty JSON array, got %q", got)
	}
}

// TestWorkersByteIdentical: the engine's deterministic cell seeding means
// stdout and the JSON payload are byte-identical at any worker count.
func TestWorkersByteIdentical(t *testing.T) {
	runAt := func(workers string) (string, []byte) {
		t.Helper()
		dir := t.TempDir()
		jsonPath := filepath.Join(dir, "figs.json")
		var out bytes.Buffer
		args := []string{"-fig", "6,7a", "-quick", "-seeds", "2", "-workers", workers, "-json", jsonPath}
		if err := run(args, &out); err != nil {
			t.Fatalf("run -workers %s: %v", workers, err)
		}
		raw, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatalf("json not written: %v", err)
		}
		return out.String(), raw
	}
	baseOut, baseJSON := runAt("1")
	for _, workers := range []string{"2", "4"} {
		gotOut, gotJSON := runAt(workers)
		if gotOut != baseOut {
			t.Errorf("-workers %s stdout differs from -workers 1:\n%s\nvs\n%s", workers, gotOut, baseOut)
		}
		if !bytes.Equal(gotJSON, baseJSON) {
			t.Errorf("-workers %s JSON differs from -workers 1", workers)
		}
	}
}

func TestChartOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-chart"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, frag := range []string{"a = 400 nodes", "+----"} {
		if !strings.Contains(s, frag) {
			t.Errorf("chart output missing %q:\n%s", frag, s)
		}
	}
}

func TestFlagErrors(t *testing.T) {
	if err := run([]string{"-fig", "6", "-json", "/nonexistent-dir/x.json", "-quick", "-seeds", "1"}, &bytes.Buffer{}); err == nil {
		t.Error("unwritable JSON path accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-cpuprofile", cpu, "-memprofile", mem}, &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
	if err := run([]string{"-fig", "6", "-quick", "-seeds", "1", "-cpuprofile", filepath.Join(dir, "no/such/dir.pprof")}, &bytes.Buffer{}); err == nil {
		t.Error("unwritable cpuprofile path accepted")
	}
}
