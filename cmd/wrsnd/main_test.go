package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wrsn/internal/daemon"
	"wrsn/internal/geom"
	"wrsn/internal/model"
)

// startWrsnd runs runCtx on ":0" in a goroutine and returns the scraped
// base URL plus a cancel that triggers the drain path (the SIGTERM
// equivalent) and waits for exit.
func startWrsnd(t *testing.T, extraArgs ...string) (base string, shutdown func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stdout lockedBuffer
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { errc <- runCtx(ctx, args, &stdout, io.Discard) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if out := stdout.String(); strings.Contains(out, "listening on ") {
			addr := strings.TrimSpace(strings.TrimPrefix(out, "listening on "))
			base = "http://" + addr
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("wrsnd exited before listening: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("wrsnd never reported its address; stdout %q", stdout.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(30 * time.Second):
			t.Fatalf("wrsnd did not exit after cancellation")
			return nil
		}
	}
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func testProblemJSON(t *testing.T, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p, err := model.GenerateProblem(rng, model.GenSpec{
		Field: geom.Field{Width: 200, Height: 200},
		Posts: 6,
		Nodes: 10,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	body, err := json.Marshal(map[string]interface{}{"solver": "rfh", "problem": p})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return body
}

func TestServeSolveAndGracefulShutdown(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "plans.wal")
	base, shutdown := startWrsnd(t, "-journal", journal, "-drain-grace", "2s")
	client := &http.Client{}
	defer client.CloseIdleConnections()

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := testProblemJSON(t, 1)
	resp, err = client.Post(base+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d body %s", resp.StatusCode, data)
	}
	var first daemon.PlanResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if first.Cache != "miss" {
		t.Fatalf("first solve from cache %q", first.Cache)
	}
	client.CloseIdleConnections()

	// The signal path: cancellation drains cleanly (exit 0 ≡ nil error)
	// and flushes the journal.
	if err := shutdown(); err != nil {
		t.Fatalf("drain exit: %v", err)
	}

	// A second life warm-starts from the journal and answers the same
	// request byte-identically from cache.
	base2, shutdown2 := startWrsnd(t, "-journal", journal)
	defer func() {
		if err := shutdown2(); err != nil {
			t.Errorf("second drain: %v", err)
		}
	}()
	resp, err = client.Post(base2+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("warm plan: %v", err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var second daemon.PlanResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if second.Cache != "hit" {
		t.Fatalf("restarted daemon: cache %q, want hit", second.Cache)
	}
	if !bytes.Equal(first.Plan, second.Plan) {
		t.Fatalf("warm restart not byte-identical:\n%s\n%s", first.Plan, second.Plan)
	}
}

func TestChaosFlagsRequireSeed(t *testing.T) {
	err := runCtx(context.Background(), []string{"-chaos-panic", "0.5"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "chaos-seed") {
		t.Fatalf("err = %v, want the chaos-seed guard", err)
	}
}

func TestRejectsPositionalArguments(t *testing.T) {
	err := runCtx(context.Background(), []string{"serve"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("err = %v, want unexpected-arguments", err)
	}
}

func TestListenFailure(t *testing.T) {
	err := runCtx(context.Background(), []string{"-addr", "256.256.256.256:1"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatalf("bad address accepted")
	}
	_ = fmt.Sprint(err)
}
