// Command wrsnd serves planning as a service: a long-running HTTP/JSON
// daemon answering POST /v1/plan requests (a deployment problem or a
// charger-placement instance, a solver name from the registry, and a
// deadline) with crash tolerance at every layer — admission control with
// load shedding, a journaled LRU plan cache, per-request panic isolation
// and retries, per-solver circuit breakers, and graceful drain on
// SIGTERM.
//
// Usage:
//
//	wrsnd                                  # serve on 127.0.0.1:8347
//	wrsnd -addr :9000 -max-inflight 8      # bigger box
//	wrsnd -journal plans.wal               # warm-restartable plan cache
//	wrsnd -retries 3 -breaker-threshold 5  # production hardening
//	wrsnd -chaos-seed 42 -chaos-panic 0.2  # TESTING: seeded fault injection
//
// Endpoints: POST /v1/plan, GET /v1/solvers, GET /healthz (liveness),
// GET /readyz (admission), GET /statz (counters).
//
// The first SIGTERM or SIGINT starts a graceful drain: admission stops,
// in-flight solves get -drain-grace to finish, the plan cache is flushed
// to -journal (when set), and the process exits 0. A second signal kills
// it immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wrsn/internal/daemon"
	"wrsn/internal/engine"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// After the first signal starts the drain, unregister the handler so
	// a second signal falls through to the default action and kills the
	// process immediately.
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "wrsnd:", err)
		os.Exit(1)
	}
}

// runCtx is the testable entry point: it serves until ctx is cancelled
// (the signal path) and then drains. The listening address is printed to
// stdout as "listening on <addr>" so callers binding ":0" can scrape it.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("wrsnd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8347", "listen address")
		maxInflight = fs.Int("max-inflight", 0, "concurrent solves (0 = GOMAXPROCS)")
		maxQueue    = fs.Int("max-queue", 0, "admitted requests that may wait for a solve slot before shedding with 429 (0 = default 64)")
		maxBody     = fs.Int64("max-body", 0, "request body cap in bytes (0 = default 1 MiB)")
		defDeadline = fs.Duration("default-deadline", 0, "deadline for requests that name none (0 = default 30s)")
		maxDeadline = fs.Duration("max-deadline", 0, "largest deadline a request may ask for (0 = default 5m)")
		retries     = fs.Int("retries", 1, "attempts per solve before a failure is terminal (1 = no retry)")
		retryBase   = fs.Duration("retry-base", 100*time.Millisecond, "first retry backoff delay (doubles per retry, deterministically jittered)")
		retryMax    = fs.Duration("retry-max", 5*time.Second, "backoff delay cap")
		brThreshold = fs.Int("breaker-threshold", 0, "consecutive failures that trip a solver's circuit breaker (0 = breaker disabled)")
		brCooldown  = fs.Duration("breaker-cooldown", 10*time.Second, "how long a tripped breaker stays open before probing")
		drainGrace  = fs.Duration("drain-grace", 5*time.Second, "how long in-flight solves may finish after SIGTERM before being abandoned")
		cacheSize   = fs.Int("cache-entries", 0, "plan cache capacity (0 = default 1024)")
		journal     = fs.String("journal", "", "plan-cache journal path: flushed at drain, warm-started at boot")

		chaosPanic   = fs.Float64("chaos-panic", 0, "TESTING: fraction of solve attempts that panic (deterministic, seeded)")
		chaosError   = fs.Float64("chaos-error", 0, "TESTING: fraction of solve attempts that fail with an injected error")
		chaosLatFrac = fs.Float64("chaos-latency-frac", 0, "TESTING: fraction of solve attempts delayed by -chaos-latency")
		chaosLatency = fs.Duration("chaos-latency", 10*time.Millisecond, "TESTING: injected latency per affected attempt")
		chaosSeed    = fs.Int64("chaos-seed", 0, "TESTING: chaos injection seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	chaosRequested := false
	for name := range explicit {
		if strings.HasPrefix(name, "chaos-") && name != "chaos-seed" {
			chaosRequested = true
		}
	}
	if chaosRequested && !explicit["chaos-seed"] {
		return fmt.Errorf("-chaos-* flags require an explicit -chaos-seed: chaos schedules are deterministic and the seed is part of the test record")
	}

	cfg := daemon.Config{
		MaxInFlight:     *maxInflight,
		MaxQueue:        *maxQueue,
		MaxBodyBytes:    *maxBody,
		DefaultDeadline: *defDeadline,
		MaxDeadline:     *maxDeadline,
		Retry:           engine.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase, MaxDelay: *retryMax},
		Breaker:         daemon.BreakerConfig{Threshold: *brThreshold, Cooldown: *brCooldown},
		DrainGrace:      *drainGrace,
		CacheEntries:    *cacheSize,
		JournalPath:     *journal,
	}
	if *chaosPanic > 0 || *chaosError > 0 || *chaosLatFrac > 0 {
		cfg.Chaos = &engine.ChaosConfig{
			Seed:        *chaosSeed,
			PanicFrac:   *chaosPanic,
			ErrorFrac:   *chaosError,
			LatencyFrac: *chaosLatFrac,
			Latency:     *chaosLatency,
		}
		fmt.Fprintf(stderr, "wrsnd: CHAOS INJECTION ACTIVE (seed %d, panic %.2f, error %.2f, latency %.2f/%s)\n",
			*chaosSeed, *chaosPanic, *chaosError, *chaosLatFrac, *chaosLatency)
	}

	s, err := daemon.NewServer(cfg)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if s.Restored > 0 {
		fmt.Fprintf(stderr, "wrsnd: warm start: %d plans restored from %s\n", s.Restored, *journal)
	}
	fmt.Fprintf(stdout, "listening on %s\n", l.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	select {
	case err := <-serveErr:
		// Serve failed on its own (bad listener state etc.); nil would
		// mean an unexpected shutdown, which is equally wrong here.
		if err != nil {
			return err
		}
		return fmt.Errorf("server stopped unexpectedly")
	case <-ctx.Done():
	}

	fmt.Fprintf(stderr, "wrsnd: draining (grace %s)...\n", *drainGrace)
	// The drain itself runs under a fresh context: the signal context is
	// already cancelled, and the grace window is bounded by DrainGrace.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace+30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(stderr, "wrsnd: drained cleanly")
	return nil
}
