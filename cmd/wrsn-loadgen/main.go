// Command wrsn-loadgen replays an open-loop request stream against a
// running wrsnd, injecting client-side faults — malformed bodies,
// oversized problems, unknown solvers, slow-loris connections — and
// publishes a machine-readable latency/throughput artifact in the
// BENCH_*.json style: p50/p90/p99 latency, plans per second, shed rate,
// status and error-class counts, plus the daemon's own /statz snapshot.
//
// Usage:
//
//	wrsn-loadgen -addr http://127.0.0.1:8347 -requests 200 -rate 100
//	wrsn-loadgen -addr $URL -malformed-frac 0.1 -slowloris-frac 0.05 -out LOAD.json
//	wrsn-loadgen -addr $URL -solvers rfh,idb -problems 8 -deadline-ms 2000
//
// The stream is open-loop: requests launch on a fixed schedule derived
// from -rate regardless of how fast the daemon answers, so a slow daemon
// accumulates in-flight pressure exactly like real traffic (bounded by
// -max-open). Everything is deterministic from -seed: the same seed
// replays the same problems, the same fault schedule, the same request
// order.
//
// Exit code 0 means the run completed and the artifact was written; the
// daemon's error responses (429, 500, ...) are data, not failures.
// -require-2xx-frac optionally turns a low success rate into exit 1 for
// CI gates.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"wrsn/internal/daemon"
	"wrsn/internal/geom"
	"wrsn/internal/model"
	"wrsn/internal/placement"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-loadgen:", err)
		os.Exit(1)
	}
}

// request kinds in the injected stream.
const (
	kindPlan      = "plan"
	kindMalformed = "malformed"
	kindOversize  = "oversize"
	kindBadSolver = "bad_solver"
	kindSlowloris = "slowloris"
)

// Artifact is the machine-readable run record.
type Artifact struct {
	Tool        string           `json:"tool"`
	Version     int              `json:"version"`
	Target      string           `json:"target"`
	Seed        int64            `json:"seed"`
	Requests    int              `json:"requests"`
	RatePerSec  float64          `json:"rate_per_sec"`
	WallSeconds float64          `json:"wall_seconds"`
	Sent        map[string]int64 `json:"sent"`
	Status      map[string]int64 `json:"status"`
	Classes     map[string]int64 `json:"classes"`
	LatencyMS   LatencySummary   `json:"latency_ms"`
	PlansPerSec float64          `json:"plans_per_sec"`
	ShedRate    float64          `json:"shed_rate"`
	HitRate     float64          `json:"cache_hit_rate"`
	Statz       *daemon.Stats    `json:"statz,omitempty"`
}

// LatencySummary is the quantile block over answered requests.
type LatencySummary struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

func summarize(lat []float64) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(lat)
	q := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return LatencySummary{
		P50:   q(0.50),
		P90:   q(0.90),
		P99:   q(0.99),
		Max:   lat[len(lat)-1],
		Count: len(lat),
	}
}

// splitmix64 is the per-index fault/problem draw — the same generator
// the engine's deterministic machinery uses, so a seed fully determines
// the stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("wrsn-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "", "target daemon base URL (e.g. http://127.0.0.1:8347); required")
		requests    = fs.Int("requests", 100, "total requests to send")
		rate        = fs.Float64("rate", 50, "open-loop launch rate in requests/sec (0 = as fast as -max-open allows)")
		maxOpen     = fs.Int("max-open", 64, "bound on concurrently open requests (open-loop pressure cap)")
		seed        = fs.Int64("seed", 1, "stream seed: problems, fault schedule and request order are pure functions of it")
		deadlineMS  = fs.Int64("deadline-ms", 5000, "per-request deadline_ms (0 = server default)")
		solvers     = fs.String("solvers", "rfh", "comma-separated solver names to round-robin over")
		problems    = fs.Int("problems", 4, "distinct problem instances (repeats exercise the plan cache)")
		posts       = fs.Int("posts", 6, "posts per generated deployment problem")
		nodes       = fs.Int("nodes", 10, "node budget per generated deployment problem")
		placeFrac   = fs.Float64("placement-frac", 0, "fraction of plan requests that carry a charger-placement instance (solved with greedy)")
		malfFrac    = fs.Float64("malformed-frac", 0, "fraction of requests sent with an unparseable body")
		overFrac    = fs.Float64("oversize-frac", 0, "fraction of requests sent with an oversized body")
		overBytes   = fs.Int("oversize-bytes", 2<<20, "payload size of oversized requests")
		badFrac     = fs.Float64("bad-solver-frac", 0, "fraction of requests naming an unregistered solver")
		slowFrac    = fs.Float64("slowloris-frac", 0, "fraction of requests sent as slow-loris connections (partial body, then stall)")
		slowHold    = fs.Duration("slowloris-hold", 300*time.Millisecond, "how long a slow-loris connection stalls before hanging up")
		out         = fs.String("out", "", "write the run artifact (JSON) to this file")
		require2xx  = fs.Float64("require-2xx-frac", 0, "exit 1 unless at least this fraction of plan requests succeeded (CI gate)")
		statzScrape = fs.Bool("statz", true, "append the daemon's /statz snapshot to the artifact")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required (the target daemon's base URL)")
	}
	base := strings.TrimSuffix(*addr, "/")
	target, err := url.Parse(base)
	if err != nil || target.Host == "" {
		return fmt.Errorf("-addr %q is not a URL (want e.g. http://127.0.0.1:8347)", *addr)
	}
	if *requests < 1 {
		return fmt.Errorf("-requests must be >= 1, got %d", *requests)
	}
	solverNames := strings.Split(*solvers, ",")

	// Pre-generate the problem pool: the stream cycles over it, so cache
	// hits appear as soon as a problem repeats.
	rng := rand.New(rand.NewSource(*seed))
	deployBodies := make([][]byte, *problems)
	for i := range deployBodies {
		p, err := model.GenerateProblem(rng, model.GenSpec{
			Field: geom.Field{Width: 200, Height: 200},
			Posts: *posts,
			Nodes: *nodes,
		})
		if err != nil {
			return fmt.Errorf("generating problem %d: %w", i, err)
		}
		sv := solverNames[i%len(solverNames)]
		deployBodies[i], err = json.Marshal(daemon.PlanRequest{Solver: sv, Problem: p, DeadlineMS: *deadlineMS})
		if err != nil {
			return fmt.Errorf("encoding problem %d: %w", i, err)
		}
	}
	var placeBodies [][]byte
	if *placeFrac > 0 {
		placeBodies = make([][]byte, *problems)
		for i := range placeBodies {
			inst, err := placement.Generate(rng, placement.GenSpec{
				Field:      geom.Field{Width: 100, Height: 100},
				Posts:      *posts,
				Sites:      placement.DefaultSiteSpec(),
				DemandMean: 1.5,
			})
			if err != nil {
				return fmt.Errorf("generating placement %d: %w", i, err)
			}
			placeBodies[i], err = json.Marshal(daemon.PlanRequest{Solver: "greedy", Placement: inst, DeadlineMS: *deadlineMS})
			if err != nil {
				return fmt.Errorf("encoding placement %d: %w", i, err)
			}
		}
	}
	oversize, err := json.Marshal(map[string]string{"pad": strings.Repeat("x", *overBytes)})
	if err != nil {
		return err
	}
	badSolver, err := json.Marshal(daemon.PlanRequest{Solver: "loadgen-no-such-solver", Problem: mustProblem(rng, *posts, *nodes), DeadlineMS: *deadlineMS})
	if err != nil {
		return err
	}

	// kindOf deterministically assigns each request index its fault (or
	// plan) kind and payload.
	kindOf := func(i int) (string, []byte) {
		draw := float64(splitmix64(uint64(*seed)^uint64(i)<<1)%1_000_000) / 1_000_000
		switch {
		case draw < *malfFrac:
			return kindMalformed, []byte(`{"solver": "rfh", "problem": {`)
		case draw < *malfFrac+*overFrac:
			return kindOversize, oversize
		case draw < *malfFrac+*overFrac+*badFrac:
			return kindBadSolver, badSolver
		case draw < *malfFrac+*overFrac+*badFrac+*slowFrac:
			return kindSlowloris, nil
		case placeBodies != nil && draw < *malfFrac+*overFrac+*badFrac+*slowFrac+*placeFrac:
			return kindPlan, placeBodies[i%len(placeBodies)]
		default:
			return kindPlan, deployBodies[i%len(deployBodies)]
		}
	}

	client := &http.Client{Timeout: 2*time.Duration(*deadlineMS)*time.Millisecond + 30*time.Second}
	defer client.CloseIdleConnections()

	var (
		mu        sync.Mutex
		latencies []float64
		sent      = map[string]int64{}
		status    = map[string]int64{}
		classes   = map[string]int64{}
	)
	var ok2xx, shed atomic.Int64
	bump := func(m map[string]int64, k string) {
		mu.Lock()
		m[k]++
		mu.Unlock()
	}

	do := func(i int) {
		kind, body := kindOf(i)
		bump(sent, kind)
		if kind == kindSlowloris {
			slowloris(target.Host, *slowHold)
			bump(status, "slowloris_hangup")
			return
		}
		t0 := time.Now()
		resp, err := client.Post(base+"/v1/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			bump(status, "transport_error")
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		ms := float64(time.Since(t0)) / float64(time.Millisecond)
		mu.Lock()
		latencies = append(latencies, ms)
		mu.Unlock()
		bump(status, fmt.Sprintf("%dxx", resp.StatusCode/100))
		if resp.StatusCode == http.StatusOK {
			ok2xx.Add(1)
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			shed.Add(1)
		}
		var eb daemon.ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error.Class != "" {
			bump(classes, eb.Error.Class)
		} else {
			bump(classes, "unstructured")
		}
	}

	// The open-loop scheduler: launch every interval regardless of
	// completions, bounded by -max-open slots.
	interval := time.Duration(0)
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	slots := make(chan struct{}, max(1, *maxOpen))
	var wg sync.WaitGroup
	start := time.Now()
	var launched int
loop:
	for i := 0; i < *requests; i++ {
		select {
		case <-ctx.Done():
			break loop
		case slots <- struct{}{}:
		}
		launched++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-slots }()
			do(i)
		}(i)
		if interval > 0 {
			timer := time.NewTimer(interval)
			select {
			case <-ctx.Done():
				timer.Stop()
				break loop
			case <-timer.C:
			}
		}
	}
	wg.Wait()
	wall := time.Since(start)

	art := Artifact{
		Tool:        "wrsn-loadgen",
		Version:     1,
		Target:      base,
		Seed:        *seed,
		Requests:    launched,
		RatePerSec:  *rate,
		WallSeconds: wall.Seconds(),
		Sent:        sent,
		Status:      status,
		Classes:     classes,
		LatencyMS:   summarize(latencies),
		PlansPerSec: float64(ok2xx.Load()) / wall.Seconds(),
	}
	if launched > 0 {
		art.ShedRate = float64(shed.Load()) / float64(launched)
	}
	if *statzScrape {
		if st, err := scrapeStatz(client, base); err == nil {
			art.Statz = st
			if st.CacheHits+st.CacheMisses > 0 {
				art.HitRate = st.CacheHitRate
			}
		} else {
			fmt.Fprintf(stderr, "wrsn-loadgen: statz scrape failed: %v\n", err)
		}
	}

	enc, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if *out != "" {
		if err := writeAtomic(*out, append(enc, '\n')); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrsn-loadgen: artifact written to %s\n", *out)
	}
	fmt.Fprintf(stdout, "%s\n", enc)

	if ctx.Err() != nil {
		return fmt.Errorf("interrupted after %d/%d requests", launched, *requests)
	}
	if *require2xx > 0 {
		plans := sent[kindPlan]
		if plans == 0 {
			return fmt.Errorf("-require-2xx-frac set but the stream contained no plan requests")
		}
		frac := float64(ok2xx.Load()) / float64(plans)
		if frac < *require2xx {
			return fmt.Errorf("success rate %.3f below required %.3f (%d/%d plan requests succeeded)",
				frac, *require2xx, ok2xx.Load(), plans)
		}
	}
	return nil
}

func mustProblem(rng *rand.Rand, posts, nodes int) *model.Problem {
	p, err := model.GenerateProblem(rng, model.GenSpec{
		Field: geom.Field{Width: 200, Height: 200},
		Posts: posts,
		Nodes: nodes,
	})
	if err != nil {
		panic(err)
	}
	return p
}

// slowloris opens a raw connection, sends headers promising a large
// body, dribbles a few bytes, stalls for hold, and hangs up — the
// classic read-side resource attack the daemon's ReadTimeout must bound.
func slowloris(host string, hold time.Duration) {
	conn, err := net.DialTimeout("tcp", host, 5*time.Second)
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/plan HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 1000000\r\n\r\n", host)
	io.WriteString(conn, `{"solver": "rfh"`)
	// Stall: the daemon's ReadTimeout, not our patience, decides when
	// this connection dies. Bound our side anyway.
	conn.SetReadDeadline(time.Now().Add(hold))
	buf := make([]byte, 256)
	conn.Read(buf)
}

func scrapeStatz(client *http.Client, base string) (*daemon.Stats, error) {
	resp, err := client.Get(base + "/statz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st daemon.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// writeAtomic writes data to path via a same-dir temp file and rename.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
