package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wrsn/internal/daemon"
	"wrsn/internal/engine"
)

// startTarget serves an in-process daemon for the generator to shoot at.
func startTarget(t *testing.T, cfg daemon.Config) string {
	t.Helper()
	s, err := daemon.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return "http://" + l.Addr().String()
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing-addr", nil, "-addr is required"},
		{"bad-addr", []string{"-addr", "not a url"}, "not a URL"},
		{"zero-requests", []string{"-addr", "http://127.0.0.1:1", "-requests", "0"}, "-requests"},
		{"positional", []string{"-addr", "http://127.0.0.1:1", "extra"}, "unexpected arguments"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := runCtx(context.Background(), c.args, io.Discard, io.Discard)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestLoadgenChaosRunProducesArtifact(t *testing.T) {
	base := startTarget(t, daemon.Config{
		MaxInFlight: 4,
		Retry:       engine.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Chaos:       &engine.ChaosConfig{Seed: 7, PanicFrac: 0.3, ErrorFrac: 0.2},
	})
	out := filepath.Join(t.TempDir(), "LOAD.json")

	err := runCtx(context.Background(), []string{
		"-addr", base,
		"-requests", "40",
		"-rate", "0", // closed-loop: as fast as the slots allow
		"-max-open", "8",
		"-seed", "3",
		"-problems", "3",
		"-deadline-ms", "3000",
		"-malformed-frac", "0.10",
		"-oversize-frac", "0.05",
		"-bad-solver-frac", "0.05",
		"-slowloris-frac", "0.05",
		"-slowloris-hold", "50ms",
		"-placement-frac", "0.15",
		"-out", out,
	}, io.Discard, io.Discard)
	if err != nil {
		t.Fatalf("loadgen run: %v", err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read artifact: %v", err)
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("decode artifact: %v", err)
	}
	if art.Tool != "wrsn-loadgen" || art.Version != 1 {
		t.Fatalf("artifact identity: %s v%d", art.Tool, art.Version)
	}
	if art.Requests != 40 {
		t.Fatalf("artifact requests = %d, want 40", art.Requests)
	}
	var total int64
	for _, n := range art.Sent {
		total += n
	}
	if total != 40 {
		t.Fatalf("sent counts total %d, want 40", total)
	}
	if art.Sent[kindPlan] == 0 || art.Sent[kindMalformed] == 0 {
		t.Fatalf("fault schedule produced no plans or no malformed requests: %+v", art.Sent)
	}
	if art.LatencyMS.Count == 0 || art.LatencyMS.P50 <= 0 || art.LatencyMS.Max < art.LatencyMS.P99 {
		t.Fatalf("implausible latency summary: %+v", art.LatencyMS)
	}
	if art.Status["2xx"] == 0 {
		t.Fatalf("no successful plans under chaos: %+v", art.Status)
	}
	if art.Statz == nil || art.Statz.Requests == 0 {
		t.Fatalf("statz scrape missing: %+v", art.Statz)
	}
	if art.Statz.PanicsRecovered == 0 {
		t.Fatalf("daemon-side chaos panics never fired: %+v", art.Statz)
	}
	if art.ShedRate < 0 || art.ShedRate > 1 {
		t.Fatalf("shed rate %f out of range", art.ShedRate)
	}
	// Repeated problems must have produced cache hits.
	if art.Statz.CacheHits == 0 {
		t.Fatalf("repeat requests never hit the plan cache: %+v", art.Statz)
	}
}

func TestLoadgenDeterministicSchedule(t *testing.T) {
	// The fault schedule is a pure function of (seed, index): two runs
	// against fresh daemons send identical kind mixes.
	run := func() map[string]int64 {
		base := startTarget(t, daemon.Config{MaxInFlight: 2})
		out := filepath.Join(t.TempDir(), "LOAD.json")
		err := runCtx(context.Background(), []string{
			"-addr", base,
			"-requests", "30",
			"-rate", "0",
			"-seed", "11",
			"-problems", "2",
			"-malformed-frac", "0.2",
			"-bad-solver-frac", "0.1",
			"-out", out,
		}, io.Discard, io.Discard)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		var art Artifact
		if err := json.Unmarshal(data, &art); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return art.Sent
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("schedules differ: %+v vs %+v", a, b)
	}
	for k, n := range a {
		if b[k] != n {
			t.Fatalf("schedule not deterministic at %s: %d vs %d", k, n, b[k])
		}
	}
}

func TestRequire2xxGate(t *testing.T) {
	// Against a daemon whose every solve panics terminally (no retries),
	// the CI gate must fail the run.
	base := startTarget(t, daemon.Config{
		Chaos: &engine.ChaosConfig{Seed: 5, PanicFrac: 1.0},
	})
	err := runCtx(context.Background(), []string{
		"-addr", base,
		"-requests", "10",
		"-rate", "0",
		"-require-2xx-frac", "0.9",
	}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "success rate") {
		t.Fatalf("err = %v, want the success-rate gate", err)
	}
}
