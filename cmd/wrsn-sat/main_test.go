package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestExampleFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-example", "-optimal"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, frag := range []string{
		"formula: (x1 ∨ ¬x2 ∨ ¬x3)",
		"12 sensor nodes",
		"W = 141.5000",
		"DPLL: SATISFIABLE",
		"canonical solution cost = 141.5000 (== W: true)",
		"matches satisfiability: true",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q:\n%s", frag, s)
		}
	}
}

func TestDIMACSFromStdinUnsat(t *testing.T) {
	const dimacs = `c x1 and not x1
p cnf 1 2
1 1 1 0
-1 -1 -1 0
`
	var out bytes.Buffer
	if err := run([]string{"-optimal"}, strings.NewReader(dimacs), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "DPLL: UNSATISFIABLE") {
		t.Errorf("missing UNSAT verdict:\n%s", s)
	}
	if !strings.Contains(s, "matches satisfiability: true") {
		t.Errorf("gadget optimum should confirm UNSAT:\n%s", s)
	}
}

func TestMalformedInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("not dimacs"), &out); err == nil {
		t.Error("malformed DIMACS accepted")
	}
	// Reduction rejects non-3-CNF clauses.
	const wide = "p cnf 2 1\n1 2 0\n"
	if err := run(nil, strings.NewReader(wide), &out); err == nil {
		t.Error("2-literal clause accepted by the 3-CNF reduction")
	}
}

func TestOptimalRefusesHugeGadgets(t *testing.T) {
	// 11 variables + 11 clauses -> 44 posts, beyond MaxOptimalPosts.
	var sb strings.Builder
	sb.WriteString("p cnf 11 11\n")
	for v := 1; v <= 11; v++ {
		fmt.Fprintf(&sb, "%d %d %d 0\n", v, v, v)
	}
	var out bytes.Buffer
	err := run([]string{"-optimal"}, strings.NewReader(sb.String()), &out)
	if err == nil {
		t.Error("44-post gadget accepted for exhaustive optimisation")
	}
	// Without -optimal the same formula reduces and solves fine.
	if err := run(nil, strings.NewReader(sb.String()), &out); err != nil {
		t.Errorf("reduction without optimisation failed: %v", err)
	}
}
