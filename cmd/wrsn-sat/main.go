// Command wrsn-sat exercises the paper's NP-completeness reduction: it
// reads a 3-CNF formula in DIMACS format, builds the corresponding
// deployment-and-routing gadget network, and demonstrates that deciding
// "total recharging cost <= W" decides satisfiability.
//
// Usage:
//
//	wrsn-sat < formula.cnf            # reduce + DPLL + canonical solution
//	wrsn-sat -optimal < formula.cnf   # also exactly optimise the gadget
//	wrsn-sat -example                 # run the paper's Fig. 3 clause
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strings"

	"wrsn/internal/npc"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-sat:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("wrsn-sat", flag.ContinueOnError)
	var (
		optimal = fs.Bool("optimal", false, "exactly optimise the gadget network (exponential; small formulas only)")
		example = fs.Bool("example", false, "use the paper's Fig. 3 example clause (x1 ∨ ¬x2 ∨ ¬x3) instead of stdin")
		random  = fs.Int("random", 0, "generate a random 3-CNF with this many variables instead of reading stdin")
		clauses = fs.Int("clauses", 0, "clause count for -random (default: 2x variables)")
		seed    = fs.Int64("seed", 1, "seed for -random")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		f   *npc.Formula
		err error
	)
	switch {
	case *example:
		f = &npc.Formula{NumVars: 3, Clauses: []npc.Clause{{1, -2, -3}}}
	case *random > 0:
		nc := *clauses
		if nc <= 0 {
			nc = 2 * *random
		}
		f, err = npc.RandomFormula(rand.New(rand.NewSource(*seed)), *random, nc)
		if err != nil {
			return err
		}
	default:
		f, err = npc.ParseDIMACS(stdin)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "formula: %s\n", f)

	in, err := npc.Reduce(f, npc.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "gadget network: %d posts + base station, %d sensor nodes, W = %.4f\n",
		in.NumPosts, in.Nodes, in.W)
	fmt.Fprintf(stdout, "posts: %s\n", strings.Join(in.Labels, " "))

	assignment, sat, err := npc.Solve(f)
	if err != nil {
		return err
	}
	if sat {
		fmt.Fprintln(stdout, "DPLL: SATISFIABLE")
		deploy, parents, err := in.CanonicalSolution(assignment)
		if err != nil {
			return err
		}
		cost, err := in.EvaluateSolution(deploy, parents)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "canonical solution cost = %.4f (== W: %v)\n", cost, math.Abs(cost-in.W) <= 1e-9)
		for i, m := range deploy {
			if m == 2 {
				fmt.Fprintf(stdout, "  2 nodes at %s\n", in.Labels[i])
			}
		}
	} else {
		fmt.Fprintln(stdout, "DPLL: UNSATISFIABLE")
	}

	if *optimal {
		opt, err := in.OptimalCost()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "gadget optimum = %.4f over %d deployments; cost <= W: %v (matches satisfiability: %v)\n",
			opt.Cost, opt.Evaluations, opt.Cost <= in.W+1e-9, (opt.Cost <= in.W+1e-9) == sat)
	}
	return nil
}
