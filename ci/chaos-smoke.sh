#!/usr/bin/env bash
# Chaos smoke: run a sweep with deterministic fault injection (panics and
# injected errors absorbed by retries), SIGKILL it mid-journal, resume
# from the checkpoint, and require the resumed output to be
# byte-identical to an uninterrupted run.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-$(mktemp -d)/wrsn-experiments}
go build -o "$BIN" ./cmd/wrsn-experiments

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

ARGS=(-fig 8 -quick -seeds 2 -workers 2
      -chaos-panic 0.1 -chaos-error 0.1 -chaos-seed 42 -retries 20)

# Uninterrupted reference run: every injected fault must be retried away.
"$BIN" "${ARGS[@]}" -json "$WORK/clean.json" > "$WORK/clean.out"

# Checkpointed run, killed hard once the journal shows real progress.
CKPT="$WORK/ckpt"
"$BIN" "${ARGS[@]}" -checkpoint "$CKPT" > /dev/null 2>&1 &
PID=$!
for _ in $(seq 1 200); do
    lines=$(wc -l < "$CKPT/fig8.journal" 2>/dev/null || echo 0)
    if [ "$lines" -ge 4 ]; then
        break
    fi
    sleep 0.05
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
echo "chaos-smoke: killed run after $lines journal lines"

# Resume skips the journaled cells (possibly leaving a torn tail from
# the SIGKILL behind) and must reproduce the clean run byte for byte.
# If the kill raced the run to completion the resume is a no-op replay —
# the comparison is identical either way.
"$BIN" "${ARGS[@]}" -checkpoint "$CKPT" -resume -json "$WORK/resumed.json" > "$WORK/resumed.out"

cmp "$WORK/clean.json" "$WORK/resumed.json"
cmp "$WORK/clean.out" "$WORK/resumed.out"
echo "chaos-smoke: resumed output byte-identical to clean run"

# --- Sharded sweep: chaos-killed workers, then a coordinator kill and
# restart from the spool; the merged output must still be byte-identical.

SPOOL="$WORK/spool"
SHARD_ARGS=("${ARGS[@]}" -shard-coordinator -shard-spool "$SPOOL"
            -shard-workers 2 -shard-size 2 -shard-lease-ttl 5s
            -chaos-worker-kill 0.4)

# First coordinator life: let workers commit some shards (chaos SIGKILLs
# whole worker processes mid-shard along the way), then kill the
# coordinator itself mid-protocol.
"$BIN" "${SHARD_ARGS[@]}" > /dev/null 2> "$WORK/coord1.err" &
COORD=$!
for _ in $(seq 1 400); do
    segs=$(ls "$SPOOL"/seg/*.journal 2>/dev/null | wc -l) || segs=0
    if [ "$segs" -ge 2 ]; then
        break
    fi
    sleep 0.05
done
kill -9 "$COORD" 2>/dev/null || true
wait "$COORD" 2>/dev/null || true
# Orphaned workers of the dead coordinator become zombies: let them
# finish or die, then restart. Their segments either carry the epochs
# the lease table recorded (restored) or are fenced at merge.
pkill -9 -f -- "-shard-worker" 2>/dev/null || true
sleep 0.2
echo "chaos-smoke: killed coordinator with $segs committed segment(s)"

# Second coordinator life: resume from the spool's lease table, re-grant
# only unfinished shards, merge, and match the clean run byte for byte.
"$BIN" "${SHARD_ARGS[@]}" -json "$WORK/sharded.json" > "$WORK/sharded.out" 2> "$WORK/coord2.err"
grep -q "restored committed segment" "$WORK/coord2.err" \
    || echo "chaos-smoke: note: restart had no committed segments to restore"

cmp "$WORK/clean.json" "$WORK/sharded.json"
cmp "$WORK/clean.out" "$WORK/sharded.out"
echo "chaos-smoke: sharded output byte-identical to clean run after coordinator restart"
