#!/usr/bin/env bash
# Chaos smoke: run a sweep with deterministic fault injection (panics and
# injected errors absorbed by retries), SIGKILL it mid-journal, resume
# from the checkpoint, and require the resumed output to be
# byte-identical to an uninterrupted run.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-$(mktemp -d)/wrsn-experiments}
go build -o "$BIN" ./cmd/wrsn-experiments

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

ARGS=(-fig 8 -quick -seeds 2 -workers 2
      -chaos-panic 0.1 -chaos-error 0.1 -chaos-seed 42 -retries 20)

# Uninterrupted reference run: every injected fault must be retried away.
"$BIN" "${ARGS[@]}" -json "$WORK/clean.json" > "$WORK/clean.out"

# Checkpointed run, killed hard once the journal shows real progress.
CKPT="$WORK/ckpt"
"$BIN" "${ARGS[@]}" -checkpoint "$CKPT" > /dev/null 2>&1 &
PID=$!
for _ in $(seq 1 200); do
    lines=$(wc -l < "$CKPT/fig8.journal" 2>/dev/null || echo 0)
    if [ "$lines" -ge 4 ]; then
        break
    fi
    sleep 0.05
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
echo "chaos-smoke: killed run after $lines journal lines"

# Resume skips the journaled cells (possibly leaving a torn tail from
# the SIGKILL behind) and must reproduce the clean run byte for byte.
# If the kill raced the run to completion the resume is a no-op replay —
# the comparison is identical either way.
"$BIN" "${ARGS[@]}" -checkpoint "$CKPT" -resume -json "$WORK/resumed.json" > "$WORK/resumed.out"

cmp "$WORK/clean.json" "$WORK/resumed.json"
cmp "$WORK/clean.out" "$WORK/resumed.out"
echo "chaos-smoke: resumed output byte-identical to clean run"
