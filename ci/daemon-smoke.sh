#!/usr/bin/env bash
# Daemon smoke: boot wrsnd with deterministic chaos injection, fire a
# loadgen burst that mixes real plan requests with malformed bodies,
# unknown solvers, oversized payloads, and slow-loris connections, and
# require the daemon to (a) stay healthy through the burst, (b) drain
# cleanly on SIGTERM (exit 0), and (c) warm-restart from its flushed
# plan journal. The loadgen latency artifact is left at
# LOAD_daemon_smoke.json for CI to upload.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
WRSND_PID=""
cleanup() {
    [ -n "$WRSND_PID" ] && kill "$WRSND_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/wrsnd" ./cmd/wrsnd
go build -o "$WORK/wrsn-loadgen" ./cmd/wrsn-loadgen

# wait_addr OUTFILE: scrape the "listening on <addr>" line wrsnd prints
# once its :0 listener is bound.
wait_addr() {
    local addr=""
    for _ in $(seq 1 200); do
        addr=$(sed -n 's/^listening on //p' "$1" 2>/dev/null || true)
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.05
    done
    echo "daemon-smoke: wrsnd never reported its address" >&2
    return 1
}

JOURNAL=$WORK/plans.wal

# First life: chaos-seeded panics and injected solver errors, with a
# retry budget sized to absorb most (not all) of them.
"$WORK/wrsnd" -addr 127.0.0.1:0 -journal "$JOURNAL" \
    -chaos-seed 42 -chaos-panic 0.2 -chaos-error 0.1 -retries 3 \
    -max-queue 256 -max-deadline 60s \
    > "$WORK/wrsnd.out" 2> "$WORK/wrsnd.err" &
WRSND_PID=$!
BASE="http://$(wait_addr "$WORK/wrsnd.out")"

curl -fsS "$BASE/healthz" > /dev/null

"$WORK/wrsn-loadgen" -addr "$BASE" \
    -requests 200 -rate 0 -max-open 16 -seed 9 \
    -problems 4 -placement-frac 0.2 -deadline-ms 20000 \
    -malformed-frac 0.10 -bad-solver-frac 0.05 \
    -oversize-frac 0.05 -slowloris-frac 0.05 -slowloris-hold 50ms \
    -require-2xx-frac 0.5 \
    -out LOAD_daemon_smoke.json
echo "daemon-smoke: burst complete"

# The daemon must still be green after the burst: structured rejections
# and recovered panics, not a wedged or dead process.
curl -fsS "$BASE/healthz" > /dev/null
curl -fsS "$BASE/statz" | grep -q '"panics_recovered":' || {
    echo "daemon-smoke: /statz missing after burst" >&2
    exit 1
}
echo "daemon-smoke: healthz green after chaos burst"

# Graceful drain: SIGTERM must flush the journal and exit 0.
kill -TERM "$WRSND_PID"
wait "$WRSND_PID"
WRSND_PID=""
grep -q "drained cleanly" "$WORK/wrsnd.err" || {
    echo "daemon-smoke: drain message missing" >&2
    cat "$WORK/wrsnd.err" >&2
    exit 1
}
echo "daemon-smoke: SIGTERM drain exited 0"

# Second life: warm restart must replay the journal, and a repeat of the
# same request stream (chaos off) must be answered largely from cache.
"$WORK/wrsnd" -addr 127.0.0.1:0 -journal "$JOURNAL" \
    > "$WORK/wrsnd2.out" 2> "$WORK/wrsnd2.err" &
WRSND_PID=$!
BASE2="http://$(wait_addr "$WORK/wrsnd2.out")"

RESTORED=$(sed -n 's/^wrsnd: warm start: \([0-9]*\) plans restored.*/\1/p' "$WORK/wrsnd2.err")
if [ -z "$RESTORED" ] || [ "$RESTORED" -lt 1 ]; then
    echo "daemon-smoke: warm restart restored no plans" >&2
    cat "$WORK/wrsnd2.err" >&2
    exit 1
fi
echo "daemon-smoke: warm restart restored $RESTORED plans"

"$WORK/wrsn-loadgen" -addr "$BASE2" \
    -requests 40 -rate 0 -max-open 8 -seed 9 -problems 4 \
    -placement-frac 0.2 -deadline-ms 20000 -require-2xx-frac 0.99 \
    -out "$WORK/warm.json"
grep -q '"cache_hits":0[,}]' "$WORK/warm.json" && {
    echo "daemon-smoke: warm restart answered nothing from cache" >&2
    exit 1
}

kill -TERM "$WRSND_PID"
wait "$WRSND_PID"
WRSND_PID=""
echo "daemon-smoke: OK (artifact at LOAD_daemon_smoke.json)"
