package wrsn

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, each regenerating the corresponding experiment (at reduced
// seed counts so `go test -bench=.` stays tractable) and reporting the
// headline numbers as custom metrics, plus micro-benchmarks for the
// algorithmic hot paths. Full paper-scale runs: cmd/wrsn-experiments.

import (
	"math/rand"
	"testing"

	"wrsn/internal/experiments"
	"wrsn/internal/model"
	"wrsn/internal/routing"
	"wrsn/internal/sim"
	"wrsn/internal/solver"
)

// benchOptions keeps per-iteration work bounded while preserving every
// trend the paper reports.
func benchOptions() experiments.Options {
	return experiments.Options{Quick: true, Seeds: 1, BaseSeed: 1}
}

// reportSeries publishes each series' first and last Y value so bench
// output shows the actual reproduced numbers. Metric units must not
// contain whitespace, so labels are slugified.
func reportSeries(b *testing.B, fig *experiments.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Y) == 0 {
			continue
		}
		label := metricSlug(s.Label)
		b.ReportMetric(s.Y[0], label+"_first_uJ")
		b.ReportMetric(s.Y[len(s.Y)-1], label+"_last_uJ")
	}
}

// metricSlug rewrites a series label into a ReportMetric-safe unit token.
func metricSlug(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '_' {
		out = out[:len(out)-1]
	}
	if len(out) == 0 {
		return "series"
	}
	return string(out)
}

// BenchmarkFig1 regenerates Table II / Fig. 1: the simulated Powercast
// field-experiment grid (40 trials per cell).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			one := res.Figures[0].Get("1 sensors")
			six := res.Figures[0].Get("6 sensors")
			b.ReportMetric(one.Y[0], "mW_1sensor_20cm")
			b.ReportMetric(six.Y[0]*6/one.Y[0], "network_gain_6sensors")
		}
	}
}

// BenchmarkFig6 regenerates the iterative-RFH convergence study.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkFig7a regenerates the small-scale optimal comparison (varying
// node count).
func BenchmarkFig7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig7a(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkFig7b regenerates the small-scale optimal comparison (varying
// post count).
func BenchmarkFig7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig7b(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkFig8 regenerates the large-scale node-count sweep.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkFig9 regenerates the large-scale post-count sweep.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkFig10 regenerates the power-level sweep.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig10(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// benchProblem builds one connected instance for micro-benchmarks.
func benchProblem(b *testing.B, seed int64, side float64, n, m int) *Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	field := Square(side)
	for attempt := 0; attempt < 1000; attempt++ {
		p := &Problem{
			Posts:    field.RandomPoints(rng, n),
			BS:       field.Corner(),
			Nodes:    m,
			Energy:   DefaultEnergyModel(),
			Charging: DefaultChargingModel(),
		}
		if p.Validate() == nil {
			return p
		}
	}
	b.Fatalf("no connected instance (seed=%d)", seed)
	return nil
}

// BenchmarkSolveBasicRFH measures one basic RFH pass at Fig. 8 scale.
func BenchmarkSolveBasicRFH(b *testing.B) {
	p := benchProblem(b, 1, 500, 100, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.BasicRFH(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveIterativeRFH measures the full 7-iteration RFH at Fig. 8
// scale — the solver the paper recommends for large networks.
func BenchmarkSolveIterativeRFH(b *testing.B) {
	p := benchProblem(b, 1, 500, 100, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.IterativeRFH(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveIDB measures IDB(δ=1) at Fig. 8 scale, the paper's
// slower-but-better heuristic (the RFH-vs-IDB runtime gap is the paper's
// stated reason to prefer RFH on large networks).
func BenchmarkSolveIDB(b *testing.B) {
	p := benchProblem(b, 1, 500, 100, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.IDB(p, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveOptimal measures the exact branch-and-bound at Fig. 7
// scale (10 posts, 36 nodes).
func BenchmarkSolveOptimal(b *testing.B) {
	p := benchProblem(b, 1, 200, 10, 36)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Optimal(p, solver.OptimalOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFatTreeTrim isolates Phase II (the RFH complexity bottleneck,
// O(N^2 log N)) at 300 posts.
func BenchmarkFatTreeTrim(b *testing.B) {
	p := benchProblem(b, 1, 500, 300, 900)
	dag, err := p.FatTree(p.EnergyWeights())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.Trim(dag, p.N()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostEvaluator measures the deployment-evaluation hot path
// (one Dijkstra per candidate) that dominates IDB and the exact solver.
func BenchmarkCostEvaluator(b *testing.B) {
	p := benchProblem(b, 1, 500, 100, 600)
	ev, err := model.NewCostEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	deploy, err := model.UniformDeployment(p.N(), p.Nodes)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.MinCost(deploy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures simulated rounds per second on a solved
// mid-size network with an active charger.
func BenchmarkSimulator(b *testing.B) {
	p := benchProblem(b, 3, 300, 25, 100)
	res, err := solver.IterativeRFH(p)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		Problem:  p,
		Solution: res.Solution,
		Charger:  &sim.ChargerConfig{PowerPerRound: 5e7, SpeedPerRound: 25},
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := s.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationSiblingMerge quantifies Phase III: iterative RFH with
// and without the opportunistic sibling merge (a DESIGN.md design-choice
// ablation).
func BenchmarkAblationSiblingMerge(b *testing.B) {
	p := benchProblem(b, 1, 500, 100, 600)
	b.Run("with-merge", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := solver.RFH(p, solver.RFHOptions{Iterations: 7})
			if err != nil {
				b.Fatal(err)
			}
			last = res.Cost
		}
		b.ReportMetric(last/1000, "cost_uJ")
	})
	b.Run("without-merge", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := solver.RFH(p, solver.RFHOptions{Iterations: 7, DisableSiblingMerge: true})
			if err != nil {
				b.Fatal(err)
			}
			last = res.Cost
		}
		b.ReportMetric(last/1000, "cost_uJ")
	})
}

// BenchmarkAblationIDBDelta compares IDB increments δ=1,2,4: larger
// rounds are less greedy but combinatorially more expensive.
func BenchmarkAblationIDBDelta(b *testing.B) {
	p := benchProblem(b, 1, 300, 30, 120)
	for _, delta := range []int{1, 2, 4} {
		delta := delta
		b.Run("delta-"+string(rune('0'+delta)), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := solver.IDB(p, delta)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Cost
			}
			b.ReportMetric(last/1000, "cost_uJ")
		})
	}
}

// BenchmarkExtGain regenerates the gain-model sensitivity extension.
func BenchmarkExtGain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ExtGain(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkExtOverhead regenerates the sensing-overhead extension sweep.
func BenchmarkExtOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ExtOverhead(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkExtChargerPolicy regenerates the charger-scheduling comparison.
func BenchmarkExtChargerPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ExtChargerPolicy(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig)
		}
	}
}

// BenchmarkSolveLocalSearch measures the hill-climbing refinement on a
// mid-size instance, seeded by iterative RFH.
func BenchmarkSolveLocalSearch(b *testing.B) {
	p := benchProblem(b, 1, 300, 30, 120)
	seedResult, err := solver.IterativeRFH(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.LocalSearch(p, solver.LocalSearchOptions{Start: seedResult}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveIDBParallel measures the concurrent IDB at Fig. 8 scale;
// compare against BenchmarkSolveIDB for the speedup.
func BenchmarkSolveIDBParallel(b *testing.B) {
	p := benchProblem(b, 1, 500, 100, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.IDBWithOptions(p, solver.IDBOptions{Delta: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPhase1Weights compares the paper's transmit-only
// Phase-I weights against true-network-energy weights (tx+rx) on the
// first RFH round (another DESIGN.md design-choice ablation).
func BenchmarkAblationPhase1Weights(b *testing.B) {
	p := benchProblem(b, 1, 500, 100, 600)
	b.Run("tx-only", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := solver.RFH(p, solver.RFHOptions{Iterations: 7})
			if err != nil {
				b.Fatal(err)
			}
			last = res.Cost
		}
		b.ReportMetric(last/1000, "cost_uJ")
	})
	b.Run("tx-plus-rx", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := solver.RFH(p, solver.RFHOptions{Iterations: 7, IncludeRxInPhase1: true})
			if err != nil {
				b.Fatal(err)
			}
			last = res.Cost
		}
		b.ReportMetric(last/1000, "cost_uJ")
	})
}
