package model

import (
	"math/rand"
	"testing"

	"wrsn/internal/geom"
)

func TestGenerateProblemLayouts(t *testing.T) {
	for _, layout := range []Layout{LayoutUniform, LayoutClustered} {
		t.Run(string(layout), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			p, err := GenerateProblem(rng, GenSpec{
				Field:  geom.Square(250),
				Posts:  20,
				Nodes:  60,
				Layout: layout,
			})
			if err != nil {
				t.Fatalf("GenerateProblem: %v", err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("generated problem invalid: %v", err)
			}
			if p.N() != 20 || p.Nodes != 60 {
				t.Errorf("shape %d/%d", p.N(), p.Nodes)
			}
			if p.Energy.Levels() != 3 || p.Charging.EtaSingle != 1 {
				t.Errorf("defaults not applied: %+v %+v", p.Energy, p.Charging)
			}
		})
	}
}

func TestGenerateProblemGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := GenerateProblem(rng, GenSpec{
		Field:  geom.Square(200),
		Posts:  16,
		Nodes:  32,
		Layout: LayoutGrid,
	})
	if err != nil {
		t.Fatalf("grid generation: %v", err)
	}
	// 16 posts in a 200m square grid: 50m spacing, connected at 75m.
	if p.N() != 16 {
		t.Errorf("posts = %d", p.N())
	}
	// A grid too sparse to connect must fail fast, not loop.
	if _, err := GenerateProblem(rng, GenSpec{
		Field:  geom.Square(2000),
		Posts:  4,
		Nodes:  8,
		Layout: LayoutGrid,
	}); err == nil {
		t.Error("disconnected grid accepted")
	}
}

func TestGenerateProblemDeterministic(t *testing.T) {
	spec := GenSpec{Field: geom.Square(250), Posts: 15, Nodes: 45}
	a, err := GenerateProblem(rand.New(rand.NewSource(9)), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateProblem(rand.New(rand.NewSource(9)), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Posts {
		if a.Posts[i] != b.Posts[i] {
			t.Fatalf("same seed, different posts at %d", i)
		}
	}
}

func TestGenerateProblemValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateProblem(rng, GenSpec{Field: geom.Square(100), Posts: 0, Nodes: 5}); err == nil {
		t.Error("zero posts accepted")
	}
	if _, err := GenerateProblem(rng, GenSpec{Field: geom.Square(100), Posts: 5, Nodes: 3}); err == nil {
		t.Error("nodes < posts accepted")
	}
	if _, err := GenerateProblem(rng, GenSpec{Field: geom.Square(100), Posts: 5, Nodes: 9, Layout: "spiral"}); err == nil {
		t.Error("unknown layout accepted")
	}
	// Impossible connectivity must terminate with an error.
	if _, err := GenerateProblem(rng, GenSpec{
		Field: geom.Square(5000), Posts: 3, Nodes: 3, MaxAttempts: 20,
	}); err == nil {
		t.Error("hopeless field accepted")
	}
}

func TestClusteredPointsStayInField(t *testing.T) {
	field := geom.Square(300)
	rng := rand.New(rand.NewSource(2))
	pts := field.ClusteredPoints(rng, 200, 5, 30)
	if len(pts) != 200 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if !field.Contains(p) {
			t.Fatalf("point %d (%v) outside field", i, p)
		}
	}
	// Clustered layouts are more concentrated than uniform: the mean
	// nearest-neighbour distance should be clearly smaller.
	uniform := field.RandomPoints(rng, 200)
	if c, u := meanNN(pts), meanNN(uniform); c >= u {
		t.Errorf("clustered meanNN %.2f not below uniform %.2f", c, u)
	}
}

func meanNN(pts []geom.Point) float64 {
	var total float64
	for i, p := range pts {
		best := -1.0
		for j, q := range pts {
			if i == j {
				continue
			}
			if d := geom.Dist(p, q); best < 0 || d < best {
				best = d
			}
		}
		total += best
	}
	return total / float64(len(pts))
}
