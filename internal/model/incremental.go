package model

import (
	"errors"
	"fmt"
	"math"

	"wrsn/internal/graph"
)

// Protocol-misuse errors shared by the Evaluator implementations.
var (
	errNoBase       = errors.New("model: evaluator has no committed deployment; call Cost first")
	errPendingProbe = errors.New("model: evaluator has a pending probe; Commit or Revert it first")
	errNoProbe      = errors.New("model: evaluator has no pending probe")
)

// IncrementalEvaluator is the delta-aware implementation of the Evaluator
// protocol: it keeps the last accepted deployment's per-post charging
// efficiencies, shortest recharging-cost distances and tight-parent
// structure, and prices a probe by *repairing* that solution instead of
// re-running Dijkstra from scratch.
//
// A move at post i only reprices the communication edges incident to i,
// so the repair is local:
//
//   - posts whose efficiency rose (nodes added) can only shorten
//     distances; the repair seeds a Dijkstra pass from the repriced edges
//     and lets improvements propagate.
//   - posts whose efficiency fell (nodes removed) can only lengthen the
//     distances of vertices whose shortest path routed through them; the
//     repair walks the tight-parent structure to collect exactly that
//     dirty set, invalidates it, and re-settles it from its boundary.
//     When the dirty set covers more than half the posts the repair
//     falls back to one full Dijkstra run (it would cost as much anyway).
//
// Every touched distance is journaled, so Revert restores the committed
// state in O(touched) and a probe/revert cycle allocates nothing in
// steady state. An optional bounded memo (EnableMemo) answers probes for
// recently seen deployments — simulated annealing revisits states on
// reject/propose cycles — from a Zobrist-keyed table without touching
// the graph at all.
//
// The arithmetic (edge pricing, relaxation, cost summation) is shared
// with CostEvaluator, and repaired shortest-path values are built by the
// same additions along the same paths, so incremental costs are
// bit-identical to a fresh CostEvaluator.MinCost on the materialised
// vector; the differential and fuzz suites pin that equivalence.
//
// Not safe for concurrent use: parallel solvers hold one per worker.
type IncrementalEvaluator struct {
	p  *Problem
	n  int
	bs int
	rx float64

	in  [][]evalEdge // in[v]: edges u->v, shared shape with CostEvaluator
	out [][]outEdge  // out[u]: edges u->v, for boundary/decrease seeding

	// Committed (or probed) state.
	m    []int
	eff  []float64
	dist []float64
	par  []int // par[u]: tight parent of post u (a post, or bs)
	cost float64
	key  uint64 // Zobrist key of m
	have bool

	h *graph.IndexedMinHeap

	// Probe bookkeeping.
	state        int // idle / probed / memoProbed
	pendingCost  float64
	pendingKey   uint64
	journal      []distSave
	effLog       []effSave
	pendingMoves []Move
	full         bool // probe recomputed fully; snapshots hold the base
	distSnap     []float64
	parSnap      []int

	// Epoch-stamped scratch (no per-probe clearing).
	epoch      int64
	dirtyEpoch int64
	mark       []int64
	status     []int8
	chain      []int
	affected   []int
	ups        []int
	downs      []int

	// Bounded deployment memo (nil when disabled).
	memoMask  uint64
	memoKeys  []uint64
	memoCosts []float64

	stats EvalStats
}

type outEdge struct {
	to int
	tx float64
}

// distSave journals one vertex's pre-probe shortest-path state. Entries
// may repeat within a probe; Revert replays them in reverse, so the
// oldest (correct) value wins.
type distSave struct {
	v    int32
	par  int32
	dist float64
}

// effSave journals one changed post's pre-probe deployment state (one
// entry per distinct post per probe).
type effSave struct {
	post   int
	oldM   int
	oldEff float64
	newEff float64
}

const (
	stateIdle = iota
	stateProbed
	stateMemoProbed
)

const (
	statusClean int8 = iota
	statusDirty
)

// EvalStats counts how an IncrementalEvaluator answered its queries;
// probes not covered by Repairs/Fallbacks/MemoHits changed no edge
// weight (e.g. moves past a saturating gain's cap) and were priced from
// the standing solution directly.
type EvalStats struct {
	// FullEvals counts Cost calls (full Dijkstra over the whole graph).
	FullEvals int64
	// Probes counts CostDelta calls.
	Probes int64
	// Repairs counts probes priced by local shortest-path repair.
	Repairs int64
	// Fallbacks counts probes that fell back to a full re-run because
	// the dirty region spanned too much of the graph.
	Fallbacks int64
	// MemoHits counts probes answered from the deployment memo.
	MemoHits int64
}

// NewIncrementalEvaluator precomputes the communication topology of p.
// Call Cost to establish the first committed deployment.
func NewIncrementalEvaluator(p *Problem) (*IncrementalEvaluator, error) {
	n := p.N()
	in, err := buildInEdges(p)
	if err != nil {
		return nil, err
	}
	out := make([][]outEdge, n)
	for v := 0; v <= n; v++ {
		for _, e := range in[v] {
			out[e.from] = append(out[e.from], outEdge{to: v, tx: e.tx})
		}
	}
	return &IncrementalEvaluator{
		p:        p,
		n:        n,
		bs:       n,
		rx:       p.Energy.RxEnergy(),
		in:       in,
		out:      out,
		m:        make([]int, n),
		eff:      make([]float64, n),
		dist:     make([]float64, n+1),
		par:      make([]int, n),
		h:        graph.NewIndexedMinHeap(n + 1),
		distSnap: make([]float64, n+1),
		parSnap:  make([]int, n),
		mark:     make([]int64, n),
		status:   make([]int8, n),
	}, nil
}

// EnableMemo attaches a bounded deployment memo with at least the given
// number of entries (rounded up to a power of two); entries <= 0 removes
// it. The memo maps 64-bit Zobrist keys of recently probed deployments
// to their costs in a direct-mapped table, so revisited probes skip the
// shortest-path repair entirely.
func (ev *IncrementalEvaluator) EnableMemo(entries int) {
	if entries <= 0 {
		ev.memoKeys, ev.memoCosts, ev.memoMask = nil, nil, 0
		return
	}
	size := 1
	for size < entries {
		size <<= 1
	}
	ev.memoKeys = make([]uint64, size)
	ev.memoCosts = make([]float64, size)
	ev.memoMask = uint64(size - 1)
}

// Stats returns cumulative query counters.
func (ev *IncrementalEvaluator) Stats() EvalStats { return ev.stats }

// zkey hashes one (post, count) pair with the splitmix64 finaliser; the
// deployment key is the XOR over posts, so a move updates it in O(1).
func zkey(post, count int) uint64 {
	x := uint64(post)<<32 ^ uint64(uint32(count))
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Cost fully evaluates m and makes it the committed deployment. On error
// the evaluator loses its committed state and Cost must be called again.
func (ev *IncrementalEvaluator) Cost(m []int) (float64, error) {
	if ev.state != stateIdle {
		return 0, errPendingProbe
	}
	if len(m) != ev.n {
		return 0, fmt.Errorf("model: deployment covers %d posts, want %d", len(m), ev.n)
	}
	var key uint64
	for i, mi := range m {
		e, err := ev.p.Charging.NetworkEfficiency(mi)
		if err != nil {
			ev.have = false
			return 0, fmt.Errorf("model: post %d: %w", i, err)
		}
		ev.eff[i] = e
		key ^= zkey(i, mi)
	}
	copy(ev.m, m)
	ev.fullDijkstra()
	cost, err := totalCost(ev.p, ev.n, ev.dist, ev.eff)
	if err != nil {
		ev.have = false
		return 0, err
	}
	ev.key = key
	ev.cost = cost
	ev.have = true
	ev.journal = ev.journal[:0]
	ev.effLog = ev.effLog[:0]
	ev.full = false
	ev.stats.FullEvals++
	ev.memoStore(key, cost)
	return cost, nil
}

// CostDelta prices the committed deployment with moves applied, leaving
// the evaluator pending until Commit or Revert. Moves may repeat posts;
// deltas accumulate. Every resulting count must stay >= 1.
func (ev *IncrementalEvaluator) CostDelta(moves []Move) (float64, error) {
	if !ev.have {
		return 0, errNoBase
	}
	if ev.state != stateIdle {
		return 0, errPendingProbe
	}
	ev.stats.Probes++

	// Apply the moves, journaling one record per distinct post.
	ev.effLog = ev.effLog[:0]
	ev.epoch++
	e0 := ev.epoch
	for _, mv := range moves {
		if mv.Post < 0 || mv.Post >= ev.n {
			ev.rollbackMoves()
			return 0, fmt.Errorf("model: move targets post %d of %d", mv.Post, ev.n)
		}
		if ev.mark[mv.Post] != e0 {
			ev.mark[mv.Post] = e0
			ev.effLog = append(ev.effLog, effSave{post: mv.Post, oldM: ev.m[mv.Post], oldEff: ev.eff[mv.Post]})
		}
		ev.m[mv.Post] += mv.Delta
	}
	key := ev.key
	for i := range ev.effLog {
		rec := &ev.effLog[i]
		newM := ev.m[rec.post]
		if newM == rec.oldM {
			rec.newEff = rec.oldEff
			continue
		}
		e, err := ev.p.Charging.NetworkEfficiency(newM)
		if err != nil {
			ev.rollbackMoves()
			return 0, fmt.Errorf("model: post %d: %w", rec.post, err)
		}
		rec.newEff = e
		key ^= zkey(rec.post, rec.oldM) ^ zkey(rec.post, newM)
	}
	ev.pendingKey = key
	ev.pendingMoves = append(ev.pendingMoves[:0], moves...)

	if ev.memoKeys != nil && key != 0 {
		if idx := key & ev.memoMask; ev.memoKeys[idx] == key {
			// Deployment seen before: answer from the memo and defer the
			// shortest-path repair until (and unless) the probe commits.
			ev.stats.MemoHits++
			ev.state = stateMemoProbed
			ev.pendingCost = ev.memoCosts[idx]
			return ev.pendingCost, nil
		}
	}

	cost, err := ev.repairAndPrice()
	if err != nil {
		// Disconnection cannot arise from deployment changes (the edge
		// set is range-based and fixed), so only defensive paths land
		// here; leave the evaluator needing a fresh Cost.
		ev.have = false
		return 0, err
	}
	ev.state = stateProbed
	ev.pendingCost = cost
	ev.memoStore(key, cost)
	return cost, nil
}

// Commit accepts the last probe as the committed deployment.
func (ev *IncrementalEvaluator) Commit() error {
	switch ev.state {
	case stateProbed:
	case stateMemoProbed:
		// The probe was answered from the memo without touching the
		// graph; materialise the repair now that the move is accepted.
		cost, err := ev.repairAndPrice()
		if err != nil {
			ev.have = false
			return err
		}
		ev.pendingCost = cost
	default:
		return errNoProbe
	}
	ev.state = stateIdle
	ev.cost = ev.pendingCost
	ev.key = ev.pendingKey
	ev.journal = ev.journal[:0]
	ev.effLog = ev.effLog[:0]
	ev.full = false
	return nil
}

// Revert discards the last probe, restoring the committed deployment's
// state in O(touched).
func (ev *IncrementalEvaluator) Revert() error {
	switch ev.state {
	case stateProbed:
		if ev.full {
			copy(ev.dist, ev.distSnap)
			copy(ev.par, ev.parSnap)
			ev.full = false
		} else {
			ev.restoreJournal()
		}
		for i := len(ev.effLog) - 1; i >= 0; i-- {
			rec := ev.effLog[i]
			ev.m[rec.post] = rec.oldM
			ev.eff[rec.post] = rec.oldEff
		}
	case stateMemoProbed:
		// Only the counts were touched; distances were never repaired.
		for i := len(ev.effLog) - 1; i >= 0; i-- {
			ev.m[ev.effLog[i].post] = ev.effLog[i].oldM
		}
	default:
		return errNoProbe
	}
	ev.journal = ev.journal[:0]
	ev.effLog = ev.effLog[:0]
	ev.state = stateIdle
	return nil
}

// BestParents returns a parent vector realising the minimum cost of m
// along with that cost, identically to CostEvaluator.BestParents. When m
// is the committed deployment (the usual case: solvers finalise the
// deployment they just accepted) the standing distances are reused and
// no Dijkstra runs.
func (ev *IncrementalEvaluator) BestParents(m []int) ([]int, float64, error) {
	parents := make([]int, ev.n)
	total, err := ev.BestParentsInto(parents, m)
	if err != nil {
		return nil, 0, err
	}
	return parents, total, nil
}

// BestParentsInto is BestParents writing into a caller-provided buffer.
func (ev *IncrementalEvaluator) BestParentsInto(parents []int, m []int) (float64, error) {
	if ev.state != stateIdle {
		return 0, errPendingProbe
	}
	if !ev.have || !sameCounts(ev.m, m) {
		if _, err := ev.Cost(m); err != nil {
			return 0, err
		}
	}
	total, err := totalCost(ev.p, ev.n, ev.dist, ev.eff)
	if err != nil {
		return 0, err
	}
	if err := recoverParents(ev.in, ev.n, ev.bs, ev.eff, ev.rx, ev.dist, parents); err != nil {
		return 0, err
	}
	return total, nil
}

func sameCounts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// rollbackMoves undoes count changes after a validation failure inside
// CostDelta (efficiencies and distances are untouched at that point).
func (ev *IncrementalEvaluator) rollbackMoves() {
	for i := len(ev.effLog) - 1; i >= 0; i-- {
		ev.m[ev.effLog[i].post] = ev.effLog[i].oldM
	}
	ev.effLog = ev.effLog[:0]
}

func (ev *IncrementalEvaluator) restoreJournal() {
	for i := len(ev.journal) - 1; i >= 0; i-- {
		s := ev.journal[i]
		ev.dist[s.v] = s.dist
		ev.par[s.v] = int(s.par)
	}
	ev.journal = ev.journal[:0]
}

func (ev *IncrementalEvaluator) saveDist(v int) {
	ev.journal = append(ev.journal, distSave{v: int32(v), par: int32(ev.par[v]), dist: ev.dist[v]})
}

func (ev *IncrementalEvaluator) memoStore(key uint64, cost float64) {
	if ev.memoKeys == nil || key == 0 {
		return
	}
	idx := key & ev.memoMask
	ev.memoKeys[idx] = key
	ev.memoCosts[idx] = cost
}

// repairAndPrice applies the probe's efficiency changes, repairs the
// shortest-path solution, and prices the result.
func (ev *IncrementalEvaluator) repairAndPrice() (float64, error) {
	ev.ups = ev.ups[:0]
	ev.downs = ev.downs[:0]
	for _, rec := range ev.effLog {
		if rec.newEff == rec.oldEff {
			continue
		}
		ev.eff[rec.post] = rec.newEff
		if rec.newEff > rec.oldEff {
			ev.ups = append(ev.ups, rec.post)
		} else {
			ev.downs = append(ev.downs, rec.post)
		}
	}
	if len(ev.ups) == 0 && len(ev.downs) == 0 {
		// No edge weight changed (e.g. a move past a saturating gain's
		// cap): the standing solution already prices this deployment.
		return totalCost(ev.p, ev.n, ev.dist, ev.eff)
	}
	if !ev.repairDist() {
		ev.fullRecompute()
	}
	return totalCost(ev.p, ev.n, ev.dist, ev.eff)
}

// repairDist repairs dist/par in place for the efficiency changes in
// ev.ups/ev.downs, journaling every touched vertex. It reports false
// when the caller should recompute from scratch instead (wide dirty
// region, or a defensive bail on inconsistent parent structure).
func (ev *IncrementalEvaluator) repairDist() bool {
	bs := ev.bs
	h := ev.h
	h.Reset()
	ev.journal = ev.journal[:0]
	ev.dirtyEpoch = -1

	// Increase side: routes through weakened posts may lengthen. Collect
	// the dirty set (every vertex whose tight-parent chain passes through
	// a weakened post), invalidate it, and re-settle it from its boundary.
	if len(ev.downs) > 0 {
		if !ev.collectAffected() {
			return false
		}
		if 2*len(ev.affected) > ev.n {
			return false // dirty region spans most of the graph: full run is cheaper
		}
		for _, a := range ev.affected {
			ev.saveDist(a)
			ev.dist[a] = math.Inf(1)
			ev.par[a] = -1
		}
		for _, a := range ev.affected {
			best, bestPar := math.Inf(1), -1
			for _, e := range ev.out[a] {
				if cand := ev.dist[e.to] + edgeWeight(e.tx, a, e.to, bs, ev.eff, ev.rx); cand < best {
					best, bestPar = cand, e.to
				}
			}
			if bestPar >= 0 {
				ev.dist[a] = best
				ev.par[a] = bestPar
				h.Push(a, best)
			}
		}
	}

	// Decrease side: every edge incident to a strengthened post got
	// cheaper. Seed the post's own distance through its out-edges, and
	// its in-neighbours through the now-cheaper reception — the post
	// itself may never enter the heap when only reception improved.
	for _, i := range ev.ups {
		if ev.dirtyEpoch >= 0 && ev.mark[i] == ev.dirtyEpoch && ev.status[i] == statusDirty {
			continue // already invalidated and boundary-seeded above
		}
		best, bestPar, improved := ev.dist[i], -1, false
		for _, e := range ev.out[i] {
			if cand := ev.dist[e.to] + edgeWeight(e.tx, i, e.to, bs, ev.eff, ev.rx); cand < best {
				best, bestPar, improved = cand, e.to, true
			}
		}
		if improved {
			ev.saveDist(i)
			ev.dist[i] = best
			ev.par[i] = bestPar
			h.Push(i, best)
		}
		if di := ev.dist[i]; !math.IsInf(di, 1) {
			for _, e := range ev.in[i] {
				u := e.from
				if cand := di + edgeWeight(e.tx, u, i, bs, ev.eff, ev.rx); cand < ev.dist[u] {
					ev.saveDist(u)
					ev.dist[u] = cand
					ev.par[u] = i
					h.Push(u, cand)
				}
			}
		}
	}

	// Propagate to fixpoint: standard lazy-deletion Dijkstra over the
	// seeded frontier, relaxing with the shared edge pricing so repaired
	// values are built by the same additions as a from-scratch run.
	for h.Len() > 0 {
		v, dv := h.Pop()
		if dv > ev.dist[v] {
			continue
		}
		for _, e := range ev.in[v] {
			u := e.from
			if cand := dv + edgeWeight(e.tx, u, v, bs, ev.eff, ev.rx); cand < ev.dist[u] {
				ev.saveDist(u)
				ev.dist[u] = cand
				ev.par[u] = v
				h.Push(u, cand)
			}
		}
	}
	ev.stats.Repairs++
	return true
}

// collectAffected fills ev.affected with every post whose tight-parent
// chain passes through a weakened post, memoising chain status so the
// whole pass is O(N). Reports false when the parent structure is
// inconsistent (defensive: callers then recompute from scratch).
func (ev *IncrementalEvaluator) collectAffected() bool {
	ev.epoch++
	ep := ev.epoch
	ev.dirtyEpoch = ep
	ev.affected = ev.affected[:0]
	for _, d := range ev.downs {
		ev.mark[d] = ep
		ev.status[d] = statusDirty
		ev.affected = append(ev.affected, d)
	}
	for u := 0; u < ev.n; u++ {
		if ev.mark[u] == ep {
			continue
		}
		ev.chain = ev.chain[:0]
		v := u
		st := statusClean
		for steps := 0; ; steps++ {
			if v == ev.bs {
				break
			}
			if ev.mark[v] == ep {
				st = ev.status[v]
				break
			}
			ev.chain = append(ev.chain, v)
			v = ev.par[v]
			if v < 0 || steps > ev.n {
				return false
			}
		}
		for _, c := range ev.chain {
			ev.mark[c] = ep
			ev.status[c] = st
			if st == statusDirty {
				ev.affected = append(ev.affected, c)
			}
		}
	}
	return true
}

// fullRecompute snapshots the committed solution (for Revert) and runs a
// from-scratch Dijkstra under the probe's efficiencies.
func (ev *IncrementalEvaluator) fullRecompute() {
	ev.restoreJournal() // discard any partial repair first
	copy(ev.distSnap, ev.dist)
	copy(ev.parSnap, ev.par)
	ev.full = true
	ev.fullDijkstra()
	ev.stats.Fallbacks++
}

// fullDijkstra recomputes dist/par from scratch under the current
// efficiencies — the same relaxation order and arithmetic as
// CostEvaluator.dijkstra, plus tight-parent tracking.
func (ev *IncrementalEvaluator) fullDijkstra() {
	for i := range ev.dist {
		ev.dist[i] = math.Inf(1)
	}
	for i := range ev.par {
		ev.par[i] = -1
	}
	ev.dist[ev.bs] = 0
	h := ev.h
	h.Reset()
	h.Push(ev.bs, 0)
	for h.Len() > 0 {
		v, dv := h.Pop()
		if dv > ev.dist[v] {
			continue
		}
		for _, e := range ev.in[v] {
			u := e.from
			if nd := dv + edgeWeight(e.tx, u, v, ev.bs, ev.eff, ev.rx); nd < ev.dist[u] {
				ev.dist[u] = nd
				ev.par[u] = v
				h.Push(u, nd)
			}
		}
	}
}
