package model

import (
	"errors"
	"fmt"

	"wrsn/internal/graph"
)

// Protocol-misuse errors shared by the Evaluator implementations.
var (
	errNoBase       = errors.New("model: evaluator has no committed deployment; call Cost first")
	errPendingProbe = errors.New("model: evaluator has a pending probe; Commit or Revert it first")
	errNoProbe      = errors.New("model: evaluator has no pending probe")
)

// IncrementalEvaluator is the delta-aware implementation of the Evaluator
// protocol: it keeps the last accepted deployment's per-post charging
// efficiencies, shortest recharging-cost distances and tight-parent
// structure, and prices a probe by *repairing* that solution instead of
// re-running Dijkstra from scratch.
//
// A move at post i only reprices the communication edges incident to i,
// so the repair is local:
//
//   - posts whose efficiency rose (nodes added) can only shorten
//     distances; the repair seeds a Dijkstra pass from the repriced edges
//     and lets improvements propagate.
//   - posts whose efficiency fell (nodes removed) can only lengthen the
//     distances of vertices whose shortest path routed through them. That
//     is exactly the weakened posts' subtrees in the tight-parent tree,
//     which the evaluator maintains as intrusive child lists — so the
//     dirty set is collected in O(|dirty|), invalidated, and re-settled
//     from its boundary. When the dirty set covers more than half the
//     posts the repair falls back to one full Dijkstra run (it would
//     cost as much anyway).
//
// The hot loops run over the frozen commCSR slices with *maintained*
// weight-component arrays: inTxw[s] = tx/eff[tail] per in slot and
// rxw[v] = rx/eff[v] per vertex (0 for the BS), refreshed only for the
// slots a move touches. A relaxation is then dv + (inTxw[s] + rxw[v])
// with no division — the exact operation tree edgeWeight computes — so
// repaired shortest-path values are bit-identical to a fresh
// CostEvaluator.MinCost on the materialised vector; the differential and
// fuzz suites pin that equivalence.
//
// The priority queue is a BucketQueue: heap mode at this suite's scale,
// dial/bucket mode when Configure's applicability rule selects it for
// large instances with a narrow discrete weight band — the two modes pop
// in the same (priority, key) order, so the choice never changes results.
//
// Every touched distance is journaled, so Revert restores the committed
// state in O(touched) and a probe/revert cycle allocates nothing in
// steady state. An optional bounded memo (EnableMemo) answers probes for
// recently seen deployments — simulated annealing revisits states on
// reject/propose cycles — from a Zobrist-keyed table without touching
// the graph at all. AttachSharedMemo adds a second, concurrency-safe
// lookup tier shared across evaluators solving the same instance.
//
// Not safe for concurrent use: parallel solvers hold one per worker.
type IncrementalEvaluator struct {
	p  *Problem
	n  int
	bs int
	rx float64

	c *commCSR

	// Maintained weight components (always consistent with eff):
	//   rxw[v]   = rx/eff[v] for posts, 0 for the BS
	//   inTxw[s] = inTx[s]/eff[inFrom[s]]
	// Edge weight of in slot s into v is inTxw[s] + rxw[v], associated
	// exactly as edgeWeight computes it.
	rxw   []float64
	inTxw []float64

	// Committed (or probed) state.
	m    []int
	eff  []float64
	dist []float64
	par  []int // par[u]: tight parent of post u (a post, or bs)
	cost float64
	key  uint64 // Zobrist key of m
	have bool

	// Intrusive child lists mirroring par: childHead[v] is the first
	// child of v (-1 none), childNext/childPrev link siblings. They turn
	// "every vertex routing through post d" into a subtree walk.
	childHead []int32
	childNext []int32
	childPrev []int32

	rates []float64
	// rateTotal = sum of rates, maintained for CostDeltaBounded's
	// partial-settle lower bound.
	rateTotal float64
	q         *graph.BucketQueue

	// Efficiency extremes ever observed, for the queue's weight-band
	// configuration (conservative: monotone over the evaluator's life).
	effLo float64
	effHi float64

	// Lazily grown cache of Charging.NetworkEfficiency(m) for m >= 1.
	effTab []float64

	// Probe bookkeeping.
	state       int // idle / probed / memoProbed
	pendingCost float64
	pendingKey  uint64
	journal     []distSave
	effLog      []effSave
	full        bool // probe recomputed fully; snapshots hold the base
	distSnap    []float64
	parSnap     []int

	// Epoch-stamped scratch (no per-probe clearing).
	epoch      int64
	dirtyEpoch int64
	mark       []int64
	chain      []int
	affected   []int
	ups        []int
	downs      []int

	// Bounded deployment memo (nil when disabled).
	memoMask  uint64
	memoKeys  []uint64
	memoCosts []float64

	// Cross-cell shared memo (nil when not attached).
	shared     *SharedMemo
	sharedSalt uint64

	// Probe cache (nil until EnableProbeCache; see probecache.go).
	slots      []probeSlot
	slotWords  int
	dirtyMask  []uint64
	patchSaved []float64

	stats EvalStats
}

// distSave journals one vertex's pre-probe shortest-path state. Entries
// may repeat within a probe; Revert replays them in reverse, so the
// oldest (correct) value wins.
type distSave struct {
	v    int32
	par  int32
	dist float64
}

// effSave journals one changed post's pre-probe deployment state (one
// entry per distinct post per probe).
type effSave struct {
	post   int
	oldM   int
	newM   int
	oldEff float64
	newEff float64
}

const (
	stateIdle = iota
	stateProbed
	stateMemoProbed
)

// tinyVerts is the vertex count at or below which every probe runs a
// full scan-min Dijkstra instead of the journaled local repair. On
// graphs this small the repair's machinery — queue resets, boundary
// reseeding, dirty-subtree walks, per-vertex journaling — costs more
// than re-settling all vertices with a linear extract-min, which also
// needs no priority queue at all. Repaired and from-scratch distances
// are bit-identical by construction (same relaxation arithmetic, and a
// vertex's distance is the minimum over the same per-path float sums
// regardless of settle order), so the switch can never change a cost.
const tinyVerts = 16

// boundedSlack is the safety margin CostDeltaBounded adds on top of the
// caller's limit before abandoning a probe. The partial-settle estimate
// and totalCost accumulate the same per-post terms in different float
// orders, whose divergence is bounded by ~n*eps of the cost magnitude
// (~1e-10 nJ at this suite's scale); 1e-6 dwarfs that, so a pruned
// probe's exactly-summed cost is guaranteed to be >= limit. The margin
// only makes pruning more conservative — probes within boundedSlack of
// the limit complete and return their exact cost.
const boundedSlack = 1e-6

// EvalStats counts how an IncrementalEvaluator answered its queries;
// probes not covered by Repairs/Fallbacks/MemoHits/SharedHits changed no
// edge weight (e.g. moves past a saturating gain's cap) and were priced
// from the standing solution directly.
type EvalStats struct {
	// FullEvals counts Cost calls (full Dijkstra over the whole graph).
	FullEvals int64
	// Probes counts CostDelta calls.
	Probes int64
	// Repairs counts probes priced by local shortest-path repair.
	Repairs int64
	// Fallbacks counts probes that fell back to a full re-run because
	// the dirty region spanned too much of the graph.
	Fallbacks int64
	// MemoHits counts probes answered from the private deployment memo.
	MemoHits int64
	// SharedHits counts probes answered from the cross-cell shared memo.
	SharedHits int64
	// BoundedPrunes counts CostDeltaBounded probes abandoned early
	// because a partial-settle lower bound already reached the caller's
	// limit.
	BoundedPrunes int64
	// CacheHits counts candidates re-priced from the probe cache
	// without a repair (CachedCost).
	CacheHits int64
	// CachePromotes counts commits replayed from a cached probe's patch
	// instead of a second repair (CommitCached).
	CachePromotes int64
}

// NewIncrementalEvaluator precomputes the communication topology of p.
// Call Cost to establish the first committed deployment.
func NewIncrementalEvaluator(p *Problem) (*IncrementalEvaluator, error) {
	n := p.N()
	c, err := buildCommCSR(p)
	if err != nil {
		return nil, err
	}
	m := c.numEdges()
	rates := buildRates(p, n)
	var rateTotal float64
	for _, r := range rates {
		rateTotal += r
	}
	return &IncrementalEvaluator{
		p:         p,
		n:         n,
		bs:        n,
		rx:        p.Energy.RxEnergy(),
		c:         c,
		rxw:       make([]float64, n+1),
		inTxw:     make([]float64, m),
		m:         make([]int, n),
		eff:       make([]float64, n),
		dist:      make([]float64, n+1),
		par:       make([]int, n),
		childHead: make([]int32, n+1),
		childNext: make([]int32, n),
		childPrev: make([]int32, n),
		rates:     rates,
		rateTotal: rateTotal,
		q:         graph.NewBucketQueue(n + 1),
		effLo:     inf,
		effHi:     0,
		distSnap:  make([]float64, n+1),
		parSnap:   make([]int, n),
		mark:      make([]int64, n),
	}, nil
}

// EnableMemo attaches a bounded deployment memo with at least the given
// number of entries (rounded up to a power of two); entries <= 0 removes
// it. The memo maps 64-bit Zobrist keys of recently probed deployments
// to their costs in a direct-mapped table, so revisited probes skip the
// shortest-path repair entirely.
func (ev *IncrementalEvaluator) EnableMemo(entries int) {
	if entries <= 0 {
		ev.memoKeys, ev.memoCosts, ev.memoMask = nil, nil, 0
		return
	}
	size := 1
	for size < entries {
		size <<= 1
	}
	ev.memoKeys = make([]uint64, size)
	ev.memoCosts = make([]float64, size)
	ev.memoMask = uint64(size - 1)
}

// AttachSharedMemo connects the evaluator to a cross-cell shared memo:
// probes check it after the private memo, and every priced deployment is
// published to it. salt must identify the problem instance (two
// evaluators may share a memo with the same salt only if they price
// bit-identical problems), which is what keeps hits exact rather than
// heuristic. nil detaches.
func (ev *IncrementalEvaluator) AttachSharedMemo(m *SharedMemo, salt uint64) {
	ev.shared = m
	ev.sharedSalt = salt
}

// Stats returns cumulative query counters.
func (ev *IncrementalEvaluator) Stats() EvalStats { return ev.stats }

// zkey hashes one (post, count) pair with the splitmix64 finaliser; the
// deployment key is the XOR over posts, so a move updates it in O(1).
func zkey(post, count int) uint64 {
	x := uint64(post)<<32 ^ uint64(uint32(count))
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// netEff is Charging.NetworkEfficiency through a lazily grown cache:
// counts repeat constantly across probes and the gain factor is a pure
// function of m. Errors (m < 1) stay uncached.
func (ev *IncrementalEvaluator) netEff(m int) (float64, error) {
	if m >= 1 && m < len(ev.effTab) {
		if e := ev.effTab[m]; e > 0 {
			return e, nil
		}
	}
	e, err := ev.p.Charging.NetworkEfficiency(m)
	if err != nil {
		return 0, err
	}
	if m >= len(ev.effTab) {
		grown := make([]float64, m+16)
		copy(grown, ev.effTab)
		ev.effTab = grown
	}
	ev.effTab[m] = e
	return e, nil
}

// reweightPost refreshes the maintained weight components for every edge
// incident to post i after eff[i] changed. The divisions are exactly
// edgeWeight's, so relaxations stay bit-identical to on-the-fly pricing.
func (ev *IncrementalEvaluator) reweightPost(i int) {
	c := ev.c
	effI := ev.eff[i]
	if effI < ev.effLo {
		ev.effLo = effI
	}
	if effI > ev.effHi {
		ev.effHi = effI
	}
	ev.rxw[i] = ev.rx / effI
	for os := c.outOff[i]; os < c.outOff[i+1]; os++ {
		ev.inTxw[c.outSlot[os]] = c.outTx[os] / effI
	}
}

// reweightAll rebuilds the maintained weight components from scratch
// under the current efficiencies.
func (ev *IncrementalEvaluator) reweightAll() {
	c := ev.c
	ev.rxw[ev.bs] = 0
	for i := 0; i < ev.n; i++ {
		effI := ev.eff[i]
		if effI < ev.effLo {
			ev.effLo = effI
		}
		if effI > ev.effHi {
			ev.effHi = effI
		}
		ev.rxw[i] = ev.rx / effI
	}
	for s := range ev.inTxw {
		ev.inTxw[s] = c.inTx[s] / ev.eff[c.inFrom[s]]
	}
}

// configureQueue applies the bucket-queue applicability rule from the
// conservative weight band [minTx/effHi, (maxTx+rx)/effLo]. Cheap when
// the band is unchanged; flips the queue to heap mode if the band has
// grown degenerate.
func (ev *IncrementalEvaluator) configureQueue() {
	if ev.effHi <= 0 {
		return
	}
	ev.q.Configure(ev.c.minTx/ev.effHi, (ev.c.maxTx+ev.rx)/ev.effLo)
}

// setPar reparents post u, keeping the intrusive child lists in sync.
// np == -1 detaches u (an invalidated vertex).
func (ev *IncrementalEvaluator) setPar(u, np int) {
	op := ev.par[u]
	if op == np {
		return
	}
	if op >= 0 {
		prev, next := ev.childPrev[u], ev.childNext[u]
		if prev >= 0 {
			ev.childNext[prev] = next
		} else {
			ev.childHead[op] = next
		}
		if next >= 0 {
			ev.childPrev[next] = prev
		}
	}
	ev.par[u] = np
	if np >= 0 {
		head := ev.childHead[np]
		ev.childNext[u] = head
		ev.childPrev[u] = -1
		if head >= 0 {
			ev.childPrev[head] = int32(u)
		}
		ev.childHead[np] = int32(u)
	}
}

// syncChildren rebuilds the child lists after a bulk par rewrite — a
// no-op in the tiny regime, where every probe recomputes fully and the
// lists (which exist only for repairDist's dirty-subtree collection)
// are never read.
func (ev *IncrementalEvaluator) syncChildren() {
	if ev.n+1 <= tinyVerts {
		return
	}
	ev.rebuildChildren()
}

// rebuildChildren derives the child lists from par after a bulk rewrite
// (full Dijkstra, snapshot restore).
func (ev *IncrementalEvaluator) rebuildChildren() {
	for i := range ev.childHead {
		ev.childHead[i] = -1
	}
	for u := 0; u < ev.n; u++ {
		p := ev.par[u]
		if p < 0 {
			continue
		}
		head := ev.childHead[p]
		ev.childNext[u] = head
		ev.childPrev[u] = -1
		if head >= 0 {
			ev.childPrev[head] = int32(u)
		}
		ev.childHead[p] = int32(u)
	}
}

// Cost fully evaluates m and makes it the committed deployment. On error
// the evaluator loses its committed state and Cost must be called again.
func (ev *IncrementalEvaluator) Cost(m []int) (float64, error) {
	if ev.state != stateIdle {
		return 0, errPendingProbe
	}
	if len(m) != ev.n {
		return 0, fmt.Errorf("model: deployment covers %d posts, want %d", len(m), ev.n)
	}
	var key uint64
	for i, mi := range m {
		e, err := ev.netEff(mi)
		if err != nil {
			ev.have = false
			return 0, fmt.Errorf("model: post %d: %w", i, err)
		}
		ev.eff[i] = e
		key ^= zkey(i, mi)
	}
	copy(ev.m, m)
	ev.reweightAll()
	ev.fullDijkstra()
	cost, err := totalCost(ev.p, ev.n, ev.dist, ev.eff, ev.rates)
	if err != nil {
		ev.have = false
		return 0, err
	}
	ev.key = key
	ev.cost = cost
	ev.have = true
	ev.journal = ev.journal[:0]
	ev.effLog = ev.effLog[:0]
	ev.full = false
	ev.stats.FullEvals++
	ev.memoStore(key, cost)
	ev.invalidateAllSlots() // the cached patches' base is gone
	return cost, nil
}

// CostDelta prices the committed deployment with moves applied, leaving
// the evaluator pending until Commit or Revert. Moves may repeat posts;
// deltas accumulate. Every resulting count must stay >= 1.
func (ev *IncrementalEvaluator) CostDelta(moves []Move) (float64, error) {
	cost, _, err := ev.costDeltaLimited(moves, inf)
	return cost, err
}

// CostDeltaBounded is CostDelta with an early abort: while re-settling
// the shortest-path solution it maintains a monotone lower bound on the
// final cost — settled posts' terms exactly, unsettled posts priced at
// the current frontier distance — and once that bound reaches
// limit+boundedSlack the probe is abandoned. An abandoned probe leaves
// the evaluator idle on the committed deployment (no Commit/Revert due)
// and reports pruned=true, which guarantees the probe's exact cost
// would have been >= limit; a completed probe behaves exactly like
// CostDelta. The early exit engages in the scan-min regime (n+1 <=
// tinyVerts, where the exact searches operate); larger instances and
// memo-answered probes price exactly and never prune.
func (ev *IncrementalEvaluator) CostDeltaBounded(moves []Move, limit float64) (float64, bool, error) {
	return ev.costDeltaLimited(moves, limit)
}

func (ev *IncrementalEvaluator) costDeltaLimited(moves []Move, limit float64) (float64, bool, error) {
	if !ev.have {
		return 0, false, errNoBase
	}
	if ev.state != stateIdle {
		return 0, false, errPendingProbe
	}
	ev.stats.Probes++

	// Apply the moves, journaling one record per distinct post.
	ev.effLog = ev.effLog[:0]
	ev.epoch++
	e0 := ev.epoch
	for _, mv := range moves {
		if mv.Post < 0 || mv.Post >= ev.n {
			ev.rollbackMoves()
			return 0, false, fmt.Errorf("model: move targets post %d of %d", mv.Post, ev.n)
		}
		if ev.mark[mv.Post] != e0 {
			ev.mark[mv.Post] = e0
			ev.effLog = append(ev.effLog, effSave{post: mv.Post, oldM: ev.m[mv.Post], oldEff: ev.eff[mv.Post]})
		}
		ev.m[mv.Post] += mv.Delta
	}
	key := ev.key
	for i := range ev.effLog {
		rec := &ev.effLog[i]
		newM := ev.m[rec.post]
		rec.newM = newM
		if newM == rec.oldM {
			rec.newEff = rec.oldEff
			continue
		}
		e, err := ev.netEff(newM)
		if err != nil {
			ev.rollbackMoves()
			return 0, false, fmt.Errorf("model: post %d: %w", rec.post, err)
		}
		rec.newEff = e
		key ^= zkey(rec.post, rec.oldM) ^ zkey(rec.post, newM)
	}
	ev.pendingKey = key

	if ev.memoKeys != nil && key != 0 {
		if idx := key & ev.memoMask; ev.memoKeys[idx] == key {
			// Deployment seen before: answer from the memo and defer the
			// shortest-path repair until (and unless) the probe commits.
			ev.stats.MemoHits++
			ev.state = stateMemoProbed
			ev.pendingCost = ev.memoCosts[idx]
			return ev.pendingCost, false, nil
		}
	}
	if ev.shared != nil && key != 0 {
		if cost, ok := ev.shared.load(key ^ ev.sharedSalt); ok {
			ev.stats.SharedHits++
			ev.state = stateMemoProbed
			ev.pendingCost = cost
			return cost, false, nil
		}
	}

	if limit < inf && ev.n+1 <= tinyVerts {
		return ev.boundedRepairAndPrice(limit)
	}

	cost, err := ev.repairAndPrice()
	if err != nil {
		// Disconnection cannot arise from deployment changes (the edge
		// set is range-based and fixed), so only defensive paths land
		// here; leave the evaluator needing a fresh Cost.
		ev.have = false
		return 0, false, err
	}
	ev.state = stateProbed
	ev.pendingCost = cost
	ev.memoStore(key, cost)
	return cost, false, nil
}

// boundedRepairAndPrice is repairAndPrice's limit-aware tiny-graph
// variant: it applies the probe's efficiency changes, snapshots the
// committed solution, and re-settles by the bounded scan-min walk. On
// prune it rolls the evaluator all the way back to idle; on completion
// it leaves the probe pending exactly as CostDelta would.
func (ev *IncrementalEvaluator) boundedRepairAndPrice(limit float64) (float64, bool, error) {
	changed := false
	for i := range ev.effLog {
		rec := &ev.effLog[i]
		if rec.newEff == rec.oldEff {
			continue
		}
		ev.eff[rec.post] = rec.newEff
		ev.reweightPost(rec.post)
		changed = true
	}
	var pruned bool
	if changed {
		copy(ev.distSnap, ev.dist)
		copy(ev.parSnap, ev.par)
		ev.full = true
		pruned = ev.tinyDijkstra(limit)
	}
	// else: no edge weight changed (e.g. a move past a saturating gain's
	// cap) — the standing solution already prices this deployment.
	if pruned {
		// Put the committed solution back; the probe never happened.
		copy(ev.dist, ev.distSnap)
		copy(ev.par, ev.parSnap)
		for i := len(ev.effLog) - 1; i >= 0; i-- {
			rec := ev.effLog[i]
			ev.m[rec.post] = rec.oldM
			if rec.newEff != rec.oldEff {
				ev.eff[rec.post] = rec.oldEff
				ev.reweightPost(rec.post)
			}
		}
		ev.effLog = ev.effLog[:0]
		ev.full = false
		ev.stats.BoundedPrunes++
		return 0, true, nil
	}
	if changed {
		ev.stats.Fallbacks++ // parity with repairAndPrice's tiny path
	}
	cost, err := totalCost(ev.p, ev.n, ev.dist, ev.eff, ev.rates)
	if err != nil {
		ev.have = false
		return 0, false, err
	}
	ev.state = stateProbed
	ev.pendingCost = cost
	ev.memoStore(ev.pendingKey, cost)
	return cost, false, nil
}

// Commit accepts the last probe as the committed deployment.
func (ev *IncrementalEvaluator) Commit() error {
	switch ev.state {
	case stateProbed:
	case stateMemoProbed:
		// The probe was answered from a memo without touching the
		// graph; materialise the repair now that the move is accepted.
		cost, err := ev.repairAndPrice()
		if err != nil {
			ev.have = false
			return err
		}
		ev.pendingCost = cost
	default:
		return errNoProbe
	}
	ev.invalidateForCommit()
	ev.state = stateIdle
	ev.cost = ev.pendingCost
	ev.key = ev.pendingKey
	ev.journal = ev.journal[:0]
	ev.effLog = ev.effLog[:0]
	ev.full = false
	return nil
}

// Revert discards the last probe, restoring the committed deployment's
// state in O(touched).
func (ev *IncrementalEvaluator) Revert() error {
	switch ev.state {
	case stateProbed:
		if ev.full {
			copy(ev.dist, ev.distSnap)
			copy(ev.par, ev.parSnap)
			ev.syncChildren()
			ev.full = false
		} else {
			ev.restoreJournal()
		}
		for i := len(ev.effLog) - 1; i >= 0; i-- {
			rec := ev.effLog[i]
			ev.m[rec.post] = rec.oldM
			ev.eff[rec.post] = rec.oldEff
			if rec.newEff != rec.oldEff {
				ev.reweightPost(rec.post)
			}
		}
	case stateMemoProbed:
		// Only the counts were touched; distances and weights were never
		// repaired.
		for i := len(ev.effLog) - 1; i >= 0; i-- {
			ev.m[ev.effLog[i].post] = ev.effLog[i].oldM
		}
	default:
		return errNoProbe
	}
	ev.journal = ev.journal[:0]
	ev.effLog = ev.effLog[:0]
	ev.state = stateIdle
	return nil
}

// BestParents returns a parent vector realising the minimum cost of m
// along with that cost, identically to CostEvaluator.BestParents. When m
// is the committed deployment (the usual case: solvers finalise the
// deployment they just accepted) the standing distances are reused and
// no Dijkstra runs.
func (ev *IncrementalEvaluator) BestParents(m []int) ([]int, float64, error) {
	parents := make([]int, ev.n)
	total, err := ev.BestParentsInto(parents, m)
	if err != nil {
		return nil, 0, err
	}
	return parents, total, nil
}

// BestParentsInto is BestParents writing into a caller-provided buffer.
func (ev *IncrementalEvaluator) BestParentsInto(parents []int, m []int) (float64, error) {
	if ev.state != stateIdle {
		return 0, errPendingProbe
	}
	if !ev.have || !sameCounts(ev.m, m) {
		if _, err := ev.Cost(m); err != nil {
			return 0, err
		}
	}
	total, err := totalCost(ev.p, ev.n, ev.dist, ev.eff, ev.rates)
	if err != nil {
		return 0, err
	}
	if err := recoverParents(ev.c, ev.eff, ev.rx, ev.dist, parents); err != nil {
		return 0, err
	}
	return total, nil
}

func sameCounts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// rollbackMoves undoes count changes after a validation failure inside
// CostDelta (efficiencies and distances are untouched at that point).
func (ev *IncrementalEvaluator) rollbackMoves() {
	for i := len(ev.effLog) - 1; i >= 0; i-- {
		ev.m[ev.effLog[i].post] = ev.effLog[i].oldM
	}
	ev.effLog = ev.effLog[:0]
}

func (ev *IncrementalEvaluator) restoreJournal() {
	for i := len(ev.journal) - 1; i >= 0; i-- {
		s := ev.journal[i]
		ev.dist[s.v] = s.dist
		ev.setPar(int(s.v), int(s.par))
	}
	ev.journal = ev.journal[:0]
}

func (ev *IncrementalEvaluator) saveDist(v int) {
	ev.journal = append(ev.journal, distSave{v: int32(v), par: int32(ev.par[v]), dist: ev.dist[v]})
}

func (ev *IncrementalEvaluator) memoStore(key uint64, cost float64) {
	if key == 0 {
		return
	}
	if ev.memoKeys != nil {
		idx := key & ev.memoMask
		ev.memoKeys[idx] = key
		ev.memoCosts[idx] = cost
	}
	if ev.shared != nil {
		ev.shared.store(key^ev.sharedSalt, cost)
	}
}

// repairAndPrice applies the probe's efficiency changes, repairs the
// shortest-path solution, and prices the result.
func (ev *IncrementalEvaluator) repairAndPrice() (float64, error) {
	ev.ups = ev.ups[:0]
	ev.downs = ev.downs[:0]
	for _, rec := range ev.effLog {
		if rec.newEff == rec.oldEff {
			continue
		}
		ev.eff[rec.post] = rec.newEff
		ev.reweightPost(rec.post)
		if rec.newEff > rec.oldEff {
			ev.ups = append(ev.ups, rec.post)
		} else {
			ev.downs = append(ev.downs, rec.post)
		}
	}
	if len(ev.ups) == 0 && len(ev.downs) == 0 {
		// No edge weight changed (e.g. a move past a saturating gain's
		// cap): the standing solution already prices this deployment.
		return totalCost(ev.p, ev.n, ev.dist, ev.eff, ev.rates)
	}
	if ev.n+1 <= tinyVerts {
		// Tiny graph: a full scan-min re-settle beats the local repair
		// (see tinyVerts); Revert restores from the snapshot.
		ev.fullRecompute()
	} else if !ev.repairDist() {
		ev.fullRecompute()
	}
	return totalCost(ev.p, ev.n, ev.dist, ev.eff, ev.rates)
}

// repairDist repairs dist/par in place for the efficiency changes in
// ev.ups/ev.downs, journaling every touched vertex. It reports false
// when the caller should recompute from scratch instead (the dirty
// region spans most of the graph).
func (ev *IncrementalEvaluator) repairDist() bool {
	c := ev.c
	q := ev.q
	ev.configureQueue()
	q.Reset()
	ev.journal = ev.journal[:0]
	ev.dirtyEpoch = -1

	// Increase side: routes through weakened posts may lengthen. The
	// dirty set is the union of the weakened posts' subtrees in the
	// tight-parent tree; invalidate it and re-settle it from its
	// boundary.
	if len(ev.downs) > 0 {
		if 2*len(ev.downs) > ev.n {
			// The dirty set contains every weakened post, so it already
			// spans most of the graph: skip the collection walk and take
			// the full-run fallback directly (identical decision).
			return false
		}
		ev.collectAffected()
		if 2*len(ev.affected) > ev.n {
			return false // dirty region spans most of the graph: full run is cheaper
		}
		for _, a := range ev.affected {
			ev.saveDist(a)
			ev.dist[a] = inf
			ev.setPar(a, -1)
		}
		for _, a := range ev.affected {
			best, bestPar := inf, -1
			for os := c.outOff[a]; os < c.outOff[a+1]; os++ {
				to := c.outTo[os]
				if cand := ev.dist[to] + (ev.inTxw[c.outSlot[os]] + ev.rxw[to]); cand < best {
					best, bestPar = cand, int(to)
				}
			}
			if bestPar >= 0 {
				ev.dist[a] = best
				ev.setPar(a, bestPar)
				q.Push(a, best)
			}
		}
	}

	// Decrease side: every edge incident to a strengthened post got
	// cheaper. Seed the post's own distance through its out-edges, and
	// its in-neighbours through the now-cheaper reception — the post
	// itself may never enter the queue when only reception improved.
	for _, i := range ev.ups {
		if ev.dirtyEpoch >= 0 && ev.mark[i] == ev.dirtyEpoch {
			continue // already invalidated and boundary-seeded above
		}
		best, bestPar, improved := ev.dist[i], -1, false
		for os := c.outOff[i]; os < c.outOff[i+1]; os++ {
			to := c.outTo[os]
			if cand := ev.dist[to] + (ev.inTxw[c.outSlot[os]] + ev.rxw[to]); cand < best {
				best, bestPar, improved = cand, int(to), true
			}
		}
		if improved {
			ev.saveDist(i)
			ev.dist[i] = best
			ev.setPar(i, bestPar)
			q.Push(i, best)
		}
		if di := ev.dist[i]; di != inf {
			ri := ev.rxw[i]
			for s := c.inOff[i]; s < c.inOff[i+1]; s++ {
				u := int(c.inFrom[s])
				if cand := di + (ev.inTxw[s] + ri); cand < ev.dist[u] {
					ev.saveDist(u)
					ev.dist[u] = cand
					ev.setPar(u, i)
					q.Push(u, cand)
				}
			}
		}
	}

	// Propagate to fixpoint: standard lazy-deletion Dijkstra over the
	// seeded frontier, relaxing with the maintained weight components so
	// repaired values are built by the same operations as a from-scratch
	// run. The loop is written once per queue mode so every operation
	// lands on the concrete structure without the mode-dispatch call
	// (both modes pop in the same (priority, key) order, so the split
	// cannot change results).
	if q.Bucketed() {
		for q.Len() > 0 {
			v, dv := q.Pop()
			if dv > ev.dist[v] {
				continue
			}
			rv := ev.rxw[v]
			for s := c.inOff[v]; s < c.inOff[v+1]; s++ {
				u := int(c.inFrom[s])
				if cand := dv + (ev.inTxw[s] + rv); cand < ev.dist[u] {
					ev.saveDist(u)
					ev.dist[u] = cand
					ev.setPar(u, v)
					q.Push(u, cand)
				}
			}
		}
	} else {
		h := q.Heap()
		for h.Len() > 0 {
			v, dv := h.Pop()
			if dv > ev.dist[v] {
				continue
			}
			rv := ev.rxw[v]
			for s := c.inOff[v]; s < c.inOff[v+1]; s++ {
				u := int(c.inFrom[s])
				if cand := dv + (ev.inTxw[s] + rv); cand < ev.dist[u] {
					ev.saveDist(u)
					ev.dist[u] = cand
					ev.setPar(u, v)
					h.Push(u, cand)
				}
			}
		}
	}
	ev.stats.Repairs++
	return true
}

// collectAffected fills ev.affected with every post whose tight-parent
// chain passes through a weakened post — the union of the weakened
// posts' subtrees, walked over the maintained child lists in
// O(|affected|). Visited posts are stamped with ev.dirtyEpoch in
// ev.mark.
func (ev *IncrementalEvaluator) collectAffected() {
	ev.epoch++
	ep := ev.epoch
	ev.dirtyEpoch = ep
	ev.affected = ev.affected[:0]
	stack := ev.chain[:0]
	for _, d := range ev.downs {
		if ev.mark[d] == ep {
			continue // nested inside an earlier weakened post's subtree
		}
		ev.mark[d] = ep
		ev.affected = append(ev.affected, d)
		stack = append(stack, d)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for ch := ev.childHead[v]; ch >= 0; ch = ev.childNext[ch] {
				u := int(ch)
				if ev.mark[u] == ep {
					continue
				}
				ev.mark[u] = ep
				ev.affected = append(ev.affected, u)
				stack = append(stack, u)
			}
		}
	}
	ev.chain = stack[:0]
}

// fullRecompute snapshots the committed solution (for Revert) and runs a
// from-scratch Dijkstra under the probe's efficiencies.
func (ev *IncrementalEvaluator) fullRecompute() {
	ev.restoreJournal() // discard any partial repair first
	copy(ev.distSnap, ev.dist)
	copy(ev.parSnap, ev.par)
	ev.full = true
	ev.fullDijkstra()
	ev.stats.Fallbacks++
}

// fullDijkstra recomputes dist/par from scratch under the current
// efficiencies — the same relaxation order and arithmetic as
// CostEvaluator.dijkstra (the maintained weight components are combined
// by edgeWeight's own operation tree), plus tight-parent tracking.
func (ev *IncrementalEvaluator) fullDijkstra() {
	if ev.n+1 <= tinyVerts {
		ev.tinyDijkstra(inf)
		return
	}
	c := ev.c
	for i := range ev.dist {
		ev.dist[i] = inf
	}
	for i := range ev.par {
		ev.par[i] = -1
	}
	ev.dist[ev.bs] = 0
	q := ev.q
	ev.configureQueue()
	q.Reset()
	q.Push(ev.bs, 0)
	// Specialized per queue mode, like repairDist's propagate loop.
	if q.Bucketed() {
		for q.Len() > 0 {
			v, dv := q.Pop()
			if dv > ev.dist[v] {
				continue
			}
			rv := ev.rxw[v]
			for s := c.inOff[v]; s < c.inOff[v+1]; s++ {
				u := int(c.inFrom[s])
				if nd := dv + (ev.inTxw[s] + rv); nd < ev.dist[u] {
					ev.dist[u] = nd
					ev.par[u] = v
					q.Push(u, nd)
				}
			}
		}
	} else {
		h := q.Heap()
		for h.Len() > 0 {
			v, dv := h.Pop()
			if dv > ev.dist[v] {
				continue
			}
			rv := ev.rxw[v]
			for s := c.inOff[v]; s < c.inOff[v+1]; s++ {
				u := int(c.inFrom[s])
				if nd := dv + (ev.inTxw[s] + rv); nd < ev.dist[u] {
					ev.dist[u] = nd
					ev.par[u] = v
					h.Push(u, nd)
				}
			}
		}
	}
	ev.rebuildChildren()
}

// tinyDijkstra re-settles every vertex under the current efficiencies
// by scan-min extraction: the unsettled minimum is found by a linear
// scan over a settled bitmask (see tinyVerts). Settle order matches the
// queue modes on ties (lowest vertex index first), and the relaxation
// is the same expression, so distances are bit-identical to the queue
// paths.
//
// A finite limit arms the bounded-probe early exit: the walk maintains
// settledSum — the deployment's overhead plus the exact cost terms of
// settled posts — and rateLeft, the total report rate of unsettled
// posts. Settled distances are final and unsettled ones can only end at
// or above the frontier minimum dv, so settledSum + rateLeft*dv is a
// true lower bound on the final cost; once it reaches
// limit+boundedSlack the walk aborts and reports true, leaving dist/par
// partially rewritten (callers restore from the snapshot). limit=inf
// never prunes and prices exactly.
//
// The intrusive child lists are deliberately left stale: they exist
// only for repairDist's dirty-subtree collection, and in the tiny
// regime every probe recomputes fully, so nothing ever reads them.
func (ev *IncrementalEvaluator) tinyDijkstra(limit float64) bool {
	c := ev.c
	nv := ev.n + 1
	for i := 0; i < nv; i++ {
		ev.dist[i] = inf
	}
	for i := 0; i < ev.n; i++ {
		ev.par[i] = -1
	}
	ev.dist[ev.bs] = 0
	bounded := limit < inf
	var settledSum, rateLeft float64
	if bounded {
		settledSum = overheadCost(ev.p, ev.n, ev.eff)
		rateLeft = ev.rateTotal
	}
	var settled uint64
	for {
		v, dv := -1, inf
		for u := 0; u < nv; u++ {
			if settled&(1<<uint(u)) == 0 && ev.dist[u] < dv {
				v, dv = u, ev.dist[u]
			}
		}
		if v < 0 {
			break
		}
		if bounded {
			if settledSum+rateLeft*dv >= limit+boundedSlack {
				return true
			}
			if v < ev.n {
				r := ev.rates[v]
				settledSum += r * dv
				rateLeft -= r
			}
		}
		settled |= 1 << uint(v)
		rv := ev.rxw[v]
		for s := c.inOff[v]; s < c.inOff[v+1]; s++ {
			u := int(c.inFrom[s])
			if nd := dv + (ev.inTxw[s] + rv); nd < ev.dist[u] {
				ev.dist[u] = nd
				ev.par[u] = v
			}
		}
	}
	return false
}
