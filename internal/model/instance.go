package model

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// Problem-family kinds known to the solver registry. An Instance reports
// its kind so registries and CLIs can describe which solvers accept which
// problem families without probing them.
const (
	// KindDeployment is the paper's joint deployment-and-routing problem
	// (*Problem).
	KindDeployment = "deployment"
	// KindPlacement is the static RF charger-placement problem
	// (internal/placement.Instance).
	KindPlacement = "placement"
)

// Instance is one optimization-problem instance expressed through the
// move-based evaluation protocol: a solution is an integer vector of
// Dims() per-dimension counts, bounded per dimension, optionally
// constrained to a fixed total, and priced by an Evaluator. It is the
// seam between problem families and the generic solver hot loops:
// everything IDB, local search, annealing and the exact searches need to
// run is here, with nothing deployment-specific.
//
// *Problem implements Instance for the paper's joint
// deployment-and-routing problem (dimension i = post i's node count);
// internal/placement.Instance implements it for static RF charger
// placement (dimension j = chargers at candidate site j).
type Instance interface {
	// Kind names the problem family (KindDeployment, KindPlacement, ...).
	Kind() string
	// Dims is the solution-vector length.
	Dims() int
	// LowerBound and UpperBound bound dimension i's count in any valid
	// solution (inclusive). Solvers move counts only inside these bounds.
	LowerBound(i int) int
	UpperBound(i int) int
	// FixedTotal returns (total, true) when every valid solution's counts
	// must sum to exactly total — the deployment problem's node budget.
	// (0, false) means the sum is free and solvers may add or remove
	// units (charger placement: any subset of sites is a solution).
	FixedTotal() (int, bool)
	// NewEvaluator returns the production (incremental) evaluator for
	// this instance; NewReferenceEvaluator returns the trivially correct
	// oracle implementation the production one is differentially tested
	// against. Both price identically.
	NewEvaluator() (Evaluator, error)
	NewReferenceEvaluator() (Evaluator, error)
	// ValidateSolution checks that m is a valid solution vector (length,
	// bounds, fixed total).
	ValidateSolution(m []int) error
	// EncodeSolution renders m compactly for artifacts and logs.
	EncodeSolution(m []int) string
	// Validate checks the instance's own structural invariants.
	Validate() error
}

// SeedHeuristic is an optional Instance capability: a problem-native
// construction heuristic producing an initial solution for the generic
// refinement solvers (local search, annealing) to polish, mirroring the
// role RFH plays for the deployment problem. The returned evaluation
// count feeds Result.Evaluations.
type SeedHeuristic interface {
	SeedSolution(ctx context.Context) (vec []int, evaluations int64, err error)
}

// sharedMemoAttacher is the optional evaluator capability behind
// AttachEvaluatorSharedMemo (IncrementalEvaluator implements it).
type sharedMemoAttacher interface {
	AttachSharedMemoFromContext(ctx context.Context)
}

// memoEnabler is the optional evaluator capability behind
// EnableEvaluatorMemo (IncrementalEvaluator implements it).
type memoEnabler interface {
	EnableMemo(entries int)
}

// AttachEvaluatorSharedMemo attaches the context's shared cost memo to ev
// when ev supports one (IncrementalEvaluator does); a no-op otherwise, so
// generic solver loops can call it unconditionally.
func AttachEvaluatorSharedMemo(ctx context.Context, ev Evaluator) {
	if a, ok := ev.(sharedMemoAttacher); ok {
		a.AttachSharedMemoFromContext(ctx)
	}
}

// EnableEvaluatorMemo enables ev's private bounded probe memo when ev
// supports one (IncrementalEvaluator does); a no-op otherwise.
func EnableEvaluatorMemo(ev Evaluator, entries int) {
	if m, ok := ev.(memoEnabler); ok {
		m.EnableMemo(entries)
	}
}

// EncodeCounts renders a count vector as "a,b,c,..." — the shared
// EncodeSolution implementation for count-vector problem families.
func EncodeCounts(m []int) string {
	var b strings.Builder
	for i, v := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Instance implementation for *Problem: the joint deployment-and-routing
// problem as a count vector of nodes per post, bounded below by one node
// everywhere and summing to the node budget M.

// Kind returns KindDeployment.
func (p *Problem) Kind() string { return KindDeployment }

// Dims returns the solution-vector length: one dimension per post.
func (p *Problem) Dims() int { return p.N() }

// LowerBound returns 1: every post keeps at least one node.
func (p *Problem) LowerBound(int) int { return 1 }

// UpperBound returns the most nodes one post can hold: the budget minus
// one node for every other post.
func (p *Problem) UpperBound(int) int { return p.Nodes - (p.N() - 1) }

// FixedTotal returns the node budget M: deployments always sum to it.
func (p *Problem) FixedTotal() (int, bool) { return p.Nodes, true }

// NewEvaluator returns the production IncrementalEvaluator for p.
func (p *Problem) NewEvaluator() (Evaluator, error) { return NewIncrementalEvaluator(p) }

// NewReferenceEvaluator returns the stateless-oracle evaluator for p.
func (p *Problem) NewReferenceEvaluator() (Evaluator, error) { return NewReferenceEvaluator(p) }

// ValidateSolution checks m as a deployment of p.
func (p *Problem) ValidateSolution(m []int) error { return Deployment(m).Validate(p) }

// EncodeSolution renders a deployment as comma-separated node counts.
func (p *Problem) EncodeSolution(m []int) string { return EncodeCounts(m) }

// LowerBoundVector returns inst's per-dimension lower bounds as a vector
// — the base the incremental solvers grow from.
func LowerBoundVector(inst Instance) []int {
	m := make([]int, inst.Dims())
	for i := range m {
		m[i] = inst.LowerBound(i)
	}
	return m
}

// CheckInstanceBounds rejects structurally impossible bound
// configurations shared by all instance kinds; problem families call it
// from their Validate.
func CheckInstanceBounds(inst Instance) error {
	n := inst.Dims()
	if n <= 0 {
		return fmt.Errorf("model: instance has %d dimensions", n)
	}
	lbSum := 0
	for i := 0; i < n; i++ {
		lo, hi := inst.LowerBound(i), inst.UpperBound(i)
		if lo > hi {
			return fmt.Errorf("model: dimension %d has empty bound range [%d,%d]", i, lo, hi)
		}
		lbSum += lo
	}
	if total, fixed := inst.FixedTotal(); fixed && total < lbSum {
		return fmt.Errorf("model: fixed total %d below the lower-bound sum %d", total, lbSum)
	}
	return nil
}
