package model

import (
	"encoding/json"
	"fmt"
)

// CanonicalSignature returns a stable identity string for a problem
// instance: its kind plus its canonical JSON encoding. It plays the same
// role for single instances that engine.SweepSignature plays for sweep
// grids — a full-fidelity identity the caller can hash for indexing and
// compare verbatim to rule out hash collisions. Two instances share a
// signature exactly when their kinds and every encoded field are equal.
//
// Determinism rests on the instance's JSON encoding being canonical:
// struct fields marshal in declaration order and neither problem family
// encodes through maps, so equal instances always produce equal bytes.
func CanonicalSignature(inst Instance) (string, error) {
	b, err := json.Marshal(inst)
	if err != nil {
		return "", fmt.Errorf("model: canonical signature of %s instance: %w", inst.Kind(), err)
	}
	return inst.Kind() + ":" + string(b), nil
}

// CanonicalKey condenses a canonical signature into a 64-bit cache key
// with the same splitmix64 finaliser the Zobrist deployment keys use
// (zkey): every signature byte is folded through the mixer, so nearby
// signatures (one count or coordinate apart) land in unrelated slots.
// Collisions are possible — pair the key with the full signature, as
// the wrsnd plan cache does, when a false hit would be incorrect rather
// than merely wasteful.
func CanonicalKey(sig string) uint64 {
	x := uint64(len(sig)) ^ 0x9E3779B97F4A7C15
	for i := 0; i < len(sig); i++ {
		x = mix64(x ^ uint64(sig[i]))
	}
	return mix64(x)
}

// mix64 is the splitmix64 finaliser (the same mixing zkey applies to
// (post, count) pairs), kept platform-stable and dependency-free.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}
