package model

import (
	"math"
	"testing"
)

func TestReportRatesValidation(t *testing.T) {
	p := lineProblem(t, 3, 6)
	p.ReportRates = []float64{1, 2} // wrong length
	if err := p.Validate(); err == nil {
		t.Error("wrong-length rates accepted")
	}
	p.ReportRates = []float64{1, -1, 1}
	if err := p.Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	p.ReportRates = []float64{0, 0, 0}
	if err := p.Validate(); err == nil {
		t.Error("all-zero rates accepted")
	}
	p.ReportRates = []float64{2, 0, 0.5}
	if err := p.Validate(); err != nil {
		t.Errorf("valid heterogeneous rates rejected: %v", err)
	}
}

func TestRateHelpers(t *testing.T) {
	p := lineProblem(t, 3, 6)
	if !p.UniformRates() || p.Rate(1) != 1 || p.TotalRate() != 3 {
		t.Errorf("nil rates should behave uniformly: rate=%v total=%v", p.Rate(1), p.TotalRate())
	}
	p.ReportRates = []float64{2, 0, 0.5}
	if p.UniformRates() {
		t.Error("heterogeneous rates reported as uniform")
	}
	if p.Rate(0) != 2 || p.Rate(1) != 0 {
		t.Errorf("Rate wrong: %v %v", p.Rate(0), p.Rate(1))
	}
	if math.Abs(p.TotalRate()-2.5) > 1e-12 {
		t.Errorf("TotalRate = %v", p.TotalRate())
	}
	p.ReportRates = []float64{1, 1, 1}
	if !p.UniformRates() {
		t.Error("explicit all-ones rates should be uniform")
	}
}

func TestSubtreeLoadsWeighted(t *testing.T) {
	p := lineProblem(t, 3, 6)
	p.ReportRates = []float64{0.5, 2, 0}               // post 2 is a pure relay source-wise
	tree, err := NewTreeFromParents(p, []int{3, 0, 1}) // chain 2->1->0->BS
	if err != nil {
		t.Fatal(err)
	}
	loads := tree.SubtreeLoads(p)
	for i, want := range []float64{2.5, 2, 0} {
		if math.Abs(loads[i]-want) > 1e-12 {
			t.Errorf("load[%d] = %v, want %v", i, loads[i], want)
		}
	}
	// With uniform rates, loads equal subtree sizes.
	p.ReportRates = nil
	loads = tree.SubtreeLoads(p)
	sizes := tree.SubtreeSizes(p)
	for i := range loads {
		if loads[i] != float64(sizes[i]) {
			t.Errorf("uniform loads[%d] = %v, sizes = %d", i, loads[i], sizes[i])
		}
	}
}

func TestWeightedEvaluateHandComputed(t *testing.T) {
	p := lineProblem(t, 2, 3)
	p.ReportRates = []float64{1, 3} // the far post reports 3x
	tree, err := NewTreeFromParents(p, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	e2 := 50 + 1.3e-6*math.Pow(50, 4)
	// loads: post0 = 4, post1 = 3.
	// E_0 = 4*e2 + 3*50 (receives post 1's three bits), E_1 = 3*e2.
	want := (4*e2+3*50)/2 + 3*e2/1
	got, err := Evaluate(p, Deployment{2, 1}, tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("weighted Evaluate = %v, want %v", got, want)
	}
	// Evaluator agrees.
	minCost, err := MinCostFor(p, Deployment{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if minCost > got+1e-9 {
		t.Errorf("MinCost %v exceeds a concrete tree's cost %v", minCost, got)
	}
}

// TestWeightedBestTreeRoutesAroundLoad: heavy traffic should prefer the
// high-efficiency (many-node) relay under weighted evaluation.
func TestWeightedBestTreeConsistency(t *testing.T) {
	p := lineProblem(t, 4, 12)
	p.ReportRates = []float64{1, 5, 1, 2}
	deploy := Deployment{5, 3, 2, 2}
	tree, cost, err := BestTreeFor(p, deploy)
	if err != nil {
		t.Fatal(err)
	}
	evaluated, err := Evaluate(p, deploy, tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-evaluated) > 1e-9 {
		t.Errorf("weighted BestTreeFor %v != Evaluate %v", cost, evaluated)
	}
}
