package model

import (
	"math"
	"testing"
)

// TestRoundOverheadEvaluate: the overhead term adds exactly
// sum_i overhead/(k(m_i)*eta) to the cost and nothing else.
func TestRoundOverheadEvaluate(t *testing.T) {
	base := lineProblem(t, 3, 6)
	withOH := lineProblem(t, 3, 6)
	withOH.RoundOverhead = 100

	tree, err := NewTreeFromParents(base, []int{3, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	deploy := Deployment{3, 2, 1}
	c0, err := Evaluate(base, deploy, tree)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Evaluate(withOH, deploy, tree)
	if err != nil {
		t.Fatal(err)
	}
	want := c0 + 100.0/3 + 100.0/2 + 100.0/1
	if math.Abs(c1-want) > 1e-9 {
		t.Errorf("overhead cost = %v, want %v", c1, want)
	}
}

// TestRoundOverheadEvaluatorConsistency: MinCost, BestParents and
// Evaluate must agree under overhead.
func TestRoundOverheadEvaluatorConsistency(t *testing.T) {
	p := lineProblem(t, 4, 8)
	p.RoundOverhead = 250
	ev, err := NewCostEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	deploy := Deployment{2, 2, 2, 2}
	minCost, err := ev.MinCost(deploy)
	if err != nil {
		t.Fatal(err)
	}
	tree, cost, err := BestTreeFor(p, deploy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(minCost-cost) > 1e-9 {
		t.Errorf("MinCost %v != BestTreeFor %v", minCost, cost)
	}
	evaluated, err := Evaluate(p, deploy, tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-evaluated) > 1e-9 {
		t.Errorf("BestTreeFor %v != Evaluate %v", cost, evaluated)
	}
}

// TestRoundOverheadDoesNotChangeRouting: the overhead is routing-
// independent, so the optimal tree is unchanged.
func TestRoundOverheadDoesNotChangeRouting(t *testing.T) {
	base := lineProblem(t, 4, 8)
	withOH := lineProblem(t, 4, 8)
	withOH.RoundOverhead = 1000
	deploy := Deployment{3, 2, 2, 1}
	t0, _, err := BestTreeFor(base, deploy)
	if err != nil {
		t.Fatal(err)
	}
	t1, _, err := BestTreeFor(withOH, deploy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t0.Parent {
		if t0.Parent[i] != t1.Parent[i] {
			t.Fatalf("overhead changed routing at post %d: %d vs %d", i, t0.Parent[i], t1.Parent[i])
		}
	}
}

func TestRoundOverheadValidation(t *testing.T) {
	p := lineProblem(t, 2, 2)
	p.RoundOverhead = -1
	if err := p.Validate(); err == nil {
		t.Error("negative overhead accepted")
	}
	p.RoundOverhead = math.Inf(1)
	if err := p.Validate(); err == nil {
		t.Error("infinite overhead accepted")
	}
}

// TestPostOverheadsOverrideScalar: per-post overheads replace the scalar
// and flow through Evaluate and the evaluator consistently.
func TestPostOverheadsOverrideScalar(t *testing.T) {
	p := lineProblem(t, 3, 6)
	p.RoundOverhead = 999 // must be ignored once PostOverheads is set
	p.PostOverheads = []float64{100, 0, 50}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid per-post overheads rejected: %v", err)
	}
	if p.Overhead(0) != 100 || p.Overhead(1) != 0 || p.Overhead(2) != 50 {
		t.Errorf("Overhead accessor wrong: %v %v %v", p.Overhead(0), p.Overhead(1), p.Overhead(2))
	}
	if !p.HasOverhead() {
		t.Error("HasOverhead false with positive per-post overheads")
	}

	tree, err := NewTreeFromParents(p, []int{3, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	deploy := Deployment{2, 2, 2}
	base := lineProblem(t, 3, 6)
	baseCost, err := Evaluate(base, deploy, tree)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Evaluate(p, deploy, tree)
	if err != nil {
		t.Fatal(err)
	}
	want := baseCost + 100.0/2 + 0 + 50.0/2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("per-post overhead cost %v, want %v", got, want)
	}
	minCost, err := MinCostFor(p, deploy)
	if err != nil {
		t.Fatal(err)
	}
	treeB, costB, err := BestTreeFor(p, deploy)
	if err != nil {
		t.Fatal(err)
	}
	evaluated, err := Evaluate(p, deploy, treeB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(minCost-costB) > 1e-9 || math.Abs(costB-evaluated) > 1e-9 {
		t.Errorf("evaluator inconsistency: MinCost=%v BestTree=%v Evaluate=%v", minCost, costB, evaluated)
	}
}

func TestPostOverheadsValidation(t *testing.T) {
	p := lineProblem(t, 2, 2)
	p.PostOverheads = []float64{1}
	if err := p.Validate(); err == nil {
		t.Error("wrong-length post overheads accepted")
	}
	p.PostOverheads = []float64{1, -2}
	if err := p.Validate(); err == nil {
		t.Error("negative post overhead accepted")
	}
	p.PostOverheads = []float64{0, 0}
	if err := p.Validate(); err != nil {
		t.Errorf("all-zero per-post overheads rejected: %v", err)
	}
	if p.HasOverhead() {
		t.Error("HasOverhead true for all-zero overrides")
	}
}
