package model

import (
	"context"
	"math"
	"sync/atomic"
)

// SharedMemo is a fixed-size, lock-free deployment-cost memo shared by
// every evaluator pricing the same problem instance — e.g. the solver
// cells of one sweep point that differ only in algorithm. It is a
// direct-mapped table of (key, cost) pairs stored as two atomic words
// with an XOR integrity check: slot word a holds key^bits(cost), slot
// word b holds bits(cost), and a load is valid only when a^b recovers
// the probed key. A torn read (concurrent overwrite between the two
// loads) fails the check and reports a miss — never a wrong cost — so
// the table needs no locks and stays exact under any interleaving.
//
// Keys are Zobrist deployment keys XOR-salted per instance by the
// caller (see IncrementalEvaluator.AttachSharedMemo); a salted key of 0
// is remapped so the zero-initialised table never fakes a hit.
type SharedMemo struct {
	mask  uint64
	words []atomic.Uint64 // pairs: words[2i] = key^bits, words[2i+1] = bits
}

// DefaultSharedMemoEntries sizes shared memos when the caller does not
// specify one (engine.RunConfig.MemoEntries == 0): 16Ki entries = 256KiB.
const DefaultSharedMemoEntries = 1 << 14

// NewSharedMemo allocates a shared memo with at least the given number
// of entries, rounded up to a power of two. entries <= 0 returns nil
// (callers treat a nil memo as disabled).
func NewSharedMemo(entries int) *SharedMemo {
	if entries <= 0 {
		return nil
	}
	size := 1
	for size < entries {
		size <<= 1
	}
	return &SharedMemo{
		mask:  uint64(size - 1),
		words: make([]atomic.Uint64, 2*size),
	}
}

func sharedKey(key uint64) uint64 {
	if key == 0 {
		return 0x9E3779B97F4A7C15 // arbitrary non-zero remap
	}
	return key
}

// load probes the memo; ok reports whether a validated entry for key was
// present.
func (m *SharedMemo) load(key uint64) (cost float64, ok bool) {
	key = sharedKey(key)
	i := 2 * (key & m.mask)
	a := m.words[i].Load()
	b := m.words[i+1].Load()
	if a^b != key {
		return 0, false
	}
	return math.Float64frombits(b), true
}

// store publishes (key, cost), overwriting whatever occupied the slot.
func (m *SharedMemo) store(key uint64, cost float64) {
	key = sharedKey(key)
	i := 2 * (key & m.mask)
	b := math.Float64bits(cost)
	m.words[i].Store(key ^ b)
	m.words[i+1].Store(b)
}

// sharedMemoCtxKey carries a shared memo and its instance salt through a
// context.
type sharedMemoCtxKey struct{}

type sharedMemoCtxVal struct {
	m    *SharedMemo
	salt uint64
}

// WithSharedMemo returns a context carrying m and the per-instance
// Zobrist salt (nil m returns ctx unchanged). The engine attaches one
// memo per (point, seed) instance so every solver cell pricing that
// instance shares priced deployments; the salt keeps keys from distinct
// instances from aliasing if a memo is ever reused across them.
func WithSharedMemo(ctx context.Context, m *SharedMemo, salt uint64) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, sharedMemoCtxKey{}, sharedMemoCtxVal{m: m, salt: salt})
}

// SharedMemoFrom extracts the shared memo and salt carried by ctx
// (nil, 0 when absent).
func SharedMemoFrom(ctx context.Context) (*SharedMemo, uint64) {
	v, _ := ctx.Value(sharedMemoCtxKey{}).(sharedMemoCtxVal)
	return v.m, v.salt
}

// AttachSharedMemoFromContext attaches the context's shared memo (if
// any) to ev, salted as the context directs. No-op when ctx carries
// none, so solvers can call it unconditionally.
func (ev *IncrementalEvaluator) AttachSharedMemoFromContext(ctx context.Context) {
	if m, salt := SharedMemoFrom(ctx); m != nil {
		ev.AttachSharedMemo(m, salt)
	}
}
