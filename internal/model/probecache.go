package model

// Probe cache: dirty-candidate pruning for solvers that re-scan a fixed
// candidate set between commits (IDB's δ=1 rounds, local-search sweeps).
//
// Such solvers probe the same single-dimension candidates round after
// round, yet each committed move only perturbs a local region of the
// shortest-path solution — candidates far from the commit would repair
// to exactly the same patch again. The cache makes that reuse sound and
// bit-exact:
//
//   - CacheProbe(id), called while a probe is pending, snapshots the
//     probe's write patch (the journaled vertices' repaired dist/par
//     values and the changed posts' deployment records) and a write
//     mask with one bit per written or moved post. The probe's *read*
//     set is the closed in/out neighbourhood of those writes —
//     relaxations of a settled vertex read its in-neighbours' weights
//     and distances, and boundary reseeding reads out-neighbours — so
//     the first point at which a re-run could diverge from the cached
//     run is necessarily a neighbour of a write.
//   - Commit (and CommitCached) builds the commit's dirty set — posts
//     whose distance value actually changed, plus posts whose count
//     moved — expanded by that same closed neighbourhood, and
//     deactivates every slot whose write mask intersects it. Expanding
//     the dirty side instead of the cached side tests the identical
//     intersection (the closed-neighbourhood relation is symmetric: the
//     CSR in/out lists are exact reverses) but walks adjacency once per
//     commit instead of once per cached probe, keeping CacheProbe
//     O(|patch|). A full-recompute commit deactivates everything.
//   - CachedCost(id), for a still-active slot, lays the patch over the
//     committed distances and runs the same fixed-order totalCost sum a
//     fresh probe would finish with, then unpatches. Because no masked
//     vertex changed since the snapshot, a fresh probe would write
//     exactly the patch again (it reads only unchanged values), so the
//     returned float is bit-identical to re-probing — the differential
//     suite pins this. Costs still shift between rounds as the base
//     moves under the unmasked vertices; only the repair is skipped.
//   - CommitCached(id) promotes a still-active slot straight to the
//     committed state — the probe-promoting commit: the winner of a
//     round was already repaired once during the scan, and replaying
//     its patch forward is O(|patch|) instead of a second repair.
//
// The cache is disabled when the problem prices a deployment-wide
// overhead term: CachedCost reads no efficiencies, which is only exact
// when totalCost doesn't either.
type probeSlot struct {
	active bool
	patch  []distPatch
	effs   []effSave
	mask   []uint64
}

// distPatch records one repaired vertex's post-probe state.
type distPatch struct {
	v    int32
	par  int32
	dist float64
}

// EnableProbeCache sizes the candidate cache at `slots` slot ids (one
// per candidate the solver scans); <= 0 disables it. No-op (cache stays
// disabled) when the problem has an overhead term — see the package
// comment above for why cached re-pricing would not be exact there.
func (ev *IncrementalEvaluator) EnableProbeCache(slots int) {
	if slots <= 0 || ev.p.HasOverhead() {
		ev.slots = nil
		return
	}
	ev.slots = make([]probeSlot, slots)
	ev.slotWords = (ev.n + 63) / 64
	if len(ev.dirtyMask) < ev.slotWords {
		ev.dirtyMask = make([]uint64, ev.slotWords)
	}
}

// maskNbhd sets v's bit and those of its closed in/out neighbourhood
// (the BS carries no bit: its distance is pinned at 0 and it has no
// deployment state).
func (ev *IncrementalEvaluator) maskNbhd(mask []uint64, v int) {
	c := ev.c
	mask[v>>6] |= 1 << uint(v&63)
	for s := c.inOff[v]; s < c.inOff[v+1]; s++ {
		if u := int(c.inFrom[s]); u < ev.n {
			mask[u>>6] |= 1 << uint(u&63)
		}
	}
	for os := c.outOff[v]; os < c.outOff[v+1]; os++ {
		if u := int(c.outTo[os]); u < ev.n {
			mask[u>>6] |= 1 << uint(u&63)
		}
	}
}

// CacheProbe snapshots the pending probe under slot id. Must be called
// after CostDelta and before the Revert/Commit that resolves it; the
// probe itself is unaffected. Probes that recomputed fully or were
// answered from a memo (no journaled patch either way) just clear the
// slot.
func (ev *IncrementalEvaluator) CacheProbe(id int) {
	if ev.slots == nil || id < 0 || id >= len(ev.slots) {
		return
	}
	s := &ev.slots[id]
	s.active = false
	if ev.state != stateProbed || ev.full {
		return
	}
	if len(s.mask) < ev.slotWords {
		s.mask = make([]uint64, ev.slotWords)
	}
	for i := range s.mask {
		s.mask[i] = 0
	}
	s.patch = s.patch[:0]
	s.effs = append(s.effs[:0], ev.effLog...)
	ev.epoch++
	ep := ev.epoch
	for _, j := range ev.journal {
		v := int(j.v)
		if ev.mark[v] == ep {
			continue
		}
		ev.mark[v] = ep
		s.patch = append(s.patch, distPatch{v: j.v, par: int32(ev.par[v]), dist: ev.dist[v]})
		s.mask[v>>6] |= 1 << uint(v&63)
	}
	for i := range s.effs {
		p := s.effs[i].post
		s.mask[p>>6] |= 1 << uint(p&63)
	}
	s.active = true
}

// CachedCost re-prices slot id against the current committed state:
// patch, fixed-order totalCost, unpatch. ok=false means the slot was
// invalidated by an intersecting commit (or never cached) and the
// candidate must be re-probed.
func (ev *IncrementalEvaluator) CachedCost(id int) (float64, bool) {
	if ev.slots == nil || id < 0 || id >= len(ev.slots) || !ev.have || ev.state != stateIdle {
		return 0, false
	}
	s := &ev.slots[id]
	if !s.active {
		return 0, false
	}
	if cap(ev.patchSaved) < len(s.patch) {
		ev.patchSaved = make([]float64, len(s.patch)+16)
	}
	saved := ev.patchSaved[:len(s.patch)]
	for k := range s.patch {
		p := &s.patch[k]
		saved[k] = ev.dist[p.v]
		ev.dist[p.v] = p.dist
	}
	cost, err := totalCost(ev.p, ev.n, ev.dist, ev.eff, ev.rates)
	for k := range s.patch {
		ev.dist[s.patch[k].v] = saved[k]
	}
	if err != nil {
		return 0, false
	}
	ev.stats.CacheHits++
	return cost, true
}

// CommitCached promotes slot id's cached probe straight to the
// committed deployment without re-running the repair: the patch is
// replayed forward in O(|patch|) and the result priced by the same
// fixed-order sum a fresh probe-and-commit would produce. ok=false
// leaves the evaluator untouched (callers fall back to
// CostDelta+Commit).
func (ev *IncrementalEvaluator) CommitCached(id int) (float64, bool) {
	if ev.slots == nil || id < 0 || id >= len(ev.slots) || !ev.have || ev.state != stateIdle {
		return 0, false
	}
	s := &ev.slots[id]
	if !s.active {
		return 0, false
	}
	for i := range s.effs {
		if ev.m[s.effs[i].post] != s.effs[i].oldM {
			return 0, false // base drifted; invalidation should have caught this
		}
	}
	dirty := ev.dirtyMask
	for i := range dirty {
		dirty[i] = 0
	}
	key := ev.key
	for i := range s.effs {
		rec := &s.effs[i]
		ev.m[rec.post] = rec.newM
		if rec.newEff != rec.oldEff {
			ev.eff[rec.post] = rec.newEff
			ev.reweightPost(rec.post)
		}
		if rec.newM != rec.oldM || rec.newEff != rec.oldEff {
			ev.maskNbhd(dirty, rec.post)
		}
		key ^= zkey(rec.post, rec.oldM) ^ zkey(rec.post, rec.newM)
	}
	for k := range s.patch {
		p := &s.patch[k]
		v := int(p.v)
		if ev.dist[v] != p.dist {
			ev.maskNbhd(dirty, v)
			ev.dist[v] = p.dist
		}
		ev.setPar(v, int(p.par))
	}
	cost, err := totalCost(ev.p, ev.n, ev.dist, ev.eff, ev.rates)
	if err != nil {
		ev.have = false
		return 0, false
	}
	ev.cost = cost
	ev.key = key
	ev.memoStore(key, cost)
	ev.stats.CachePromotes++
	ev.invalidateSlots(dirty)
	return cost, true
}

// invalidateForCommit deactivates every slot whose write mask
// intersects the pending commit's neighbourhood-expanded dirty set.
// Called from Commit while the probe's journal and effLog are still
// live.
func (ev *IncrementalEvaluator) invalidateForCommit() {
	if ev.slots == nil {
		return
	}
	if ev.full {
		ev.invalidateAllSlots()
		return
	}
	dirty := ev.dirtyMask
	for i := range dirty {
		dirty[i] = 0
	}
	any := false
	ev.epoch++
	ep := ev.epoch
	for _, j := range ev.journal {
		v := int(j.v)
		if ev.mark[v] == ep {
			continue
		}
		ev.mark[v] = ep
		// The first-seen journal entry per vertex holds the pre-probe
		// value; dist currently holds the probed (about to be committed)
		// one.
		if ev.dist[v] != j.dist {
			ev.maskNbhd(dirty, v)
			any = true
		}
	}
	for i := range ev.effLog {
		rec := &ev.effLog[i]
		// Count changes invalidate even when the efficiency plateaued: a
		// cached probe at this post snapshotted a different count
		// transition.
		if rec.newM != rec.oldM || rec.newEff != rec.oldEff {
			ev.maskNbhd(dirty, rec.post)
			any = true
		}
	}
	if any {
		ev.invalidateSlots(dirty)
	}
}

func (ev *IncrementalEvaluator) invalidateSlots(dirty []uint64) {
	for si := range ev.slots {
		s := &ev.slots[si]
		if !s.active {
			continue
		}
		for w, d := range dirty {
			if s.mask[w]&d != 0 {
				s.active = false
				break
			}
		}
	}
}

func (ev *IncrementalEvaluator) invalidateAllSlots() {
	for si := range ev.slots {
		ev.slots[si].active = false
	}
}
