package model

import (
	"fmt"
	"math"

	"wrsn/internal/geom"
)

// MinEnergyTree returns the charging-oblivious routing baseline: every
// post follows a minimum-network-energy path (transmit plus receive
// energy per bit) to the base station, with no regard for deployment or
// charging efficiency. This is the classic pre-wireless-charging design
// that the paper's heuristics are measured against.
func MinEnergyTree(p *Problem) (Tree, error) {
	dag, err := p.FatTree(p.EnergyWithRxWeights())
	if err != nil {
		return Tree{}, err
	}
	parents := make([]int, p.N())
	for u := range parents {
		if len(dag.Parents[u]) == 0 {
			return Tree{}, fmt.Errorf("%w: post %d", ErrDisconnected, u)
		}
		parents[u] = dag.Parents[u][0]
	}
	return NewTreeFromParents(p, parents)
}

// MinSpanningTree returns the classic WSN routing baseline built by
// Prim's algorithm: the spanning tree over posts+BS minimising the *sum*
// of per-hop transmit energies, oriented toward the base station. Unlike
// MinEnergyTree it minimises total link energy rather than per-source
// path energy — the standard "energy-aware MST" heuristic from the
// pre-wireless-charging literature, kept as a comparison baseline.
func MinSpanningTree(p *Problem) (Tree, error) {
	n := p.N()
	const unset = -1
	parents := make([]int, n)
	bestCost := make([]float64, n)
	bestTo := make([]int, n)
	inTree := make([]bool, n+1)
	for i := 0; i < n; i++ {
		parents[i] = unset
		bestCost[i] = math.Inf(1)
		bestTo[i] = unset
	}

	// linkCost returns the transmit energy for u -> v, +Inf out of range.
	linkCost := func(u, v int) float64 {
		e, err := p.Energy.TxEnergy(geom.Dist(p.Posts[u], p.Point(v)))
		if err != nil {
			return math.Inf(1)
		}
		return e
	}

	// Prim from the BS: grow the tree one cheapest attachment at a time.
	inTree[p.BSIndex()] = true
	for u := 0; u < n; u++ {
		bestCost[u] = linkCost(u, p.BSIndex())
		bestTo[u] = p.BSIndex()
	}
	for added := 0; added < n; added++ {
		pick, pickCost := unset, math.Inf(1)
		for u := 0; u < n; u++ {
			if !inTree[u] && bestCost[u] < pickCost {
				pick, pickCost = u, bestCost[u]
			}
		}
		if pick == unset {
			return Tree{}, fmt.Errorf("%w: MST cannot attach all posts", ErrDisconnected)
		}
		inTree[pick] = true
		parents[pick] = bestTo[pick]
		for u := 0; u < n; u++ {
			if inTree[u] {
				continue
			}
			if c := linkCost(u, pick); c < bestCost[u] {
				bestCost[u] = c
				bestTo[u] = pick
			}
		}
	}
	return NewTreeFromParents(p, parents)
}
