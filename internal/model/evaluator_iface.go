package model

import "fmt"

// Move adjusts one post's node count by Delta (which may be negative).
// A slice of Moves describes how one candidate deployment differs from
// the deployment an Evaluator currently holds — the unit of work of the
// delta-aware evaluation protocol.
type Move struct {
	Post  int
	Delta int
}

// Evaluator is the move-based deployment-evaluation protocol every
// solver hot loop is written against:
//
//	cost, _ := ev.Cost(m)            // establish a base deployment
//	probe, _ := ev.CostDelta(moves)  // price base+moves without committing
//	ev.Commit()                      // ... accept the probed deployment,
//	ev.Revert()                      // ... or restore the base
//
// Cost fully (re)evaluates an arbitrary deployment and makes it the
// committed base. CostDelta prices the committed base with moves applied
// and leaves the evaluator in a pending state that must be resolved by
// exactly one Commit or Revert before the next probe. Implementations
// must price identically to a fresh CostEvaluator.MinCost on the
// materialised vector (the differential and fuzz suites pin this).
//
// IncrementalEvaluator is the production implementation (local
// shortest-path repair per probe); NewReferenceEvaluator wraps the
// stateless CostEvaluator in the same protocol as a correctness oracle.
// Implementations are not safe for concurrent use; parallel solvers hold
// one per worker.
type Evaluator interface {
	Cost(m []int) (float64, error)
	CostDelta(moves []Move) (float64, error)
	Commit() error
	Revert() error
}

// BoundedProber is an optional Evaluator capability: CostDelta with a
// caller-supplied cost limit. A pruned=true return guarantees the
// probe's exact cost would have been >= limit and leaves the evaluator
// idle on its committed state (no Commit/Revert is due); pruned=false
// behaves exactly like CostDelta, including the pending-probe state.
// Implementations may price exactly and never prune — the capability
// licenses the early exit, it does not require it. Branch-and-bound
// passes its incumbent-derived prune threshold here so doomed probes
// stop settling as soon as a partial lower bound crosses it.
type BoundedProber interface {
	CostDeltaBounded(moves []Move, limit float64) (cost float64, pruned bool, err error)
}

// ProbeCache is an optional Evaluator capability for solvers that
// re-scan a fixed candidate set between commits (IDB rounds,
// local-search sweeps): each candidate's pending probe can be
// snapshotted under a stable slot id, re-priced bit-exactly while no
// committed move touched anything it read, and promoted straight to
// the committed state when it wins a round. Slots invalidate
// automatically on intersecting Commits and on every full Cost; a
// CachedCost/CommitCached miss (ok=false) means the candidate must be
// re-probed through the ordinary protocol. Implementations may decline
// to cache (every lookup misses) — the capability licenses reuse, it
// never changes results: cached answers are bit-identical to
// re-probing, which the differential suites pin.
type ProbeCache interface {
	EnableProbeCache(slots int)
	CacheProbe(id int)
	CachedCost(id int) (cost float64, ok bool)
	CommitCached(id int) (cost float64, ok bool)
}

// EvaluatorFeatures names the evaluator-level optimisations this build
// enables, keyed for perf artifacts (BENCH_*.json) so benchmark records
// are self-describing: a future change that flips one of these shows up
// in the artifact, not just in the git history next to it.
func EvaluatorFeatures() map[string]bool {
	return map[string]bool{
		// Dirty-candidate pruning + probe-promoting Commit (ProbeCache).
		"probe_cache":     true,
		"probe_promotion": true,
		// Limit-aware probes for branch-and-bound (BoundedProber).
		"bounded_probes": true,
		// Memo defaults: the private memo stays anneal-only and the
		// shared memo stays opt-in (-memo-entries). Re-measured after the
		// probe cache landed: IDB/local-search round bases almost never
		// repeat an exact deployment, so memo lookups stay cold there
		// while costing a hash per probe.
		"private_memo_default": false,
		"shared_memo_default":  false,
	}
}

// ReferenceEvaluator adapts the stateless CostEvaluator to the Evaluator
// protocol by materialising every probe into a full vector and pricing it
// from scratch. It is the trivially correct oracle the incremental
// implementation is differentially tested against, and a drop-in
// fallback for callers that want the protocol without incremental state.
type ReferenceEvaluator struct {
	ev      *CostEvaluator
	cur     []int
	pending []int
	probed  bool
	have    bool
}

// NewReferenceEvaluator returns a protocol adapter over a fresh
// CostEvaluator for p.
func NewReferenceEvaluator(p *Problem) (*ReferenceEvaluator, error) {
	ev, err := NewCostEvaluator(p)
	if err != nil {
		return nil, err
	}
	n := p.N()
	return &ReferenceEvaluator{ev: ev, cur: make([]int, n), pending: make([]int, n)}, nil
}

// Cost fully evaluates m and makes it the committed deployment.
func (r *ReferenceEvaluator) Cost(m []int) (float64, error) {
	if r.probed {
		return 0, errPendingProbe
	}
	cost, err := r.ev.MinCost(m)
	if err != nil {
		return 0, err
	}
	copy(r.cur, m)
	r.have = true
	return cost, nil
}

// CostDelta prices the committed deployment with moves applied.
func (r *ReferenceEvaluator) CostDelta(moves []Move) (float64, error) {
	if !r.have {
		return 0, errNoBase
	}
	if r.probed {
		return 0, errPendingProbe
	}
	copy(r.pending, r.cur)
	for _, mv := range moves {
		if mv.Post < 0 || mv.Post >= len(r.pending) {
			return 0, fmt.Errorf("model: move targets post %d of %d", mv.Post, len(r.pending))
		}
		r.pending[mv.Post] += mv.Delta
	}
	cost, err := r.ev.MinCost(r.pending)
	if err != nil {
		return 0, err
	}
	r.probed = true
	return cost, nil
}

// Commit accepts the last probe as the committed deployment.
func (r *ReferenceEvaluator) Commit() error {
	if !r.probed {
		return errNoProbe
	}
	r.cur, r.pending = r.pending, r.cur
	r.probed = false
	return nil
}

// Revert discards the last probe.
func (r *ReferenceEvaluator) Revert() error {
	if !r.probed {
		return errNoProbe
	}
	r.probed = false
	return nil
}
