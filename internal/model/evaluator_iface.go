package model

import "fmt"

// Move adjusts one post's node count by Delta (which may be negative).
// A slice of Moves describes how one candidate deployment differs from
// the deployment an Evaluator currently holds — the unit of work of the
// delta-aware evaluation protocol.
type Move struct {
	Post  int
	Delta int
}

// Evaluator is the move-based deployment-evaluation protocol every
// solver hot loop is written against:
//
//	cost, _ := ev.Cost(m)            // establish a base deployment
//	probe, _ := ev.CostDelta(moves)  // price base+moves without committing
//	ev.Commit()                      // ... accept the probed deployment,
//	ev.Revert()                      // ... or restore the base
//
// Cost fully (re)evaluates an arbitrary deployment and makes it the
// committed base. CostDelta prices the committed base with moves applied
// and leaves the evaluator in a pending state that must be resolved by
// exactly one Commit or Revert before the next probe. Implementations
// must price identically to a fresh CostEvaluator.MinCost on the
// materialised vector (the differential and fuzz suites pin this).
//
// IncrementalEvaluator is the production implementation (local
// shortest-path repair per probe); NewReferenceEvaluator wraps the
// stateless CostEvaluator in the same protocol as a correctness oracle.
// Implementations are not safe for concurrent use; parallel solvers hold
// one per worker.
type Evaluator interface {
	Cost(m []int) (float64, error)
	CostDelta(moves []Move) (float64, error)
	Commit() error
	Revert() error
}

// ReferenceEvaluator adapts the stateless CostEvaluator to the Evaluator
// protocol by materialising every probe into a full vector and pricing it
// from scratch. It is the trivially correct oracle the incremental
// implementation is differentially tested against, and a drop-in
// fallback for callers that want the protocol without incremental state.
type ReferenceEvaluator struct {
	ev      *CostEvaluator
	cur     []int
	pending []int
	probed  bool
	have    bool
}

// NewReferenceEvaluator returns a protocol adapter over a fresh
// CostEvaluator for p.
func NewReferenceEvaluator(p *Problem) (*ReferenceEvaluator, error) {
	ev, err := NewCostEvaluator(p)
	if err != nil {
		return nil, err
	}
	n := p.N()
	return &ReferenceEvaluator{ev: ev, cur: make([]int, n), pending: make([]int, n)}, nil
}

// Cost fully evaluates m and makes it the committed deployment.
func (r *ReferenceEvaluator) Cost(m []int) (float64, error) {
	if r.probed {
		return 0, errPendingProbe
	}
	cost, err := r.ev.MinCost(m)
	if err != nil {
		return 0, err
	}
	copy(r.cur, m)
	r.have = true
	return cost, nil
}

// CostDelta prices the committed deployment with moves applied.
func (r *ReferenceEvaluator) CostDelta(moves []Move) (float64, error) {
	if !r.have {
		return 0, errNoBase
	}
	if r.probed {
		return 0, errPendingProbe
	}
	copy(r.pending, r.cur)
	for _, mv := range moves {
		if mv.Post < 0 || mv.Post >= len(r.pending) {
			return 0, fmt.Errorf("model: move targets post %d of %d", mv.Post, len(r.pending))
		}
		r.pending[mv.Post] += mv.Delta
	}
	cost, err := r.ev.MinCost(r.pending)
	if err != nil {
		return 0, err
	}
	r.probed = true
	return cost, nil
}

// Commit accepts the last probe as the committed deployment.
func (r *ReferenceEvaluator) Commit() error {
	if !r.probed {
		return errNoProbe
	}
	r.cur, r.pending = r.pending, r.cur
	r.probed = false
	return nil
}

// Revert discards the last probe.
func (r *ReferenceEvaluator) Revert() error {
	if !r.probed {
		return errNoProbe
	}
	r.probed = false
	return nil
}
