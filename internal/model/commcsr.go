package model

import (
	"fmt"

	"wrsn/internal/geom"
)

// commCSR is the frozen struct-of-arrays communication topology shared by
// the evaluators: the range-feasible edges u->v (u a post, v a post or
// the BS) with their per-bit transmit energies, in compressed sparse row
// form over both directions. Edge order inside each row matches the
// historical nested-slice build (in-rows ascending u, out-rows ascending
// v), which downstream tie-breaking depends on.
//
// The out direction stores no energies: outSlot maps every out slot to
// the in slot of the same edge, so per-edge state (transmit energy,
// maintained weights) lives once, indexed by in slot.
type commCSR struct {
	n  int // posts
	bs int // base-station vertex (== n)

	// In-edges of v (v in 0..n): slots inOff[v]..inOff[v+1].
	inOff  []int32
	inFrom []int32
	inTx   []float64

	// Out-edges of u (u in 0..n-1): slots outOff[u]..outOff[u+1].
	outOff  []int32
	outTo   []int32
	outSlot []int32   // out slot -> in slot of the same edge
	outTx   []float64 // same energies as inTx, indexed by out slot

	// Bounds over the transmit energies, for the bucket-queue
	// applicability rule.
	minTx float64
	maxTx float64
}

// buildCommCSR precomputes the communication topology of p. Edge
// enumeration order is identical to the historical buildInEdges (u
// ascending, v ascending per u), and the stable counting sorts preserve
// it per row.
func buildCommCSR(p *Problem) (*commCSR, error) {
	n := p.N()
	c := &commCSR{
		n:     n,
		bs:    n,
		inOff: make([]int32, n+2),
	}
	dmax := p.Energy.MaxRange()

	type rawEdge struct {
		u, v int32
		tx   float64
	}
	var edges []rawEdge
	for u := 0; u < n; u++ {
		pu := p.Posts[u]
		for v := 0; v <= n; v++ {
			if v == u {
				continue
			}
			d := geom.Dist(pu, p.Point(v))
			if d > dmax {
				continue
			}
			tx, err := p.Energy.TxEnergy(d)
			if err != nil {
				return nil, fmt.Errorf("model: evaluator edge (%d,%d): %w", u, v, err)
			}
			edges = append(edges, rawEdge{u: int32(u), v: int32(v), tx: tx})
		}
	}
	m := len(edges)
	c.inFrom = make([]int32, m)
	c.inTx = make([]float64, m)
	c.outOff = make([]int32, n+1)
	c.outTo = make([]int32, m)
	c.outSlot = make([]int32, m)
	c.outTx = make([]float64, m)
	c.minTx = inf
	c.maxTx = 0

	// In-rows: stable counting sort by head v. The edge list is ordered
	// by (u, v); within one v the u values therefore appear ascending,
	// matching the old in[v] append order.
	for i := range edges {
		c.inOff[edges[i].v+1]++
	}
	for v := 0; v <= n; v++ {
		c.inOff[v+1] += c.inOff[v]
	}
	cur := make([]int32, n+1)
	for v := 0; v <= n; v++ {
		cur[v] = c.inOff[v]
	}
	inSlotOf := make([]int32, m) // original edge index -> in slot
	for i := range edges {
		e := &edges[i]
		s := cur[e.v]
		cur[e.v] = s + 1
		c.inFrom[s] = e.u
		c.inTx[s] = e.tx
		inSlotOf[i] = s
		if e.tx < c.minTx {
			c.minTx = e.tx
		}
		if e.tx > c.maxTx {
			c.maxTx = e.tx
		}
	}

	// Out-rows: the old build iterated v ascending and appended to
	// out[u], so out rows are ordered by v; the original edge list is
	// ordered by (u, v), which gives exactly that per-u order.
	for i := range edges {
		c.outOff[edges[i].u+1]++
	}
	for u := 0; u < n; u++ {
		c.outOff[u+1] += c.outOff[u]
	}
	ocur := make([]int32, n)
	for u := 0; u < n; u++ {
		ocur[u] = c.outOff[u]
	}
	for i := range edges {
		e := &edges[i]
		s := ocur[e.u]
		ocur[e.u] = s + 1
		c.outTo[s] = e.v
		c.outSlot[s] = inSlotOf[i]
		c.outTx[s] = e.tx
	}
	return c, nil
}

// numEdges returns the number of directed communication edges.
func (c *commCSR) numEdges() int { return len(c.inFrom) }
