package model

import (
	"fmt"
)

// Solution bundles a deployment and routing tree with their evaluated
// total recharging cost (nJ of charger energy per one-bit-per-post
// reporting round).
type Solution struct {
	Deploy Deployment `json:"deploy"`
	Tree   Tree       `json:"tree"`
	Cost   float64    `json:"cost_nj"`
}

// Evaluate computes the paper's objective: the total energy the charger
// must disseminate to compensate every post's consumption for one bit
// reported by each post to the base station,
//
//	C = sum_i E_i / (eta * k(m_i)).
//
// It validates both the deployment and the tree against p.
func Evaluate(p *Problem, deploy Deployment, tree Tree) (float64, error) {
	if err := deploy.Validate(p); err != nil {
		return 0, err
	}
	if err := tree.Validate(p); err != nil {
		return 0, err
	}
	return evaluateUnchecked(p, deploy, tree)
}

// evaluateUnchecked is Evaluate without input validation, for solver hot
// paths that construct deployments and trees known to be valid.
func evaluateUnchecked(p *Problem, deploy Deployment, tree Tree) (float64, error) {
	energies := tree.PostEnergies(p)
	var total float64
	for i, e := range energies {
		cost, err := p.Charging.RechargeCost(e, deploy[i])
		if err != nil {
			return 0, fmt.Errorf("model: post %d: %w", i, err)
		}
		total += cost
	}
	return total, nil
}

// EvaluateSolution evaluates and stamps sol.Cost in place.
func EvaluateSolution(p *Problem, sol *Solution) error {
	cost, err := Evaluate(p, sol.Deploy, sol.Tree)
	if err != nil {
		return err
	}
	sol.Cost = cost
	return nil
}

// BestTreeFor computes, for a fixed deployment, the minimum total
// recharging cost over all routing trees, together with a tree achieving
// it. Because per-bit recharging cost is additive along a path under
// RechargeCostWeights, the optimum is a shortest-path tree: one Dijkstra
// run. This one-shot form suits single queries; search loops use the
// Evaluator protocol instead (the solvers probe candidates as CostDelta
// moves against an IncrementalEvaluator's committed deployment).
func BestTreeFor(p *Problem, deploy Deployment) (Tree, float64, error) {
	ev, err := NewCostEvaluator(p)
	if err != nil {
		return Tree{}, 0, err
	}
	parents, total, err := ev.BestParents(deploy)
	if err != nil {
		return Tree{}, 0, err
	}
	tree, err := NewTreeFromParents(p, parents)
	if err != nil {
		return Tree{}, 0, err
	}
	return tree, total, nil
}

// MinCostFor returns only the cost part of BestTreeFor, skipping tree
// materialisation: the sum over posts of their shortest-path recharging
// cost to the BS. Callers evaluating many deployments should hold an
// Evaluator instead — an IncrementalEvaluator when successive queries
// are small perturbations of each other (CostDelta repairs the standing
// solution), or a CostEvaluator for unrelated whole-vector queries.
func MinCostFor(p *Problem, deploy Deployment) (float64, error) {
	ev, err := NewCostEvaluator(p)
	if err != nil {
		return 0, err
	}
	return ev.MinCost(deploy)
}
