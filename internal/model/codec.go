package model

import (
	"encoding/json"
	"fmt"
	"io"

	"wrsn/internal/charging"
	"wrsn/internal/energy"
	"wrsn/internal/geom"
)

// problemJSON is the on-disk representation of a Problem. All sub-models
// are plain data, so the mapping is direct; it exists as a named type so
// the wire format is explicit and stable.
type problemJSON struct {
	Posts         []geom.Point   `json:"posts"`
	BS            geom.Point     `json:"base_station"`
	Nodes         int            `json:"nodes"`
	Energy        energy.Model   `json:"energy"`
	Charging      charging.Model `json:"charging"`
	RoundOverhead float64        `json:"round_overhead,omitempty"`
	ReportRates   []float64      `json:"report_rates,omitempty"`
	PostOverheads []float64      `json:"post_overheads,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p *Problem) MarshalJSON() ([]byte, error) {
	return json.Marshal(problemJSON{
		Posts:         p.Posts,
		BS:            p.BS,
		Nodes:         p.Nodes,
		Energy:        p.Energy,
		Charging:      p.Charging,
		RoundOverhead: p.RoundOverhead,
		ReportRates:   p.ReportRates,
		PostOverheads: p.PostOverheads,
	})
}

// UnmarshalJSON implements json.Unmarshaler. The decoded problem is
// validated structurally (sub-model parameters) but not for connectivity;
// call Validate before solving.
func (p *Problem) UnmarshalJSON(data []byte) error {
	var pj problemJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return fmt.Errorf("model: decoding problem: %w", err)
	}
	if err := pj.Energy.Validate(); err != nil {
		return fmt.Errorf("model: decoding problem: %w", err)
	}
	if err := pj.Charging.Validate(); err != nil {
		return fmt.Errorf("model: decoding problem: %w", err)
	}
	p.Posts = pj.Posts
	p.BS = pj.BS
	p.Nodes = pj.Nodes
	p.Energy = pj.Energy
	p.Charging = pj.Charging
	p.RoundOverhead = pj.RoundOverhead
	p.ReportRates = pj.ReportRates
	p.PostOverheads = pj.PostOverheads
	return nil
}

// WriteProblem encodes p as indented JSON to w.
func WriteProblem(w io.Writer, p *Problem) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadProblem decodes a Problem from r and validates it fully (including
// connectivity at maximum transmission range).
func ReadProblem(r io.Reader) (*Problem, error) {
	var p Problem
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("model: reading problem: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// WriteSolution encodes sol as indented JSON to w.
func WriteSolution(w io.Writer, sol *Solution) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sol)
}

// ReadSolution decodes a Solution from r. Validate it against its problem
// with Evaluate before trusting it.
func ReadSolution(r io.Reader) (*Solution, error) {
	var sol Solution
	if err := json.NewDecoder(r).Decode(&sol); err != nil {
		return nil, fmt.Errorf("model: reading solution: %w", err)
	}
	return &sol, nil
}
