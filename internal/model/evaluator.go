package model

import (
	"fmt"
	"math"

	"wrsn/internal/graph"
)

var inf = math.Inf(1)

// CostEvaluator answers "what is the minimum total recharging cost of this
// problem under deployment m?" repeatedly and fast. It precomputes the
// communication edges (a frozen CSR over endpoints and per-bit transmit
// energies) once and then runs a deployment-parameterised Dijkstra per
// query without rebuilding any adjacency structure or allocating (the
// indexed heap is reused across queries). IDB evaluates
// ~C(N+delta-1, N-1) deployments per round and the exact solver evaluates
// up to millions, so this is the performance-critical path of the whole
// library.
//
// CostEvaluator is stateless between queries: every MinCost call prices
// the full deployment from scratch, dividing out each edge weight in the
// relax loop. That keeps it arithmetically independent of the
// IncrementalEvaluator's maintained weight arrays — the differential
// suites use it as the oracle the incremental path must match
// bit-for-bit.
//
// Solvers that probe small perturbations of one deployment should use
// IncrementalEvaluator (the Evaluator interface's delta-aware
// implementation), which repairs the previous shortest-path solution
// instead of recomputing it.
type CostEvaluator struct {
	p  *Problem
	n  int // posts
	bs int // base-station vertex index (== n)

	c  *commCSR
	rx float64

	// scratch buffers reused across queries
	eff   []float64
	dist  []float64
	rates []float64
	h     *graph.IndexedMinHeap
}

// NewCostEvaluator precomputes the communication topology of p.
func NewCostEvaluator(p *Problem) (*CostEvaluator, error) {
	n := p.N()
	c, err := buildCommCSR(p)
	if err != nil {
		return nil, err
	}
	return &CostEvaluator{
		p:     p,
		n:     n,
		bs:    n,
		c:     c,
		rx:    p.Energy.RxEnergy(),
		eff:   make([]float64, n),
		dist:  make([]float64, n+1),
		rates: buildRates(p, n),
		h:     graph.NewIndexedMinHeap(n + 1),
	}, nil
}

// buildRates materialises the per-post report rates once so the cost
// summation indexes a flat slice instead of calling p.Rate per term.
func buildRates(p *Problem, n int) []float64 {
	rates := make([]float64, n)
	for i := 0; i < n; i++ {
		rates[i] = p.Rate(i)
	}
	return rates
}

// MinCost returns the minimum total recharging cost achievable for
// deployment m (one count per post, each >= 1). Unlike Evaluate it does
// not require sum(m) == p.Nodes: the exact solver probes optimistic
// over-allocations as admissible bounds.
func (ev *CostEvaluator) MinCost(m []int) (float64, error) {
	if err := ev.prepare(m); err != nil {
		return 0, err
	}
	ev.dijkstra()
	return totalCost(ev.p, ev.n, ev.dist, ev.eff, ev.rates)
}

// totalCost sums the paper's objective from per-post shortest recharging
// distances plus the routing-independent overhead, in a fixed summation
// order shared by the stateless and incremental evaluators (so both
// produce bit-identical costs from identical distances).
func totalCost(p *Problem, n int, dist, eff, rates []float64) (float64, error) {
	var total float64
	for u := 0; u < n; u++ {
		if dist[u] == inf {
			return 0, fmt.Errorf("%w: post %d", ErrDisconnected, u)
		}
		total += rates[u] * dist[u]
	}
	return total + overheadCost(p, n, eff), nil
}

// overheadCost prices the routing-independent per-round overhead at every
// post under the given efficiencies.
func overheadCost(p *Problem, n int, eff []float64) float64 {
	if !p.HasOverhead() {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		total += p.Overhead(i) / eff[i]
	}
	return total
}

// BestParents returns a parent vector realising MinCost(m) along with the
// cost, materialising one shortest-path tree: each post's parent is the
// tight neighbour discovered by Dijkstra (lowest vertex index on ties).
func (ev *CostEvaluator) BestParents(m []int) ([]int, float64, error) {
	parents := make([]int, ev.n)
	total, err := ev.BestParentsInto(parents, m)
	if err != nil {
		return nil, 0, err
	}
	return parents, total, nil
}

// BestParentsInto is BestParents writing into a caller-provided scratch
// buffer (len == N), for hot paths that materialise trees repeatedly.
func (ev *CostEvaluator) BestParentsInto(parents []int, m []int) (float64, error) {
	if err := ev.prepare(m); err != nil {
		return 0, err
	}
	ev.dijkstra()
	total, err := totalCost(ev.p, ev.n, ev.dist, ev.eff, ev.rates)
	if err != nil {
		return 0, err
	}
	if err := recoverParents(ev.c, ev.eff, ev.rx, ev.dist, parents); err != nil {
		return 0, err
	}
	return total, nil
}

// recoverParents fills parents with a tight-parent vector for the given
// shortest distances: u's parent is any v with dist[u] = w(u,v) + dist[v]
// (lowest vertex index on ties, by scan order). Shared by the stateless
// and incremental evaluators so both materialise identical trees.
func recoverParents(c *commCSR, eff []float64, rx float64, dist []float64, parents []int) error {
	n, bs := c.n, c.bs
	if len(parents) != n {
		return fmt.Errorf("model: parent buffer covers %d posts, want %d", len(parents), n)
	}
	for u := 0; u < n; u++ {
		parents[u] = -1
	}
	const tol = DAGTolerance
	for v := 0; v <= n; v++ {
		dv := dist[v]
		if dv == inf {
			continue
		}
		for s := c.inOff[v]; s < c.inOff[v+1]; s++ {
			u := int(c.inFrom[s])
			if parents[u] >= 0 {
				continue
			}
			if math.Abs(dist[u]-(edgeWeight(c.inTx[s], u, v, bs, eff, rx)+dv)) <= tol {
				parents[u] = v
			}
		}
	}
	for u := 0; u < n; u++ {
		if parents[u] < 0 {
			return fmt.Errorf("model: no tight parent recovered for post %d", u)
		}
	}
	return nil
}

// prepare validates m and fills the per-post efficiency scratch buffer.
func (ev *CostEvaluator) prepare(m []int) error {
	if len(m) != ev.n {
		return fmt.Errorf("model: deployment covers %d posts, want %d", len(m), ev.n)
	}
	for i, mi := range m {
		e, err := ev.p.Charging.NetworkEfficiency(mi)
		if err != nil {
			return fmt.Errorf("model: post %d: %w", i, err)
		}
		ev.eff[i] = e
	}
	return nil
}

// edgeWeight prices the communication edge from->to under the given
// efficiencies: the charger pays tx/eff[from] per bit, plus rx/eff[to]
// when the receiver is a post. The single shared pricing function keeps
// every evaluator bit-identical.
func edgeWeight(tx float64, from, to, bs int, eff []float64, rx float64) float64 {
	w := tx / eff[from]
	if to != bs {
		w += rx / eff[to]
	}
	return w
}

// dijkstra fills ev.dist with shortest recharging-cost distances to the BS.
func (ev *CostEvaluator) dijkstra() {
	c := ev.c
	for i := range ev.dist {
		ev.dist[i] = inf
	}
	ev.dist[ev.bs] = 0
	h := ev.h
	h.Reset()
	h.Push(ev.bs, 0)
	for h.Len() > 0 {
		v, dv := h.Pop()
		if dv > ev.dist[v] {
			continue
		}
		for s := c.inOff[v]; s < c.inOff[v+1]; s++ {
			u := int(c.inFrom[s])
			if nd := dv + edgeWeight(c.inTx[s], u, v, ev.bs, ev.eff, ev.rx); nd < ev.dist[u] {
				ev.dist[u] = nd
				h.Push(u, nd)
			}
		}
	}
}
