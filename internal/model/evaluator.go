package model

import (
	"fmt"
	"math"

	"wrsn/internal/geom"
	"wrsn/internal/graph"
)

// CostEvaluator answers "what is the minimum total recharging cost of this
// problem under deployment m?" repeatedly and fast. It precomputes the
// communication edges (endpoints and per-bit transmit energies) once and
// then runs a deployment-parameterised Dijkstra per query without
// rebuilding any adjacency structure. IDB evaluates ~C(N+delta-1, N-1)
// deployments per round and the exact solver evaluates up to millions, so
// this is the performance-critical path of the whole library.
type CostEvaluator struct {
	p  *Problem
	n  int // posts
	bs int // base-station vertex index (== n)

	// in[v] lists the communication edges u->v (v may be the BS);
	// weights under deployment m are tx/eff[u] (+ rx/eff[v] for v != bs).
	in [][]evalEdge
	rx float64

	// scratch buffers reused across queries
	eff  []float64
	dist []float64
}

type evalEdge struct {
	from int
	tx   float64
}

// NewCostEvaluator precomputes the communication topology of p.
func NewCostEvaluator(p *Problem) (*CostEvaluator, error) {
	n := p.N()
	ev := &CostEvaluator{
		p:    p,
		n:    n,
		bs:   n,
		in:   make([][]evalEdge, n+1),
		rx:   p.Energy.RxEnergy(),
		eff:  make([]float64, n),
		dist: make([]float64, n+1),
	}
	dmax := p.Energy.MaxRange()
	for u := 0; u < n; u++ {
		pu := p.Posts[u]
		for v := 0; v <= n; v++ {
			if v == u {
				continue
			}
			d := geom.Dist(pu, p.Point(v))
			if d > dmax {
				continue
			}
			tx, err := p.Energy.TxEnergy(d)
			if err != nil {
				return nil, fmt.Errorf("model: evaluator edge (%d,%d): %w", u, v, err)
			}
			ev.in[v] = append(ev.in[v], evalEdge{from: u, tx: tx})
		}
	}
	return ev, nil
}

// MinCost returns the minimum total recharging cost achievable for
// deployment m (one count per post, each >= 1). Unlike Evaluate it does
// not require sum(m) == p.Nodes: the exact solver probes optimistic
// over-allocations as admissible bounds.
func (ev *CostEvaluator) MinCost(m []int) (float64, error) {
	if err := ev.prepare(m); err != nil {
		return 0, err
	}
	ev.dijkstra()
	var total float64
	for u := 0; u < ev.n; u++ {
		if math.IsInf(ev.dist[u], 1) {
			return 0, fmt.Errorf("%w: post %d", ErrDisconnected, u)
		}
		total += ev.p.Rate(u) * ev.dist[u]
	}
	return total + ev.overheadCost(), nil
}

// overheadCost prices the routing-independent per-round overhead at every
// post under the prepared efficiencies.
func (ev *CostEvaluator) overheadCost() float64 {
	if !ev.p.HasOverhead() {
		return 0
	}
	var total float64
	for i := 0; i < ev.n; i++ {
		total += ev.p.Overhead(i) / ev.eff[i]
	}
	return total
}

// BestParents returns a parent vector realising MinCost(m) along with the
// cost, materialising one shortest-path tree: each post's parent is the
// tight neighbour discovered by Dijkstra (lowest vertex index on ties).
func (ev *CostEvaluator) BestParents(m []int) ([]int, float64, error) {
	if err := ev.prepare(m); err != nil {
		return nil, 0, err
	}
	ev.dijkstra()
	parents := make([]int, ev.n)
	var total float64
	const tol = DAGTolerance
	for u := 0; u < ev.n; u++ {
		if math.IsInf(ev.dist[u], 1) {
			return nil, 0, fmt.Errorf("%w: post %d", ErrDisconnected, u)
		}
		total += ev.p.Rate(u) * ev.dist[u]
		parents[u] = -1
	}
	// Recover parents: u's parent is any v with dist[u] = w(u,v) + dist[v].
	for v := 0; v <= ev.n; v++ {
		dv := ev.dist[v]
		if math.IsInf(dv, 1) {
			continue
		}
		for _, e := range ev.in[v] {
			u := e.from
			if parents[u] >= 0 {
				continue
			}
			if math.Abs(ev.dist[u]-(ev.weight(e, v)+dv)) <= tol {
				parents[u] = v
			}
		}
	}
	for u, par := range parents {
		if par < 0 {
			return nil, 0, fmt.Errorf("model: no tight parent recovered for post %d", u)
		}
	}
	return parents, total + ev.overheadCost(), nil
}

// prepare validates m and fills the per-post efficiency scratch buffer.
func (ev *CostEvaluator) prepare(m []int) error {
	if len(m) != ev.n {
		return fmt.Errorf("model: deployment covers %d posts, want %d", len(m), ev.n)
	}
	for i, mi := range m {
		e, err := ev.p.Charging.NetworkEfficiency(mi)
		if err != nil {
			return fmt.Errorf("model: post %d: %w", i, err)
		}
		ev.eff[i] = e
	}
	return nil
}

// weight prices the edge e.from -> v under the prepared efficiencies.
func (ev *CostEvaluator) weight(e evalEdge, v int) float64 {
	w := e.tx / ev.eff[e.from]
	if v != ev.bs {
		w += ev.rx / ev.eff[v]
	}
	return w
}

// dijkstra fills ev.dist with shortest recharging-cost distances to the BS.
func (ev *CostEvaluator) dijkstra() {
	for i := range ev.dist {
		ev.dist[i] = math.Inf(1)
	}
	ev.dist[ev.bs] = 0
	h := graph.NewIndexedMinHeap(ev.n + 1)
	h.Push(ev.bs, 0)
	for h.Len() > 0 {
		v, dv := h.Pop()
		if dv > ev.dist[v] {
			continue
		}
		for _, e := range ev.in[v] {
			if nd := dv + ev.weight(e, v); nd < ev.dist[e.from] {
				ev.dist[e.from] = nd
				h.Push(e.from, nd)
			}
		}
	}
}
