package model

import (
	"errors"
	"fmt"

	"wrsn/internal/geom"
)

// Tree is a routing arborescence over the posts, directed toward the base
// station: Parent[i] is the graph vertex (another post, or the BS index N)
// post i transmits to, and Level[i] is the 0-based power level it uses.
type Tree struct {
	// Parent[i] is the next hop of post i: a post index in [0,N) or the
	// BS index N.
	Parent []int `json:"parent"`
	// Level[i] is the 0-based transmission power level post i uses to
	// reach Parent[i]. Builders always choose the smallest level whose
	// range covers the hop distance.
	Level []int `json:"level"`
}

// NewTreeFromParents builds a Tree from a parent vector, assigning every
// post the smallest power level that covers its hop, and validates the
// result against p.
func NewTreeFromParents(p *Problem, parents []int) (Tree, error) {
	n := p.N()
	if len(parents) != n {
		return Tree{}, fmt.Errorf("model: parent vector covers %d posts, want %d", len(parents), n)
	}
	t := Tree{Parent: append([]int(nil), parents...), Level: make([]int, n)}
	for i, par := range parents {
		if par < 0 || par > n {
			return Tree{}, fmt.Errorf("model: post %d has invalid parent %d", i, par)
		}
		if par == i {
			return Tree{}, fmt.Errorf("model: post %d is its own parent", i)
		}
		lvl, err := p.Energy.LevelFor(geom.Dist(p.Posts[i], p.Point(par)))
		if err != nil {
			return Tree{}, fmt.Errorf("model: post %d cannot reach parent %d: %w", i, par, err)
		}
		t.Level[i] = lvl
	}
	if err := t.Validate(p); err != nil {
		return Tree{}, err
	}
	return t, nil
}

// ErrCycle is returned when a parent vector contains a routing loop.
var ErrCycle = errors.New("model: routing tree contains a cycle")

// Validate checks that t is a valid routing tree for p: every post has a
// parent whose hop its level range covers, and following parents from any
// post reaches the base station without revisiting a post.
func (t Tree) Validate(p *Problem) error {
	n := p.N()
	if len(t.Parent) != n || len(t.Level) != n {
		return fmt.Errorf("model: tree sized for %d/%d posts, want %d", len(t.Parent), len(t.Level), n)
	}
	bs := p.BSIndex()
	for i := 0; i < n; i++ {
		par := t.Parent[i]
		if par < 0 || par > n || par == i {
			return fmt.Errorf("model: post %d has invalid parent %d", i, par)
		}
		lvl := t.Level[i]
		if lvl < 0 || lvl >= p.Energy.Levels() {
			return fmt.Errorf("model: post %d uses invalid power level %d", i, lvl)
		}
		d := geom.Dist(p.Posts[i], p.Point(par))
		if d > p.Energy.Range(lvl) {
			return fmt.Errorf("model: post %d at level %d (range %.1fm) cannot cover %.2fm hop to %d",
				i, lvl, p.Energy.Range(lvl), d, par)
		}
	}
	// Cycle check: follow parents; each chain must hit the BS in <= n hops.
	state := make([]int8, n) // 0 unvisited, 1 on current chain, 2 done
	for i := 0; i < n; i++ {
		v := i
		var chain []int
		for v != bs {
			switch state[v] {
			case 1:
				return fmt.Errorf("%w: detected at post %d", ErrCycle, v)
			case 2:
				v = bs // rest of chain already proven acyclic
				continue
			}
			state[v] = 1
			chain = append(chain, v)
			v = t.Parent[v]
		}
		for _, u := range chain {
			state[u] = 2
		}
	}
	return nil
}

// SubtreeSizes returns w_i for every post: the number of posts in the
// subtree rooted at i, including i itself. Each round post i transmits
// w_i bits and receives w_i - 1 bits. The tree must be valid for p.
func (t Tree) SubtreeSizes(p *Problem) []int {
	n := p.N()
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	// Process posts in topological order (leaves first) by counting
	// children, then peeling.
	childCount := make([]int, n)
	for i := 0; i < n; i++ {
		if par := t.Parent[i]; par < n {
			childCount[par]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if childCount[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if par := t.Parent[v]; par < n {
			w[par] += w[v]
			childCount[par]--
			if childCount[par] == 0 {
				queue = append(queue, par)
			}
		}
	}
	return w
}

// SubtreeLoads returns the traffic load of every post: the sum of report
// rates over its subtree (== SubtreeSizes when rates are uniform). Post i
// transmits SubtreeLoads[i] bits per round and receives
// SubtreeLoads[i] - Rate(i) bits.
func (t Tree) SubtreeLoads(p *Problem) []float64 {
	n := p.N()
	loads := make([]float64, n)
	for i := 0; i < n; i++ {
		loads[i] = p.Rate(i)
	}
	childCount := make([]int, n)
	for i := 0; i < n; i++ {
		if par := t.Parent[i]; par < n {
			childCount[par]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if childCount[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if par := t.Parent[v]; par < n {
			loads[par] += loads[v]
			childCount[par]--
			if childCount[par] == 0 {
				queue = append(queue, par)
			}
		}
	}
	return loads
}

// PostEnergies returns E_i for every post: the energy (nJ) post i's
// deployment consumes per reporting round, i.e. its subtree load in
// transmissions at its level plus the forwarded load in receptions, plus
// the problem's per-round sensing/computation overhead.
func (t Tree) PostEnergies(p *Problem) []float64 {
	loads := t.SubtreeLoads(p)
	rx := p.Energy.RxEnergy()
	es := make([]float64, len(loads))
	for i, li := range loads {
		tx := p.Energy.TxEnergyAtLevel(t.Level[i])
		es[i] = li*tx + (li-p.Rate(i))*rx + p.Overhead(i)
	}
	return es
}

// Children returns, for every post, the posts that route through it
// directly. Index p.N() holds the BS's direct children.
func (t Tree) Children(p *Problem) [][]int {
	n := p.N()
	ch := make([][]int, n+1)
	for i := 0; i < n; i++ {
		ch[t.Parent[i]] = append(ch[t.Parent[i]], i)
	}
	return ch
}

// Depth returns each post's hop count to the base station.
func (t Tree) Depth(p *Problem) []int {
	n := p.N()
	bs := p.BSIndex()
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	var walk func(v int) int
	walk = func(v int) int {
		if v == bs {
			return 0
		}
		if depth[v] >= 0 {
			return depth[v]
		}
		depth[v] = walk(t.Parent[v]) + 1
		return depth[v]
	}
	for i := 0; i < n; i++ {
		walk(i)
	}
	return depth
}

// Clone returns a deep copy of t.
func (t Tree) Clone() Tree {
	return Tree{
		Parent: append([]int(nil), t.Parent...),
		Level:  append([]int(nil), t.Level...),
	}
}
