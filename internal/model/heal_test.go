package model

import (
	"math"
	"testing"
)

// chainTree builds the chain i -> i-1 -> ... -> 0 -> BS over a line
// problem.
func chainTree(t *testing.T, p *Problem) Tree {
	t.Helper()
	parents := make([]int, p.N())
	for i := range parents {
		parents[i] = i - 1
	}
	parents[0] = p.BSIndex()
	tree, err := NewTreeFromParents(p, parents)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestEvaluateDegradedFullStrengthEqualsEvaluate(t *testing.T) {
	p := lineProblem(t, 4, 12)
	tree := chainTree(t, p)
	deploy := Deployment{3, 3, 3, 3}
	want, err := Evaluate(p, deploy, tree)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateDegraded(p, []int(deploy), tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("EvaluateDegraded at full strength = %g, Evaluate = %g", got, want)
	}
}

func TestEvaluateDegradedDropsDeadTraffic(t *testing.T) {
	p := lineProblem(t, 4, 12)
	tree := chainTree(t, p)
	// Kill post 2: posts 2 (dead) and 3 (feeds through 2, dropped) no
	// longer load posts 0-1, so post 0 carries only itself and post 1.
	cost, err := EvaluateDegraded(p, []int{3, 3, 0, 3}, tree)
	if err != nil {
		t.Fatal(err)
	}
	full, err := EvaluateDegraded(p, []int{3, 3, 3, 3}, tree)
	if err != nil {
		t.Fatal(err)
	}
	if cost >= full {
		t.Errorf("degraded cost %g not below full-strength cost %g", cost, full)
	}
	// An all-dead network costs nothing.
	zero, err := EvaluateDegraded(p, []int{0, 0, 0, 0}, tree)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Errorf("all-dead cost = %g, want 0", zero)
	}
}

func TestSurvivorsReachable(t *testing.T) {
	p := lineProblem(t, 4, 8) // posts at 30, 60, 90, 120 m; max range 80 m
	all := []bool{true, true, true, true}
	reach := p.SurvivorsReachable(all)
	for i, r := range reach {
		if !r {
			t.Errorf("post %d unreachable in the healthy network", i)
		}
	}
	// Killing posts 0 and 1 cuts the tail: posts 2 (90 m) and 3 (120 m)
	// are beyond max range of the BS.
	reach = p.SurvivorsReachable([]bool{false, false, true, true})
	want := []bool{false, false, false, false}
	for i := range want {
		if reach[i] != want[i] {
			t.Errorf("reach[%d] = %v, want %v", i, reach[i], want[i])
		}
	}
	// Killing only post 1 leaves a 60 m gap post 2 can bridge to post 0.
	reach = p.SurvivorsReachable([]bool{true, false, true, true})
	want = []bool{true, false, true, true}
	for i := range want {
		if reach[i] != want[i] {
			t.Errorf("after killing post 1: reach[%d] = %v, want %v", i, reach[i], want[i])
		}
	}
}

func TestValidateSurvivorsCatchesDeadRouting(t *testing.T) {
	p := lineProblem(t, 4, 12)
	tree := chainTree(t, p)
	alive := []bool{true, false, true, true}
	// The unpatched chain routes post 2 through dead post 1.
	if err := tree.ValidateSurvivors(p, alive); err == nil {
		t.Error("routing through a dead post accepted")
	}
	// Ignoring the dead post entirely, the healthy network passes.
	if err := tree.ValidateSurvivors(p, []bool{true, true, true, true}); err != nil {
		t.Errorf("healthy chain rejected: %v", err)
	}
	// Cycles among survivors are rejected.
	cyc := tree.Clone()
	cyc.Parent[2] = 3
	cyc.Parent[3] = 2
	if err := cyc.ValidateSurvivors(p, alive); err == nil {
		t.Error("survivor cycle accepted")
	}
}
