package model

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Report is a diagnostic digest of a solution: where the energy goes,
// how concentrated deployment and traffic are, and which posts dominate
// the recharging bill. CLIs and examples print it; tests pin its math.
type Report struct {
	Posts int     `json:"posts"`
	Nodes int     `json:"nodes"`
	Cost  float64 `json:"cost_nj"` // total recharging cost per bit-round

	// MaxDepth is the deepest post's hop count to the base station.
	MaxDepth int `json:"max_depth"`
	// MeanDepth averages hop counts over posts.
	MeanDepth float64 `json:"mean_depth"`
	// DeploymentGini measures node-concentration inequality in [0, 1):
	// 0 = perfectly uniform; the paper's designs deliberately push it up.
	DeploymentGini float64 `json:"deployment_gini"`
	// MaxNodesPerPost is the largest co-location.
	MaxNodesPerPost int `json:"max_nodes_per_post"`
	// TopCostShare is the fraction of the total recharging cost incurred
	// by the most expensive 10% of posts (rounded up).
	TopCostShare float64 `json:"top_cost_share"`
	// BottleneckPost is the single most expensive post to keep alive.
	BottleneckPost int `json:"bottleneck_post"`
	// BottleneckCost is that post's recharging cost per bit-round.
	BottleneckCost float64 `json:"bottleneck_cost_nj"`
	// LevelUsage[l] counts posts transmitting at power level l (0-based).
	LevelUsage []int `json:"level_usage"`
}

// BuildReport validates (deploy, tree) against p and computes the digest.
func BuildReport(p *Problem, deploy Deployment, tree Tree) (*Report, error) {
	cost, err := Evaluate(p, deploy, tree)
	if err != nil {
		return nil, err
	}
	n := p.N()
	r := &Report{
		Posts:      n,
		Nodes:      p.Nodes,
		Cost:       cost,
		LevelUsage: make([]int, p.Energy.Levels()),
	}

	depths := tree.Depth(p)
	var depthSum int
	for _, d := range depths {
		depthSum += d
		if d > r.MaxDepth {
			r.MaxDepth = d
		}
	}
	r.MeanDepth = float64(depthSum) / float64(n)

	r.DeploymentGini = gini(deploy)
	r.MaxNodesPerPost = deploy.Max()

	for _, lvl := range tree.Level {
		r.LevelUsage[lvl]++
	}

	// Per-post recharging costs.
	energies := tree.PostEnergies(p)
	perPost := make([]float64, n)
	for i, e := range energies {
		c, err := p.Charging.RechargeCost(e, deploy[i])
		if err != nil {
			return nil, err
		}
		perPost[i] = c
		if c > r.BottleneckCost {
			r.BottleneckCost = c
			r.BottleneckPost = i
		}
	}
	sorted := append([]float64(nil), perPost...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	top := (n + 9) / 10
	var topSum float64
	for _, c := range sorted[:top] {
		topSum += c
	}
	if cost > 0 {
		r.TopCostShare = topSum / cost
	}
	return r, nil
}

// gini computes the Gini coefficient of the node counts.
func gini(deploy Deployment) float64 {
	n := len(deploy)
	if n == 0 {
		return 0
	}
	sorted := make([]int, n)
	copy(sorted, deploy)
	sort.Ints(sorted)
	var cum, weighted float64
	for i, m := range sorted {
		cum += float64(m)
		weighted += float64(i+1) * float64(m)
	}
	if cum == 0 {
		return 0
	}
	// G = (2*sum(i*x_i))/(n*sum(x)) - (n+1)/n with 1-based ranks.
	g := 2*weighted/(float64(n)*cum) - float64(n+1)/float64(n)
	return math.Max(0, g)
}

// String renders the report as aligned key/value lines.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cost:                %.4f µJ per bit-round\n", r.Cost/1000)
	fmt.Fprintf(&sb, "posts / nodes:       %d / %d (max %d per post, Gini %.3f)\n",
		r.Posts, r.Nodes, r.MaxNodesPerPost, r.DeploymentGini)
	fmt.Fprintf(&sb, "tree depth:          max %d, mean %.2f hops\n", r.MaxDepth, r.MeanDepth)
	fmt.Fprintf(&sb, "cost concentration:  top 10%% of posts carry %.1f%% of the bill\n", r.TopCostShare*100)
	fmt.Fprintf(&sb, "bottleneck:          post %d at %.4f µJ per bit-round\n",
		r.BottleneckPost, r.BottleneckCost/1000)
	fmt.Fprintf(&sb, "power levels in use:")
	for l, c := range r.LevelUsage {
		fmt.Fprintf(&sb, " l%d×%d", l+1, c)
	}
	sb.WriteByte('\n')
	return sb.String()
}
