package model

import (
	"math"
	"strings"
	"testing"
)

func TestGini(t *testing.T) {
	cases := []struct {
		name   string
		deploy Deployment
		want   float64
	}{
		{"uniform", Deployment{2, 2, 2, 2}, 0},
		{"empty", Deployment{}, 0},
		{"single", Deployment{5}, 0},
		// All mass on one of two posts: G = (2*2*b)/(2*b) - 3/2 = 1/2.
		{"one-sided pair", Deployment{0, 10}, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := gini(tc.deploy); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("gini(%v) = %v, want %v", tc.deploy, got, tc.want)
			}
		})
	}
	// More concentration, higher Gini.
	if gini(Deployment{1, 1, 1, 9}) <= gini(Deployment{2, 2, 4, 4}) {
		t.Error("gini ordering violated")
	}
}

func TestBuildReport(t *testing.T) {
	p := lineProblem(t, 4, 10)
	tree, err := NewTreeFromParents(p, []int{4, 0, 1, 2}) // chain
	if err != nil {
		t.Fatal(err)
	}
	deploy := Deployment{4, 3, 2, 1}
	r, err := BuildReport(p, deploy, tree)
	if err != nil {
		t.Fatal(err)
	}
	if r.Posts != 4 || r.Nodes != 10 {
		t.Errorf("shape: %+v", r)
	}
	if r.MaxDepth != 4 || math.Abs(r.MeanDepth-2.5) > 1e-12 {
		t.Errorf("depths: max %d mean %v", r.MaxDepth, r.MeanDepth)
	}
	if r.MaxNodesPerPost != 4 {
		t.Errorf("max nodes = %d", r.MaxNodesPerPost)
	}
	// Chain on 30m hops: everyone transmits at level 1 (0-based 1).
	if r.LevelUsage[1] != 4 {
		t.Errorf("level usage = %v", r.LevelUsage)
	}
	// Cost must match Evaluate.
	want, err := Evaluate(p, deploy, tree)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != want {
		t.Errorf("report cost %v != Evaluate %v", r.Cost, want)
	}
	// 4 posts -> top 10% rounds up to 1 post; its share equals the
	// bottleneck's share.
	energies := tree.PostEnergies(p)
	worst := 0.0
	for i, e := range energies {
		c, err := p.Charging.RechargeCost(e, deploy[i])
		if err != nil {
			t.Fatal(err)
		}
		worst = math.Max(worst, c)
	}
	if math.Abs(r.TopCostShare-worst/want) > 1e-12 {
		t.Errorf("TopCostShare = %v, want %v", r.TopCostShare, worst/want)
	}
	if math.Abs(r.BottleneckCost-worst) > 1e-12 {
		t.Errorf("BottleneckCost = %v, want %v", r.BottleneckCost, worst)
	}

	out := r.String()
	for _, frag := range []string{"cost:", "bottleneck:", "power levels in use:", "Gini"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String() missing %q:\n%s", frag, out)
		}
	}
}

func TestBuildReportValidates(t *testing.T) {
	p := lineProblem(t, 3, 6)
	tree, err := NewTreeFromParents(p, []int{3, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildReport(p, Deployment{1, 1, 1}, tree); err == nil {
		t.Error("wrong node total accepted")
	}
}
