// Package model defines the joint deployment-and-routing problem from the
// paper (Section III/IV) and its exact cost semantics:
//
//   - A Problem: N post locations, a base station, M sensor nodes, a
//     discrete-level radio energy model, and a wireless charging model.
//   - A Deployment: how many nodes each post holds (>= 1, summing to M).
//   - A Tree: each post's parent (another post or the base station) and
//     transmission power level.
//   - Evaluate: the total recharging cost — the charger energy needed to
//     compensate every post's consumption for one bit reported by every
//     post — the objective function minimised by every solver.
//
// The model package also builds the weighted communication graphs the
// solvers run shortest paths on. Vertices 0..N-1 are posts and vertex N is
// the base station.
package model

import (
	"errors"
	"fmt"
	"math"

	"wrsn/internal/charging"
	"wrsn/internal/energy"
	"wrsn/internal/geom"
	"wrsn/internal/graph"
)

// Problem is one instance of the joint deployment-and-routing problem.
type Problem struct {
	// Posts are the N post locations. Every post must receive at least
	// one sensor node.
	Posts []geom.Point
	// BS is the base station location (the paper places it at the
	// lower-left corner of the field).
	BS geom.Point
	// Nodes is M, the total number of sensor nodes to deploy (M >= N).
	Nodes int
	// Energy is the radio energy model (levels, alpha/beta/gamma).
	Energy energy.Model
	// Charging is the wireless charging model (eta, gain k(m)).
	Charging charging.Model
	// RoundOverhead is the non-communication energy (sensing,
	// computation) each post consumes per reporting round, in nJ. The
	// paper focuses on communication energy but notes the model
	// "can be extended to other sources of energy consumption such as
	// sensing and computation" — this field is that extension. It is
	// independent of routing (a constant per post) but not of
	// deployment: posts with overhead attract extra nodes to amortise
	// it. Zero (the default) reproduces the paper exactly.
	RoundOverhead float64
	// ReportRates optionally weights each post's traffic: post i
	// originates ReportRates[i] bits per round instead of one. nil (the
	// default) reproduces the paper's uniform one-report-per-post-per-
	// round model. Rates may be zero (relay-only posts) but not
	// negative, and at least one must be positive. Extension beyond the
	// paper: heterogeneous monitoring densities.
	ReportRates []float64
	// PostOverheads optionally overrides RoundOverhead per post: post i
	// consumes PostOverheads[i] nJ of non-communication energy per
	// round. nil falls back to the scalar RoundOverhead for every post.
	PostOverheads []float64
}

// N returns the number of posts.
func (p *Problem) N() int { return len(p.Posts) }

// BSIndex returns the graph vertex index of the base station.
func (p *Problem) BSIndex() int { return len(p.Posts) }

// Point returns the location of graph vertex v (a post or the BS).
func (p *Problem) Point(v int) geom.Point {
	if v == p.BSIndex() {
		return p.BS
	}
	return p.Posts[v]
}

// ErrDisconnected is returned when some post cannot reach the base
// station even through multi-hop paths at maximum transmission range.
var ErrDisconnected = errors.New("model: network is disconnected at maximum transmission range")

// Validate checks the structural invariants of the problem: at least one
// post, M >= N, valid sub-models, and full connectivity to the base
// station at maximum range.
func (p *Problem) Validate() error {
	if len(p.Posts) == 0 {
		return errors.New("model: problem has no posts")
	}
	if p.Nodes < len(p.Posts) {
		return fmt.Errorf("model: %d nodes cannot cover %d posts (need at least one node per post)", p.Nodes, len(p.Posts))
	}
	if err := p.Energy.Validate(); err != nil {
		return fmt.Errorf("model: invalid energy model: %w", err)
	}
	if err := p.Charging.Validate(); err != nil {
		return fmt.Errorf("model: invalid charging model: %w", err)
	}
	if p.RoundOverhead < 0 || math.IsNaN(p.RoundOverhead) || math.IsInf(p.RoundOverhead, 0) {
		return fmt.Errorf("model: round overhead %g must be finite and non-negative", p.RoundOverhead)
	}
	if p.PostOverheads != nil {
		if len(p.PostOverheads) != len(p.Posts) {
			return fmt.Errorf("model: %d post overheads for %d posts", len(p.PostOverheads), len(p.Posts))
		}
		for i, oh := range p.PostOverheads {
			if oh < 0 || math.IsNaN(oh) || math.IsInf(oh, 0) {
				return fmt.Errorf("model: post %d has invalid overhead %g", i, oh)
			}
		}
	}
	if p.ReportRates != nil {
		if len(p.ReportRates) != len(p.Posts) {
			return fmt.Errorf("model: %d report rates for %d posts", len(p.ReportRates), len(p.Posts))
		}
		anyPositive := false
		for i, r := range p.ReportRates {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return fmt.Errorf("model: post %d has invalid report rate %g", i, r)
			}
			if r > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			return fmt.Errorf("model: all report rates are zero; nothing to route")
		}
	}
	reach, err := p.reachableFromBS()
	if err != nil {
		return err
	}
	for i, ok := range reach {
		if !ok {
			return fmt.Errorf("%w: post %d at %v", ErrDisconnected, i, p.Posts[i])
		}
	}
	return nil
}

// reachableFromBS runs a BFS over the maximum-range connectivity graph
// and reports which posts can reach the BS via multi-hop paths.
func (p *Problem) reachableFromBS() ([]bool, error) {
	dmax := p.Energy.MaxRange()
	if dmax <= 0 {
		return nil, errors.New("model: energy model has no positive transmission range")
	}
	n := p.N()
	seen := make([]bool, n+1)
	seen[n] = true
	queue := []int{n}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		pv := p.Point(v)
		for u := 0; u < n; u++ {
			if !seen[u] && geom.Dist(pv, p.Posts[u]) <= dmax {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return seen[:n], nil
}

// WeightFunc computes the weight of the directed communication edge
// from->to given the per-bit transmit energy of the cheapest covering
// power level. `to` may be the BS index. Returning a negative weight is a
// programming error and will surface as a graph construction failure.
type WeightFunc func(from, to int, txEnergy float64) float64

// EnergyWeights is the paper's Phase-I weight: the transmit energy alone
// (w(u,v) = alpha + beta*d_x^gamma for the smallest covering range d_x).
func (p *Problem) EnergyWeights() WeightFunc {
	return func(_, _ int, tx float64) float64 { return tx }
}

// EnergyWithRxWeights additionally charges the receiver's alpha on every
// hop that does not terminate at the base station, so path costs equal
// true network energy per bit.
func (p *Problem) EnergyWithRxWeights() WeightFunc {
	rx := p.Energy.RxEnergy()
	bs := p.BSIndex()
	return func(_, to int, tx float64) float64 {
		if to == bs {
			return tx
		}
		return tx + rx
	}
}

// RechargeCostWeights prices a hop by what the *charger* pays for it given
// the deployment m: the sender's transmit energy divided by its post's
// network charging efficiency, plus (when the receiver is a post) the
// receive energy divided by the receiver's efficiency. Path costs under
// these weights are exactly per-bit recharging costs, which is what makes
// "optimal routing for a fixed deployment" a shortest-path problem (used
// by IDB and the exact solver).
func (p *Problem) RechargeCostWeights(deploy Deployment) (WeightFunc, error) {
	n := p.N()
	if len(deploy) != n {
		return nil, fmt.Errorf("model: deployment covers %d posts, want %d", len(deploy), n)
	}
	eff := make([]float64, n)
	for i, m := range deploy {
		e, err := p.Charging.NetworkEfficiency(m)
		if err != nil {
			return nil, fmt.Errorf("model: post %d: %w", i, err)
		}
		eff[i] = e
	}
	rx := p.Energy.RxEnergy()
	bs := p.BSIndex()
	return func(from, to int, tx float64) float64 {
		w := tx / eff[from]
		if to != bs {
			w += rx / eff[to]
		}
		return w
	}, nil
}

// BuildGraph constructs the directed communication graph over the N posts
// plus the base station: an edge u->v exists when dist(u,v) <= d_max and u
// is a post (the BS never transmits), weighted by wf. Edges out of each
// vertex are added in ascending destination order, so downstream
// tie-breaking is deterministic.
func (p *Problem) BuildGraph(wf WeightFunc) (*graph.Graph, error) {
	n := p.N()
	b := graph.NewBuilder(n + 1)
	dmax := p.Energy.MaxRange()
	for u := 0; u < n; u++ {
		pu := p.Posts[u]
		for v := 0; v <= n; v++ {
			if v == u {
				continue
			}
			d := geom.Dist(pu, p.Point(v))
			if d > dmax {
				continue
			}
			tx, err := p.Energy.TxEnergy(d)
			if err != nil {
				return nil, fmt.Errorf("model: edge (%d,%d): %w", u, v, err)
			}
			if err := b.AddEdge(u, v, wf(u, v, tx)); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// DAGTolerance is the absolute tolerance used when recognising tied
// shortest paths while building fat trees. Weights range from ~0.5 nJ
// (recharge-cost weights at large m) to ~100 nJ, and genuinely distinct
// path costs differ by far more than this.
const DAGTolerance = 1e-7

// FatTree builds the all-shortest-paths DAG toward the base station under
// the given weight function (Phase I of RFH).
func (p *Problem) FatTree(wf WeightFunc) (*graph.DAG, error) {
	g, err := p.BuildGraph(wf)
	if err != nil {
		return nil, err
	}
	dag, err := g.ShortestPathDAG(p.BSIndex(), DAGTolerance)
	if err != nil {
		return nil, err
	}
	for u := 0; u < p.N(); u++ {
		if !dag.Reachable(u) {
			return nil, fmt.Errorf("%w: post %d", ErrDisconnected, u)
		}
	}
	return dag, nil
}

// Overhead returns post i's per-round non-communication energy: the
// per-post override when set, the scalar RoundOverhead otherwise.
func (p *Problem) Overhead(i int) float64 {
	if p.PostOverheads != nil {
		return p.PostOverheads[i]
	}
	return p.RoundOverhead
}

// HasOverhead reports whether any post carries non-communication energy.
func (p *Problem) HasOverhead() bool {
	if p.PostOverheads != nil {
		for _, oh := range p.PostOverheads {
			if oh > 0 {
				return true
			}
		}
		return false
	}
	return p.RoundOverhead > 0
}

// Rate returns post i's report rate (1 when ReportRates is nil).
func (p *Problem) Rate(i int) float64 {
	if p.ReportRates == nil {
		return 1
	}
	return p.ReportRates[i]
}

// TotalRate returns the sum of all report rates (N when uniform).
func (p *Problem) TotalRate() float64 {
	if p.ReportRates == nil {
		return float64(len(p.Posts))
	}
	var total float64
	for _, r := range p.ReportRates {
		total += r
	}
	return total
}

// UniformRates reports whether every post originates exactly one bit per
// round (the paper's base model).
func (p *Problem) UniformRates() bool {
	if p.ReportRates == nil {
		return true
	}
	for _, r := range p.ReportRates {
		if r != 1 {
			return false
		}
	}
	return true
}

// MinNodeSeparation returns the smallest pairwise distance between posts
// (including the BS), or +Inf for fewer than two vertices. Useful for
// diagnosing degenerate random instances.
func (p *Problem) MinNodeSeparation() float64 {
	min := math.Inf(1)
	n := p.N()
	for u := 0; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			if d := geom.Dist(p.Point(u), p.Point(v)); d < min {
				min = d
			}
		}
	}
	return min
}
