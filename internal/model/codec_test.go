package model

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"wrsn/internal/charging"
)

func TestProblemJSONRoundTrip(t *testing.T) {
	p := lineProblem(t, 3, 6)
	p.Charging = charging.Model{EtaSingle: 0.0067, Gain: charging.Sublinear(0.9)}

	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		t.Fatalf("WriteProblem: %v", err)
	}
	back, err := ReadProblem(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadProblem: %v", err)
	}
	if back.Nodes != p.Nodes || len(back.Posts) != len(p.Posts) {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	for i := range p.Posts {
		if back.Posts[i] != p.Posts[i] {
			t.Errorf("post %d = %v, want %v", i, back.Posts[i], p.Posts[i])
		}
	}
	if back.Energy.Alpha != p.Energy.Alpha || back.Energy.Levels() != p.Energy.Levels() {
		t.Errorf("energy model mangled: %+v", back.Energy)
	}
	if back.Charging.EtaSingle != 0.0067 || back.Charging.Gain.Kind != charging.GainSublinear {
		t.Errorf("charging model mangled: %+v", back.Charging)
	}
	// Costs computed from the decoded problem match the original.
	tree, err := MinEnergyTree(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := UniformDeployment(p.N(), p.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Evaluate(p, d, tree)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Evaluate(back, d, tree)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("decoded problem evaluates differently: %v vs %v", c1, c2)
	}
}

func TestReadProblemRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"syntax error", `{`},
		{"no posts", `{"posts":[],"nodes":1,"energy":{"alpha":50,"beta":1e-6,"gamma":4,"ranges":[25]},"charging":{"eta_single":1}}`},
		{"bad gamma", `{"posts":[{"x":1,"y":1}],"nodes":1,"energy":{"alpha":50,"beta":1e-6,"gamma":0,"ranges":[25]},"charging":{"eta_single":1}}`},
		{"bad eta", `{"posts":[{"x":1,"y":1}],"nodes":1,"energy":{"alpha":50,"beta":1e-6,"gamma":4,"ranges":[25]},"charging":{"eta_single":2}}`},
		{"disconnected", `{"posts":[{"x":500,"y":500}],"nodes":1,"energy":{"alpha":50,"beta":1e-6,"gamma":4,"ranges":[25]},"charging":{"eta_single":1}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadProblem(strings.NewReader(tc.json)); err == nil {
				t.Error("invalid problem JSON accepted")
			}
		})
	}
}

func TestSolutionJSONRoundTrip(t *testing.T) {
	p := lineProblem(t, 3, 6)
	tree, err := NewTreeFromParents(p, []int{3, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sol := &Solution{Deploy: Deployment{3, 2, 1}, Tree: tree}
	if err := EvaluateSolution(p, sol); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSolution(&buf, sol); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSolution(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cost != sol.Cost {
		t.Errorf("cost %v, want %v", back.Cost, sol.Cost)
	}
	reEval, err := Evaluate(p, back.Deploy, back.Tree)
	if err != nil {
		t.Fatalf("decoded solution invalid: %v", err)
	}
	if reEval != sol.Cost {
		t.Errorf("re-evaluated cost %v, want %v", reEval, sol.Cost)
	}
}

func TestProblemJSONStableFieldNames(t *testing.T) {
	// The wire format is a public contract; field renames break users.
	p := lineProblem(t, 1, 1)
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"posts"`, `"base_station"`, `"nodes"`, `"energy"`, `"charging"`, `"eta_single"`, `"ranges"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("serialised problem missing %s: %s", key, raw)
		}
	}
}
