package model

import (
	"fmt"
	"math"

	"wrsn/internal/geom"
	"wrsn/internal/graph"
)

// CommGraph is the communication graph of a Problem built once and
// reweighted in place between uses. The graph's structure (which hops are
// feasible) depends only on geometry and the energy model's maximum
// range, so iterative algorithms that re-price hops every round — RFH's
// recharging-cost refinement, heal's survivor repricing — can skip the
// O(N^2) rebuild (distance + power-level search per pair) and touch only
// edge weights.
//
// Vertices follow BuildGraph's convention: posts 0..N-1 plus the base
// station at N, edges added in ascending destination order so downstream
// tie-breaking matches BuildGraph exactly.
type CommGraph struct {
	n  int
	g  *graph.Graph
	tx []float64 // (n+1)*(n+1) row-major; per-bit tx energy of edge u->v, +Inf when infeasible
}

// NewCommGraph builds the communication graph of p with the cached
// per-hop transmit energies as initial weights (the paper's Phase-I
// EnergyWeights pricing).
func NewCommGraph(p *Problem) (*CommGraph, error) {
	n := p.N()
	c := &CommGraph{n: n, tx: make([]float64, (n+1)*(n+1))}
	for i := range c.tx {
		c.tx[i] = math.Inf(1)
	}
	b := graph.NewBuilder(n + 1)
	dmax := p.Energy.MaxRange()
	for u := 0; u < n; u++ {
		pu := p.Posts[u]
		for v := 0; v <= n; v++ {
			if v == u {
				continue
			}
			d := geom.Dist(pu, p.Point(v))
			if d > dmax {
				continue
			}
			tx, err := p.Energy.TxEnergy(d)
			if err != nil {
				return nil, fmt.Errorf("model: edge (%d,%d): %w", u, v, err)
			}
			c.tx[u*(n+1)+v] = tx
			if err := b.AddEdge(u, v, tx); err != nil {
				return nil, err
			}
		}
	}
	c.g = b.Build()
	return c, nil
}

// Graph returns the underlying graph. Callers may reweight it (via
// Reweight) but must not add or remove edges.
func (c *CommGraph) Graph() *graph.Graph { return c.g }

// TxBetween returns the cached per-bit transmit energy of the hop u->v,
// with ok=false when the hop is infeasible (out of range, self, or u is
// the base station). It is the vertex-pair form of Energy.TxEnergy,
// suitable for routing.MergeSpec.TxEnergyBetween.
func (c *CommGraph) TxBetween(u, v int) (float64, bool) {
	t := c.tx[u*(c.n+1)+v]
	if math.IsInf(t, 1) {
		return 0, false
	}
	return t, true
}

// Reweight re-prices every edge in place as wf(u, v, txEnergy(u,v)),
// leaving the graph structure untouched.
func (c *CommGraph) Reweight(wf WeightFunc) error {
	stride := c.n + 1
	tx := c.tx
	return c.g.ReweightEdges(func(u, v int) float64 {
		return wf(u, v, tx[u*stride+v])
	})
}
