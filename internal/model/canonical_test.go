package model

import (
	"math/rand"
	"strings"
	"testing"

	"wrsn/internal/geom"
)

func testProblem(t *testing.T, seed int64) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p, err := GenerateProblem(rng, GenSpec{
		Field: geom.Field{Width: 200, Height: 200},
		Posts: 6,
		Nodes: 10,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return p
}

func TestCanonicalSignatureStable(t *testing.T) {
	p := testProblem(t, 1)
	s1, err := CanonicalSignature(p)
	if err != nil {
		t.Fatalf("signature: %v", err)
	}
	s2, err := CanonicalSignature(p)
	if err != nil {
		t.Fatalf("signature: %v", err)
	}
	if s1 != s2 {
		t.Fatalf("signature not stable:\n%s\n%s", s1, s2)
	}
	if !strings.HasPrefix(s1, KindDeployment+":") {
		t.Fatalf("signature %q does not start with the instance kind", s1[:40])
	}

	// A decoded copy of the same problem — the daemon's request path —
	// must sign identically.
	q := *p
	s3, err := CanonicalSignature(&q)
	if err != nil {
		t.Fatalf("signature: %v", err)
	}
	if s3 != s1 {
		t.Fatalf("copied problem signs differently")
	}
}

func TestCanonicalSignatureDistinguishes(t *testing.T) {
	p := testProblem(t, 1)
	s1, err := CanonicalSignature(p)
	if err != nil {
		t.Fatalf("signature: %v", err)
	}

	q := *p
	q.Nodes++
	s2, err := CanonicalSignature(&q)
	if err != nil {
		t.Fatalf("signature: %v", err)
	}
	if s1 == s2 {
		t.Fatalf("different node budgets share a signature")
	}
	if CanonicalKey(s1) == CanonicalKey(s2) {
		t.Fatalf("different signatures share a key (possible but astronomically unlikely; the mixer is broken)")
	}

	r := testProblem(t, 2)
	s3, err := CanonicalSignature(r)
	if err != nil {
		t.Fatalf("signature: %v", err)
	}
	if s3 == s1 {
		t.Fatalf("different instances share a signature")
	}
}

func TestCanonicalKeyStable(t *testing.T) {
	// The key must be a pure function of the signature bytes and stay
	// pinned across releases: journaled plan caches replay across daemon
	// restarts keyed by it.
	cases := []struct {
		sig  string
		want uint64
	}{
		{"", 0x6e789e6aa1b965f4},
		{"deployment:{}", 0x0ee0286768e53e4c},
	}
	for _, c := range cases {
		if got := CanonicalKey(c.sig); got != c.want {
			t.Errorf("CanonicalKey(%q) = %#x, want %#x", c.sig, got, c.want)
		}
	}
	if CanonicalKey("a") == CanonicalKey("b") {
		t.Errorf("single-byte signatures collide")
	}
}
