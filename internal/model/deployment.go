package model

import (
	"fmt"
)

// Deployment assigns a node count to every post: Deployment[i] = m_i >= 1,
// with the counts summing to the problem's M.
type Deployment []int

// UniformDeployment returns the all-ones deployment extended with the
// remaining M-N nodes spread round-robin from post 0 — the natural
// "charging-oblivious" baseline deployment.
func UniformDeployment(n, m int) (Deployment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("model: need at least one post, got %d", n)
	}
	if m < n {
		return nil, fmt.Errorf("model: %d nodes cannot cover %d posts", m, n)
	}
	d := make(Deployment, n)
	for i := range d {
		d[i] = 1
	}
	for extra := m - n; extra > 0; extra-- {
		d[(m-n-extra)%n]++
	}
	return d, nil
}

// Ones returns the minimal deployment of one node per post.
func Ones(n int) Deployment {
	d := make(Deployment, n)
	for i := range d {
		d[i] = 1
	}
	return d
}

// Sum returns the total number of deployed nodes.
func (d Deployment) Sum() int {
	total := 0
	for _, m := range d {
		total += m
	}
	return total
}

// Validate checks that d deploys exactly p.Nodes nodes over p's posts with
// at least one node everywhere.
func (d Deployment) Validate(p *Problem) error {
	if len(d) != p.N() {
		return fmt.Errorf("model: deployment covers %d posts, want %d", len(d), p.N())
	}
	total := 0
	for i, m := range d {
		if m < 1 {
			return fmt.Errorf("model: post %d deployed with %d nodes; every post needs at least one", i, m)
		}
		total += m
	}
	if total != p.Nodes {
		return fmt.Errorf("model: deployment uses %d nodes, problem has %d", total, p.Nodes)
	}
	return nil
}

// Clone returns a copy of d.
func (d Deployment) Clone() Deployment {
	return append(Deployment(nil), d...)
}

// Max returns the largest per-post node count (0 for an empty deployment).
func (d Deployment) Max() int {
	max := 0
	for _, m := range d {
		if m > max {
			max = m
		}
	}
	return max
}
