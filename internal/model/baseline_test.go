package model

import (
	"math/rand"
	"testing"

	"wrsn/internal/charging"
	"wrsn/internal/energy"
	"wrsn/internal/geom"
)

func TestMinSpanningTreeLine(t *testing.T) {
	p := lineProblem(t, 4, 4)
	tree, err := MinSpanningTree(p)
	if err != nil {
		t.Fatal(err)
	}
	// On the 30m-spaced line the MST is exactly the hop chain: each 30m
	// link (58.1 nJ) is cheaper than any 60m skip (91.2 nJ).
	wantParents := []int{4, 0, 1, 2}
	for i, want := range wantParents {
		if tree.Parent[i] != want {
			t.Errorf("MST parent[%d] = %d, want %d", i, tree.Parent[i], want)
		}
	}
}

func TestMinSpanningTreeValidOnRandomFields(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	field := geom.Square(250)
	built := 0
	for trial := 0; trial < 30 && built < 10; trial++ {
		p := &Problem{
			Posts:    field.RandomPoints(rng, 20),
			BS:       field.Corner(),
			Nodes:    40,
			Energy:   energy.Default(),
			Charging: charging.Default(),
		}
		if p.Validate() != nil {
			continue
		}
		built++
		tree, err := MinSpanningTree(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tree.Validate(p); err != nil {
			t.Fatalf("trial %d: MST invalid: %v", trial, err)
		}
		// Total link energy of the MST never exceeds the shortest-path
		// baseline's (MSTs minimise exactly that sum).
		mstLinks := totalLinkEnergy(t, p, tree)
		spt, err := MinEnergyTree(p)
		if err != nil {
			t.Fatal(err)
		}
		if sptLinks := totalLinkEnergy(t, p, spt); mstLinks > sptLinks+1e-6 {
			t.Errorf("trial %d: MST link energy %.3f exceeds SPT's %.3f", trial, mstLinks, sptLinks)
		}
	}
	if built == 0 {
		t.Skip("no connected instances drawn")
	}
}

func totalLinkEnergy(t *testing.T, p *Problem, tree Tree) float64 {
	t.Helper()
	var total float64
	for i := range tree.Parent {
		total += p.Energy.TxEnergyAtLevel(tree.Level[i])
	}
	return total
}

func TestMinSpanningTreeDisconnected(t *testing.T) {
	p := lineProblem(t, 2, 2)
	p.Posts[1] = geom.Point{X: 500, Y: 500}
	if _, err := MinSpanningTree(p); err == nil {
		t.Error("disconnected field accepted")
	}
}
