package model

// This file holds the degraded-network primitives behind self-healing:
// survivor reachability, patched-tree validation against a death mask,
// and pricing a degraded plan. The tree rebuild itself lives in
// internal/heal (it needs internal/routing, which model cannot import).

import (
	"fmt"

	"wrsn/internal/geom"
)

// SurvivorsReachable runs a BFS from the base station over the
// maximum-range connectivity graph restricted to posts with alive[i] ==
// true, and reports which of them can still reach the BS via multi-hop
// survivor paths. Dead posts are always false.
func (p *Problem) SurvivorsReachable(alive []bool) []bool {
	n := p.N()
	dmax := p.Energy.MaxRange()
	seen := make([]bool, n+1)
	seen[n] = true
	queue := []int{n}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		pv := p.Point(v)
		for u := 0; u < n; u++ {
			if !seen[u] && alive[u] && geom.Dist(pv, p.Posts[u]) <= dmax {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return seen[:n]
}

// ValidateSurvivors checks a patched tree against a degraded network:
// every post with alive[i] == true must hold a valid, level-covered
// parent edge and a parent chain that reaches the base station through
// alive posts only, without cycles. Dead posts are ignored entirely
// (their edges are inert — they originate and forward nothing).
func (t Tree) ValidateSurvivors(p *Problem, alive []bool) error {
	n := p.N()
	if len(t.Parent) != n || len(t.Level) != n {
		return fmt.Errorf("model: tree sized for %d/%d posts, want %d", len(t.Parent), len(t.Level), n)
	}
	if len(alive) != n {
		return fmt.Errorf("model: %d alive flags for %d posts", len(alive), n)
	}
	bs := p.BSIndex()
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		par := t.Parent[i]
		if par < 0 || par > n || par == i {
			return fmt.Errorf("model: post %d has invalid parent %d", i, par)
		}
		if par != bs && !alive[par] {
			return fmt.Errorf("model: surviving post %d routes through dead post %d", i, par)
		}
		lvl := t.Level[i]
		if lvl < 0 || lvl >= p.Energy.Levels() {
			return fmt.Errorf("model: post %d uses invalid power level %d", i, lvl)
		}
		d := geom.Dist(p.Posts[i], p.Point(par))
		if d > p.Energy.Range(lvl) {
			return fmt.Errorf("model: post %d at level %d (range %.1fm) cannot cover %.2fm hop to %d",
				i, lvl, p.Energy.Range(lvl), d, par)
		}
	}
	// Cycle/reachability check over the surviving posts only.
	state := make([]int8, n) // 0 unvisited, 1 on chain, 2 done
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		v := i
		var chain []int
		for v != bs {
			switch state[v] {
			case 1:
				return fmt.Errorf("%w: detected at post %d", ErrCycle, v)
			case 2:
				v = bs
				continue
			}
			state[v] = 1
			chain = append(chain, v)
			v = t.Parent[v]
		}
		for _, u := range chain {
			state[u] = 2
		}
	}
	return nil
}

// EvaluateDegraded prices a degraded network: the charger energy per
// reporting round with only aliveCounts[i] nodes left at each post. Dead
// posts (count 0) originate nothing, forward nothing (traffic reaching
// them is dropped), and cost nothing; each surviving post's energy is
// divided by the charging efficiency of its *surviving* strength. With
// every post at planned strength this equals Evaluate.
func EvaluateDegraded(p *Problem, aliveCounts []int, tree Tree) (float64, error) {
	n := p.N()
	if len(aliveCounts) != n {
		return 0, fmt.Errorf("model: %d alive counts for %d posts", len(aliveCounts), n)
	}
	if len(tree.Parent) != n || len(tree.Level) != n {
		return 0, fmt.Errorf("model: tree sized for %d/%d posts, want %d", len(tree.Parent), len(tree.Level), n)
	}
	// Accumulate subtree loads leaves-first; dead posts drop what reaches
	// them and inject nothing.
	load := make([]float64, n)
	childCount := make([]int, n)
	for i := 0; i < n; i++ {
		if aliveCounts[i] > 0 {
			load[i] = p.Rate(i)
		}
		if par := tree.Parent[i]; par < n {
			childCount[par]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if childCount[i] == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		processed++
		if par := tree.Parent[v]; par < n {
			if aliveCounts[v] > 0 {
				load[par] += load[v]
			}
			if childCount[par]--; childCount[par] == 0 {
				queue = append(queue, par)
			}
		}
	}
	if processed != n {
		return 0, ErrCycle
	}
	rx := p.Energy.RxEnergy()
	var total float64
	for i := 0; i < n; i++ {
		if aliveCounts[i] == 0 {
			continue
		}
		tx := p.Energy.TxEnergyAtLevel(tree.Level[i])
		e := load[i]*tx + (load[i]-p.Rate(i))*rx + p.Overhead(i)
		cost, err := p.Charging.RechargeCost(e, aliveCounts[i])
		if err != nil {
			return 0, fmt.Errorf("model: post %d: %w", i, err)
		}
		total += cost
	}
	return total, nil
}
