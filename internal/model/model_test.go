package model

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"wrsn/internal/charging"
	"wrsn/internal/energy"
	"wrsn/internal/geom"
)

// lineProblem builds n posts in a straight line 30m apart from the BS at
// the origin: post i sits at ((i+1)*30, 0). Each hop needs level 2
// (range 50m); only post 0 can also reach the BS directly; post i can
// reach post i-2 at 60m with level 3.
func lineProblem(t testing.TB, n, m int) *Problem {
	t.Helper()
	posts := make([]geom.Point, n)
	for i := range posts {
		posts[i] = geom.Point{X: float64(i+1) * 30, Y: 0}
	}
	p := &Problem{
		Posts:    posts,
		BS:       geom.Point{},
		Nodes:    m,
		Energy:   energy.Default(),
		Charging: charging.Default(),
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("line problem invalid: %v", err)
	}
	return p
}

func TestProblemValidate(t *testing.T) {
	p := lineProblem(t, 3, 5)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}

	noPosts := &Problem{BS: geom.Point{}, Nodes: 1, Energy: energy.Default(), Charging: charging.Default()}
	if err := noPosts.Validate(); err == nil {
		t.Error("problem without posts accepted")
	}

	tooFewNodes := lineProblem(t, 3, 5)
	tooFewNodes.Nodes = 2
	if err := tooFewNodes.Validate(); err == nil {
		t.Error("M < N accepted")
	}

	disconnected := lineProblem(t, 3, 5)
	disconnected.Posts[2] = geom.Point{X: 1000, Y: 1000}
	if err := disconnected.Validate(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected problem error = %v, want ErrDisconnected", err)
	}

	badEnergy := lineProblem(t, 3, 5)
	badEnergy.Energy.Ranges = nil
	if err := badEnergy.Validate(); err == nil {
		t.Error("empty energy ranges accepted")
	}

	badCharging := lineProblem(t, 3, 5)
	badCharging.Charging.EtaSingle = 0
	if err := badCharging.Validate(); err == nil {
		t.Error("zero eta accepted")
	}
}

func TestNewTreeFromParentsPicksMinimalLevels(t *testing.T) {
	p := lineProblem(t, 3, 3)
	tree, err := NewTreeFromParents(p, []int{3, 0, 1}) // chain 2->1->0->BS
	if err != nil {
		t.Fatal(err)
	}
	// Every hop is 30m: level 1 (0-based index 1, range 50m).
	for i, lvl := range tree.Level {
		if lvl != 1 {
			t.Errorf("post %d level = %d, want 1 (30m hop)", i, lvl)
		}
	}
	// Post 2 direct to post 0 is 60m: level 2.
	tree2, err := NewTreeFromParents(p, []int{3, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Level[2] != 2 {
		t.Errorf("60m hop level = %d, want 2", tree2.Level[2])
	}
}

func TestTreeValidateRejects(t *testing.T) {
	p := lineProblem(t, 3, 3)
	valid, err := NewTreeFromParents(p, []int{3, 0, 1})
	if err != nil {
		t.Fatal(err)
	}

	cycle := valid.Clone()
	cycle.Parent = []int{1, 0, 1} // 0 <-> 1
	if err := cycle.Validate(p); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle error = %v, want ErrCycle", err)
	}

	selfParent := valid.Clone()
	selfParent.Parent[1] = 1
	if err := selfParent.Validate(p); err == nil {
		t.Error("self-parent accepted")
	}

	outOfRangeHop := valid.Clone()
	outOfRangeHop.Parent[2] = 3 // post 2 at 90m cannot reach the BS
	if err := outOfRangeHop.Validate(p); err == nil {
		t.Error("90m hop accepted")
	}

	underLevel := valid.Clone()
	underLevel.Level[0] = 0 // 30m hop declared at 25m level
	if err := underLevel.Validate(p); err == nil {
		t.Error("level that cannot cover its hop accepted")
	}

	badLevel := valid.Clone()
	badLevel.Level[0] = 7
	if err := badLevel.Validate(p); err == nil {
		t.Error("nonexistent level accepted")
	}

	wrongSize := Tree{Parent: []int{3}, Level: []int{0}}
	if err := wrongSize.Validate(p); err == nil {
		t.Error("wrong-size tree accepted")
	}
}

func TestSubtreeSizesAndEnergies(t *testing.T) {
	p := lineProblem(t, 4, 4)
	// Chain: 3 -> 2 -> 1 -> 0 -> BS.
	tree, err := NewTreeFromParents(p, []int{4, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	sizes := tree.SubtreeSizes(p)
	for i, want := range []int{4, 3, 2, 1} {
		if sizes[i] != want {
			t.Errorf("subtree[%d] = %d, want %d", i, sizes[i], want)
		}
	}
	// Post 0: transmits 4 bits at level 1 (e = 50 + 1.3e-6*50^4),
	// receives 3 bits at 50 nJ.
	e2 := 50 + 1.3e-6*math.Pow(50, 4)
	energies := tree.PostEnergies(p)
	want := 4*e2 + 3*50
	if math.Abs(energies[0]-want) > 1e-9 {
		t.Errorf("E_0 = %v, want %v", energies[0], want)
	}
	// Leaf post 3: one transmission, no receptions.
	if math.Abs(energies[3]-e2) > 1e-9 {
		t.Errorf("E_3 = %v, want %v", energies[3], e2)
	}

	depths := tree.Depth(p)
	for i, want := range []int{1, 2, 3, 4} {
		if depths[i] != want {
			t.Errorf("depth[%d] = %d, want %d", i, depths[i], want)
		}
	}
	children := tree.Children(p)
	if len(children[4]) != 1 || children[4][0] != 0 {
		t.Errorf("BS children = %v, want [0]", children[4])
	}
}

func TestEvaluateHandComputed(t *testing.T) {
	// Two posts in a chain, 3 nodes: m = [2, 1].
	p := lineProblem(t, 2, 3)
	tree, err := NewTreeFromParents(p, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	e2 := 50 + 1.3e-6*math.Pow(50, 4)
	// E_0 = 2*e2 + 1*50 (forwards post 1's bit), E_1 = e2.
	// cost = E_0/2 + E_1/1 with eta=1, linear gain.
	want := (2*e2+50)/2 + e2
	got, err := Evaluate(p, Deployment{2, 1}, tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Evaluate = %v, want %v", got, want)
	}

	// Swapping the spare node to the leaf is strictly worse.
	worse, err := Evaluate(p, Deployment{1, 2}, tree)
	if err != nil {
		t.Fatal(err)
	}
	if worse <= got {
		t.Errorf("spare node on the leaf should cost more: %v <= %v", worse, got)
	}
}

func TestEvaluateValidatesInputs(t *testing.T) {
	p := lineProblem(t, 2, 3)
	tree, err := NewTreeFromParents(p, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(p, Deployment{1, 1}, tree); err == nil {
		t.Error("deployment summing to 2 (not 3) accepted")
	}
	if _, err := Evaluate(p, Deployment{3, 0}, tree); err == nil {
		t.Error("empty post accepted")
	}
	if _, err := Evaluate(p, Deployment{2, 1, 1}, tree); err == nil {
		t.Error("wrong-length deployment accepted")
	}
}

func TestDeploymentHelpers(t *testing.T) {
	d, err := UniformDeployment(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Sum() != 8 {
		t.Errorf("Sum = %d, want 8", d.Sum())
	}
	for i, m := range d {
		if m < 2 || m > 3 {
			t.Errorf("uniform deployment uneven at %d: %v", i, d)
		}
	}
	if d.Max() != 3 {
		t.Errorf("Max = %d", d.Max())
	}
	if _, err := UniformDeployment(3, 2); err == nil {
		t.Error("M < N accepted")
	}
	if _, err := UniformDeployment(0, 2); err == nil {
		t.Error("zero posts accepted")
	}
	ones := Ones(4)
	if ones.Sum() != 4 {
		t.Errorf("Ones sum = %d", ones.Sum())
	}
	clone := d.Clone()
	clone[0] = 99
	if d[0] == 99 {
		t.Error("Clone aliases storage")
	}
}

func TestBestTreeForMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	field := geom.Square(250)
	for trial := 0; trial < 10; trial++ {
		p := &Problem{
			Posts:    field.RandomPoints(rng, 15),
			BS:       field.Corner(),
			Nodes:    45,
			Energy:   energy.Default(),
			Charging: charging.Default(),
		}
		if p.Validate() != nil {
			continue
		}
		deploy, err := UniformDeployment(p.N(), p.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		tree, cost, err := BestTreeFor(p, deploy)
		if err != nil {
			t.Fatal(err)
		}
		evaluated, err := Evaluate(p, deploy, tree)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cost-evaluated) > 1e-6 {
			t.Fatalf("trial %d: BestTreeFor cost %.6f != Evaluate %.6f", trial, cost, evaluated)
		}
		// No other tree can beat it: check a few random valid parent
		// assignments never cost less.
		ev, err := NewCostEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		minCost, err := ev.MinCost(deploy)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(minCost-cost) > 1e-6 {
			t.Fatalf("trial %d: evaluator MinCost %.6f != BestTreeFor %.6f", trial, minCost, cost)
		}
	}
}

// TestCostMonotoneInNodes is the invariant the exact solver's bound needs:
// adding a node anywhere never increases the optimal cost.
func TestCostMonotoneInNodes(t *testing.T) {
	p := lineProblem(t, 5, 10)
	ev, err := NewCostEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		m := make([]int, 5)
		for i := range m {
			m[i] = 1 + rng.Intn(4)
		}
		base, err := ev.MinCost(m)
		if err != nil {
			t.Fatal(err)
		}
		i := rng.Intn(5)
		m[i]++
		better, err := ev.MinCost(m)
		if err != nil {
			t.Fatal(err)
		}
		if better > base+1e-9 {
			t.Fatalf("adding a node at post %d increased cost: %.6f -> %.6f (m=%v)", i, base, better, m)
		}
	}
}

func TestMinEnergyTree(t *testing.T) {
	p := lineProblem(t, 4, 4)
	tree, err := MinEnergyTree(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(p); err != nil {
		t.Fatalf("baseline tree invalid: %v", err)
	}
	// With receive energy counted, relaying costs tx+rx >= 108 nJ per
	// hop, so post 1 (60m) goes straight to the BS at level 3 (91.2 nJ);
	// post 2 (90m) is out of direct range and relays via post 0 (ties
	// with the post-1 route resolve to the lower index); post 3 relays
	// via post 1 (60m hop beats climbing the chain).
	wantParents := []int{4, 4, 0, 1}
	for i, want := range wantParents {
		if tree.Parent[i] != want {
			t.Errorf("parent[%d] = %d, want %d", i, tree.Parent[i], want)
		}
	}
}

func TestBuildGraphEdgeSemantics(t *testing.T) {
	p := lineProblem(t, 2, 2)
	g, err := p.BuildGraph(p.EnergyWeights())
	if err != nil {
		t.Fatal(err)
	}
	// Post 0 (30m from BS, 30m from post 1): two outgoing edges.
	if len(g.Out(0)) != 2 {
		t.Errorf("post 0 out-degree = %d, want 2", len(g.Out(0)))
	}
	// Post 1 at 60m from BS: reaches both BS (level 3) and post 0.
	if len(g.Out(1)) != 2 {
		t.Errorf("post 1 out-degree = %d, want 2", len(g.Out(1)))
	}
	// The base station never transmits.
	if len(g.Out(p.BSIndex())) != 0 {
		t.Errorf("BS transmits: %v", g.Out(p.BSIndex()))
	}
}

func TestRechargeCostWeightsReceiverTerm(t *testing.T) {
	p := lineProblem(t, 2, 4)
	wf, err := p.RechargeCostWeights(Deployment{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	e2 := 50 + 1.3e-6*math.Pow(50, 4)
	// Post 1 -> post 0: tx/1 + rx/3 (receiver has 3 nodes).
	got := wf(1, 0, e2)
	want := e2/1 + 50.0/3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("weight(1->0) = %v, want %v", got, want)
	}
	// Post 0 -> BS: no receiver term.
	got = wf(0, p.BSIndex(), e2)
	want = e2 / 3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("weight(0->BS) = %v, want %v", got, want)
	}
	if _, err := p.RechargeCostWeights(Deployment{1}); err == nil {
		t.Error("wrong-size deployment accepted")
	}
}

func TestMinNodeSeparation(t *testing.T) {
	p := lineProblem(t, 3, 3)
	if got := p.MinNodeSeparation(); math.Abs(got-30) > 1e-9 {
		t.Errorf("MinNodeSeparation = %v, want 30", got)
	}
}
