package model

import (
	"math"
	"math/rand"
	"testing"

	"wrsn/internal/charging"
)

// TestProbeCacheDifferential drives IDB-shaped rounds — probe every
// single-add candidate, cache it, commit a winner — and pins every
// cached re-pricing and every promoted commit bit-identical
// (math.Float64bits) to a from-scratch oracle evaluation. The weighted
// variant prices a deployment-wide overhead term, which disables the
// cache; it asserts the gate holds (every lookup misses) while results
// stay exact.
func TestProbeCacheDifferential(t *testing.T) {
	for _, variant := range []string{"plain", "overhead"} {
		for _, seed := range []int64{3, 11, 27} {
			t.Run(variant, func(t *testing.T) {
				const n, nodes = 30, 90
				p := diffProblem(t, seed, n, nodes, charging.Model{EtaSingle: 0.8, Gain: charging.Sublinear(0.9)})
				if variant == "overhead" {
					over := make([]float64, n)
					rng := rand.New(rand.NewSource(seed + 1))
					for i := range over {
						over[i] = 40 * rng.Float64()
					}
					p.RoundOverhead = 25
					p.PostOverheads = over
					if err := p.Validate(); err != nil {
						t.Fatalf("overhead variant invalid: %v", err)
					}
				}
				oracle, err := NewCostEvaluator(p)
				if err != nil {
					t.Fatal(err)
				}
				inc, err := NewIncrementalEvaluator(p)
				if err != nil {
					t.Fatal(err)
				}
				inc.EnableProbeCache(n)

				rng := rand.New(rand.NewSource(seed * 17))
				cur := make([]int, n)
				for i := range cur {
					cur[i] = 1
				}
				if _, err := inc.Cost(cur); err != nil {
					t.Fatal(err)
				}
				probe := make([]int, n)
				for round := 0; round < 25; round++ {
					for i := 0; i < n; i++ {
						copy(probe, cur)
						probe[i]++
						want, err := oracle.MinCost(probe)
						if err != nil {
							t.Fatalf("round %d cand %d: oracle: %v", round, i, err)
						}
						if got, ok := inc.CachedCost(i); ok {
							if math.Float64bits(got) != math.Float64bits(want) {
								t.Fatalf("round %d cand %d: cached %.17g, oracle %.17g", round, i, got, want)
							}
							continue
						}
						got, err := inc.CostDelta([]Move{{Post: i, Delta: 1}})
						if err != nil {
							t.Fatalf("round %d cand %d: CostDelta: %v", round, i, err)
						}
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("round %d cand %d: probed %.17g, oracle %.17g", round, i, got, want)
						}
						inc.CacheProbe(i)
						if err := inc.Revert(); err != nil {
							t.Fatal(err)
						}
					}
					// Commit a round winner, alternating between the
					// probe-promoting path and the ordinary re-probe path so
					// both invalidation routines run.
					w := rng.Intn(n)
					copy(probe, cur)
					probe[w]++
					want, err := oracle.MinCost(probe)
					if err != nil {
						t.Fatal(err)
					}
					promoted := false
					if round%2 == 0 {
						if got, ok := inc.CommitCached(w); ok {
							if math.Float64bits(got) != math.Float64bits(want) {
								t.Fatalf("round %d: promoted commit %.17g, oracle %.17g", round, got, want)
							}
							promoted = true
						}
					}
					if !promoted {
						got, err := inc.CostDelta([]Move{{Post: w, Delta: 1}})
						if err != nil {
							t.Fatal(err)
						}
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("round %d: fresh commit %.17g, oracle %.17g", round, got, want)
						}
						if err := inc.Commit(); err != nil {
							t.Fatal(err)
						}
					}
					cur[w]++
					// Audit the committed state.
					audit, err := inc.CostDelta(nil)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(audit) != math.Float64bits(want) {
						t.Fatalf("round %d: committed state %.17g, oracle %.17g", round, audit, want)
					}
					if err := inc.Revert(); err != nil {
						t.Fatal(err)
					}
				}
				st := inc.Stats()
				if variant == "overhead" {
					if st.CacheHits != 0 || st.CachePromotes != 0 {
						t.Fatalf("overhead pricing must disable the cache, got %+v", st)
					}
				} else {
					if st.CacheHits == 0 {
						t.Errorf("cache enabled but never hit: %+v", st)
					}
					if st.CachePromotes == 0 {
						t.Errorf("no probe-promoting commit ran: %+v", st)
					}
				}
			})
		}
	}
}

// TestCostDeltaBoundedDifferential pins CostDeltaBounded against exact
// probing: an infinite limit is bit-identical to CostDelta, a pruned
// return guarantees the exact cost is at or above the limit (and leaves
// the evaluator idle), and an unpruned return is bit-identical to the
// exact cost. Both the tiny scan-min regime (which prunes) and the
// journaled-repair regime (which never does) are covered.
func TestCostDeltaBoundedDifferential(t *testing.T) {
	for _, tc := range []struct {
		name     string
		n, nodes int
	}{
		{"tiny", 12, 36},
		{"large", 30, 90},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := diffProblem(t, 5, tc.n, tc.nodes, charging.Model{EtaSingle: 0.8, Gain: charging.Sublinear(0.9)})
			bounded, err := NewIncrementalEvaluator(p)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := NewIncrementalEvaluator(p)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			cur := make([]int, tc.n)
			for i := range cur {
				cur[i] = 1 + rng.Intn(3)
			}
			if _, err := bounded.Cost(cur); err != nil {
				t.Fatal(err)
			}
			if _, err := exact.Cost(cur); err != nil {
				t.Fatal(err)
			}
			inf := math.Inf(1)
			pruned := 0
			for step := 0; step < 300; step++ {
				mv := []Move{{Post: rng.Intn(tc.n), Delta: 1}}
				if rng.Intn(2) == 0 && cur[mv[0].Post] > 1 {
					mv[0].Delta = -1
				}
				want, err := exact.CostDelta(mv)
				if err != nil {
					t.Fatal(err)
				}
				if err := exact.Revert(); err != nil {
					t.Fatal(err)
				}
				limit := inf
				switch step % 3 {
				case 1:
					limit = want * (0.9 + 0.2*rng.Float64())
				case 2:
					limit = want
				}
				got, wasPruned, err := bounded.CostDeltaBounded(mv, limit)
				if err != nil {
					t.Fatal(err)
				}
				if wasPruned {
					pruned++
					if want < limit {
						t.Fatalf("step %d: pruned at limit %.17g but exact cost %.17g is below it", step, limit, want)
					}
					// The evaluator must be idle: a fresh probe needs no Revert.
					continue
				}
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("step %d: bounded %.17g, exact %.17g (limit %.17g)", step, got, want, limit)
				}
				if err := bounded.Revert(); err != nil {
					t.Fatal(err)
				}
			}
			if tc.n+1 <= tinyVerts && pruned == 0 {
				t.Error("tiny regime never pruned a bounded probe")
			}
			if tc.n+1 > tinyVerts && pruned != 0 {
				t.Errorf("journaled regime pruned %d probes (must price exactly)", pruned)
			}
		})
	}
}

// FuzzProbeCacheInvalidation fuzzes the probe-promotion invalidation
// contract: cache a candidate's probe, commit fuzzer-chosen *different*
// moves, and require that the slot either misses or re-prices
// bit-identically to a from-scratch evaluation. Committing a move on
// the cached candidate's own post must always invalidate it (the cached
// probe priced a different count transition).
func FuzzProbeCacheInvalidation(f *testing.F) {
	f.Add(int64(1), []byte{0x03, 0x11, 0x22})
	f.Add(int64(4), []byte{0xff, 0x00, 0x81, 0x10})
	f.Add(int64(8), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		const n, nodes = 18, 54
		p := diffProblem(t, 2, n, nodes, charging.Model{EtaSingle: 0.8, Gain: charging.Sublinear(0.9)})
		oracle, err := NewCostEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := NewIncrementalEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		inc.EnableProbeCache(n)
		rng := rand.New(rand.NewSource(seed))
		cur := make([]int, n)
		for i := range cur {
			cur[i] = 1 + rng.Intn(3)
		}
		if _, err := inc.Cost(cur); err != nil {
			t.Fatal(err)
		}
		probe := make([]int, n)
		cached := -1 // candidate whose +1 probe the cache holds, if any
		for i := 0; i+1 < len(ops); i += 2 {
			cand, arg := int(ops[i])%n, ops[i+1]
			switch arg % 3 {
			case 0: // probe cand and cache it
				if _, err := inc.CostDelta([]Move{{Post: cand, Delta: 1}}); err != nil {
					t.Fatal(err)
				}
				inc.CacheProbe(cand)
				if err := inc.Revert(); err != nil {
					t.Fatal(err)
				}
				cached = cand
			case 1: // commit different moves (possibly touching cand's post)
				mv := Move{Post: int(arg) % n, Delta: 1}
				if arg&0x40 != 0 && cur[mv.Post] > 1 {
					mv.Delta = -1
				}
				if _, err := inc.CostDelta([]Move{mv}); err != nil {
					t.Fatal(err)
				}
				if err := inc.Commit(); err != nil {
					t.Fatal(err)
				}
				cur[mv.Post] += mv.Delta
				if cached == mv.Post {
					if _, ok := inc.CachedCost(cached); ok {
						t.Fatalf("slot %d survived a commit moving its own post", cached)
					}
					cached = -1
				}
			case 2: // promote the cached candidate when still held
				if cached < 0 {
					continue
				}
				copy(probe, cur)
				probe[cached]++
				want, err := oracle.MinCost(probe)
				if err != nil {
					t.Fatal(err)
				}
				if got, ok := inc.CommitCached(cached); ok {
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("promoted commit %.17g, oracle %.17g", got, want)
					}
					copy(cur, probe)
				}
				cached = -1
			}
			// Every cached lookup that answers must match the oracle.
			if cached >= 0 {
				copy(probe, cur)
				probe[cached]++
				if got, ok := inc.CachedCost(cached); ok {
					want, err := oracle.MinCost(probe)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("cached %.17g, oracle %.17g (cand %d, cur %v)", got, want, cached, cur)
					}
				}
			}
			// And the committed state itself must stay exact.
			got, err := inc.CostDelta(nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := inc.Revert(); err != nil {
				t.Fatal(err)
			}
			want, err := oracle.MinCost(cur)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("committed cost %.17g, oracle %.17g (cur %v)", got, want, cur)
			}
		}
	})
}
