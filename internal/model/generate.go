package model

import (
	"fmt"
	"math/rand"

	"wrsn/internal/charging"
	"wrsn/internal/energy"
	"wrsn/internal/geom"
)

// Layout selects how GenerateProblem scatters posts.
type Layout string

// Supported layouts.
const (
	// LayoutUniform scatters posts uniformly (the paper's evaluation).
	LayoutUniform Layout = "uniform"
	// LayoutClustered draws posts from Gaussian blobs (villages,
	// buildings); see GenSpec.Clusters and GenSpec.ClusterSigma.
	LayoutClustered Layout = "clustered"
	// LayoutGrid arranges posts on a regular grid.
	LayoutGrid Layout = "grid"
)

// GenSpec parameterises random problem generation.
type GenSpec struct {
	// Field is the deployment area; the base station sits at its corner
	// unless BS is set.
	Field geom.Field
	// BS optionally overrides the base-station location.
	BS *geom.Point
	// Posts and Nodes are N and M.
	Posts int
	Nodes int
	// Energy defaults to the paper's model when zero-valued.
	Energy energy.Model
	// Charging defaults to eta=1/linear when zero-valued.
	Charging charging.Model
	// Layout defaults to LayoutUniform.
	Layout Layout
	// Clusters and ClusterSigma parameterise LayoutClustered
	// (defaults: 4 clusters, sigma = 8% of the field width).
	Clusters     int
	ClusterSigma float64
	// MaxAttempts bounds regeneration until a connected instance is
	// drawn (default 1000).
	MaxAttempts int
}

// GenerateProblem draws random instances per spec until one is connected
// to the base station at maximum transmission range, consuming rng
// deterministically. It is the canonical instance source for tests,
// examples and CLIs.
func GenerateProblem(rng *rand.Rand, spec GenSpec) (*Problem, error) {
	if spec.Posts < 1 {
		return nil, fmt.Errorf("model: generate needs >= 1 post, got %d", spec.Posts)
	}
	if spec.Nodes < spec.Posts {
		return nil, fmt.Errorf("model: generate needs nodes >= posts, got %d < %d", spec.Nodes, spec.Posts)
	}
	em := spec.Energy
	if em.Levels() == 0 {
		em = energy.Default()
	}
	cm := spec.Charging
	if cm.EtaSingle == 0 {
		cm = charging.Default()
	}
	attempts := spec.MaxAttempts
	if attempts <= 0 {
		attempts = 1000
	}
	layout := spec.Layout
	if layout == "" {
		layout = LayoutUniform
	}
	clusters := spec.Clusters
	if clusters <= 0 {
		clusters = 4
	}
	sigma := spec.ClusterSigma
	if sigma <= 0 {
		sigma = spec.Field.Width * 0.08
	}
	bs := spec.Field.Corner()
	if spec.BS != nil {
		bs = *spec.BS
	}

	for attempt := 0; attempt < attempts; attempt++ {
		var posts []geom.Point
		switch layout {
		case LayoutUniform:
			posts = spec.Field.RandomPoints(rng, spec.Posts)
		case LayoutClustered:
			posts = spec.Field.ClusteredPoints(rng, spec.Posts, clusters, sigma)
		case LayoutGrid:
			posts = spec.Field.Grid(spec.Posts)
		default:
			return nil, fmt.Errorf("model: unknown layout %q", layout)
		}
		p := &Problem{
			Posts:    posts,
			BS:       bs,
			Nodes:    spec.Nodes,
			Energy:   em,
			Charging: cm,
		}
		if err := p.Validate(); err == nil {
			return p, nil
		}
		if layout == LayoutGrid {
			// Grids are deterministic; retrying cannot help.
			return nil, fmt.Errorf("model: grid layout of %d posts in %.0fx%.0fm is disconnected at max range %.0fm",
				spec.Posts, spec.Field.Width, spec.Field.Height, em.MaxRange())
		}
	}
	return nil, fmt.Errorf("model: no connected %d-post instance in %.0fx%.0fm after %d attempts",
		spec.Posts, spec.Field.Width, spec.Field.Height, attempts)
}
