package model

import (
	"math"
	"math/rand"
	"testing"

	"wrsn/internal/charging"
	"wrsn/internal/geom"
)

// diffProblem draws a random connected instance for the differential
// suites: n posts scattered uniformly over a field sized to the density
// of the paper-scale experiments (100 posts per 500m square).
func diffProblem(t testing.TB, seed int64, n, nodes int, cm charging.Model) *Problem {
	t.Helper()
	side := 50 * math.Sqrt(float64(n))
	p, err := GenerateProblem(rand.New(rand.NewSource(seed)), GenSpec{
		Field:    geom.Field{Width: side, Height: side},
		Posts:    n,
		Nodes:    nodes,
		Charging: cm,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return p
}

// checkAgainstOracle asserts the incremental evaluator's committed view of
// cur prices and finalises exactly like a fresh stateless evaluation.
func checkAgainstOracle(t *testing.T, oracle *CostEvaluator, inc *IncrementalEvaluator, cur []int, got float64, step int) {
	t.Helper()
	want, err := oracle.MinCost(cur)
	if err != nil {
		t.Fatalf("step %d: oracle: %v", step, err)
	}
	// The evaluators share edge pricing and relaxation arithmetic, so
	// agreement is bit-exact, not merely within DAGTolerance — the solver
	// golden tests depend on that.
	if got != want {
		t.Fatalf("step %d: incremental cost %.17g, oracle %.17g (diff %g)", step, got, want, got-want)
	}
}

func TestIncrementalEvaluatorDifferential(t *testing.T) {
	gains := map[string]charging.Model{
		"linear":     {EtaSingle: 1, Gain: charging.Linear()},
		"sublinear":  {EtaSingle: 0.5, Gain: charging.Sublinear(0.8)},
		"saturating": {EtaSingle: 1, Gain: charging.Saturating(3)},
	}
	for name, cm := range gains {
		for _, variant := range []string{"plain", "weighted", "memo"} {
			t.Run(name+"/"+variant, func(t *testing.T) {
				const n, nodes = 30, 90
				p := diffProblem(t, 7, n, nodes, cm)
				if variant == "weighted" {
					rates := make([]float64, n)
					over := make([]float64, n)
					rng := rand.New(rand.NewSource(11))
					for i := range rates {
						rates[i] = 0.25 + 2*rng.Float64()
						over[i] = 40 * rng.Float64()
					}
					p.ReportRates = rates
					p.RoundOverhead = 25
					p.PostOverheads = over
					if err := p.Validate(); err != nil {
						t.Fatalf("weighted variant invalid: %v", err)
					}
				}
				oracle, err := NewCostEvaluator(p)
				if err != nil {
					t.Fatal(err)
				}
				inc, err := NewIncrementalEvaluator(p)
				if err != nil {
					t.Fatal(err)
				}
				if variant == "memo" {
					inc.EnableMemo(64) // tiny, to exercise collisions/evictions
				}

				rng := rand.New(rand.NewSource(42))
				cur := make([]int, n)
				for i := range cur {
					cur[i] = 1 + rng.Intn(4)
				}
				got, err := inc.Cost(cur)
				if err != nil {
					t.Fatalf("Cost: %v", err)
				}
				checkAgainstOracle(t, oracle, inc, cur, got, -1)

				moves := make([]Move, 0, 4)
				for step := 0; step < 400; step++ {
					switch rng.Intn(10) {
					case 0: // occasional full rebase
						for i := range cur {
							cur[i] = 1 + rng.Intn(4)
						}
						got, err = inc.Cost(cur)
						if err != nil {
							t.Fatalf("step %d: Cost: %v", step, err)
						}
					default:
						moves = moves[:0]
						for k := rng.Intn(3) + 1; k > 0; k-- {
							post := rng.Intn(n)
							delta := 1
							if rng.Intn(2) == 0 && cur[post] > 1 {
								delta = -1
							}
							moves = append(moves, Move{Post: post, Delta: delta})
							cur[post] += delta
						}
						got, err = inc.CostDelta(moves)
						if err != nil {
							t.Fatalf("step %d: CostDelta(%v): %v", step, moves, err)
						}
						if rng.Intn(3) == 0 { // reject the probe
							if err := inc.Revert(); err != nil {
								t.Fatalf("step %d: Revert: %v", step, err)
							}
							for _, mv := range moves {
								cur[mv.Post] -= mv.Delta
							}
							// Re-probe the committed point to check the revert
							// restored a consistent state.
							got, err = inc.CostDelta(moves[:0])
							if err != nil {
								t.Fatalf("step %d: noop probe: %v", step, err)
							}
						}
						if err := inc.Commit(); err != nil {
							t.Fatalf("step %d: Commit: %v", step, err)
						}
					}
					checkAgainstOracle(t, oracle, inc, cur, got, step)

					if step%50 == 0 {
						wantPar, wantCost, err := oracle.BestParents(cur)
						if err != nil {
							t.Fatalf("step %d: oracle parents: %v", step, err)
						}
						gotPar, gotCost, err := inc.BestParents(cur)
						if err != nil {
							t.Fatalf("step %d: incremental parents: %v", step, err)
						}
						if gotCost != wantCost {
							t.Fatalf("step %d: BestParents cost %.17g, oracle %.17g", step, gotCost, wantCost)
						}
						for i := range wantPar {
							if gotPar[i] != wantPar[i] {
								t.Fatalf("step %d: parent[%d] = %d, oracle %d", step, i, gotPar[i], wantPar[i])
							}
						}
					}
				}

				st := inc.Stats()
				if st.Probes == 0 || st.Repairs == 0 {
					t.Errorf("stats show no incremental work: %+v", st)
				}
				if variant == "memo" && st.MemoHits == 0 {
					t.Errorf("memo enabled but never hit: %+v", st)
				}
			})
		}
	}
}

func TestIncrementalEvaluatorProtocol(t *testing.T) {
	p := diffProblem(t, 3, 12, 36, charging.Model{EtaSingle: 1, Gain: charging.Linear()})
	inc, err := NewIncrementalEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := inc.CostDelta([]Move{{Post: 0, Delta: 1}}); err == nil {
		t.Error("CostDelta before Cost accepted")
	}
	if err := inc.Commit(); err == nil {
		t.Error("Commit without probe accepted")
	}
	if err := inc.Revert(); err == nil {
		t.Error("Revert without probe accepted")
	}

	cur := make([]int, p.N())
	for i := range cur {
		cur[i] = 2
	}
	base, err := inc.Cost(cur)
	if err != nil {
		t.Fatal(err)
	}

	// Illegal probes must leave the committed state untouched.
	if _, err := inc.CostDelta([]Move{{Post: 99, Delta: 1}}); err == nil {
		t.Error("out-of-range move accepted")
	}
	if _, err := inc.CostDelta([]Move{{Post: 0, Delta: -2}}); err == nil {
		t.Error("move below one node accepted")
	}
	if got, err := inc.CostDelta(nil); err != nil || got != base {
		t.Errorf("noop probe after illegal moves = %v, %v; want committed cost %v", got, err, base)
	}
	if _, err := inc.CostDelta(nil); err == nil {
		t.Error("second probe while pending accepted")
	}
	if _, err := inc.Cost(cur); err == nil {
		t.Error("Cost while probe pending accepted")
	}
	if err := inc.Revert(); err != nil {
		t.Fatal(err)
	}

	// A net-zero move set (+1 then -1 on one post) prices the base.
	got, err := inc.CostDelta([]Move{{Post: 1, Delta: 1}, {Post: 1, Delta: -1}})
	if err != nil || got != base {
		t.Errorf("net-zero probe = %v, %v; want %v", got, err, base)
	}
	if err := inc.Commit(); err != nil {
		t.Fatal(err)
	}
}

// FuzzIncrementalEvaluator drives random probe/commit/revert sequences
// from fuzzer-chosen bytes and cross-checks every committed state against
// a fresh stateless evaluation (same differential contract as
// TestIncrementalEvaluatorDifferential, fuzzer-steered).
func FuzzIncrementalEvaluator(f *testing.F) {
	f.Add(int64(1), []byte{0x01, 0x82, 0x13, 0xff, 0x40, 0x07})
	f.Add(int64(9), []byte{0xaa, 0x55, 0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60})
	f.Add(int64(3), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		const n, nodes = 14, 42
		p := diffProblem(t, 5, n, nodes, charging.Model{EtaSingle: 0.8, Gain: charging.Sublinear(0.9)})
		oracle, err := NewCostEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := NewIncrementalEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		if seed%2 == 0 {
			inc.EnableMemo(32)
		}

		rng := rand.New(rand.NewSource(seed))
		cur := make([]int, n)
		for i := range cur {
			cur[i] = 1 + rng.Intn(3)
		}
		if _, err := inc.Cost(cur); err != nil {
			t.Fatal(err)
		}

		var moves []Move
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			switch op % 4 {
			case 0, 1: // probe, then commit (0) or revert (1)
				moves = moves[:0]
				for k := int(arg%3) + 1; k > 0; k-- {
					post := rng.Intn(n)
					delta := 1
					if arg&0x10 != 0 && cur[post] > 1 {
						delta = -1
					}
					moves = append(moves, Move{Post: post, Delta: delta})
					cur[post] += delta
				}
				if _, err := inc.CostDelta(moves); err != nil {
					t.Fatalf("CostDelta(%v): %v", moves, err)
				}
				if op%4 == 1 {
					if err := inc.Revert(); err != nil {
						t.Fatal(err)
					}
					for _, mv := range moves {
						cur[mv.Post] -= mv.Delta
					}
				} else if err := inc.Commit(); err != nil {
					t.Fatal(err)
				}
			case 2: // rebase
				for j := range cur {
					cur[j] = 1 + int(arg+byte(j))%3
				}
				if _, err := inc.Cost(cur); err != nil {
					t.Fatal(err)
				}
			case 3: // illegal probe must not corrupt state
				if _, err := inc.CostDelta([]Move{{Post: int(arg), Delta: -1000}}); err == nil {
					t.Fatal("illegal probe accepted")
				}
			}

			got, err := inc.CostDelta(nil)
			if err != nil {
				t.Fatalf("audit probe: %v", err)
			}
			if err := inc.Revert(); err != nil {
				t.Fatal(err)
			}
			want, err := oracle.MinCost(cur)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if got != want {
				t.Fatalf("committed cost %.17g, oracle %.17g (cur=%v)", got, want, cur)
			}
		}
	})
}

func BenchmarkMinCost(b *testing.B) {
	p := diffProblem(b, 1, 100, 300, charging.Model{EtaSingle: 1, Gain: charging.Linear()})
	ev, err := NewCostEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	m := make([]int, p.N())
	for i := range m {
		m[i] = 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.MinCost(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostDelta measures the steady-state probe/revert cycle — the
// inner loop of every solver — and must report 0 allocs/op.
func BenchmarkCostDelta(b *testing.B) {
	p := diffProblem(b, 1, 100, 300, charging.Model{EtaSingle: 1, Gain: charging.Linear()})
	ev, err := NewIncrementalEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	m := make([]int, p.N())
	for i := range m {
		m[i] = 3
	}
	if _, err := ev.Cost(m); err != nil {
		b.Fatal(err)
	}
	moves := make([]Move, 2)
	// Warm the journal/move buffers to their steady-state capacity.
	for i := 0; i < 8; i++ {
		moves[0] = Move{Post: i % p.N(), Delta: 1}
		moves[1] = Move{Post: (i + 37) % p.N(), Delta: -1}
		if _, err := ev.CostDelta(moves); err != nil {
			b.Fatal(err)
		}
		if err := ev.Revert(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moves[0] = Move{Post: i % p.N(), Delta: 1}
		moves[1] = Move{Post: (i + 37) % p.N(), Delta: -1}
		if _, err := ev.CostDelta(moves); err != nil {
			b.Fatal(err)
		}
		if err := ev.Revert(); err != nil {
			b.Fatal(err)
		}
	}
}
