// Package texttable renders small result tables as aligned plain text and
// CSV — the presentation layer of the experiment harness, which prints the
// same rows/series the paper's figures plot.
package texttable

import (
	"fmt"
	"strings"
)

// Table is a simple column-oriented text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: append([]string(nil), headers...)}
}

// AddRow appends a row of cells; each cell is formatted with %v unless it
// is a float64/float32, which use %.4g for stable, compact output.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case float32:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}

	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
