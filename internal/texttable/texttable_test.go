package texttable

import (
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	tbl := New("Title", "name", "value")
	tbl.AddRow("alpha", 1)
	tbl.AddRow("b", 123.456789)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line = %q", lines[2])
	}
	if !strings.Contains(out, "123.4568") {
		t.Errorf("float not formatted to 4 decimals: %q", out)
	}
	// All data lines equal width-ish: columns aligned means "value"
	// column starts at the same offset.
	nameCol := strings.Index(lines[1], "value")
	if idx := strings.Index(lines[3], "1"); idx < nameCol {
		t.Errorf("misaligned columns:\n%s", out)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestNoTitle(t *testing.T) {
	tbl := New("", "a")
	tbl.AddRow(1)
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Error("empty title produced a leading blank line")
	}
}

func TestCSV(t *testing.T) {
	tbl := New("ignored", "a", "b")
	tbl.AddRow("plain", 1)
	tbl.AddRow(`with "quotes", and comma`, 2.5)
	csv := tbl.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "plain,1" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != `"with ""quotes"", and comma",2.5000` {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestRowsWiderThanHeader(t *testing.T) {
	tbl := New("t", "only")
	tbl.AddRow("a", "extra", "cells")
	out := tbl.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "cells") {
		t.Errorf("extra cells dropped: %q", out)
	}
}
