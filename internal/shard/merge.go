package shard

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wrsn/internal/engine"
)

// RejectedSegment records one spool segment the merge refused, and why:
// a stale (fenced) epoch, a corrupt or incomplete journal, or a lease
// that does not belong to the sweep's shard plan.
type RejectedSegment struct {
	Path   string
	Reason string
}

// mergeSegments assembles the final Result from the spool's committed
// segments. expect maps each planned shard range to the epoch whose
// segment is current; any other segment for that range is fenced out.
// With a nil expect (standalone merge of a hand-run spool), the
// highest-epoch valid segment per range wins and the ranges found must
// tile the grid exactly.
//
// Accepted segments are CRC-checked, header-matched and
// completeness-checked (ReadSegment), required to tile [0, CellCount)
// with no gaps or overlaps, written into a single merged journal, and
// replayed through the engine's checkpoint-resume path — so the
// returned Result's values are byte-identical to an uninterrupted
// in-process run at any worker count.
func mergeSegments(ctx context.Context, sw *engine.Sweep, runCfg engine.RunConfig, l layout, expect map[[2]int]int64) (*engine.Result, []RejectedSegment, error) {
	entries, err := os.ReadDir(l.segDir())
	if err != nil {
		return nil, nil, fmt.Errorf("shard: merge: %w", err)
	}
	var rejected []RejectedSegment
	best := map[[2]int]*engine.Segment{} // current segment per cell range
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".journal") {
			continue
		}
		path := filepath.Join(l.segDir(), ent.Name())
		seg, err := engine.ReadSegment(path, sw)
		if err != nil {
			rejected = append(rejected, RejectedSegment{Path: path, Reason: err.Error()})
			continue
		}
		rng := [2]int{seg.Lease.Start, seg.Lease.End}
		if expect != nil {
			want, planned := expect[rng]
			if !planned {
				rejected = append(rejected, RejectedSegment{Path: path,
					Reason: fmt.Sprintf("lease %s is not part of the shard plan", seg.Lease)})
				continue
			}
			if seg.Lease.Epoch != want {
				rejected = append(rejected, RejectedSegment{Path: path,
					Reason: fmt.Sprintf("stale lease epoch %d (current epoch %d): fenced zombie segment", seg.Lease.Epoch, want)})
				continue
			}
			best[rng] = seg
			continue
		}
		if cur := best[rng]; cur == nil || seg.Lease.Epoch > cur.Lease.Epoch {
			if cur != nil {
				rejected = append(rejected, RejectedSegment{Path: cur.Path,
					Reason: fmt.Sprintf("superseded by epoch %d", seg.Lease.Epoch)})
			}
			best[rng] = seg
		} else {
			rejected = append(rejected, RejectedSegment{Path: path,
				Reason: fmt.Sprintf("superseded by epoch %d", cur.Lease.Epoch)})
		}
	}
	if expect != nil {
		for rng, epoch := range expect {
			if best[rng] == nil {
				return nil, rejected, fmt.Errorf("shard: merge: no segment for shard [%d,%d) epoch %d", rng[0], rng[1], epoch)
			}
		}
	}

	// The accepted ranges must tile the grid exactly: no gap may be
	// silently filled by live execution, no overlap double-merged.
	ranges := make([][2]int, 0, len(best))
	for rng := range best {
		ranges = append(ranges, rng)
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i][0] < ranges[j][0] })
	cells := engine.CellCount(sw)
	at := 0
	for _, rng := range ranges {
		if rng[0] != at {
			return nil, rejected, fmt.Errorf("shard: merge: segments do not tile the grid: cells [%d,%d) uncovered", at, rng[0])
		}
		at = rng[1]
	}
	if at != cells {
		return nil, rejected, fmt.Errorf("shard: merge: segments do not tile the grid: cells [%d,%d) uncovered", at, cells)
	}

	var recs []engine.CellRecord
	for _, rng := range ranges {
		recs = append(recs, best[rng].Records...)
	}
	sort.Slice(recs, func(i, j int) bool {
		return engine.CellIndex(sw, recs[i].Point, recs[i].Seed, recs[i].Algo) <
			engine.CellIndex(sw, recs[j].Point, recs[j].Seed, recs[j].Algo)
	})
	mergedDir := l.mergedDir(sw.ID)
	if err := os.RemoveAll(mergedDir); err != nil {
		return nil, rejected, fmt.Errorf("shard: merge: %w", err)
	}
	if _, err := engine.WriteMergedJournal(mergedDir, sw, recs); err != nil {
		return nil, rejected, fmt.Errorf("shard: merge: %w", err)
	}

	// Replay the merged journal through the engine's resume path: every
	// cell restores from its journaled Float64bits, figure assembly runs
	// in declaration order, and no algorithm executes.
	res, err := engine.Run(ctx, sw, engine.RunConfig{
		Workers:    1,
		Checkpoint: &engine.Checkpoint{Dir: mergedDir, Resume: true},
		Progress:   runCfg.Progress,
		Limiter:    runCfg.Limiter,
	})
	if err != nil {
		return nil, rejected, fmt.Errorf("shard: merge replay: %w", err)
	}
	if res.Resumed != cells {
		return nil, rejected, fmt.Errorf("shard: merge replay restored %d of %d cells", res.Resumed, cells)
	}
	return res, rejected, nil
}

// MergeSpool merges whatever committed segments a spool holds into a
// final Result, without a coordinator: the highest-epoch valid segment
// per cell range wins, and the segments must cover the sweep's grid
// exactly. This is the multi-machine escape hatch — run workers by hand
// against a shared spool, then merge once they are all committed.
func MergeSpool(ctx context.Context, sw *engine.Sweep, runCfg engine.RunConfig, spool string) (*engine.Result, []RejectedSegment, error) {
	l := newLayout(spool)
	if err := l.ensure(); err != nil {
		return nil, nil, err
	}
	return mergeSegments(ctx, sw, runCfg, l, nil)
}
