package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"wrsn/internal/engine"
)

// Worker-side chaos outcomes, distinguishable with errors.Is.
var (
	// ErrKilled reports a worker that died mid-shard under chaos
	// injection without committing its segment — the in-process
	// equivalent of a SIGKILL.
	ErrKilled = errors.New("shard: worker killed mid-shard (chaos)")
)

// WorkerConfig configures one shard lease execution.
type WorkerConfig struct {
	// Spool is the shared spool directory (required).
	Spool string
	// Lease is the shard grant to execute (required; Lease.Sweep must
	// match the sweep's ID).
	Lease Lease
	// Run is the base engine configuration for the shard: worker-pool
	// size within the shard, per-cell timeout, retry policy, cell- and
	// worker-level chaos. Checkpoint and Shard are owned by the worker
	// and must be unset.
	Run engine.RunConfig
	// HeartbeatEvery is the heartbeat period (default 1s). The
	// coordinator's lease TTL should be several multiples of it.
	HeartbeatEvery time.Duration

	// wedgeRelease, when non-nil, lets a chaos-wedged worker resume and
	// commit its (by then stale) segment — the test hook behind the
	// zombie-fencing suite. Production wedges hang until killed.
	wedgeRelease <-chan struct{}
}

// RunWorker executes one shard lease: it runs the sweep's cells in
// [Lease.Start, Lease.End) through engine.Run, journaling to a private
// work dir under the spool, heartbeats while running, and commits the
// finished journal segment into the spool's seg/ directory with an
// atomic rename. On any failure — cell errors, cancellation, chaos
// kill or wedge — nothing is committed; the coordinator observes the
// missing segment and re-grants the shard.
func RunWorker(ctx context.Context, sw *engine.Sweep, cfg WorkerConfig) (*engine.Result, error) {
	if cfg.Spool == "" {
		return nil, errors.New("shard: worker needs a spool directory")
	}
	if cfg.Lease.Sweep != sw.ID {
		return nil, fmt.Errorf("shard: lease %s does not belong to sweep %s", cfg.Lease, sw.ID)
	}
	if cfg.Run.Checkpoint != nil || cfg.Run.Shard != nil {
		return nil, errors.New("shard: WorkerConfig.Run must not set Checkpoint or Shard")
	}
	hbEvery := cfg.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	l := newLayout(cfg.Spool)
	if err := l.ensure(); err != nil {
		return nil, err
	}
	workDir := l.workDir(cfg.Lease)
	if err := os.RemoveAll(workDir); err != nil {
		return nil, fmt.Errorf("shard: reset work dir: %w", err)
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, err
	}

	fate := cfg.Run.Chaos.WorkerFaults(sw.ID, cfg.Lease.Start, cfg.Lease.End, cfg.Lease.Epoch)
	// Fault point: halfway through the shard's cells, so a killed or
	// wedged worker provably leaves real work behind to re-grant.
	faultAfter := int64(cfg.Lease.End-cfg.Lease.Start) / 2

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	var done atomic.Int64
	hbStop := make(chan struct{}) // run finished: stop heartbeating
	var hbWedged atomic.Bool      // chaos wedge: heartbeats go silent
	heartbeat := func() error {
		if fate.HeartbeatDelay > 0 {
			t := time.NewTimer(fate.HeartbeatDelay)
			select {
			case <-t.C:
			case <-runCtx.Done():
				t.Stop()
				return runCtx.Err()
			}
		}
		return writeHeartbeat(l, cfg.Lease, int(done.Load()))
	}
	if err := heartbeat(); err != nil {
		return nil, err
	}
	go func() {
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-runCtx.Done():
				return
			case <-t.C:
				if !hbWedged.Load() {
					_ = heartbeat()
				}
			}
		}
	}()

	runCfg := cfg.Run
	runCfg.Checkpoint = &engine.Checkpoint{Dir: workDir}
	lease := cfg.Lease
	runCfg.Shard = &engine.ShardSpec{Start: lease.Start, End: lease.End, Lease: &lease}
	inner := cfg.Run.Progress
	runCfg.Progress = func(ev engine.Event) {
		if inner != nil {
			inner(ev)
		}
		if ev.Kind != engine.CellFinished {
			return
		}
		n := done.Add(1)
		if n <= faultAfter {
			return
		}
		if fate.Kill {
			fate.Kill = false // fire once
			cancel(ErrKilled)
		} else if fate.Wedge {
			fate.Wedge = false
			hbWedged.Store(true)
			// Hang mid-shard, heartbeats silent, until revoked (ctx
			// cancel) or — in the fencing tests — released to finish as
			// a zombie.
			select {
			case <-runCtx.Done():
			case <-cfg.wedgeRelease:
			}
		}
	}

	res, err := engine.Run(runCtx, sw, runCfg)
	close(hbStop)
	if err != nil {
		if cause := context.Cause(runCtx); cause != nil && errors.Is(cause, ErrKilled) {
			return nil, fmt.Errorf("%w: lease %s", ErrKilled, cfg.Lease)
		}
		return nil, fmt.Errorf("shard: lease %s: %w", cfg.Lease, err)
	}

	// Commit: the journal engine.Run closed is complete; the atomic
	// rename into seg/ is the commit point. Everything short of the
	// rename leaves no trace a coordinator could mistake for a segment.
	if err := os.Rename(journalIn(workDir, sw.ID), l.segPath(cfg.Lease)); err != nil {
		return nil, fmt.Errorf("shard: commit segment: %w", err)
	}
	syncDir(l.segDir())
	_ = os.RemoveAll(workDir)
	return res, nil
}

// journalIn is where engine.Run's checkpoint journal for sw lives under
// dir (mirrors the engine's journal naming).
func journalIn(dir, sweepID string) string {
	return filepath.Join(dir, sweepID+".journal")
}
