package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"wrsn/internal/charging"
	"wrsn/internal/energy"
	"wrsn/internal/engine"
	"wrsn/internal/geom"
	"wrsn/internal/model"
)

// testSweep mirrors the engine test fixture: 2 points × 3 seeds × 2
// algorithms = 12 cells, every cell finishing in milliseconds.
func testSweep() *engine.Sweep {
	sw := &engine.Sweep{
		ID:       "shard-test-sweep",
		Title:    "shard test sweep",
		XLabel:   "nodes",
		YLabel:   "cost",
		Seeds:    3,
		BaseSeed: 7,
	}
	for _, nodes := range []int{12, 16} {
		nodes := nodes
		sw.Points = append(sw.Points, engine.Point{
			X:     float64(nodes),
			Label: fmt.Sprintf("%d nodes", nodes),
			Gen: engine.ProblemGen(func(rng *rand.Rand) (*model.Problem, error) {
				field := geom.Square(120)
				for attempt := 0; attempt < 1000; attempt++ {
					p := &model.Problem{
						Posts:    field.RandomPoints(rng, 5),
						BS:       field.Corner(),
						Nodes:    nodes,
						Energy:   energy.Default(),
						Charging: charging.Default(),
					}
					if err := p.Validate(); err == nil {
						return p, nil
					}
				}
				return nil, errors.New("no connected test instance")
			}),
		})
	}
	for _, name := range []string{"rfh", "idb"} {
		solve := engine.MustSolver(name)
		label := name
		sw.Algorithms = append(sw.Algorithms, engine.Algorithm{
			Label:   label,
			Outputs: []engine.SeriesSpec{{Label: label, CI: true}},
			Run: func(ctx context.Context, inst *engine.Instance) (engine.CellResult, error) {
				res, err := solve(ctx, inst.Problem())
				if err != nil {
					return engine.CellResult{}, err
				}
				return engine.CellResult{Values: []float64{res.Cost}, Evaluations: res.Evaluations}, nil
			},
		})
	}
	return sw
}

func figureJSON(t *testing.T, res *engine.Result) string {
	t.Helper()
	buf, err := json.Marshal(res.Figure)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// rawBits flattens Result.Raw to Float64bits so comparisons are
// bit-exact, not merely approximately equal.
func rawBits(res *engine.Result) []uint64 {
	var bits []uint64
	for _, alg := range res.Raw {
		for _, pt := range alg {
			for _, seeds := range pt {
				for _, v := range seeds {
					bits = append(bits, math.Float64bits(v))
				}
			}
		}
	}
	return bits
}

func bitsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// inprocHandle runs one RunWorker call in a goroutine.
type inprocHandle struct {
	cancel  context.CancelFunc
	done    chan struct{}
	err     error
	release chan struct{} // zombie leases: Kill releases the wedge instead of cancelling
	killed  sync.Once
}

func (h *inprocHandle) Wait() error { <-h.done; return h.err }

func (h *inprocHandle) Kill() {
	h.killed.Do(func() {
		if h.release != nil {
			// Zombie mode: the "revoked" worker survives the kill, wakes
			// from its wedge, and commits a stale segment before the
			// coordinator proceeds — the worst-case fencing scenario.
			close(h.release)
			<-h.done
			return
		}
		h.cancel()
	})
}

// inprocLauncher runs workers as goroutines in this process, with
// per-lease hooks for chaos config and zombie wedges.
type inprocLauncher struct {
	spool   string
	hbEvery time.Duration
	run     func(lease Lease) engine.RunConfig // nil = zero config
	zombie  func(lease Lease) bool             // nil = never
	// startErr, when non-nil, may refuse a grant (coordinator-crash
	// simulation). Called before the worker starts.
	startErr func(lease Lease) error
}

func (il *inprocLauncher) Start(ctx context.Context, lease Lease) (Handle, error) {
	if il.startErr != nil {
		if err := il.startErr(lease); err != nil {
			return nil, err
		}
	}
	var runCfg engine.RunConfig
	if il.run != nil {
		runCfg = il.run(lease)
	}
	wctx, cancel := context.WithCancel(context.Background())
	h := &inprocHandle{cancel: cancel, done: make(chan struct{})}
	cfg := WorkerConfig{
		Spool:          il.spool,
		Lease:          lease,
		Run:            runCfg,
		HeartbeatEvery: il.hbEvery,
	}
	if il.zombie != nil && il.zombie(lease) {
		h.release = make(chan struct{})
		cfg.wedgeRelease = h.release
	}
	go func() {
		defer close(h.done)
		defer cancel()
		_, h.err = RunWorker(wctx, testSweep(), cfg)
	}()
	return h, nil
}

// TestCoordinateDifferential is the tentpole acceptance test: for
// N ∈ {1, 2, 4} workers, with chaos killing at least one worker
// mid-shard, the coordinated merged Result is byte-identical
// (Float64bits and figure JSON) to a clean in-process workers=1 run.
func TestCoordinateDifferential(t *testing.T) {
	clean, err := engine.Run(context.Background(), testSweep(), engine.RunConfig{Workers: 1})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	cleanJSON := figureJSON(t, clean)
	cleanBits := rawBits(clean)

	// Fixed shard size so the fault schedule — drawn from (sweep, range,
	// epoch) — is identical at every worker count. The seed is chosen so
	// some first-epoch draws kill and their re-grants survive.
	chaos := &engine.ChaosConfig{Seed: 11, WorkerKillFrac: 0.6}
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			launch := &inprocLauncher{
				spool:   t.TempDir(),
				hbEvery: 20 * time.Millisecond,
				run:     func(Lease) engine.RunConfig { return engine.RunConfig{Workers: 1, Chaos: chaos} },
			}
			res, report, err := Coordinate(context.Background(), testSweep(), engine.RunConfig{}, Config{
				Spool:     launch.spool,
				Workers:   workers,
				ShardSize: 3,
				LeaseTTL:  2 * time.Second,
				Poll:      20 * time.Millisecond,
				MaxEpochs: 8,
				Launch:    launch,
			})
			if err != nil {
				t.Fatalf("coordinate: %v", err)
			}
			if report.Exited == 0 {
				t.Fatalf("chaos killed no worker mid-shard (granted %d): the differential proves nothing", report.Granted)
			}
			if report.Granted <= report.Shards {
				t.Errorf("granted %d leases over %d shards: no shard was re-granted after its kill", report.Granted, report.Shards)
			}
			if got := figureJSON(t, res); got != cleanJSON {
				t.Errorf("merged figure JSON differs from clean run:\n%s\nvs\n%s", got, cleanJSON)
			}
			if !bitsEqual(rawBits(res), cleanBits) {
				t.Errorf("merged raw values differ from clean run (Float64bits)")
			}
			if res.Resumed != engine.CellCount(testSweep()) {
				t.Errorf("merge replay restored %d cells, want %d", res.Resumed, engine.CellCount(testSweep()))
			}
		})
	}
}

// TestZombieLeaseFenced drives the epoch-fencing invariant end to end:
// a worker wedges mid-shard, its heartbeats go silent, the lease
// expires and is revoked — but the zombie survives the revocation,
// wakes up, and commits its stale-epoch segment BEFORE the re-granted
// worker runs. The merge must provably reject the zombie's segment and
// still produce a byte-identical Result.
func TestZombieLeaseFenced(t *testing.T) {
	clean, err := engine.Run(context.Background(), testSweep(), engine.RunConfig{Workers: 1})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	spool := t.TempDir()
	wedged := Lease{Sweep: "shard-test-sweep", Start: 0, End: 6, Epoch: 1}
	launch := &inprocLauncher{
		spool:   spool,
		hbEvery: 20 * time.Millisecond,
		run: func(lease Lease) engine.RunConfig {
			if sameGrant(lease, wedged) {
				// First epoch of shard 0 wedges halfway through its cells.
				return engine.RunConfig{Workers: 1, Chaos: &engine.ChaosConfig{Seed: 1, WorkerWedgeFrac: 1}}
			}
			return engine.RunConfig{Workers: 1}
		},
		zombie: func(lease Lease) bool { return sameGrant(lease, wedged) },
	}
	res, report, err := Coordinate(context.Background(), testSweep(), engine.RunConfig{}, Config{
		Spool:     spool,
		Workers:   2,
		ShardSize: 6,
		LeaseTTL:  250 * time.Millisecond,
		Poll:      25 * time.Millisecond,
		Launch:    launch,
	})
	if err != nil {
		t.Fatalf("coordinate: %v", err)
	}
	if report.Revoked == 0 {
		t.Fatal("the wedged worker's lease was never revoked")
	}
	var fenced bool
	for _, rej := range report.Rejected {
		if strings.Contains(rej.Reason, "fenced zombie segment") {
			fenced = true
		}
	}
	if !fenced {
		t.Fatalf("no segment was epoch-fenced; rejected: %+v", report.Rejected)
	}
	if got, want := figureJSON(t, res), figureJSON(t, clean); got != want {
		t.Errorf("figure JSON differs from clean run after fencing:\n%s\nvs\n%s", got, want)
	}
	if !bitsEqual(rawBits(res), rawBits(clean)) {
		t.Errorf("raw values differ from clean run after fencing")
	}
}

// sameGrant matches leases by (range, epoch); the Worker name is
// coordinator-assigned and irrelevant to identity.
func sameGrant(a, b Lease) bool {
	return a.Start == b.Start && a.End == b.End && a.Epoch == b.Epoch
}

// TestCoordinatorRestart simulates a coordinator crash after one shard's
// segment is committed but before the lease table marks it done, then
// restarts against the same spool: the committed segment must be
// restored (not re-run), only the unfinished shard re-granted, and the
// final Result byte-identical to a clean run.
func TestCoordinatorRestart(t *testing.T) {
	clean, err := engine.Run(context.Background(), testSweep(), engine.RunConfig{Workers: 1})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	spool := t.TempDir()
	l := newLayout(spool)

	// First life: shard 0's worker runs normally; the grant for shard 1
	// waits until shard 0's segment is committed, then fails, killing the
	// coordinator mid-protocol with durable state behind it.
	firstSeg := l.segPath(Lease{Sweep: "shard-test-sweep", Start: 0, End: 6, Epoch: 1})
	launch1 := &inprocLauncher{
		spool:   spool,
		hbEvery: 20 * time.Millisecond,
		startErr: func(lease Lease) error {
			if lease.Start == 0 {
				return nil
			}
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				if _, err := os.Stat(firstSeg); err == nil {
					return errors.New("simulated coordinator crash")
				}
				time.Sleep(10 * time.Millisecond)
			}
			return errors.New("shard 0 never committed")
		},
	}
	_, _, err = Coordinate(context.Background(), testSweep(), engine.RunConfig{}, Config{
		Spool: spool, Workers: 1, ShardSize: 6, Launch: launch1,
	})
	if err == nil || !strings.Contains(err.Error(), "simulated coordinator crash") {
		t.Fatalf("first coordinator life: want simulated crash, got %v", err)
	}

	// Second life: same spool, healthy launcher. Shard 0 must be restored
	// from its committed segment; only shard 1 runs.
	launch2 := &inprocLauncher{spool: spool, hbEvery: 20 * time.Millisecond}
	res, report, err := Coordinate(context.Background(), testSweep(), engine.RunConfig{}, Config{
		Spool: spool, Workers: 1, ShardSize: 6, Launch: launch2,
	})
	if err != nil {
		t.Fatalf("restarted coordinator: %v", err)
	}
	if report.RestoredShards != 1 {
		t.Errorf("restored %d shards, want 1", report.RestoredShards)
	}
	if report.Granted != 1 {
		t.Errorf("restarted coordinator granted %d leases, want 1 (only the unfinished shard)", report.Granted)
	}
	if got, want := figureJSON(t, res), figureJSON(t, clean); got != want {
		t.Errorf("figure JSON differs from clean run after restart:\n%s\nvs\n%s", got, want)
	}
	if !bitsEqual(rawBits(res), rawBits(clean)) {
		t.Errorf("raw values differ from clean run after restart")
	}
}

// TestRestartRejectsForeignSpool: a restarted coordinator pointed at a
// spool whose lease table belongs to a different sweep configuration
// must refuse, not merge unrelated segments.
func TestRestartRejectsForeignSpool(t *testing.T) {
	spool := t.TempDir()
	launch := &inprocLauncher{spool: spool, hbEvery: 20 * time.Millisecond}
	if _, _, err := Coordinate(context.Background(), testSweep(), engine.RunConfig{}, Config{
		Spool: spool, Workers: 2, Launch: launch,
	}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	other := testSweep()
	other.BaseSeed = 999 // different seeding = different sweep identity
	_, _, err := Coordinate(context.Background(), other, engine.RunConfig{}, Config{
		Spool: spool, Workers: 2, Launch: launch,
	})
	if err == nil || !strings.Contains(err.Error(), "different sweep configuration") {
		t.Fatalf("want sweep-configuration refusal, got %v", err)
	}
}

// TestMergeSpool exercises the standalone (coordinator-less) merge: two
// hand-run workers covering complementary ranges, then MergeSpool.
func TestMergeSpool(t *testing.T) {
	clean, err := engine.Run(context.Background(), testSweep(), engine.RunConfig{Workers: 1})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	spool := t.TempDir()
	for _, rng := range [][2]int{{0, 7}, {7, 12}} {
		lease := Lease{Sweep: "shard-test-sweep", Start: rng[0], End: rng[1], Epoch: 1, Worker: "hand"}
		if _, err := RunWorker(context.Background(), testSweep(), WorkerConfig{
			Spool: spool, Lease: lease, Run: engine.RunConfig{Workers: 2},
		}); err != nil {
			t.Fatalf("worker [%d,%d): %v", rng[0], rng[1], err)
		}
	}
	res, rejected, err := MergeSpool(context.Background(), testSweep(), engine.RunConfig{}, spool)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if len(rejected) != 0 {
		t.Errorf("merge rejected %+v, want none", rejected)
	}
	if got, want := figureJSON(t, res), figureJSON(t, clean); got != want {
		t.Errorf("merged figure JSON differs from clean run")
	}
	if !bitsEqual(rawBits(res), rawBits(clean)) {
		t.Errorf("merged raw values differ from clean run")
	}
}

// TestMergeSpoolRefusesGaps: segments that do not tile the grid must be
// an error, never a silent partial merge.
func TestMergeSpoolRefusesGaps(t *testing.T) {
	spool := t.TempDir()
	lease := Lease{Sweep: "shard-test-sweep", Start: 0, End: 6, Epoch: 1}
	if _, err := RunWorker(context.Background(), testSweep(), WorkerConfig{
		Spool: spool, Lease: lease, Run: engine.RunConfig{Workers: 1},
	}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	_, _, err := MergeSpool(context.Background(), testSweep(), engine.RunConfig{}, spool)
	if err == nil || !strings.Contains(err.Error(), "do not tile the grid") {
		t.Fatalf("want tiling refusal, got %v", err)
	}
}

// TestWorkerChaosKillLeavesNoSegment: a chaos-killed worker must commit
// nothing — the spool's seg/ directory stays empty.
func TestWorkerChaosKillLeavesNoSegment(t *testing.T) {
	spool := t.TempDir()
	l := newLayout(spool)
	lease := Lease{Sweep: "shard-test-sweep", Start: 0, End: 12, Epoch: 1}
	_, err := RunWorker(context.Background(), testSweep(), WorkerConfig{
		Spool: spool,
		Lease: lease,
		Run:   engine.RunConfig{Workers: 1, Chaos: &engine.ChaosConfig{Seed: 3, WorkerKillFrac: 1}},
	})
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("want ErrKilled, got %v", err)
	}
	entries, err := os.ReadDir(l.segDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("killed worker left %d segment files, want none", len(entries))
	}
}
