// Package shard scales a Sweep past one process: a coordinator
// partitions the sweep's canonical cell grid into contiguous cell-range
// shards, hands them to worker processes as revocable leases (shard
// range + attempt epoch + heartbeat deadline), and merges the journal
// segments the workers commit back into a single Result that is
// byte-identical to a clean single-process engine.Run.
//
// # Protocol
//
// All coordination happens through an addressable spool directory, so
// the same protocol works for coordinator-spawned workers on one
// machine and hand-launched workers sharing a filesystem:
//
//	<spool>/
//	  state-<sweepID>.json   coordinator lease table (atomic writes)
//	  seg/<leaseID>.journal  committed segments (atomic rename)
//	  hb/<leaseID>.hb        worker heartbeats (mtime = liveness)
//	  work/<leaseID>/        private per-lease journal dirs
//	  merged/<sweepID>/      merged journal replayed into the Result
//
// A worker executes its shard through engine.Run with RunConfig.Shard,
// journaling every cell to a private work dir, and commits by renaming
// the finished journal into seg/ — rename is the commit point, so a
// segment file either exists complete or not at all (and is CRC-verified
// again at merge). Liveness is the heartbeat file's mtime; a lease whose
// heartbeat goes stale past the TTL is revoked and its shard re-granted
// under a higher epoch.
//
// # Epoch fencing
//
// Every grant of a shard — including re-grants after a revocation —
// carries a strictly increasing epoch, persisted before the worker is
// launched. A segment is accepted only if its self-described lease
// epoch equals the shard's latest granted epoch: a zombie worker (one
// that was revoked but kept running) commits a segment under a stale
// epoch, which the merge provably rejects rather than double-merging.
// Because cells are deterministic, fencing is about attribution and
// at-most-once accounting, not value safety — a stale segment carries
// the same values, and the invariant the merge enforces is that exactly
// one segment per shard, the fenced one, contributes.
//
// # Crash matrix
//
// Worker crash (SIGKILL): no segment is committed; the exit is observed
// (or the heartbeat goes stale) and the shard is re-granted. Wedged
// worker: heartbeats stop, the lease TTL expires, the lease is revoked
// and re-granted; if the zombie later commits, its stale epoch is
// fenced out. Coordinator crash: the lease table and committed segments
// survive in the spool; a restarted coordinator resumes from them,
// re-granting only uncovered shards under fresh epochs. Merge:
// segments are CRC-checked, header-matched, completeness-checked and
// epoch-fenced, then replayed through the engine's checkpoint-resume
// path — the merged Result's values are byte-identical (Float64bits) to
// a workers=1 in-process run.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"wrsn/internal/engine"
)

// layout resolves the spool directory structure.
type layout struct{ root string }

func newLayout(root string) layout { return layout{root: root} }

func (l layout) segDir() string   { return filepath.Join(l.root, "seg") }
func (l layout) hbDir() string    { return filepath.Join(l.root, "hb") }
func (l layout) workRoot() string { return filepath.Join(l.root, "work") }

func (l layout) segPath(lease engine.LeaseMeta) string {
	return filepath.Join(l.segDir(), lease.ID()+".journal")
}

func (l layout) heartbeatPath(lease engine.LeaseMeta) string {
	return filepath.Join(l.hbDir(), lease.ID()+".hb")
}

func (l layout) workDir(lease engine.LeaseMeta) string {
	return filepath.Join(l.workRoot(), lease.ID())
}

func (l layout) mergedDir(sweepID string) string {
	return filepath.Join(l.root, "merged", sweepID)
}

func (l layout) statePath(sweepID string) string {
	return filepath.Join(l.root, "state-"+sweepID+".json")
}

// ensure creates the spool's fixed subdirectories.
func (l layout) ensure() error {
	for _, dir := range []string{l.root, l.segDir(), l.hbDir(), l.workRoot()} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("shard: spool: %w", err)
		}
	}
	return nil
}

// writeFileAtomic writes data to path via a same-directory temp file,
// fsync and rename, so readers never observe a partial file and a crash
// mid-write leaves any previous version intact.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	discard := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return discard(err)
	}
	if err := f.Sync(); err != nil {
		return discard(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// writeJSONAtomic marshals v and writes it atomically to path.
func writeJSONAtomic(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}

// syncDir fsyncs a directory so renames into it survive a crash
// (best-effort: not every filesystem supports directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
