package shard

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wrsn/internal/engine"
)

// Lease is a revocable grant of one cell-range shard to one worker.
// The wire representation (journal segment headers, CLI flags) is
// engine.LeaseMeta; this package adds only protocol behaviour.
type Lease = engine.LeaseMeta

// ParseRange parses a "start:end" cell-range flag into [start, end).
func ParseRange(s string) (start, end int, err error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("shard: range %q is not start:end", s)
	}
	start, err1 := strconv.Atoi(lo)
	end, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || start < 0 || start > end {
		return 0, 0, fmt.Errorf("shard: range %q is not a valid start:end cell range", s)
	}
	return start, end, nil
}

// writeHeartbeat touches the lease's heartbeat file; the file's mtime is
// the liveness signal the coordinator watches. The payload (done-cell
// count) is informational.
func writeHeartbeat(l layout, lease Lease, done int) error {
	return writeFileAtomic(l.heartbeatPath(lease), []byte(fmt.Sprintf("{\"done\":%d}\n", done)))
}

// lastBeat returns the heartbeat file's mtime, or the zero time if the
// worker has not beaten yet.
func lastBeat(l layout, lease Lease) time.Time {
	st, err := os.Stat(l.heartbeatPath(lease))
	if err != nil {
		return time.Time{}
	}
	return st.ModTime()
}
