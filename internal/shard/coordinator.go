package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"wrsn/internal/engine"
)

// Launcher starts workers for leases. The coordinator is agnostic to
// where a worker runs: cmd/wrsn-experiments launches subprocesses of
// itself, the test suite runs workers in-process.
type Launcher interface {
	// Start launches a worker executing lease. The worker is expected
	// to commit its segment into the spool and exit; Start returns as
	// soon as the worker is running.
	Start(ctx context.Context, lease Lease) (Handle, error)
}

// Handle controls one launched worker.
type Handle interface {
	// Wait blocks until the worker exits and reports its failure, if
	// any. The coordinator calls Wait exactly once per handle.
	Wait() error
	// Kill force-stops the worker (lease revocation). Killing an
	// already-exited worker is a no-op.
	Kill()
}

// Config tunes the coordinator.
type Config struct {
	// Spool is the shared coordination directory (required). A restarted
	// coordinator pointed at the same spool resumes from its persisted
	// lease table and committed segments.
	Spool string
	// Workers is how many leases run concurrently (>= 1).
	Workers int
	// ShardSize is the cells per shard (0 = automatic: about four
	// shards per worker, so a lost shard costs a fraction of a worker's
	// share of the sweep).
	ShardSize int
	// LeaseTTL is how long a lease may go without a heartbeat before it
	// is revoked and its shard re-granted (default 15s).
	LeaseTTL time.Duration
	// Poll is the coordinator's segment/heartbeat polling period
	// (default LeaseTTL/10, at most 200ms).
	Poll time.Duration
	// MaxEpochs bounds lease grants per shard, first grant included,
	// before the coordinator gives up (default 5).
	MaxEpochs int
	// Launch starts workers (required).
	Launch Launcher
	// Log, when non-nil, receives one line per protocol event (grants,
	// commits, revocations, rejected segments).
	Log func(format string, args ...interface{})
}

// Report summarises one coordinated run's protocol activity.
type Report struct {
	// Shards is the number of cell-range shards in the plan.
	Shards int
	// Granted counts lease grants, re-grants after failures included.
	Granted int
	// Revoked counts leases revoked for stale heartbeats (wedged or
	// silently dead workers).
	Revoked int
	// Exited counts workers that exited without committing a valid
	// segment (crashes, chaos kills, cell failures).
	Exited int
	// RestoredShards counts shards already covered by a committed
	// segment when the coordinator started — a restart resuming spool
	// state rather than re-running work.
	RestoredShards int
	// Rejected lists segments the merge fenced out or refused.
	Rejected []RejectedSegment
}

// shardState is one shard's persisted lease state.
type shardState struct {
	Start int   `json:"start"`
	End   int   `json:"end"`
	Epoch int64 `json:"epoch"` // latest granted epoch (0 = never granted)
	Done  bool  `json:"done"`  // a segment for Epoch is committed
}

// coordState is the coordinator's persisted lease table. It is written
// atomically before every lease grant and after every commit, so a
// coordinator crash at any point leaves a spool a restart can resume:
// epochs never regress, which is what makes the fencing sound across
// restarts.
type coordState struct {
	Signature string       `json:"signature"`
	Shards    []shardState `json:"shards"`
}

// Coordinate runs sw to completion across worker processes: it
// partitions the grid into shards, grants them as leases through
// cfg.Launch, re-grants shards whose workers die or wedge, and merges
// the committed segments into a Result whose values are byte-identical
// (Float64bits) to a clean in-process engine.Run. runCfg carries the
// caller's Progress/Limiter for the merge replay; its Checkpoint and
// Shard must be unset — the coordinator owns journaling.
func Coordinate(ctx context.Context, sw *engine.Sweep, runCfg engine.RunConfig, cfg Config) (*engine.Result, *Report, error) {
	if cfg.Spool == "" {
		return nil, nil, errors.New("shard: coordinator needs a spool directory")
	}
	if cfg.Launch == nil {
		return nil, nil, errors.New("shard: coordinator needs a Launcher")
	}
	if runCfg.Checkpoint != nil || runCfg.Shard != nil {
		return nil, nil, errors.New("shard: Coordinate owns journaling; RunConfig.Checkpoint and Shard must be unset")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.LeaseTTL / 10
		if cfg.Poll > 200*time.Millisecond {
			cfg.Poll = 200 * time.Millisecond
		}
	}
	if cfg.MaxEpochs < 1 {
		cfg.MaxEpochs = 5
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	l := newLayout(cfg.Spool)
	if err := l.ensure(); err != nil {
		return nil, nil, err
	}

	st, restored, err := loadOrPlanState(l, sw, cfg)
	if err != nil {
		return nil, nil, err
	}
	report := &Report{Shards: len(st.Shards)}
	persist := func() error {
		if err := writeJSONAtomic(l.statePath(sw.ID), st); err != nil {
			return fmt.Errorf("shard: persist lease table: %w", err)
		}
		return nil
	}

	// Restart recovery: shards the previous coordinator marked done, plus
	// shards whose latest-epoch segment was committed by a worker that
	// outlived the crash, need no re-running.
	if restored {
		for i := range st.Shards {
			s := &st.Shards[i]
			if !s.Done && s.Epoch > 0 {
				lease := Lease{Sweep: sw.ID, Start: s.Start, End: s.End, Epoch: s.Epoch}
				if _, err := engine.ReadSegment(l.segPath(lease), sw); err == nil {
					s.Done = true
				}
			}
			if s.Done {
				report.RestoredShards++
				logf("shard: restored committed segment for cells [%d,%d) epoch %d", s.Start, s.End, s.Epoch)
			}
		}
	}
	if err := persist(); err != nil {
		return nil, report, err
	}

	type exitEvent struct {
		shard int
		epoch int64
		err   error
	}
	exitCh := make(chan exitEvent, len(st.Shards)+cfg.Workers)
	type activeLease struct {
		lease   Lease
		handle  Handle
		granted time.Time
	}
	actives := map[int]*activeLease{}
	killAll := func() {
		for _, a := range actives {
			a.handle.Kill()
		}
	}

	allDone := func() bool {
		for i := range st.Shards {
			if !st.Shards[i].Done {
				return false
			}
		}
		return true
	}

	// accept checks whether shard i's current lease has committed a
	// valid segment, and marks the shard done if so.
	accept := func(i int) (bool, error) {
		a := actives[i]
		if a == nil {
			return false, nil
		}
		if _, err := engine.ReadSegment(l.segPath(a.lease), sw); err != nil {
			// Missing (not committed yet) or present but invalid: either
			// way not accepted; the worker's exit or lease expiry will
			// re-grant, and the merge would reject an invalid file anyway.
			return false, nil
		}
		st.Shards[i].Done = true
		delete(actives, i)
		logf("shard: committed %s", a.lease)
		return true, persist()
	}

	grant := func(i int) error {
		s := &st.Shards[i]
		if s.Epoch >= int64(cfg.MaxEpochs) {
			return fmt.Errorf("shard: shard [%d,%d) failed after %d lease attempts", s.Start, s.End, s.Epoch)
		}
		s.Epoch++
		// Persist the epoch before the worker exists: a crash between
		// the two re-grants with a higher epoch, and no segment the old
		// epoch could commit is ever current.
		if err := persist(); err != nil {
			return err
		}
		lease := Lease{Sweep: sw.ID, Start: s.Start, End: s.End, Epoch: s.Epoch,
			Worker: fmt.Sprintf("shard%d-e%d", i, s.Epoch)}
		h, err := cfg.Launch.Start(ctx, lease)
		if err != nil {
			return fmt.Errorf("shard: launch worker for %s: %w", lease, err)
		}
		actives[i] = &activeLease{lease: lease, handle: h, granted: time.Now()}
		report.Granted++
		logf("shard: granted %s", lease)
		go func(shard int, epoch int64, h Handle) {
			exitCh <- exitEvent{shard: shard, epoch: epoch, err: h.Wait()}
		}(i, s.Epoch, h)
		return nil
	}

	ticker := time.NewTicker(cfg.Poll)
	defer ticker.Stop()
	for !allDone() {
		// Fill free worker slots with pending shards, in plan order.
		for i := range st.Shards {
			if len(actives) >= cfg.Workers {
				break
			}
			if st.Shards[i].Done || actives[i] != nil {
				continue
			}
			if err := grant(i); err != nil {
				killAll()
				return nil, report, err
			}
		}
		if allDone() {
			break
		}

		select {
		case ev := <-exitCh:
			a := actives[ev.shard]
			if a == nil || a.lease.Epoch != ev.epoch {
				// A revoked (or already-accepted) lease's worker exiting
				// late: the epoch fence makes it irrelevant.
				continue
			}
			ok, err := accept(ev.shard)
			if err != nil {
				killAll()
				return nil, report, err
			}
			if !ok {
				delete(actives, ev.shard)
				report.Exited++
				logf("shard: worker for %s exited without a segment: %v", a.lease, ev.err)
			}
		case <-ticker.C:
			now := time.Now()
			for i, a := range actives {
				ok, err := accept(i)
				if err != nil {
					killAll()
					return nil, report, err
				}
				if ok {
					continue
				}
				beat := lastBeat(l, a.lease)
				if beat.Before(a.granted) {
					beat = a.granted
				}
				if now.Sub(beat) > cfg.LeaseTTL {
					a.handle.Kill()
					delete(actives, i)
					report.Revoked++
					logf("shard: revoked %s: heartbeat stale for %s", a.lease, now.Sub(beat).Round(time.Millisecond))
				}
			}
		case <-ctx.Done():
			killAll()
			return nil, report, fmt.Errorf("shard: coordinator interrupted: %w", context.Cause(ctx))
		}
	}

	expect := make(map[[2]int]int64, len(st.Shards))
	for i := range st.Shards {
		s := &st.Shards[i]
		expect[[2]int{s.Start, s.End}] = s.Epoch
	}
	res, rejected, err := mergeSegments(ctx, sw, runCfg, l, expect)
	report.Rejected = rejected
	for _, r := range rejected {
		logf("shard: merge rejected %s: %s", r.Path, r.Reason)
	}
	return res, report, err
}

// loadOrPlanState loads the persisted lease table for sw from the
// spool, or plans a fresh one. restored reports whether existing state
// was found.
func loadOrPlanState(l layout, sw *engine.Sweep, cfg Config) (*coordState, bool, error) {
	sig := engine.SweepSignature(sw)
	path := l.statePath(sw.ID)
	if data, err := os.ReadFile(path); err == nil {
		var st coordState
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, false, fmt.Errorf("shard: lease table %s: %w", path, err)
		}
		if st.Signature != sig {
			return nil, false, fmt.Errorf("shard: lease table %s belongs to a different sweep configuration", path)
		}
		return &st, true, nil
	} else if !os.IsNotExist(err) {
		return nil, false, err
	}

	cells := engine.CellCount(sw)
	size := cfg.ShardSize
	if size <= 0 {
		size = (cells + 4*cfg.Workers - 1) / (4 * cfg.Workers)
	}
	if size < 1 {
		size = 1
	}
	st := &coordState{Signature: sig}
	for at := 0; at < cells; at += size {
		end := at + size
		if end > cells {
			end = cells
		}
		st.Shards = append(st.Shards, shardState{Start: at, End: end})
	}
	if len(st.Shards) == 0 {
		return nil, false, fmt.Errorf("shard: sweep %s has no cells", sw.ID)
	}
	return st, false, nil
}
