package graph

import (
	"math"
	"math/bits"
)

// MaxWeightRatio bounds wmax/wmin for bucket mode. Beyond it the dial
// ring gets too wide to be worth the memory and Configure falls back to
// heap mode.
const MaxWeightRatio = 4096

// MinBucketKeys is the scale half of the applicability rule: bucket mode
// engages only for queues over at least this many keys. Below it the
// embedded binary heap's cache-resident sift is measurably faster than
// the dial's per-op constant (bucket-id arithmetic, occupancy-bitset
// maintenance, ring scans) — on the paper-scale suite (up to ~300 posts)
// heap mode wins every figure, which is why the default keeps small
// queues on the heap. A var, not a const, so tests and large-instance
// callers can tune it; both modes pop in the same (priority, key) order,
// so the setting never affects results.
var MinBucketKeys = 1024

// BucketQueue is a monotone priority queue over the integer keys 0..n-1
// with float64 priorities, the Dijkstra companion for the recharging-cost
// weight structure: edge weights drawn from k discrete power levels
// cluster in a narrow band [wmin, wmax], so a dial/bucket queue with
// bucket width wmin/2 replaces O(log n) heap sifts with O(1) bucket
// appends. Keys are unique (a second Push of a live key is a
// decrease/increase-key). Pop order is by (priority, key) — the same
// total order IndexedMinHeap uses — so the two structures produce
// identical pop sequences for identical Push traces; the differential
// fuzzer pins this.
//
// Mode is chosen by Configure from the weight bounds (the applicability
// rule): bucket mode requires wmin > 0, wmax finite, and
// wmax/wmin <= MaxWeightRatio; otherwise the queue transparently runs on
// an embedded IndexedMinHeap. Callers use one concrete type either way —
// no interface dispatch in the relax loop.
//
// Bucket mode internals: priorities map to absolute bucket ids
// floor((p-base)*inv). The ring holds the window [curID, curID+nb);
// entries beyond it wait in an overflow list that is drained as the dial
// advances. Until the first Pop the origin is unknown (seeded multi-source
// runs push arbitrary distances first), so pushes stage in a flat list and
// the first Pop sets base to the staged minimum. All per-key and
// per-bucket state is epoch-stamped: Reset is O(1) and never touches the
// ring.
type BucketQueue struct {
	n        int
	bucketed bool
	h        *IndexedMinHeap // heap mode (and the fallback target)

	// Geometry (bucket mode).
	width float64
	inv   float64
	nb    int   // ring size, power of two
	mask  int64 // nb-1
	wmin  float64
	wmax  float64

	epoch int64
	count int

	// Per-key state, epoch-stamped via kEpoch.
	prio   []float64
	bkt    []int64 // absolute bucket id; bktStaged / bktOverflow when not in ring
	slot   []int32 // index within its bucket / staging / overflow slice
	kEpoch []int64

	// Ring, epoch-stamped via bEpoch; occupancy bitset stamped via wEpoch.
	buckets [][]int32
	bEpoch  []int64
	occ     []uint64
	wEpoch  []int64

	staging  []int32
	overflow []int32
	minOver  int64
	haveBase bool
	base     float64
	curID    int64
	sortedID int64 // bucket id kept sorted (descending (prio,key)); -1 none
}

const (
	bktStaged   = int64(-2)
	bktOverflow = int64(-3)
)

// NewBucketQueue returns a queue over keys 0..n-1 in heap mode. Call
// Configure with the weight bounds to enable bucket mode.
func NewBucketQueue(n int) *BucketQueue {
	return &BucketQueue{
		n:        n,
		h:        NewIndexedMinHeap(n),
		epoch:    1,
		minOver:  math.MaxInt64,
		sortedID: -1,
	}
}

// Configure picks the queue mode from the bounds on the edge weights that
// subsequent runs will relax with: bucket mode iff the queue spans at
// least MinBucketKeys keys, 0 < wmin <= wmax, wmax finite, and
// wmax/wmin <= MaxWeightRatio. The queue must be empty. Reconfiguring
// with the same bounds is free, so callers may invoke it before every
// run.
func (q *BucketQueue) Configure(wmin, wmax float64) {
	if q.count != 0 || (q.h != nil && q.h.Len() != 0) {
		panic("graph: BucketQueue.Configure on a non-empty queue")
	}
	if q.bucketed && wmin == q.wmin && wmax == q.wmax {
		return
	}
	q.bucketed = q.n >= MinBucketKeys && wmin > 0 && wmax >= wmin && !math.IsInf(wmax, 1) && wmax/wmin <= MaxWeightRatio
	if !q.bucketed {
		return
	}
	q.wmin, q.wmax = wmin, wmax
	q.width = wmin / 2
	q.inv = 1 / q.width
	// Ring window: relax pushes land within wmax of the current popped
	// priority, i.e. within wmax/width = 2*ratio buckets; double it for
	// slack so overflow stays a seed-phase-only path.
	span := int(math.Ceil(wmax/q.width))*2 + 16
	nb := 1 << bits.Len(uint(span))
	if q.nb != nb {
		q.nb = nb
		q.mask = int64(nb - 1)
		q.buckets = make([][]int32, nb)
		q.bEpoch = make([]int64, nb)
		q.occ = make([]uint64, (nb+63)/64)
		q.wEpoch = make([]int64, (nb+63)/64)
	}
	if q.prio == nil {
		q.prio = make([]float64, q.n)
		q.bkt = make([]int64, q.n)
		q.slot = make([]int32, q.n)
		q.kEpoch = make([]int64, q.n)
	}
}

// Bucketed reports whether the queue is running in bucket (dial) mode.
func (q *BucketQueue) Bucketed() bool { return q.bucketed }

// Heap exposes the embedded IndexedMinHeap so heap-mode hot loops can
// push/pop on the concrete heap without the mode-dispatch call per
// operation (the dispatching wrappers are beyond the inlining budget,
// and a relax loop performs millions of queue operations). Callers must
// only drive the heap directly while !Bucketed(); mixing direct heap use
// with bucket mode corrupts the queue.
func (q *BucketQueue) Heap() *IndexedMinHeap {
	if q.bucketed {
		panic("graph: BucketQueue.Heap while in bucket mode")
	}
	return q.h
}

// Len returns the number of keys currently queued.
func (q *BucketQueue) Len() int {
	if !q.bucketed {
		return q.h.Len()
	}
	return q.count
}

// Reset empties the queue in O(1) (bucket mode bumps the epoch stamp;
// heap mode delegates) so it can be reused for a fresh run.
func (q *BucketQueue) Reset() {
	if !q.bucketed {
		q.h.Reset()
		return
	}
	q.epoch++
	q.count = 0
	q.staging = q.staging[:0]
	q.overflow = q.overflow[:0]
	q.minOver = math.MaxInt64
	q.haveBase = false
	q.curID = 0
	q.sortedID = -1
}

func (q *BucketQueue) id(p float64) int64 {
	return int64(math.Floor((p - q.base) * q.inv))
}

func (q *BucketQueue) live(key int) bool {
	return q.kEpoch[key] == q.epoch && q.bkt[key] != math.MinInt64
}

// bucketRef returns the ring bucket for absolute id, clearing stale
// epochs.
func (q *BucketQueue) bucketAt(id int64) int {
	idx := int(id & q.mask)
	if q.bEpoch[idx] != q.epoch {
		q.bEpoch[idx] = q.epoch
		q.buckets[idx] = q.buckets[idx][:0]
	}
	return idx
}

func (q *BucketQueue) setOcc(idx int) {
	w := idx >> 6
	if q.wEpoch[w] != q.epoch {
		q.wEpoch[w] = q.epoch
		q.occ[w] = 0
	}
	q.occ[w] |= 1 << uint(idx&63)
}

func (q *BucketQueue) clearOcc(idx int) {
	w := idx >> 6
	if q.wEpoch[w] != q.epoch {
		q.wEpoch[w] = q.epoch
		q.occ[w] = 0
	}
	q.occ[w] &^= 1 << uint(idx&63)
}

func (q *BucketQueue) occWord(w int) uint64 {
	if q.wEpoch[w] != q.epoch {
		return 0
	}
	return q.occ[w]
}

// Push inserts key with the given priority, or moves a live key to the
// new priority (decrease- or increase-key), matching IndexedMinHeap.Push
// semantics.
func (q *BucketQueue) Push(key int, priority float64) {
	if !q.bucketed {
		q.h.Push(key, priority)
		return
	}
	if q.live(key) {
		q.update(key, priority)
		return
	}
	q.kEpoch[key] = q.epoch
	q.prio[key] = priority
	q.count++
	if !q.haveBase {
		q.bkt[key] = bktStaged
		q.slot[key] = int32(len(q.staging))
		q.staging = append(q.staging, int32(key))
		return
	}
	q.place(key, priority)
}

// place files a key (already counted, prio set) into the ring or
// overflow, based on its absolute bucket id. Requires haveBase.
func (q *BucketQueue) place(key int, priority float64) {
	id := q.id(priority)
	if id < q.curID {
		// Guard against floating-point rounding at the window edge: the
		// dial never moves backwards.
		id = q.curID
	}
	if id >= q.curID+int64(q.nb) {
		q.bkt[key] = bktOverflow
		q.slot[key] = int32(len(q.overflow))
		q.overflow = append(q.overflow, int32(key))
		if id < q.minOver {
			q.minOver = id
		}
		return
	}
	q.bkt[key] = id
	idx := q.bucketAt(id)
	b := q.buckets[idx]
	if id == q.sortedID {
		// Insert preserving descending (prio, key) order: the minimum
		// lives at the end, where Pop takes it.
		pos := len(b)
		for pos > 0 && qless(q.prio[b[pos-1]], int(b[pos-1]), priority, key) {
			pos--
		}
		b = append(b, 0)
		copy(b[pos+1:], b[pos:])
		b[pos] = int32(key)
		for i := pos; i < len(b); i++ {
			q.slot[b[i]] = int32(i)
		}
		q.buckets[idx] = b
	} else {
		q.slot[key] = int32(len(b))
		q.buckets[idx] = append(b, int32(key))
	}
	q.setOcc(idx)
}

// qless reports (pa, ka) < (pb, kb) in the pop total order.
func qless(pa float64, ka int, pb float64, kb int) bool {
	if pa != pb {
		return pa < pb
	}
	return ka < kb
}

// update moves a live key to a new priority.
func (q *BucketQueue) update(key int, priority float64) {
	old := q.prio[key]
	if priority == old {
		return
	}
	q.prio[key] = priority
	switch q.bkt[key] {
	case bktStaged:
		return // staging ignores order; finalized at first Pop
	case bktOverflow:
		q.removeOverflow(key)
		q.count++ // removeOverflow decremented
		q.place(key, priority)
	default:
		q.removeRing(key)
		q.count++
		q.place(key, priority)
	}
}

func (q *BucketQueue) removeOverflow(key int) {
	s := int(q.slot[key])
	last := len(q.overflow) - 1
	moved := q.overflow[last]
	q.overflow[s] = moved
	q.slot[moved] = int32(s)
	q.overflow = q.overflow[:last]
	q.count--
	q.bkt[key] = math.MinInt64
	// minOver may now be stale (too small); that is harmless — it only
	// triggers an extra overflow scan.
}

func (q *BucketQueue) removeRing(key int) {
	id := q.bkt[key]
	idx := q.bucketAt(id)
	b := q.buckets[idx]
	s := int(q.slot[key])
	if id == q.sortedID {
		copy(b[s:], b[s+1:])
		b = b[:len(b)-1]
		for i := s; i < len(b); i++ {
			q.slot[b[i]] = int32(i)
		}
	} else {
		last := len(b) - 1
		moved := b[last]
		b[s] = moved
		q.slot[moved] = int32(s)
		b = b[:last]
	}
	q.buckets[idx] = b
	if len(b) == 0 {
		q.clearOcc(idx)
	}
	q.count--
	q.bkt[key] = math.MinInt64
}

// finalizeStaging computes the origin from the staged minimum and files
// every staged entry.
func (q *BucketQueue) finalizeStaging() {
	base := math.Inf(1)
	for _, k := range q.staging {
		if q.prio[k] < base {
			base = q.prio[k]
		}
	}
	q.base = base
	q.haveBase = true
	q.curID = 0
	for _, k := range q.staging {
		q.place(int(k), q.prio[k])
	}
	q.staging = q.staging[:0]
}

// drainOverflow refiles overflow entries that now fit the ring window and
// recomputes minOver.
func (q *BucketQueue) drainOverflow() {
	minOver := int64(math.MaxInt64)
	for i := 0; i < len(q.overflow); {
		k := q.overflow[i]
		id := q.id(q.prio[k])
		if id < q.curID+int64(q.nb) {
			last := len(q.overflow) - 1
			moved := q.overflow[last]
			q.overflow[i] = moved
			q.slot[moved] = int32(i)
			q.overflow = q.overflow[:last]
			q.bkt[k] = math.MinInt64
			q.place(int(k), q.prio[k])
			continue
		}
		if id < minOver {
			minOver = id
		}
		i++
	}
	q.minOver = minOver
}

// nextRingID scans the occupancy bitset circularly for the first nonempty
// bucket at id >= curID within the window, returning MaxInt64 if none.
// Ring slot idx holds absolute id curID + ((idx - curID) mod nb) by the
// window invariant.
func (q *BucketQueue) nextRingID() int64 {
	startIdx := int(q.curID & q.mask)
	w := startIdx >> 6
	bit := startIdx & 63
	if word := q.occWord(w) >> uint(bit); word != 0 {
		return q.curID + int64(bits.TrailingZeros64(word))
	}
	scanned := 64 - bit
	nw := len(q.occ)
	wi := w + 1
	if wi == nw {
		wi = 0
	}
	for scanned < q.nb {
		if word := q.occWord(wi); word != 0 {
			idx := wi<<6 + bits.TrailingZeros64(word)
			d := (int64(idx) - int64(startIdx)) & q.mask
			return q.curID + d
		}
		scanned += 64
		wi++
		if wi == nw {
			wi = 0
		}
	}
	// Wrap back into the start word's low bits (slots before startIdx map
	// to the largest ids in the window).
	if bit > 0 {
		if word := q.occWord(w) & (1<<uint(bit) - 1); word != 0 {
			idx := w<<6 + bits.TrailingZeros64(word)
			d := (int64(idx) - int64(startIdx)) & q.mask
			return q.curID + d
		}
	}
	return math.MaxInt64
}

// Pop removes and returns the key with the minimum (priority, key) and
// its priority. It must not be called on an empty queue.
func (q *BucketQueue) Pop() (int, float64) {
	if !q.bucketed {
		return q.h.Pop()
	}
	if q.count == 0 {
		panic("graph: Pop on empty BucketQueue")
	}
	if !q.haveBase {
		q.finalizeStaging()
	}
	// Advance the dial. minOver is a lower bound on the true overflow
	// minimum (removals leave it stale-small), so "minOver > cid" proves
	// the ring bucket at cid holds the global minimum; anything else —
	// including an overflow entry tied with cid, which must compete
	// inside that bucket — drains overflow, which recomputes minOver
	// exactly and makes progress.
	for {
		cid := q.nextRingID()
		if cid != math.MaxInt64 && q.minOver > cid {
			q.curID = cid
			break
		}
		if len(q.overflow) == 0 {
			if cid == math.MaxInt64 {
				panic("graph: BucketQueue accounting error")
			}
			q.minOver = math.MaxInt64
			q.curID = cid
			break
		}
		if cid == math.MaxInt64 && q.minOver >= q.curID+int64(q.nb) {
			// Ring empty and every overflow entry lies beyond the window:
			// jump the window to the overflow minimum.
			q.curID = q.minOver
		}
		q.drainOverflow()
	}
	idx := q.bucketAt(q.curID)
	if q.sortedID != q.curID {
		q.sortBucket(idx)
		q.sortedID = q.curID
	}
	b := q.buckets[idx]
	last := len(b) - 1
	key := int(b[last])
	q.buckets[idx] = b[:last]
	if last == 0 {
		q.clearOcc(idx)
	}
	q.count--
	q.bkt[key] = math.MinInt64
	return key, q.prio[key]
}

// sortBucket orders bucket idx descending by (prio, key) with insertion
// sort — buckets hold a handful of entries — and refreshes slots.
func (q *BucketQueue) sortBucket(idx int) {
	b := q.buckets[idx]
	for i := 1; i < len(b); i++ {
		k := b[i]
		p := q.prio[k]
		j := i - 1
		for j >= 0 && qless(q.prio[b[j]], int(b[j]), p, int(k)) {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = k
	}
	for i, k := range b {
		q.slot[k] = int32(i)
	}
}

// Contains reports whether key is currently queued.
func (q *BucketQueue) Contains(key int) bool {
	if !q.bucketed {
		return q.h.Contains(key)
	}
	return q.live(key)
}
