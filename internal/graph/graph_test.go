package graph

import (
	"math"
	"math/rand"
	"testing"
)

// lineGraph builds 0 -> 1 -> 2 -> ... -> n-1 with unit weights.
func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewBuilder(3)
	cases := []struct {
		name string
		u, v int
		w    float64
	}{
		{"self loop", 1, 1, 1},
		{"u out of range", 3, 0, 1},
		{"v out of range", 0, -1, 1},
		{"negative weight", 0, 1, -0.5},
		{"NaN weight", 0, 1, math.NaN()},
		{"Inf weight", 0, 1, math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := g.AddEdge(tc.u, tc.v, tc.w); err == nil {
				t.Error("invalid edge accepted")
			}
		})
	}
	if err := g.AddEdge(0, 1, 0); err != nil {
		t.Errorf("zero-weight edge rejected: %v", err)
	}
	if built := g.Build(); built.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", built.NumEdges())
	}
}

func TestDistancesToLine(t *testing.T) {
	g := lineGraph(t, 5)
	dist, err := g.DistancesTo(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{4, 3, 2, 1, 0} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], want)
		}
	}
	// Reverse direction: nothing reaches vertex 0 except itself.
	dist, err = g.DistancesTo(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 0 {
		t.Errorf("dist[0] = %v", dist[0])
	}
	for i := 1; i < 5; i++ {
		if !math.IsInf(dist[i], 1) {
			t.Errorf("dist[%d] = %v, want +Inf", i, dist[i])
		}
	}
}

func TestDistancesToPicksCheaperParallelEdge(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	dist, err := b.Build().DistancesTo(1)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 2 {
		t.Errorf("dist[0] = %v, want 2 (cheaper parallel edge)", dist[0])
	}
}

func TestDistancesToErrors(t *testing.T) {
	g := NewBuilder(2).Build()
	if _, err := g.DistancesTo(2); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := g.DistancesTo(-1); err == nil {
		t.Error("negative target accepted")
	}
}

// randomGraph builds a random DAG-ish directed graph for property tests.
func randomGraph(rng *rand.Rand, n int, density float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < density {
				_ = b.AddEdge(u, v, rng.Float64()*100)
			}
		}
	}
	return b.Build()
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 0.15)
		target := rng.Intn(n)
		fast, err := g.DistancesTo(target)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := g.BellmanFordTo(target)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if math.IsInf(fast[v], 1) != math.IsInf(slow[v], 1) {
				t.Fatalf("trial %d: reachability disagrees at %d: %v vs %v", trial, v, fast[v], slow[v])
			}
			if !math.IsInf(fast[v], 1) && math.Abs(fast[v]-slow[v]) > 1e-6 {
				t.Fatalf("trial %d: dist[%d] = %v (dijkstra) vs %v (bellman-ford)", trial, v, fast[v], slow[v])
			}
		}
	}
}

func TestShortestPathDAGTightEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, 0.2)
		target := rng.Intn(n)
		dag, err := g.ShortestPathDAG(target, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			if u == target || !dag.Reachable(u) {
				if len(dag.Parents[u]) != 0 && u == target {
					t.Fatalf("target has parents")
				}
				continue
			}
			if len(dag.Parents[u]) == 0 {
				t.Fatalf("reachable vertex %d has no tight parent", u)
			}
			for _, v := range dag.Parents[u] {
				// Every listed parent must be tight via some edge u->v.
				best := math.Inf(1)
				for _, e := range g.Out(u) {
					if e.To == v && e.Weight < best {
						best = e.Weight
					}
				}
				if math.Abs(dag.Dist[u]-(best+dag.Dist[v])) > 1e-6 {
					t.Fatalf("parent %d of %d not tight: %v != %v + %v", v, u, dag.Dist[u], best, dag.Dist[v])
				}
				// Tight parents strictly decrease distance when weights
				// are strictly positive; allow equality for zero weights.
				if dag.Dist[v] > dag.Dist[u]+1e-9 {
					t.Fatalf("parent %d is farther than child %d", v, u)
				}
			}
		}
	}
}

func TestShortestPathDAGMultipleParents(t *testing.T) {
	// Diamond: 0 -> {1, 2} -> 3 with equal-cost sides.
	b := NewBuilder(4)
	for _, e := range []struct {
		u, v int
		w    float64
	}{{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}} {
		if err := b.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	dag, err := b.Build().ShortestPathDAG(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Parents[0]) != 2 {
		t.Errorf("vertex 0 should have 2 tight parents, got %v", dag.Parents[0])
	}
	if dag.Dist[0] != 2 {
		t.Errorf("dist[0] = %v, want 2", dag.Dist[0])
	}
}

func TestShortestPathDAGToleranceRejectsNegative(t *testing.T) {
	g := NewBuilder(2).Build()
	if _, err := g.ShortestPathDAG(0, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestInOutViews(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddBoth(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 1, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if len(g.Out(0)) != 1 || g.Out(0)[0].To != 1 {
		t.Errorf("Out(0) = %v", g.Out(0))
	}
	if len(g.In(1)) != 2 {
		t.Errorf("In(1) = %v, want 2 edges", g.In(1))
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("counts: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
}
