package graph

import "fmt"

// IndexedMinHeap is a binary min-heap over the integer keys 0..n-1 with
// float64 priorities and O(log n) decrease-key, the classic companion
// structure for Dijkstra. The zero value is not usable; construct with
// NewIndexedMinHeap.
type IndexedMinHeap struct {
	prio []float64 // prio[key] = current priority of key (valid while key is in the heap)
	heap []int     // heap[i] = key at heap slot i
	pos  []int     // pos[key] = slot of key in heap, or -1 when absent
	seen []bool    // seen[key] = key has been pushed at least once (guards Priority)
}

// NewIndexedMinHeap returns an empty heap over keys 0..n-1.
func NewIndexedMinHeap(n int) *IndexedMinHeap {
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	return &IndexedMinHeap{
		prio: make([]float64, n),
		heap: make([]int, 0, n),
		pos:  pos,
		seen: make([]bool, n),
	}
}

// Len returns the number of keys currently in the heap.
func (h *IndexedMinHeap) Len() int { return len(h.heap) }

// Contains reports whether key is currently in the heap.
func (h *IndexedMinHeap) Contains(key int) bool { return h.pos[key] >= 0 }

// Priority returns the priority most recently set for key. It panics for
// a key that has never been pushed since the heap was constructed: the
// backing slot would otherwise read as a stale 0, silently
// indistinguishable from a real zero priority. After a Reset, priorities
// of keys pushed before the reset remain readable (they are "most
// recently set" values, not live heap state).
func (h *IndexedMinHeap) Priority(key int) float64 {
	if !h.seen[key] {
		panic(fmt.Sprintf("graph: Priority(%d) read for a key never pushed", key))
	}
	return h.prio[key]
}

// Push inserts key with the given priority, or lowers/raises its priority
// if already present (a combined insert/update, convenient for Dijkstra's
// relax step).
func (h *IndexedMinHeap) Push(key int, priority float64) {
	h.seen[key] = true
	if h.pos[key] >= 0 {
		old := h.prio[key]
		h.prio[key] = priority
		if priority < old {
			h.siftUp(h.pos[key])
		} else if priority > old {
			h.siftDown(h.pos[key])
		}
		return
	}
	h.prio[key] = priority
	h.pos[key] = len(h.heap)
	h.heap = append(h.heap, key)
	h.siftUp(len(h.heap) - 1)
}

// Reset empties the heap in O(len) so it can be reused for a fresh run
// without reallocating. Priorities of previously popped keys become
// meaningless after a reset.
func (h *IndexedMinHeap) Reset() {
	for _, k := range h.heap {
		h.pos[k] = -1
	}
	h.heap = h.heap[:0]
}

// Pop removes and returns the key with the minimum priority and that
// priority. It must not be called on an empty heap.
func (h *IndexedMinHeap) Pop() (key int, priority float64) {
	key = h.heap[0]
	priority = h.prio[key]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[key] = -1
	if last > 0 {
		h.siftDown(0)
	}
	return key, priority
}

func (h *IndexedMinHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *IndexedMinHeap) less(i, j int) bool {
	pi, pj := h.prio[h.heap[i]], h.prio[h.heap[j]]
	if pi != pj {
		return pi < pj
	}
	// Tie-break on key for fully deterministic pop order.
	return h.heap[i] < h.heap[j]
}

func (h *IndexedMinHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedMinHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
