package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapBasicOrdering(t *testing.T) {
	h := NewIndexedMinHeap(5)
	h.Push(0, 3)
	h.Push(1, 1)
	h.Push(2, 2)
	var keys []int
	var prios []float64
	for h.Len() > 0 {
		k, p := h.Pop()
		keys = append(keys, k)
		prios = append(prios, p)
	}
	wantKeys := []int{1, 2, 0}
	for i := range wantKeys {
		if keys[i] != wantKeys[i] {
			t.Fatalf("pop order %v, want %v", keys, wantKeys)
		}
	}
	if !sort.Float64sAreSorted(prios) {
		t.Fatalf("priorities not ascending: %v", prios)
	}
}

func TestHeapDecreaseKey(t *testing.T) {
	h := NewIndexedMinHeap(3)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.Push(2, 1) // decrease
	if k, p := h.Pop(); k != 2 || p != 1 {
		t.Fatalf("got (%d, %v), want (2, 1)", k, p)
	}
	h.Push(0, 50) // increase
	if k, _ := h.Pop(); k != 1 {
		t.Fatalf("after increasing key 0, want 1 first, got %d", k)
	}
}

func TestHeapContains(t *testing.T) {
	h := NewIndexedMinHeap(2)
	if h.Contains(0) {
		t.Error("empty heap contains 0")
	}
	h.Push(0, 1)
	if !h.Contains(0) {
		t.Error("heap lost key 0")
	}
	h.Pop()
	if h.Contains(0) {
		t.Error("popped key still contained")
	}
}

func TestHeapDeterministicTieBreak(t *testing.T) {
	h := NewIndexedMinHeap(4)
	for _, k := range []int{3, 1, 2, 0} {
		h.Push(k, 7)
	}
	for want := 0; want < 4; want++ {
		if k, _ := h.Pop(); k != want {
			t.Fatalf("tie-break pop = %d, want %d", k, want)
		}
	}
}

// TestHeapAgainstSort drives the heap with random push/update/pop
// sequences and checks every pop against a reference re-sort.
func TestHeapAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(64)
		h := NewIndexedMinHeap(n)
		ref := map[int]float64{}
		ops := 200
		for op := 0; op < ops; op++ {
			switch {
			case rng.Float64() < 0.6 || len(ref) == 0:
				k := rng.Intn(n)
				p := rng.Float64() * 100
				h.Push(k, p)
				ref[k] = p
			default:
				// Pop and verify minimality.
				k, p := h.Pop()
				want, ok := ref[k]
				if !ok {
					t.Fatalf("popped key %d not in reference", k)
				}
				if want != p {
					t.Fatalf("popped priority %v, reference has %v", p, want)
				}
				for rk, rp := range ref {
					if rp < p || (rp == p && rk < k) {
						t.Fatalf("pop (%d,%v) was not minimal: (%d,%v) present", k, p, rk, rp)
					}
				}
				delete(ref, k)
			}
		}
		if h.Len() != len(ref) {
			t.Fatalf("length mismatch: heap %d vs reference %d", h.Len(), len(ref))
		}
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(1))
	prios := make([]float64, n)
	for i := range prios {
		prios[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewIndexedMinHeap(n)
		for k := 0; k < n; k++ {
			h.Push(k, prios[k])
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}
