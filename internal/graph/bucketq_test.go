package graph

import (
	"math"
	"math/rand"
	"testing"
)

// forceBucketScale drops MinBucketKeys for the duration of a test so
// bucket mode engages on the small queues the differential traces use;
// the production default keeps paper-scale queues on the embedded heap.
func forceBucketScale(t testing.TB) {
	old := MinBucketKeys
	MinBucketKeys = 1
	t.Cleanup(func() { MinBucketKeys = old })
}

// driveBoth feeds an identical operation trace to a BucketQueue (bucket
// mode) and an IndexedMinHeap and asserts identical pop sequences —
// (priority, key) total order ties broken identically. The trace is
// monotone (no push below the last popped priority), Dijkstra's usage
// pattern and the BucketQueue's contract.
func driveBoth(t *testing.T, rng *rand.Rand, n int, wmin, wmax float64, seedSpan float64, ops int) {
	t.Helper()
	q := NewBucketQueue(n)
	q.Configure(wmin, wmax)
	if !q.Bucketed() {
		t.Fatalf("Configure(%g, %g) did not pick bucket mode", wmin, wmax)
	}
	h := NewIndexedMinHeap(n)

	live := make(map[int]float64)
	lastPop := 0.0
	popped := make(map[int]bool)

	push := func(k int, p float64) {
		q.Push(k, p)
		h.Push(k, p)
		live[k] = p
	}
	// Seed phase: a burst of pushes spanning a wide range, like the
	// incremental evaluator's multi-source reseed.
	seeds := 1 + rng.Intn(n)
	for i := 0; i < seeds; i++ {
		k := rng.Intn(n)
		if _, ok := live[k]; ok {
			continue
		}
		push(k, wmin+rng.Float64()*seedSpan)
	}
	for op := 0; op < ops; op++ {
		switch c := rng.Float64(); {
		case c < 0.45 && len(live) > 0:
			// Pop from both, compare.
			gk, gp := q.Pop()
			hk, hp := h.Pop()
			if gk != hk || gp != hp {
				t.Fatalf("op %d: pop diverged: bucket (%d,%v) vs heap (%d,%v)", op, gk, gp, hk, hp)
			}
			delete(live, gk)
			popped[gk] = true
			lastPop = gp
		case c < 0.8:
			// Push a new key at a monotone priority.
			k := rng.Intn(n)
			if _, ok := live[k]; ok || popped[k] {
				continue // settled keys are never re-pushed in Dijkstra
			}
			push(k, lastPop+wmin+rng.Float64()*(wmax-wmin))
		default:
			// Decrease-key on a live key (never below lastPop).
			if len(live) == 0 {
				continue
			}
			var k int
			for k = range live {
				break
			}
			old := live[k]
			lo := lastPop
			if lo < wmin {
				lo = wmin
			}
			if old <= lo {
				continue
			}
			push(k, lo+rng.Float64()*(old-lo))
		}
		if q.Len() != h.Len() {
			t.Fatalf("op %d: Len diverged: %d vs %d", op, q.Len(), h.Len())
		}
	}
	// Drain fully.
	for h.Len() > 0 {
		gk, gp := q.Pop()
		hk, hp := h.Pop()
		if gk != hk || gp != hp {
			t.Fatalf("drain: pop diverged: bucket (%d,%v) vs heap (%d,%v)", gk, gp, hk, hp)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("bucket queue not empty after drain: %d", q.Len())
	}
}

func TestBucketQueuePopOrderMatchesHeap(t *testing.T) {
	forceBucketScale(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(60)
		wmin := 0.01 + rng.Float64()
		ratio := 1 + rng.Float64()*100
		wmax := wmin * ratio
		// Seed spans far beyond the ring window to exercise overflow,
		// window jumps, and staged finalization.
		seedSpan := wmax * float64(1+rng.Intn(3*n))
		driveBoth(t, rng, n, wmin, wmax, seedSpan, 50+rng.Intn(400))
	}
}

func TestBucketQueueReuseAcrossResets(t *testing.T) {
	forceBucketScale(t)
	rng := rand.New(rand.NewSource(5))
	q := NewBucketQueue(40)
	q.Configure(0.5, 8)
	for run := 0; run < 50; run++ {
		q.Reset()
		h := NewIndexedMinHeap(40)
		last := 0.0
		for i := 0; i < 30; i++ {
			k := rng.Intn(40)
			p := last + 0.5 + rng.Float64()*7.5
			q.Push(k, p)
			h.Push(k, p)
		}
		for h.Len() > 0 {
			gk, gp := q.Pop()
			hk, hp := h.Pop()
			if gk != hk || gp != hp {
				t.Fatalf("run %d: pop diverged: (%d,%v) vs (%d,%v)", run, gk, gp, hk, hp)
			}
			last = gp
		}
		if q.Len() != 0 {
			t.Fatalf("run %d: leftover entries", run)
		}
	}
}

func TestBucketQueueApplicabilityRule(t *testing.T) {
	forceBucketScale(t) // isolate the weight-band dimension of the rule
	cases := []struct {
		name       string
		wmin, wmax float64
		bucketed   bool
	}{
		{"discrete power levels", 1, 64, true},
		{"ratio at limit", 1, MaxWeightRatio, true},
		{"ratio beyond limit", 1, MaxWeightRatio + 1, false},
		{"zero wmin", 0, 10, false},
		{"negative wmin", -1, 10, false},
		{"infinite wmax", 1, math.Inf(1), false},
		{"inverted bounds", 10, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := NewBucketQueue(8)
			q.Configure(tc.wmin, tc.wmax)
			if q.Bucketed() != tc.bucketed {
				t.Errorf("Configure(%g, %g): Bucketed = %v, want %v", tc.wmin, tc.wmax, q.Bucketed(), tc.bucketed)
			}
		})
	}
}

func TestBucketQueueScaleRule(t *testing.T) {
	// Scale dimension of the applicability rule: with the production
	// MinBucketKeys, a bucket-friendly weight band is not enough — small
	// queues stay on the embedded heap (measured faster below ~1k keys),
	// and the dial engages only at scale. Pop-order parity (tested above)
	// makes the mode choice result-neutral.
	small := NewBucketQueue(MinBucketKeys - 1)
	small.Configure(1, 64)
	if small.Bucketed() {
		t.Errorf("n=%d: Bucketed = true, want heap mode below MinBucketKeys", MinBucketKeys-1)
	}
	big := NewBucketQueue(MinBucketKeys)
	big.Configure(1, 64)
	if !big.Bucketed() {
		t.Errorf("n=%d: Bucketed = false, want bucket mode at MinBucketKeys", MinBucketKeys)
	}
}

func TestBucketQueueHeapFallbackMatchesHeap(t *testing.T) {
	// Non-applicable bounds: the queue must still work, via the embedded
	// heap.
	q := NewBucketQueue(10)
	q.Configure(0, math.Inf(1))
	if q.Bucketed() {
		t.Fatal("expected heap fallback")
	}
	h := NewIndexedMinHeap(10)
	for _, e := range []struct {
		k int
		p float64
	}{{3, 2.5}, {1, 0.5}, {7, 2.5}, {1, 0.1}} {
		q.Push(e.k, e.p)
		h.Push(e.k, e.p)
	}
	for h.Len() > 0 {
		gk, gp := q.Pop()
		hk, hp := h.Pop()
		if gk != hk || gp != hp {
			t.Fatalf("pop diverged: (%d,%v) vs (%d,%v)", gk, gp, hk, hp)
		}
	}
}

// FuzzBucketQueueVsHeap drives both queues from fuzzer-chosen operation
// bytes and requires identical pop order (satellite: bucket-queue vs
// IndexedMinHeap differential fuzzer).
func FuzzBucketQueueVsHeap(f *testing.F) {
	f.Add(int64(1), uint8(16), []byte{0, 1, 2, 3, 200, 201, 90, 91, 255})
	f.Add(int64(7), uint8(40), []byte{10, 20, 30, 250, 240, 5, 5, 5, 128, 129, 130})
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, ops []byte) {
		forceBucketScale(t)
		n := 2 + int(nRaw)%63
		rng := rand.New(rand.NewSource(seed))
		wmin := 0.125
		wmax := 32.0
		q := NewBucketQueue(n)
		q.Configure(wmin, wmax)
		h := NewIndexedMinHeap(n)
		live := make(map[int]float64)
		popped := make(map[int]bool)
		lastPop := 0.0
		for i, b := range ops {
			switch {
			case b < 100:
				k := int(b) % n
				if popped[k] {
					continue
				}
				var p float64
				if old, ok := live[k]; ok {
					lo := lastPop
					if lo < wmin {
						lo = wmin
					}
					if old <= lo {
						continue
					}
					p = lo + rng.Float64()*(old-lo)
				} else {
					p = lastPop + wmin + rng.Float64()*(wmax-wmin)
				}
				q.Push(k, p)
				h.Push(k, p)
				live[k] = p
			case b < 200:
				if h.Len() == 0 {
					continue
				}
				gk, gp := q.Pop()
				hk, hp := h.Pop()
				if gk != hk || gp != hp {
					t.Fatalf("op %d: pop diverged: bucket (%d,%v) vs heap (%d,%v)", i, gk, gp, hk, hp)
				}
				delete(live, gk)
				popped[gk] = true
				lastPop = gp
			default:
				// Wide seed push (exercises staging/overflow) — only
				// legal before any pop, keeping the trace monotone.
				if len(popped) > 0 {
					continue
				}
				k := int(b) % n
				if _, ok := live[k]; ok {
					continue
				}
				p := wmin + rng.Float64()*wmax*100
				q.Push(k, p)
				h.Push(k, p)
				live[k] = p
			}
			if q.Len() != h.Len() {
				t.Fatalf("op %d: Len diverged: %d vs %d", i, q.Len(), h.Len())
			}
		}
		for h.Len() > 0 {
			gk, gp := q.Pop()
			hk, hp := h.Pop()
			if gk != hk || gp != hp {
				t.Fatalf("drain: pop diverged: bucket (%d,%v) vs heap (%d,%v)", gk, gp, hk, hp)
			}
		}
	})
}

// FuzzDijkstraVsBellmanFord pins the CSR Dijkstra against the retained
// Bellman-Ford oracle on fuzzer-shaped graphs (satellite: CSR-vs-oracle
// differential fuzzer).
func FuzzDijkstraVsBellmanFord(f *testing.F) {
	f.Add(int64(42), uint8(12), uint8(40), uint8(3))
	f.Add(int64(9), uint8(30), uint8(200), uint8(17))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, densityRaw, targetRaw uint8) {
		n := 2 + int(nRaw)%40
		density := float64(densityRaw) / 255 * 0.4
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n, density)
		target := int(targetRaw) % n
		fast, err := g.DistancesTo(target)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := g.BellmanFordTo(target)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if math.IsInf(fast[v], 1) != math.IsInf(slow[v], 1) {
				t.Fatalf("reachability disagrees at %d: %v vs %v", v, fast[v], slow[v])
			}
			if !math.IsInf(fast[v], 1) && math.Abs(fast[v]-slow[v]) > 1e-6 {
				t.Fatalf("dist[%d] = %v (dijkstra) vs %v (bellman-ford)", v, fast[v], slow[v])
			}
		}
	})
}

// BenchmarkBucketQueueKernel measures the push/pop cycle in bucket mode.
// The CI alloc gate requires 0 allocs/op once the queue is warm.
func BenchmarkBucketQueueKernel(b *testing.B) {
	forceBucketScale(b)
	const n = 256
	q := NewBucketQueue(n)
	q.Configure(1, 64)
	rng := rand.New(rand.NewSource(2))
	prios := make([]float64, n)
	for i := range prios {
		prios[i] = 1 + rng.Float64()*63
	}
	// Warm the ring so steady-state measurements see no growth allocs.
	for warm := 0; warm < 2; warm++ {
		q.Reset()
		for k := 0; k < n; k++ {
			q.Push(k, prios[k])
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Reset()
		for k := 0; k < n; k++ {
			q.Push(k, prios[k])
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}

// BenchmarkCSRRelax measures a full Dijkstra relax pass over the CSR
// layout via a Router (reused buffers). The CI alloc gate requires 0
// allocs/op.
func BenchmarkCSRRelax(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 300, 0.1)
	r := NewRouter(g)
	if _, err := r.DistancesTo(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.DistancesTo(0); err != nil {
			b.Fatal(err)
		}
	}
}
