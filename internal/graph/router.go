package graph

import (
	"fmt"
	"math"
)

// Router runs repeated shortest-path queries over one Graph without
// re-allocating the Dijkstra state: the indexed heap is recycled through
// Reset(), the distance vector is overwritten in place, and the DAG's
// parent lists are truncated and refilled. It exists for the iterative
// callers (RFH reweights edges between rounds, heal re-masks vertices
// between repairs) that previously rebuilt graph + heap + DAG per
// iteration.
//
// A Router is not safe for concurrent use, and the slices returned by
// DistancesTo/DAGTo are owned by the Router: they are valid only until
// the next query.
type Router struct {
	g       *Graph
	h       *IndexedMinHeap
	dist    []float64
	dag     DAG
	mask    []bool
	settled int64
}

// NewRouter returns a Router over g. The graph's vertex count must not
// change afterwards (edge weights may, via ReweightEdges).
func NewRouter(g *Graph) *Router {
	n := g.NumVertices()
	r := &Router{
		g:    g,
		h:    NewIndexedMinHeap(n),
		dist: make([]float64, n),
	}
	r.dag.Dist = r.dist
	r.dag.Parents = make([][]int, n)
	return r
}

// SetVertexMask excludes vertices from subsequent queries: a vertex v
// with mask[v] == true is treated as removed (its distance is
// Unreachable and no path routes through it). The Router keeps a
// reference to mask, so the caller may flip entries between queries; nil
// clears the mask.
func (r *Router) SetVertexMask(mask []bool) error {
	if mask != nil && len(mask) != r.g.NumVertices() {
		return fmt.Errorf("graph: mask covers %d vertices, want %d", len(mask), r.g.NumVertices())
	}
	r.mask = mask
	return nil
}

// Settled returns the total number of Dijkstra vertex settlements (heap
// pops of a vertex at its final distance) across every query run on this
// Router — the natural "evaluation" count for iterative shortest-path
// solvers.
func (r *Router) Settled() int64 { return r.settled }

func (r *Router) masked(v int) bool { return r.mask != nil && r.mask[v] }

// DistancesTo computes, for every vertex u, the cost of the cheapest
// directed path u -> ... -> target, exactly like Graph.DistancesTo but
// into the Router's reusable buffers. The returned slice is owned by the
// Router.
func (r *Router) DistancesTo(target int) ([]float64, error) {
	n := r.g.NumVertices()
	if target < 0 || target >= n {
		return nil, fmt.Errorf("%w: %d", ErrTargetOutOfRange, target)
	}
	if r.masked(target) {
		return nil, fmt.Errorf("graph: target vertex %d is masked", target)
	}
	g := r.g
	dist := r.dist
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[target] = 0
	h := r.h
	h.Reset()
	h.Push(target, 0)
	for h.Len() > 0 {
		v, dv := h.Pop()
		if dv > dist[v] {
			continue
		}
		r.settled++
		for s := g.rOff[v]; s < g.rOff[v+1]; s++ {
			u := int(g.rSrc[s])
			if r.masked(u) {
				continue
			}
			if nd := dv + g.fW[g.rFwd[s]]; nd < dist[u] {
				dist[u] = nd
				h.Push(u, nd)
			}
		}
	}
	return dist, nil
}

// DAGTo computes the all-shortest-paths DAG toward target, exactly like
// Graph.ShortestPathDAG but reusing the Router's buffers (parent lists
// keep their capacity across calls). Masked vertices have Unreachable
// distance and empty parent lists, and never appear in any parent list.
// The returned DAG is owned by the Router and valid until the next
// query.
func (r *Router) DAGTo(target int, tol float64) (*DAG, error) {
	if tol < 0 {
		return nil, fmt.Errorf("graph: negative tolerance %g", tol)
	}
	dist, err := r.DistancesTo(target)
	if err != nil {
		return nil, err
	}
	g := r.g
	r.dag.Target = target
	parents := r.dag.Parents
	for u := range parents {
		parents[u] = parents[u][:0]
	}
	for u := 0; u < g.n; u++ {
		if u == target || math.IsInf(dist[u], 1) || r.masked(u) {
			continue
		}
		for s := g.fOff[u]; s < g.fOff[u+1]; s++ {
			v := int(g.fDst[s])
			if math.IsInf(dist[v], 1) || r.masked(v) {
				continue
			}
			if math.Abs(dist[u]-(g.fW[s]+dist[v])) <= tol {
				parents[u] = append(parents[u], v)
			}
		}
	}
	return &r.dag, nil
}
