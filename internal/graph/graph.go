// Package graph provides the directed weighted-graph machinery behind the
// routing algorithms: a frozen struct-of-arrays CSR adjacency structure
// built through an explicit mutable Builder, Dijkstra single-target
// shortest paths, the all-shortest-paths predecessor DAG ("fat tree" in
// the paper's terminology), and a Bellman-Ford reference implementation
// used by the property-based and differential tests.
//
// Edge direction convention: an edge u->v with weight w means "u can send
// one bit to v at cost w". Weights may be asymmetric — with
// recharging-cost weights the sender's and receiver's node counts differ —
// so the graph is directed throughout.
//
// Layout: a Graph stores both directions as compressed sparse rows over
// contiguous slices. The forward direction owns the single weight store
// (fW, indexed by forward slot); the reverse direction maps each reverse
// slot to its forward slot (rFwd), so reweighting touches one array and
// both directions observe it. Per-vertex slot ranges preserve edge
// insertion order in both directions, keeping downstream tie-breaking
// identical to the historical append-based adjacency lists.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// Edge is a directed, weighted edge. It survives as the materialised
// form returned by the allocating Out/In accessors (tests, diagnostics);
// hot paths iterate the CSR slices directly.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a frozen directed graph over vertices 0..N-1 with non-negative
// edge weights (Dijkstra's precondition, enforced by the Builder). Build
// one with a Builder; after Build the edge set is immutable — only edge
// weights may change, via ReweightEdges.
type Graph struct {
	n int

	// Forward CSR: out-edges of u live in slots fOff[u]..fOff[u+1].
	fOff []int32
	fDst []int32
	fW   []float64

	// Reverse CSR: in-edges of v live in slots rOff[v]..rOff[v+1].
	// rSrc[s] is the edge's tail; rFwd[s] is its forward slot, where the
	// weight lives.
	rOff []int32
	rSrc []int32
	rFwd []int32
}

// Builder accumulates edges for a Graph. The zero value is not usable;
// construct with NewBuilder. Build freezes the edge set into CSR form;
// the Builder may be reused afterwards (subsequent AddEdge calls extend
// a fresh edge list for the next Build).
type Builder struct {
	n     int
	src   []int32
	dst   []int32
	w     []float64
	built bool
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n}
}

// NumVertices returns the number of vertices the built graph will have.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge appends the directed edge u->v with weight w. It returns an
// error for out-of-range endpoints, self-loops, negative or non-finite
// weights. Parallel edges are permitted (the cheaper one wins in any
// shortest-path computation). Insertion order is preserved per vertex in
// the built graph, in both directions.
func (b *Builder) AddEdge(u, v int, w float64) error {
	if b.built {
		b.src, b.dst, b.w, b.built = nil, nil, nil, false
	}
	switch {
	case u < 0 || u >= b.n || v < 0 || v >= b.n:
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	case u == v:
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	case w < 0 || math.IsNaN(w) || math.IsInf(w, 0):
		return fmt.Errorf("graph: edge (%d,%d) weight %g must be finite and non-negative", u, v, w)
	}
	b.src = append(b.src, int32(u))
	b.dst = append(b.dst, int32(v))
	b.w = append(b.w, w)
	return nil
}

// AddBoth appends u->v and v->u, both with weight w.
func (b *Builder) AddBoth(u, v int, w float64) error {
	if err := b.AddEdge(u, v, w); err != nil {
		return err
	}
	return b.AddEdge(v, u, w)
}

// Build freezes the accumulated edges into a Graph. The counting sorts
// are stable, so each vertex's slot range lists its edges in insertion
// order — forward by tail, reverse by head — matching the historical
// append-based adjacency exactly.
func (b *Builder) Build() *Graph {
	n, m := b.n, len(b.src)
	g := &Graph{
		n:    n,
		fOff: make([]int32, n+1),
		fDst: make([]int32, m),
		fW:   make([]float64, m),
		rOff: make([]int32, n+1),
		rSrc: make([]int32, m),
		rFwd: make([]int32, m),
	}
	for i := 0; i < m; i++ {
		g.fOff[b.src[i]+1]++
		g.rOff[b.dst[i]+1]++
	}
	for v := 0; v < n; v++ {
		g.fOff[v+1] += g.fOff[v]
		g.rOff[v+1] += g.rOff[v]
	}
	// Stable scatter: fill each row's slots in edge-list order. cursor
	// arrays start at the row offsets and advance.
	fCur := make([]int32, n)
	rCur := make([]int32, n)
	for v := 0; v < n; v++ {
		fCur[v] = g.fOff[v]
		rCur[v] = g.rOff[v]
	}
	for i := 0; i < m; i++ {
		u, v := b.src[i], b.dst[i]
		fs := fCur[u]
		fCur[u] = fs + 1
		g.fDst[fs] = v
		g.fW[fs] = b.w[i]
		rs := rCur[v]
		rCur[v] = rs + 1
		g.rSrc[rs] = u
		g.rFwd[rs] = fs
	}
	b.built = true
	return g
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.fDst) }

// OutDegree returns the number of edges leaving u.
func (g *Graph) OutDegree(u int) int { return int(g.fOff[u+1] - g.fOff[u]) }

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v int) int { return int(g.rOff[v+1] - g.rOff[v]) }

// Out materialises the outgoing edges of u in insertion order. It
// allocates; hot paths should iterate the CSR slices via OutSlots.
func (g *Graph) Out(u int) []Edge {
	lo, hi := g.fOff[u], g.fOff[u+1]
	out := make([]Edge, 0, hi-lo)
	for s := lo; s < hi; s++ {
		out = append(out, Edge{To: int(g.fDst[s]), Weight: g.fW[s]})
	}
	return out
}

// In materialises the incoming edges of v (as Edge{To: source, Weight: w})
// in insertion order. It allocates; hot paths should iterate the CSR
// slices via InSlots.
func (g *Graph) In(v int) []Edge {
	lo, hi := g.rOff[v], g.rOff[v+1]
	in := make([]Edge, 0, hi-lo)
	for s := lo; s < hi; s++ {
		in = append(in, Edge{To: int(g.rSrc[s]), Weight: g.fW[g.rFwd[s]]})
	}
	return in
}

// OutSlots returns the raw forward-CSR row of u: parallel destination and
// weight slices owned by the graph. Callers must not modify them.
func (g *Graph) OutSlots(u int) (dst []int32, w []float64) {
	lo, hi := g.fOff[u], g.fOff[u+1]
	return g.fDst[lo:hi], g.fW[lo:hi]
}

// InSlots returns the raw reverse-CSR row of v: parallel source and
// forward-slot slices owned by the graph (index fwd into Weights to read
// the edge weight). Callers must not modify them.
func (g *Graph) InSlots(v int) (src []int32, fwd []int32) {
	lo, hi := g.rOff[v], g.rOff[v+1]
	return g.rSrc[lo:hi], g.rFwd[lo:hi]
}

// Weights returns the forward-slot weight store, owned by the graph.
// Callers must not modify it; use ReweightEdges to change weights.
func (g *Graph) Weights() []float64 { return g.fW }

// Unreachable is the distance reported for vertices with no path.
var Unreachable = math.Inf(1)

// ErrTargetOutOfRange is returned by the shortest-path routines for an
// invalid target vertex.
var ErrTargetOutOfRange = errors.New("graph: target vertex out of range")

// DistancesTo returns, for every vertex u, the cost of the cheapest
// directed path u -> ... -> target (following edge directions), or
// Unreachable if none exists. It is a single Dijkstra run over the
// reversed graph: O((V+E) log V).
func (g *Graph) DistancesTo(target int) ([]float64, error) {
	if target < 0 || target >= g.n {
		return nil, fmt.Errorf("%w: %d", ErrTargetOutOfRange, target)
	}
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[target] = 0
	h := NewIndexedMinHeap(g.n)
	h.Push(target, 0)
	for h.Len() > 0 {
		v, dv := h.Pop()
		if dv > dist[v] {
			continue
		}
		// rev slots of v enumerate u such that u->v exists in g.
		for s := g.rOff[v]; s < g.rOff[v+1]; s++ {
			u := int(g.rSrc[s])
			if nd := dv + g.fW[g.rFwd[s]]; nd < dist[u] {
				dist[u] = nd
				h.Push(u, nd)
			}
		}
	}
	return dist, nil
}

// DAG is the all-shortest-paths predecessor structure toward a fixed
// target vertex: the union of every minimum-cost path from every vertex to
// the target. The paper calls this structure the "fat tree" (Phase I/II of
// the RFH algorithm), since a vertex may have several tight parents.
type DAG struct {
	// Target is the sink all paths lead to.
	Target int
	// Dist[u] is the cost of the cheapest path u->Target (Unreachable if
	// none).
	Dist []float64
	// Parents[u] lists every v such that edge u->v lies on some
	// minimum-cost path from u to Target, i.e.
	// Dist[u] = w(u,v) + Dist[v] (within the construction tolerance).
	// Parents[Target] is empty. Parent lists preserve edge insertion
	// order, keeping downstream tie-breaking deterministic.
	Parents [][]int
}

// ShortestPathDAG computes the all-shortest-paths DAG toward target.
// tol is the absolute tolerance used to recognise ties between
// floating-point path costs; pass 0 for exact comparison. A small positive
// tol (e.g. 1e-9 relative to typical weights) makes the fat tree robust to
// floating-point noise when many geometric paths tie.
func (g *Graph) ShortestPathDAG(target int, tol float64) (*DAG, error) {
	if tol < 0 {
		return nil, fmt.Errorf("graph: negative tolerance %g", tol)
	}
	dist, err := g.DistancesTo(target)
	if err != nil {
		return nil, err
	}
	parents := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		if u == target || math.IsInf(dist[u], 1) {
			continue
		}
		for s := g.fOff[u]; s < g.fOff[u+1]; s++ {
			v := int(g.fDst[s])
			if math.IsInf(dist[v], 1) {
				continue
			}
			if math.Abs(dist[u]-(g.fW[s]+dist[v])) <= tol {
				parents[u] = append(parents[u], v)
			}
		}
	}
	return &DAG{Target: target, Dist: dist, Parents: parents}, nil
}

// Reachable reports, for each vertex, whether the target is reachable
// from it (d.Dist finite).
func (d *DAG) Reachable(u int) bool { return !math.IsInf(d.Dist[u], 1) }

// BellmanFordTo is a reference implementation of DistancesTo with O(V*E)
// complexity. It exists so property-based and differential tests can
// cross-check the CSR Dijkstra; production code should use DistancesTo.
func (g *Graph) BellmanFordTo(target int) ([]float64, error) {
	if target < 0 || target >= g.n {
		return nil, fmt.Errorf("%w: %d", ErrTargetOutOfRange, target)
	}
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[target] = 0
	for iter := 0; iter < g.n-1; iter++ {
		changed := false
		for u := 0; u < g.n; u++ {
			for s := g.fOff[u]; s < g.fOff[u+1]; s++ {
				v := int(g.fDst[s])
				if math.IsInf(dist[v], 1) {
					continue
				}
				if nd := g.fW[s] + dist[v]; nd < dist[u] {
					dist[u] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist, nil
}

// ReweightEdges recomputes every edge weight in place: for each directed
// edge u->v the new weight is weigh(u, v). The weight store is shared by
// both CSR directions, so a single pass over the forward slots updates
// everything. The graph's structure (vertex and edge sets) is unchanged,
// which is what lets Routers and DAGs built on top keep their buffers.
// Weights must remain finite and non-negative.
func (g *Graph) ReweightEdges(weigh func(u, v int) float64) error {
	for u := 0; u < g.n; u++ {
		for s := g.fOff[u]; s < g.fOff[u+1]; s++ {
			v := int(g.fDst[s])
			w := weigh(u, v)
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("graph: edge (%d,%d) reweighted to %g, must be finite and non-negative", u, v, w)
			}
			g.fW[s] = w
		}
	}
	return nil
}
