// Package graph provides the directed weighted-graph machinery behind the
// routing algorithms: adjacency lists, Dijkstra single-target shortest
// paths, the all-shortest-paths predecessor DAG ("fat tree" in the paper's
// terminology), and a Bellman-Ford reference implementation used by the
// property-based tests.
//
// Edge direction convention: an edge u->v with weight w means "u can send
// one bit to v at cost w". Weights may be asymmetric — with
// recharging-cost weights the sender's and receiver's node counts differ —
// so the graph is directed throughout.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// Edge is a directed, weighted edge.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a directed graph over vertices 0..N-1 with non-negative edge
// weights (Dijkstra's precondition, enforced by AddEdge).
type Graph struct {
	adj  [][]Edge
	rev  [][]Edge
	nEdg int
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]Edge, n), rev: make([][]Edge, n)}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.nEdg }

// AddEdge inserts the directed edge u->v with weight w. It returns an
// error for out-of-range endpoints, self-loops, negative or non-finite
// weights. Parallel edges are permitted (the cheaper one wins in any
// shortest-path computation).
func (g *Graph) AddEdge(u, v int, w float64) error {
	n := len(g.adj)
	switch {
	case u < 0 || u >= n || v < 0 || v >= n:
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
	case u == v:
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	case w < 0 || math.IsNaN(w) || math.IsInf(w, 0):
		return fmt.Errorf("graph: edge (%d,%d) weight %g must be finite and non-negative", u, v, w)
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
	g.rev[v] = append(g.rev[v], Edge{To: u, Weight: w})
	g.nEdg++
	return nil
}

// AddBoth inserts u->v and v->u, both with weight w.
func (g *Graph) AddBoth(u, v int, w float64) error {
	if err := g.AddEdge(u, v, w); err != nil {
		return err
	}
	return g.AddEdge(v, u, w)
}

// Out returns the outgoing edges of u. The slice is owned by the graph
// and must not be modified.
func (g *Graph) Out(u int) []Edge { return g.adj[u] }

// In returns the incoming edges of v (as Edge{To: source, Weight: w}).
// The slice is owned by the graph and must not be modified.
func (g *Graph) In(v int) []Edge { return g.rev[v] }

// Unreachable is the distance reported for vertices with no path.
var Unreachable = math.Inf(1)

// ErrTargetOutOfRange is returned by the shortest-path routines for an
// invalid target vertex.
var ErrTargetOutOfRange = errors.New("graph: target vertex out of range")

// DistancesTo returns, for every vertex u, the cost of the cheapest
// directed path u -> ... -> target (following edge directions), or
// Unreachable if none exists. It is a single Dijkstra run over the
// reversed graph: O((V+E) log V).
func (g *Graph) DistancesTo(target int) ([]float64, error) {
	if target < 0 || target >= len(g.adj) {
		return nil, fmt.Errorf("%w: %d", ErrTargetOutOfRange, target)
	}
	n := len(g.adj)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[target] = 0
	h := NewIndexedMinHeap(n)
	h.Push(target, 0)
	for h.Len() > 0 {
		v, dv := h.Pop()
		if dv > dist[v] {
			continue
		}
		// rev edges of v enumerate u such that u->v exists in g.
		for _, e := range g.rev[v] {
			if nd := dv + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				h.Push(e.To, nd)
			}
		}
	}
	return dist, nil
}

// DAG is the all-shortest-paths predecessor structure toward a fixed
// target vertex: the union of every minimum-cost path from every vertex to
// the target. The paper calls this structure the "fat tree" (Phase I/II of
// the RFH algorithm), since a vertex may have several tight parents.
type DAG struct {
	// Target is the sink all paths lead to.
	Target int
	// Dist[u] is the cost of the cheapest path u->Target (Unreachable if
	// none).
	Dist []float64
	// Parents[u] lists every v such that edge u->v lies on some
	// minimum-cost path from u to Target, i.e.
	// Dist[u] = w(u,v) + Dist[v] (within the construction tolerance).
	// Parents[Target] is empty. Parent lists preserve edge insertion
	// order, keeping downstream tie-breaking deterministic.
	Parents [][]int
}

// ShortestPathDAG computes the all-shortest-paths DAG toward target.
// tol is the absolute tolerance used to recognise ties between
// floating-point path costs; pass 0 for exact comparison. A small positive
// tol (e.g. 1e-9 relative to typical weights) makes the fat tree robust to
// floating-point noise when many geometric paths tie.
func (g *Graph) ShortestPathDAG(target int, tol float64) (*DAG, error) {
	if tol < 0 {
		return nil, fmt.Errorf("graph: negative tolerance %g", tol)
	}
	dist, err := g.DistancesTo(target)
	if err != nil {
		return nil, err
	}
	parents := make([][]int, len(g.adj))
	for u := range g.adj {
		if u == target || math.IsInf(dist[u], 1) {
			continue
		}
		for _, e := range g.adj[u] {
			if math.IsInf(dist[e.To], 1) {
				continue
			}
			if math.Abs(dist[u]-(e.Weight+dist[e.To])) <= tol {
				parents[u] = append(parents[u], e.To)
			}
		}
	}
	return &DAG{Target: target, Dist: dist, Parents: parents}, nil
}

// Reachable reports, for each vertex, whether the target is reachable
// from it (d.Dist finite).
func (d *DAG) Reachable(u int) bool { return !math.IsInf(d.Dist[u], 1) }

// BellmanFordTo is a reference implementation of DistancesTo with O(V*E)
// complexity. It exists so property-based tests can cross-check Dijkstra;
// production code should use DistancesTo.
func (g *Graph) BellmanFordTo(target int) ([]float64, error) {
	if target < 0 || target >= len(g.adj) {
		return nil, fmt.Errorf("%w: %d", ErrTargetOutOfRange, target)
	}
	n := len(g.adj)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[target] = 0
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			for _, e := range g.adj[u] {
				if math.IsInf(dist[e.To], 1) {
					continue
				}
				if nd := e.Weight + dist[e.To]; nd < dist[u] {
					dist[u] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist, nil
}
