package charging

import (
	"fmt"
	"math"
	"math/rand"
)

// This file simulates the paper's Powercast field experiments (Section II).
// The hardware (a 903-927 MHz RF charger and rechargeable sensor nodes) is
// substituted by a calibrated propagation model that reproduces every
// observation the paper derives design decisions from:
//
//  1. Single-node efficiency is below 1% at 20cm and decays roughly
//     exponentially with charger-to-sensor distance.
//  2. Per-node received power is approximately constant as the number of
//     simultaneously charged nodes grows from 2 to 6 — i.e. the *network*
//     charging efficiency is near-linear in the node count.
//  3. Going from 1 to 2 nodes shows a noticeable per-node drop when the
//     sensors sit 5cm apart (mutual shadowing) and a smaller drop at 10cm.
//  4. With wider inter-sensor spacing the aggregate efficiency gain from
//     multi-node charging is larger.

// Table II of the paper: the parameter grid of the field experiments.
var (
	// TableIISensorCounts is the number of sensors charged simultaneously.
	TableIISensorCounts = []int{1, 2, 4, 6}
	// TableIIChargerDistances is the charger-to-sensor distance in meters
	// (20cm .. 100cm).
	TableIIChargerDistances = []float64{0.20, 0.40, 0.60, 0.80, 1.00}
	// TableIISensorSpacings is the sensor-to-sensor distance in meters.
	TableIISensorSpacings = []float64{0.05, 0.10}
	// TableIITrials is the number of repetitions per parameter setting.
	TableIITrials = 40
)

// Lab simulates the RF charging test bench. The zero value is invalid;
// construct with NewLab or DefaultLab.
type Lab struct {
	// TxPower is the charger's consumed power in milliwatts.
	TxPower float64
	// RefDistance is the calibration distance d0 in meters at which a
	// single node receives RefEfficiency of TxPower.
	RefDistance float64
	// RefEfficiency is the single-node efficiency at RefDistance; the
	// paper reports "less than 1%" at 20cm.
	RefEfficiency float64
	// Decay is the exponential path-loss rate kappa (1/m): received power
	// scales as exp(-kappa*(d-d0)).
	Decay float64
	// ShadowClose is the fractional per-node power loss from mutual
	// shadowing when >= 2 sensors sit at the close spacing.
	ShadowClose float64
	// CloseSpacing is the spacing (m) at which ShadowClose applies in
	// full; shadowing fades linearly to zero at 3*CloseSpacing, so at
	// double the close spacing the loss is half — matching the paper's
	// observation that the 1->2 sensor drop shrinks but persists at 10cm.
	CloseSpacing float64
	// NoiseStdDev is the relative standard deviation of trial noise
	// (fading, alignment jitter) applied multiplicatively per trial.
	NoiseStdDev float64
}

// DefaultLab returns a bench calibrated to the paper's qualitative report:
// a 3W charger, 0.67% single-node efficiency at 20cm decaying
// exponentially, 22% mutual shadowing at 5cm spacing fading out by 10cm+,
// and 6% trial noise.
func DefaultLab() Lab {
	return Lab{
		TxPower:       3000, // 3 W in mW (Powercast TX91501-class)
		RefDistance:   0.20,
		RefEfficiency: 0.0067,
		Decay:         3.5,
		ShadowClose:   0.22,
		CloseSpacing:  0.05,
		NoiseStdDev:   0.06,
	}
}

// NewLab validates and returns a Lab.
func NewLab(txPowerMW, refDist, refEff, decay, shadowClose, closeSpacing, noise float64) (Lab, error) {
	l := Lab{
		TxPower:       txPowerMW,
		RefDistance:   refDist,
		RefEfficiency: refEff,
		Decay:         decay,
		ShadowClose:   shadowClose,
		CloseSpacing:  closeSpacing,
		NoiseStdDev:   noise,
	}
	if err := l.Validate(); err != nil {
		return Lab{}, err
	}
	return l, nil
}

// Validate checks the physical plausibility of the bench parameters.
func (l Lab) Validate() error {
	switch {
	case l.TxPower <= 0:
		return fmt.Errorf("charging: lab TxPower must be positive, got %g", l.TxPower)
	case l.RefDistance <= 0:
		return fmt.Errorf("charging: lab RefDistance must be positive, got %g", l.RefDistance)
	case !(l.RefEfficiency > 0 && l.RefEfficiency < 1):
		return fmt.Errorf("charging: lab RefEfficiency must be in (0, 1), got %g", l.RefEfficiency)
	case l.Decay < 0:
		return fmt.Errorf("charging: lab Decay must be non-negative, got %g", l.Decay)
	case l.ShadowClose < 0 || l.ShadowClose >= 1:
		return fmt.Errorf("charging: lab ShadowClose must be in [0, 1), got %g", l.ShadowClose)
	case l.CloseSpacing <= 0:
		return fmt.Errorf("charging: lab CloseSpacing must be positive, got %g", l.CloseSpacing)
	case l.NoiseStdDev < 0:
		return fmt.Errorf("charging: lab NoiseStdDev must be non-negative, got %g", l.NoiseStdDev)
	}
	return nil
}

// SingleNodePower returns the noise-free received power (mW) of one node
// charged alone at distance d meters from the charger.
func (l Lab) SingleNodePower(d float64) float64 {
	return l.TxPower * l.RefEfficiency * math.Exp(-l.Decay*(d-l.RefDistance))
}

// shadowFactor returns the multiplicative per-node factor (<= 1) from
// mutual shadowing among m sensors spaced `spacing` meters apart. One node
// alone sees no shadowing; for m >= 2 the loss is ShadowClose at
// CloseSpacing and fades linearly to zero at 2*CloseSpacing and beyond.
// Per the field data, the factor is (approximately) independent of m for
// m in 2..6: once a neighbour exists the loss is incurred, and further
// nodes capture otherwise-wasted energy rather than stealing from peers.
func (l Lab) shadowFactor(m int, spacing float64) float64 {
	if m <= 1 {
		return 1
	}
	span := 2 * l.CloseSpacing // fade width: shadowing gone at 3*CloseSpacing
	excess := spacing - l.CloseSpacing
	if excess < 0 {
		excess = 0
	}
	fade := 1 - excess/span
	if fade < 0 {
		fade = 0
	}
	return 1 - l.ShadowClose*fade
}

// PerNodePower returns the noise-free expected received power (mW) per
// node when m sensors spaced `spacing` meters apart are charged
// simultaneously at distance d.
func (l Lab) PerNodePower(d float64, m int, spacing float64) (float64, error) {
	if m < 1 {
		return 0, errNonPositiveNodes
	}
	if d <= 0 {
		return 0, fmt.Errorf("charging: charger distance must be positive, got %g", d)
	}
	if spacing <= 0 && m > 1 {
		return 0, fmt.Errorf("charging: sensor spacing must be positive, got %g", spacing)
	}
	return l.SingleNodePower(d) * l.shadowFactor(m, spacing), nil
}

// NetworkEfficiency returns the fraction of charger power captured by the
// whole m-node group (noise-free).
func (l Lab) NetworkEfficiency(d float64, m int, spacing float64) (float64, error) {
	per, err := l.PerNodePower(d, m, spacing)
	if err != nil {
		return 0, err
	}
	return float64(m) * per / l.TxPower, nil
}

// Measurement is one aggregated cell of the field-experiment grid: the
// statistics of `Trials` noisy per-node power readings.
type Measurement struct {
	Sensors       int     `json:"sensors"`        // nodes charged simultaneously
	ChargerDist   float64 `json:"charger_dist_m"` // charger-to-sensor distance (m)
	Spacing       float64 `json:"spacing_m"`      // sensor-to-sensor distance (m)
	Trials        int     `json:"trials"`         // repetitions averaged
	MeanPerNodeMW float64 `json:"mean_per_node_mw"`
	StdDevMW      float64 `json:"stddev_mw"`
	NetworkEffPct float64 `json:"network_eff_pct"`  // m * mean / TxPower * 100
	PerNodeEffPct float64 `json:"per_node_eff_pct"` // mean / TxPower * 100
}

// MeasureCell runs `trials` noisy trials for one parameter setting and
// returns the aggregated Measurement. rng drives the multiplicative
// Gaussian trial noise and must not be nil when NoiseStdDev > 0.
func (l Lab) MeasureCell(rng *rand.Rand, m int, d, spacing float64, trials int) (Measurement, error) {
	if trials < 1 {
		return Measurement{}, fmt.Errorf("charging: trials must be >= 1, got %d", trials)
	}
	base, err := l.PerNodePower(d, m, spacing)
	if err != nil {
		return Measurement{}, err
	}
	var sum, sumSq float64
	for t := 0; t < trials; t++ {
		v := base
		if l.NoiseStdDev > 0 {
			noise := 1 + rng.NormFloat64()*l.NoiseStdDev
			if noise < 0 {
				noise = 0
			}
			v = base * noise
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(trials)
	variance := sumSq/float64(trials) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Measurement{
		Sensors:       m,
		ChargerDist:   d,
		Spacing:       spacing,
		Trials:        trials,
		MeanPerNodeMW: mean,
		StdDevMW:      math.Sqrt(variance),
		NetworkEffPct: float64(m) * mean / l.TxPower * 100,
		PerNodeEffPct: mean / l.TxPower * 100,
	}, nil
}

// RunTableII sweeps the full Table II grid (sensor counts x charger
// distances x spacings, 40 trials each) and returns the measurements in
// deterministic order: spacing-major, then sensor count, then distance —
// the layout of Fig. 1's two sub-plots and their series.
func (l Lab) RunTableII(rng *rand.Rand) ([]Measurement, error) {
	out := make([]Measurement, 0, len(TableIISensorSpacings)*len(TableIISensorCounts)*len(TableIIChargerDistances))
	for _, spacing := range TableIISensorSpacings {
		for _, m := range TableIISensorCounts {
			for _, d := range TableIIChargerDistances {
				cell, err := l.MeasureCell(rng, m, d, spacing, TableIITrials)
				if err != nil {
					return nil, err
				}
				out = append(out, cell)
			}
		}
	}
	return out, nil
}
