package charging

import (
	"math"
	"math/rand"
	"testing"
)

func TestDefaultLabValid(t *testing.T) {
	if err := DefaultLab().Validate(); err != nil {
		t.Fatalf("default lab invalid: %v", err)
	}
}

func TestLabValidation(t *testing.T) {
	base := DefaultLab()
	mutate := []struct {
		name string
		fn   func(*Lab)
	}{
		{"zero tx power", func(l *Lab) { l.TxPower = 0 }},
		{"zero ref distance", func(l *Lab) { l.RefDistance = 0 }},
		{"ref efficiency 1", func(l *Lab) { l.RefEfficiency = 1 }},
		{"ref efficiency 0", func(l *Lab) { l.RefEfficiency = 0 }},
		{"negative decay", func(l *Lab) { l.Decay = -1 }},
		{"shadow 1", func(l *Lab) { l.ShadowClose = 1 }},
		{"negative shadow", func(l *Lab) { l.ShadowClose = -0.1 }},
		{"zero close spacing", func(l *Lab) { l.CloseSpacing = 0 }},
		{"negative noise", func(l *Lab) { l.NoiseStdDev = -0.1 }},
	}
	for _, tc := range mutate {
		t.Run(tc.name, func(t *testing.T) {
			l := base
			tc.fn(&l)
			if err := l.Validate(); err == nil {
				t.Error("invalid lab accepted")
			}
		})
	}
}

func TestSingleNodeEfficiencyBelowOnePercent(t *testing.T) {
	l := DefaultLab()
	// The paper: "when a sensor is 20cm away from the charger, on average
	// the node can obtain less than 1% of the energy consumed".
	if eff := l.SingleNodePower(0.20) / l.TxPower; eff >= 0.01 {
		t.Errorf("single-node efficiency at 20cm = %.3f%%, want < 1%%", eff*100)
	}
}

func TestPowerDecaysExponentially(t *testing.T) {
	l := DefaultLab()
	// Constant ratio across equal distance steps is the signature of
	// exponential decay.
	r1 := l.SingleNodePower(0.40) / l.SingleNodePower(0.20)
	r2 := l.SingleNodePower(0.60) / l.SingleNodePower(0.40)
	r3 := l.SingleNodePower(1.00) / l.SingleNodePower(0.80)
	if math.Abs(r1-r2) > 1e-9 || math.Abs(r2-r3) > 1e-9 {
		t.Errorf("decay ratios differ: %v %v %v", r1, r2, r3)
	}
	if r1 >= 1 {
		t.Errorf("power did not decay: ratio %v", r1)
	}
}

func TestShadowingSpacingDependence(t *testing.T) {
	l := DefaultLab()
	p1, err := l.PerNodePower(0.20, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	p2at5, err := l.PerNodePower(0.20, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	p2at10, err := l.PerNodePower(0.20, 2, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !(p2at5 < p2at10 && p2at10 < p1) {
		t.Errorf("want drop ordering p(2,5cm)=%v < p(2,10cm)=%v < p(1)=%v", p2at5, p2at10, p1)
	}
	// Far-apart sensors see no shadowing at all.
	p2far, err := l.PerNodePower(0.20, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2far-p1) > 1e-9 {
		t.Errorf("no shadowing expected at 1m spacing: %v vs %v", p2far, p1)
	}
}

func TestPerNodePowerFlatFrom2To6(t *testing.T) {
	l := DefaultLab()
	for _, spacing := range TableIISensorSpacings {
		p2, err := l.PerNodePower(0.40, 2, spacing)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []int{4, 6} {
			pm, err := l.PerNodePower(0.40, m, spacing)
			if err != nil {
				t.Fatal(err)
			}
			if pm != p2 {
				t.Errorf("noise-free per-node power changed from 2 to %d sensors: %v vs %v", m, pm, p2)
			}
		}
	}
}

func TestNetworkEfficiencyNearLinear(t *testing.T) {
	l := DefaultLab()
	e1, err := l.NetworkEfficiency(0.20, 1, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{2, 4, 6} {
		em, err := l.NetworkEfficiency(0.20, m, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		gain := em / e1
		// Linear would be m exactly; shadowing at 10cm costs ~11%.
		if gain < 0.8*float64(m) || gain > float64(m) {
			t.Errorf("network efficiency gain for %d sensors = %.2f, want within [%.1f, %d]",
				m, gain, 0.8*float64(m), m)
		}
	}
}

func TestPerNodePowerErrors(t *testing.T) {
	l := DefaultLab()
	if _, err := l.PerNodePower(0.20, 0, 0.05); err == nil {
		t.Error("accepted zero sensors")
	}
	if _, err := l.PerNodePower(0, 1, 0.05); err == nil {
		t.Error("accepted zero distance")
	}
	if _, err := l.PerNodePower(0.20, 2, 0); err == nil {
		t.Error("accepted zero spacing with multiple sensors")
	}
	if _, err := l.PerNodePower(0.20, 1, 0); err != nil {
		t.Errorf("single sensor should not need a spacing: %v", err)
	}
}

func TestMeasureCellStatistics(t *testing.T) {
	l := DefaultLab()
	rng := rand.New(rand.NewSource(9))
	cell, err := l.MeasureCell(rng, 4, 0.40, 0.10, 400)
	if err != nil {
		t.Fatal(err)
	}
	base, err := l.PerNodePower(0.40, 4, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// With 400 trials of 6% multiplicative noise the mean is within a few
	// standard errors of the noise-free value.
	if math.Abs(cell.MeanPerNodeMW-base)/base > 0.02 {
		t.Errorf("measured mean %.4f deviates >2%% from noise-free %.4f", cell.MeanPerNodeMW, base)
	}
	wantStd := base * l.NoiseStdDev
	if cell.StdDevMW < wantStd/2 || cell.StdDevMW > wantStd*2 {
		t.Errorf("measured stddev %.4f implausible for noise level (want ~%.4f)", cell.StdDevMW, wantStd)
	}
	if cell.Trials != 400 || cell.Sensors != 4 {
		t.Errorf("cell metadata wrong: %+v", cell)
	}
	if _, err := l.MeasureCell(rng, 1, 0.20, 0.05, 0); err == nil {
		t.Error("accepted zero trials")
	}
}

func TestMeasureCellDeterministic(t *testing.T) {
	l := DefaultLab()
	a, err := l.MeasureCell(rand.New(rand.NewSource(5)), 2, 0.60, 0.05, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.MeasureCell(rand.New(rand.NewSource(5)), 2, 0.60, 0.05, 40)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed produced different measurements: %+v vs %+v", a, b)
	}
}

func TestRunTableIIGridShape(t *testing.T) {
	l := DefaultLab()
	cells, err := l.RunTableII(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	want := len(TableIISensorSpacings) * len(TableIISensorCounts) * len(TableIIChargerDistances)
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Trials != TableIITrials {
			t.Errorf("cell %+v has %d trials, want %d", c, c.Trials, TableIITrials)
		}
		if c.MeanPerNodeMW <= 0 {
			t.Errorf("cell %+v has non-positive power", c)
		}
	}
	// Deterministic ordering: first cell is 1 sensor, 20cm, 5cm spacing.
	first := cells[0]
	if first.Sensors != 1 || first.ChargerDist != 0.20 || first.Spacing != 0.05 {
		t.Errorf("unexpected first cell %+v", first)
	}
}
