// Package charging models wireless power transfer to sensor nodes.
//
// It has two halves:
//
//   - The abstract efficiency model consumed by the deployment/routing
//     optimization: charging a single node has efficiency eta (<<1), and
//     charging m co-located nodes simultaneously scales the *network*
//     efficiency by a gain factor k(m), i.e. every node still receives
//     eta units per charger unit, so the network as a whole receives
//     k(m)*eta. The paper's field experiments support k(m) ~= m (linear),
//     which is the default; sublinear and saturating variants exist for
//     the sensitivity/ablation experiments.
//
//   - A radio-frequency charging lab (see lab.go) that simulates the
//     paper's Powercast field experiments (Section II, Table II, Fig. 1).
//     Hardware is substituted by a calibrated propagation model; the
//     substitution is documented in DESIGN.md §5.
//
// Units: power in milliwatts, distance in meters, energy in nanojoules.
package charging

import (
	"errors"
	"fmt"
	"math"
)

// GainKind selects the functional form of the multi-node gain k(m).
type GainKind string

// Supported gain forms. The zero value of Gain behaves as GainLinear so
// that struct-literal Models work without ceremony.
const (
	// GainLinear is the paper's working assumption k(m) = m (Section III):
	// charging m nodes together recharges the network m times more
	// efficiently than charging them one by one.
	GainLinear GainKind = "linear"
	// GainSublinear is k(m) = m^Exponent with Exponent in (0, 1],
	// modelling mild mutual shadowing between tightly packed receivers.
	// The field experiments bound the true gain between exponent ~0.9
	// and linear.
	GainSublinear GainKind = "sublinear"
	// GainSaturating is linear up to Cap nodes and flat beyond,
	// modelling a charger whose beam covers at most Cap receivers.
	GainSaturating GainKind = "saturating"
)

// Gain is a declarative, JSON-serialisable multi-node gain function k(m).
type Gain struct {
	Kind GainKind `json:"kind,omitempty"`
	// Exponent parameterises GainSublinear; ignored otherwise.
	Exponent float64 `json:"exponent,omitempty"`
	// Cap parameterises GainSaturating; ignored otherwise.
	Cap int `json:"cap,omitempty"`
}

// Linear returns the paper's default gain k(m) = m.
func Linear() Gain { return Gain{Kind: GainLinear} }

// Sublinear returns k(m) = m^exponent.
func Sublinear(exponent float64) Gain {
	return Gain{Kind: GainSublinear, Exponent: exponent}
}

// Saturating returns k(m) = min(m, cap).
func Saturating(cap int) Gain { return Gain{Kind: GainSaturating, Cap: cap} }

// Factor returns k(m) for m >= 1. It panics on m < 1; callers validate m
// through Model methods.
func (g Gain) Factor(m int) float64 {
	if m < 1 {
		panic(errNonPositiveNodes)
	}
	switch g.Kind {
	case GainLinear, "":
		return float64(m)
	case GainSublinear:
		return math.Pow(float64(m), g.Exponent)
	case GainSaturating:
		if m > g.Cap {
			m = g.Cap
		}
		return float64(m)
	default:
		panic(fmt.Sprintf("charging: unknown gain kind %q", g.Kind))
	}
}

// Validate checks the gain parameters.
func (g Gain) Validate() error {
	switch g.Kind {
	case GainLinear, "":
		return nil
	case GainSublinear:
		if !(g.Exponent > 0 && g.Exponent <= 1) {
			return fmt.Errorf("charging: sublinear gain exponent must be in (0, 1], got %g", g.Exponent)
		}
		return nil
	case GainSaturating:
		if g.Cap < 1 {
			return fmt.Errorf("charging: saturating gain cap must be >= 1, got %d", g.Cap)
		}
		return nil
	default:
		return fmt.Errorf("charging: unknown gain kind %q", g.Kind)
	}
}

// Model is the charging-efficiency model used by the optimization. The
// zero value is invalid (EtaSingle must be positive); construct with
// NewModel or Default, or as a struct literal with a positive EtaSingle.
type Model struct {
	// EtaSingle is the single-node charging efficiency eta in (0, 1]:
	// the fraction of charger energy received by one node charged alone.
	// The paper measured <1% on Powercast hardware; the evaluation never
	// fixes it (it is a pure 1/eta scale on every cost), so Default uses 1.
	EtaSingle float64 `json:"eta_single"`
	// Gain is the multi-node gain k(m); the zero value means linear.
	Gain Gain `json:"gain,omitempty"`
}

// NewModel validates eta and the gain and returns a Model.
func NewModel(eta float64, gain Gain) (Model, error) {
	m := Model{EtaSingle: eta, Gain: gain}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

// Default returns the model used throughout the evaluation: eta = 1 with
// linear gain, reporting costs in the same units as consumed energy.
func Default() Model {
	return Model{EtaSingle: 1, Gain: Linear()}
}

// errNonPositiveNodes guards the m >= 1 precondition shared by the
// efficiency queries.
var errNonPositiveNodes = errors.New("charging: number of co-located nodes must be >= 1")

// NetworkEfficiency returns eta(m) = k(m)*eta, the fraction of charger
// energy delivered to a post holding m nodes (summed across its nodes).
func (c Model) NetworkEfficiency(m int) (float64, error) {
	if m < 1 {
		return 0, errNonPositiveNodes
	}
	return c.Gain.Factor(m) * c.EtaSingle, nil
}

// RechargeCost returns the charger energy needed to replenish `consumed`
// units of energy at a post deployed with m nodes:
//
//	cost = consumed / (k(m) * eta)
//
// This is the per-post term of the paper's objective function.
func (c Model) RechargeCost(consumed float64, m int) (float64, error) {
	eff, err := c.NetworkEfficiency(m)
	if err != nil {
		return 0, err
	}
	if consumed < 0 {
		return 0, fmt.Errorf("charging: consumed energy must be non-negative, got %g", consumed)
	}
	return consumed / eff, nil
}

// Validate checks the model invariants, including k(1) = 1 and
// monotonicity of the gain over a probe range.
func (c Model) Validate() error {
	if !(c.EtaSingle > 0 && c.EtaSingle <= 1) {
		return fmt.Errorf("charging: eta must be in (0, 1], got %g", c.EtaSingle)
	}
	if err := c.Gain.Validate(); err != nil {
		return err
	}
	if k1 := c.Gain.Factor(1); math.Abs(k1-1) > 1e-9 {
		return fmt.Errorf("charging: gain(1) must be 1, got %g", k1)
	}
	prev := 1.0
	for m := 2; m <= 16; m++ {
		cur := c.Gain.Factor(m)
		if cur < prev-1e-12 {
			return fmt.Errorf("charging: gain must be non-decreasing, gain(%d)=%g < gain(%d)=%g", m, cur, m-1, prev)
		}
		prev = cur
	}
	return nil
}
