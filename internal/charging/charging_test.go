package charging

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestGainFactors(t *testing.T) {
	cases := []struct {
		name string
		g    Gain
		m    int
		want float64
	}{
		{"linear 1", Linear(), 1, 1},
		{"linear 6", Linear(), 6, 6},
		{"zero value acts linear", Gain{}, 4, 4},
		{"sublinear 1", Sublinear(0.9), 1, 1},
		{"sublinear 4", Sublinear(0.5), 4, 2},
		{"saturating below cap", Saturating(4), 3, 3},
		{"saturating at cap", Saturating(4), 4, 4},
		{"saturating beyond cap", Saturating(4), 9, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Factor(tc.m); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Factor(%d) = %v, want %v", tc.m, got, tc.want)
			}
		})
	}
}

func TestGainValidate(t *testing.T) {
	valid := []Gain{Linear(), {}, Sublinear(0.5), Sublinear(1), Saturating(1), Saturating(10)}
	for _, g := range valid {
		if err := g.Validate(); err != nil {
			t.Errorf("valid gain %+v rejected: %v", g, err)
		}
	}
	invalid := []Gain{
		Sublinear(0), Sublinear(-1), Sublinear(1.5),
		Saturating(0), Saturating(-2),
		{Kind: "exotic"},
	}
	for _, g := range invalid {
		if err := g.Validate(); err == nil {
			t.Errorf("invalid gain %+v accepted", g)
		}
	}
}

func TestGainFactorPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Factor(0) did not panic")
		}
	}()
	Linear().Factor(0)
}

func TestModelValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	bad := []Model{
		{EtaSingle: 0},
		{EtaSingle: -0.1},
		{EtaSingle: 1.5},
		{EtaSingle: 0.5, Gain: Sublinear(2)},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("invalid model %+v accepted", m)
		}
	}
	if _, err := NewModel(0.0067, Linear()); err != nil {
		t.Errorf("NewModel rejected the field-measured efficiency: %v", err)
	}
	if _, err := NewModel(0, Linear()); err == nil {
		t.Error("NewModel accepted eta = 0")
	}
}

func TestNetworkEfficiencyAndRechargeCost(t *testing.T) {
	m, err := NewModel(0.01, Linear())
	if err != nil {
		t.Fatal(err)
	}
	eff, err := m.NetworkEfficiency(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eff-0.05) > 1e-12 {
		t.Errorf("eta(5) = %v, want 0.05", eff)
	}
	cost, err := m.RechargeCost(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-200) > 1e-9 {
		t.Errorf("RechargeCost(10, 5) = %v, want 200", cost)
	}
	if _, err := m.NetworkEfficiency(0); err == nil {
		t.Error("NetworkEfficiency(0) accepted")
	}
	if _, err := m.RechargeCost(-1, 1); err == nil {
		t.Error("RechargeCost with negative energy accepted")
	}
}

// TestRechargeCostMonotone checks the property the exact solver's bound
// relies on: cost is non-increasing in the node count.
func TestRechargeCostMonotone(t *testing.T) {
	models := []Model{Default(), {EtaSingle: 0.01, Gain: Sublinear(0.9)}, {EtaSingle: 0.5, Gain: Saturating(4)}}
	property := func(rawEnergy float64, rawM uint8) bool {
		energy := math.Mod(math.Abs(rawEnergy), 1e6)
		m := int(rawM%20) + 1
		for _, cm := range models {
			c1, err1 := cm.RechargeCost(energy, m)
			c2, err2 := cm.RechargeCost(energy, m+1)
			if err1 != nil || err2 != nil {
				return false
			}
			if c2 > c1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLinearGainHalvesCostPerDoubling(t *testing.T) {
	m := Default()
	c1, err := m.RechargeCost(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.RechargeCost(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c1/c2-2) > 1e-12 {
		t.Errorf("doubling nodes should halve cost under linear gain: %v vs %v", c1, c2)
	}
}

func TestCostScalesInverseEta(t *testing.T) {
	lo, err := NewModel(0.005, Linear())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := NewModel(0.01, Linear())
	if err != nil {
		t.Fatal(err)
	}
	cLo, _ := lo.RechargeCost(42, 3)
	cHi, _ := hi.RechargeCost(42, 3)
	if math.Abs(cLo/cHi-2) > 1e-12 {
		t.Errorf("halving eta should double cost: %v vs %v", cLo, cHi)
	}
}

func TestGainJSONRoundTrip(t *testing.T) {
	for _, g := range []Gain{Linear(), Sublinear(0.8), Saturating(6)} {
		raw, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		var back Gain
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back.Kind != g.Kind || back.Exponent != g.Exponent || back.Cap != g.Cap {
			t.Errorf("round trip changed gain: %+v -> %+v", g, back)
		}
		for m := 1; m <= 10; m++ {
			if back.Factor(m) != g.Factor(m) {
				t.Errorf("factor changed after round trip at m=%d", m)
			}
		}
	}
}
