package charging

import (
	"errors"
	"fmt"
	"math"
)

// Calibration is the result of fitting the exponential propagation model
// to measured single-sensor data.
type Calibration struct {
	// RefEfficiency is the fitted single-node efficiency at RefDistance.
	RefEfficiency float64
	// Decay is the fitted exponential path-loss rate (1/m).
	Decay float64
	// R2 is the coefficient of determination of the log-linear fit;
	// close to 1 means the exponential model explains the data.
	R2 float64
	// Samples is the number of measurements used.
	Samples int
}

// Calibrate fits the lab's propagation model to measured single-sensor
// received powers: ln P(d) = ln(TxPower*eta0) - kappa*(d - d0) is linear
// in d, so an ordinary least-squares fit on (d, ln P) recovers eta0 (at
// the reference distance refDist) and kappa. This is how a practitioner
// would re-parameterise the simulated lab against their own charger
// hardware. Measurements must be single-sensor cells with positive power.
func Calibrate(txPowerMW, refDist float64, cells []Measurement) (*Calibration, error) {
	if txPowerMW <= 0 {
		return nil, fmt.Errorf("charging: calibrate needs positive tx power, got %g", txPowerMW)
	}
	if refDist <= 0 {
		return nil, fmt.Errorf("charging: calibrate needs positive reference distance, got %g", refDist)
	}
	var xs, ys []float64
	for _, c := range cells {
		if c.Sensors != 1 {
			continue
		}
		if c.MeanPerNodeMW <= 0 {
			return nil, fmt.Errorf("charging: non-positive power %g at %gm", c.MeanPerNodeMW, c.ChargerDist)
		}
		xs = append(xs, c.ChargerDist)
		ys = append(ys, math.Log(c.MeanPerNodeMW))
	}
	if len(xs) < 2 {
		return nil, errors.New("charging: calibrate needs at least two single-sensor measurements at distinct distances")
	}

	slope, intercept, r2, err := linearFit(xs, ys)
	if err != nil {
		return nil, err
	}
	kappa := -slope
	// ln P(refDist) = intercept + slope*refDist; eta0 = P(refDist)/Tx.
	pRef := math.Exp(intercept + slope*refDist)
	return &Calibration{
		RefEfficiency: pRef / txPowerMW,
		Decay:         kappa,
		R2:            r2,
		Samples:       len(xs),
	}, nil
}

// Lab builds a Lab from the calibration, inheriting the shadowing and
// noise parameters from base.
func (c *Calibration) Lab(base Lab, txPowerMW, refDist float64) (Lab, error) {
	l := base
	l.TxPower = txPowerMW
	l.RefDistance = refDist
	l.RefEfficiency = c.RefEfficiency
	l.Decay = c.Decay
	if err := l.Validate(); err != nil {
		return Lab{}, err
	}
	return l, nil
}

// linearFit is ordinary least squares y = intercept + slope*x with R².
func linearFit(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	n := float64(len(xs))
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/n, sumY/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("charging: calibrate needs measurements at distinct distances")
	}
	slope = sxy / sxx
	intercept = meanY - slope*meanX
	if syy == 0 {
		return slope, intercept, 1, nil
	}
	ssRes := syy - slope*sxy
	r2 = 1 - ssRes/syy
	return slope, intercept, r2, nil
}
