package charging

import (
	"math"
	"math/rand"
	"testing"
)

// TestCalibrateRecoversKnownParameters: measurements generated from a
// known lab must fit back to its parameters.
func TestCalibrateRecoversKnownParameters(t *testing.T) {
	truth := DefaultLab()
	rng := rand.New(rand.NewSource(3))

	// Dense single-sensor sweep with many trials to average out noise.
	var cells []Measurement
	for d := 0.20; d <= 1.0; d += 0.10 {
		cell, err := truth.MeasureCell(rng, 1, d, 0.05, 400)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, cell)
	}
	cal, err := Calibrate(truth.TxPower, truth.RefDistance, cells)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if rel := math.Abs(cal.Decay-truth.Decay) / truth.Decay; rel > 0.05 {
		t.Errorf("fitted decay %.3f, truth %.3f (%.1f%% off)", cal.Decay, truth.Decay, rel*100)
	}
	if rel := math.Abs(cal.RefEfficiency-truth.RefEfficiency) / truth.RefEfficiency; rel > 0.05 {
		t.Errorf("fitted eta0 %.5f, truth %.5f (%.1f%% off)", cal.RefEfficiency, truth.RefEfficiency, rel*100)
	}
	if cal.R2 < 0.99 {
		t.Errorf("R² = %.4f; the exponential model should explain its own data", cal.R2)
	}
	if cal.Samples != len(cells) {
		t.Errorf("used %d samples, want %d", cal.Samples, len(cells))
	}

	// Rebuild a lab from the calibration and check its predictions.
	fitted, err := cal.Lab(truth, truth.TxPower, truth.RefDistance)
	if err != nil {
		t.Fatalf("Lab: %v", err)
	}
	for _, d := range []float64{0.25, 0.55, 0.95} {
		want := truth.SingleNodePower(d)
		got := fitted.SingleNodePower(d)
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("fitted lab predicts %.4f mW at %.2fm, truth %.4f (%.1f%% off)", got, d, want, rel*100)
		}
	}
}

// TestCalibrateIgnoresMultiSensorCells: only single-sensor measurements
// carry clean propagation information.
func TestCalibrateIgnoresMultiSensorCells(t *testing.T) {
	truth := DefaultLab()
	rng := rand.New(rand.NewSource(4))
	var cells []Measurement
	for d := 0.20; d <= 1.0; d += 0.20 {
		for _, m := range []int{1, 4} {
			cell, err := truth.MeasureCell(rng, m, d, 0.05, 100)
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, cell)
		}
	}
	cal, err := Calibrate(truth.TxPower, truth.RefDistance, cells)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Samples != 5 {
		t.Errorf("used %d samples, want only the 5 single-sensor cells", cal.Samples)
	}
}

func TestCalibrateErrors(t *testing.T) {
	good := Measurement{Sensors: 1, ChargerDist: 0.2, MeanPerNodeMW: 10}
	if _, err := Calibrate(0, 0.2, []Measurement{good}); err == nil {
		t.Error("zero tx power accepted")
	}
	if _, err := Calibrate(3000, 0, []Measurement{good}); err == nil {
		t.Error("zero reference distance accepted")
	}
	if _, err := Calibrate(3000, 0.2, []Measurement{good}); err == nil {
		t.Error("single measurement accepted")
	}
	same := []Measurement{good, good}
	if _, err := Calibrate(3000, 0.2, same); err == nil {
		t.Error("coincident distances accepted")
	}
	bad := []Measurement{good, {Sensors: 1, ChargerDist: 0.4, MeanPerNodeMW: 0}}
	if _, err := Calibrate(3000, 0.2, bad); err == nil {
		t.Error("non-positive power accepted")
	}
}
