// Package tour plans mobile-charger itineraries: given the posts that
// currently need charging, it builds a short closed or open tour visiting
// all of them (nearest-neighbour construction + 2-opt improvement — the
// classic TSP heuristics, which are more than adequate for the tens of
// stops a charging round involves).
//
// The paper anticipates "robots, vehicles or even human operators
// carrying wireless chargers" but leaves scheduling out of scope; this
// package is the substrate behind the simulator's tour-based charging
// policy.
package tour

import (
	"errors"
	"fmt"
	"math"

	"wrsn/internal/geom"
)

// Plan is an ordered visiting sequence over a set of stops.
type Plan struct {
	// Order holds indices into the stop slice passed to the planner, in
	// visiting order.
	Order []int
	// Length is the travel distance of the tour starting at the
	// planner's start point and visiting the stops in order (not
	// returning to start).
	Length float64
}

// maxTwoOptRounds bounds the improvement loop; 2-opt converges long
// before this on realistic stop counts.
const maxTwoOptRounds = 64

// PlanTour builds an open tour from start through every stop: greedy
// nearest-neighbour order refined by 2-opt until no crossing pair of legs
// remains. It is deterministic: ties resolve to the lowest stop index.
func PlanTour(start geom.Point, stops []geom.Point) (*Plan, error) {
	if len(stops) == 0 {
		return nil, errors.New("tour: no stops to plan")
	}
	for i, s := range stops {
		if math.IsNaN(s.X) || math.IsNaN(s.Y) {
			return nil, fmt.Errorf("tour: stop %d has NaN coordinates", i)
		}
	}

	order := nearestNeighbour(start, stops)
	order = twoOpt(start, stops, order)
	return &Plan{Order: order, Length: tourLength(start, stops, order)}, nil
}

// nearestNeighbour repeatedly visits the closest unvisited stop.
func nearestNeighbour(start geom.Point, stops []geom.Point) []int {
	n := len(stops)
	visited := make([]bool, n)
	order := make([]int, 0, n)
	cur := start
	for len(order) < n {
		best, bestD2 := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if visited[i] {
				continue
			}
			if d2 := geom.Dist2(cur, stops[i]); d2 < bestD2 {
				best, bestD2 = i, d2
			}
		}
		visited[best] = true
		order = append(order, best)
		cur = stops[best]
	}
	return order
}

// twoOpt repeatedly reverses tour segments while that shortens the tour.
// For an open tour from a fixed start, reversing order[i..j] changes only
// the legs entering position i and leaving position j.
func twoOpt(start geom.Point, stops []geom.Point, order []int) []int {
	n := len(order)
	if n < 3 {
		return order
	}
	pos := func(i int) geom.Point {
		if i < 0 {
			return start
		}
		return stops[order[i]]
	}
	for round := 0; round < maxTwoOptRounds; round++ {
		improved := false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				// Current legs: (i-1 -> i) and (j -> j+1).
				// After reversal: (i-1 -> j) and (i -> j+1).
				before := geom.Dist(pos(i-1), pos(i))
				after := geom.Dist(pos(i-1), pos(j))
				if j+1 < n {
					before += geom.Dist(pos(j), pos(j+1))
					after += geom.Dist(pos(i), pos(j+1))
				}
				if after < before-1e-9 {
					reverse(order[i : j+1])
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return order
}

func reverse(s []int) {
	for a, b := 0, len(s)-1; a < b; a, b = a+1, b-1 {
		s[a], s[b] = s[b], s[a]
	}
}

// tourLength sums the legs of the open tour.
func tourLength(start geom.Point, stops []geom.Point, order []int) float64 {
	total := 0.0
	cur := start
	for _, idx := range order {
		total += geom.Dist(cur, stops[idx])
		cur = stops[idx]
	}
	return total
}

// Length recomputes a plan's length over the given stops (e.g. after the
// caller filtered or perturbed positions). It validates the order is a
// permutation of the stops.
func (p *Plan) Validate(nStops int) error {
	if len(p.Order) != nStops {
		return fmt.Errorf("tour: plan visits %d of %d stops", len(p.Order), nStops)
	}
	seen := make([]bool, nStops)
	for _, idx := range p.Order {
		if idx < 0 || idx >= nStops {
			return fmt.Errorf("tour: stop index %d out of range", idx)
		}
		if seen[idx] {
			return fmt.Errorf("tour: stop %d visited twice", idx)
		}
		seen[idx] = true
	}
	return nil
}
