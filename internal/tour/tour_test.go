package tour

import (
	"math"
	"math/rand"
	"testing"

	"wrsn/internal/geom"
)

func TestPlanTourSingleStop(t *testing.T) {
	plan, err := PlanTour(geom.Point{}, []geom.Point{{X: 3, Y: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Order) != 1 || plan.Order[0] != 0 {
		t.Fatalf("order = %v", plan.Order)
	}
	if math.Abs(plan.Length-5) > 1e-12 {
		t.Errorf("length = %v, want 5", plan.Length)
	}
}

func TestPlanTourErrors(t *testing.T) {
	if _, err := PlanTour(geom.Point{}, nil); err == nil {
		t.Error("empty stop list accepted")
	}
	if _, err := PlanTour(geom.Point{}, []geom.Point{{X: math.NaN()}}); err == nil {
		t.Error("NaN stop accepted")
	}
}

// TestPlanTourLineOptimal: stops on a line from the start must be visited
// in order — any other order is strictly longer.
func TestPlanTourLineOptimal(t *testing.T) {
	stops := []geom.Point{{X: 30}, {X: 10}, {X: 20}, {X: 40}}
	plan, err := PlanTour(geom.Point{}, stops)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0, 3}
	for i, w := range want {
		if plan.Order[i] != w {
			t.Fatalf("order = %v, want %v", plan.Order, want)
		}
	}
	if math.Abs(plan.Length-40) > 1e-12 {
		t.Errorf("length = %v, want 40", plan.Length)
	}
}

// TestPlanTourSquare: visiting the four corners of a square from one
// corner should walk the perimeter (3 sides), not cross the diagonal.
func TestPlanTourSquare(t *testing.T) {
	stops := []geom.Point{{X: 0, Y: 100}, {X: 100, Y: 100}, {X: 100, Y: 0}}
	plan, err := PlanTour(geom.Point{}, stops)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Length-300) > 1e-9 {
		t.Errorf("square tour length = %v, want 300 (order %v)", plan.Length, plan.Order)
	}
}

// TestTwoOptNeverWorseThanNearestNeighbour: on random stop sets, the
// refined tour is never longer than the greedy construction.
func TestTwoOptNeverWorseThanNearestNeighbour(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		stops := make([]geom.Point, n)
		for i := range stops {
			stops[i] = geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		}
		start := geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		greedy := nearestNeighbour(start, stops)
		greedyLen := tourLength(start, stops, append([]int(nil), greedy...))
		plan, err := PlanTour(start, stops)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Length > greedyLen+1e-9 {
			t.Fatalf("trial %d: 2-opt tour %.2f longer than greedy %.2f", trial, plan.Length, greedyLen)
		}
		if err := plan.Validate(n); err != nil {
			t.Fatalf("trial %d: invalid plan: %v", trial, err)
		}
	}
}

// TestPlanTourBeatsRandomOrders: the planned tour should be no longer
// than random permutations (sanity against gross regressions).
func TestPlanTourBeatsRandomOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	stops := make([]geom.Point, 12)
	for i := range stops {
		stops[i] = geom.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300}
	}
	start := geom.Point{}
	plan, err := PlanTour(start, stops)
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int, len(stops))
	for i := range order {
		order[i] = i
	}
	for trial := 0; trial < 200; trial++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		if l := tourLength(start, stops, order); l < plan.Length-1e-9 {
			t.Fatalf("random order %.2f beat the planned tour %.2f", l, plan.Length)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	p := &Plan{Order: []int{0, 0}}
	if err := p.Validate(2); err == nil {
		t.Error("duplicate visit accepted")
	}
	p = &Plan{Order: []int{0, 5}}
	if err := p.Validate(2); err == nil {
		t.Error("out-of-range index accepted")
	}
	p = &Plan{Order: []int{0}}
	if err := p.Validate(2); err == nil {
		t.Error("missing stop accepted")
	}
}

func TestPlanTourDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stops := make([]geom.Point, 15)
	for i := range stops {
		stops[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	a, err := PlanTour(geom.Point{}, stops)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanTour(geom.Point{}, stops)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("non-deterministic plan: %v vs %v", a.Order, b.Order)
		}
	}
}

func BenchmarkPlanTour(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	stops := make([]geom.Point, 40)
	for i := range stops {
		stops[i] = geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanTour(geom.Point{}, stops); err != nil {
			b.Fatal(err)
		}
	}
}
