// Package heal rebuilds routing trees over the surviving posts of a
// degraded network. It reuses the RFH Phase I-III machinery
// (recharging-cost shortest paths, workload-concentrating trim, sibling
// merge) on the survivor subgraph, pricing charging efficiency at the
// surviving node counts. The simulator's online repair policy calls
// RepairTree whenever a post's last node dies.
//
// It sits above internal/model (problem/tree primitives, degraded
// evaluation) and internal/routing (the tree-building phases), which is
// why it is its own package: model cannot import routing without a cycle.
//
// Repair deliberately does not use the move-based model.Evaluator
// protocol the solvers run on: a post death removes vertices and edges
// from the communication graph, whereas CostDelta moves only reprice
// edges of a fixed topology. Each repair therefore rebuilds the survivor
// graph from scratch — rare (one call per last-node death) and nowhere
// near the solvers' probe rates.
package heal

import (
	"fmt"

	"wrsn/internal/geom"
	"wrsn/internal/graph"
	"wrsn/internal/model"
	"wrsn/internal/routing"
)

// Options tunes RepairTree.
type Options struct {
	// DisableSiblingMerge skips the Phase III sibling merge on the
	// rebuilt survivor tree.
	DisableSiblingMerge bool
}

// RepairTree rebuilds the routing tree after post deaths: posts with
// aliveCounts[i] == 0 are dead, and every surviving post is re-parented
// by re-running the RFH routing phases (recharging-cost shortest paths,
// Phase II trim, optional Phase III merge) over the survivor subgraph,
// with per-post charging efficiency priced at the surviving node counts.
// Dead posts keep their old parent and level (they originate nothing, so
// the edges are inert). Survivors that cannot reach the base station
// through other survivors at maximum range are stranded: they also keep
// their old edges and are returned in `stranded`.
//
// The returned tree satisfies ValidateSurvivors for every non-stranded
// survivor. old must be a valid tree for p.
func RepairTree(p *model.Problem, old model.Tree, aliveCounts []int, opts Options) (model.Tree, []int, error) {
	n := p.N()
	if len(aliveCounts) != n {
		return model.Tree{}, nil, fmt.Errorf("heal: %d alive counts for %d posts", len(aliveCounts), n)
	}
	if len(old.Parent) != n || len(old.Level) != n {
		return model.Tree{}, nil, fmt.Errorf("heal: old tree sized for %d/%d posts, want %d", len(old.Parent), len(old.Level), n)
	}
	alive := make([]bool, n)
	for i, m := range aliveCounts {
		if m < 0 {
			return model.Tree{}, nil, fmt.Errorf("heal: post %d has negative alive count %d", i, m)
		}
		alive[i] = m > 0
	}

	// Stranded survivors have no multi-hop path to the BS through other
	// survivors even at maximum range; exclude them from the rebuild
	// (removing them cannot strand anyone else: a post routing through a
	// stranded post would itself have a path, a contradiction).
	reachable := p.SurvivorsReachable(alive)
	var stranded []int
	routable := make([]bool, n)
	for i := 0; i < n; i++ {
		routable[i] = alive[i] && reachable[i]
		if alive[i] && !reachable[i] {
			stranded = append(stranded, i)
		}
	}

	// Compact the routable survivors to 0..k-1 with the BS as vertex k.
	var survivors []int
	compact := make([]int, n)
	for i := 0; i < n; i++ {
		compact[i] = -1
		if routable[i] {
			compact[i] = len(survivors)
			survivors = append(survivors, i)
		}
	}
	k := len(survivors)
	patched := old.Clone()
	if k == 0 {
		return patched, stranded, nil // nothing left to route
	}

	// Recharging-cost weights at the surviving strengths: the charger
	// pays tx/eff(sender) + rx/eff(receiver) per bit on each hop.
	eff := make([]float64, k)
	for si, i := range survivors {
		e, err := p.Charging.NetworkEfficiency(aliveCounts[i])
		if err != nil {
			return model.Tree{}, nil, fmt.Errorf("heal: post %d: %w", i, err)
		}
		eff[si] = e
	}
	rx := p.Energy.RxEnergy()
	dmax := p.Energy.MaxRange()
	g := graph.New(k + 1)
	for su, u := range survivors {
		pu := p.Posts[u]
		for sv, v := range survivors {
			if sv == su {
				continue
			}
			d := geom.Dist(pu, p.Posts[v])
			if d > dmax {
				continue
			}
			tx, err := p.Energy.TxEnergy(d)
			if err != nil {
				return model.Tree{}, nil, fmt.Errorf("heal: edge (%d,%d): %w", u, v, err)
			}
			if err := g.AddEdge(su, sv, tx/eff[su]+rx/eff[sv]); err != nil {
				return model.Tree{}, nil, err
			}
		}
		if d := geom.Dist(pu, p.BS); d <= dmax {
			tx, err := p.Energy.TxEnergy(d)
			if err != nil {
				return model.Tree{}, nil, fmt.Errorf("heal: edge (%d,BS): %w", u, err)
			}
			if err := g.AddEdge(su, k, tx/eff[su]); err != nil {
				return model.Tree{}, nil, err
			}
		}
	}
	dag, err := g.ShortestPathDAG(k, model.DAGTolerance)
	if err != nil {
		return model.Tree{}, nil, err
	}
	trimmed, err := routing.TrimWeighted(dag, k, nil)
	if err != nil {
		return model.Tree{}, nil, err
	}
	parents := trimmed.Parent
	if !opts.DisableSiblingMerge {
		merged := append([]int(nil), parents...)
		spec := routing.MergeSpec{
			NPosts: k,
			Pos: func(v int) geom.Point {
				if v == k {
					return p.BS
				}
				return p.Posts[survivors[v]]
			},
			TxEnergy: func(d float64) (float64, bool) {
				e, err := p.Energy.TxEnergy(d)
				if err != nil {
					return 0, false
				}
				return e, true
			},
		}
		stats, err := routing.MergeSiblings(spec, merged)
		if err != nil {
			return model.Tree{}, nil, err
		}
		if stats.Reparented > 0 {
			// Keep the merge only when it is actually cheaper at the
			// surviving strengths (deployment is fixed during repair, so
			// the trade-off the solver resolves by redeploying must be
			// priced directly).
			if better, err := cheaperSurvivorTree(p, patched, survivors, aliveCounts, parents, merged); err != nil {
				return model.Tree{}, nil, err
			} else if better {
				parents = merged
			}
		}
	}

	for si, i := range survivors {
		par := parents[si]
		full := p.BSIndex()
		if par != k {
			full = survivors[par]
		}
		lvl, err := p.Energy.LevelFor(geom.Dist(p.Posts[i], p.Point(full)))
		if err != nil {
			return model.Tree{}, nil, fmt.Errorf("heal: post %d cannot reach repaired parent %d: %w", i, full, err)
		}
		patched.Parent[i] = full
		patched.Level[i] = lvl
	}
	if err := patched.ValidateSurvivors(p, routable); err != nil {
		return model.Tree{}, nil, fmt.Errorf("heal: repaired tree invalid: %w", err)
	}
	return patched, stranded, nil
}

// cheaperSurvivorTree reports whether candidate parent vector `b` prices
// below `a` under the degraded evaluation (both vectors are in compact
// survivor indices; base is the template tree for dead-post edges).
func cheaperSurvivorTree(p *model.Problem, base model.Tree, survivors []int, aliveCounts []int, a, b []int) (bool, error) {
	build := func(parents []int) (model.Tree, error) {
		t := base.Clone()
		k := len(survivors)
		for si, i := range survivors {
			full := p.BSIndex()
			if parents[si] != k {
				full = survivors[parents[si]]
			}
			lvl, err := p.Energy.LevelFor(geom.Dist(p.Posts[i], p.Point(full)))
			if err != nil {
				return model.Tree{}, err
			}
			t.Parent[i] = full
			t.Level[i] = lvl
		}
		return t, nil
	}
	ta, err := build(a)
	if err != nil {
		return false, err
	}
	tb, err := build(b)
	if err != nil {
		return false, err
	}
	ca, err := model.EvaluateDegraded(p, aliveCounts, ta)
	if err != nil {
		return false, err
	}
	cb, err := model.EvaluateDegraded(p, aliveCounts, tb)
	if err != nil {
		return false, err
	}
	return cb < ca, nil
}
