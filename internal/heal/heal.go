// Package heal rebuilds routing trees over the surviving posts of a
// degraded network. It reuses the RFH Phase I-III machinery
// (recharging-cost shortest paths, workload-concentrating trim, sibling
// merge) on the survivor subgraph, pricing charging efficiency at the
// surviving node counts. The simulator's online repair policy calls
// RepairTree (or a persistent Healer) whenever a post's last node dies.
//
// It sits above internal/model (problem/tree primitives, degraded
// evaluation) and internal/routing (the tree-building phases), which is
// why it is its own package: model cannot import routing without a cycle.
//
// Repair deliberately does not use the move-based model.Evaluator
// protocol the solvers run on: a post death removes vertices and edges
// from the communication graph, whereas CostDelta moves only reprice
// edges of a fixed topology. A Healer instead keeps the *full*
// communication graph built once and masks dead vertices out of the
// shortest-path run, reweighting edges in place at the surviving
// strengths — one masked Dijkstra per repair yields both survivor
// reachability and the repair fat tree, with no per-repair graph
// construction and (merge disabled) no steady-state allocations.
package heal

import (
	"fmt"

	"wrsn/internal/geom"
	"wrsn/internal/graph"
	"wrsn/internal/model"
	"wrsn/internal/routing"
)

// Options tunes tree repair.
type Options struct {
	// DisableSiblingMerge skips the Phase III sibling merge on the
	// rebuilt survivor tree. Besides being the ablation knob, disabling
	// it makes Healer.Repair allocation-free in steady state (the merge
	// arm prices candidate trees through model.EvaluateDegraded, which
	// allocates scratch per call).
	DisableSiblingMerge bool
}

// Healer repairs routing trees for one Problem repeatedly, amortising
// all graph machinery across repairs: the communication graph and its
// cached hop energies are built once at construction, and each Repair
// masks the dead posts, reweights edges in place and reuses the Dijkstra
// heap, DAG and trim buffers. A Healer is not safe for concurrent use.
type Healer struct {
	p    *model.Problem
	opts Options
	bs   int

	cg      *model.CommGraph
	router  *graph.Router
	trimmer *routing.Trimmer
	trimRes routing.TrimResult
	spec    routing.MergeSpec

	wf   model.WeightFunc // recharge-cost weights over eff/mask, bound once
	eff  []float64        // per-post charging efficiency at current alive counts
	mask []bool           // true = dead (masked out of routing)
	skip []bool           // true = not routable (dead or stranded)

	stranded []int
	merged   []int
	treeA    model.Tree // candidate buffers for the merge price-off
	treeB    model.Tree
	state    []int8 // validation scratch
	chain    []int
}

// NewHealer builds a Healer for p. Construction does the one-time
// O(N^2) communication-graph build.
func NewHealer(p *model.Problem, opts Options) (*Healer, error) {
	cg, err := model.NewCommGraph(p)
	if err != nil {
		return nil, fmt.Errorf("heal: %w", err)
	}
	n := p.N()
	h := &Healer{
		p:       p,
		opts:    opts,
		bs:      p.BSIndex(),
		cg:      cg,
		router:  graph.NewRouter(cg.Graph()),
		trimmer: routing.NewTrimmer(n),
		eff:     make([]float64, n),
		mask:    make([]bool, n+1),
		skip:    make([]bool, n),
		state:   make([]int8, n),
		chain:   make([]int, 0, n),
	}
	rx := p.Energy.RxEnergy()
	h.wf = func(from, to int, tx float64) float64 {
		// Edges touching masked (dead) posts are excluded from routing
		// anyway; any finite weight keeps the reweight pass happy.
		if h.mask[from] || (to != h.bs && h.mask[to]) {
			return 0
		}
		w := tx / h.eff[from]
		if to != h.bs {
			w += rx / h.eff[to]
		}
		return w
	}
	if err := h.router.SetVertexMask(h.mask); err != nil {
		return nil, err
	}
	h.spec = routing.MergeSpec{
		NPosts:          n,
		Pos:             p.Point,
		TxEnergyBetween: cg.TxBetween,
		Skip:            h.skip,
	}
	return h, nil
}

// Repair rebuilds the routing tree after post deaths, writing the result
// into dst (resized as needed; dst may alias neither old nor the
// problem). Posts with aliveCounts[i] == 0 are dead, and every surviving
// post is re-parented by re-running the RFH routing phases
// (recharging-cost shortest paths, Phase II trim, optional Phase III
// merge) over the survivor subgraph, with per-post charging efficiency
// priced at the surviving node counts. Dead posts keep their old parent
// and level (they originate nothing, so the edges are inert). Survivors
// that cannot reach the base station through other survivors at maximum
// range are stranded: they also keep their old edges and are returned in
// ascending order. The returned slice is owned by the Healer and valid
// until the next Repair.
//
// The result satisfies model.Tree.ValidateSurvivors for every
// non-stranded survivor. old must be a valid tree for the problem.
func (h *Healer) Repair(old model.Tree, aliveCounts []int, dst *model.Tree) ([]int, error) {
	p, n := h.p, h.p.N()
	if len(aliveCounts) != n {
		return nil, fmt.Errorf("heal: %d alive counts for %d posts", len(aliveCounts), n)
	}
	if len(old.Parent) != n || len(old.Level) != n {
		return nil, fmt.Errorf("heal: old tree sized for %d/%d posts, want %d", len(old.Parent), len(old.Level), n)
	}
	for i, m := range aliveCounts {
		if m < 0 {
			return nil, fmt.Errorf("heal: post %d has negative alive count %d", i, m)
		}
		h.mask[i] = m == 0
		if m > 0 {
			e, err := p.Charging.NetworkEfficiency(m)
			if err != nil {
				return nil, fmt.Errorf("heal: post %d: %w", i, err)
			}
			h.eff[i] = e
		}
	}

	// One masked shortest-path run at the surviving strengths yields both
	// survivor reachability (finite distance; the edge set is independent
	// of weights, so weighted reachability == max-range reachability) and
	// the repair fat tree.
	if err := h.cg.Reweight(h.wf); err != nil {
		return nil, err
	}
	dag, err := h.router.DAGTo(h.bs, model.DAGTolerance)
	if err != nil {
		return nil, err
	}

	// Stranded survivors have no multi-hop path to the BS through other
	// survivors even at maximum range; exclude them from the rebuild
	// (removing them cannot strand anyone else: a post routing through a
	// stranded post would itself have a path, a contradiction).
	h.stranded = h.stranded[:0]
	routable := 0
	for i := 0; i < n; i++ {
		reach := dag.Reachable(i)
		h.skip[i] = h.mask[i] || !reach
		if !h.mask[i] && !reach {
			h.stranded = append(h.stranded, i)
		}
		if !h.skip[i] {
			routable++
		}
	}

	h.copyTree(dst, old)
	if routable == 0 {
		return h.strandedOrNil(), nil // nothing left to route
	}

	if err := h.trimmer.Trim(dag, nil, h.skip, &h.trimRes); err != nil {
		return nil, err
	}
	parents := h.trimRes.Parent
	if !h.opts.DisableSiblingMerge {
		h.merged = append(h.merged[:0], parents...)
		stats, err := routing.MergeSiblings(h.spec, h.merged)
		if err != nil {
			return nil, err
		}
		if stats.Reparented > 0 {
			// Keep the merge only when it is actually cheaper at the
			// surviving strengths (deployment is fixed during repair, so
			// the trade-off the solver resolves by redeploying must be
			// priced directly).
			if better, err := h.cheaperSurvivorTree(old, aliveCounts, parents, h.merged); err != nil {
				return nil, err
			} else if better {
				parents = h.merged
			}
		}
	}

	if err := h.applyParents(dst, parents); err != nil {
		return nil, err
	}
	if err := h.validateRepaired(dst); err != nil {
		return nil, fmt.Errorf("heal: repaired tree invalid: %w", err)
	}
	return h.strandedOrNil(), nil
}

func (h *Healer) strandedOrNil() []int {
	if len(h.stranded) == 0 {
		return nil
	}
	return h.stranded
}

// copyTree overwrites dst with src, reusing dst's slices when possible.
func (h *Healer) copyTree(dst *model.Tree, src model.Tree) {
	n := len(src.Parent)
	if cap(dst.Parent) < n {
		dst.Parent = make([]int, n)
	}
	if cap(dst.Level) < n {
		dst.Level = make([]int, n)
	}
	dst.Parent = dst.Parent[:n]
	dst.Level = dst.Level[:n]
	copy(dst.Parent, src.Parent)
	copy(dst.Level, src.Level)
}

// applyParents writes the chosen routable-post parents (full-graph
// indices, BS = N) into dst, assigning each edge its minimal covering
// power level.
func (h *Healer) applyParents(dst *model.Tree, parents []int) error {
	p := h.p
	for i := 0; i < h.p.N(); i++ {
		if h.skip[i] {
			continue
		}
		par := parents[i]
		lvl, err := p.Energy.LevelFor(geom.Dist(p.Posts[i], p.Point(par)))
		if err != nil {
			return fmt.Errorf("heal: post %d cannot reach repaired parent %d: %w", i, par, err)
		}
		dst.Parent[i] = par
		dst.Level[i] = lvl
	}
	return nil
}

// cheaperSurvivorTree reports whether candidate parent vector `b` prices
// below `a` under the degraded evaluation (both vectors in full-graph
// indices; `old` is the template tree for dead-post edges).
func (h *Healer) cheaperSurvivorTree(old model.Tree, aliveCounts []int, a, b []int) (bool, error) {
	h.copyTree(&h.treeA, old)
	if err := h.applyParents(&h.treeA, a); err != nil {
		return false, err
	}
	h.copyTree(&h.treeB, old)
	if err := h.applyParents(&h.treeB, b); err != nil {
		return false, err
	}
	ca, err := model.EvaluateDegraded(h.p, aliveCounts, h.treeA)
	if err != nil {
		return false, err
	}
	cb, err := model.EvaluateDegraded(h.p, aliveCounts, h.treeB)
	if err != nil {
		return false, err
	}
	return cb < ca, nil
}

// validateRepaired is model.Tree.ValidateSurvivors restricted to the
// routable survivors, run on the Healer's scratch buffers so the repair
// path stays allocation-free.
func (h *Healer) validateRepaired(t *model.Tree) error {
	p, n, bs := h.p, h.p.N(), h.bs
	for i := 0; i < n; i++ {
		if h.skip[i] {
			continue
		}
		par := t.Parent[i]
		if par < 0 || par > n || par == i {
			return fmt.Errorf("post %d has invalid parent %d", i, par)
		}
		if par != bs && h.skip[par] {
			return fmt.Errorf("surviving post %d routes through dead or stranded post %d", i, par)
		}
		lvl := t.Level[i]
		if lvl < 0 || lvl >= p.Energy.Levels() {
			return fmt.Errorf("post %d uses invalid power level %d", i, lvl)
		}
		d := geom.Dist(p.Posts[i], p.Point(par))
		if d > p.Energy.Range(lvl) {
			return fmt.Errorf("post %d at level %d (range %.1fm) cannot cover %.2fm hop to %d",
				i, lvl, p.Energy.Range(lvl), d, par)
		}
	}
	// Cycle/reachability check over the routable posts only.
	for i := range h.state {
		h.state[i] = 0
	}
	for i := 0; i < n; i++ {
		if h.skip[i] {
			continue
		}
		v := i
		h.chain = h.chain[:0]
		for v != bs {
			if h.state[v] == 1 {
				return fmt.Errorf("%w: detected at post %d", model.ErrCycle, v)
			}
			if h.state[v] == 2 {
				break
			}
			h.state[v] = 1
			h.chain = append(h.chain, v)
			v = t.Parent[v]
		}
		for _, u := range h.chain {
			h.state[u] = 2
		}
	}
	return nil
}

// RepairTree rebuilds the routing tree after post deaths; see
// Healer.Repair for the semantics. It constructs a throwaway Healer, so
// callers repairing the same problem repeatedly (the simulator) should
// hold a Healer instead.
func RepairTree(p *model.Problem, old model.Tree, aliveCounts []int, opts Options) (model.Tree, []int, error) {
	h, err := NewHealer(p, opts)
	if err != nil {
		return model.Tree{}, nil, err
	}
	var dst model.Tree
	stranded, err := h.Repair(old, aliveCounts, &dst)
	if err != nil {
		return model.Tree{}, nil, err
	}
	if stranded != nil {
		stranded = append([]int(nil), stranded...)
	}
	return dst, stranded, nil
}
