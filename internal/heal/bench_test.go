package heal

import (
	"testing"

	"wrsn/internal/model"
)

// benchRepair prices one online repair on a 30-post chain with one dead
// post mid-line, against a persistent Healer. The merge-disabled arm is
// the simulator's hot path and is CI-gated at 0 allocs/op; the merge arm
// pays for its candidate evaluation (model.EvaluateDegraded) and is
// reported for comparison.
func benchRepair(b *testing.B, opts Options) {
	const n, m = 30, 90
	p, tree := lineProblem(b, n, m)
	h, err := NewHealer(p, opts)
	if err != nil {
		b.Fatal(err)
	}
	alive := make([]int, n)
	for i := range alive {
		alive[i] = m / n
	}
	alive[7] = 0 // dead post: its subtree re-attaches around the gap
	var dst model.Tree
	if _, err := h.Repair(tree, alive, &dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Repair(tree, alive, &dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepairTree(b *testing.B) {
	benchRepair(b, Options{DisableSiblingMerge: true})
}

func BenchmarkRepairTreeMerge(b *testing.B) {
	benchRepair(b, Options{})
}
