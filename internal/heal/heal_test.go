package heal

import (
	"testing"

	"wrsn/internal/charging"
	"wrsn/internal/energy"
	"wrsn/internal/geom"
	"wrsn/internal/model"
)

// lineProblem builds n posts in a straight line 30m apart from the BS at
// the origin (post i at ((i+1)*30, 0)) with the default models, plus the
// chain tree i -> i-1 -> ... -> 0 -> BS. The default max range is 80m, so
// a post can bridge one dead neighbour (60m) but not two (90m).
func lineProblem(t testing.TB, n, m int) (*model.Problem, model.Tree) {
	t.Helper()
	posts := make([]geom.Point, n)
	for i := range posts {
		posts[i] = geom.Point{X: float64(i+1) * 30, Y: 0}
	}
	p := &model.Problem{
		Posts:    posts,
		BS:       geom.Point{},
		Nodes:    m,
		Energy:   energy.Default(),
		Charging: charging.Default(),
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("line problem invalid: %v", err)
	}
	parents := make([]int, n)
	for i := range parents {
		parents[i] = i - 1
	}
	parents[0] = p.BSIndex()
	tree, err := model.NewTreeFromParents(p, parents)
	if err != nil {
		t.Fatal(err)
	}
	return p, tree
}

func TestRepairTreeReroutesAroundDeadPost(t *testing.T) {
	p, tree := lineProblem(t, 4, 12)
	// Kill post 1: post 2 must bridge the gap to post 0 (60 m), post 3
	// re-parents within the survivors.
	alive := []int{3, 0, 3, 3}
	patched, stranded, err := RepairTree(p, tree, alive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stranded) != 0 {
		t.Fatalf("stranded = %v, want none", stranded)
	}
	aliveMask := []bool{true, false, true, true}
	if err := patched.ValidateSurvivors(p, aliveMask); err != nil {
		t.Fatalf("patched tree invalid: %v", err)
	}
	for i, ok := range aliveMask {
		if ok && patched.Parent[i] == 1 {
			t.Errorf("surviving post %d still routes through dead post 1", i)
		}
	}
	// The dead post keeps its (inert) original edge.
	if patched.Parent[1] != tree.Parent[1] {
		t.Errorf("dead post edge rewritten: %d -> %d", tree.Parent[1], patched.Parent[1])
	}
}

func TestRepairTreeReportsStranded(t *testing.T) {
	p, tree := lineProblem(t, 4, 12)
	// Killing posts 0 and 1 strands the tail: posts 2 and 3 survive but
	// cannot reach the BS through survivors.
	patched, stranded, err := RepairTree(p, tree, []int{0, 0, 3, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stranded) != 2 || stranded[0] != 2 || stranded[1] != 3 {
		t.Fatalf("stranded = %v, want [2 3]", stranded)
	}
	// Stranded posts keep their old edges untouched.
	for _, i := range stranded {
		if patched.Parent[i] != tree.Parent[i] || patched.Level[i] != tree.Level[i] {
			t.Errorf("stranded post %d edge rewritten", i)
		}
	}
}

func TestRepairTreeFullStrengthStaysValid(t *testing.T) {
	p, tree := lineProblem(t, 5, 15)
	// No deaths at all: the rebuild must still produce a valid tree for
	// every post (it may differ from the chain — trim and merge run at
	// surviving strengths — but nothing may be stranded).
	patched, stranded, err := RepairTree(p, tree, []int{3, 3, 3, 3, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stranded) != 0 {
		t.Fatalf("stranded = %v in a healthy network", stranded)
	}
	if err := patched.Validate(p); err != nil {
		t.Fatalf("full-strength rebuild invalid: %v", err)
	}
}

func TestRepairTreeMergeAblation(t *testing.T) {
	p, tree := lineProblem(t, 4, 12)
	alive := []int{3, 0, 3, 3}
	withMerge, _, err := RepairTree(p, tree, alive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noMerge, _, err := RepairTree(p, tree, alive, Options{DisableSiblingMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	// The merged tree is kept only when it prices at or below the
	// unmerged one under the degraded evaluation.
	cm, err := model.EvaluateDegraded(p, alive, withMerge)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := model.EvaluateDegraded(p, alive, noMerge)
	if err != nil {
		t.Fatal(err)
	}
	if cm > cn {
		t.Errorf("sibling merge made the repair dearer: %g > %g", cm, cn)
	}
}

func TestRepairTreeRejectsBadInput(t *testing.T) {
	p, tree := lineProblem(t, 4, 12)
	if _, _, err := RepairTree(p, tree, []int{3, 3, 3}, Options{}); err == nil {
		t.Error("short aliveCounts accepted")
	}
	if _, _, err := RepairTree(p, tree, []int{3, -1, 3, 3}, Options{}); err == nil {
		t.Error("negative alive count accepted")
	}
	if _, _, err := RepairTree(p, model.Tree{}, []int{3, 3, 3, 3}, Options{}); err == nil {
		t.Error("empty old tree accepted")
	}
}
