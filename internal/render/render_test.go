package render

import (
	"strings"
	"testing"

	"wrsn/internal/charging"
	"wrsn/internal/energy"
	"wrsn/internal/geom"
	"wrsn/internal/model"
)

func renderProblem(t *testing.T) (*model.Problem, model.Deployment, model.Tree) {
	t.Helper()
	p := &model.Problem{
		Posts: []geom.Point{
			{X: 30, Y: 0},
			{X: 60, Y: 0},
			{X: 60, Y: 30},
		},
		BS:       geom.Point{},
		Nodes:    12,
		Energy:   energy.Default(),
		Charging: charging.Default(),
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	tree, err := model.NewTreeFromParents(p, []int{3, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return p, model.Deployment{6, 4, 2}, tree
}

func TestFieldMap(t *testing.T) {
	p, deploy, _ := renderProblem(t)
	out, err := FieldMap(p, deploy, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "@") {
		t.Error("base station glyph missing")
	}
	for _, glyph := range []string{"6", "4", "2"} {
		if !strings.Contains(out, glyph) {
			t.Errorf("node-count glyph %q missing:\n%s", glyph, out)
		}
	}
	// The BS (origin) appears in the bottom-left region: last grid line.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	bottom := lines[len(lines)-1]
	if !strings.Contains(bottom, "@") {
		t.Errorf("base station not on the bottom row:\n%s", out)
	}
	if idx := strings.Index(bottom, "@"); idx > 2 {
		t.Errorf("base station not at the left edge (col %d):\n%s", idx, out)
	}
}

func TestFieldMapGlyphs(t *testing.T) {
	cases := []struct {
		m    int
		want byte
	}{
		{1, '1'}, {9, '9'}, {10, 'a'}, {35, 'z'}, {36, '#'}, {0, '?'},
	}
	for _, tc := range cases {
		if got := countGlyph(tc.m); got != tc.want {
			t.Errorf("countGlyph(%d) = %c, want %c", tc.m, got, tc.want)
		}
	}
}

func TestFieldMapValidation(t *testing.T) {
	p, _, _ := renderProblem(t)
	if _, err := FieldMap(p, model.Deployment{1}, 40); err == nil {
		t.Error("wrong-size deployment accepted")
	}
}

func TestTreeASCII(t *testing.T) {
	p, deploy, tree := renderProblem(t)
	out, err := TreeASCII(p, deploy, tree)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "BS\n") {
		t.Errorf("tree must start at the BS:\n%s", out)
	}
	for _, frag := range []string{
		"post 0 (6 node(s)",
		"post 1 (4 node(s)",
		"post 2 (2 node(s)",
		"subtree 3",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	// Chain topology: each level indents deeper.
	if strings.Index(out, "post 0") > strings.Index(out, "post 1") {
		t.Errorf("post 0 should print before its child post 1:\n%s", out)
	}
}

func TestTreeASCIIValidation(t *testing.T) {
	p, deploy, tree := renderProblem(t)
	bad := tree.Clone()
	bad.Parent[0] = 0
	if _, err := TreeASCII(p, deploy, bad); err == nil {
		t.Error("invalid tree accepted")
	}
}
