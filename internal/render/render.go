// Package render draws deployment/routing solutions as plain text: a
// scaled character map of the field and an indented routing-tree listing.
// It exists for CLI output and examples — quick situational awareness
// without plotting dependencies.
package render

import (
	"fmt"
	"sort"
	"strings"

	"wrsn/internal/geom"
	"wrsn/internal/model"
)

// FieldMap renders the deployment field as a character grid of the given
// width (height follows the field's aspect ratio). The base station is
// '@'; each post is drawn as its node count ('1'-'9', then 'a' for 10-35
// via letters, '#' beyond); empty cells are '.'. When two posts share a
// cell the larger count wins.
func FieldMap(p *model.Problem, deploy model.Deployment, width int) (string, error) {
	if width < 8 {
		width = 8
	}
	if len(deploy) != p.N() {
		return "", fmt.Errorf("render: deployment covers %d posts, want %d", len(deploy), p.N())
	}
	lo, hi := geom.BoundingBox(append(append([]geom.Point(nil), p.Posts...), p.BS))
	spanX := hi.X - lo.X
	spanY := hi.Y - lo.Y
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	height := int(float64(width) * spanY / spanX / 2) // terminal cells are ~2x tall
	if height < 4 {
		height = 4
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", width))
	}
	cell := func(pt geom.Point) (row, col int) {
		col = int((pt.X - lo.X) / spanX * float64(width-1))
		// Row 0 is the top of the printout, so flip Y.
		row = height - 1 - int((pt.Y-lo.Y)/spanY*float64(height-1))
		return row, col
	}
	counts := make([][]int, height)
	for r := range counts {
		counts[r] = make([]int, width)
	}
	for i, pt := range p.Posts {
		r, c := cell(pt)
		if deploy[i] > counts[r][c] {
			counts[r][c] = deploy[i]
			grid[r][c] = countGlyph(deploy[i])
		}
	}
	r, c := cell(p.BS)
	grid[r][c] = '@'

	var sb strings.Builder
	fmt.Fprintf(&sb, "field %.0fx%.0fm — '@' base station, digits/letters = nodes per post\n", spanX, spanY)
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// countGlyph maps a node count to a single display character.
func countGlyph(m int) byte {
	switch {
	case m <= 0:
		return '?'
	case m <= 9:
		return byte('0' + m)
	case m <= 35:
		return byte('a' + m - 10)
	default:
		return '#'
	}
}

// TreeASCII renders the routing tree as an indented hierarchy rooted at
// the base station, each line showing the post, its node count, power
// level and subtree size. Children print in ascending index order.
func TreeASCII(p *model.Problem, deploy model.Deployment, tree model.Tree) (string, error) {
	if err := tree.Validate(p); err != nil {
		return "", err
	}
	if len(deploy) != p.N() {
		return "", fmt.Errorf("render: deployment covers %d posts, want %d", len(deploy), p.N())
	}
	children := tree.Children(p)
	for _, ch := range children {
		sort.Ints(ch)
	}
	sizes := tree.SubtreeSizes(p)

	var sb strings.Builder
	sb.WriteString("BS\n")
	var walk func(v int, prefix string)
	walk = func(v int, prefix string) {
		kids := children[v]
		for i, c := range kids {
			last := i == len(kids)-1
			branch, cont := "├─ ", "│  "
			if last {
				branch, cont = "└─ ", "   "
			}
			fmt.Fprintf(&sb, "%s%spost %d (%d node(s), level %d, subtree %d)\n",
				prefix, branch, c, deploy[c], tree.Level[c]+1, sizes[c])
			walk(c, prefix+cont)
		}
	}
	walk(p.BSIndex(), "")
	return sb.String(), nil
}
