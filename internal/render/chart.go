package render

import (
	"fmt"
	"math"
	"strings"
)

// ChartSeries is one line of an ASCII chart.
type ChartSeries struct {
	Label string
	Y     []float64
}

// Chart renders one or more series over a shared X axis as a plain-text
// scatter/line chart — a terminal stand-in for the paper's figures. Each
// series draws with its own glyph ('a', 'b', ...); colliding points show
// the later series. The Y axis is annotated with min/max and the X axis
// with the first and last X values.
func Chart(title string, xs []float64, series []ChartSeries, width, height int) (string, error) {
	if len(xs) == 0 || len(series) == 0 {
		return "", fmt.Errorf("render: chart needs at least one X and one series")
	}
	for _, s := range series {
		if len(s.Y) != len(xs) {
			return "", fmt.Errorf("render: series %q has %d points for %d X values", s.Label, len(s.Y), len(xs))
		}
	}
	if width < 16 {
		width = 16
	}
	if height < 5 {
		height = 5
	}

	// Global Y range across series.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				return "", fmt.Errorf("render: series %q contains a non-finite value", s.Label)
			}
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
	}
	if hi == lo {
		hi = lo + 1 // flat series: center it
		lo -= 1
	}
	xLo, xHi := xs[0], xs[len(xs)-1]
	if xHi == xLo {
		xHi = xLo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, glyph byte) {
		col := int((x - xLo) / (xHi - xLo) * float64(width-1))
		row := height - 1 - int((y-lo)/(hi-lo)*float64(height-1))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		grid[row][col] = glyph
	}
	for si, s := range series {
		glyph := byte('a' + si%26)
		for i, y := range s.Y {
			plot(xs[i], y, glyph)
		}
	}

	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	yLabelWidth := 0
	top := fmt.Sprintf("%.4g", hi)
	bottom := fmt.Sprintf("%.4g", lo)
	if len(top) > yLabelWidth {
		yLabelWidth = len(top)
	}
	if len(bottom) > yLabelWidth {
		yLabelWidth = len(bottom)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", yLabelWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", yLabelWidth, top)
		case height - 1:
			label = fmt.Sprintf("%*s", yLabelWidth, bottom)
		}
		sb.WriteString(label)
		sb.WriteString(" |")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", yLabelWidth))
	sb.WriteString(" +")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	xAxis := fmt.Sprintf("%*s  %-10.4g%*s%10.4g", yLabelWidth, "", xLo, width-20, "", xHi)
	sb.WriteString(xAxis)
	sb.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c = %s\n", byte('a'+si%26), s.Label)
	}
	return sb.String(), nil
}
