package render

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	series := []ChartSeries{
		{Label: "rising", Y: []float64{1, 2, 3, 4}},
		{Label: "falling", Y: []float64{4, 3, 2, 1}},
	}
	out, err := Chart("test chart", xs, series, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "test chart\n") {
		t.Errorf("missing title:\n%s", out)
	}
	for _, frag := range []string{"a = rising", "b = falling", "+----"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
	// The rising series' glyph appears in the last grid row (minimum at
	// the left) and the first grid row (maximum at the right).
	lines := strings.Split(out, "\n")
	gridTop, gridBottom := lines[1], lines[10]
	if !strings.Contains(gridTop, "a") && !strings.Contains(gridTop, "b") {
		t.Errorf("top row empty:\n%s", out)
	}
	if !strings.Contains(gridBottom, "a") && !strings.Contains(gridBottom, "b") {
		t.Errorf("bottom row empty:\n%s", out)
	}
	// Axis labels carry the Y range.
	if !strings.Contains(out, "4") || !strings.Contains(out, "1") {
		t.Errorf("missing Y labels:\n%s", out)
	}
}

func TestChartFlatSeries(t *testing.T) {
	out, err := Chart("", []float64{0, 1}, []ChartSeries{{Label: "flat", Y: []float64{5, 5}}}, 20, 6)
	if err != nil {
		t.Fatalf("flat series: %v", err)
	}
	if !strings.Contains(out, "a") {
		t.Errorf("flat series not plotted:\n%s", out)
	}
}

func TestChartErrors(t *testing.T) {
	if _, err := Chart("t", nil, []ChartSeries{{Label: "x"}}, 20, 6); err == nil {
		t.Error("empty X accepted")
	}
	if _, err := Chart("t", []float64{1}, nil, 20, 6); err == nil {
		t.Error("no series accepted")
	}
	if _, err := Chart("t", []float64{1, 2}, []ChartSeries{{Label: "short", Y: []float64{1}}}, 20, 6); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Chart("t", []float64{1}, []ChartSeries{{Label: "nan", Y: []float64{math.NaN()}}}, 20, 6); err == nil {
		t.Error("NaN accepted")
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	// Tiny requested dimensions are clamped, not rejected.
	out, err := Chart("", []float64{1, 2, 3}, []ChartSeries{{Label: "s", Y: []float64{1, 2, 3}}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(out, "\n")) < 7 {
		t.Errorf("clamped chart too small:\n%s", out)
	}
}
