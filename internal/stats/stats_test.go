package stats

import (
	"errors"
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
	odd, err := Summarize([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if odd.Median != 2 {
		t.Errorf("odd median = %v, want 2", odd.Median)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty error = %v", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.StdDev != 0 || s.Mean != 42 || s.Median != 42 {
		t.Errorf("single-value summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMeanStdDevCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	m, err := Mean(xs)
	if err != nil || m != 2.5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(5.0 / 3.0); math.Abs(sd-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", sd, want)
	}
	ci, err := CI95HalfWidth(xs)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.96 * sd / 2; math.Abs(ci-want) > 1e-12 {
		t.Errorf("CI = %v, want %v", ci, want)
	}
	if ci1, err := CI95HalfWidth([]float64{5}); err != nil || ci1 != 0 {
		t.Errorf("single-sample CI = %v, %v", ci1, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Mean(nil) should be ErrEmpty")
	}
}

func TestMeanSeries(t *testing.T) {
	out, err := MeanSeries([][]float64{{1, 2, 3}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("MeanSeries = %v, want %v", out, want)
		}
	}
	if _, err := MeanSeries(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty series list accepted")
	}
	if _, err := MeanSeries([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestRelDiff(t *testing.T) {
	if got := RelDiff(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelDiff = %v", got)
	}
	if got := RelDiff(0, 0); got != 0 {
		t.Errorf("RelDiff(0,0) = %v", got)
	}
	if got := RelDiff(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelDiff(1,0) = %v", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9, 0) {
		t.Error("tiny absolute difference rejected")
	}
	if !ApproxEqual(1e9, 1e9*(1+1e-10), 0, 1e-9) {
		t.Error("tiny relative difference rejected")
	}
	if ApproxEqual(1, 2, 0.5, 0.1) {
		t.Error("large difference accepted")
	}
}
