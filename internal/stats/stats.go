// Package stats provides the small statistics toolkit used by the
// experiment harness: summary statistics over repeated simulation seeds
// and aggregation of per-seed series into mean curves, matching the
// paper's "average of 20 simulations on different post distributions"
// methodology.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries of empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the descriptive statistics of one sample.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"` // sample standard deviation (n-1)
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
}

// Summarize computes the Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the sample standard deviation of xs (0 for a single
// observation).
func StdDev(xs []float64) (float64, error) {
	s, err := Summarize(xs)
	if err != nil {
		return 0, err
	}
	return s.StdDev, nil
}

// CI95HalfWidth returns the half-width of a normal-approximation 95%
// confidence interval for the mean of xs.
func CI95HalfWidth(xs []float64) (float64, error) {
	s, err := Summarize(xs)
	if err != nil {
		return 0, err
	}
	if s.N < 2 {
		return 0, nil
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N)), nil
}

// MeanSeries averages per-seed series element-wise: series[seed][i].
// All series must have equal length.
func MeanSeries(series [][]float64) ([]float64, error) {
	if len(series) == 0 {
		return nil, ErrEmpty
	}
	n := len(series[0])
	for i, s := range series {
		if len(s) != n {
			return nil, fmt.Errorf("stats: series %d has length %d, want %d", i, len(s), n)
		}
	}
	out := make([]float64, n)
	for _, s := range series {
		for i, v := range s {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(series))
	}
	return out, nil
}

// RelDiff returns (a-b)/b, the relative difference of a versus baseline b.
func RelDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (a - b) / b
}

// ApproxEqual reports |a-b| <= absTol + relTol*max(|a|,|b|), the standard
// combined-tolerance float comparison used across the test suites.
func ApproxEqual(a, b, absTol, relTol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= absTol+relTol*scale
}
