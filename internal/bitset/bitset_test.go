package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(130) // spans three words
	if s.Len() != 130 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		if s.Test(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
	s.Clear(64)
	if s.Test(64) || s.Count() != 4 {
		t.Fatalf("Clear(64) failed: count %d", s.Count())
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Reset left %d bits", s.Count())
	}
}

func TestUnionCopyClone(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	b.Set(70)
	b.Set(3)
	a.UnionWith(b)
	if !a.Test(3) || !a.Test(70) || a.Count() != 2 {
		t.Fatalf("union wrong: count %d", a.Count())
	}
	c := a.Clone()
	c.Set(99)
	if a.Test(99) {
		t.Fatal("Clone aliases storage")
	}
	d := New(100)
	d.CopyFrom(a)
	if d.Count() != a.Count() {
		t.Fatalf("CopyFrom: %d vs %d", d.Count(), a.Count())
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{1, 63, 64, 65, 128, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

func TestAgainstMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 257
	s := New(n)
	ref := map[int]bool{}
	for op := 0; op < 5000; op++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			s.Set(i)
			ref[i] = true
		case 1:
			s.Clear(i)
			delete(ref, i)
		default:
			if s.Test(i) != ref[i] {
				t.Fatalf("Test(%d) = %v, reference %v", i, s.Test(i), ref[i])
			}
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("Count = %d, reference %d", s.Count(), len(ref))
	}
	s.ForEach(func(i int) {
		if !ref[i] {
			t.Fatalf("ForEach visited %d not in reference", i)
		}
	})
}

func TestZeroAndNegativeCapacity(t *testing.T) {
	z := New(0)
	if z.Count() != 0 {
		t.Error("empty set has bits")
	}
	neg := New(-5)
	if neg.Len() != 0 {
		t.Errorf("negative capacity clamped to %d, want 0", neg.Len())
	}
}

func BenchmarkUnionCount(b *testing.B) {
	const n = 4096
	x, y := New(n), New(n)
	for i := 0; i < n; i += 3 {
		x.Set(i)
	}
	for i := 0; i < n; i += 5 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
		_ = x.Count()
	}
}
