// Package bitset provides a fixed-size bitset used for dense reachability
// computations over post graphs (descendant sets in the fat-tree trim are
// recomputed many times; a word-parallel union keeps that cheap).
package bitset

import "math/bits"

// Set is a fixed-capacity bitset. The zero value has capacity zero;
// construct with New.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set holding bits 0..n-1, all clear.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith ors t into s. Both sets must have the same capacity.
func (s *Set) UnionWith(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// CopyFrom overwrites s with t. Both sets must have the same capacity.
func (s *Set) CopyFrom(t *Set) {
	copy(s.words, t.words)
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(base + b)
			w &= w - 1
		}
	}
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}
