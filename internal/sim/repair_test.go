package sim

import (
	"math"
	"testing"

	"wrsn/internal/model"
)

// subtreeVictim returns the post with the largest subtree (breaking the
// most descendants when killed) and the full subtree-size slice.
func subtreeVictim(p *model.Problem, tree model.Tree) (victim int, sizes []int) {
	sizes = tree.SubtreeSizes(p)
	victim = 0
	for i := 1; i < p.N(); i++ {
		if sizes[i] > sizes[victim] {
			victim = i
		}
	}
	return victim, sizes
}

func treesEqual(a, b model.Tree) bool {
	if len(a.Parent) != len(b.Parent) {
		return false
	}
	for i := range a.Parent {
		if a.Parent[i] != b.Parent[i] || a.Level[i] != b.Level[i] {
			return false
		}
	}
	return true
}

// TestRepairAcceptance is the issue's acceptance criterion on the Fig. 8
// workload (500x500 m, N=100 posts, M=600 nodes): kill one post at round
// 1000; with repair the long-run delivery ratio stays >= 0.99 because
// only the dead post's own reports are lost, while the no-repair baseline
// loses the post's entire subtree every round. The repair run must be
// bit-identical for a fixed seed and keep the energy audit balanced.
func TestRepairAcceptance(t *testing.T) {
	p, sol := testNetwork(t, 8, 500, 100, 600)
	victim, sizes := subtreeVictim(p, sol.Tree)
	if sizes[victim] < 2 {
		t.Fatalf("victim %d carries no subtree; pick another seed", victim)
	}
	const killAt = 1000
	const rounds = 5000

	build := func(repair *RepairConfig) *Simulator {
		cfg := scheduleConfig(p, sol, 42)
		cfg.Faults = &FaultConfig{Schedule: FaultSchedule{{Round: killAt, Kind: FaultKillPost, Post: victim}}}
		cfg.Repair = repair
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Repair arm: only the dead post's own reports are lost.
	healer := build(&RepairConfig{})
	m, err := healer.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	if m.Repairs != 1 {
		t.Fatalf("Repairs = %d, want 1", m.Repairs)
	}
	if got := m.DeliveryRatio(); got < 0.99 {
		t.Errorf("delivery ratio with repair = %.4f, want >= 0.99", got)
	}
	if want := int64(rounds - killAt); m.ReportsLost != want {
		t.Errorf("repair arm lost %d reports, want %d (the dead post's own)", m.ReportsLost, want)
	}
	if m.DegradedCost <= 0 {
		t.Errorf("DegradedCost = %g after a repair, want > 0", m.DegradedCost)
	}

	// Energy conservation holds across the repair.
	audit := healer.AuditEnergy()
	scale := audit.InitialStored + audit.Received
	if rel := math.Abs(audit.Imbalance()) / scale; rel > 1e-9 {
		t.Errorf("energy audit imbalance %.3g nJ (rel %.2g) after repair", audit.Imbalance(), rel)
	}

	// No-repair baseline: the whole subtree is lost every round.
	baseline := build(nil)
	bm, err := baseline.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(sizes[victim]) * int64(rounds-killAt); bm.ReportsLost != want {
		t.Errorf("baseline lost %d reports, want the full subtree %d (size %d)", bm.ReportsLost, want, sizes[victim])
	}
	if bm.Repairs != 0 {
		t.Errorf("baseline performed %d repairs", bm.Repairs)
	}

	// Bit-identical repeat: same seed, same metrics, same patched tree.
	again := build(&RepairConfig{})
	am, err := again.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	if *am != *m {
		t.Errorf("repair runs diverged for a fixed seed:\n%+v\n%+v", *m, *am)
	}
	if !treesEqual(healer.Tree(), again.Tree()) {
		t.Error("repaired trees differ between identical runs")
	}
}

func TestRepairLatencySemantics(t *testing.T) {
	p, sol := testNetwork(t, 8, 300, 25, 120)
	victim, sizes := subtreeVictim(p, sol.Tree)
	if sizes[victim] < 2 {
		t.Fatalf("victim carries no subtree")
	}
	const killAt = 100
	const rounds = 500

	run := func(latency int) *Metrics {
		cfg := scheduleConfig(p, sol, 3)
		cfg.Faults = &FaultConfig{Schedule: FaultSchedule{{Round: killAt, Kind: FaultKillPost, Post: victim}}}
		cfg.Repair = &RepairConfig{LatencyRounds: latency}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run(rounds)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Zero latency: the patched tree carries the very next round, so only
	// the dead post's own reports are ever lost.
	m0 := run(0)
	if want := int64(rounds - killAt); m0.ReportsLost != want {
		t.Errorf("zero-latency run lost %d, want %d", m0.ReportsLost, want)
	}
	if got := m0.MeanRepairLatency(); got != 0 {
		t.Errorf("MeanRepairLatency = %g, want 0", got)
	}

	// Latency L: the old tree bleeds the whole subtree for exactly L more
	// rounds before the patch lands.
	const lat = 50
	mL := run(lat)
	want := int64(sizes[victim])*lat + int64(rounds-killAt-lat)
	if mL.ReportsLost != want {
		t.Errorf("latency-%d run lost %d, want %d (subtree %d for %d rounds, then own only)",
			lat, mL.ReportsLost, want, sizes[victim], lat)
	}
	if got := mL.MeanRepairLatency(); got != lat {
		t.Errorf("MeanRepairLatency = %g, want %d", got, lat)
	}
}

func TestRepairRestoresAvailability(t *testing.T) {
	p, sol := testNetwork(t, 8, 300, 25, 120)
	victim, sizes := subtreeVictim(p, sol.Tree)
	cfg := scheduleConfig(p, sol, 3)
	cfg.Faults = &FaultConfig{Schedule: FaultSchedule{{Round: 100, Kind: FaultKillPost, Post: victim}}}
	cfg.Repair = &RepairConfig{LatencyRounds: 20}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := &AvailabilityTracer{}
	s.SetTracer(tr)
	if _, err := s.Run(300); err != nil {
		t.Fatal(err)
	}
	n := float64(p.N())
	dip := (n - float64(sizes[victim])) / n
	healed := (n - 1) / n
	if got := tr.Min(); math.Abs(got-dip) > 1e-9 {
		t.Errorf("min availability %.4f, want the subtree dip %.4f", got, dip)
	}
	if got := tr.Series[len(tr.Series)-1]; math.Abs(got-healed) > 1e-9 {
		t.Errorf("final availability %.4f, want %.4f after repair", got, healed)
	}
}

// TestRepairUnderStochasticFailures drives the full loop — random
// permanent failures, repeated repairs — and checks determinism, audit
// balance and that repairs keep routing through survivors only.
func TestRepairUnderStochasticFailures(t *testing.T) {
	p, sol := testNetwork(t, 8, 300, 25, 150)
	run := func() (*Metrics, model.Tree, EnergyAudit) {
		cfg := scheduleConfig(p, sol, 99)
		cfg.Faults = &FaultConfig{NodeFailurePerRound: 2e-4}
		cfg.Repair = &RepairConfig{LatencyRounds: 10}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run(4000)
		if err != nil {
			t.Fatal(err)
		}
		return m, s.Tree(), s.AuditEnergy()
	}
	m, tree, audit := run()
	if m.PostsDead == 0 || m.Repairs == 0 {
		t.Skipf("seed produced no post deaths (failures=%d); determinism still covered elsewhere", m.NodeFailures)
	}
	if rel := math.Abs(audit.Imbalance()) / (audit.InitialStored + audit.Received); rel > 1e-9 {
		t.Errorf("audit imbalance %.3g (rel %.2g) across %d repairs", audit.Imbalance(), rel, m.Repairs)
	}
	m2, tree2, _ := run()
	if *m != *m2 {
		t.Errorf("stochastic repair runs diverged:\n%+v\n%+v", *m, *m2)
	}
	if !treesEqual(tree, tree2) {
		t.Error("patched trees diverged between identical stochastic runs")
	}
}
