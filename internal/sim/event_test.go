package sim

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The event-driven core's contract (event.go): for every configuration
// without per-round randomness in the reporting path — fault-free or
// scheduled-fault runs — it must be bit-identical to the per-round
// reference stepper in every metric, every battery, every charger and
// every trace row. Stochastic configurations sample next-event times
// instead of per-round Bernoulli draws, so they match in distribution,
// not realisation. These tests enforce both halves.

// cloneConfig deep-copies the pointer-valued sub-configs so two runs of
// the same scenario never share mutable state.
func cloneConfig(cfg Config) Config {
	out := cfg
	if cfg.Charger != nil {
		c := *cfg.Charger
		out.Charger = &c
	}
	if cfg.Faults != nil {
		f := *cfg.Faults
		out.Faults = &f
	}
	if cfg.Repair != nil {
		r := *cfg.Repair
		out.Repair = &r
	}
	return out
}

// runCore runs one configuration under the given stepper with a CSV
// tracer (sampling every `every` rounds) and an availability tracer
// attached, and returns the simulator, metrics and trace output.
func runCore(t *testing.T, cfg Config, kind StepperKind, rounds, every int) (*Simulator, *Metrics, []byte, *AvailabilityTracer) {
	t.Helper()
	c := cloneConfig(cfg)
	c.Stepper = kind
	s, err := New(c)
	if err != nil {
		t.Fatalf("New(%q): %v", kind, err)
	}
	var csv bytes.Buffer
	csvTr := NewCSVTracer(&csv, every)
	avail := &AvailabilityTracer{}
	s.SetTracer(TracerFunc(func(round int, s *Simulator) {
		csvTr.Observe(round, s)
		avail.Observe(round, s)
	}))
	m, err := s.Run(rounds)
	if err != nil {
		t.Fatalf("Run(%q): %v", kind, err)
	}
	if err := csvTr.Flush(); err != nil {
		t.Fatalf("Flush(%q): %v", kind, err)
	}
	return s, m, csv.Bytes(), avail
}

// assertIdentical compares every observable of an exact and an event run
// bit-for-bit.
func assertIdentical(t *testing.T, name string, exact, event *Simulator, me, mv *Metrics, csvE, csvV []byte, availE, availV *AvailabilityTracer) {
	t.Helper()
	if *me != *mv {
		t.Errorf("%s: metrics diverge:\nexact: %+v\nevent: %+v", name, *me, *mv)
	}
	for i := range exact.posts {
		ne, nv := exact.posts[i].Nodes, event.posts[i].Nodes
		for j := range ne {
			if ne[j].Alive != nv[j].Alive || ne[j].DownUntil != nv[j].DownUntil ||
				math.Float64bits(ne[j].Energy) != math.Float64bits(nv[j].Energy) {
				t.Fatalf("%s: post %d node %d diverges: exact %+v event %+v", name, i, j, ne[j], nv[j])
			}
		}
	}
	for i := range exact.tree.Parent {
		if exact.tree.Parent[i] != event.tree.Parent[i] {
			t.Errorf("%s: tree parent[%d]: exact %d event %d", name, i, exact.tree.Parent[i], event.tree.Parent[i])
		}
	}
	for i := range exact.chargers {
		ce, cv := exact.chargers[i], event.chargers[i]
		if ce.pos != cv.pos || ce.target != cv.target || ce.downUntil != cv.downUntil {
			t.Errorf("%s: charger %d diverges: exact pos=%v target=%d down=%d, event pos=%v target=%d down=%d",
				name, i, ce.pos, ce.target, ce.downUntil, cv.pos, cv.target, cv.downUntil)
		}
	}
	if !bytes.Equal(csvE, csvV) {
		t.Errorf("%s: CSV traces differ (%d vs %d bytes)", name, len(csvE), len(csvV))
		reportFirstCSVDiff(t, csvE, csvV)
	}
	if len(availE.Rounds) != len(availV.Rounds) {
		t.Fatalf("%s: availability series length: exact %d event %d", name, len(availE.Rounds), len(availV.Rounds))
	}
	for i := range availE.Rounds {
		if availE.Rounds[i] != availV.Rounds[i] ||
			math.Float64bits(availE.Series[i]) != math.Float64bits(availV.Series[i]) {
			t.Fatalf("%s: availability sample %d: exact (%d, %v) event (%d, %v)",
				name, i, availE.Rounds[i], availE.Series[i], availV.Rounds[i], availV.Series[i])
		}
	}
}

func reportFirstCSVDiff(t *testing.T, a, b []byte) {
	t.Helper()
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			t.Errorf("first differing row %d:\nexact: %s\nevent: %s", i, la[i], lb[i])
			return
		}
	}
}

// diffRun asserts bit-identity between the cores on one scenario, with
// the CSV tracer both at every round and at a coarser stride (stride
// sampling must not change what the event core replays).
func diffRun(t *testing.T, name string, cfg Config, rounds int) {
	t.Helper()
	for _, every := range []int{1, 7} {
		exact, me, csvE, availE := runCore(t, cfg, StepperExact, rounds, every)
		event, mv, csvV, availV := runCore(t, cfg, StepperEvent, rounds, every)
		assertIdentical(t, fmt.Sprintf("%s/every=%d", name, every), exact, event, me, mv, csvE, csvV, availE, availV)
	}
}

func TestEventCoreBitIdenticalHealthy(t *testing.T) {
	p, sol := testNetwork(t, 11, 250, 15, 60)
	diffRun(t, "urgency", Config{
		Problem:  p,
		Solution: sol,
		Charger:  &ChargerConfig{PowerPerRound: 5e5, SpeedPerRound: 15, Policy: PolicyUrgency},
		Seed:     1,
	}, 4000)
	diffRun(t, "round-robin", Config{
		Problem:  p,
		Solution: sol,
		Charger:  &ChargerConfig{PowerPerRound: 5e5, SpeedPerRound: 15, Policy: PolicyRoundRobin},
		Seed:     1,
	}, 3000)
	diffRun(t, "tour-fleet", Config{
		Problem:  p,
		Solution: sol,
		Charger:  &ChargerConfig{PowerPerRound: 5e5, SpeedPerRound: 15, Policy: PolicyTour},
		Chargers: 3,
		Seed:     1,
	}, 3000)
}

func TestEventCoreBitIdenticalDepletion(t *testing.T) {
	// No charger: the network drains, posts starve one by one, and the
	// run crosses full depletion — every starvation onset must land on
	// the same round in both cores.
	p, sol := testNetwork(t, 12, 250, 12, 48)
	diffRun(t, "depletion", Config{
		Problem:  p,
		Solution: sol,
		Seed:     3,
	}, 2*DefaultBatteryRounds)
}

func TestEventCoreBitIdenticalScheduledFaults(t *testing.T) {
	p, sol := testNetwork(t, 13, 250, 15, 60)
	base := Config{
		Problem:  p,
		Solution: sol,
		Charger:  &ChargerConfig{PowerPerRound: 5e5, SpeedPerRound: 15, Policy: PolicyUrgency},
		Seed:     7,
	}

	killPost := base
	killPost.Faults = &FaultConfig{Schedule: FaultSchedule{
		{Round: 300, Kind: FaultKillNode, Post: 2},
		{Round: 500, Kind: FaultKillPost, Post: 4},
		{Round: 500, Kind: FaultKillPost, Post: 9},
		{Round: 1400, Kind: FaultKillPost, Post: 1},
	}}
	killPost.Repair = &RepairConfig{LatencyRounds: 10}
	diffRun(t, "kill-post+repair", killPost, 2500)

	transient := base
	transient.Faults = &FaultConfig{Schedule: FaultSchedule{
		{Round: 200, Kind: FaultTransientNode, Post: 3, Duration: 80},
		{Round: 210, Kind: FaultTransientNode, Post: 3, Duration: 40},
		{Round: 600, Kind: FaultTransientNode, Post: 7, Duration: 250},
	}}
	diffRun(t, "transient", transient, 1500)

	breakdown := base
	breakdown.Chargers = 2
	breakdown.Charger = &ChargerConfig{PowerPerRound: 5e5, SpeedPerRound: 15, Policy: PolicyUrgency}
	breakdown.Faults = &FaultConfig{Schedule: FaultSchedule{
		{Round: 100, Kind: FaultChargerDown, Charger: 0, Duration: 400},
		{Round: 350, Kind: FaultChargerDown, Charger: 1, Duration: 100},
	}}
	diffRun(t, "charger-down", breakdown, 1500)

	mixed := base
	mixed.Repair = &RepairConfig{LatencyRounds: 5}
	mixed.Faults = &FaultConfig{Schedule: FaultSchedule{
		{Round: 150, Kind: FaultTransientNode, Post: 1, Duration: 60},
		{Round: 300, Kind: FaultKillPost, Post: 6},
		{Round: 320, Kind: FaultChargerDown, Charger: 0, Duration: 200},
		{Round: 800, Kind: FaultKillNode, Post: 2},
		{Round: 800, Kind: FaultTransientNode, Post: 2, Duration: 100},
	}}
	diffRun(t, "mixed", mixed, 2000)
}

// TestEventCoreBitIdenticalProperty fuzzes scenario shapes: random
// topologies, charger policies, fleets and scheduled fault mixes, each
// checked for bit-identity.
func TestEventCoreBitIdenticalProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	policies := []ChargerPolicy{PolicyUrgency, PolicyRoundRobin, PolicyTour}
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		nPosts := 8 + rng.Intn(7)
		p, sol := testNetwork(t, int64(40+trial), 150+rng.Float64()*100, nPosts, 4*nPosts)
		cfg := Config{
			Problem:  p,
			Solution: sol,
			Seed:     int64(trial),
		}
		if rng.Intn(4) > 0 {
			cfg.Charger = &ChargerConfig{
				PowerPerRound: 2e5 + rng.Float64()*8e5,
				SpeedPerRound: 5 + rng.Float64()*25,
				Policy:        policies[rng.Intn(len(policies))],
			}
			cfg.Chargers = 1 + rng.Intn(3)
		}
		var sched FaultSchedule
		for k := 0; k < rng.Intn(6); k++ {
			round := 1 + rng.Intn(1200)
			switch rng.Intn(4) {
			case 0:
				sched = append(sched, FaultEvent{Round: round, Kind: FaultKillNode, Post: rng.Intn(nPosts)})
			case 1:
				sched = append(sched, FaultEvent{Round: round, Kind: FaultKillPost, Post: rng.Intn(nPosts)})
			case 2:
				sched = append(sched, FaultEvent{Round: round, Kind: FaultTransientNode, Post: rng.Intn(nPosts), Duration: 1 + rng.Intn(300)})
			case 3:
				if cfg.Charger != nil {
					sched = append(sched, FaultEvent{Round: round, Kind: FaultChargerDown, Charger: rng.Intn(cfg.Chargers), Duration: 1 + rng.Intn(300)})
				}
			}
		}
		if len(sched) > 0 {
			cfg.Faults = &FaultConfig{Schedule: sched}
			if rng.Intn(2) == 0 {
				cfg.Repair = &RepairConfig{LatencyRounds: rng.Intn(20)}
			}
		}
		diffRun(t, fmt.Sprintf("property-%d", trial), cfg, 800+rng.Intn(800))
	}
}

// TestEventCoreStochasticDistribution checks that next-event sampling
// reproduces the per-round Bernoulli processes in distribution: mean
// fault counts and delivery across seeds agree between the cores.
func TestEventCoreStochasticDistribution(t *testing.T) {
	p, sol := testNetwork(t, 14, 250, 15, 60)
	// Rates are set high enough that every process fires often (totals in
	// the hundreds across seeds), so the relative tolerances below sit at
	// 3+ standard deviations of the Binomial sampling noise.
	const (
		seeds  = 150
		rounds = 1500
	)
	cfg := Config{
		Problem:  p,
		Solution: sol,
		Charger:  &ChargerConfig{PowerPerRound: 5e5, SpeedPerRound: 15, Policy: PolicyUrgency},
		Chargers: 2,
		Faults: &FaultConfig{
			NodeFailurePerRound:    2e-4,
			TransientPerRound:      5e-4,
			TransientMeanRounds:    40,
			PostOutagePerRound:     1e-3,
			OutageRadius:           30,
			ChargerFailurePerRound: 1e-3,
			ChargerRepairRounds:    50,
		},
		Repair: &RepairConfig{LatencyRounds: 10},
	}
	var sums [2]struct {
		failures, transients, outages, breakdowns, delivery float64
	}
	for ki, kind := range []StepperKind{StepperExact, StepperEvent} {
		for seed := int64(0); seed < seeds; seed++ {
			c := cloneConfig(cfg)
			c.Stepper = kind
			c.Seed = seed
			s, err := New(c)
			if err != nil {
				t.Fatalf("New(%q, seed %d): %v", kind, seed, err)
			}
			m, err := s.Run(rounds)
			if err != nil {
				t.Fatalf("Run(%q, seed %d): %v", kind, seed, err)
			}
			sums[ki].failures += float64(m.NodeFailures)
			sums[ki].transients += float64(m.TransientFaults)
			sums[ki].outages += float64(m.CorrelatedOutages)
			sums[ki].breakdowns += float64(m.ChargerBreakdowns)
			sums[ki].delivery += m.DeliveryRatio()
		}
	}
	relClose := func(name string, a, b, tol float64) {
		t.Helper()
		mean := (a + b) / 2
		if mean == 0 {
			t.Fatalf("%s: both cores produced zero events — test has no power", name)
		}
		if math.Abs(a-b) > tol*mean {
			t.Errorf("%s diverges beyond %.0f%%: exact mean %.2f, event mean %.2f",
				name, 100*tol, a/seeds, b/seeds)
		}
	}
	relClose("node failures", sums[0].failures, sums[1].failures, 0.15)
	relClose("transient faults", sums[0].transients, sums[1].transients, 0.15)
	relClose("correlated outages", sums[0].outages, sums[1].outages, 0.25)
	relClose("charger breakdowns", sums[0].breakdowns, sums[1].breakdowns, 0.25)
	if d := math.Abs(sums[0].delivery-sums[1].delivery) / seeds; d > 0.04 {
		t.Errorf("mean delivery diverges by %.4f: exact %.4f, event %.4f",
			d, sums[0].delivery/seeds, sums[1].delivery/seeds)
	}
}

// TestEventCoreCertainFaultsFire pins the geometric inversion's p=1 edge
// case: a certain per-round hazard must fire on round 1, exactly like
// the per-round draw.
func TestEventCoreCertainFaultsFire(t *testing.T) {
	p, sol := testNetwork(t, 15, 200, 8, 32)
	for _, kind := range []StepperKind{StepperExact, StepperEvent} {
		s, err := New(Config{
			Problem:  p,
			Solution: sol,
			Faults:   &FaultConfig{NodeFailurePerRound: 1},
			Seed:     1,
			Stepper:  kind,
		})
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		m, err := s.Run(3)
		if err != nil {
			t.Fatalf("Run(%q): %v", kind, err)
		}
		if m.NodeFailures != int64(p.Nodes) {
			t.Errorf("%q: %d of %d nodes failed under p=1", kind, m.NodeFailures, p.Nodes)
		}
	}
}

func TestEventCoreDeterministicPerSeed(t *testing.T) {
	p, sol := testNetwork(t, 16, 250, 10, 40)
	cfg := Config{
		Problem:  p,
		Solution: sol,
		Charger:  &ChargerConfig{PowerPerRound: 5e5, SpeedPerRound: 15},
		Faults: &FaultConfig{
			NodeFailurePerRound: 1e-4,
			TransientPerRound:   5e-4,
		},
		Seed:    42,
		Stepper: StepperEvent,
	}
	run := func() Metrics {
		s, err := New(cloneConfig(cfg))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		m, err := s.Run(2000)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return *m
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different event-core runs:\n%+v\n%+v", a, b)
	}
}

func TestStepperSelection(t *testing.T) {
	p, sol := testNetwork(t, 17, 200, 8, 32)
	base := Config{Problem: p, Solution: sol, MaxRetries: 4}

	lossy := base
	lossy.LinkLossProb = 0.1
	lossy.Stepper = StepperEvent
	if _, err := New(lossy); err == nil {
		t.Error("StepperEvent accepted a lossy-link configuration")
	}

	lossy.Stepper = StepperAuto
	s, err := New(lossy)
	if err != nil {
		t.Fatalf("StepperAuto rejected a lossy config: %v", err)
	}
	if s.eventMode {
		t.Error("StepperAuto picked the event core for a lossy config")
	}

	clean := base
	s, err = New(clean)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !s.eventMode {
		t.Error("StepperAuto did not pick the event core for an eligible config")
	}

	bogus := base
	bogus.Stepper = StepperKind("per-round")
	if _, err := New(bogus); err == nil {
		t.Error("unknown stepper kind accepted")
	}
}
