// Package sim is a round-based simulator for a deployed wireless-
// rechargeable sensor network executing a deployment/routing solution,
// together with a mobile wireless charger that travels between posts and
// recharges them.
//
// It closes the loop on the paper's model: the analytic objective
// (model.Evaluate) promises a long-run charger energy per reporting round;
// the simulator actually runs the network — per-node batteries, in-post
// duty rotation, hop-by-hop forwarding, charger travel and charging with
// the multi-node efficiency gain — and measures the charger's empirical
// energy per delivered round, which converges to the analytic value under
// an adequate charging schedule (property-tested). It also supports
// charger-less runs for lifetime studies.
//
// Beyond the paper, the simulator is self-healing: a pluggable
// fault-injection engine (Config.Faults) drives permanent node failures,
// transient outages, spatially correlated post outages and charger
// breakdowns — stochastically or from a deterministic FaultSchedule — and
// an online repair policy (Config.Repair) re-attaches orphaned subtrees
// by re-running the recharging-cost routing phases over the surviving
// posts, with configurable repair latency. Degradation metrics
// (time-to-first-partition, repairs, latency, post-repair cost inflation,
// per-round availability) quantify what failures cost.
//
// Time advances in reporting rounds: every round each post originates one
// report of PacketBits bits that is forwarded hop-by-hop to the base
// station.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"wrsn/internal/geom"
	"wrsn/internal/heal"
	"wrsn/internal/model"
)

// Config parameterises a simulation run. Zero-value fields are filled
// with defaults by New where noted.
type Config struct {
	// Problem and Solution define the network: post locations, energy
	// and charging models, node counts and the routing tree.
	Problem  *model.Problem
	Solution model.Solution

	// PacketBits is the size of one report in bits (default 1000).
	PacketBits int
	// BatteryCapacity is each node's battery in nJ (default: enough for
	// roughly 2000 rounds of the busiest post's work, so charging
	// schedules have slack).
	BatteryCapacity float64
	// InitialChargeFrac is the starting battery fraction in (0, 1]
	// (default 1.0; values outside [0, 1] are rejected).
	InitialChargeFrac float64

	// Charger configures the mobile charger(s); nil disables charging
	// entirely (lifetime studies).
	Charger *ChargerConfig
	// Chargers is the fleet size: how many identical chargers (per
	// Charger) patrol the field. 0 and 1 both mean a single charger.
	// Chargers coordinate by claiming targets, so no two service the
	// same post simultaneously.
	Chargers int

	// Faults configures the fault-injection engine: stochastic and
	// scheduled node failures, transient outages, correlated post
	// outages and charger breakdowns. nil injects nothing.
	Faults *FaultConfig
	// Repair enables the online tree-repair policy: when a post dies,
	// orphaned subtrees re-attach by re-running the recharging-cost
	// routing phases over the surviving posts. nil leaves the tree
	// static (the no-repair baseline).
	Repair *RepairConfig

	// FailurePerRound is a legacy shorthand for
	// Faults.NodeFailurePerRound: the per-node per-round Bernoulli
	// probability of a permanent failure (default 0). Node failures per
	// round follow Binomial(aliveNodes, p), so high rates inject
	// proportionally — the historical engine fired at most one failure
	// per round regardless of rate. Setting both this and
	// Faults.NodeFailurePerRound is an error.
	FailurePerRound float64
	// LinkLossProb is the probability that one transmission attempt of a
	// report fails and must be retransmitted (default 0: the paper's
	// lossless links). Lossy links inflate transmit energy by roughly
	// 1/(1-p) — an extension quantifying how MAC-layer loss erodes the
	// analytic recharging cost.
	LinkLossProb float64
	// MaxRetries caps retransmission attempts per report per hop; a
	// report dropping all attempts is lost. It defaults to 8 for
	// lossless runs but must be set explicitly (>= 1) when LinkLossProb
	// is positive.
	MaxRetries int
	// Seed drives all randomness (failures). Runs are deterministic for
	// a fixed seed.
	Seed int64
	// Stepper selects the simulation core: StepperAuto (default) runs the
	// event-driven core whenever the configuration is eligible,
	// StepperEvent demands it (New errors when ineligible), StepperExact
	// forces the per-round reference stepper. The two cores are
	// bit-identical for every configuration without per-round randomness
	// in the reporting path (see event.go).
	Stepper StepperKind
}

// RepairConfig tunes the online tree-repair policy.
type RepairConfig struct {
	// LatencyRounds is how many rounds of outage pass between detecting
	// a dead post and the patched tree taking effect (repairs are not
	// instantaneous). 0 applies the new tree before the next round's
	// reports.
	LatencyRounds int
	// DisableSiblingMerge skips the Phase III sibling merge during
	// rebuilds (ablation knob).
	DisableSiblingMerge bool
}

// ChargerPolicy selects how the charger picks its next post. The paper
// leaves charger scheduling out of scope ("how to schedule the wireless
// charger ... is not the focus of this paper"); these policies let the
// simulator study that open question.
type ChargerPolicy string

const (
	// PolicyUrgency (default) targets the post with the smallest
	// projected time-to-empty among posts below the target fraction.
	PolicyUrgency ChargerPolicy = "urgency"
	// PolicyRoundRobin cycles through posts in index order, charging
	// any post below the target fraction — simpler, but it lets busy
	// posts starve when batteries are tight.
	PolicyRoundRobin ChargerPolicy = "round-robin"
	// PolicyTour plans a short travelling-salesman tour (nearest
	// neighbour + 2-opt, package tour) over every post currently below
	// the target fraction and follows it, replanning when the tour is
	// exhausted. Minimises travel at the price of scheduling freshness.
	PolicyTour ChargerPolicy = "tour"
)

// ChargerConfig describes the mobile wireless charger.
type ChargerConfig struct {
	// PowerPerRound is the charger's dissemination budget per round
	// while parked at a post, in nJ.
	PowerPerRound float64
	// SpeedPerRound is travel distance per round in meters.
	SpeedPerRound float64
	// FillToFrac stops charging a post once all of its nodes are at
	// this battery fraction (default 0.95).
	FillToFrac float64
	// TargetFrac marks a post as needing charge when its lowest node
	// falls below this fraction (default 0.5).
	TargetFrac float64
	// StartAt is the charger's initial location (default: the BS).
	StartAt *geom.Point
	// Policy selects the target-picking strategy (default PolicyUrgency).
	Policy ChargerPolicy
}

// Node is one sensor node's runtime state.
type Node struct {
	Energy float64
	Alive  bool
	// DownUntil, when positive, marks a transient outage: the node is
	// offline through round DownUntil inclusive, then recovers with its
	// battery intact.
	DownUntil int
}

// usableAt reports whether the node can work at the given round: alive
// and not transiently down.
func (nd *Node) usableAt(round int) bool {
	return nd.Alive && nd.DownUntil < round
}

// Post is the runtime state of one post: its nodes and rotation cursor.
type Post struct {
	Nodes []Node
}

// usableMaxEnergy returns the index of the usable node with the most
// energy, or -1 when none is usable. Rotation selects this node as the
// round's active worker, which keeps residual energies nearly equal
// across a post (the paper's stated rotation goal).
func (p *Post) usableMaxEnergy(round int) int {
	best, bestE := -1, -1.0
	for i := range p.Nodes {
		if p.Nodes[i].usableAt(round) && p.Nodes[i].Energy > bestE {
			best, bestE = i, p.Nodes[i].Energy
		}
	}
	return best
}

// aliveMaxEnergy returns the index of the alive node with the most
// energy regardless of transient state, or -1 when none is alive. Fault
// injection kills this node so repeated events strip a post
// deterministically.
func (p *Post) aliveMaxEnergy() int {
	best, bestE := -1, -1.0
	for i := range p.Nodes {
		if p.Nodes[i].Alive && p.Nodes[i].Energy > bestE {
			best, bestE = i, p.Nodes[i].Energy
		}
	}
	return best
}

// AliveCount returns the number of permanently alive nodes at the post
// (transiently down nodes count: they will recover).
func (p *Post) AliveCount() int {
	c := 0
	for i := range p.Nodes {
		if p.Nodes[i].Alive {
			c++
		}
	}
	return c
}

// UsableCount returns the number of nodes able to work at the given
// round: alive and not transiently down.
func (p *Post) UsableCount(round int) int {
	c := 0
	for i := range p.Nodes {
		if p.Nodes[i].usableAt(round) {
			c++
		}
	}
	return c
}

// minEnergyFrac returns the lowest battery fraction among usable nodes
// (1.0 when none is usable, so dead posts never attract the charger).
func (p *Post) minEnergyFrac(capacity float64, round int) float64 {
	min := 1.0
	for i := range p.Nodes {
		if p.Nodes[i].usableAt(round) {
			if f := p.Nodes[i].Energy / capacity; f < min {
				min = f
			}
		}
	}
	return min
}

// Metrics accumulates simulation outcomes.
type Metrics struct {
	Rounds            int
	ReportsDelivered  int64   // reports that reached the base station
	ReportsLost       int64   // reports dropped at dead/exhausted posts
	BitsDelivered     int64   // PacketBits * ReportsDelivered
	NetworkEnergy     float64 // nJ consumed by sensor nodes
	ChargerEnergy     float64 // nJ disseminated by the charger
	ChargerWasted     float64 // nJ disseminated but not stored (full batteries)
	ChargerDistance   float64 // meters travelled
	ChargerVisits     int64   // charging sessions completed
	NodeFailures      int64   // injected permanent failures
	FirstLossRound    int     // first round with a lost report; -1 if none
	StarvedPostRounds int64   // post-rounds spent with no usable node

	// Fault-engine outcomes.
	TransientFaults   int64 // transient node outages injected
	CorrelatedOutages int64 // correlated post-outage events fired
	ChargerBreakdowns int64 // charger breakdowns injected
	ChargerDownRounds int64 // charger-rounds spent out of service

	// Degradation and repair outcomes.
	PostsDead           int     // posts whose last node died
	StrandedPosts       int     // live posts with no possible survivor route to the BS
	FirstPartitionRound int     // first round a live post was physically cut off; -1 if never
	Repairs             int64   // tree repairs applied
	RepairLatencySum    int64   // rounds of outage between death detection and patched trees
	DegradedCost        float64 // analytic cost after the latest repair (nJ per bit-round); 0 before any
	RepairCostInflation float64 // DegradedCost / original plan cost - 1, after the latest repair

	// postCount (reports per full round) is stamped by the simulator so
	// EmpiricalCostPerRound can normalise without a Problem reference.
	postCount int
	// energyStored tracks nJ actually banked into batteries by charging
	// (dissemination x efficiency minus clipping); feeds AuditEnergy.
	energyStored float64
}

// EmpiricalCostPerBitRound returns the charger energy disseminated per
// fully-delivered reporting round, normalised per bit — the measured
// counterpart of model.Evaluate. packetBits must match the run's
// Config.PacketBits.
func (m *Metrics) EmpiricalCostPerBitRound(packetBits int) float64 {
	if m.ReportsDelivered == 0 || m.postCount == 0 {
		return math.Inf(1)
	}
	roundsDelivered := float64(m.ReportsDelivered) / float64(m.postCount)
	return m.ChargerEnergy / roundsDelivered / float64(packetBits)
}

// DeliveryRatio returns delivered / (delivered + lost) reports.
func (m *Metrics) DeliveryRatio() float64 {
	total := m.ReportsDelivered + m.ReportsLost
	if total == 0 {
		return 0
	}
	return float64(m.ReportsDelivered) / float64(total)
}

// MeanRepairLatency returns the mean rounds of outage between detecting
// a dead post and its repair taking effect (0 when no repair ran).
func (m *Metrics) MeanRepairLatency() float64 {
	if m.Repairs == 0 {
		return 0
	}
	return float64(m.RepairLatencySum) / float64(m.Repairs)
}

// Simulator executes a configured run.
type Simulator struct {
	cfg      Config
	p        *model.Problem
	tree     model.Tree // current routing tree (repairs swap it)
	posts    []Post
	order    []int // posts in leaves-first topological order
	perTx    []float64
	perRx    []float64
	drain    []float64 // expected nJ/round consumed at each post
	rng      *rand.Rand
	chargers []*chargerState
	claimed  []bool // posts currently targeted by some charger
	metrics  Metrics
	tracer   Tracer

	faults   *faultEngine
	deadPost []bool // posts whose last node died (detected)

	planCost         float64 // analytic cost of the original plan (repair metric baseline)
	repairPending    bool
	repairRequested  int // round the pending repair was requested
	repairApplyAfter int // last round the old tree stays in effect

	lastRoundDelivered int64 // reports delivered in the most recent round

	// Reusable per-round scratch (persistent so the steady state of both
	// cores allocates nothing).
	arrived []int64 // reports awaiting forwarding at each post this round

	// Event-driven core state (event.go).
	eventMode bool      // run the event-horizon core instead of per-round stepping
	span      spanState // per-span flow snapshot and per-round deltas
	everDown  bool      // some node has been transiently down at least once

	// Online repair machinery, built lazily on the first repair and kept
	// for the run: the healer reuses its graph, router and trim state
	// across repairs instead of rebuilding them per event.
	healer    *heal.Healer
	healerErr error      // sticky construction failure (repairs degrade to no-ops)
	repairDst model.Tree // destination buffer Repair writes into (swapped with tree)
	aliveBuf  []int      // per-post alive counts scratch
}

// SetTracer installs a per-round observer (nil disables tracing).
func (s *Simulator) SetTracer(t Tracer) { s.tracer = t }

// DefaultBatteryRounds sizes the default battery: capacity equals this
// many rounds of the busiest post's per-node drain.
const DefaultBatteryRounds = 2000

// New validates cfg, applies defaults and returns a ready Simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Problem == nil {
		return nil, errors.New("sim: nil problem")
	}
	p := cfg.Problem
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Solution.Deploy.Validate(p); err != nil {
		return nil, fmt.Errorf("sim: invalid deployment: %w", err)
	}
	if err := cfg.Solution.Tree.Validate(p); err != nil {
		return nil, fmt.Errorf("sim: invalid tree: %w", err)
	}
	if cfg.PacketBits <= 0 {
		cfg.PacketBits = 1000
	}
	if cfg.InitialChargeFrac < 0 || cfg.InitialChargeFrac > 1 {
		return nil, fmt.Errorf("sim: initial charge fraction %g outside [0, 1]", cfg.InitialChargeFrac)
	}
	if cfg.InitialChargeFrac == 0 {
		cfg.InitialChargeFrac = 1
	}
	if cfg.Chargers < 0 {
		return nil, fmt.Errorf("sim: negative charger fleet size %d", cfg.Chargers)
	}
	if cfg.FailurePerRound < 0 || cfg.FailurePerRound > 1 {
		return nil, fmt.Errorf("sim: failure rate %g outside [0, 1]", cfg.FailurePerRound)
	}
	if cfg.LinkLossProb < 0 || cfg.LinkLossProb >= 1 {
		return nil, fmt.Errorf("sim: link loss probability %g outside [0, 1)", cfg.LinkLossProb)
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("sim: negative retry cap %d", cfg.MaxRetries)
	}
	if cfg.LinkLossProb > 0 && cfg.MaxRetries == 0 {
		return nil, errors.New("sim: LinkLossProb > 0 requires an explicit MaxRetries >= 1")
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 8
	}
	if cfg.Repair != nil && cfg.Repair.LatencyRounds < 0 {
		return nil, fmt.Errorf("sim: negative repair latency %d", cfg.Repair.LatencyRounds)
	}
	if !p.UniformRates() {
		return nil, errors.New("sim: heterogeneous report rates are not supported by the round-based simulator; use the analytic evaluator")
	}

	n := p.N()
	fleet := 0
	if cfg.Charger != nil {
		fleet = cfg.Chargers
		if fleet < 1 {
			fleet = 1
		}
	} else if cfg.Chargers > 0 {
		return nil, errors.New("sim: Chargers set but Charger config is nil")
	}

	// Fold the legacy FailurePerRound shorthand into the fault engine.
	var faultCfg FaultConfig
	if cfg.Faults != nil {
		faultCfg = *cfg.Faults
		if cfg.FailurePerRound > 0 && faultCfg.NodeFailurePerRound > 0 {
			return nil, errors.New("sim: set FailurePerRound or Faults.NodeFailurePerRound, not both")
		}
	}
	if cfg.FailurePerRound > 0 {
		faultCfg.NodeFailurePerRound = cfg.FailurePerRound
	}
	if err := faultCfg.validate(n, fleet); err != nil {
		return nil, err
	}

	s := &Simulator{
		cfg:      cfg,
		p:        p,
		tree:     cfg.Solution.Tree.Clone(),
		deadPost: make([]bool, n),
		arrived:  make([]int64, n),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	switch cfg.Stepper {
	case StepperAuto:
		s.eventMode = cfg.LinkLossProb == 0
	case StepperEvent:
		if cfg.LinkLossProb != 0 {
			return nil, errors.New("sim: the event-driven core cannot simulate lossy links (per-report randomness); use StepperExact or StepperAuto")
		}
		s.eventMode = true
	case StepperExact:
	default:
		return nil, fmt.Errorf("sim: unknown stepper kind %q", cfg.Stepper)
	}
	s.metrics.FirstLossRound = -1
	s.metrics.FirstPartitionRound = -1
	if faultCfg.active() {
		s.faults = newFaultEngine(faultCfg)
	}

	if err := s.rebuildDerived(); err != nil {
		return nil, err
	}
	if s.cfg.BatteryCapacity <= 0 {
		maxDrainPerNode := 0.0
		for i := 0; i < n; i++ {
			d := s.drain[i] / float64(cfg.Solution.Deploy[i])
			if d > maxDrainPerNode {
				maxDrainPerNode = d
			}
		}
		s.cfg.BatteryCapacity = maxDrainPerNode * DefaultBatteryRounds
	}

	s.posts = make([]Post, n)
	for i := range s.posts {
		nodes := make([]Node, cfg.Solution.Deploy[i])
		for j := range nodes {
			nodes[j] = Node{Energy: s.cfg.BatteryCapacity * s.cfg.InitialChargeFrac, Alive: true}
		}
		s.posts[i] = Post{Nodes: nodes}
	}

	if cfg.Repair != nil {
		planCost, err := model.Evaluate(p, cfg.Solution.Deploy, cfg.Solution.Tree)
		if err != nil {
			return nil, err
		}
		s.planCost = planCost
	}

	if fleet > 0 {
		s.claimed = make([]bool, n)
		for i := 0; i < fleet; i++ {
			ch, err := newChargerState(cfg.Charger, p)
			if err != nil {
				return nil, err
			}
			s.chargers = append(s.chargers, ch)
		}
	}
	if s.eventMode {
		if s.faults != nil {
			// The event core replaces per-round Bernoulli draws with
			// sampled next-event times (geometric/exponential inversion).
			s.faults.initSampled(s)
		}
		s.span.init(n)
	}
	return s, nil
}

// rebuildDerived recomputes every tree-derived quantity from the current
// routing tree and death mask: the leaves-first topological order, the
// per-post transmit/receive energies at the tree's power levels, and the
// expected per-round drain (live subtree sizes — dead posts originate
// and forward nothing). Called at construction and after each repair.
func (s *Simulator) rebuildDerived() error {
	n := s.p.N()
	bits := float64(s.cfg.PacketBits)

	// Leaves-first topological order over the current tree.
	childCount := make([]int, n)
	for i := 0; i < n; i++ {
		if par := s.tree.Parent[i]; par < n {
			childCount[par]++
		}
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if childCount[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		if par := s.tree.Parent[v]; par < n {
			if childCount[par]--; childCount[par] == 0 {
				queue = append(queue, par)
			}
		}
	}
	if len(order) != n {
		return model.ErrCycle
	}
	s.order = order

	// Live subtree sizes: dead posts inject no reports and never forward.
	liveSize := make([]int, n)
	for _, i := range order {
		if !s.deadPost[i] {
			liveSize[i]++
		}
		if par := s.tree.Parent[i]; par < n && !s.deadPost[i] {
			liveSize[par] += liveSize[i]
		}
	}

	perTx := make([]float64, n)
	perRx := make([]float64, n)
	drain := make([]float64, n)
	for i := 0; i < n; i++ {
		perTx[i] = s.p.Energy.TxEnergyAtLevel(s.tree.Level[i]) * bits
		perRx[i] = s.p.Energy.RxEnergy() * bits
		// RoundOverhead is expressed per reported bit (the model's unit
		// round), so a PacketBits-sized report scales it like the
		// communication terms.
		own := 0
		if !s.deadPost[i] {
			own = 1
		}
		drain[i] = float64(liveSize[i])*perTx[i] + float64(liveSize[i]-own)*perRx[i] + s.p.Overhead(i)*bits
	}
	s.perTx, s.perRx, s.drain = perTx, perRx, drain
	return nil
}

// Tree returns a copy of the routing tree currently in effect (the
// original plan until a repair swaps it).
func (s *Simulator) Tree() model.Tree { return s.tree.Clone() }

// Run advances the simulation by `rounds` rounds and returns cumulative
// metrics. It may be called repeatedly to continue the same run.
func (s *Simulator) Run(rounds int) (*Metrics, error) {
	return s.RunCtx(context.Background(), rounds)
}

// RunCtx is Run with cancellation: the context is checked every 64
// rounds (per-round core) or at every event-horizon boundary (event
// core), so a cancelled simulation returns ctx.Err() promptly while
// keeping the check invisible in per-round cost. The simulator state
// stays consistent (whole rounds only), so the run can be resumed.
func (s *Simulator) RunCtx(ctx context.Context, rounds int) (*Metrics, error) {
	if rounds < 0 {
		return nil, fmt.Errorf("sim: negative round count %d", rounds)
	}
	if s.eventMode {
		if err := s.runEvent(ctx, rounds); err != nil {
			return nil, err
		}
	} else {
		for r := 0; r < rounds; r++ {
			if r%64 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			s.step()
		}
	}
	s.metrics.postCount = s.p.N()
	out := s.metrics
	return &out, nil
}

// Metrics returns a snapshot of the cumulative metrics so far.
func (s *Simulator) Metrics() Metrics {
	m := s.metrics
	m.postCount = s.p.N()
	return m
}

// Posts exposes a read-only view of post states for tests and examples.
func (s *Simulator) Posts() []Post { return s.posts }

// RoundAvailability returns the fraction of posts whose report reached
// the base station in the most recent round — the per-round availability
// series (1.0 while the network is healthy, dropping as posts die or
// starve, recovering after repairs).
func (s *Simulator) RoundAvailability() float64 {
	if s.metrics.Rounds == 0 {
		return 0
	}
	return float64(s.lastRoundDelivered) / float64(s.p.N())
}

// step executes one reporting round followed by fault injection, repair
// bookkeeping and one charger round.
func (s *Simulator) step() {
	s.metrics.Rounds++
	round := s.metrics.Rounds
	n := s.p.N()

	// A due repair takes effect before this round's reports move.
	if s.repairPending && round > s.repairApplyAfter {
		s.applyRepair(round)
	}

	deliveredBefore := s.metrics.ReportsDelivered

	// arrived[i]: number of reports post i must forward this round that
	// actually arrived (its own + surviving children traffic).
	arrived := s.arrived
	for i := range arrived {
		arrived[i] = 0
	}
	// Network energy accumulates into a per-round sum added once at the
	// end of the pass. Keeping the accumulation order identical between
	// rounds lets the event core replay a homogeneous span bit-exactly
	// (the sum is the same float every round, so `+= roundNE` repeated is
	// the stepper's own arithmetic).
	roundNE := 0.0
	for _, i := range s.order {
		carry := arrived[i] + 1 // children's surviving reports + own
		// Lossy links: every report needs a geometric number of
		// transmission attempts (capped); exhausted retries lose it.
		attempts, forwarded := carry, carry
		if s.cfg.LinkLossProb > 0 {
			attempts, forwarded = 0, 0
			for r := int64(0); r < carry; r++ {
				a, ok := s.transmissionAttempts()
				attempts += a
				if ok {
					forwarded++
				}
			}
		}
		// Receive cost for forwarded reports, transmit cost for every
		// attempt, plus the sensing/computation overhead.
		rxCost := float64(arrived[i]) * s.perRx[i]
		txCost := float64(attempts) * s.perTx[i]
		need := rxCost + txCost + s.p.Overhead(i)*float64(s.cfg.PacketBits)
		idx := s.posts[i].usableMaxEnergy(round)
		if idx < 0 || s.posts[i].Nodes[idx].Energy < need {
			// Post cannot operate: all reports through it are lost.
			s.metrics.StarvedPostRounds++
			s.metrics.ReportsLost += carry
			if s.metrics.FirstLossRound < 0 {
				s.metrics.FirstLossRound = round
			}
			continue
		}
		node := &s.posts[i].Nodes[idx]
		node.Energy -= need
		roundNE += need
		if dropped := carry - forwarded; dropped > 0 {
			s.metrics.ReportsLost += dropped
			if s.metrics.FirstLossRound < 0 {
				s.metrics.FirstLossRound = round
			}
		}
		if par := s.tree.Parent[i]; par < n {
			arrived[par] += forwarded
		} else {
			s.metrics.ReportsDelivered += forwarded
			s.metrics.BitsDelivered += forwarded * int64(s.cfg.PacketBits)
		}
	}
	s.metrics.NetworkEnergy += roundNE
	s.lastRoundDelivered = s.metrics.ReportsDelivered - deliveredBefore

	// Fault injection, death detection and repair scheduling.
	if s.faults != nil {
		deaths := s.metrics.NodeFailures
		s.faults.step(s, round)
		if s.metrics.NodeFailures != deaths {
			s.detectDeaths(round)
		}
	}

	// Charger movement/charging.
	for _, ch := range s.chargers {
		if ch.downUntil >= round {
			s.metrics.ChargerDownRounds++
			continue
		}
		ch.step(s)
	}

	if s.tracer != nil {
		s.tracer.Observe(round, s)
	}
}

// detectDeaths scans for posts whose last node just died, updates the
// partition metrics and schedules a repair when the policy is enabled.
func (s *Simulator) detectDeaths(round int) {
	newDeath := false
	for i := range s.posts {
		if !s.deadPost[i] && s.posts[i].AliveCount() == 0 {
			s.deadPost[i] = true
			s.metrics.PostsDead++
			newDeath = true
		}
	}
	if !newDeath {
		return
	}
	// Physical partition check: can every surviving post still reach the
	// BS through survivors at maximum range?
	alive := make([]bool, len(s.posts))
	for i := range alive {
		alive[i] = !s.deadPost[i]
	}
	reach := s.p.SurvivorsReachable(alive)
	stranded := 0
	for i := range alive {
		if alive[i] && !reach[i] {
			stranded++
		}
	}
	s.metrics.StrandedPosts = stranded
	if stranded > 0 && s.metrics.FirstPartitionRound < 0 {
		s.metrics.FirstPartitionRound = round
	}
	if s.cfg.Repair != nil && !s.repairPending {
		s.repairPending = true
		s.repairRequested = round
		s.repairApplyAfter = round + s.cfg.Repair.LatencyRounds
	}
}

// applyRepair rebuilds the routing tree over the surviving posts and
// swaps it in, updating the repair metrics. Deaths that occurred while
// the repair was pending are healed by the same rebuild. The healer is
// constructed once on the first repair and reused for the run, so
// repeated repairs pay no graph-construction cost.
func (s *Simulator) applyRepair(round int) {
	s.repairPending = false
	if s.healer == nil && s.healerErr == nil {
		s.healer, s.healerErr = heal.NewHealer(s.p, heal.Options{
			DisableSiblingMerge: s.cfg.Repair.DisableSiblingMerge,
		})
	}
	if s.healerErr != nil {
		// Defensive: an unrepairable topology keeps the old tree; the
		// network degrades as if no repair were configured.
		return
	}
	if cap(s.aliveBuf) < len(s.posts) {
		s.aliveBuf = make([]int, len(s.posts))
	}
	aliveCounts := s.aliveBuf[:len(s.posts)]
	for i := range s.posts {
		aliveCounts[i] = s.posts[i].AliveCount()
	}
	stranded, err := s.healer.Repair(s.tree, aliveCounts, &s.repairDst)
	if err != nil {
		return
	}
	s.tree, s.repairDst = s.repairDst, s.tree
	if err := s.rebuildDerived(); err != nil {
		return
	}
	s.metrics.Repairs++
	s.metrics.RepairLatencySum += int64(round - 1 - s.repairRequested)
	s.metrics.StrandedPosts = len(stranded)
	if cost, err := model.EvaluateDegraded(s.p, aliveCounts, s.tree); err == nil {
		s.metrics.DegradedCost = cost
		if s.planCost > 0 {
			s.metrics.RepairCostInflation = cost/s.planCost - 1
		}
	}
}

// killNode permanently kills one node (fault-engine entry point).
func (s *Simulator) killNode(post, node int) {
	if !s.posts[post].Nodes[node].Alive {
		return
	}
	s.posts[post].Nodes[node].Alive = false
	s.metrics.NodeFailures++
}

// transmissionAttempts draws the attempt count for one report on one
// lossy hop: geometric with success probability 1-LinkLossProb, capped at
// MaxRetries. ok reports whether the hop ultimately succeeded.
func (s *Simulator) transmissionAttempts() (attempts int64, ok bool) {
	for a := int64(1); a <= int64(s.cfg.MaxRetries); a++ {
		if s.rng.Float64() >= s.cfg.LinkLossProb {
			return a, true
		}
	}
	return int64(s.cfg.MaxRetries), false
}

// AnalyticCostPerBitRound returns the model-predicted charger energy per
// bit per reporting round for this configuration (model.Evaluate).
func (s *Simulator) AnalyticCostPerBitRound() (float64, error) {
	return model.Evaluate(s.p, s.cfg.Solution.Deploy, s.cfg.Solution.Tree)
}

// EnergyAudit is the simulator's conservation ledger (all values nJ).
type EnergyAudit struct {
	InitialStored float64 // battery charge at t=0
	Received      float64 // energy stored into batteries by charging
	Consumed      float64 // energy drained by network operation
	Residual      float64 // battery charge now (alive and dead nodes)
}

// Imbalance returns Initial + Received - Consumed - Residual, which must
// be ~0: batteries neither create nor destroy energy. (Charger-side
// dissemination exceeding Received is propagation loss plus clipping,
// accounted separately in Metrics.ChargerEnergy/ChargerWasted.)
func (a EnergyAudit) Imbalance() float64 {
	return a.InitialStored + a.Received - a.Consumed - a.Residual
}

// AuditEnergy computes the conservation ledger for the run so far.
func (s *Simulator) AuditEnergy() EnergyAudit {
	var residual float64
	for i := range s.posts {
		for j := range s.posts[i].Nodes {
			residual += s.posts[i].Nodes[j].Energy
		}
	}
	return EnergyAudit{
		InitialStored: s.cfg.BatteryCapacity * s.cfg.InitialChargeFrac * float64(s.p.Nodes),
		Received:      s.metrics.energyStored,
		Consumed:      s.metrics.NetworkEnergy,
		Residual:      residual,
	}
}
