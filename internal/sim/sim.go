// Package sim is a round-based simulator for a deployed wireless-
// rechargeable sensor network executing a deployment/routing solution,
// together with a mobile wireless charger that travels between posts and
// recharges them.
//
// It closes the loop on the paper's model: the analytic objective
// (model.Evaluate) promises a long-run charger energy per reporting round;
// the simulator actually runs the network — per-node batteries, in-post
// duty rotation, hop-by-hop forwarding, charger travel and charging with
// the multi-node efficiency gain — and measures the charger's empirical
// energy per delivered round, which converges to the analytic value under
// an adequate charging schedule (property-tested). It also supports
// failure injection and charger-less runs for lifetime studies.
//
// Time advances in reporting rounds: every round each post originates one
// report of PacketBits bits that is forwarded hop-by-hop to the base
// station.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"wrsn/internal/geom"
	"wrsn/internal/model"
)

// Config parameterises a simulation run. Zero-value fields are filled
// with defaults by New where noted.
type Config struct {
	// Problem and Solution define the network: post locations, energy
	// and charging models, node counts and the routing tree.
	Problem  *model.Problem
	Solution model.Solution

	// PacketBits is the size of one report in bits (default 1000).
	PacketBits int
	// BatteryCapacity is each node's battery in nJ (default: enough for
	// roughly 2000 rounds of the busiest post's work, so charging
	// schedules have slack).
	BatteryCapacity float64
	// InitialChargeFrac is the starting battery fraction (default 1.0).
	InitialChargeFrac float64

	// Charger configures the mobile charger(s); nil disables charging
	// entirely (lifetime studies).
	Charger *ChargerConfig
	// Chargers is the fleet size: how many identical chargers (per
	// Charger) patrol the field. 0 and 1 both mean a single charger.
	// Chargers coordinate by claiming targets, so no two service the
	// same post simultaneously.
	Chargers int

	// FailurePerRound is a per-round probability that one random alive
	// node fails permanently (failure injection; default 0).
	FailurePerRound float64
	// LinkLossProb is the probability that one transmission attempt of a
	// report fails and must be retransmitted (default 0: the paper's
	// lossless links). Lossy links inflate transmit energy by roughly
	// 1/(1-p) — an extension quantifying how MAC-layer loss erodes the
	// analytic recharging cost.
	LinkLossProb float64
	// MaxRetries caps retransmission attempts per report per hop
	// (default 8); a report dropping all attempts is lost.
	MaxRetries int
	// Seed drives all randomness (failures). Runs are deterministic for
	// a fixed seed.
	Seed int64
}

// ChargerPolicy selects how the charger picks its next post. The paper
// leaves charger scheduling out of scope ("how to schedule the wireless
// charger ... is not the focus of this paper"); these policies let the
// simulator study that open question.
type ChargerPolicy string

const (
	// PolicyUrgency (default) targets the post with the smallest
	// projected time-to-empty among posts below the target fraction.
	PolicyUrgency ChargerPolicy = "urgency"
	// PolicyRoundRobin cycles through posts in index order, charging
	// any post below the target fraction — simpler, but it lets busy
	// posts starve when batteries are tight.
	PolicyRoundRobin ChargerPolicy = "round-robin"
	// PolicyTour plans a short travelling-salesman tour (nearest
	// neighbour + 2-opt, package tour) over every post currently below
	// the target fraction and follows it, replanning when the tour is
	// exhausted. Minimises travel at the price of scheduling freshness.
	PolicyTour ChargerPolicy = "tour"
)

// ChargerConfig describes the mobile wireless charger.
type ChargerConfig struct {
	// PowerPerRound is the charger's dissemination budget per round
	// while parked at a post, in nJ.
	PowerPerRound float64
	// SpeedPerRound is travel distance per round in meters.
	SpeedPerRound float64
	// FillToFrac stops charging a post once all of its nodes are at
	// this battery fraction (default 0.95).
	FillToFrac float64
	// TargetFrac marks a post as needing charge when its lowest node
	// falls below this fraction (default 0.5).
	TargetFrac float64
	// StartAt is the charger's initial location (default: the BS).
	StartAt *geom.Point
	// Policy selects the target-picking strategy (default PolicyUrgency).
	Policy ChargerPolicy
}

// Node is one sensor node's runtime state.
type Node struct {
	Energy float64
	Alive  bool
}

// Post is the runtime state of one post: its nodes and rotation cursor.
type Post struct {
	Nodes []Node
}

// aliveMaxEnergy returns the index of the alive node with the most
// energy, or -1 when none is alive. Rotation selects this node as the
// round's active worker, which keeps residual energies nearly equal
// across a post (the paper's stated rotation goal).
func (p *Post) aliveMaxEnergy() int {
	best, bestE := -1, -1.0
	for i := range p.Nodes {
		if p.Nodes[i].Alive && p.Nodes[i].Energy > bestE {
			best, bestE = i, p.Nodes[i].Energy
		}
	}
	return best
}

// AliveCount returns the number of alive nodes at the post.
func (p *Post) AliveCount() int {
	c := 0
	for i := range p.Nodes {
		if p.Nodes[i].Alive {
			c++
		}
	}
	return c
}

// MinEnergyFrac returns the lowest battery fraction among alive nodes
// (1.0 when none is alive, so dead posts never attract the charger).
func (p *Post) minEnergyFrac(capacity float64) float64 {
	min := 1.0
	for i := range p.Nodes {
		if p.Nodes[i].Alive {
			if f := p.Nodes[i].Energy / capacity; f < min {
				min = f
			}
		}
	}
	return min
}

// Metrics accumulates simulation outcomes.
type Metrics struct {
	Rounds            int
	ReportsDelivered  int64   // reports that reached the base station
	ReportsLost       int64   // reports dropped at dead/exhausted posts
	BitsDelivered     int64   // PacketBits * ReportsDelivered
	NetworkEnergy     float64 // nJ consumed by sensor nodes
	ChargerEnergy     float64 // nJ disseminated by the charger
	ChargerWasted     float64 // nJ disseminated but not stored (full batteries)
	ChargerDistance   float64 // meters travelled
	ChargerVisits     int64   // charging sessions completed
	NodeFailures      int64   // injected permanent failures
	FirstLossRound    int     // first round with a lost report; -1 if none
	StarvedPostRounds int64   // post-rounds spent with no usable node

	// postCount (reports per full round) is stamped by the simulator so
	// EmpiricalCostPerRound can normalise without a Problem reference.
	postCount int
	// energyStored tracks nJ actually banked into batteries by charging
	// (dissemination x efficiency minus clipping); feeds AuditEnergy.
	energyStored float64
}

// EmpiricalCostPerBitRound returns the charger energy disseminated per
// fully-delivered reporting round, normalised per bit — the measured
// counterpart of model.Evaluate. packetBits must match the run's
// Config.PacketBits.
func (m *Metrics) EmpiricalCostPerBitRound(packetBits int) float64 {
	if m.ReportsDelivered == 0 || m.postCount == 0 {
		return math.Inf(1)
	}
	roundsDelivered := float64(m.ReportsDelivered) / float64(m.postCount)
	return m.ChargerEnergy / roundsDelivered / float64(packetBits)
}

// DeliveryRatio returns delivered / (delivered + lost) reports.
func (m *Metrics) DeliveryRatio() float64 {
	total := m.ReportsDelivered + m.ReportsLost
	if total == 0 {
		return 0
	}
	return float64(m.ReportsDelivered) / float64(total)
}

// Simulator executes a configured run.
type Simulator struct {
	cfg      Config
	p        *model.Problem
	posts    []Post
	order    []int // posts in leaves-first topological order
	perTx    []float64
	perRx    []float64
	drain    []float64 // expected nJ/round consumed at each post
	rng      *rand.Rand
	chargers []*chargerState
	claimed  []bool // posts currently targeted by some charger
	metrics  Metrics
	tracer   Tracer
}

// SetTracer installs a per-round observer (nil disables tracing).
func (s *Simulator) SetTracer(t Tracer) { s.tracer = t }

// DefaultBatteryRounds sizes the default battery: capacity equals this
// many rounds of the busiest post's per-node drain.
const DefaultBatteryRounds = 2000

// New validates cfg, applies defaults and returns a ready Simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Problem == nil {
		return nil, errors.New("sim: nil problem")
	}
	p := cfg.Problem
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Solution.Deploy.Validate(p); err != nil {
		return nil, fmt.Errorf("sim: invalid deployment: %w", err)
	}
	if err := cfg.Solution.Tree.Validate(p); err != nil {
		return nil, fmt.Errorf("sim: invalid tree: %w", err)
	}
	if cfg.PacketBits <= 0 {
		cfg.PacketBits = 1000
	}
	if cfg.InitialChargeFrac <= 0 || cfg.InitialChargeFrac > 1 {
		cfg.InitialChargeFrac = 1
	}
	if cfg.FailurePerRound < 0 || cfg.FailurePerRound > 1 {
		return nil, fmt.Errorf("sim: failure rate %g outside [0, 1]", cfg.FailurePerRound)
	}
	if cfg.LinkLossProb < 0 || cfg.LinkLossProb >= 1 {
		return nil, fmt.Errorf("sim: link loss probability %g outside [0, 1)", cfg.LinkLossProb)
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	if !p.UniformRates() {
		return nil, errors.New("sim: heterogeneous report rates are not supported by the round-based simulator; use the analytic evaluator")
	}

	n := p.N()
	tree := cfg.Solution.Tree
	sizes := tree.SubtreeSizes(p)
	perTx := make([]float64, n)
	perRx := make([]float64, n)
	drain := make([]float64, n)
	bits := float64(cfg.PacketBits)
	for i := 0; i < n; i++ {
		perTx[i] = p.Energy.TxEnergyAtLevel(tree.Level[i]) * bits
		perRx[i] = p.Energy.RxEnergy() * bits
		// RoundOverhead is expressed per reported bit (the model's unit
		// round), so a PacketBits-sized report scales it like the
		// communication terms.
		drain[i] = float64(sizes[i])*perTx[i] + float64(sizes[i]-1)*perRx[i] + p.Overhead(i)*bits
	}
	if cfg.BatteryCapacity <= 0 {
		maxDrainPerNode := 0.0
		for i := 0; i < n; i++ {
			d := drain[i] / float64(cfg.Solution.Deploy[i])
			if d > maxDrainPerNode {
				maxDrainPerNode = d
			}
		}
		cfg.BatteryCapacity = maxDrainPerNode * DefaultBatteryRounds
	}

	s := &Simulator{
		cfg:   cfg,
		p:     p,
		perTx: perTx,
		perRx: perRx,
		drain: drain,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	s.metrics.FirstLossRound = -1

	s.posts = make([]Post, n)
	for i := range s.posts {
		nodes := make([]Node, cfg.Solution.Deploy[i])
		for j := range nodes {
			nodes[j] = Node{Energy: cfg.BatteryCapacity * cfg.InitialChargeFrac, Alive: true}
		}
		s.posts[i] = Post{Nodes: nodes}
	}

	// Leaves-first topological order over the tree.
	childCount := make([]int, n)
	for i := 0; i < n; i++ {
		if par := tree.Parent[i]; par < n {
			childCount[par]++
		}
	}
	s.order = make([]int, 0, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if childCount[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		s.order = append(s.order, v)
		if par := tree.Parent[v]; par < n {
			if childCount[par]--; childCount[par] == 0 {
				queue = append(queue, par)
			}
		}
	}
	if len(s.order) != n {
		return nil, model.ErrCycle
	}

	if cfg.Charger != nil {
		fleet := cfg.Chargers
		if fleet < 1 {
			fleet = 1
		}
		s.claimed = make([]bool, n)
		for i := 0; i < fleet; i++ {
			ch, err := newChargerState(cfg.Charger, p)
			if err != nil {
				return nil, err
			}
			s.chargers = append(s.chargers, ch)
		}
	} else if cfg.Chargers > 0 {
		return nil, errors.New("sim: Chargers set but Charger config is nil")
	}
	return s, nil
}

// Run advances the simulation by `rounds` rounds and returns cumulative
// metrics. It may be called repeatedly to continue the same run.
func (s *Simulator) Run(rounds int) (*Metrics, error) {
	if rounds < 0 {
		return nil, fmt.Errorf("sim: negative round count %d", rounds)
	}
	for r := 0; r < rounds; r++ {
		s.step()
	}
	s.metrics.postCount = s.p.N()
	out := s.metrics
	return &out, nil
}

// Metrics returns a snapshot of the cumulative metrics so far.
func (s *Simulator) Metrics() Metrics {
	m := s.metrics
	m.postCount = s.p.N()
	return m
}

// Posts exposes a read-only view of post states for tests and examples.
func (s *Simulator) Posts() []Post { return s.posts }

// step executes one reporting round followed by one charger round.
func (s *Simulator) step() {
	s.metrics.Rounds++
	n := s.p.N()
	tree := s.cfg.Solution.Tree

	// delivered[i]: number of reports post i must forward this round that
	// actually arrived (its own + surviving children traffic).
	arrived := make([]int64, n)
	failedPost := make([]bool, n)
	for _, i := range s.order {
		carry := arrived[i] + 1 // children's surviving reports + own
		// Lossy links: every report needs a geometric number of
		// transmission attempts (capped); exhausted retries lose it.
		attempts, forwarded := carry, carry
		if s.cfg.LinkLossProb > 0 {
			attempts, forwarded = 0, 0
			for r := int64(0); r < carry; r++ {
				a, ok := s.transmissionAttempts()
				attempts += a
				if ok {
					forwarded++
				}
			}
		}
		// Receive cost for forwarded reports, transmit cost for every
		// attempt, plus the sensing/computation overhead.
		rxCost := float64(arrived[i]) * s.perRx[i]
		txCost := float64(attempts) * s.perTx[i]
		need := rxCost + txCost + s.p.Overhead(i)*float64(s.cfg.PacketBits)
		idx := s.posts[i].aliveMaxEnergy()
		if idx < 0 || s.posts[i].Nodes[idx].Energy < need {
			// Post cannot operate: all reports through it are lost.
			failedPost[i] = true
			s.metrics.StarvedPostRounds++
			s.metrics.ReportsLost += carry
			if s.metrics.FirstLossRound < 0 {
				s.metrics.FirstLossRound = s.metrics.Rounds
			}
			continue
		}
		node := &s.posts[i].Nodes[idx]
		node.Energy -= need
		s.metrics.NetworkEnergy += need
		if dropped := carry - forwarded; dropped > 0 {
			s.metrics.ReportsLost += dropped
			if s.metrics.FirstLossRound < 0 {
				s.metrics.FirstLossRound = s.metrics.Rounds
			}
		}
		if par := tree.Parent[i]; par < n {
			arrived[par] += forwarded
		} else {
			s.metrics.ReportsDelivered += forwarded
			s.metrics.BitsDelivered += forwarded * int64(s.cfg.PacketBits)
		}
	}

	// Failure injection: at most one permanent node failure per round.
	if s.cfg.FailurePerRound > 0 && s.rng.Float64() < s.cfg.FailurePerRound {
		s.injectFailure()
	}

	// Charger movement/charging.
	for _, ch := range s.chargers {
		ch.step(s)
	}

	if s.tracer != nil {
		s.tracer.Observe(s.metrics.Rounds, s)
	}
}

// transmissionAttempts draws the attempt count for one report on one
// lossy hop: geometric with success probability 1-LinkLossProb, capped at
// MaxRetries. ok reports whether the hop ultimately succeeded.
func (s *Simulator) transmissionAttempts() (attempts int64, ok bool) {
	for a := int64(1); a <= int64(s.cfg.MaxRetries); a++ {
		if s.rng.Float64() >= s.cfg.LinkLossProb {
			return a, true
		}
	}
	return int64(s.cfg.MaxRetries), false
}

// injectFailure kills one uniformly random alive node, if any.
func (s *Simulator) injectFailure() {
	total := 0
	for i := range s.posts {
		total += s.posts[i].AliveCount()
	}
	if total == 0 {
		return
	}
	pick := s.rng.Intn(total)
	for i := range s.posts {
		for j := range s.posts[i].Nodes {
			if !s.posts[i].Nodes[j].Alive {
				continue
			}
			if pick == 0 {
				s.posts[i].Nodes[j].Alive = false
				s.metrics.NodeFailures++
				return
			}
			pick--
		}
	}
}

// AnalyticCostPerBitRound returns the model-predicted charger energy per
// bit per reporting round for this configuration (model.Evaluate).
func (s *Simulator) AnalyticCostPerBitRound() (float64, error) {
	return model.Evaluate(s.p, s.cfg.Solution.Deploy, s.cfg.Solution.Tree)
}

// EnergyAudit is the simulator's conservation ledger (all values nJ).
type EnergyAudit struct {
	InitialStored float64 // battery charge at t=0
	Received      float64 // energy stored into batteries by charging
	Consumed      float64 // energy drained by network operation
	Residual      float64 // battery charge now (alive and dead nodes)
}

// Imbalance returns Initial + Received - Consumed - Residual, which must
// be ~0: batteries neither create nor destroy energy. (Charger-side
// dissemination exceeding Received is propagation loss plus clipping,
// accounted separately in Metrics.ChargerEnergy/ChargerWasted.)
func (a EnergyAudit) Imbalance() float64 {
	return a.InitialStored + a.Received - a.Consumed - a.Residual
}

// AuditEnergy computes the conservation ledger for the run so far.
func (s *Simulator) AuditEnergy() EnergyAudit {
	var residual float64
	for i := range s.posts {
		for j := range s.posts[i].Nodes {
			residual += s.posts[i].Nodes[j].Energy
		}
	}
	return EnergyAudit{
		InitialStored: s.cfg.BatteryCapacity * s.cfg.InitialChargeFrac * float64(s.p.Nodes),
		Received:      s.metrics.energyStored,
		Consumed:      s.metrics.NetworkEnergy,
		Residual:      residual,
	}
}
