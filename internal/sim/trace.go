package sim

import (
	"bufio"
	"fmt"
	"io"
)

// Tracer receives per-round simulation snapshots. Implementations must be
// cheap: the simulator calls Observe once per round.
type Tracer interface {
	// Observe is called after each completed round with a read-only view
	// of the simulator.
	Observe(round int, s *Simulator)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(round int, s *Simulator)

// Observe implements Tracer.
func (f TracerFunc) Observe(round int, s *Simulator) { f(round, s) }

// CSVTracer streams one CSV row per sample round: cumulative metrics plus
// the minimum battery fraction across the network — the curve that shows
// whether the charging schedule keeps up
// and, under fault injection, the per-round availability and repair
// counters that show how the network degrades and recovers. Rows are
// buffered; call Flush (or use defer) before reading the output.
type CSVTracer struct {
	w      *bufio.Writer
	every  int
	wroteH bool
	err    error
}

// csvHeader is the tracer's column set.
const csvHeader = "round,delivered,lost,network_energy_nj,charger_energy_nj,charger_distance_m,min_battery_frac,alive_nodes,availability,repairs\n"

// NewCSVTracer samples every `every` rounds (minimum 1) and writes CSV to w.
func NewCSVTracer(w io.Writer, every int) *CSVTracer {
	if every < 1 {
		every = 1
	}
	return &CSVTracer{w: bufio.NewWriter(w), every: every}
}

// Observe implements Tracer.
func (c *CSVTracer) Observe(round int, s *Simulator) {
	if c.err != nil || round%c.every != 0 {
		return
	}
	if !c.wroteH {
		c.wroteH = true
		if _, err := c.w.WriteString(csvHeader); err != nil {
			c.err = err
			return
		}
	}
	m := s.Metrics()
	minFrac := 1.0
	alive := 0
	for i := range s.posts {
		alive += s.posts[i].AliveCount()
		if f := s.posts[i].minEnergyFrac(s.cfg.BatteryCapacity, round); f < minFrac {
			minFrac = f
		}
	}
	_, c.err = fmt.Fprintf(c.w, "%d,%d,%d,%.1f,%.1f,%.1f,%.4f,%d,%.4f,%d\n",
		round, m.ReportsDelivered, m.ReportsLost, m.NetworkEnergy, m.ChargerEnergy, m.ChargerDistance,
		minFrac, alive, s.RoundAvailability(), m.Repairs)
}

// Flush drains buffered rows and reports any write error encountered.
func (c *CSVTracer) Flush() error {
	if err := c.w.Flush(); err != nil {
		return err
	}
	return c.err
}

// AvailabilityTracer records the per-round availability series — the
// fraction of posts whose report reached the base station each sampled
// round. It is the degradation curve of a failure study: 1.0 while
// healthy, stepping down as posts die or starve, and stepping back up
// after repairs.
type AvailabilityTracer struct {
	// Every is the sampling interval in rounds (values < 1 sample every
	// round).
	Every int
	// Rounds and Series hold the sampled rounds and availabilities.
	Rounds []int
	Series []float64
}

// Observe implements Tracer.
func (a *AvailabilityTracer) Observe(round int, s *Simulator) {
	every := a.Every
	if every < 1 {
		every = 1
	}
	if round%every != 0 {
		return
	}
	a.Rounds = append(a.Rounds, round)
	a.Series = append(a.Series, s.RoundAvailability())
}

// Min returns the lowest sampled availability (1 when nothing sampled).
func (a *AvailabilityTracer) Min() float64 {
	min := 1.0
	for _, v := range a.Series {
		if v < min {
			min = v
		}
	}
	return min
}
