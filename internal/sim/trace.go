package sim

import (
	"bufio"
	"fmt"
	"io"
)

// Tracer receives per-round simulation snapshots. Implementations must be
// cheap: the simulator calls Observe once per round.
type Tracer interface {
	// Observe is called after each completed round with a read-only view
	// of the simulator.
	Observe(round int, s *Simulator)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(round int, s *Simulator)

// Observe implements Tracer.
func (f TracerFunc) Observe(round int, s *Simulator) { f(round, s) }

// CSVTracer streams one CSV row per sample round: cumulative metrics plus
// the minimum battery fraction across the network — the curve that shows
// whether the charging schedule keeps up. Rows are buffered; call Flush
// (or use defer) before reading the output.
type CSVTracer struct {
	w      *bufio.Writer
	every  int
	wroteH bool
	err    error
}

// NewCSVTracer samples every `every` rounds (minimum 1) and writes CSV to w.
func NewCSVTracer(w io.Writer, every int) *CSVTracer {
	if every < 1 {
		every = 1
	}
	return &CSVTracer{w: bufio.NewWriter(w), every: every}
}

// Observe implements Tracer.
func (c *CSVTracer) Observe(round int, s *Simulator) {
	if c.err != nil || round%c.every != 0 {
		return
	}
	if !c.wroteH {
		c.wroteH = true
		if _, err := c.w.WriteString("round,delivered,lost,network_energy_nj,charger_energy_nj,charger_distance_m,min_battery_frac,alive_nodes\n"); err != nil {
			c.err = err
			return
		}
	}
	m := s.Metrics()
	minFrac := 1.0
	alive := 0
	for i := range s.posts {
		alive += s.posts[i].AliveCount()
		if f := s.posts[i].minEnergyFrac(s.cfg.BatteryCapacity); f < minFrac {
			minFrac = f
		}
	}
	_, c.err = fmt.Fprintf(c.w, "%d,%d,%d,%.1f,%.1f,%.1f,%.4f,%d\n",
		round, m.ReportsDelivered, m.ReportsLost, m.NetworkEnergy, m.ChargerEnergy, m.ChargerDistance, minFrac, alive)
}

// Flush drains buffered rows and reports any write error encountered.
func (c *CSVTracer) Flush() error {
	if err := c.w.Flush(); err != nil {
		return err
	}
	return c.err
}
