package sim

import (
	"context"
	"math"

	"wrsn/internal/geom"
)

// StepperKind selects the simulation core.
type StepperKind string

const (
	// StepperAuto (the zero value) picks the event-driven core whenever
	// the configuration is eligible and falls back to the per-round
	// stepper otherwise. Eligibility is LinkLossProb == 0: lossy links
	// draw randomness per report per round, which cannot be fast-forwarded.
	StepperAuto StepperKind = ""
	// StepperEvent demands the event-driven core; New rejects ineligible
	// configurations instead of silently degrading.
	StepperEvent StepperKind = "event"
	// StepperExact forces the per-round reference stepper — the
	// differential oracle the event core is tested against.
	StepperExact StepperKind = "exact"
)

// The event-driven core advances the simulation span by span instead of
// round by round. A span is a maximal run of homogeneous rounds: no
// fault fires, no repair lands, no transient recovers, no post starves
// and no charger changes behaviour (finishes travelling, charges, or
// picks a target). Within a span every round moves the same reports,
// burns the same per-post energies and leaves every decision — rotation
// argmax, flow, charger branch — on the same code path, so the core
// replays only the mutations that matter (per-round counters, one
// battery payment per operational post, charger travel arithmetic) and
// skips the per-round decision logic entirely: flow recomputation,
// fault draws and the chargers' O(posts × nodes) target scans.
//
// Bit-identity with the per-round stepper is by construction, not by
// tolerance: the replayed mutations are the stepper's own float
// operations in the stepper's own order (see step()'s round-sum network
// energy), integer counters advance by per-round constants, and every
// round whose behaviour could differ — an event round — is executed by
// the very same step() the exact core uses. Stochastic hazards are the
// one intentional divergence: the event core converts per-round
// Bernoulli draws into sampled next-event times (geometric inversion,
// fault.go), which preserves the distribution and per-seed determinism
// but not the exact-core realisation. Configurations without stochastic
// knobs (fault-free or scheduled faults only) never touch the RNG in
// either core and match bit-for-bit.
//
// Span lengths come from conservative horizons. Battery-driven bounds
// exploit that a post's maximum (and minimum) usable energy drops by at
// most `need` per round, so floor(margin/need) rounds are provably safe;
// the bound under-estimates the true horizon by up to the rotation
// factor m, which costs O(m log) extra span recomputations per
// depletion, not correctness. Two rounds of slack absorb float drift
// (ulp-scale per round, many orders below `need`). Charger travel uses
// dist/speed with the same slack and additionally detects the arrival
// branch during replay, ending the span early, so the bound's tightness
// affects only performance.
//
// Tracers see every round: a reduced round leaves the simulator's
// observable state (metrics, batteries, charger positions) exactly as
// the stepper would, so Observe fires per round in both cores and trace
// output is bit-identical. Observation cost itself is not skipped — a
// tracer that scans the network every round bounds the speedup, not the
// span.

// spanState is the per-span flow snapshot: the per-round deltas every
// reduced round applies, plus the derived per-post data the horizon
// bounds need. All slices are persistent buffers.
type spanState struct {
	delivered int64   // reports delivered per round
	lost      int64   // reports lost per round
	starved   int64   // starved post-rounds per round
	ne        float64 // network energy per round, in the stepper's summation order

	need   []float64 // per-post cost of one operational round
	op     []bool    // post pays and forwards this span
	opList []int     // operational posts in topological order
	usable [][]int   // per-post usable node indices, ascending
	minE   []float64 // min usable energy at span start (+Inf when none usable)
	maxE   []float64 // max usable energy at span start (-1 when none usable)
	sumE   []float64 // total usable energy at span start
}

func (sp *spanState) init(n int) {
	sp.need = make([]float64, n)
	sp.op = make([]bool, n)
	sp.opList = make([]int, 0, n)
	sp.usable = make([][]int, n)
	sp.minE = make([]float64, n)
	sp.maxE = make([]float64, n)
	sp.sumE = make([]float64, n)
}

// runEvent is the event core's driver: compute the span ahead, fast-
// forward its reduced rounds, then let step() execute the event round
// exactly. Every iteration consumes at least one round.
func (s *Simulator) runEvent(ctx context.Context, rounds int) error {
	done := 0
	for done < rounds {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.computeSpan()
		if l := s.spanLength(rounds - done); l > 0 {
			done += s.fastForward(l)
			continue
		}
		s.step()
		done++
	}
	return nil
}

// computeSpan dry-runs the next round's reporting flow without mutating
// any state: which posts operate, what each pays, and the per-round
// report deltas. The arithmetic mirrors step()'s lossless path exactly —
// same iteration order, same float expressions — so the resulting
// per-round sums are the ones the stepper itself would produce on every
// round of the span.
func (s *Simulator) computeSpan() {
	sp := &s.span
	n := s.p.N()
	round := s.metrics.Rounds + 1 // the round about to execute
	arrived := s.arrived
	for i := range arrived {
		arrived[i] = 0
	}
	for i := 0; i < n; i++ {
		u := sp.usable[i][:0]
		nodes := s.posts[i].Nodes
		minE, maxE, sumE := math.Inf(1), -1.0, 0.0
		for j := range nodes {
			if nodes[j].usableAt(round) {
				u = append(u, j)
				e := nodes[j].Energy
				sumE += e
				if e < minE {
					minE = e
				}
				if e > maxE {
					maxE = e
				}
			}
		}
		sp.usable[i], sp.minE[i], sp.maxE[i], sp.sumE[i] = u, minE, maxE, sumE
	}
	sp.delivered, sp.lost, sp.starved, sp.ne = 0, 0, 0, 0
	sp.opList = sp.opList[:0]
	overheadBits := float64(s.cfg.PacketBits)
	for _, i := range s.order {
		carry := arrived[i] + 1
		rxCost := float64(arrived[i]) * s.perRx[i]
		txCost := float64(carry) * s.perTx[i]
		need := rxCost + txCost + s.p.Overhead(i)*overheadBits
		sp.need[i] = need
		// Operational iff the stepper's usableMaxEnergy node covers the
		// need: maxE is that node's energy (same strict-> scan).
		op := len(sp.usable[i]) > 0 && !(sp.maxE[i] < need)
		sp.op[i] = op
		if !op {
			sp.starved++
			sp.lost += carry
			continue
		}
		sp.ne += need
		sp.opList = append(sp.opList, i)
		if par := s.tree.Parent[i]; par < n {
			arrived[par] += carry
		} else {
			sp.delivered += carry
		}
	}
}

// spanLength returns how many reduced rounds are certified homogeneous,
// capped at maxL. 0 means the next round must run through step() — an
// event is due or a charger is mid-decision.
func (s *Simulator) spanLength(maxL int) int {
	r0 := s.metrics.Rounds
	l := maxL

	// A pending repair lands at repairApplyAfter+1.
	if s.repairPending {
		if h := s.repairApplyAfter - r0; h < l {
			l = h
		}
		if l <= 0 {
			return 0
		}
	}

	// Fault events: the next scheduled entry or sampled stochastic event.
	if s.faults != nil {
		if next := s.faults.nextEventRound(); next > 0 {
			if h := next - r0 - 1; h < l {
				l = h
			}
		}
		if l <= 0 {
			return 0
		}
	}

	// Transient recoveries re-enable nodes at DownUntil+1, changing the
	// usable sets, rotation and charger views.
	if s.everDown {
		seen := false
		for i := range s.posts {
			nodes := s.posts[i].Nodes
			for j := range nodes {
				if du := nodes[j].DownUntil; du > r0 {
					seen = true
					if h := du - r0; h < l {
						l = h
					}
				}
			}
		}
		if !seen {
			s.everDown = false // every outage has expired; stop scanning
		}
		if l <= 0 {
			return 0
		}
	}

	// Starvation: an operational post pays exactly `need` per round out
	// of its usable pool, and while the pool holds at least m·need the
	// rotation's max node must hold at least `need` (the max is at least
	// the mean), so floor(sum/need) - m - 2 rounds cannot starve it (the
	// slack absorbs float drift).
	sp := &s.span
	for _, i := range sp.opList {
		need := sp.need[i]
		if need <= 0 {
			continue
		}
		m := len(sp.usable[i])
		if q := sp.sumE[i] / need; q < float64(l+m)+3 {
			b := int(q) - m - 2
			if b < l {
				l = b
			}
			if l <= 0 {
				return 0
			}
		}
	}

	// Chargers: down, certified travelling or certified idle.
	for _, c := range s.chargers {
		if h := s.chargerHorizon(c, r0); h < l {
			l = h
		}
		if l <= 0 {
			return 0
		}
	}
	return l
}

// chargerHorizon returns how many reduced rounds this charger's
// behaviour is certified constant: counting down-rounds, travelling
// without arriving, or staying idle because no unclaimed post can
// become needy yet.
func (s *Simulator) chargerHorizon(c *chargerState, r0 int) int {
	if c.downUntil > r0 {
		return c.downUntil - r0
	}
	if c.cfg.StartAt == nil {
		return 0 // first step initialises the position: run it exactly
	}
	if c.target >= 0 {
		if c.doneWith(s, c.target) {
			return 0 // releases and re-picks next round
		}
		dist := geom.Dist(c.pos, s.p.Posts[c.target])
		if dist <= 1e-9 {
			return 0 // parked: every charging round is an event round
		}
		// Travelling covers exactly SpeedPerRound per round; the target
		// stays claimed and (monotonically) not done. Arrival is an
		// event; the replay additionally detects it defensively.
		b := int(dist/c.cfg.SpeedPerRound) - 2
		if b < 0 {
			b = 0
		}
		return b
	}
	return s.idleHorizon(c)
}

// idleHorizon bounds how long every unclaimed usable post stays at or
// above the charger's target fraction, so an idle charger's per-round
// pickTarget keeps returning -1. Only operational posts drain, and
// their minimum usable energy drops by at most `need` per round.
func (s *Simulator) idleHorizon(c *chargerState) int {
	sp := &s.span
	target := c.cfg.TargetFrac * s.cfg.BatteryCapacity
	best := int(^uint(0) >> 1)
	for i := range s.posts {
		if len(sp.usable[i]) == 0 || s.claimed[i] {
			continue
		}
		if sp.minE[i] < target {
			return 0 // already needy (ulp-edge defensive: run exactly)
		}
		if !sp.op[i] || sp.need[i] <= 0 {
			continue // frozen post: its batteries never move in-span
		}
		if q := (sp.minE[i] - target) / sp.need[i]; q < float64(best)+3 {
			b := int(q) - 2
			if b < 0 {
				b = 0
			}
			if b < best {
				best = b
			}
			if best == 0 {
				return 0
			}
		}
	}
	return best
}

// fastForward replays up to l reduced rounds and returns how many it
// executed (fewer only when a charger arrived early and the span had to
// end). Each reduced round applies exactly the state mutations step()
// would: per-round counters, one rotation payment per operational post,
// charger down-counting or travel, then the tracer.
func (s *Simulator) fastForward(l int) int {
	sp := &s.span
	bits := int64(s.cfg.PacketBits)
	consumed := 0
	for k := 0; k < l; k++ {
		s.metrics.Rounds++
		round := s.metrics.Rounds
		s.metrics.ReportsDelivered += sp.delivered
		s.metrics.BitsDelivered += sp.delivered * bits
		if sp.lost > 0 {
			s.metrics.ReportsLost += sp.lost
			if s.metrics.FirstLossRound < 0 {
				s.metrics.FirstLossRound = round
			}
		}
		s.metrics.StarvedPostRounds += sp.starved
		s.metrics.NetworkEnergy += sp.ne
		s.lastRoundDelivered = sp.delivered

		// Rotation: the stepper's usableMaxEnergy argmax (ascending scan,
		// strict >) restricted to the span's constant usable set.
		for _, i := range sp.opList {
			nodes := s.posts[i].Nodes
			best, bestE := -1, -1.0
			for _, j := range sp.usable[i] {
				if nodes[j].Energy > bestE {
					best, bestE = j, nodes[j].Energy
				}
			}
			nodes[best].Energy -= sp.need[i]
		}

		spanBroke := false
		for _, c := range s.chargers {
			if c.downUntil >= round {
				s.metrics.ChargerDownRounds++
				continue
			}
			if c.target < 0 {
				continue // certified idle: pickTarget would return -1
			}
			dest := s.p.Posts[c.target]
			dist := geom.Dist(c.pos, dest)
			step := c.cfg.SpeedPerRound
			if step >= dist {
				// The conservative travel bound ran out before the horizon
				// did: arrive exactly as the stepper would and end the span
				// (the next round charges, which only step() may do).
				c.pos = dest
				s.metrics.ChargerDistance += dist
				spanBroke = true
				continue
			}
			c.pos = geom.Lerp(c.pos, dest, step/dist)
			s.metrics.ChargerDistance += step
		}

		if s.tracer != nil {
			s.tracer.Observe(round, s)
		}
		consumed++
		if spanBroke {
			break
		}
	}
	return consumed
}
