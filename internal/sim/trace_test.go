package sim

import (
	"bytes"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestCSVTracer(t *testing.T) {
	p, sol := testNetwork(t, 14, 200, 10, 30)
	s, err := New(Config{
		Problem:  p,
		Solution: sol,
		Charger:  &ChargerConfig{PowerPerRound: 1e8, SpeedPerRound: 50},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := NewCSVTracer(&buf, 10)
	s.SetTracer(tracer)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0]+"\n" != csvHeader {
		t.Fatalf("header = %q, want %q", lines[0], strings.TrimRight(csvHeader, "\n"))
	}
	// 100 rounds sampled every 10 -> 10 data rows.
	if len(lines) != 11 {
		t.Fatalf("got %d lines, want 11 (header + 10 samples):\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "10,") || !strings.HasPrefix(lines[10], "100,") {
		t.Errorf("sampling off: first=%q last=%q", lines[1], lines[10])
	}
	// Every data row has as many fields as the header.
	wantFields := strings.Count(csvHeader, ",")
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != wantFields {
			t.Errorf("row %q has %d commas, want %d", line, got, wantFields)
		}
	}
	// A healthy network reports availability 1 and zero repairs.
	fields := strings.Split(lines[10], ",")
	if fields[8] != "1.0000" {
		t.Errorf("healthy availability = %q, want 1.0000", fields[8])
	}
	if fields[9] != "0" {
		t.Errorf("repairs = %q, want 0", fields[9])
	}
}

// TestCSVTracerUnderFaults drives a deterministic fault schedule and
// checks that the trace reflects the degradation: the availability column
// steps down when a post dies, alive_nodes drops by the post's strength,
// and the repairs column records the applied repair. It also pins the
// run's DeliveryRatio and FirstLossRound to the schedule.
func TestCSVTracerUnderFaults(t *testing.T) {
	p, sol := testNetwork(t, 16, 200, 12, 48)
	victim, sizes := subtreeVictim(p, sol.Tree)
	const killAt = 40
	const rounds = 100
	cfg := scheduleConfig(p, sol, 2)
	cfg.Faults = &FaultConfig{Schedule: FaultSchedule{{Round: killAt, Kind: FaultKillPost, Post: victim}}}
	cfg.Repair = &RepairConfig{LatencyRounds: 20}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := NewCSVTracer(&buf, 10)
	s.SetTracer(tracer)
	m, err := s.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	n := float64(p.N())
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	parse := func(line string) (round, alive, repairs int, avail float64) {
		f := strings.Split(line, ",")
		round, _ = strconv.Atoi(f[0])
		alive, _ = strconv.Atoi(f[7])
		avail, _ = strconv.ParseFloat(f[8], 64)
		repairs, _ = strconv.Atoi(f[9])
		return
	}
	const tol = 1e-4 // the tracer prints availability with 4 decimals
	for _, line := range lines[1:] {
		round, alive, repairs, avail := parse(line)
		switch {
		case round < killAt:
			if avail != 1 || alive != p.Nodes || repairs != 0 {
				t.Errorf("round %d: healthy network traced avail=%g alive=%d repairs=%d", round, avail, alive, repairs)
			}
		case round == killAt:
			// The kill fires after the round's reporting: the round still
			// delivers fully, but the trace already shows the dead nodes.
			if avail != 1 {
				t.Errorf("round %d: availability %g, want 1 (kill is post-reporting)", round, avail)
			}
			if want := p.Nodes - sol.Deploy[victim]; alive != want {
				t.Errorf("round %d: alive=%d, want %d after the kill", round, alive, want)
			}
		case round <= killAt+20: // outage window before the patch lands
			if want := (n - float64(sizes[victim])) / n; math.Abs(avail-want) > tol {
				t.Errorf("round %d: outage availability %g, want %g", round, avail, want)
			}
			if want := p.Nodes - sol.Deploy[victim]; alive != want {
				t.Errorf("round %d: alive=%d, want %d after the kill", round, alive, want)
			}
		default: // repaired: only the dead post is silent
			if want := (n - 1) / n; math.Abs(avail-want) > tol {
				t.Errorf("round %d: post-repair availability %g, want %g", round, avail, want)
			}
			if repairs != 1 {
				t.Errorf("round %d: repairs=%d, want 1", round, repairs)
			}
		}
	}

	// The deterministic schedule pins the aggregate metrics exactly:
	// subtree loss for the 20-round latency window, own-report loss after.
	wantLost := int64(sizes[victim])*20 + int64(rounds-killAt-20)
	if m.ReportsLost != wantLost {
		t.Errorf("ReportsLost = %d, want %d", m.ReportsLost, wantLost)
	}
	wantRatio := 1 - float64(wantLost)/float64(int64(rounds)*int64(p.N()))
	if got := m.DeliveryRatio(); math.Abs(got-wantRatio) > 1e-12 {
		t.Errorf("DeliveryRatio = %.6f, want %.6f", got, wantRatio)
	}
	if m.FirstLossRound != killAt+1 {
		t.Errorf("FirstLossRound = %d, want %d", m.FirstLossRound, killAt+1)
	}
}

// failAfter errors once more than limit bytes have been written.
type failAfter struct {
	limit   int
	written int
}

var errSink = errors.New("sink full")

func (f *failAfter) Write(b []byte) (int, error) {
	if f.written+len(b) > f.limit {
		return 0, errSink
	}
	f.written += len(b)
	return len(b), nil
}

func TestCSVTracerFlushReportsWriteError(t *testing.T) {
	p, sol := testNetwork(t, 17, 200, 8, 24)
	s, err := New(Config{Problem: p, Solution: sol, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Room for the header and little else: the tracer must surface the
	// write error through Flush instead of dropping rows silently.
	sink := &failAfter{limit: len(csvHeader) + 40}
	tracer := NewCSVTracer(sink, 1)
	s.SetTracer(tracer)
	if _, err := s.Run(5000); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); !errors.Is(err, errSink) {
		t.Errorf("Flush error = %v, want %v", err, errSink)
	}
}

func TestTracerFuncObservesEveryRound(t *testing.T) {
	p, sol := testNetwork(t, 15, 200, 8, 24)
	s, err := New(Config{Problem: p, Solution: sol, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var rounds []int
	s.SetTracer(TracerFunc(func(round int, _ *Simulator) {
		rounds = append(rounds, round)
	}))
	if _, err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 5 || rounds[0] != 1 || rounds[4] != 5 {
		t.Errorf("observed rounds %v, want [1 2 3 4 5]", rounds)
	}
	s.SetTracer(nil) // disabling must not panic
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 5 {
		t.Errorf("tracer still firing after removal: %v", rounds)
	}
}

func TestAvailabilityTracerSampling(t *testing.T) {
	p, sol := testNetwork(t, 18, 200, 8, 24)
	s, err := New(Config{Problem: p, Solution: sol,
		Charger: &ChargerConfig{PowerPerRound: 1e8, SpeedPerRound: 100}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := &AvailabilityTracer{Every: 25}
	s.SetTracer(tr)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(tr.Rounds) != 4 || tr.Rounds[0] != 25 || tr.Rounds[3] != 100 {
		t.Fatalf("sampled rounds %v, want [25 50 75 100]", tr.Rounds)
	}
	if tr.Min() != 1 {
		t.Errorf("healthy min availability = %g, want 1", tr.Min())
	}
}
