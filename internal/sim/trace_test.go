package sim

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVTracer(t *testing.T) {
	p, sol := testNetwork(t, 14, 200, 10, 30)
	s, err := New(Config{
		Problem:  p,
		Solution: sol,
		Charger:  &ChargerConfig{PowerPerRound: 1e8, SpeedPerRound: 50},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := NewCSVTracer(&buf, 10)
	s.SetTracer(tracer)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if !strings.HasPrefix(lines[0], "round,delivered,lost,") {
		t.Fatalf("missing header: %q", lines[0])
	}
	// 100 rounds sampled every 10 -> 10 data rows.
	if len(lines) != 11 {
		t.Fatalf("got %d lines, want 11 (header + 10 samples):\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "10,") || !strings.HasPrefix(lines[10], "100,") {
		t.Errorf("sampling off: first=%q last=%q", lines[1], lines[10])
	}
	// Every data row has 8 comma-separated fields.
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 7 {
			t.Errorf("row %q has %d commas, want 7", line, got)
		}
	}
}

func TestTracerFuncObservesEveryRound(t *testing.T) {
	p, sol := testNetwork(t, 15, 200, 8, 24)
	s, err := New(Config{Problem: p, Solution: sol, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var rounds []int
	s.SetTracer(TracerFunc(func(round int, _ *Simulator) {
		rounds = append(rounds, round)
	}))
	if _, err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 5 || rounds[0] != 1 || rounds[4] != 5 {
		t.Errorf("observed rounds %v, want [1 2 3 4 5]", rounds)
	}
	s.SetTracer(nil) // disabling must not panic
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 5 {
		t.Errorf("tracer still firing after removal: %v", rounds)
	}
}
