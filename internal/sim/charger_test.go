package sim

import (
	"testing"
)

func TestChargerConfigValidation(t *testing.T) {
	p, sol := testNetwork(t, 8, 200, 10, 30)
	bad := []ChargerConfig{
		{PowerPerRound: 0, SpeedPerRound: 10},
		{PowerPerRound: 1e6, SpeedPerRound: 0},
		{PowerPerRound: 1e6, SpeedPerRound: 10, Policy: "teleport"},
	}
	for i, cc := range bad {
		cc := cc
		if _, err := New(Config{Problem: p, Solution: sol, Charger: &cc}); err == nil {
			t.Errorf("bad charger config %d accepted", i)
		}
	}
	good := ChargerConfig{PowerPerRound: 1e6, SpeedPerRound: 10, Policy: PolicyRoundRobin}
	if _, err := New(Config{Problem: p, Solution: sol, Charger: &good}); err != nil {
		t.Errorf("valid round-robin config rejected: %v", err)
	}
}

// TestChargerPolicies runs both scheduling policies under a charger that
// can only just keep up. Both must keep the network alive here (the
// budget is adequate); the urgency policy should never deliver less.
func TestChargerPolicies(t *testing.T) {
	p, sol := testNetwork(t, 9, 200, 12, 48)
	run := func(policy ChargerPolicy) *Metrics {
		s, err := New(Config{
			Problem:  p,
			Solution: sol,
			Charger: &ChargerConfig{
				PowerPerRound: 1e8,
				SpeedPerRound: 50,
				Policy:        policy,
			},
			PacketBits: 1000,
			Seed:       1,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		m, err := s.Run(6000)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		return m
	}
	urgent := run(PolicyUrgency)
	rr := run(PolicyRoundRobin)
	t.Logf("urgency: delivery=%.4f visits=%d; round-robin: delivery=%.4f visits=%d",
		urgent.DeliveryRatio(), urgent.ChargerVisits, rr.DeliveryRatio(), rr.ChargerVisits)
	if urgent.DeliveryRatio() < rr.DeliveryRatio() {
		t.Errorf("urgency policy (%.4f) delivered less than round-robin (%.4f)",
			urgent.DeliveryRatio(), rr.DeliveryRatio())
	}
	if urgent.ChargerVisits == 0 || rr.ChargerVisits == 0 {
		t.Error("a policy completed no charging sessions")
	}
}

// TestUrgencyBeatsRoundRobinUnderPressure: with a slow, weak charger the
// urgency policy must keep the bottleneck posts alive longer.
func TestUrgencyBeatsRoundRobinUnderPressure(t *testing.T) {
	p, sol := testNetwork(t, 10, 200, 12, 36)
	run := func(policy ChargerPolicy) *Metrics {
		s, err := New(Config{
			Problem:  p,
			Solution: sol,
			Charger: &ChargerConfig{
				// Tight budget: charging capacity barely covers drain,
				// so scheduling quality decides who starves.
				PowerPerRound: 1.5e5,
				SpeedPerRound: 2,
				Policy:        policy,
			},
			PacketBits:        1000,
			InitialChargeFrac: 0.6,
			Seed:              2,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		m, err := s.Run(3 * DefaultBatteryRounds)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		return m
	}
	urgent := run(PolicyUrgency)
	rr := run(PolicyRoundRobin)
	t.Logf("under pressure: urgency delivery=%.4f, round-robin delivery=%.4f",
		urgent.DeliveryRatio(), rr.DeliveryRatio())
	if urgent.DeliveryRatio() < rr.DeliveryRatio()-1e-9 {
		t.Errorf("urgency (%.4f) should not trail round-robin (%.4f) when capacity is tight",
			urgent.DeliveryRatio(), rr.DeliveryRatio())
	}
}

// TestOverheadSimConvergence: with sensing/computation overhead the
// empirical charger cost still converges to the analytic model.
func TestOverheadSimConvergence(t *testing.T) {
	p, sol := testNetwork(t, 11, 200, 10, 40)
	p.RoundOverhead = 20 // nJ per reported bit
	s, err := New(Config{
		Problem:  p,
		Solution: sol,
		Charger: &ChargerConfig{
			PowerPerRound: 1e9,
			SpeedPerRound: 1e6,
			FillToFrac:    0.95,
			TargetFrac:    0.90,
		},
		PacketBits:        1000,
		InitialChargeFrac: 0.93,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := s.AnalyticCostPerBitRound()
	if err != nil {
		t.Fatal(err)
	}
	empirical := m.EmpiricalCostPerBitRound(1000)
	rel := (empirical - analytic) / analytic
	if rel < -0.05 || rel > 0.05 {
		t.Errorf("with overhead: empirical %.3f vs analytic %.3f (%.1f%%)", empirical, analytic, rel*100)
	}
}

// TestTourPolicyChargesEveryone: the tour policy must eventually service
// every needy post and keep a comfortably provisioned network alive.
func TestTourPolicyChargesEveryone(t *testing.T) {
	p, sol := testNetwork(t, 12, 200, 12, 48)
	s, err := New(Config{
		Problem:  p,
		Solution: sol,
		Charger: &ChargerConfig{
			PowerPerRound: 1e8,
			SpeedPerRound: 50,
			Policy:        PolicyTour,
		},
		PacketBits: 1000,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(6000)
	if err != nil {
		t.Fatal(err)
	}
	if m.DeliveryRatio() != 1 {
		t.Errorf("tour policy lost reports: delivery %.4f", m.DeliveryRatio())
	}
	if m.ChargerVisits == 0 {
		t.Error("tour policy never completed a charge")
	}
}

// TestTourPolicyTravelsLessThanUrgency: visiting posts in tour order
// should cover fewer meters than urgency-chasing across the field, for
// the same workload.
func TestTourPolicyTravelsLessThanUrgency(t *testing.T) {
	p, sol := testNetwork(t, 13, 200, 15, 60)
	run := func(policy ChargerPolicy) *Metrics {
		s, err := New(Config{
			Problem:  p,
			Solution: sol,
			Charger: &ChargerConfig{
				PowerPerRound: 1e8,
				SpeedPerRound: 10,
				Policy:        policy,
			},
			PacketBits: 1000,
			Seed:       5,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		m, err := s.Run(8000)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		return m
	}
	tourM := run(PolicyTour)
	urgentM := run(PolicyUrgency)
	t.Logf("tour: %.0fm, %d visits; urgency: %.0fm, %d visits",
		tourM.ChargerDistance, tourM.ChargerVisits, urgentM.ChargerDistance, urgentM.ChargerVisits)
	if tourM.ChargerVisits == 0 || urgentM.ChargerVisits == 0 {
		t.Fatal("a policy never charged")
	}
	perVisitTour := tourM.ChargerDistance / float64(tourM.ChargerVisits)
	perVisitUrgent := urgentM.ChargerDistance / float64(urgentM.ChargerVisits)
	if perVisitTour > perVisitUrgent*1.10 {
		t.Errorf("tour policy travelled more per visit (%.1fm) than urgency (%.1fm)",
			perVisitTour, perVisitUrgent)
	}
}

// TestChargerFleet: two chargers keep alive a network that a single
// identical charger cannot (tight budget), and they never double-book a
// post.
func TestChargerFleet(t *testing.T) {
	p, sol := testNetwork(t, 16, 200, 14, 42)
	run := func(fleet int) *Metrics {
		s, err := New(Config{
			Problem:  p,
			Solution: sol,
			Charger: &ChargerConfig{
				PowerPerRound: 1.2e5,
				SpeedPerRound: 3,
			},
			Chargers:          fleet,
			PacketBits:        1000,
			InitialChargeFrac: 0.6,
			Seed:              6,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run(3 * DefaultBatteryRounds)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	solo := run(1)
	duo := run(2)
	t.Logf("solo delivery=%.4f; duo delivery=%.4f", solo.DeliveryRatio(), duo.DeliveryRatio())
	if duo.DeliveryRatio() <= solo.DeliveryRatio() {
		t.Errorf("a second charger did not improve delivery: %.4f vs %.4f",
			duo.DeliveryRatio(), solo.DeliveryRatio())
	}
}

// TestChargerFleetNoDoubleBooking: at every round at most one charger
// targets a given post.
func TestChargerFleetNoDoubleBooking(t *testing.T) {
	p, sol := testNetwork(t, 17, 200, 10, 30)
	s, err := New(Config{
		Problem:  p,
		Solution: sol,
		Charger:  &ChargerConfig{PowerPerRound: 1e6, SpeedPerRound: 10},
		Chargers: 3,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetTracer(TracerFunc(func(round int, sim *Simulator) {
		seen := map[int]int{}
		for ci, ch := range sim.chargers {
			if ch.target >= 0 {
				if prev, dup := seen[ch.target]; dup {
					t.Fatalf("round %d: chargers %d and %d both target post %d", round, prev, ci, ch.target)
				}
				seen[ch.target] = ci
			}
		}
	}))
	if _, err := s.Run(2000); err != nil {
		t.Fatal(err)
	}
}

func TestChargersWithoutConfigRejected(t *testing.T) {
	p, sol := testNetwork(t, 18, 200, 8, 24)
	if _, err := New(Config{Problem: p, Solution: sol, Chargers: 2}); err == nil {
		t.Error("fleet without charger config accepted")
	}
}
