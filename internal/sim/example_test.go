package sim_test

import (
	"fmt"
	"math/rand"

	"wrsn"
	"wrsn/internal/sim"
)

// Example runs a solved network for a thousand reporting rounds with a
// tour-driving charger and prints the delivery outcome.
func Example() {
	rng := rand.New(rand.NewSource(4))
	p, err := wrsn.GenerateProblem(rng, wrsn.GenSpec{
		Field: wrsn.Square(200),
		Posts: 10,
		Nodes: 40,
	})
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	res, err := wrsn.SolveIterativeRFH(p)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	s, err := sim.New(sim.Config{
		Problem:  p,
		Solution: res.Solution,
		Charger: &sim.ChargerConfig{
			PowerPerRound: 1e8,
			SpeedPerRound: 50,
			Policy:        sim.PolicyTour,
		},
		Seed: 1,
	})
	if err != nil {
		fmt.Println("sim:", err)
		return
	}
	m, err := s.Run(1000)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("delivery: %.0f%%, reports lost: %d\n", m.DeliveryRatio()*100, m.ReportsLost)
	// Output:
	// delivery: 100%, reports lost: 0
}
