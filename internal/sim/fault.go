package sim

import (
	"fmt"
	"math"
	"sort"

	"wrsn/internal/geom"
)

// FaultKind identifies one class of injectable fault.
type FaultKind string

const (
	// FaultKillNode permanently kills one alive node at the event's post
	// (the node with the most residual energy, so repeated events strip a
	// post deterministically).
	FaultKillNode FaultKind = "kill-node"
	// FaultKillPost permanently kills every node at the event's post.
	FaultKillPost FaultKind = "kill-post"
	// FaultTransientNode takes one alive node at the event's post offline
	// for Duration rounds, after which it recovers with its battery intact.
	FaultTransientNode FaultKind = "transient-node"
	// FaultChargerDown takes the event's charger out of service for
	// Duration rounds; it drops its current target and resumes from its
	// breakdown position afterwards.
	FaultChargerDown FaultKind = "charger-down"
)

// FaultEvent is one deterministic fault: after round Round's reporting
// phase completes, the fault fires.
type FaultEvent struct {
	// Round is the 1-based reporting round after which the event fires.
	Round int
	// Kind selects the fault class.
	Kind FaultKind
	// Post is the target post for node/post faults.
	Post int
	// Charger is the target charger index for FaultChargerDown.
	Charger int
	// Duration is the outage length in rounds for transient and charger
	// faults.
	Duration int
}

// FaultSchedule is a list of deterministic fault events. The simulator
// sorts it by round (stable) at construction, so callers may list events
// in any order. Schedules make chaos tests reproducible: the same
// schedule always produces the same failure sequence, independent of the
// stochastic fault knobs.
type FaultSchedule []FaultEvent

// validate checks every event against the network shape.
func (fs FaultSchedule) validate(nPosts, nChargers int) error {
	for i, ev := range fs {
		if ev.Round < 1 {
			return fmt.Errorf("sim: fault %d fires at round %d; rounds are 1-based", i, ev.Round)
		}
		switch ev.Kind {
		case FaultKillNode, FaultKillPost:
			if ev.Post < 0 || ev.Post >= nPosts {
				return fmt.Errorf("sim: fault %d targets post %d of %d", i, ev.Post, nPosts)
			}
		case FaultTransientNode:
			if ev.Post < 0 || ev.Post >= nPosts {
				return fmt.Errorf("sim: fault %d targets post %d of %d", i, ev.Post, nPosts)
			}
			if ev.Duration < 1 {
				return fmt.Errorf("sim: transient fault %d needs a positive duration, got %d", i, ev.Duration)
			}
		case FaultChargerDown:
			if ev.Charger < 0 || ev.Charger >= nChargers {
				return fmt.Errorf("sim: fault %d targets charger %d of %d", i, ev.Charger, nChargers)
			}
			if ev.Duration < 1 {
				return fmt.Errorf("sim: charger fault %d needs a positive duration, got %d", i, ev.Duration)
			}
		default:
			return fmt.Errorf("sim: fault %d has unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// FaultConfig is the pluggable fault-injection engine's configuration.
// All stochastic knobs draw from the simulation's seeded RNG, so runs are
// bit-identical for a fixed seed; Schedule adds deterministic events on
// top. The zero value injects nothing.
type FaultConfig struct {
	// NodeFailurePerRound is the per-node per-round Bernoulli probability
	// of a permanent failure.
	NodeFailurePerRound float64
	// TransientPerRound is the per-node per-round Bernoulli probability of
	// a transient failure: the node goes offline for an exponentially
	// distributed number of rounds (mean TransientMeanRounds) and then
	// recovers with its battery intact.
	TransientPerRound float64
	// TransientMeanRounds is the mean transient outage length in rounds
	// (default 50).
	TransientMeanRounds float64
	// PostOutagePerRound is the per-round probability of one spatially
	// correlated outage: a uniformly random post is struck and every node
	// at posts within OutageRadius meters of it (including the struck
	// post) fails permanently — a lightning strike, flood or vandalism
	// model.
	PostOutagePerRound float64
	// OutageRadius is the blast radius in meters for correlated outages
	// (0 confines the outage to the struck post alone).
	OutageRadius float64
	// ChargerFailurePerRound is the per-charger per-round probability of a
	// breakdown taking the charger out of service for ChargerRepairRounds.
	ChargerFailurePerRound float64
	// ChargerRepairRounds is how long a broken charger stays out of
	// service (default 200).
	ChargerRepairRounds int
	// Schedule lists deterministic fault events, applied in addition to
	// (and before) the stochastic draws of the same round.
	Schedule FaultSchedule
}

// validate checks the stochastic knobs' ranges and the schedule.
func (fc *FaultConfig) validate(nPosts, nChargers int) error {
	probs := []struct {
		name string
		v    float64
	}{
		{"NodeFailurePerRound", fc.NodeFailurePerRound},
		{"TransientPerRound", fc.TransientPerRound},
		{"PostOutagePerRound", fc.PostOutagePerRound},
		{"ChargerFailurePerRound", fc.ChargerFailurePerRound},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 || math.IsNaN(p.v) {
			return fmt.Errorf("sim: %s %g outside [0, 1]", p.name, p.v)
		}
	}
	if fc.TransientMeanRounds < 0 || math.IsNaN(fc.TransientMeanRounds) || math.IsInf(fc.TransientMeanRounds, 0) {
		return fmt.Errorf("sim: TransientMeanRounds %g must be finite and non-negative", fc.TransientMeanRounds)
	}
	if fc.OutageRadius < 0 || math.IsNaN(fc.OutageRadius) || math.IsInf(fc.OutageRadius, 0) {
		return fmt.Errorf("sim: OutageRadius %g must be finite and non-negative", fc.OutageRadius)
	}
	if fc.ChargerRepairRounds < 0 {
		return fmt.Errorf("sim: ChargerRepairRounds %d must be non-negative", fc.ChargerRepairRounds)
	}
	if fc.ChargerFailurePerRound > 0 && nChargers == 0 {
		return fmt.Errorf("sim: ChargerFailurePerRound set but no charger configured")
	}
	return fc.Schedule.validate(nPosts, nChargers)
}

// active reports whether any fault source is configured.
func (fc *FaultConfig) active() bool {
	return fc.NodeFailurePerRound > 0 || fc.TransientPerRound > 0 ||
		fc.PostOutagePerRound > 0 || fc.ChargerFailurePerRound > 0 ||
		len(fc.Schedule) > 0
}

// faultEngine drives fault injection for one run: a cursor over the
// sorted schedule plus the stochastic knobs. Under the event core
// (sampled == true) the per-round Bernoulli draws are replaced by
// sampled next-event times in a pending min-heap, so fault-free spans
// carry no per-round cost and the event horizon can peek at the next
// onset. The sampled realisation is distribution-identical to the
// per-round draws (geometric inversion) and deterministic per seed, but
// consumes the RNG stream differently, so it matches the exact core
// statistically rather than draw-for-draw.
type faultEngine struct {
	cfg    FaultConfig
	sorted FaultSchedule // schedule sorted by round (stable)
	cursor int

	sampled bool
	pending []pendingFault // min-heap ordered by pendingFault.before
}

// Same-round sampled events must fire in the per-round stepper's sweep
// order — permanents, then transients, then the outage, then chargers,
// each in ascending (post, node) order — so the heap orders by
// (round, rank, post, node).
const (
	rankPermanent = iota
	rankTransient
	rankOutage
	rankCharger
)

// pendingFault is one scheduled stochastic onset. post doubles as the
// charger index for rankCharger events and is -1 for the outage event.
type pendingFault struct {
	round int
	rank  int8
	post  int
	node  int
}

func (a pendingFault) before(b pendingFault) bool {
	if a.round != b.round {
		return a.round < b.round
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	if a.post != b.post {
		return a.post < b.post
	}
	return a.node < b.node
}

func (e *faultEngine) push(f pendingFault) {
	e.pending = append(e.pending, f)
	i := len(e.pending) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.pending[i].before(e.pending[parent]) {
			break
		}
		e.pending[i], e.pending[parent] = e.pending[parent], e.pending[i]
		i = parent
	}
}

func (e *faultEngine) pop() pendingFault {
	top := e.pending[0]
	last := len(e.pending) - 1
	e.pending[0] = e.pending[last]
	e.pending = e.pending[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(e.pending) && e.pending[l].before(e.pending[min]) {
			min = l
		}
		if r < len(e.pending) && e.pending[r].before(e.pending[min]) {
			min = r
		}
		if min == i {
			return top
		}
		e.pending[i], e.pending[min] = e.pending[min], e.pending[i]
		i = min
	}
}

// geo samples the number of Bernoulli(p) rounds up to and including the
// first success, by inverting the geometric CDF with one uniform draw.
func (e *faultEngine) geo(s *Simulator, p float64) int {
	if p >= 1 {
		return 1
	}
	g := math.Log(1-s.rng.Float64()) / math.Log(1-p)
	if g > 1e15 { // log(1-u) hit -Inf, or p is denormal-tiny
		return 1 << 50
	}
	return 1 + int(g)
}

// initSampled switches the engine to next-event sampling and seeds the
// heap with every hazard's first onset. The draw order is fixed —
// permanents in (post, node) order, then transients, the outage
// process, then chargers — so a given seed always yields the same
// realisation.
func (e *faultEngine) initSampled(s *Simulator) {
	e.sampled = true
	if p := e.cfg.NodeFailurePerRound; p > 0 {
		for i := range s.posts {
			for j := range s.posts[i].Nodes {
				e.push(pendingFault{e.geo(s, p), rankPermanent, i, j})
			}
		}
	}
	if p := e.cfg.TransientPerRound; p > 0 {
		for i := range s.posts {
			for j := range s.posts[i].Nodes {
				e.push(pendingFault{e.geo(s, p), rankTransient, i, j})
			}
		}
	}
	if p := e.cfg.PostOutagePerRound; p > 0 {
		e.push(pendingFault{e.geo(s, p), rankOutage, -1, -1})
	}
	if p := e.cfg.ChargerFailurePerRound; p > 0 {
		for idx := range s.chargers {
			e.push(pendingFault{e.geo(s, p), rankCharger, idx, -1})
		}
	}
}

// nextEventRound returns the earliest round at which the engine will
// fire anything — scheduled or sampled — or 0 when nothing remains.
func (e *faultEngine) nextEventRound() int {
	next := 0
	if e.cursor < len(e.sorted) {
		next = e.sorted[e.cursor].Round
	}
	if len(e.pending) > 0 && (next == 0 || e.pending[0].round < next) {
		next = e.pending[0].round
	}
	return next
}

// stepSampled fires every sampled onset due at `round` and reschedules
// the recurring hazards. The per-round sweeps' suppression rules are
// reproduced exactly: permanents never re-fire on dead nodes (the stale
// event is discarded), transients are suppressed while the node is
// already down and resume drawing after DownUntil, and chargers resume
// drawing after their repair completes.
func (e *faultEngine) stepSampled(s *Simulator, round int) {
	for len(e.pending) > 0 && e.pending[0].round <= round {
		ev := e.pop()
		switch ev.rank {
		case rankPermanent:
			s.killNode(ev.post, ev.node) // no-op if already dead
		case rankTransient:
			nd := &s.posts[ev.post].Nodes[ev.node]
			if !nd.Alive {
				break // permanent death ends the process
			}
			if nd.DownUntil < round {
				e.takeDown(s, ev.post, ev.node, round, e.drawOutage(s))
			}
			next := round
			if nd.DownUntil > next {
				next = nd.DownUntil
			}
			e.push(pendingFault{next + e.geo(s, e.cfg.TransientPerRound), rankTransient, ev.post, ev.node})
		case rankOutage:
			e.strike(s, s.rng.Intn(s.p.N()))
			e.push(pendingFault{round + e.geo(s, e.cfg.PostOutagePerRound), rankOutage, -1, -1})
		case rankCharger:
			ch := s.chargers[ev.post]
			if ch.downUntil < round {
				e.breakCharger(s, ev.post, round, e.cfg.ChargerRepairRounds)
			}
			next := round
			if ch.downUntil > next {
				next = ch.downUntil
			}
			e.push(pendingFault{next + e.geo(s, e.cfg.ChargerFailurePerRound), rankCharger, ev.post, -1})
		}
	}
}

func newFaultEngine(cfg FaultConfig) *faultEngine {
	if cfg.TransientMeanRounds == 0 {
		cfg.TransientMeanRounds = 50
	}
	if cfg.ChargerRepairRounds == 0 {
		cfg.ChargerRepairRounds = 200
	}
	sorted := append(FaultSchedule(nil), cfg.Schedule...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Round < sorted[b].Round })
	return &faultEngine{cfg: cfg, sorted: sorted}
}

// step fires every fault due at the given round: scheduled events first,
// then stochastic permanent failures, transients, correlated outages and
// charger breakdowns. The draw order is fixed so runs stay deterministic.
func (e *faultEngine) step(s *Simulator, round int) {
	for e.cursor < len(e.sorted) && e.sorted[e.cursor].Round <= round {
		e.apply(s, round, e.sorted[e.cursor])
		e.cursor++
	}
	if e.sampled {
		e.stepSampled(s, round)
		return
	}
	if p := e.cfg.NodeFailurePerRound; p > 0 {
		for i := range s.posts {
			for j := range s.posts[i].Nodes {
				if s.posts[i].Nodes[j].Alive && s.rng.Float64() < p {
					s.killNode(i, j)
				}
			}
		}
	}
	if p := e.cfg.TransientPerRound; p > 0 {
		for i := range s.posts {
			for j := range s.posts[i].Nodes {
				nd := &s.posts[i].Nodes[j]
				if nd.Alive && nd.DownUntil < round && s.rng.Float64() < p {
					e.takeDown(s, i, j, round, e.drawOutage(s))
				}
			}
		}
	}
	if p := e.cfg.PostOutagePerRound; p > 0 && s.rng.Float64() < p {
		e.strike(s, s.rng.Intn(s.p.N()))
	}
	if p := e.cfg.ChargerFailurePerRound; p > 0 {
		for idx, ch := range s.chargers {
			if ch.downUntil < round && s.rng.Float64() < p {
				e.breakCharger(s, idx, round, e.cfg.ChargerRepairRounds)
			}
		}
	}
}

// apply fires one scheduled event.
func (e *faultEngine) apply(s *Simulator, round int, ev FaultEvent) {
	switch ev.Kind {
	case FaultKillNode:
		if j := s.posts[ev.Post].aliveMaxEnergy(); j >= 0 {
			s.killNode(ev.Post, j)
		}
	case FaultKillPost:
		for j := range s.posts[ev.Post].Nodes {
			if s.posts[ev.Post].Nodes[j].Alive {
				s.killNode(ev.Post, j)
			}
		}
	case FaultTransientNode:
		// Target a usable node so stacked same-round events take down
		// distinct nodes rather than re-striking one already offline.
		if j := s.posts[ev.Post].usableMaxEnergy(round); j >= 0 {
			e.takeDown(s, ev.Post, j, round, ev.Duration)
		}
	case FaultChargerDown:
		if ev.Charger < len(s.chargers) {
			e.breakCharger(s, ev.Charger, round, ev.Duration)
		}
	}
}

// drawOutage samples a transient outage length: exponential with the
// configured mean, rounded up to at least one round.
func (e *faultEngine) drawOutage(s *Simulator) int {
	d := int(math.Ceil(s.rng.ExpFloat64() * e.cfg.TransientMeanRounds))
	if d < 1 {
		d = 1
	}
	return d
}

// takeDown marks a node transiently offline for `rounds` rounds starting
// after the current one.
func (e *faultEngine) takeDown(s *Simulator, post, node, round, rounds int) {
	s.posts[post].Nodes[node].DownUntil = round + rounds
	s.everDown = true // the event horizon must watch for the recovery
	s.metrics.TransientFaults++
}

// strike fires one correlated outage centred on the given post: every
// node at posts within OutageRadius fails permanently.
func (e *faultEngine) strike(s *Simulator, centre int) {
	c := s.p.Posts[centre]
	for i := range s.posts {
		if geom.Dist(c, s.p.Posts[i]) > e.cfg.OutageRadius && i != centre {
			continue
		}
		for j := range s.posts[i].Nodes {
			if s.posts[i].Nodes[j].Alive {
				s.killNode(i, j)
			}
		}
	}
	s.metrics.CorrelatedOutages++
}

// breakCharger takes a charger out of service through round+rounds. The
// charger releases its claim so fleet peers can cover for it.
func (e *faultEngine) breakCharger(s *Simulator, idx, round, rounds int) {
	ch := s.chargers[idx]
	ch.downUntil = round + rounds
	if ch.target >= 0 {
		s.claimed[ch.target] = false
		ch.target = -1
	}
	ch.route = ch.route[:0]
	s.metrics.ChargerBreakdowns++
}
