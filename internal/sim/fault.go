package sim

import (
	"fmt"
	"math"
	"sort"

	"wrsn/internal/geom"
)

// FaultKind identifies one class of injectable fault.
type FaultKind string

const (
	// FaultKillNode permanently kills one alive node at the event's post
	// (the node with the most residual energy, so repeated events strip a
	// post deterministically).
	FaultKillNode FaultKind = "kill-node"
	// FaultKillPost permanently kills every node at the event's post.
	FaultKillPost FaultKind = "kill-post"
	// FaultTransientNode takes one alive node at the event's post offline
	// for Duration rounds, after which it recovers with its battery intact.
	FaultTransientNode FaultKind = "transient-node"
	// FaultChargerDown takes the event's charger out of service for
	// Duration rounds; it drops its current target and resumes from its
	// breakdown position afterwards.
	FaultChargerDown FaultKind = "charger-down"
)

// FaultEvent is one deterministic fault: after round Round's reporting
// phase completes, the fault fires.
type FaultEvent struct {
	// Round is the 1-based reporting round after which the event fires.
	Round int
	// Kind selects the fault class.
	Kind FaultKind
	// Post is the target post for node/post faults.
	Post int
	// Charger is the target charger index for FaultChargerDown.
	Charger int
	// Duration is the outage length in rounds for transient and charger
	// faults.
	Duration int
}

// FaultSchedule is a list of deterministic fault events. The simulator
// sorts it by round (stable) at construction, so callers may list events
// in any order. Schedules make chaos tests reproducible: the same
// schedule always produces the same failure sequence, independent of the
// stochastic fault knobs.
type FaultSchedule []FaultEvent

// validate checks every event against the network shape.
func (fs FaultSchedule) validate(nPosts, nChargers int) error {
	for i, ev := range fs {
		if ev.Round < 1 {
			return fmt.Errorf("sim: fault %d fires at round %d; rounds are 1-based", i, ev.Round)
		}
		switch ev.Kind {
		case FaultKillNode, FaultKillPost:
			if ev.Post < 0 || ev.Post >= nPosts {
				return fmt.Errorf("sim: fault %d targets post %d of %d", i, ev.Post, nPosts)
			}
		case FaultTransientNode:
			if ev.Post < 0 || ev.Post >= nPosts {
				return fmt.Errorf("sim: fault %d targets post %d of %d", i, ev.Post, nPosts)
			}
			if ev.Duration < 1 {
				return fmt.Errorf("sim: transient fault %d needs a positive duration, got %d", i, ev.Duration)
			}
		case FaultChargerDown:
			if ev.Charger < 0 || ev.Charger >= nChargers {
				return fmt.Errorf("sim: fault %d targets charger %d of %d", i, ev.Charger, nChargers)
			}
			if ev.Duration < 1 {
				return fmt.Errorf("sim: charger fault %d needs a positive duration, got %d", i, ev.Duration)
			}
		default:
			return fmt.Errorf("sim: fault %d has unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// FaultConfig is the pluggable fault-injection engine's configuration.
// All stochastic knobs draw from the simulation's seeded RNG, so runs are
// bit-identical for a fixed seed; Schedule adds deterministic events on
// top. The zero value injects nothing.
type FaultConfig struct {
	// NodeFailurePerRound is the per-node per-round Bernoulli probability
	// of a permanent failure.
	NodeFailurePerRound float64
	// TransientPerRound is the per-node per-round Bernoulli probability of
	// a transient failure: the node goes offline for an exponentially
	// distributed number of rounds (mean TransientMeanRounds) and then
	// recovers with its battery intact.
	TransientPerRound float64
	// TransientMeanRounds is the mean transient outage length in rounds
	// (default 50).
	TransientMeanRounds float64
	// PostOutagePerRound is the per-round probability of one spatially
	// correlated outage: a uniformly random post is struck and every node
	// at posts within OutageRadius meters of it (including the struck
	// post) fails permanently — a lightning strike, flood or vandalism
	// model.
	PostOutagePerRound float64
	// OutageRadius is the blast radius in meters for correlated outages
	// (0 confines the outage to the struck post alone).
	OutageRadius float64
	// ChargerFailurePerRound is the per-charger per-round probability of a
	// breakdown taking the charger out of service for ChargerRepairRounds.
	ChargerFailurePerRound float64
	// ChargerRepairRounds is how long a broken charger stays out of
	// service (default 200).
	ChargerRepairRounds int
	// Schedule lists deterministic fault events, applied in addition to
	// (and before) the stochastic draws of the same round.
	Schedule FaultSchedule
}

// validate checks the stochastic knobs' ranges and the schedule.
func (fc *FaultConfig) validate(nPosts, nChargers int) error {
	probs := []struct {
		name string
		v    float64
	}{
		{"NodeFailurePerRound", fc.NodeFailurePerRound},
		{"TransientPerRound", fc.TransientPerRound},
		{"PostOutagePerRound", fc.PostOutagePerRound},
		{"ChargerFailurePerRound", fc.ChargerFailurePerRound},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 || math.IsNaN(p.v) {
			return fmt.Errorf("sim: %s %g outside [0, 1]", p.name, p.v)
		}
	}
	if fc.TransientMeanRounds < 0 || math.IsNaN(fc.TransientMeanRounds) || math.IsInf(fc.TransientMeanRounds, 0) {
		return fmt.Errorf("sim: TransientMeanRounds %g must be finite and non-negative", fc.TransientMeanRounds)
	}
	if fc.OutageRadius < 0 || math.IsNaN(fc.OutageRadius) || math.IsInf(fc.OutageRadius, 0) {
		return fmt.Errorf("sim: OutageRadius %g must be finite and non-negative", fc.OutageRadius)
	}
	if fc.ChargerRepairRounds < 0 {
		return fmt.Errorf("sim: ChargerRepairRounds %d must be non-negative", fc.ChargerRepairRounds)
	}
	if fc.ChargerFailurePerRound > 0 && nChargers == 0 {
		return fmt.Errorf("sim: ChargerFailurePerRound set but no charger configured")
	}
	return fc.Schedule.validate(nPosts, nChargers)
}

// active reports whether any fault source is configured.
func (fc *FaultConfig) active() bool {
	return fc.NodeFailurePerRound > 0 || fc.TransientPerRound > 0 ||
		fc.PostOutagePerRound > 0 || fc.ChargerFailurePerRound > 0 ||
		len(fc.Schedule) > 0
}

// faultEngine drives fault injection for one run: a cursor over the
// sorted schedule plus the stochastic knobs.
type faultEngine struct {
	cfg    FaultConfig
	sorted FaultSchedule // schedule sorted by round (stable)
	cursor int
}

func newFaultEngine(cfg FaultConfig) *faultEngine {
	if cfg.TransientMeanRounds == 0 {
		cfg.TransientMeanRounds = 50
	}
	if cfg.ChargerRepairRounds == 0 {
		cfg.ChargerRepairRounds = 200
	}
	sorted := append(FaultSchedule(nil), cfg.Schedule...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Round < sorted[b].Round })
	return &faultEngine{cfg: cfg, sorted: sorted}
}

// step fires every fault due at the given round: scheduled events first,
// then stochastic permanent failures, transients, correlated outages and
// charger breakdowns. The draw order is fixed so runs stay deterministic.
func (e *faultEngine) step(s *Simulator, round int) {
	for e.cursor < len(e.sorted) && e.sorted[e.cursor].Round <= round {
		e.apply(s, round, e.sorted[e.cursor])
		e.cursor++
	}
	if p := e.cfg.NodeFailurePerRound; p > 0 {
		for i := range s.posts {
			for j := range s.posts[i].Nodes {
				if s.posts[i].Nodes[j].Alive && s.rng.Float64() < p {
					s.killNode(i, j)
				}
			}
		}
	}
	if p := e.cfg.TransientPerRound; p > 0 {
		for i := range s.posts {
			for j := range s.posts[i].Nodes {
				nd := &s.posts[i].Nodes[j]
				if nd.Alive && nd.DownUntil < round && s.rng.Float64() < p {
					e.takeDown(s, i, j, round, e.drawOutage(s))
				}
			}
		}
	}
	if p := e.cfg.PostOutagePerRound; p > 0 && s.rng.Float64() < p {
		e.strike(s, s.rng.Intn(s.p.N()))
	}
	if p := e.cfg.ChargerFailurePerRound; p > 0 {
		for idx, ch := range s.chargers {
			if ch.downUntil < round && s.rng.Float64() < p {
				e.breakCharger(s, idx, round, e.cfg.ChargerRepairRounds)
			}
		}
	}
}

// apply fires one scheduled event.
func (e *faultEngine) apply(s *Simulator, round int, ev FaultEvent) {
	switch ev.Kind {
	case FaultKillNode:
		if j := s.posts[ev.Post].aliveMaxEnergy(); j >= 0 {
			s.killNode(ev.Post, j)
		}
	case FaultKillPost:
		for j := range s.posts[ev.Post].Nodes {
			if s.posts[ev.Post].Nodes[j].Alive {
				s.killNode(ev.Post, j)
			}
		}
	case FaultTransientNode:
		// Target a usable node so stacked same-round events take down
		// distinct nodes rather than re-striking one already offline.
		if j := s.posts[ev.Post].usableMaxEnergy(round); j >= 0 {
			e.takeDown(s, ev.Post, j, round, ev.Duration)
		}
	case FaultChargerDown:
		if ev.Charger < len(s.chargers) {
			e.breakCharger(s, ev.Charger, round, ev.Duration)
		}
	}
}

// drawOutage samples a transient outage length: exponential with the
// configured mean, rounded up to at least one round.
func (e *faultEngine) drawOutage(s *Simulator) int {
	d := int(math.Ceil(s.rng.ExpFloat64() * e.cfg.TransientMeanRounds))
	if d < 1 {
		d = 1
	}
	return d
}

// takeDown marks a node transiently offline for `rounds` rounds starting
// after the current one.
func (e *faultEngine) takeDown(s *Simulator, post, node, round, rounds int) {
	s.posts[post].Nodes[node].DownUntil = round + rounds
	s.metrics.TransientFaults++
}

// strike fires one correlated outage centred on the given post: every
// node at posts within OutageRadius fails permanently.
func (e *faultEngine) strike(s *Simulator, centre int) {
	c := s.p.Posts[centre]
	for i := range s.posts {
		if geom.Dist(c, s.p.Posts[i]) > e.cfg.OutageRadius && i != centre {
			continue
		}
		for j := range s.posts[i].Nodes {
			if s.posts[i].Nodes[j].Alive {
				s.killNode(i, j)
			}
		}
	}
	s.metrics.CorrelatedOutages++
}

// breakCharger takes a charger out of service through round+rounds. The
// charger releases its claim so fleet peers can cover for it.
func (e *faultEngine) breakCharger(s *Simulator, idx, round, rounds int) {
	ch := s.chargers[idx]
	ch.downUntil = round + rounds
	if ch.target >= 0 {
		s.claimed[ch.target] = false
		ch.target = -1
	}
	ch.route = ch.route[:0]
	s.metrics.ChargerBreakdowns++
}
