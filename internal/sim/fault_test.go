package sim

import (
	"math"
	"testing"

	"wrsn/internal/model"
)

// scheduleConfig builds a base config with a generous charger so fault
// effects are isolated from charging-capacity effects.
func scheduleConfig(p *model.Problem, sol model.Solution, seed int64) Config {
	return Config{
		Problem:  p,
		Solution: sol,
		Charger:  &ChargerConfig{PowerPerRound: 1e9, SpeedPerRound: 1e6},
		Seed:     seed,
	}
}

func TestScheduledKillPostLosesSubtree(t *testing.T) {
	p, sol := testNetwork(t, 30, 200, 12, 48)
	// Pick the post with the largest subtree that is not a direct BS
	// child, so the kill orphans at least one live descendant.
	sizes := sol.Tree.SubtreeSizes(p)
	victim, best := -1, 1
	for i := 0; i < p.N(); i++ {
		if sizes[i] > best {
			victim, best = i, sizes[i]
		}
	}
	if victim < 0 {
		t.Skip("degenerate star topology: no post carries a subtree")
	}
	const killAt = 100
	const rounds = 500
	cfg := scheduleConfig(p, sol, 1)
	cfg.Faults = &FaultConfig{Schedule: FaultSchedule{{Round: killAt, Kind: FaultKillPost, Post: victim}}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(m.NodeFailures); got != sol.Deploy[victim] {
		t.Errorf("killed %d nodes, want the post's full strength %d", got, sol.Deploy[victim])
	}
	if m.PostsDead != 1 {
		t.Errorf("PostsDead = %d, want 1", m.PostsDead)
	}
	// Without repair, the whole subtree (victim + descendants) is lost
	// every round after the kill.
	wantLost := int64(sizes[victim]) * int64(rounds-killAt)
	if m.ReportsLost != wantLost {
		t.Errorf("lost %d reports, want subtree loss %d (subtree %d posts)", m.ReportsLost, wantLost, sizes[victim])
	}
	if m.FirstLossRound != killAt+1 {
		t.Errorf("first loss at round %d, want %d", m.FirstLossRound, killAt+1)
	}
}

func TestTransientFaultRecovers(t *testing.T) {
	p, sol := testNetwork(t, 31, 200, 10, 30)
	// Take every node at a leaf post down for 50 rounds; the post loses
	// its own reports during the outage and recovers afterwards.
	leaf := -1
	sizes := sol.Tree.SubtreeSizes(p)
	for i := 0; i < p.N(); i++ {
		if sizes[i] == 1 {
			leaf = i
			break
		}
	}
	if leaf < 0 {
		t.Fatal("no leaf post")
	}
	var schedule FaultSchedule
	for k := 0; k < sol.Deploy[leaf]; k++ {
		schedule = append(schedule, FaultEvent{Round: 100, Kind: FaultTransientNode, Post: leaf, Duration: 50})
	}
	cfg := scheduleConfig(p, sol, 1)
	cfg.Faults = &FaultConfig{Schedule: schedule}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if m.TransientFaults != int64(sol.Deploy[leaf]) {
		t.Fatalf("TransientFaults = %d, want %d", m.TransientFaults, sol.Deploy[leaf])
	}
	if m.NodeFailures != 0 {
		t.Errorf("transient outage recorded %d permanent failures", m.NodeFailures)
	}
	// Outage spans rounds 101..150: exactly 50 own reports lost, then
	// full recovery (no post death, no further losses).
	if m.ReportsLost != 50 {
		t.Errorf("lost %d reports, want 50 (the outage window)", m.ReportsLost)
	}
	if m.PostsDead != 0 {
		t.Errorf("transient outage killed the post (PostsDead=%d)", m.PostsDead)
	}
	if got := m.DeliveryRatio(); got <= 0.98 {
		t.Errorf("delivery %.4f too low after recovery", got)
	}
}

func TestCorrelatedOutageKillsNeighbourhood(t *testing.T) {
	p, sol := testNetwork(t, 32, 200, 12, 36)
	// A stochastic outage with a radius covering the whole field kills
	// every node in one strike.
	cfg := scheduleConfig(p, sol, 5)
	cfg.Faults = &FaultConfig{PostOutagePerRound: 1, OutageRadius: 1e9}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.CorrelatedOutages == 0 {
		t.Fatal("no outage fired at probability 1")
	}
	if int(m.NodeFailures) != p.Nodes {
		t.Errorf("field-wide outage killed %d of %d nodes", m.NodeFailures, p.Nodes)
	}
	if m.PostsDead != p.N() {
		t.Errorf("PostsDead = %d, want all %d", m.PostsDead, p.N())
	}
}

func TestZeroRadiusOutageKillsOnePost(t *testing.T) {
	p, sol := testNetwork(t, 33, 200, 10, 30)
	cfg := scheduleConfig(p, sol, 9)
	cfg.Faults = &FaultConfig{PostOutagePerRound: 1, OutageRadius: 0}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.CorrelatedOutages != 1 {
		t.Fatalf("outages = %d, want 1", m.CorrelatedOutages)
	}
	if m.PostsDead != 1 {
		t.Errorf("zero-radius outage killed %d posts, want exactly 1", m.PostsDead)
	}
}

func TestChargerBreakdownStallsCharging(t *testing.T) {
	p, sol := testNetwork(t, 34, 200, 10, 30)
	const down = 400
	cfg := scheduleConfig(p, sol, 1)
	cfg.Faults = &FaultConfig{Schedule: FaultSchedule{{Round: 10, Kind: FaultChargerDown, Charger: 0, Duration: down}}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(600)
	if err != nil {
		t.Fatal(err)
	}
	if m.ChargerBreakdowns != 1 {
		t.Fatalf("breakdowns = %d, want 1", m.ChargerBreakdowns)
	}
	// Breakdown at round 10 with duration 400 idles the charger through
	// round 410 (including the breakdown round itself).
	if m.ChargerDownRounds != down+1 {
		t.Errorf("ChargerDownRounds = %d, want %d", m.ChargerDownRounds, down+1)
	}
	// The charger must resume service after repair.
	healthy, err := New(scheduleConfig(p, sol, 1))
	if err != nil {
		t.Fatal(err)
	}
	hm, err := healthy.Run(600)
	if err != nil {
		t.Fatal(err)
	}
	if hm.ChargerEnergy > 0 && m.ChargerEnergy == 0 {
		t.Error("charger never recovered from the breakdown")
	}
}

func TestPerNodeBernoulliInjectionRate(t *testing.T) {
	// The under-injection fix: with per-node probability p, failures per
	// round follow Binomial(alive, p), so the long-run injection count
	// tracks alive*p per round instead of being capped at one. Use a
	// short horizon so the alive population stays near its initial size.
	p, sol := testNetwork(t, 35, 200, 10, 60)
	const (
		rate   = 0.002
		rounds = 400
	)
	cfg := scheduleConfig(p, sol, 11)
	cfg.Faults = &FaultConfig{NodeFailurePerRound: rate}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	// Expected failures ≈ nodes * (1 - (1-p)^rounds) = 60 * 0.551 ≈ 33.
	expected := float64(p.Nodes) * (1 - math.Pow(1-rate, rounds))
	if m.NodeFailures < int64(expected*0.6) || m.NodeFailures > int64(expected*1.4) {
		t.Errorf("injected %d failures, want ≈ %.0f (the old engine would cap at %d)",
			m.NodeFailures, expected, rounds)
	}
	// The historical one-per-round cap would have made >rounds failures
	// impossible at any rate; per-node draws routinely exceed one per
	// round at high rates.
	burst, _ := New(Config{Problem: p, Solution: sol, FailurePerRound: 1, Seed: 1})
	bm, err := burst.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if int(bm.NodeFailures) != p.Nodes {
		t.Errorf("rate 1 killed %d of %d nodes in one round; per-node draws must kill all", bm.NodeFailures, p.Nodes)
	}
}

func TestFaultScheduleDeterminism(t *testing.T) {
	p, sol := testNetwork(t, 36, 200, 12, 48)
	run := func() Metrics {
		cfg := scheduleConfig(p, sol, 77)
		cfg.Faults = &FaultConfig{
			NodeFailurePerRound: 0.0005,
			TransientPerRound:   0.0005,
			PostOutagePerRound:  0.0002,
			OutageRadius:        30,
			Schedule: FaultSchedule{
				{Round: 50, Kind: FaultKillNode, Post: 3},
				{Round: 20, Kind: FaultTransientNode, Post: 1, Duration: 10},
			},
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(2000); err != nil {
			t.Fatal(err)
		}
		return s.Metrics()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	p, sol := testNetwork(t, 37, 200, 8, 24)
	cases := []struct {
		name string
		fc   FaultConfig
	}{
		{"negative node rate", FaultConfig{NodeFailurePerRound: -0.1}},
		{"node rate above one", FaultConfig{NodeFailurePerRound: 1.5}},
		{"negative transient mean", FaultConfig{TransientMeanRounds: -1}},
		{"negative outage radius", FaultConfig{OutageRadius: -5}},
		{"negative charger repair", FaultConfig{ChargerRepairRounds: -1}},
		{"charger fault without charger", FaultConfig{ChargerFailurePerRound: 0.1}},
		{"schedule round zero", FaultConfig{Schedule: FaultSchedule{{Round: 0, Kind: FaultKillPost, Post: 0}}}},
		{"schedule bad post", FaultConfig{Schedule: FaultSchedule{{Round: 1, Kind: FaultKillPost, Post: 99}}}},
		{"schedule bad kind", FaultConfig{Schedule: FaultSchedule{{Round: 1, Kind: "meteor", Post: 0}}}},
		{"transient without duration", FaultConfig{Schedule: FaultSchedule{{Round: 1, Kind: FaultTransientNode, Post: 0}}}},
		{"charger event without charger", FaultConfig{Schedule: FaultSchedule{{Round: 1, Kind: FaultChargerDown, Duration: 5}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fc := tc.fc
			if _, err := New(Config{Problem: p, Solution: sol, Faults: &fc}); err == nil {
				t.Errorf("config %+v accepted", tc.fc)
			}
		})
	}
	// Legacy shorthand conflicts with the engine's own knob.
	if _, err := New(Config{Problem: p, Solution: sol, FailurePerRound: 0.1,
		Faults: &FaultConfig{NodeFailurePerRound: 0.1}}); err == nil {
		t.Error("FailurePerRound + Faults.NodeFailurePerRound accepted together")
	}
}
