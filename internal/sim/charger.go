package sim

import (
	"errors"
	"fmt"
	"math"

	"wrsn/internal/geom"
	"wrsn/internal/tour"
)

// chargerState is the mobile charger's runtime: position, current target
// and per-round behaviour (travel, then charge).
type chargerState struct {
	cfg       ChargerConfig
	pos       geom.Point
	target    int   // post index being approached/charged; -1 when idle
	rrCursor  int   // next post to consider under PolicyRoundRobin
	route     []int // remaining planned stops under PolicyTour
	downUntil int   // broken down through this round (fault injection)
}

func newChargerState(cfg *ChargerConfig, p interface{ N() int }) (*chargerState, error) {
	if cfg.PowerPerRound <= 0 {
		return nil, fmt.Errorf("sim: charger power per round must be positive, got %g", cfg.PowerPerRound)
	}
	if cfg.SpeedPerRound <= 0 {
		return nil, fmt.Errorf("sim: charger speed per round must be positive, got %g", cfg.SpeedPerRound)
	}
	c := *cfg
	if c.FillToFrac <= 0 || c.FillToFrac > 1 {
		c.FillToFrac = 0.95
	}
	if c.TargetFrac <= 0 || c.TargetFrac >= c.FillToFrac {
		c.TargetFrac = math.Min(0.5, c.FillToFrac/2)
	}
	switch c.Policy {
	case "":
		c.Policy = PolicyUrgency
	case PolicyUrgency, PolicyRoundRobin, PolicyTour:
	default:
		return nil, fmt.Errorf("sim: unknown charger policy %q", c.Policy)
	}
	if p.N() == 0 {
		return nil, errors.New("sim: charger needs at least one post")
	}
	return &chargerState{cfg: c, target: -1}, nil
}

// init positions the charger on first use (deferred so the simulator can
// construct the state before the problem geometry is consulted).
func (c *chargerState) initPosition(s *Simulator) {
	if c.cfg.StartAt != nil {
		c.pos = *c.cfg.StartAt
	} else {
		c.pos = s.p.BS
	}
	c.cfg.StartAt = &c.pos // mark initialised
}

// step runs one charger round: pick/keep a target, travel toward it, and
// charge once on site.
func (c *chargerState) step(s *Simulator) {
	if c.cfg.StartAt == nil {
		c.initPosition(s)
	}
	if c.target >= 0 && c.doneWith(s, c.target) {
		s.claimed[c.target] = false
		c.target = -1
	}
	if c.target < 0 {
		c.target = c.pickTarget(s)
		if c.target < 0 {
			return // nothing needs charge
		}
		s.claimed[c.target] = true
	}
	dest := s.p.Posts[c.target]
	dist := geom.Dist(c.pos, dest)
	if dist > 1e-9 {
		step := c.cfg.SpeedPerRound
		if step >= dist {
			c.pos = dest
			s.metrics.ChargerDistance += dist
			// Arrived mid-round; charging starts next round.
			return
		}
		c.pos = geom.Lerp(c.pos, dest, step/dist)
		s.metrics.ChargerDistance += step
		return
	}
	c.charge(s, c.target)
}

// doneWith reports whether the post no longer needs charging (all usable
// nodes at FillToFrac, or no usable nodes).
func (c *chargerState) doneWith(s *Simulator, post int) bool {
	pp := &s.posts[post]
	round := s.metrics.Rounds
	if pp.UsableCount(round) == 0 {
		return true
	}
	return pp.minEnergyFrac(s.cfg.BatteryCapacity, round) >= c.cfg.FillToFrac
}

// pickTarget dispatches on the configured policy. Returns -1 when every
// post is comfortable.
func (c *chargerState) pickTarget(s *Simulator) int {
	switch c.cfg.Policy {
	case PolicyRoundRobin:
		return c.pickRoundRobin(s)
	case PolicyTour:
		return c.pickTour(s)
	default:
		return c.pickUrgent(s)
	}
}

// pickTour follows the planned route, replanning a fresh 2-opt tour over
// all below-target posts whenever the route runs dry.
func (c *chargerState) pickTour(s *Simulator) int {
	// Drain already-satisfied (or claimed-by-peers) stops from the
	// current route.
	for len(c.route) > 0 {
		next := c.route[0]
		c.route = c.route[1:]
		if !c.doneWith(s, next) && !s.claimed[next] {
			return next
		}
	}
	// Replan over every unclaimed post currently in need.
	var needy []int
	var stops []geom.Point
	round := s.metrics.Rounds
	for i := range s.posts {
		pp := &s.posts[i]
		if pp.UsableCount(round) == 0 || s.claimed[i] {
			continue
		}
		if pp.minEnergyFrac(s.cfg.BatteryCapacity, round) < c.cfg.TargetFrac {
			needy = append(needy, i)
			stops = append(stops, s.p.Posts[i])
		}
	}
	if len(needy) == 0 {
		return -1
	}
	plan, err := tour.PlanTour(c.pos, stops)
	if err != nil {
		return -1 // unreachable given non-empty stops; stay idle defensively
	}
	c.route = c.route[:0]
	for _, idx := range plan.Order {
		c.route = append(c.route, needy[idx])
	}
	next := c.route[0]
	c.route = c.route[1:]
	return next
}

// pickRoundRobin scans posts cyclically from the cursor and takes the
// first one below the target fraction.
func (c *chargerState) pickRoundRobin(s *Simulator) int {
	n := len(s.posts)
	round := s.metrics.Rounds
	for step := 0; step < n; step++ {
		i := (c.rrCursor + step) % n
		pp := &s.posts[i]
		if pp.UsableCount(round) == 0 || s.claimed[i] {
			continue
		}
		if pp.minEnergyFrac(s.cfg.BatteryCapacity, round) < c.cfg.TargetFrac {
			c.rrCursor = (i + 1) % n
			return i
		}
	}
	return -1
}

// pickUrgent selects the most urgent post: the one with the smallest
// projected time-to-empty (remaining alive energy divided by per-round
// drain), among posts below the target fraction.
func (c *chargerState) pickUrgent(s *Simulator) int {
	best := -1
	bestUrgency := math.Inf(1)
	round := s.metrics.Rounds
	for i := range s.posts {
		pp := &s.posts[i]
		if pp.UsableCount(round) == 0 || s.claimed[i] {
			continue
		}
		if pp.minEnergyFrac(s.cfg.BatteryCapacity, round) >= c.cfg.TargetFrac {
			continue
		}
		var remaining float64
		for j := range pp.Nodes {
			if pp.Nodes[j].usableAt(round) {
				remaining += pp.Nodes[j].Energy
			}
		}
		drain := s.drain[i]
		if drain <= 0 {
			drain = 1e-12
		}
		urgency := remaining / drain // rounds until the post starves
		if urgency < bestUrgency {
			best, bestUrgency = i, urgency
		}
	}
	return best
}

// charge performs one round of charging at `post`. Dissemination y gives
// every alive node k(m)*eta/m ... — per the paper's model, each of the m
// co-located nodes receives eta per unit disseminated (network efficiency
// k(m)*eta with k(m)=m for the linear default). Generalised to the
// configured gain: per-node share is k(m)*eta/m per unit. The charger
// modulates its power so no energy is wasted on already-full batteries
// beyond per-node clipping.
func (c *chargerState) charge(s *Simulator, post int) {
	pp := &s.posts[post]
	round := s.metrics.Rounds
	usable := pp.UsableCount(round)
	if usable == 0 {
		return
	}
	effTotal, err := s.p.Charging.NetworkEfficiency(usable)
	if err != nil {
		return
	}
	perNodeEff := effTotal / float64(usable)
	// Largest per-node deficit determines the useful dissemination.
	capacity := s.cfg.BatteryCapacity
	maxDeficit := 0.0
	for j := range pp.Nodes {
		if !pp.Nodes[j].usableAt(round) {
			continue
		}
		if d := capacity - pp.Nodes[j].Energy; d > maxDeficit {
			maxDeficit = d
		}
	}
	y := math.Min(c.cfg.PowerPerRound, maxDeficit/perNodeEff)
	if y <= 0 {
		return
	}
	s.metrics.ChargerEnergy += y
	for j := range pp.Nodes {
		if !pp.Nodes[j].usableAt(round) {
			continue
		}
		gain := y * perNodeEff
		room := capacity - pp.Nodes[j].Energy
		if gain > room {
			s.metrics.ChargerWasted += gain - room // received-energy nJ that found no room
			gain = room
		}
		pp.Nodes[j].Energy += gain
		s.metrics.energyStored += gain
	}
	if c.doneWith(s, post) {
		s.metrics.ChargerVisits++
	}
}
