package sim

import (
	"math"
	"math/rand"
	"testing"

	"wrsn/internal/charging"
	"wrsn/internal/energy"
	"wrsn/internal/geom"
	"wrsn/internal/model"
	"wrsn/internal/solver"
)

// testNetwork builds a solved random instance ready for simulation.
func testNetwork(t testing.TB, seed int64, side float64, n, m int) (*model.Problem, model.Solution) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	field := geom.Square(side)
	for attempt := 0; attempt < 100; attempt++ {
		p := &model.Problem{
			Posts:    field.RandomPoints(rng, n),
			BS:       field.Corner(),
			Nodes:    m,
			Energy:   energy.Default(),
			Charging: charging.Default(),
		}
		if p.Validate() != nil {
			continue
		}
		res, err := solver.IterativeRFH(p)
		if err != nil {
			t.Fatalf("IterativeRFH: %v", err)
		}
		return p, res.Solution
	}
	t.Fatalf("no connected instance after 100 attempts (seed=%d)", seed)
	return nil, model.Solution{}
}

func TestEmpiricalCostConvergesToAnalytic(t *testing.T) {
	p, sol := testNetwork(t, 3, 300, 20, 80)
	s, err := New(Config{
		Problem:  p,
		Solution: sol,
		Charger: &ChargerConfig{
			// Generous charger: it can always keep up, so the long-run
			// dissemination tracks consumption exactly.
			PowerPerRound: 1e9,
			SpeedPerRound: 1e6, // effectively teleports: isolates energy accounting
			FillToFrac:    0.95,
			TargetFrac:    0.90,
		},
		PacketBits: 1000,
		// Start inside the charger's working band so the measurement
		// window carries no initial-surplus bias.
		InitialChargeFrac: 0.93,
		Seed:              1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const rounds = 20000
	metrics, err := s.Run(rounds)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if metrics.ReportsLost != 0 {
		t.Fatalf("lost %d reports with an over-provisioned charger", metrics.ReportsLost)
	}
	analytic, err := s.AnalyticCostPerBitRound()
	if err != nil {
		t.Fatalf("analytic: %v", err)
	}
	empirical := metrics.EmpiricalCostPerBitRound(1000)
	rel := math.Abs(empirical-analytic) / analytic
	t.Logf("analytic=%.3f nJ/bit-round empirical=%.3f rel=%.3f%% wasted=%.1f nJ",
		analytic, empirical, rel*100, metrics.ChargerWasted)
	// The charger tops up to FillToFrac (not 100%), so dissemination can
	// lag consumption by at most the batteries' working band; with 5000
	// rounds and ~2000-round batteries a 5% tolerance is conservative.
	if rel > 0.05 {
		t.Errorf("empirical cost %.3f deviates %.1f%% from analytic %.3f", empirical, rel*100, analytic)
	}
}

func TestNetworkDiesWithoutCharger(t *testing.T) {
	p, sol := testNetwork(t, 4, 250, 15, 45)
	s, err := New(Config{Problem: p, Solution: sol, PacketBits: 1000, Seed: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	metrics, err := s.Run(3 * DefaultBatteryRounds)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if metrics.ReportsLost == 0 {
		t.Fatal("network survived indefinitely without any charger")
	}
	if metrics.FirstLossRound < 0 {
		t.Fatal("reports lost but FirstLossRound unset")
	}
	// The busiest post drains a battery in <= DefaultBatteryRounds per
	// node; with rotation the post survives roughly count*battery rounds.
	if metrics.FirstLossRound > 2*DefaultBatteryRounds*sol.Deploy.Max() {
		t.Errorf("first loss at round %d is implausibly late", metrics.FirstLossRound)
	}
	if metrics.ChargerEnergy != 0 {
		t.Errorf("charger disabled but disseminated %.1f nJ", metrics.ChargerEnergy)
	}
}

func TestRotationBalancesResidualEnergy(t *testing.T) {
	p, sol := testNetwork(t, 5, 250, 12, 60)
	s, err := New(Config{Problem: p, Solution: sol, PacketBits: 1000, Seed: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(500); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, post := range s.Posts() {
		if len(post.Nodes) < 2 {
			continue
		}
		min, max := math.Inf(1), math.Inf(-1)
		for _, nd := range post.Nodes {
			min = math.Min(min, nd.Energy)
			max = math.Max(max, nd.Energy)
		}
		// Rotation keeps nodes within one round's drain of each other.
		spread := max - min
		perRound := s.drain[i]
		if spread > perRound+1e-6 {
			t.Errorf("post %d residual spread %.1f nJ exceeds one round's drain %.1f nJ", i, spread, perRound)
		}
	}
}

func TestFailureInjectionDegradesDelivery(t *testing.T) {
	p, sol := testNetwork(t, 6, 200, 15, 45)
	run := func(failureRate float64) *Metrics {
		s, err := New(Config{
			Problem:         p,
			Solution:        sol,
			PacketBits:      1000,
			FailurePerRound: failureRate,
			Seed:            4,
			Charger: &ChargerConfig{
				PowerPerRound: 1e9,
				SpeedPerRound: 1e6,
			},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		m, err := s.Run(4000)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m
	}
	healthy := run(0)
	// FailurePerRound is per-node: 0.002 kills roughly one node every 11
	// rounds across 45 nodes, stripping posts well within 4000 rounds.
	failing := run(0.002)
	if healthy.DeliveryRatio() != 1 {
		t.Fatalf("healthy run delivery ratio %.3f, want 1", healthy.DeliveryRatio())
	}
	if failing.NodeFailures == 0 {
		t.Fatal("failure injection produced no failures")
	}
	if failing.DeliveryRatio() >= 1 {
		t.Errorf("with %d node failures delivery stayed perfect (%d posts, %d nodes); expected degradation",
			failing.NodeFailures, p.N(), p.Nodes)
	}
	t.Logf("healthy=%.3f failing=%.3f (failures=%d)", healthy.DeliveryRatio(), failing.DeliveryRatio(), failing.NodeFailures)
}

func TestChargerTravelsFiniteDistance(t *testing.T) {
	p, sol := testNetwork(t, 7, 200, 10, 40)
	s, err := New(Config{
		Problem:  p,
		Solution: sol,
		Charger: &ChargerConfig{
			PowerPerRound: 5e7,
			SpeedPerRound: 10,
		},
		PacketBits: 1000,
		Seed:       5,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := s.Run(3000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.ChargerDistance <= 0 {
		t.Error("charger never moved despite finite speed")
	}
	if m.ChargerVisits == 0 {
		t.Error("charger completed no charging sessions")
	}
	t.Logf("distance=%.1fm visits=%d delivery=%.3f", m.ChargerDistance, m.ChargerVisits, m.DeliveryRatio())
}

// TestEnergyConservation: the battery ledger balances exactly in every
// configuration — with charger, with fleet, with failures, without
// charger. Silent energy leaks are the classic simulator bug; this pins
// them to floating-point noise.
func TestEnergyConservation(t *testing.T) {
	p, sol := testNetwork(t, 19, 200, 12, 48)
	configs := map[string]Config{
		"no charger": {Problem: p, Solution: sol, Seed: 1},
		"charged": {Problem: p, Solution: sol, Seed: 1,
			Charger: &ChargerConfig{PowerPerRound: 5e6, SpeedPerRound: 10}},
		"fleet with failures": {Problem: p, Solution: sol, Seed: 1,
			Charger:         &ChargerConfig{PowerPerRound: 2e6, SpeedPerRound: 8, Policy: PolicyTour},
			Chargers:        2,
			FailurePerRound: 0.01},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(3000); err != nil {
				t.Fatal(err)
			}
			audit := s.AuditEnergy()
			scale := audit.InitialStored + audit.Received
			if rel := math.Abs(audit.Imbalance()) / scale; rel > 1e-9 {
				t.Errorf("energy imbalance %.3f nJ (%.2e relative): %+v",
					audit.Imbalance(), rel, audit)
			}
			if audit.Consumed <= 0 || audit.Residual <= 0 {
				t.Errorf("degenerate audit: %+v", audit)
			}
		})
	}
}

// TestLinkLossInflatesEnergy: with loss probability p and ample retries,
// expected transmissions per report are 1/(1-p), so network transmit
// energy inflates accordingly while receive energy does not.
func TestLinkLossInflatesEnergy(t *testing.T) {
	p, sol := testNetwork(t, 20, 200, 12, 48)
	run := func(loss float64) *Metrics {
		s, err := New(Config{
			Problem:      p,
			Solution:     sol,
			LinkLossProb: loss,
			MaxRetries:   64, // effectively unbounded: isolates the 1/(1-p) factor
			Charger:      &ChargerConfig{PowerPerRound: 1e9, SpeedPerRound: 1e6},
			Seed:         3,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run(4000)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	clean := run(0)
	lossy := run(0.2)
	if clean.DeliveryRatio() != 1 {
		t.Fatalf("lossless run lost reports")
	}
	// With 64 retries at p=0.2, per-hop failure is ~2e-45: delivery stays 1.
	if lossy.DeliveryRatio() < 0.9999 {
		t.Errorf("ample retries should deliver everything, got %.6f", lossy.DeliveryRatio())
	}
	// Transmit energy inflates by 1/(1-p) = 1.25; receive energy is
	// unchanged, so the total inflation sits between 1 and 1.25.
	ratio := lossy.NetworkEnergy / clean.NetworkEnergy
	if ratio < 1.05 || ratio > 1.25 {
		t.Errorf("lossy/clean energy ratio %.4f outside (1.05, 1.25)", ratio)
	}
	t.Logf("energy inflation at 20%% loss: %.4f", ratio)
}

// TestLinkLossDropsReports: with a tiny retry budget, reports do get lost.
func TestLinkLossDropsReports(t *testing.T) {
	p, sol := testNetwork(t, 21, 200, 10, 30)
	s, err := New(Config{
		Problem:      p,
		Solution:     sol,
		LinkLossProb: 0.5,
		MaxRetries:   1,
		Charger:      &ChargerConfig{PowerPerRound: 1e9, SpeedPerRound: 1e6},
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	// One attempt at 50% loss per hop: multi-hop delivery collapses.
	if m.DeliveryRatio() > 0.6 {
		t.Errorf("delivery %.3f implausibly high for 50%% single-attempt loss", m.DeliveryRatio())
	}
	if m.ReportsLost == 0 {
		t.Error("no reports lost despite heavy link loss")
	}
}

func TestLinkLossValidation(t *testing.T) {
	p, sol := testNetwork(t, 22, 200, 8, 24)
	if _, err := New(Config{Problem: p, Solution: sol, LinkLossProb: 1}); err == nil {
		t.Error("loss probability 1 accepted")
	}
	if _, err := New(Config{Problem: p, Solution: sol, LinkLossProb: -0.1}); err == nil {
		t.Error("negative loss accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	p, sol := testNetwork(t, 24, 200, 8, 24)
	charger := &ChargerConfig{PowerPerRound: 1e7, SpeedPerRound: 10}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative chargers", func(c *Config) { c.Charger = charger; c.Chargers = -1 }},
		{"fleet without charger config", func(c *Config) { c.Chargers = 2 }},
		{"negative retry cap", func(c *Config) { c.MaxRetries = -1 }},
		{"lossy links without retry cap", func(c *Config) { c.LinkLossProb = 0.1 }},
		{"initial charge below zero", func(c *Config) { c.InitialChargeFrac = -0.5 }},
		{"initial charge above one", func(c *Config) { c.InitialChargeFrac = 1.5 }},
		{"failure rate below zero", func(c *Config) { c.FailurePerRound = -0.1 }},
		{"failure rate above one", func(c *Config) { c.FailurePerRound = 1.1 }},
		{"negative repair latency", func(c *Config) { c.Repair = &RepairConfig{LatencyRounds: -1} }},
		{"nil problem", func(c *Config) { c.Problem = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Problem: p, Solution: sol}
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Errorf("invalid config accepted")
			}
		})
	}
	// The boundary values stay accepted.
	ok := Config{Problem: p, Solution: sol, InitialChargeFrac: 1,
		LinkLossProb: 0.1, MaxRetries: 1, Charger: charger, Chargers: 1}
	if _, err := New(ok); err != nil {
		t.Errorf("valid boundary config rejected: %v", err)
	}
}

func TestHeterogeneousRatesRejected(t *testing.T) {
	p, sol := testNetwork(t, 23, 200, 8, 24)
	p.ReportRates = make([]float64, p.N())
	for i := range p.ReportRates {
		p.ReportRates[i] = float64(i%3) + 0.5
	}
	if _, err := New(Config{Problem: p, Solution: sol}); err == nil {
		t.Error("round-based simulator accepted heterogeneous rates")
	}
}
