package sim

import (
	"context"
	"testing"
)

func benchConfig(b *testing.B, kind StepperKind, charger bool) Config {
	b.Helper()
	p, sol := testNetwork(b, 21, 250, 15, 60)
	cfg := Config{Problem: p, Solution: sol, Seed: 1, Stepper: kind}
	if charger {
		cfg.Charger = &ChargerConfig{PowerPerRound: 1e9, SpeedPerRound: 1e6}
	}
	return cfg
}

// BenchmarkSimRound prices one round of the per-round reference stepper
// on a healthy charged network — the cost the event core's fast-forward
// path amortises away.
func BenchmarkSimRound(b *testing.B) {
	s, err := New(benchConfig(b, StepperExact, true))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
}

// BenchmarkSimFastForward prices 1000 rounds of the event core in steady
// state (healthy network, charger servicing it). CI gates this benchmark
// at 0 allocs/op: the span machinery must run entirely on persistent
// buffers.
func BenchmarkSimFastForward(b *testing.B) {
	s, err := New(benchConfig(b, StepperEvent, true))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := s.runEvent(ctx, 2000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.runEvent(ctx, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimLifetime prices a full uncharged lifetime run — network
// drains to depletion — under both cores. The event core crosses the
// same rounds in a handful of spans.
func BenchmarkSimLifetime(b *testing.B) {
	for _, kind := range []StepperKind{StepperExact, StepperEvent} {
		b.Run(string(kind), func(b *testing.B) {
			cfg := benchConfig(b, kind, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(2 * DefaultBatteryRounds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
