package engine

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"wrsn/internal/geom"
	"wrsn/internal/model"
	"wrsn/internal/placement"
	"wrsn/internal/solver"
)

// TestRegistryKindCoverage runs every registered solver against one
// instance of every problem family: a solver must either solve the
// instance (matching its declared kinds) or reject it with a typed
// UnsupportedError — never panic, hang, or mis-solve. This is the
// registry-level contract behind -list-solvers: the declared kind list
// and the SolveFunc's actual behaviour cannot drift apart.
func TestRegistryKindCoverage(t *testing.T) {
	deployment, err := testProblem(rand.New(rand.NewSource(17)), 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	place, err := placement.Generate(rand.New(rand.NewSource(17)), placement.GenSpec{
		Field:        geom.Square(200),
		Posts:        10,
		Sites:        placement.DefaultSiteSpec(),
		DemandMean:   1.0,
		DemandJitter: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	instances := map[string]model.Instance{
		model.KindDeployment: deployment,
		model.KindPlacement:  place,
	}

	infos := Infos()
	if len(infos) == 0 {
		t.Fatal("registry is empty")
	}
	for _, info := range infos {
		accepts := map[string]bool{}
		for _, k := range info.Kinds {
			if _, known := instances[k]; !known {
				t.Errorf("solver %q declares unknown kind %q", info.Name, k)
			}
			accepts[k] = true
		}
		fn := MustSolver(info.Name)
		for kind, inst := range instances {
			res, err := fn(context.Background(), inst)
			if !accepts[kind] {
				if err == nil {
					t.Errorf("solver %q accepted undeclared kind %q", info.Name, kind)
				} else if !errors.Is(err, solver.ErrUnsupportedInstance) {
					t.Errorf("solver %q rejected kind %q with untyped error: %v", info.Name, kind, err)
				}
				continue
			}
			if err != nil {
				t.Errorf("solver %q failed on declared kind %q: %v", info.Name, kind, err)
				continue
			}
			if math.IsNaN(res.Cost) || math.IsInf(res.Cost, 0) || res.Cost < 0 {
				t.Errorf("solver %q on %q returned cost %g", info.Name, kind, res.Cost)
			}
			switch kind {
			case model.KindDeployment:
				if err := model.Deployment(res.Deploy).Validate(deployment); err != nil {
					t.Errorf("solver %q returned invalid deployment: %v", info.Name, err)
				}
			default:
				if err := inst.ValidateSolution(res.Vector); err != nil {
					t.Errorf("solver %q returned invalid %q solution %v: %v", info.Name, kind, res.Vector, err)
				}
			}
		}
	}
}
