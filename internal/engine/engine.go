// Package engine is the unified experiment engine behind every figure
// of the paper reproduction and its extensions: a registry of named,
// context-aware solvers and a declarative sweep runner.
//
// A Sweep describes a (point × seed × algorithm) grid — the shape shared
// by all of the paper's Section VI evaluations and the extension
// studies: an x-axis of problem configurations, a number of random
// instances per configuration, and a set of labelled algorithms run on
// every instance. Run executes the grid on a worker pool and assembles
// the resulting Figure.
//
// # Determinism
//
// Results are bit-identical at any worker count. Each (point, seed)
// instance is generated from its own rand.Rand seeded with
//
//	BaseSeed + SeedStride*point + seed
//
// (SeedStride defaults to 0: every x-axis position sees the same
// instance sequence, the paper's methodology for monotone sweep curves),
// each cell's computation depends only on its instance, and aggregation
// runs in declaration order after all cells finish. Scheduling can
// change only wall time, never values.
//
// # Cancellation and observability
//
// The context passed to Run flows into every cell; cancelling it aborts
// in-flight solvers at their next cancellation point. RunConfig can
// additionally bound each cell with a timeout, observe cell lifecycle
// events through a ProgressFunc, and share a Limiter between
// concurrently running sweeps so their combined parallelism stays
// bounded.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wrsn/internal/model"
	"wrsn/internal/stats"
)

// Generator builds one problem instance from a deterministically seeded
// RNG. It must consume randomness only from rng so that instances depend
// solely on the cell's seed.
type Generator func(rng *rand.Rand) (*model.Problem, error)

// Point is one x-axis position of a sweep: the plotted X value and the
// generator producing its problem instances.
type Point struct {
	X float64
	// Label names the point in progress events, and becomes the series
	// label for Vector outputs (e.g. Fig. 6's "400 nodes").
	Label string
	// Seeds overrides Sweep.Seeds for this point when > 0 (e.g. a
	// deterministic grid layout needs exactly one).
	Seeds int
	Gen   Generator
}

// SeriesSpec declares one output series of an algorithm.
type SeriesSpec struct {
	// Label names the series (ignored for Vector outputs, which take
	// their per-point labels from Point.Label).
	Label string
	// Unit annotates table headers ("" = the figure default, "-" = none).
	Unit string
	// CI attaches 95% confidence half-widths to the series.
	CI bool
	// Vector marks an output that spans the whole X axis (one value per
	// X position per cell, e.g. per-iteration convergence costs). A
	// Vector output must be its algorithm's only output, and the Sweep
	// must set X explicitly; it yields one series per point, averaged
	// elementwise over seeds.
	Vector bool
}

// Instance is one generated problem handed to an algorithm, along with
// the cell coordinates an algorithm may need for derived seeding (e.g.
// simulator seeds).
type Instance struct {
	Problem *model.Problem
	// Point and Seed are the cell's grid coordinates.
	Point, Seed int
	// X is the point's plotted value.
	X float64
	// BaseSeed is the sweep's base seed; InstanceSeed is the RNG seed
	// this instance was generated from (BaseSeed + SeedStride*Point +
	// Seed).
	BaseSeed, InstanceSeed int64
}

// CellResult is what an algorithm returns for one cell.
type CellResult struct {
	// Values holds one value per Output (or one per X position for a
	// Vector output).
	Values []float64
	// Evaluations optionally reports the solver's inner-evaluation
	// count for the timing summary.
	Evaluations int64
}

// Algorithm is one labelled entry of a sweep: a computation run on
// every (point, seed) instance, producing one value per declared output.
// A NaN value marks "no observation for this cell" and is skipped by
// aggregation (e.g. travel-per-visit when no visit completed).
type Algorithm struct {
	Label   string
	Outputs []SeriesSpec
	Run     func(ctx context.Context, inst *Instance) (CellResult, error)
}

// Sweep declaratively describes one experiment grid.
type Sweep struct {
	// Figure metadata.
	ID, Title, XLabel, YLabel string
	// X optionally overrides the figure's x-axis (required when any
	// output is a Vector; defaults to the points' X values otherwise).
	X []float64

	Points []Point
	// Seeds is the number of random instances per point (>= 1).
	Seeds int
	// BaseSeed anchors the deterministic seed scheme.
	BaseSeed int64
	// SeedStride decorrelates instances across points: instance seed =
	// BaseSeed + SeedStride*point + seed. 0 shares the instance
	// sequence across all points (the paper's methodology).
	SeedStride int64

	Algorithms []Algorithm
}

// Limiter bounds cell concurrency across sweeps: sweeps running in
// parallel share one Limiter so their combined active cells never
// exceed its size.
type Limiter chan struct{}

// NewLimiter returns a Limiter admitting n concurrent cells.
func NewLimiter(n int) Limiter {
	if n < 1 {
		n = 1
	}
	return make(Limiter, n)
}

func (l Limiter) acquire() { l <- struct{}{} }
func (l Limiter) release() { <-l }

// RunConfig tunes sweep execution. The zero value runs with GOMAXPROCS
// workers, no per-cell timeout and no observers.
type RunConfig struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS(0), 1 is
	// fully sequential. Results are identical at any value.
	Workers int
	// CellTimeout bounds each cell's algorithm run (0 = unbounded). A
	// cell exceeding it fails the sweep with context.DeadlineExceeded.
	CellTimeout time.Duration
	// Progress observes cell lifecycle events (may be nil).
	Progress ProgressFunc
	// Limiter optionally shares a concurrency budget with other sweeps
	// running at the same time (nil = this sweep's workers only).
	Limiter Limiter
}

// Result is a finished sweep: the assembled figure, the raw per-cell
// values for custom post-processing, and the performance summary.
type Result struct {
	Figure *Figure
	// Raw is indexed [algorithm][point][seed][output] (for Vector
	// outputs the last index spans the X axis).
	Raw [][][][]float64
	// Durations is each cell's algorithm wall time, indexed
	// [algorithm][point][seed]. Instance generation is excluded.
	Durations [][][]time.Duration
	// Evaluations is the summed solver-evaluation count.
	Evaluations int64
	Timing      Timing
}

// cell is one unit of work.
type cell struct{ point, seed, algo int }

// instSlot lazily generates one (point, seed) instance exactly once,
// whichever cell touches it first.
type instSlot struct {
	once sync.Once
	inst *Instance
	err  error
}

type runner struct {
	sw  *Sweep
	cfg RunConfig

	insts     [][]*instSlot
	raw       [][][][]float64
	durations [][][]time.Duration
	evals     [][][]int64
	errs      []error // per cell index

	cells []cell
	done  atomic.Int64

	mu     sync.Mutex // serialises progress callbacks
	cancel context.CancelFunc
}

// pointSeeds returns the effective seed count of point pi.
func (sw *Sweep) pointSeeds(pi int) int {
	if s := sw.Points[pi].Seeds; s > 0 {
		return s
	}
	return sw.Seeds
}

// validate rejects malformed sweeps before any work starts.
func (sw *Sweep) validate() error {
	if sw.ID == "" {
		return errors.New("engine: sweep needs an ID")
	}
	if len(sw.Points) == 0 {
		return fmt.Errorf("engine: sweep %s has no points", sw.ID)
	}
	if len(sw.Algorithms) == 0 {
		return fmt.Errorf("engine: sweep %s has no algorithms", sw.ID)
	}
	for pi, pt := range sw.Points {
		if pt.Gen == nil {
			return fmt.Errorf("engine: sweep %s point %d has no generator", sw.ID, pi)
		}
		if sw.pointSeeds(pi) < 1 {
			return fmt.Errorf("engine: sweep %s point %d has no seeds", sw.ID, pi)
		}
	}
	for _, a := range sw.Algorithms {
		if a.Run == nil || len(a.Outputs) == 0 {
			return fmt.Errorf("engine: sweep %s algorithm %q needs Run and at least one output", sw.ID, a.Label)
		}
		for _, spec := range a.Outputs {
			if spec.Vector {
				if len(a.Outputs) != 1 {
					return fmt.Errorf("engine: sweep %s algorithm %q: a Vector output must be the only output", sw.ID, a.Label)
				}
				if len(sw.X) == 0 {
					return fmt.Errorf("engine: sweep %s algorithm %q: Vector outputs need an explicit X axis", sw.ID, a.Label)
				}
			}
		}
	}
	if len(sw.X) > 0 && !sw.vectorOnly() && len(sw.X) != len(sw.Points) {
		return fmt.Errorf("engine: sweep %s: explicit X length %d does not match %d points for scalar outputs",
			sw.ID, len(sw.X), len(sw.Points))
	}
	return nil
}

// vectorOnly reports whether every output of every algorithm is a
// Vector (the only configuration where X may diverge from the points).
func (sw *Sweep) vectorOnly() bool {
	for _, a := range sw.Algorithms {
		for _, spec := range a.Outputs {
			if !spec.Vector {
				return false
			}
		}
	}
	return true
}

// Run executes the sweep and assembles its figure. Results are
// bit-identical at any cfg.Workers; cancelling ctx aborts in-flight
// cells and returns the context's error.
func Run(ctx context.Context, sw *Sweep, cfg RunConfig) (*Result, error) {
	if err := sw.validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	r := &runner{sw: sw, cfg: cfg}
	r.insts = make([][]*instSlot, len(sw.Points))
	for pi := range sw.Points {
		r.insts[pi] = make([]*instSlot, sw.pointSeeds(pi))
		for si := range r.insts[pi] {
			r.insts[pi][si] = new(instSlot)
		}
	}
	r.raw = make([][][][]float64, len(sw.Algorithms))
	r.durations = make([][][]time.Duration, len(sw.Algorithms))
	r.evals = make([][][]int64, len(sw.Algorithms))
	for ai := range sw.Algorithms {
		r.raw[ai] = make([][][]float64, len(sw.Points))
		r.durations[ai] = make([][]time.Duration, len(sw.Points))
		r.evals[ai] = make([][]int64, len(sw.Points))
		for pi := range sw.Points {
			r.raw[ai][pi] = make([][]float64, sw.pointSeeds(pi))
			r.durations[ai][pi] = make([]time.Duration, sw.pointSeeds(pi))
			r.evals[ai][pi] = make([]int64, sw.pointSeeds(pi))
		}
	}
	// Point-major, then seed, then algorithm: the sequential order the
	// hand-rolled loops used, so workers=1 replays it exactly.
	for pi := range sw.Points {
		for si := 0; si < sw.pointSeeds(pi); si++ {
			for ai := range sw.Algorithms {
				r.cells = append(r.cells, cell{point: pi, seed: si, algo: ai})
			}
		}
	}
	r.errs = make([]error, len(r.cells))

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.cancel = cancel

	start := time.Now()
	if workers > len(r.cells) {
		workers = len(r.cells)
	}
	if workers <= 1 {
		for idx := range r.cells {
			r.runCell(runCtx, idx)
			// Sequential runs stop at the first failure: nothing after
			// it can succeed once the context is cancelled anyway.
			if r.errs[idx] != nil {
				break
			}
		}
	} else {
		queue := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range queue {
					r.runCell(runCtx, idx)
				}
			}()
		}
		for idx := range r.cells {
			queue <- idx
		}
		close(queue)
		wg.Wait()
	}
	wall := time.Since(start)

	if err := r.firstError(); err != nil {
		return nil, err
	}

	fig, err := r.figure()
	if err != nil {
		return nil, err
	}
	var evaluations int64
	for ai := range r.evals {
		for pi := range r.evals[ai] {
			for _, e := range r.evals[ai][pi] {
				evaluations += e
			}
		}
	}
	var active time.Duration
	for ai := range r.durations {
		for pi := range r.durations[ai] {
			for _, d := range r.durations[ai][pi] {
				active += d
			}
		}
	}
	return &Result{
		Figure:      fig,
		Raw:         r.raw,
		Durations:   r.durations,
		Evaluations: evaluations,
		Timing:      NewTiming(sw.ID, wall, active, len(r.cells), evaluations, workers),
	}, nil
}

// instance returns the lazily generated (point, seed) instance.
func (r *runner) instance(pi, si int) (*Instance, error) {
	slot := r.insts[pi][si]
	slot.once.Do(func() {
		seed := r.sw.BaseSeed + r.sw.SeedStride*int64(pi) + int64(si)
		rng := rand.New(rand.NewSource(seed))
		p, err := r.sw.Points[pi].Gen(rng)
		if err != nil {
			slot.err = err
			return
		}
		slot.inst = &Instance{
			Problem:      p,
			Point:        pi,
			Seed:         si,
			X:            r.sw.Points[pi].X,
			BaseSeed:     r.sw.BaseSeed,
			InstanceSeed: seed,
		}
	})
	return slot.inst, slot.err
}

// runCell executes one cell, recording its values, duration and error.
func (r *runner) runCell(ctx context.Context, idx int) {
	c := r.cells[idx]
	algo := &r.sw.Algorithms[c.algo]
	if r.cfg.Limiter != nil {
		r.cfg.Limiter.acquire()
		defer r.cfg.Limiter.release()
	}

	finish := func(d time.Duration, evals int64, err error) {
		if err != nil {
			r.errs[idx] = fmt.Errorf("engine: %s: %s at point %d (x=%v) seed %d: %w",
				r.sw.ID, algo.Label, c.point, r.sw.Points[c.point].X, c.seed, err)
			r.cancel() // no later cell can change the outcome; stop early
		}
		r.emit(Event{
			Kind: CellFinished, Sweep: r.sw.ID,
			Point: c.point, Seed: c.seed, Algorithm: algo.Label,
			Done: int(r.done.Add(1)), Total: len(r.cells),
			Duration: d, Evaluations: evals, Err: r.errs[idx],
		})
	}

	if err := ctx.Err(); err != nil {
		finish(0, 0, err)
		return
	}
	inst, err := r.instance(c.point, c.seed)
	if err != nil {
		finish(0, 0, err)
		return
	}

	r.emit(Event{Kind: CellStarted, Sweep: r.sw.ID, Point: c.point, Seed: c.seed,
		Algorithm: algo.Label, Total: len(r.cells)})
	cellCtx := ctx
	var cancelCell context.CancelFunc
	if r.cfg.CellTimeout > 0 {
		cellCtx, cancelCell = context.WithTimeout(ctx, r.cfg.CellTimeout)
	}
	start := time.Now()
	res, err := algo.Run(cellCtx, inst)
	d := time.Since(start)
	if cancelCell != nil {
		cancelCell()
	}
	if err == nil {
		want := len(algo.Outputs)
		if algo.Outputs[0].Vector {
			want = len(r.sw.X)
		}
		if len(res.Values) != want {
			err = fmt.Errorf("algorithm returned %d values, want %d", len(res.Values), want)
		}
	}
	if err == nil {
		r.raw[c.algo][c.point][c.seed] = res.Values
		r.durations[c.algo][c.point][c.seed] = d
		r.evals[c.algo][c.point][c.seed] = res.Evaluations
	}
	finish(d, res.Evaluations, err)
}

// emit serialises progress callbacks.
func (r *runner) emit(ev Event) {
	if r.cfg.Progress == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfg.Progress(ev)
}

// firstError picks the sweep's reported error deterministically: the
// lowest-indexed cell error that is not a secondary cancellation, so
// the same failure is reported at any worker count.
func (r *runner) firstError() error {
	var firstAny error
	for _, err := range r.errs {
		if err == nil {
			continue
		}
		if firstAny == nil {
			firstAny = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return firstAny
}

// figure assembles the sweep's Figure from the recorded cell values, in
// declaration order (algorithms, then outputs, then — for Vector
// outputs — points).
func (r *runner) figure() (*Figure, error) {
	sw := r.sw
	fig := &Figure{ID: sw.ID, Title: sw.Title, XLabel: sw.XLabel, YLabel: sw.YLabel}
	if len(sw.X) > 0 {
		fig.X = append(fig.X, sw.X...)
	} else {
		for _, pt := range sw.Points {
			fig.X = append(fig.X, pt.X)
		}
	}
	for ai := range sw.Algorithms {
		algo := &sw.Algorithms[ai]
		for k, spec := range algo.Outputs {
			if spec.Vector {
				for pi := range sw.Points {
					mean, err := stats.MeanSeries(r.raw[ai][pi])
					if err != nil {
						return nil, fmt.Errorf("engine: %s: %s point %d: %w", sw.ID, algo.Label, pi, err)
					}
					fig.Series = append(fig.Series, Series{Label: sw.Points[pi].Label, Unit: spec.Unit, Y: mean})
				}
				continue
			}
			s := Series{Label: spec.Label, Unit: spec.Unit, Y: make([]float64, len(sw.Points))}
			if spec.CI {
				s.CI95 = make([]float64, len(sw.Points))
			}
			for pi := range sw.Points {
				vals := make([]float64, 0, len(r.raw[ai][pi]))
				for _, cellVals := range r.raw[ai][pi] {
					if v := cellVals[k]; !math.IsNaN(v) {
						vals = append(vals, v)
					}
				}
				if len(vals) == 0 {
					continue // every cell opted out: the series keeps 0 here
				}
				mean, err := stats.Mean(vals)
				if err != nil {
					return nil, fmt.Errorf("engine: %s: %s: %w", sw.ID, spec.Label, err)
				}
				s.Y[pi] = mean
				if spec.CI {
					ci, err := stats.CI95HalfWidth(vals)
					if err != nil {
						return nil, fmt.Errorf("engine: %s: %s: %w", sw.ID, spec.Label, err)
					}
					s.CI95[pi] = ci
				}
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}
