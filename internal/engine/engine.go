// Package engine is the unified experiment engine behind every figure
// of the paper reproduction and its extensions: a registry of named,
// context-aware solvers and a declarative, fault-tolerant sweep runner.
//
// A Sweep describes a (point × seed × algorithm) grid — the shape shared
// by all of the paper's Section VI evaluations and the extension
// studies: an x-axis of problem configurations, a number of random
// instances per configuration, and a set of labelled algorithms run on
// every instance. Run executes the grid on a worker pool and assembles
// the resulting Figure.
//
// # Determinism
//
// Results are bit-identical at any worker count. Each (point, seed)
// instance is generated from its own rand.Rand seeded with
//
//	BaseSeed + SeedStride*point + seed
//
// (SeedStride defaults to 0: every x-axis position sees the same
// instance sequence, the paper's methodology for monotone sweep curves),
// each cell's computation depends only on its instance, and aggregation
// runs in declaration order after all cells finish. Scheduling can
// change only wall time, never values.
//
// # Fault tolerance
//
// The runner survives its own workload. A panicking solver is recovered
// on the worker and becomes a per-cell CellError instead of crashing the
// pool; failed and timed-out cells are retried under RunConfig.Retry
// with deterministic exponential backoff; cells that stay failed after
// their attempt budget surface in Result.Failed (and as Run's returned
// error) while every other cell still completes. With
// RunConfig.Checkpoint, each completed cell is journaled to an
// append-only, CRC-framed, fsynced JSONL file as it finishes, and a
// resumed run replays the journal — skipping completed cells — to a
// final figure byte-identical to an uninterrupted run's. ChaosConfig
// injects deterministic panics, errors and latency to test all of the
// above under fire.
//
// # Cancellation and observability
//
// The context passed to Run flows into every cell; cancelling it aborts
// in-flight solvers at their next cancellation point (or, with
// RunConfig.DrainGrace, lets them drain for a grace period first so
// their results still reach the checkpoint journal). RunConfig can
// additionally bound each cell with a timeout, observe cell lifecycle
// events through a ProgressFunc, and share a Limiter between
// concurrently running sweeps so their combined parallelism stays
// bounded.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"wrsn/internal/model"
	"wrsn/internal/stats"
)

// Generator builds one problem instance — any model.Instance kind, not
// just the deployment problem — from a deterministically seeded RNG. It
// must consume randomness only from rng so that instances depend solely
// on the cell's seed.
type Generator func(rng *rand.Rand) (model.Instance, error)

// ProblemGen adapts a deployment-problem generator to the
// instance-typed Generator shape: the closure shape every paper figure
// uses (Go's function types are invariant, so a func returning
// *model.Problem is not itself a Generator even though *model.Problem
// implements model.Instance).
func ProblemGen(fn func(rng *rand.Rand) (*model.Problem, error)) Generator {
	return func(rng *rand.Rand) (model.Instance, error) {
		return fn(rng)
	}
}

// Point is one x-axis position of a sweep: the plotted X value and the
// generator producing its problem instances.
type Point struct {
	X float64
	// Label names the point in progress events, and becomes the series
	// label for Vector outputs (e.g. Fig. 6's "400 nodes").
	Label string
	// Seeds overrides Sweep.Seeds for this point when > 0 (e.g. a
	// deterministic grid layout needs exactly one).
	Seeds int
	Gen   Generator
}

// SeriesSpec declares one output series of an algorithm.
type SeriesSpec struct {
	// Label names the series (ignored for Vector outputs, which take
	// their per-point labels from Point.Label).
	Label string
	// Unit annotates table headers ("" = the figure default, "-" = none).
	Unit string
	// CI attaches 95% confidence half-widths to the series.
	CI bool
	// Vector marks an output that spans the whole X axis (one value per
	// X position per cell, e.g. per-iteration convergence costs). A
	// Vector output must be its algorithm's only output, and the Sweep
	// must set X explicitly; it yields one series per point, averaged
	// elementwise over seeds.
	Vector bool
}

// Instance is one generated problem handed to an algorithm, along with
// the cell coordinates an algorithm may need for derived seeding (e.g.
// simulator seeds).
type Instance struct {
	// Inst is the generated problem instance of whatever kind the
	// point's Generator produces.
	Inst model.Instance
	// Point and Seed are the cell's grid coordinates.
	Point, Seed int
	// X is the point's plotted value.
	X float64
	// BaseSeed is the sweep's base seed; InstanceSeed is the RNG seed
	// this instance was generated from (BaseSeed + SeedStride*Point +
	// Seed).
	BaseSeed, InstanceSeed int64
}

// Problem returns the instance as the deployment problem, or nil when
// the sweep generates another problem family — the accessor
// deployment-specific algorithm cells (simulators, repair studies)
// unwrap their instances through.
func (in *Instance) Problem() *model.Problem {
	p, _ := in.Inst.(*model.Problem)
	return p
}

// CellResult is what an algorithm returns for one cell.
type CellResult struct {
	// Values holds one value per Output (or one per X position for a
	// Vector output).
	Values []float64
	// Evaluations optionally reports the solver's inner-evaluation
	// count for the timing summary.
	Evaluations int64
}

// Algorithm is one labelled entry of a sweep: a computation run on
// every (point, seed) instance, producing one value per declared output.
// A NaN value marks "no observation for this cell" and is skipped by
// aggregation (e.g. travel-per-visit when no visit completed).
//
// Run must be pure with respect to its instance: the engine may invoke
// it again for the same cell (retries after a fault, reruns after a
// crash-resume of an incomplete journal), and every invocation must
// produce the same values.
type Algorithm struct {
	Label   string
	Outputs []SeriesSpec
	Run     func(ctx context.Context, inst *Instance) (CellResult, error)
}

// Sweep declaratively describes one experiment grid.
type Sweep struct {
	// Figure metadata.
	ID, Title, XLabel, YLabel string
	// X optionally overrides the figure's x-axis (required when any
	// output is a Vector; defaults to the points' X values otherwise).
	X []float64

	Points []Point
	// Seeds is the number of random instances per point (>= 1).
	Seeds int
	// BaseSeed anchors the deterministic seed scheme.
	BaseSeed int64
	// SeedStride decorrelates instances across points: instance seed =
	// BaseSeed + SeedStride*point + seed. 0 shares the instance
	// sequence across all points (the paper's methodology).
	SeedStride int64

	Algorithms []Algorithm
}

// Limiter bounds cell concurrency across sweeps: sweeps running in
// parallel share one Limiter so their combined active cells never
// exceed its size. The exported Acquire/TryAcquire/Release hooks let
// other schedulers (the wrsnd planning daemon) share the same budget
// with sweep cells.
type Limiter chan struct{}

// NewLimiter returns a Limiter admitting n concurrent cells.
func NewLimiter(n int) Limiter {
	if n < 1 {
		n = 1
	}
	return make(Limiter, n)
}

// Acquire blocks until a slot is free or ctx is cancelled, reporting
// whether a slot was taken. A false return means ctx was cancelled and
// the caller holds nothing — it must not Release. This is the only
// blocking path into the limiter, so a cancelled waiter can never leak a
// goroutine behind a saturated pool.
func (l Limiter) Acquire(ctx context.Context) bool {
	select {
	case l <- struct{}{}:
		return true
	default:
	}
	select {
	case l <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// TryAcquire takes a slot without blocking, reporting whether it got one.
func (l Limiter) TryAcquire() bool {
	select {
	case l <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a previously acquired slot.
func (l Limiter) Release() { <-l }

// InFlight returns the number of currently held slots.
func (l Limiter) InFlight() int { return len(l) }

// Cap returns the limiter's slot capacity.
func (l Limiter) Cap() int { return cap(l) }

// RunConfig tunes sweep execution. The zero value runs with GOMAXPROCS
// workers, no per-cell timeout, no retries, no checkpointing and no
// observers.
type RunConfig struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS(0), 1 is
	// fully sequential. Results are identical at any value.
	Workers int
	// CellTimeout bounds each cell's algorithm run (0 = unbounded). A
	// cell exceeding it fails with a cause wrapping
	// context.DeadlineExceeded ("cell deadline (30s) exceeded") and is
	// retried under Retry like any other failure.
	CellTimeout time.Duration
	// Retry re-runs failed cells with deterministic exponential backoff
	// before declaring them terminally failed. Zero value: one attempt.
	Retry RetryPolicy
	// Checkpoint journals each completed cell to an append-only file
	// under Checkpoint.Dir; with Checkpoint.Resume, already-journaled
	// cells are restored instead of re-run (nil = no journaling).
	Checkpoint *Checkpoint
	// DrainGrace is how long in-flight cells may keep running after the
	// parent context is cancelled, so their results still land in the
	// journal before the sweep returns (0 = abort in-flight cells
	// immediately, the historical behaviour).
	DrainGrace time.Duration
	// Shard restricts execution to the cell-index range [Shard.Start,
	// Shard.End) of the canonical point-major grid — the worker half of
	// the sharded sweep protocol (internal/shard). Cells outside the
	// range are neither run nor reported, and the checkpoint journal
	// header carries Shard.Lease so the resulting segment is
	// self-describing. Nil runs the whole grid.
	Shard *ShardSpec
	// Chaos deterministically injects panics, errors and latency into
	// cell attempts. Testing and benchmarking only.
	Chaos *ChaosConfig
	// Progress observes cell lifecycle events (may be nil).
	Progress ProgressFunc
	// Limiter optionally shares a concurrency budget with other sweeps
	// running at the same time (nil = this sweep's workers only).
	Limiter Limiter
	// MemoEntries, when positive, sizes the per-instance shared
	// deployment-cost memo (model.SharedMemo) the engine attaches to
	// every cell's context: all algorithm cells pricing one (point,
	// seed) instance share already-priced deployments
	// (model.DefaultSharedMemoEntries is a reasonable size). 0 or
	// negative disables sharing — the default, because at paper scale
	// the probe/store cache traffic measurably outweighs the hits:
	// commit-per-probe consumers (exhaustive/branch-and-bound solvers)
	// must re-run the repair on Commit even after a hit, and the
	// probe-revert heuristics rarely revisit deployments across cells.
	// The memo is lock-free and only ever returns exact costs for exact
	// deployment keys, so results stay bit-identical at any worker count
	// whether or not it is enabled.
	MemoEntries int
}

// Result is a finished sweep: the assembled figure, the raw per-cell
// values for custom post-processing, and the performance summary.
//
// Run returns a non-nil Result alongside a non-nil error when the sweep
// ran but did not fully succeed: terminally failed cells are listed in
// Failed (their raw values stay nil and their figure contributions are
// skipped), and an interrupted sweep is marked Partial.
type Result struct {
	Figure *Figure
	// Raw is indexed [algorithm][point][seed][output] (for Vector
	// outputs the last index spans the X axis). Rows of failed or
	// not-run cells are nil.
	Raw [][][][]float64
	// Durations is each cell's algorithm wall time, indexed
	// [algorithm][point][seed]. Instance generation is excluded; cells
	// restored from a checkpoint report their journaled duration.
	Durations [][][]time.Duration
	// Evaluations is the summed solver-evaluation count.
	Evaluations int64
	Timing      Timing

	// Failed lists terminally failed cells (attempt budget exhausted) in
	// deterministic grid order. Failed[0] is also Run's returned error.
	Failed []*CellError
	// Partial marks a sweep interrupted by context cancellation: some
	// cells never ran. Completed cells are still present in Raw and in
	// the checkpoint journal, if one was configured.
	Partial bool
	// Resumed counts cells restored from the checkpoint journal instead
	// of being re-run.
	Resumed int
	// Retries counts attempts beyond each cell's first, across the
	// whole sweep.
	Retries int
}

// cell is one unit of work.
type cell struct{ point, seed, algo int }

// instSlot lazily generates one (point, seed) instance exactly once,
// whichever cell touches it first. The slot also owns the instance's
// shared deployment-cost memo, so every algorithm cell for the instance
// prices against the same table.
type instSlot struct {
	once sync.Once
	inst *Instance
	memo *model.SharedMemo
	err  error
}

type runner struct {
	sw  *Sweep
	cfg RunConfig

	insts     [][]*instSlot
	raw       [][][][]float64
	durations [][][]time.Duration
	evals     [][][]int64
	errs      []error // per cell index: terminal failure or cancellation
	skip      []bool  // per cell index: restored from the journal
	excluded  []bool  // per cell index: outside cfg.Shard's range

	journal *journal
	retried atomic.Int64

	cells []cell
	done  atomic.Int64

	mu sync.Mutex // serialises progress callbacks
}

// pointSeeds returns the effective seed count of point pi.
func (sw *Sweep) pointSeeds(pi int) int {
	if s := sw.Points[pi].Seeds; s > 0 {
		return s
	}
	return sw.Seeds
}

// validate rejects malformed sweeps before any work starts.
func (sw *Sweep) validate() error {
	if sw.ID == "" {
		return errors.New("engine: sweep needs an ID")
	}
	if len(sw.Points) == 0 {
		return fmt.Errorf("engine: sweep %s has no points", sw.ID)
	}
	if len(sw.Algorithms) == 0 {
		return fmt.Errorf("engine: sweep %s has no algorithms", sw.ID)
	}
	for pi, pt := range sw.Points {
		if pt.Gen == nil {
			return fmt.Errorf("engine: sweep %s point %d has no generator", sw.ID, pi)
		}
		if sw.pointSeeds(pi) < 1 {
			return fmt.Errorf("engine: sweep %s point %d has no seeds", sw.ID, pi)
		}
	}
	for _, a := range sw.Algorithms {
		if a.Run == nil || len(a.Outputs) == 0 {
			return fmt.Errorf("engine: sweep %s algorithm %q needs Run and at least one output", sw.ID, a.Label)
		}
		for _, spec := range a.Outputs {
			if spec.Vector {
				if len(a.Outputs) != 1 {
					return fmt.Errorf("engine: sweep %s algorithm %q: a Vector output must be the only output", sw.ID, a.Label)
				}
				if len(sw.X) == 0 {
					return fmt.Errorf("engine: sweep %s algorithm %q: Vector outputs need an explicit X axis", sw.ID, a.Label)
				}
			}
		}
	}
	if len(sw.X) > 0 && !sw.vectorOnly() && len(sw.X) != len(sw.Points) {
		return fmt.Errorf("engine: sweep %s: explicit X length %d does not match %d points for scalar outputs",
			sw.ID, len(sw.X), len(sw.Points))
	}
	return nil
}

// vectorOnly reports whether every output of every algorithm is a
// Vector (the only configuration where X may diverge from the points).
func (sw *Sweep) vectorOnly() bool {
	for _, a := range sw.Algorithms {
		for _, spec := range a.Outputs {
			if !spec.Vector {
				return false
			}
		}
	}
	return true
}

// wantValues is the number of values algorithm ai must return per cell.
func (sw *Sweep) wantValues(ai int) int {
	if sw.Algorithms[ai].Outputs[0].Vector {
		return len(sw.X)
	}
	return len(sw.Algorithms[ai].Outputs)
}

// Run executes the sweep and assembles its figure. Results are
// bit-identical at any cfg.Workers. Cancelling ctx aborts or drains
// in-flight cells and returns a Partial result with an error wrapping
// the context's cause; terminally failed cells (after cfg.Retry's
// attempt budget) never abort the rest of the sweep — they are reported
// in Result.Failed and as the returned error once every other cell has
// finished.
func Run(ctx context.Context, sw *Sweep, cfg RunConfig) (*Result, error) {
	if err := sw.validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	r := &runner{sw: sw, cfg: cfg}
	r.insts = make([][]*instSlot, len(sw.Points))
	for pi := range sw.Points {
		r.insts[pi] = make([]*instSlot, sw.pointSeeds(pi))
		for si := range r.insts[pi] {
			r.insts[pi][si] = new(instSlot)
		}
	}
	r.raw = make([][][][]float64, len(sw.Algorithms))
	r.durations = make([][][]time.Duration, len(sw.Algorithms))
	r.evals = make([][][]int64, len(sw.Algorithms))
	for ai := range sw.Algorithms {
		r.raw[ai] = make([][][]float64, len(sw.Points))
		r.durations[ai] = make([][]time.Duration, len(sw.Points))
		r.evals[ai] = make([][]int64, len(sw.Points))
		for pi := range sw.Points {
			r.raw[ai][pi] = make([][]float64, sw.pointSeeds(pi))
			r.durations[ai][pi] = make([]time.Duration, sw.pointSeeds(pi))
			r.evals[ai][pi] = make([]int64, sw.pointSeeds(pi))
		}
	}
	// Point-major, then seed, then algorithm: the sequential order the
	// hand-rolled loops used, so workers=1 replays it exactly.
	for pi := range sw.Points {
		for si := 0; si < sw.pointSeeds(pi); si++ {
			for ai := range sw.Algorithms {
				r.cells = append(r.cells, cell{point: pi, seed: si, algo: ai})
			}
		}
	}
	r.errs = make([]error, len(r.cells))
	r.skip = make([]bool, len(r.cells))
	r.excluded = make([]bool, len(r.cells))
	if s := cfg.Shard; s != nil {
		if s.Start < 0 || s.End > len(r.cells) || s.Start > s.End {
			return nil, fmt.Errorf("engine: sweep %s: shard range [%d,%d) outside the %d-cell grid",
				sw.ID, s.Start, s.End, len(r.cells))
		}
		for idx := range r.cells {
			if idx < s.Start || idx >= s.End {
				r.excluded[idx] = true
			}
		}
	}

	resumed, err := r.openCheckpoint()
	if err != nil {
		return nil, err
	}
	if r.journal != nil {
		defer r.journal.Close()
	}

	// workCtx governs in-flight cell execution. Without DrainGrace it
	// follows ctx directly; with it, cells already running when ctx is
	// cancelled get a grace period to finish (and be journaled) before
	// the hard cancel. Scheduling of *new* cells always stops at ctx.
	workCtx, workCancel := context.WithCancelCause(context.Background())
	defer workCancel(nil)
	poolDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			if cfg.DrainGrace > 0 {
				select {
				case <-time.After(cfg.DrainGrace):
					workCancel(fmt.Errorf("engine: drain grace (%s) exceeded after interrupt: %w",
						cfg.DrainGrace, context.Cause(ctx)))
				case <-poolDone:
				}
				return
			}
			workCancel(context.Cause(ctx))
		case <-poolDone:
		}
	}()

	start := time.Now()
	// Replay journaled cells first, in grid order: their finish events
	// (Resumed, zero duration) precede any live execution.
	for idx := range r.cells {
		if !r.skip[idx] || r.excluded[idx] {
			continue
		}
		c := r.cells[idx]
		r.emit(Event{
			Kind: CellFinished, Sweep: sw.ID,
			Point: c.point, Seed: c.seed, Algorithm: sw.Algorithms[c.algo].Label,
			Done: int(r.done.Add(1)), Total: len(r.cells),
			Evaluations: r.evals[c.algo][c.point][c.seed], Resumed: true,
		})
	}

	live := make([]int, 0, len(r.cells))
	for idx := range r.cells {
		if !r.skip[idx] && !r.excluded[idx] {
			live = append(live, idx)
		}
	}
	if workers > len(live) {
		workers = len(live)
	}
	if workers <= 1 {
		for _, idx := range live {
			r.runCell(ctx, workCtx, idx)
		}
	} else {
		queue := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range queue {
					r.runCell(ctx, workCtx, idx)
				}
			}()
		}
		for _, idx := range live {
			queue <- idx
		}
		close(queue)
		wg.Wait()
	}
	close(poolDone)
	wall := time.Since(start)

	var evaluations int64
	for ai := range r.evals {
		for pi := range r.evals[ai] {
			for _, e := range r.evals[ai][pi] {
				evaluations += e
			}
		}
	}
	var active time.Duration
	for ai := range r.durations {
		for pi := range r.durations[ai] {
			for _, d := range r.durations[ai][pi] {
				active += d
			}
		}
	}
	res := &Result{
		Raw:         r.raw,
		Durations:   r.durations,
		Evaluations: evaluations,
		Timing:      NewTiming(sw.ID, wall, active, len(r.cells), evaluations, workers),
		Failed:      r.failedCells(),
		Partial:     ctx.Err() != nil,
		Resumed:     resumed,
		Retries:     int(r.retried.Load()),
	}
	fig, figErr := r.figure()
	res.Figure = fig
	if res.Partial {
		return res, fmt.Errorf("engine: %s interrupted: %w", sw.ID, context.Cause(ctx))
	}
	if len(res.Failed) > 0 {
		return res, res.Failed[0]
	}
	if figErr != nil {
		return nil, figErr
	}
	return res, nil
}

// openCheckpoint opens the configured journal, restores already-journaled
// cells into the result arrays and returns how many were restored.
func (r *runner) openCheckpoint() (int, error) {
	if r.cfg.Checkpoint == nil {
		return 0, nil
	}
	var lease *LeaseMeta
	if r.cfg.Shard != nil {
		lease = r.cfg.Shard.Lease
	}
	j, recs, err := openJournal(r.cfg.Checkpoint, r.sw, lease)
	if err != nil {
		return 0, err
	}
	r.journal = j
	// Cells are laid out point-major/seed/algorithm; index arithmetic
	// must match the construction loop in Run.
	offset := make([]int, len(r.sw.Points))
	n := 0
	for pi := range r.sw.Points {
		offset[pi] = n
		n += r.sw.pointSeeds(pi) * len(r.sw.Algorithms)
	}
	resumed := 0
	for _, rec := range recs {
		if rec.Point < 0 || rec.Point >= len(r.sw.Points) ||
			rec.Seed < 0 || rec.Seed >= r.sw.pointSeeds(rec.Point) ||
			rec.Algo < 0 || rec.Algo >= len(r.sw.Algorithms) ||
			len(rec.ValueBits) != r.sw.wantValues(rec.Algo) {
			return 0, fmt.Errorf("%s: %w: cell record (point %d, seed %d, algorithm %d, %d values) outside the sweep grid",
				journalPath(r.cfg.Checkpoint.Dir, r.sw.ID), ErrCheckpointMismatch,
				rec.Point, rec.Seed, rec.Algo, len(rec.ValueBits))
		}
		idx := offset[rec.Point] + rec.Seed*len(r.sw.Algorithms) + rec.Algo
		if r.skip[idx] {
			continue
		}
		r.skip[idx] = true
		vals := make([]float64, len(rec.ValueBits))
		for i, b := range rec.ValueBits {
			vals[i] = math.Float64frombits(b)
		}
		r.raw[rec.Algo][rec.Point][rec.Seed] = vals
		r.durations[rec.Algo][rec.Point][rec.Seed] = time.Duration(rec.DurationNS)
		r.evals[rec.Algo][rec.Point][rec.Seed] = rec.Evaluations
		resumed++
	}
	return resumed, nil
}

// instance returns the lazily generated (point, seed) instance.
func (r *runner) instance(pi, si int) (*Instance, error) {
	slot := r.insts[pi][si]
	slot.once.Do(func() {
		seed := r.sw.BaseSeed + r.sw.SeedStride*int64(pi) + int64(si)
		rng := rand.New(rand.NewSource(seed))
		p, err := r.sw.Points[pi].Gen(rng)
		if err != nil {
			slot.err = err
			return
		}
		slot.inst = &Instance{
			Inst:         p,
			Point:        pi,
			Seed:         si,
			X:            r.sw.Points[pi].X,
			BaseSeed:     r.sw.BaseSeed,
			InstanceSeed: seed,
		}
		if r.cfg.MemoEntries > 0 {
			slot.memo = model.NewSharedMemo(r.cfg.MemoEntries)
		}
	})
	return slot.inst, slot.err
}

// runCell executes one cell — panic-isolated, chaos-injected, retried
// under the retry policy — recording its values, duration and error.
func (r *runner) runCell(ctx, workCtx context.Context, idx int) {
	c := r.cells[idx]
	algo := &r.sw.Algorithms[c.algo]

	finish := func(d time.Duration, evals int64, attempt int, err error) {
		r.errs[idx] = err
		r.emit(Event{
			Kind: CellFinished, Sweep: r.sw.ID,
			Point: c.point, Seed: c.seed, Algorithm: algo.Label,
			Done: int(r.done.Add(1)), Total: len(r.cells),
			Duration: d, Evaluations: evals, Attempt: attempt, Err: err,
		})
	}
	cancelled := func(d time.Duration, attempt int) {
		cause := context.Cause(ctx)
		if cause == nil {
			cause = ctx.Err()
		}
		finish(d, 0, attempt, fmt.Errorf("engine: %s: %s at point %d (x=%v) seed %d not run: %w",
			r.sw.ID, algo.Label, c.point, r.sw.Points[c.point].X, c.seed, cause))
	}
	terminal := func(d time.Duration, attempt int, panicked bool, stack string, err error) {
		finish(d, 0, attempt, &CellError{
			Sweep: r.sw.ID, Point: c.point, Seed: c.seed, X: r.sw.Points[c.point].X,
			Algorithm: algo.Label, Attempts: attempt, Panicked: panicked, Stack: stack, Err: err,
		})
	}

	if ctx.Err() != nil {
		cancelled(0, 0)
		return
	}
	if r.cfg.Limiter != nil {
		// Wait for a shared slot, but give up as soon as the sweep is
		// cancelled: a cell queued behind a saturated shared Limiter must
		// not keep its worker goroutine pinned until some other sweep
		// releases a slot.
		if !r.cfg.Limiter.Acquire(ctx) {
			cancelled(0, 0)
			return
		}
		defer r.cfg.Limiter.Release()
	}
	inst, err := r.instance(c.point, c.seed)
	if err != nil {
		// Generators are deterministic: retrying cannot help.
		terminal(0, 1, false, "", err)
		return
	}

	attempts := r.cfg.Retry.attempts()
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			r.retried.Add(1)
			if !sleepCtx(workCtx, r.cfg.Retry.Backoff(attempt-1, inst.InstanceSeed)) {
				cancelled(0, attempt-1)
				return
			}
		}
		r.emit(Event{Kind: CellStarted, Sweep: r.sw.ID, Point: c.point, Seed: c.seed,
			Algorithm: algo.Label, Total: len(r.cells), Attempt: attempt})
		res, d, panicked, stack, err := r.attempt(workCtx, inst, algo, c, attempt)
		if err == nil {
			if r.journal != nil {
				err = r.journalCell(c, res, d, attempt)
			}
			if err == nil {
				r.raw[c.algo][c.point][c.seed] = res.Values
				r.durations[c.algo][c.point][c.seed] = d
				r.evals[c.algo][c.point][c.seed] = res.Evaluations
				finish(d, res.Evaluations, attempt, nil)
				return
			}
		}
		// A failure observed while the sweep itself is shutting down is
		// an interrupt, not a cell fault: don't retry, don't blame the
		// cell.
		if workCtx.Err() != nil {
			cancelled(d, attempt)
			return
		}
		if attempt >= attempts {
			terminal(d, attempt, panicked, stack, err)
			return
		}
		// Retrying; a drain that started mid-attempt stops further
		// attempts at the sleepCtx above or the next workCtx check.
		if ctx.Err() != nil {
			cancelled(d, attempt)
			return
		}
	}
}

// attempt runs one panic-isolated attempt of a cell's algorithm,
// injecting chaos and applying the per-cell timeout.
func (r *runner) attempt(workCtx context.Context, inst *Instance, algo *Algorithm, c cell, attemptNo int) (res CellResult, d time.Duration, panicked bool, stack string, err error) {
	cellCtx := workCtx
	if r.cfg.CellTimeout > 0 {
		cause := fmt.Errorf("cell deadline (%s) exceeded: %w", r.cfg.CellTimeout, context.DeadlineExceeded)
		var cancelCell context.CancelFunc
		cellCtx, cancelCell = context.WithTimeoutCause(workCtx, r.cfg.CellTimeout, cause)
		defer cancelCell()
	}
	if memo := r.insts[c.point][c.seed].memo; memo != nil {
		cellCtx = model.WithSharedMemo(cellCtx, memo, uint64(inst.InstanceSeed))
	}
	start := time.Now()
	func() {
		defer func() {
			if v := recover(); v != nil {
				panicked = true
				stack = string(debug.Stack())
				err = fmt.Errorf("panic: %v", v)
			}
		}()
		if r.cfg.Chaos.enabled() {
			if cerr := r.cfg.Chaos.inject(cellCtx, r.sw.ID, c.point, c.seed, c.algo, attemptNo); cerr != nil {
				err = cerr
				return
			}
		}
		res, err = algo.Run(cellCtx, inst)
	}()
	d = time.Since(start)
	if err == nil {
		if want := r.sw.wantValues(c.algo); len(res.Values) != want {
			err = fmt.Errorf("algorithm returned %d values, want %d", len(res.Values), want)
		}
	}
	// Surface the timeout *cause* ("cell deadline (30s) exceeded")
	// instead of a bare context.DeadlineExceeded.
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		if cause := context.Cause(cellCtx); cause != nil && cause != err && errors.Is(cause, context.DeadlineExceeded) {
			err = cause
		}
	}
	return res, d, panicked, stack, err
}

// journalCell appends one completed cell to the checkpoint journal.
func (r *runner) journalCell(c cell, res CellResult, d time.Duration, attempt int) error {
	bits := make([]uint64, len(res.Values))
	for i, v := range res.Values {
		bits[i] = math.Float64bits(v)
	}
	err := r.journal.append("c", CellRecord{
		Point: c.point, Seed: c.seed, Algo: c.algo,
		ValueBits: bits, Evaluations: res.Evaluations,
		DurationNS: int64(d), Attempts: attempt,
	})
	if err != nil {
		return fmt.Errorf("checkpoint journal: %w", err)
	}
	return nil
}

// emit serialises progress callbacks.
func (r *runner) emit(ev Event) {
	if r.cfg.Progress == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfg.Progress(ev)
}

// failedCells collects terminal cell failures in grid order, so the
// same failure is reported first at any worker count.
func (r *runner) failedCells() []*CellError {
	var failed []*CellError
	for _, err := range r.errs {
		var ce *CellError
		if errors.As(err, &ce) {
			failed = append(failed, ce)
		}
	}
	return failed
}

// figure assembles the sweep's Figure from the recorded cell values, in
// declaration order (algorithms, then outputs, then — for Vector
// outputs — points). Cells that failed or never ran have nil rows and
// simply don't contribute, like NaN opt-outs.
func (r *runner) figure() (*Figure, error) {
	sw := r.sw
	fig := &Figure{ID: sw.ID, Title: sw.Title, XLabel: sw.XLabel, YLabel: sw.YLabel}
	if len(sw.X) > 0 {
		fig.X = append(fig.X, sw.X...)
	} else {
		for _, pt := range sw.Points {
			fig.X = append(fig.X, pt.X)
		}
	}
	for ai := range sw.Algorithms {
		algo := &sw.Algorithms[ai]
		for k, spec := range algo.Outputs {
			if spec.Vector {
				for pi := range sw.Points {
					rows := make([][]float64, 0, len(r.raw[ai][pi]))
					for _, row := range r.raw[ai][pi] {
						if row != nil {
							rows = append(rows, row)
						}
					}
					if len(rows) == 0 {
						fig.Series = append(fig.Series, Series{Label: sw.Points[pi].Label, Unit: spec.Unit, Y: make([]float64, len(sw.X))})
						continue
					}
					mean, err := stats.MeanSeries(rows)
					if err != nil {
						return nil, fmt.Errorf("engine: %s: %s point %d: %w", sw.ID, algo.Label, pi, err)
					}
					fig.Series = append(fig.Series, Series{Label: sw.Points[pi].Label, Unit: spec.Unit, Y: mean})
				}
				continue
			}
			s := Series{Label: spec.Label, Unit: spec.Unit, Y: make([]float64, len(sw.Points))}
			if spec.CI {
				s.CI95 = make([]float64, len(sw.Points))
			}
			for pi := range sw.Points {
				vals := make([]float64, 0, len(r.raw[ai][pi]))
				for _, cellVals := range r.raw[ai][pi] {
					if len(cellVals) <= k {
						continue // failed or not-run cell
					}
					if v := cellVals[k]; !math.IsNaN(v) {
						vals = append(vals, v)
					}
				}
				if len(vals) == 0 {
					continue // every cell opted out: the series keeps 0 here
				}
				mean, err := stats.Mean(vals)
				if err != nil {
					return nil, fmt.Errorf("engine: %s: %s: %w", sw.ID, spec.Label, err)
				}
				s.Y[pi] = mean
				if spec.CI {
					ci, err := stats.CI95HalfWidth(vals)
					if err != nil {
						return nil, fmt.Errorf("engine: %s: %s: %w", sw.ID, spec.Label, err)
					}
					s.CI95[pi] = ci
				}
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}
