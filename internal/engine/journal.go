package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Checkpoint configures per-cell crash-safe journaling for a sweep. When
// RunConfig.Checkpoint is set, every completed cell is appended to an
// append-only JSONL journal (one file per sweep ID under Dir, each
// record CRC-32 framed and fsynced) as soon as it finishes. With Resume,
// Run replays the journal first and skips every already-journaled cell;
// because journaled values are stored as exact IEEE-754 bit patterns,
// a resumed sweep's final figure is byte-identical to an uninterrupted
// run's, at any worker count.
type Checkpoint struct {
	// Dir holds one journal file per sweep ("<sweep ID>.journal").
	Dir string
	// Resume replays an existing journal instead of truncating it.
	Resume bool
}

// Typed journal failures, distinguishable with errors.Is.
var (
	// ErrJournalCorrupt reports corruption before the journal's final
	// record — bit flips or truncation that cannot be a crash's torn
	// tail. (A torn or corrupt *final* record is silently dropped: that
	// is what a mid-append crash leaves behind.)
	ErrJournalCorrupt = errors.New("engine: checkpoint journal corrupt")
	// ErrCheckpointMismatch reports a journal written by a different
	// sweep configuration (other grid shape, seeds or algorithms) than
	// the one being resumed.
	ErrCheckpointMismatch = errors.New("engine: checkpoint journal does not match sweep")
)

const journalVersion = 1

// journalHeader is the journal's first record: enough sweep identity to
// refuse resuming a journal that belongs to a different grid. A journal
// written by a sharded worker additionally carries its lease metadata,
// which identifies the segment but never participates in header
// matching (a merged journal has no lease).
type journalHeader struct {
	Version    int      `json:"version"`
	Sweep      string   `json:"sweep"`
	BaseSeed   int64    `json:"base_seed"`
	SeedStride int64    `json:"seed_stride"`
	Cells      int      `json:"cells"`
	Points     int      `json:"points"`
	Algorithms []string `json:"algorithms"`
	// Lease marks a journal segment written by a sharded worker under a
	// revocable lease (nil for whole-sweep journals and merged journals).
	Lease *LeaseMeta `json:"lease,omitempty"`
}

// CellRecord is one completed journaled cell. Values are stored as
// IEEE-754 bit patterns (math.Float64bits): exact round-trip, and JSON
// floats could not carry the NaN "no observation" marker anyway.
type CellRecord struct {
	Point int `json:"p"`
	Seed  int `json:"s"`
	Algo  int `json:"a"`
	// ValueBits holds math.Float64bits of each output value.
	ValueBits   []uint64 `json:"v"`
	Evaluations int64    `json:"e,omitempty"`
	DurationNS  int64    `json:"d,omitempty"`
	Attempts    int      `json:"n,omitempty"`
}

// journalLine is the on-disk framing: one JSON object per line carrying
// the record kind and a CRC-32 (IEEE) of the payload bytes.
type journalLine struct {
	Kind string          `json:"k"` // "h" header, "c" cell
	CRC  uint32          `json:"crc"`
	Rec  json.RawMessage `json:"rec"`
}

// journal is an open, append-only checkpoint file. Appends are
// serialised and fsynced record by record, so a crash loses at most the
// record being written — which replay then drops as a torn tail.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

func journalPath(dir, sweepID string) string {
	return filepath.Join(dir, sweepID+".journal")
}

// encodeLine frames one record as a CRC'd JSONL line.
func encodeLine(kind string, rec interface{}) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(journalLine{Kind: kind, CRC: crc32.ChecksumIEEE(payload), Rec: payload})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// decodeLine parses and CRC-checks one journal line.
func decodeLine(line []byte) (kind string, rec json.RawMessage, err error) {
	var jl journalLine
	if err := json.Unmarshal(line, &jl); err != nil {
		return "", nil, err
	}
	if crc32.ChecksumIEEE(jl.Rec) != jl.CRC {
		return "", nil, fmt.Errorf("CRC mismatch")
	}
	return jl.Kind, jl.Rec, nil
}

// decodeJournal replays journal bytes: the header, every valid cell
// record, and the byte length of the valid prefix. It never panics. A
// corrupt or torn *final* line is tolerated (the artifact of a crash
// mid-append) and excluded from validLen so the caller can truncate it
// away; corruption anywhere earlier returns ErrJournalCorrupt. If the
// very first record is unusable the journal is treated as empty
// (hdr == nil, validLen 0). Duplicate cell records keep the first copy —
// cells are deterministic, so any duplicate carries the same values.
func decodeJournal(data []byte) (hdr *journalHeader, recs []CellRecord, validLen int, err error) {
	seen := map[[3]int]bool{}
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Unterminated final line: the append never completed (the
			// newline is written with the record). Torn tail, even if
			// the fragment happens to parse — committed records always
			// end in '\n', and appends must start on a fresh line.
			return hdr, recs, off, nil
		}
		lineEnd, next := off+nl, off+nl+1
		line := data[off:lineEnd]
		isLast := next >= len(data)

		bad := func(cause error) (*journalHeader, []CellRecord, int, error) {
			if isLast {
				return hdr, recs, off, nil // torn tail: keep the valid prefix
			}
			return nil, nil, 0, fmt.Errorf("%w: record at byte %d: %v", ErrJournalCorrupt, off, cause)
		}

		kind, raw, lerr := decodeLine(line)
		if lerr != nil {
			return bad(lerr)
		}
		switch kind {
		case "h":
			var h journalHeader
			if uerr := json.Unmarshal(raw, &h); uerr != nil {
				return bad(uerr)
			}
			if hdr != nil {
				return bad(errors.New("duplicate header"))
			}
			if len(recs) > 0 {
				return bad(errors.New("header after cell records"))
			}
			hdr = &h
		case "c":
			if hdr == nil {
				return bad(errors.New("cell record before header"))
			}
			var c CellRecord
			if uerr := json.Unmarshal(raw, &c); uerr != nil {
				return bad(uerr)
			}
			key := [3]int{c.Point, c.Seed, c.Algo}
			if !seen[key] {
				seen[key] = true
				recs = append(recs, c)
			}
		default:
			return bad(fmt.Errorf("unknown record kind %q", kind))
		}
		off = next
	}
	return hdr, recs, off, nil
}

// headerMatches reports whether a replayed journal belongs to the sweep
// being resumed.
func headerMatches(got, want *journalHeader) bool {
	if got.Version != want.Version || got.Sweep != want.Sweep ||
		got.BaseSeed != want.BaseSeed || got.SeedStride != want.SeedStride ||
		got.Cells != want.Cells || got.Points != want.Points ||
		len(got.Algorithms) != len(want.Algorithms) {
		return false
	}
	for i := range got.Algorithms {
		if got.Algorithms[i] != want.Algorithms[i] {
			return false
		}
	}
	return true
}

// openJournal opens the sweep's journal under cp.Dir. On resume it
// replays an existing journal (validating its header against the sweep,
// truncating any torn tail) and returns the restored cell records; in
// all other cases it starts a fresh journal whose first record is the
// sweep header (carrying lease metadata when the run is one shard of a
// sharded sweep).
func openJournal(cp *Checkpoint, sw *Sweep, lease *LeaseMeta) (*journal, []CellRecord, error) {
	if err := os.MkdirAll(cp.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	path := journalPath(cp.Dir, sw.ID)
	want := headerFor(sw, lease)

	if cp.Resume {
		data, err := os.ReadFile(path)
		switch {
		case err == nil && len(data) > 0:
			hdr, recs, validLen, derr := decodeJournal(data)
			if derr != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, derr)
			}
			if hdr != nil {
				if !headerMatches(hdr, want) {
					return nil, nil, fmt.Errorf("%s: %w (journal header %+v)", path, ErrCheckpointMismatch, *hdr)
				}
				f, ferr := os.OpenFile(path, os.O_RDWR, 0o644)
				if ferr != nil {
					return nil, nil, ferr
				}
				if validLen < len(data) {
					if terr := f.Truncate(int64(validLen)); terr != nil {
						f.Close()
						return nil, nil, terr
					}
					if serr := f.Sync(); serr != nil {
						f.Close()
						return nil, nil, serr
					}
				}
				if _, serr := f.Seek(0, io.SeekEnd); serr != nil {
					f.Close()
					return nil, nil, serr
				}
				return &journal{f: f, path: path}, recs, nil
			}
			// Unusable from the first record: start over.
		case err != nil && !os.IsNotExist(err):
			return nil, nil, err
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	j := &journal{f: f, path: path}
	if err := j.append("h", want); err != nil {
		f.Close()
		return nil, nil, err
	}
	syncDir(cp.Dir)
	return j, nil, nil
}

// append frames, writes and fsyncs one record.
func (j *journal) append(kind string, rec interface{}) error {
	line, err := encodeLine(kind, rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// algoLabels returns the sweep's algorithm labels in declaration order.
func algoLabels(sw *Sweep) []string {
	labels := make([]string, len(sw.Algorithms))
	for i := range sw.Algorithms {
		labels[i] = sw.Algorithms[i].Label
	}
	return labels
}

// syncDir fsyncs a directory so a just-created or just-renamed file
// survives a crash. Errors are ignored: not every platform or filesystem
// supports directory fsync, and losing it only weakens crash atomicity
// back to the pre-fsync status quo.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
