package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// valueSweep builds a cheap two-point sweep whose algorithm returns a
// deterministic function of the cell coordinates — fast enough for
// fault-machinery tests that don't need real solvers.
func valueSweep(run func(ctx context.Context, inst *Instance) (CellResult, error)) *Sweep {
	sw := testSweep()
	sw.Algorithms = []Algorithm{{
		Label:   "probe",
		Outputs: []SeriesSpec{{Label: "probe", CI: true}},
		Run:     run,
	}}
	return sw
}

func cellValue(inst *Instance) float64 {
	return float64(100*inst.Point + 10*inst.Seed + 1)
}

// TestPanicIsolation: a panicking cell becomes a CellError carrying the
// panic value and stack; every other cell still completes and the pool
// never crashes.
func TestPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		sw := valueSweep(func(ctx context.Context, inst *Instance) (CellResult, error) {
			if inst.Point == 0 && inst.Seed == 1 {
				panic("boom at cell (0,1)")
			}
			return CellResult{Values: []float64{cellValue(inst)}}, nil
		})
		res, err := Run(context.Background(), sw, RunConfig{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: want error for the panicked cell", workers)
		}
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: error is %T, want *CellError: %v", workers, err, err)
		}
		if !ce.Panicked || ce.Point != 0 || ce.Seed != 1 {
			t.Errorf("workers=%d: wrong CellError: %+v", workers, ce)
		}
		if !strings.Contains(ce.Err.Error(), "boom at cell (0,1)") {
			t.Errorf("workers=%d: panic value lost: %v", workers, ce.Err)
		}
		if !strings.Contains(ce.Stack, "fault_test.go") {
			t.Errorf("workers=%d: stack trace missing origin:\n%s", workers, ce.Stack)
		}
		if res == nil {
			t.Fatalf("workers=%d: want a partial Result alongside the error", workers)
		}
		if len(res.Failed) != 1 || res.Failed[0] != ce {
			t.Errorf("workers=%d: Failed = %v, want exactly the panicked cell first", workers, res.Failed)
		}
		// Every other cell completed despite the panic.
		completed := 0
		for pi := range sw.Points {
			for si := 0; si < sw.pointSeeds(pi); si++ {
				if res.Raw[0][pi][si] != nil {
					completed++
				}
			}
		}
		if want := 2*3 - 1; completed != want {
			t.Errorf("workers=%d: %d cells completed, want %d", workers, completed, want)
		}
	}
}

// TestRetryRecovers: cells failing their first attempts succeed within
// the retry budget; the sweep reports no error and counts the retries.
func TestRetryRecovers(t *testing.T) {
	var mu sync.Mutex
	attempts := map[[2]int]int{}
	sw := valueSweep(func(ctx context.Context, inst *Instance) (CellResult, error) {
		mu.Lock()
		attempts[[2]int{inst.Point, inst.Seed}]++
		n := attempts[[2]int{inst.Point, inst.Seed}]
		mu.Unlock()
		if n < 3 {
			if n == 1 {
				panic(fmt.Sprintf("transient panic at (%d,%d)", inst.Point, inst.Seed))
			}
			return CellResult{}, fmt.Errorf("transient error at (%d,%d)", inst.Point, inst.Seed)
		}
		return CellResult{Values: []float64{cellValue(inst)}}, nil
	})
	res, err := Run(context.Background(), sw, RunConfig{
		Workers: 2,
		Retry:   RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatalf("retries should have recovered every cell: %v", err)
	}
	if res.Retries != 2*6 {
		t.Errorf("Retries = %d, want %d (two retries for each of 6 cells)", res.Retries, 2*6)
	}
	for pi := range sw.Points {
		for si := 0; si < 3; si++ {
			if got, want := res.Raw[0][pi][si][0], float64(100*pi+10*si+1); got != want {
				t.Errorf("cell (%d,%d) = %v, want %v", pi, si, got, want)
			}
		}
	}
}

// TestRetryExhausted: a cell failing every attempt is reported once,
// with the configured attempt count, after the rest of the sweep
// completed.
func TestRetryExhausted(t *testing.T) {
	wantErr := errors.New("persistent fault")
	sw := valueSweep(func(ctx context.Context, inst *Instance) (CellResult, error) {
		if inst.Point == 1 && inst.Seed == 2 {
			return CellResult{}, wantErr
		}
		return CellResult{Values: []float64{cellValue(inst)}}, nil
	})
	res, err := Run(context.Background(), sw, RunConfig{Workers: 2, Retry: RetryPolicy{MaxAttempts: 4}})
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CellError, got %v", err)
	}
	if !errors.Is(err, wantErr) {
		t.Errorf("CellError does not unwrap to the cell's error: %v", err)
	}
	if ce.Attempts != 4 || ce.Panicked {
		t.Errorf("CellError = %+v, want 4 non-panic attempts", ce)
	}
	if res.Retries != 3 {
		t.Errorf("Retries = %d, want 3 (one failing cell, three retries)", res.Retries)
	}
}

// TestBackoffDeterministic: backoff delays depend only on (policy,
// retry, seed), grow exponentially and respect the cap.
func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	for retry := 1; retry <= 7; retry++ {
		d1 := p.Backoff(retry, 42)
		d2 := p.Backoff(retry, 42)
		if d1 != d2 {
			t.Fatalf("retry %d: backoff not deterministic: %v vs %v", retry, d1, d2)
		}
		// Nominal delay min(10ms*2^(retry-1), 80ms), jittered into
		// [0.5, 1.0) of nominal.
		nominal := p.BaseDelay << (retry - 1)
		if nominal > p.MaxDelay {
			nominal = p.MaxDelay
		}
		if d1 < nominal/2 || d1 >= nominal {
			t.Errorf("retry %d: backoff %v outside [%v, %v)", retry, d1, nominal/2, nominal)
		}
	}
	if p.Backoff(1, 1) == p.Backoff(1, 2) {
		t.Error("different seeds produced identical jitter (suspicious)")
	}
	if got := (RetryPolicy{}).Backoff(3, 7); got != 0 {
		t.Errorf("zero-value policy should not delay, got %v", got)
	}
}

// TestChaosRunByteIdentical is the chaos harness's core guarantee:
// a sweep under injected panics, errors and latency — with retries to
// absorb them — produces byte-identical figure JSON to a clean run.
func TestChaosRunByteIdentical(t *testing.T) {
	clean, err := Run(context.Background(), testSweep(), RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cleanJSON, _ := json.Marshal(clean.Figure)
	for _, workers := range []int{1, 4} {
		res, err := Run(context.Background(), testSweep(), RunConfig{
			Workers: workers,
			Retry:   RetryPolicy{MaxAttempts: 25},
			Chaos: &ChaosConfig{
				Seed:        7,
				PanicFrac:   0.25,
				ErrorFrac:   0.25,
				LatencyFrac: 0.5,
				Latency:     100 * time.Microsecond,
			},
		})
		if err != nil {
			t.Fatalf("workers=%d: chaos run failed despite retries: %v", workers, err)
		}
		if res.Retries == 0 {
			t.Errorf("workers=%d: chaos injected nothing (Retries = 0) — fractions or seed wrong?", workers)
		}
		gotJSON, _ := json.Marshal(res.Figure)
		if string(gotJSON) != string(cleanJSON) {
			t.Errorf("workers=%d: chaos run JSON differs from clean run:\n%s\nvs\n%s", workers, gotJSON, cleanJSON)
		}
	}
}

// TestChaosDeterministic: the same chaos configuration injects the same
// faults — measured by the retry count — on every run at any worker
// count.
func TestChaosDeterministic(t *testing.T) {
	run := func(workers int) int {
		t.Helper()
		res, err := Run(context.Background(), testSweep(), RunConfig{
			Workers: workers,
			Retry:   RetryPolicy{MaxAttempts: 25},
			Chaos:   &ChaosConfig{Seed: 3, ErrorFrac: 0.5},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Retries
	}
	base := run(1)
	if base == 0 {
		t.Fatal("chaos injected nothing")
	}
	for _, workers := range []int{1, 4} {
		if got := run(workers); got != base {
			t.Errorf("workers=%d: %d retries, want %d (chaos schedule must not depend on scheduling)", workers, got, base)
		}
	}
}

// TestDrainGrace: cancelling the parent context lets in-flight cells
// finish within the grace period — their results are recorded and
// journaled — while unstarted cells are cancelled, and the result is
// marked Partial.
func TestDrainGrace(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 16)
	sw := valueSweep(func(ctx context.Context, inst *Instance) (CellResult, error) {
		started <- struct{}{}
		time.Sleep(50 * time.Millisecond) // deliberately ignores ctx
		return CellResult{Values: []float64{cellValue(inst)}}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	res, err := Run(ctx, sw, RunConfig{
		Workers:    2,
		DrainGrace: 5 * time.Second,
		Checkpoint: &Checkpoint{Dir: dir},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled after drain, got %v", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want a Partial result, got %+v", res)
	}
	completed := 0
	for pi := range sw.Points {
		for si := 0; si < sw.pointSeeds(pi); si++ {
			if res.Raw[0][pi][si] != nil {
				completed++
			}
		}
	}
	if completed == 0 {
		t.Error("no in-flight cell survived the drain")
	}
	if completed == 6 {
		t.Error("every cell completed; cancellation did not stop scheduling")
	}
	// The drained cells made it to the journal: resuming completes the
	// sweep without re-running them.
	res2, err := Run(context.Background(), sw, RunConfig{
		Workers:    2,
		Checkpoint: &Checkpoint{Dir: dir, Resume: true},
	})
	if err != nil {
		t.Fatalf("resume after drain: %v", err)
	}
	if res2.Resumed != completed {
		t.Errorf("resume restored %d cells, want the %d drained ones", res2.Resumed, completed)
	}
}

// TestDrainGraceExceeded: cells that outlive the grace period are hard-
// cancelled with a cause naming the drain, not left running forever.
func TestDrainGraceExceeded(t *testing.T) {
	started := make(chan struct{}, 16)
	var mu sync.Mutex
	var causes []string
	sw := valueSweep(func(ctx context.Context, inst *Instance) (CellResult, error) {
		started <- struct{}{}
		<-ctx.Done() // only the hard cancel at grace expiry unblocks this
		mu.Lock()
		causes = append(causes, fmt.Sprint(context.Cause(ctx)))
		mu.Unlock()
		return CellResult{}, context.Cause(ctx)
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, sw, RunConfig{Workers: 2, DrainGrace: 20 * time.Millisecond})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain took %v, want about one grace period", elapsed)
	}
	if !res.Partial {
		t.Error("result not marked Partial")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(causes) == 0 {
		t.Fatal("no cell saw the hard cancel")
	}
	for _, c := range causes {
		if !strings.Contains(c, "drain grace (20ms) exceeded") {
			t.Errorf("hard-cancel cause = %q, want it to name the drain grace", c)
		}
	}
}
