package engine

import "time"

// EventKind discriminates progress events.
type EventKind int

const (
	// CellStarted fires when a worker begins executing a cell.
	CellStarted EventKind = iota
	// CellFinished fires when a cell's algorithm returns (or errors).
	CellFinished
)

// Event is one observation from a running sweep. The runner serialises
// callbacks (one event at a time), so ProgressFunc implementations need
// no locking of their own.
type Event struct {
	Kind  EventKind
	Sweep string // Sweep.ID

	// Cell coordinates.
	Point     int
	Seed      int
	Algorithm string // Algorithm.Label

	// Done and Total count finished cells out of the sweep's grid
	// (valid on CellFinished; Done includes this event's cell).
	Done  int
	Total int

	// Duration is the cell's algorithm wall time (CellFinished only;
	// instance generation is accounted to the sweep, not the cell).
	// Cells restored from a checkpoint journal report zero here: they
	// cost this run nothing.
	Duration time.Duration
	// Evaluations is the cell's reported solver-evaluation count
	// (CellFinished only; 0 when the algorithm does not report one).
	Evaluations int64
	// Attempt is which attempt this event belongs to (1 = first;
	// CellStarted fires once per attempt, CellFinished reports the
	// attempt that settled the cell).
	Attempt int
	// Resumed marks a cell restored from the checkpoint journal rather
	// than executed (CellFinished only).
	Resumed bool
	// Err is the cell's failure, if any (CellFinished only). Terminal
	// failures are *CellError values.
	Err error
}

// ProgressFunc observes sweep execution. Callbacks run on worker
// goroutines but are serialised by the runner.
type ProgressFunc func(Event)

// Timing is the per-sweep performance summary: the machine-readable
// record behind the BENCH_PR2.json perf artifact.
//
// WallSeconds and ActiveSeconds answer different questions. Wall time
// is start-to-finish for the sweep — but sweeps run concurrently under
// a shared Limiter, so a figure's wall clock keeps ticking while its
// cells wait for slots occupied by *other* figures; comparing wall
// times across runs with different figure mixes misattributes that
// contention. ActiveSeconds sums the cells' own algorithm runtimes
// (CPU-ish time actually spent computing this figure), which is stable
// under co-scheduling and is the number perf trajectories should track.
type Timing struct {
	Figure        string  `json:"figure"`
	WallSeconds   float64 `json:"wall_seconds"`
	ActiveSeconds float64 `json:"active_seconds"`
	Cells         int     `json:"cells"`
	CellsPerSec   float64 `json:"cells_per_sec"`
	Evaluations   int64   `json:"solver_evaluations"`
	// Workers is the size of the shared cell pool the figure drew from —
	// an upper bound, not a per-figure allocation.
	Workers int `json:"workers"`
	// SpanSeconds is first-cell-start to last-cell-finish: the window the
	// figure actually had cells in flight. A small figure co-scheduled
	// with heavy ones (fig6 under -fig all) shows a wall clock spanning
	// the whole run but a span close to its active time.
	SpanSeconds float64 `json:"span_seconds,omitempty"`
	// PeakWorkers is the most cells this figure had executing at once —
	// the honest per-figure concurrency under the shared Limiter.
	PeakWorkers int `json:"peak_workers,omitempty"`
}

// NewTiming assembles a Timing record from a measured run — used by the
// runner for per-sweep summaries and by callers aggregating their own
// wall-clock measurements (e.g. the CLI's per-figure bench artifact).
// active is the summed per-cell algorithm runtime; wall is elapsed time.
func NewTiming(id string, wall, active time.Duration, cells int, evaluations int64, workers int) Timing {
	t := Timing{
		Figure:        id,
		WallSeconds:   wall.Seconds(),
		ActiveSeconds: active.Seconds(),
		Cells:         cells,
		Evaluations:   evaluations,
		Workers:       workers,
	}
	if wall > 0 {
		t.CellsPerSec = float64(cells) / wall.Seconds()
	}
	return t
}
