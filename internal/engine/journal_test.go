package engine

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildJournalBytes assembles a valid journal: a header and n cell
// records.
func buildJournalBytes(t testing.TB, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	hdr := &journalHeader{Version: journalVersion, Sweep: "test-sweep", BaseSeed: 7,
		Cells: n, Points: 2, Algorithms: []string{"rfh", "idb"}}
	line, err := encodeLine("h", hdr)
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(line)
	for i := 0; i < n; i++ {
		rec := CellRecord{Point: i % 2, Seed: i / 2, Algo: i % 2,
			ValueBits: []uint64{uint64(i) * 0x123456789, 42}, Evaluations: int64(i), DurationNS: 1000, Attempts: 1}
		line, err := encodeLine("c", rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

func TestDecodeJournalRoundTrip(t *testing.T) {
	data := buildJournalBytes(t, 5)
	hdr, recs, validLen, err := decodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if hdr == nil || hdr.Sweep != "test-sweep" || hdr.BaseSeed != 7 {
		t.Fatalf("header not replayed: %+v", hdr)
	}
	if len(recs) != 5 || validLen != len(data) {
		t.Fatalf("got %d records, validLen %d of %d", len(recs), validLen, len(data))
	}
	if recs[3].ValueBits[0] != 3*0x123456789 {
		t.Errorf("record 3 bits wrong: %+v", recs[3])
	}
}

// TestDecodeJournalTornTail: any truncation of the final record is
// silently dropped, keeping the valid prefix — the artifact of a crash
// mid-append.
func TestDecodeJournalTornTail(t *testing.T) {
	data := buildJournalBytes(t, 3)
	full, fullRecs, _, _ := decodeJournal(data)
	lastLine := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	for _, cut := range []int{len(data) - 1, len(data) - 7, lastLine + 1} {
		hdr, recs, validLen, err := decodeJournal(data[:cut])
		if err != nil {
			t.Fatalf("cut at %d: torn tail not tolerated: %v", cut, err)
		}
		if hdr == nil || hdr.Sweep != full.Sweep {
			t.Fatalf("cut at %d: header lost", cut)
		}
		if len(recs) != len(fullRecs)-1 {
			t.Errorf("cut at %d: %d records, want %d (torn final record dropped)", cut, len(recs), len(fullRecs)-1)
		}
		if validLen != lastLine {
			t.Errorf("cut at %d: validLen %d, want %d", cut, validLen, lastLine)
		}
	}
}

// TestDecodeJournalMidCorruption: a bit flip before the final record is
// not a crash artifact and must be reported as ErrJournalCorrupt.
func TestDecodeJournalMidCorruption(t *testing.T) {
	data := buildJournalBytes(t, 3)
	// Flip a byte inside the second line (the first cell record).
	firstNL := bytes.IndexByte(data, '\n')
	corrupted := append([]byte(nil), data...)
	corrupted[firstNL+10] ^= 0x40
	_, _, _, err := decodeJournal(corrupted)
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("want ErrJournalCorrupt, got %v", err)
	}
}

// TestDecodeJournalDuplicates: duplicated cell records keep the first
// copy only.
func TestDecodeJournalDuplicates(t *testing.T) {
	data := buildJournalBytes(t, 2)
	lines := bytes.SplitAfter(data, []byte("\n"))
	dup := bytes.Join([][]byte{lines[0], lines[1], lines[1], lines[2], lines[1]}, nil)
	_, recs, _, err := decodeJournal(dup)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records from duplicated journal, want 2", len(recs))
	}
}

// TestDecodeJournalGarbage: unusable from the first byte means "no
// journal" (fresh start), not an error — unless more records follow the
// garbage, which means real corruption.
func TestDecodeJournalGarbage(t *testing.T) {
	hdr, recs, validLen, err := decodeJournal([]byte("this is not a journal"))
	if err != nil || hdr != nil || len(recs) != 0 || validLen != 0 {
		t.Errorf("single garbage line: hdr=%v recs=%d validLen=%d err=%v, want empty prefix", hdr, len(recs), validLen, err)
	}
	if _, _, _, err := decodeJournal([]byte("garbage line one\ngarbage line two\n")); !errors.Is(err, ErrJournalCorrupt) {
		t.Errorf("multi-line garbage: want ErrJournalCorrupt, got %v", err)
	}
	if hdr, recs, validLen, err := decodeJournal(nil); err != nil || hdr != nil || len(recs) != 0 || validLen != 0 {
		t.Errorf("empty journal: hdr=%v recs=%d validLen=%d err=%v", hdr, len(recs), validLen, err)
	}
}

// TestResumeHeaderMismatch: resuming a journal written by a different
// sweep configuration fails with ErrCheckpointMismatch instead of
// silently mixing grids.
func TestResumeHeaderMismatch(t *testing.T) {
	dir := t.TempDir()
	sw := testSweep()
	j, _, err := openJournal(&Checkpoint{Dir: dir}, sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := testSweep()
	other.BaseSeed = 99
	if _, _, err := openJournal(&Checkpoint{Dir: dir, Resume: true}, other, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("BaseSeed mismatch: want ErrCheckpointMismatch, got %v", err)
	}
	other = testSweep()
	other.Algorithms[0].Label = "renamed"
	if _, _, err := openJournal(&Checkpoint{Dir: dir, Resume: true}, other, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("algorithm mismatch: want ErrCheckpointMismatch, got %v", err)
	}
}

// TestResumeTruncatesTornTail: resuming a journal with a torn final
// record truncates the file so later appends extend the valid prefix.
func TestResumeTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	data := buildJournalBytes(t, 3)
	sw := testSweep()
	// buildJournalBytes' header matches testSweep's shape only if we
	// mirror it here.
	hdr, _, _, _ := decodeJournal(data)
	hdr.Cells = 12
	var buf bytes.Buffer
	line, _ := encodeLine("h", hdr)
	buf.Write(line)
	rec := CellRecord{Point: 0, Seed: 0, Algo: 0, ValueBits: []uint64{1}}
	line, _ = encodeLine("c", rec)
	buf.Write(line)
	torn := append(buf.Bytes(), []byte(`{"k":"c","crc":12,"rec":{"p":`)...)

	path := journalPath(dir, sw.ID)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := openJournal(&Checkpoint{Dir: dir, Resume: true}, sw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("restored %d records, want 1", len(recs))
	}
	// Append another record; the file must now decode cleanly end to end.
	if err := j.append("c", CellRecord{Point: 0, Seed: 0, Algo: 1, ValueBits: []uint64{2}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, recs2, validLen, err := decodeJournal(after)
	if err != nil || len(recs2) != 2 || validLen != len(after) {
		t.Errorf("after truncate+append: recs=%d validLen=%d/%d err=%v", len(recs2), validLen, len(after), err)
	}
}

// FuzzJournalReplay hammers the journal decoder with truncated,
// bit-flipped and duplicated records: replay must never panic, must
// return only the typed corruption error, and any accepted prefix must
// re-decode to the same result.
func FuzzJournalReplay(f *testing.F) {
	valid := buildJournalBytes(f, 6)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte("{\"k\":\"h\",\"crc\":0,\"rec\":{}}\n"))
	f.Add(bytes.Repeat(valid, 2)) // duplicated header mid-file
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, validLen, err := decodeJournal(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("validLen %d out of range [0, %d]", validLen, len(data))
		}
		if err != nil {
			if !errors.Is(err, ErrJournalCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if hdr == nil && len(recs) > 0 {
			t.Fatal("cell records accepted without a header")
		}
		// The accepted prefix must be stable: re-decoding it yields the
		// same records and no error.
		hdr2, recs2, validLen2, err2 := decodeJournal(data[:validLen])
		if err2 != nil {
			t.Fatalf("valid prefix failed to re-decode: %v", err2)
		}
		if validLen2 != validLen || !reflect.DeepEqual(hdr, hdr2) || !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("prefix re-decode diverged: len %d vs %d", validLen, validLen2)
		}
	})
}

// TestJournalFilePerSweep: two sweeps checkpointing into one directory
// keep separate journals.
func TestJournalFilePerSweep(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"alpha", "beta"} {
		sw := testSweep()
		sw.ID = id
		j, _, err := openJournal(&Checkpoint{Dir: dir}, sw, nil)
		if err != nil {
			t.Fatal(err)
		}
		j.Close()
		if _, err := os.Stat(filepath.Join(dir, id+".journal")); err != nil {
			t.Errorf("journal for %s not created: %v", id, err)
		}
	}
}
