package engine

import (
	"encoding/json"
	"fmt"
	"os"
)

// LeaseMeta identifies one shard lease of a sharded sweep: the cell
// range a worker was granted, the attempt epoch the grant belongs to,
// and the worker that held it. It is stamped into the header of the
// journal segment the worker writes, making every segment
// self-describing: the coordinator merges segments by what their
// headers claim, not by where their files came from, and fences out
// segments whose epoch is no longer current.
type LeaseMeta struct {
	// Sweep is the Sweep.ID the lease belongs to.
	Sweep string `json:"sweep"`
	// Start and End bound the granted cell range [Start, End) in the
	// sweep's canonical point-major cell order.
	Start int `json:"start"`
	End   int `json:"end"`
	// Epoch is the shard's attempt epoch. Each grant of the same cell
	// range — including re-grants after a revocation — carries a higher
	// epoch than every earlier grant, so a segment from a revoked
	// (zombie) lease is recognisable and rejected at merge.
	Epoch int64 `json:"epoch"`
	// Worker names the lease holder (informational).
	Worker string `json:"worker,omitempty"`
}

// ID is the lease's canonical name, unique per (sweep, range, epoch) —
// used for heartbeat and segment file names.
func (l LeaseMeta) ID() string {
	return fmt.Sprintf("%s-c%d-%d-e%d", l.Sweep, l.Start, l.End, l.Epoch)
}

func (l LeaseMeta) String() string {
	return fmt.Sprintf("%s cells [%d,%d) epoch %d", l.Sweep, l.Start, l.End, l.Epoch)
}

// ShardSpec restricts a Run to the cell-index range [Start, End) of the
// sweep's canonical point-major grid order. Cells outside the range are
// neither executed nor reported; the checkpoint journal (if configured)
// receives only the shard's cells, and carries Lease in its header.
// An empty range (Start == End) runs nothing.
type ShardSpec struct {
	Start, End int
	// Lease is stamped into the checkpoint journal header so the
	// resulting segment is self-describing (may be nil).
	Lease *LeaseMeta
}

// CellCount returns the total number of cells in the sweep's canonical
// point-major grid order (points × per-point seeds × algorithms) — the
// index space ShardSpec and LeaseMeta ranges refer to.
func CellCount(sw *Sweep) int {
	n := 0
	for pi := range sw.Points {
		n += sw.pointSeeds(pi) * len(sw.Algorithms)
	}
	return n
}

// CellIndex returns the canonical cell index of (point, seed, algo) in
// the sweep's point-major grid order, or -1 if the coordinates fall
// outside the grid.
func CellIndex(sw *Sweep, point, seed, algo int) int {
	if point < 0 || point >= len(sw.Points) ||
		seed < 0 || seed >= sw.pointSeeds(point) ||
		algo < 0 || algo >= len(sw.Algorithms) {
		return -1
	}
	idx := 0
	for pi := 0; pi < point; pi++ {
		idx += sw.pointSeeds(pi) * len(sw.Algorithms)
	}
	return idx + seed*len(sw.Algorithms) + algo
}

// headerFor builds the journal header identifying sw (with optional
// lease metadata for shard segments).
func headerFor(sw *Sweep, lease *LeaseMeta) *journalHeader {
	return &journalHeader{
		Version:    journalVersion,
		Sweep:      sw.ID,
		BaseSeed:   sw.BaseSeed,
		SeedStride: sw.SeedStride,
		Cells:      CellCount(sw),
		Points:     len(sw.Points),
		Algorithms: algoLabels(sw),
		Lease:      lease,
	}
}

// SweepSignature is a stable identity string for the sweep's grid shape
// and seeding — the same fields a checkpoint journal header carries.
// The shard coordinator persists it with its lease table so a restarted
// coordinator refuses a spool that belongs to a different sweep.
func SweepSignature(sw *Sweep) string {
	b, err := json.Marshal(headerFor(sw, nil))
	if err != nil {
		// The header is plain ints and strings; Marshal cannot fail.
		panic(fmt.Sprintf("engine: sweep signature: %v", err))
	}
	return string(b)
}

// Segment is one validated journal segment: a complete, CRC-checked
// shard journal written by a worker under a lease.
type Segment struct {
	// Path is where the segment was read from.
	Path string
	// Lease is the segment's self-described shard lease.
	Lease LeaseMeta
	// Records are the shard's cells, one per cell of [Start, End).
	Records []CellRecord
}

// ReadSegment reads and fully validates one journal segment for sw:
// every line CRC-checked with no torn tail (a committed segment is
// complete by construction — workers rename it into place only after a
// clean close), header matching the sweep, lease metadata present, and
// the records covering the lease's cell range exactly. Anything less is
// an error: the merge path trusts only segments that pass here.
func ReadSegment(path string, sw *Sweep) (*Segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	hdr, recs, validLen, err := decodeJournal(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if hdr == nil {
		return nil, fmt.Errorf("%s: %w: segment has no header", path, ErrJournalCorrupt)
	}
	if validLen != len(data) {
		return nil, fmt.Errorf("%s: %w: torn tail at byte %d of %d — segment was not committed atomically",
			path, ErrJournalCorrupt, validLen, len(data))
	}
	if want := headerFor(sw, nil); !headerMatches(hdr, want) {
		return nil, fmt.Errorf("%s: %w (segment header %+v)", path, ErrCheckpointMismatch, *hdr)
	}
	if hdr.Lease == nil {
		return nil, fmt.Errorf("%s: %w: segment header carries no lease metadata", path, ErrCheckpointMismatch)
	}
	lease := *hdr.Lease
	if lease.Sweep != sw.ID || lease.Start < 0 || lease.End > CellCount(sw) || lease.Start > lease.End {
		return nil, fmt.Errorf("%s: %w: lease %s outside sweep grid of %d cells",
			path, ErrCheckpointMismatch, lease, CellCount(sw))
	}
	covered := make(map[int]bool, len(recs))
	for _, rec := range recs {
		idx := CellIndex(sw, rec.Point, rec.Seed, rec.Algo)
		if idx < 0 || idx < lease.Start || idx >= lease.End {
			return nil, fmt.Errorf("%s: %w: cell record (point %d, seed %d, algorithm %d) outside lease %s",
				path, ErrCheckpointMismatch, rec.Point, rec.Seed, rec.Algo, lease)
		}
		covered[idx] = true
	}
	if len(covered) != lease.End-lease.Start {
		return nil, fmt.Errorf("%s: %w: segment covers %d of %d cells of lease %s — incomplete shard",
			path, ErrJournalCorrupt, len(covered), lease.End-lease.Start, lease)
	}
	return &Segment{Path: path, Lease: lease, Records: recs}, nil
}

// WriteMergedJournal writes a fresh, complete journal for sw under dir
// (at the same path RunConfig.Checkpoint uses), containing the given
// cell records. A subsequent Run with Checkpoint{Dir: dir, Resume: true}
// replays it without executing any cell, assembling a Result
// byte-identical to an uninterrupted in-process run — this is the
// sharded sweep merge path. Records should be in grid order; the file
// is written whole and fsynced once.
func WriteMergedJournal(dir string, sw *Sweep, recs []CellRecord) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := journalPath(dir, sw.ID)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	write := func(kind string, rec interface{}) error {
		line, err := encodeLine(kind, rec)
		if err != nil {
			return err
		}
		_, err = f.Write(line)
		return err
	}
	fail := func(err error) (string, error) {
		f.Close()
		os.Remove(path)
		return "", err
	}
	if err := write("h", headerFor(sw, nil)); err != nil {
		return fail(err)
	}
	for _, rec := range recs {
		if err := write("c", rec); err != nil {
			return fail(err)
		}
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return "", err
	}
	syncDir(dir)
	return path, nil
}
