package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"wrsn/internal/model"
	"wrsn/internal/solver"
)

// SolveFunc is the registry's solver shape: a context-aware map from a
// problem instance — any model.Instance, not just the deployment
// problem — to a solved result. Cancelling the context aborts the
// solver at its next cancellation point (round boundaries for RFH/IDB,
// evaluation batches for the exact search). A solver handed an instance
// kind it cannot solve returns an error unwrapping
// solver.ErrUnsupportedInstance instead of a result.
type SolveFunc func(ctx context.Context, inst model.Instance) (*solver.Result, error)

// SolverInfo describes one registry entry for listings (the
// cmd/wrsn-experiments -list-solvers mode): the registered name and the
// instance kinds the solver accepts.
type SolverInfo struct {
	Name  string
	Kinds []string
}

type registryEntry struct {
	fn    SolveFunc
	kinds []string
}

var registry = struct {
	sync.RWMutex
	m map[string]registryEntry
}{m: map[string]registryEntry{}}

// Register adds a named solver to the registry, declaring the instance
// kinds it accepts (kinds it is not registered for must still be
// rejected by the SolveFunc itself, with a typed
// solver.UnsupportedError — the declaration drives listings, not
// dispatch). Registering an empty name, a nil function, no kinds or a
// duplicate name panics: the registry is assembled at init time, so a
// bad registration is a programming error.
func Register(name string, kinds []string, fn SolveFunc) {
	if name == "" || fn == nil {
		panic("engine: Register needs a non-empty name and a non-nil solver")
	}
	if len(kinds) == 0 {
		panic(fmt.Sprintf("engine: solver %q registered with no instance kinds", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("engine: solver %q registered twice", name))
	}
	registry.m[name] = registryEntry{fn: fn, kinds: append([]string(nil), kinds...)}
}

// Solver returns the registered solver with the given name.
func Solver(name string) (SolveFunc, bool) {
	registry.RLock()
	defer registry.RUnlock()
	e, ok := registry.m[name]
	return e.fn, ok
}

// MustSolver returns the registered solver or panics — for spec tables
// whose names are compile-time constants.
func MustSolver(name string) SolveFunc {
	fn, ok := Solver(name)
	if !ok {
		panic(fmt.Sprintf("engine: no solver registered as %q (have %v)", name, Solvers()))
	}
	return fn
}

// Solvers returns every registered solver name, sorted.
func Solvers() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Infos returns every registry entry with the instance kinds each
// solver accepts, in fully stable order: entries sorted by name and
// each entry's kinds sorted lexically. Nothing about the registry map's
// iteration order or a registration's kind declaration order leaks into
// the result, so listings built on it (-list-solvers) are byte-stable
// across runs.
func Infos() []SolverInfo {
	registry.RLock()
	defer registry.RUnlock()
	infos := make([]SolverInfo, 0, len(registry.m))
	for name, e := range registry.m {
		kinds := append([]string(nil), e.kinds...)
		sort.Strings(kinds)
		infos = append(infos, SolverInfo{Name: name, Kinds: kinds})
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].Name < infos[b].Name })
	return infos
}

// IDBSolver returns a SolveFunc running IDB with the given per-round
// increment δ (sequential evaluation, the paper's reference variant).
func IDBSolver(delta int) SolveFunc {
	return func(ctx context.Context, inst model.Instance) (*solver.Result, error) {
		return solver.IDBInstance(ctx, inst, delta)
	}
}

// Kind sets the built-in registrations declare.
var (
	deploymentOnly = []string{model.KindDeployment}
	placementOnly  = []string{model.KindPlacement}
	allKinds       = []string{model.KindDeployment, model.KindPlacement}
)

// The built-in portfolio: every solver the repo implements, under the
// names the experiment specs and CLIs use. The generic search loops
// (IDB, local search, annealing, auto) solve both problem families
// through the instance seam; RFH is the deployment-specific structural
// exception, the exact solver's bound is only admissible for
// deployment, and "greedy" is each instance's own construction
// heuristic (only placement provides one).
func init() {
	Register("rfh", deploymentOnly, func(ctx context.Context, inst model.Instance) (*solver.Result, error) {
		return solver.RFHInstance(ctx, inst, solver.RFHOptions{Iterations: 1})
	})
	Register("rfh-iterative", deploymentOnly, func(ctx context.Context, inst model.Instance) (*solver.Result, error) {
		return solver.RFHInstance(ctx, inst, solver.RFHOptions{Iterations: solver.DefaultRFHIterations})
	})
	Register("idb", allKinds, IDBSolver(1))
	Register("idb-parallel", allKinds, func(ctx context.Context, inst model.Instance) (*solver.Result, error) {
		return solver.IDBWithOptionsInstance(ctx, inst, solver.IDBOptions{Delta: 1})
	})
	Register("local-search", allKinds, func(ctx context.Context, inst model.Instance) (*solver.Result, error) {
		return solver.LocalSearchInstance(ctx, inst, solver.LocalSearchOptions{})
	})
	Register("idb-local-search", allKinds, func(ctx context.Context, inst model.Instance) (*solver.Result, error) {
		seed, err := solver.IDBInstance(ctx, inst, 1)
		if err != nil {
			return nil, err
		}
		return solver.LocalSearchInstance(ctx, inst, solver.LocalSearchOptions{Start: seed})
	})
	Register("anneal", allKinds, func(ctx context.Context, inst model.Instance) (*solver.Result, error) {
		return solver.AnnealInstance(ctx, inst, solver.AnnealOptions{Seed: 1})
	})
	Register("auto", allKinds, func(ctx context.Context, inst model.Instance) (*solver.Result, error) {
		return solver.AutoInstance(ctx, inst)
	})
	Register("optimal", deploymentOnly, func(ctx context.Context, inst model.Instance) (*solver.Result, error) {
		return solver.OptimalInstance(ctx, inst, solver.OptimalOptions{})
	})
	Register("greedy", placementOnly, func(ctx context.Context, inst model.Instance) (*solver.Result, error) {
		return solver.GreedyInstance(ctx, inst)
	})
}
