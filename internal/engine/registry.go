package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"wrsn/internal/model"
	"wrsn/internal/solver"
)

// SolveFunc is the registry's solver shape: a context-aware map from a
// problem instance to a solved result. Cancelling the context aborts the
// solver at its next cancellation point (round boundaries for RFH/IDB,
// evaluation batches for the exact search).
type SolveFunc func(ctx context.Context, p *model.Problem) (*solver.Result, error)

var registry = struct {
	sync.RWMutex
	m map[string]SolveFunc
}{m: map[string]SolveFunc{}}

// Register adds a named solver to the registry. Registering an empty
// name, a nil function or a duplicate name panics: the registry is
// assembled at init time, so a bad registration is a programming error.
func Register(name string, fn SolveFunc) {
	if name == "" || fn == nil {
		panic("engine: Register needs a non-empty name and a non-nil solver")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("engine: solver %q registered twice", name))
	}
	registry.m[name] = fn
}

// Solver returns the registered solver with the given name.
func Solver(name string) (SolveFunc, bool) {
	registry.RLock()
	defer registry.RUnlock()
	fn, ok := registry.m[name]
	return fn, ok
}

// MustSolver returns the registered solver or panics — for spec tables
// whose names are compile-time constants.
func MustSolver(name string) SolveFunc {
	fn, ok := Solver(name)
	if !ok {
		panic(fmt.Sprintf("engine: no solver registered as %q (have %v)", name, Solvers()))
	}
	return fn
}

// Solvers returns every registered solver name, sorted.
func Solvers() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// IDBSolver returns a SolveFunc running IDB with the given per-round
// increment δ (sequential evaluation, the paper's reference variant).
func IDBSolver(delta int) SolveFunc {
	return func(ctx context.Context, p *model.Problem) (*solver.Result, error) {
		return solver.IDBCtx(ctx, p, delta)
	}
}

// The built-in portfolio: every solver the repo implements, under the
// names the experiment specs and CLIs use.
func init() {
	Register("rfh", func(ctx context.Context, p *model.Problem) (*solver.Result, error) {
		return solver.RFHCtx(ctx, p, solver.RFHOptions{Iterations: 1})
	})
	Register("rfh-iterative", func(ctx context.Context, p *model.Problem) (*solver.Result, error) {
		return solver.RFHCtx(ctx, p, solver.RFHOptions{Iterations: solver.DefaultRFHIterations})
	})
	Register("idb", IDBSolver(1))
	Register("idb-parallel", func(ctx context.Context, p *model.Problem) (*solver.Result, error) {
		return solver.IDBWithOptionsCtx(ctx, p, solver.IDBOptions{Delta: 1})
	})
	Register("local-search", func(ctx context.Context, p *model.Problem) (*solver.Result, error) {
		return solver.LocalSearchCtx(ctx, p, solver.LocalSearchOptions{})
	})
	Register("idb-local-search", func(ctx context.Context, p *model.Problem) (*solver.Result, error) {
		seed, err := solver.IDBCtx(ctx, p, 1)
		if err != nil {
			return nil, err
		}
		return solver.LocalSearchCtx(ctx, p, solver.LocalSearchOptions{Start: seed})
	})
	Register("anneal", func(ctx context.Context, p *model.Problem) (*solver.Result, error) {
		return solver.AnnealCtx(ctx, p, solver.AnnealOptions{Seed: 1})
	})
	Register("auto", func(ctx context.Context, p *model.Problem) (*solver.Result, error) {
		return solver.AutoCtx(ctx, p)
	})
	Register("optimal", func(ctx context.Context, p *model.Problem) (*solver.Result, error) {
		return solver.OptimalCtx(ctx, p, solver.OptimalOptions{})
	})
}
