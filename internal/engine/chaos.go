package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// ErrChaos marks an error injected by a ChaosConfig.
var ErrChaos = errors.New("chaos: injected error")

// ChaosConfig injects deterministic faults into cell attempts — a test
// and bench harness for the engine's own fault tolerance, never for
// production sweeps. Each (cell, attempt) draws independent uniforms
// from a platform-stable hash of (Seed, sweep ID, point, seed,
// algorithm, attempt), so a given configuration always injects the same
// faults into the same attempts, at any worker count: chaos runs are as
// reproducible as clean ones.
//
// Because the draw includes the attempt number, a cell that panics on
// its first attempt usually succeeds on a retry — which is exactly what
// the retry machinery is supposed to deliver, and what the chaos test
// suite asserts.
type ChaosConfig struct {
	// Seed decorrelates chaos schedules between configurations.
	Seed int64
	// PanicFrac is the fraction of attempts that panic.
	PanicFrac float64
	// ErrorFrac is the fraction of attempts that return ErrChaos.
	ErrorFrac float64
	// LatencyFrac is the fraction of attempts delayed by Latency before
	// the algorithm runs.
	LatencyFrac float64
	Latency     time.Duration

	// Worker-level faults for the sharded sweep engine (internal/shard),
	// drawn once per (shard range, epoch) so a re-granted lease draws a
	// fresh fate — reassignment absorbs faults exactly like retries
	// absorb cell faults.

	// WorkerKillFrac is the fraction of shard lease executions that die
	// mid-shard without committing a segment (a simulated SIGKILL).
	WorkerKillFrac float64
	// WorkerWedgeFrac is the fraction of shard lease executions that
	// wedge mid-shard: stop heartbeating and hang until revoked.
	WorkerWedgeFrac float64
	// HeartbeatDelayFrac is the fraction of shard lease executions whose
	// every heartbeat is delayed by HeartbeatDelay.
	HeartbeatDelayFrac float64
	HeartbeatDelay     time.Duration
}

// enabled reports whether any cell-attempt fault kind is configured.
func (c *ChaosConfig) enabled() bool {
	return c != nil && (c.PanicFrac > 0 || c.ErrorFrac > 0 || (c.LatencyFrac > 0 && c.Latency > 0))
}

// Enabled reports whether any attempt-level fault kind is configured —
// the exported form non-sweep consumers (the wrsnd planning daemon)
// gate their injection calls on. Safe on a nil config.
func (c *ChaosConfig) Enabled() bool { return c.enabled() }

// Inject runs the configured attempt-level faults for one externally
// identified attempt: scope names the injection site (a sweep ID for
// cells, "wrsnd:<solver>" for daemon requests), a and b are arbitrary
// coordinates identifying the work unit (the daemon passes the two
// halves of the request's canonical cache key), and attempt numbers the
// retry. Faults are drawn exactly like cell faults — deterministically
// from (Seed, scope, a, b, attempt) — so a panic injected into attempt 1
// is usually absorbed by attempt 2, which is what the retry machinery
// under test is supposed to deliver.
func (c *ChaosConfig) Inject(ctx context.Context, scope string, a, b, attempt int) error {
	if !c.enabled() {
		return nil
	}
	return c.inject(ctx, scope, a, b, 0, attempt)
}

// WorkerFault is the fate drawn for one shard lease execution.
type WorkerFault struct {
	// Kill aborts the worker mid-shard without committing its segment.
	Kill bool
	// Wedge stops the worker's heartbeats mid-shard and hangs it until
	// the lease is revoked. Kill and Wedge are mutually exclusive.
	Wedge bool
	// HeartbeatDelay delays every heartbeat write by this much.
	HeartbeatDelay time.Duration
}

// WorkerFaults draws the deterministic fate of one shard lease
// execution, keyed by (sweep, cell range, epoch): the same lease grant
// always draws the same fault, at any scheduling, and a re-grant
// (higher epoch) draws independently.
func (c *ChaosConfig) WorkerFaults(sweep string, start, end int, epoch int64) WorkerFault {
	if c == nil {
		return WorkerFault{}
	}
	var f WorkerFault
	if c.WorkerKillFrac > 0 && c.uniform(4, sweep, start, end, 0, int(epoch)) < c.WorkerKillFrac {
		f.Kill = true
	}
	if !f.Kill && c.WorkerWedgeFrac > 0 && c.uniform(5, sweep, start, end, 0, int(epoch)) < c.WorkerWedgeFrac {
		f.Wedge = true
	}
	if c.HeartbeatDelayFrac > 0 && c.HeartbeatDelay > 0 &&
		c.uniform(6, sweep, start, end, 0, int(epoch)) < c.HeartbeatDelayFrac {
		f.HeartbeatDelay = c.HeartbeatDelay
	}
	return f
}

// uniform draws the deterministic uniform in [0, 1) for one
// (salt, cell, attempt) coordinate.
func (c *ChaosConfig) uniform(salt uint64, sweep string, pi, si, ai, attempt int) float64 {
	h := fnv.New64a()
	h.Write([]byte(sweep))
	x := h.Sum64() ^ uint64(c.Seed)
	for _, v := range [...]uint64{salt, uint64(pi), uint64(si), uint64(ai), uint64(attempt)} {
		x = splitmix64(x ^ v)
	}
	return float64(x>>11) / float64(1<<53)
}

// inject runs the configured faults for one cell attempt: an optional
// latency stall, then a panic or an injected error. It returns nil when
// this attempt is left alone.
func (c *ChaosConfig) inject(ctx context.Context, sweep string, pi, si, ai, attempt int) error {
	if c.LatencyFrac > 0 && c.Latency > 0 && c.uniform(1, sweep, pi, si, ai, attempt) < c.LatencyFrac {
		if !sleepCtx(ctx, c.Latency) {
			return context.Cause(ctx)
		}
	}
	if c.PanicFrac > 0 && c.uniform(2, sweep, pi, si, ai, attempt) < c.PanicFrac {
		panic(fmt.Sprintf("chaos: injected panic at %s point %d seed %d algorithm %d attempt %d",
			sweep, pi, si, ai, attempt))
	}
	if c.ErrorFrac > 0 && c.uniform(3, sweep, pi, si, ai, attempt) < c.ErrorFrac {
		return fmt.Errorf("%w at %s point %d seed %d algorithm %d attempt %d",
			ErrChaos, sweep, pi, si, ai, attempt)
	}
	return nil
}
