package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCellIndexGrid: CellIndex enumerates the canonical point-major
// grid order exactly, and rejects out-of-grid coordinates.
func TestCellIndexGrid(t *testing.T) {
	sw := testSweep() // 2 points × 3 seeds × 2 algorithms
	if got := CellCount(sw); got != 12 {
		t.Fatalf("CellCount = %d, want 12", got)
	}
	want := 0
	for p := 0; p < len(sw.Points); p++ {
		for s := 0; s < sw.Seeds; s++ {
			for a := 0; a < len(sw.Algorithms); a++ {
				if got := CellIndex(sw, p, s, a); got != want {
					t.Errorf("CellIndex(%d,%d,%d) = %d, want %d", p, s, a, got, want)
				}
				want++
			}
		}
	}
	for _, bad := range [][3]int{{-1, 0, 0}, {2, 0, 0}, {0, 3, 0}, {0, 0, 2}} {
		if got := CellIndex(sw, bad[0], bad[1], bad[2]); got != -1 {
			t.Errorf("CellIndex%v = %d, want -1", bad, got)
		}
	}
}

// TestShardSegmentRoundtrip runs the sweep as two complementary shard
// halves (the worker path: RunConfig.Shard with lease metadata), reads
// both segments back with full validation, merges their records into a
// single journal, and resume-replays it — asserting byte-identical
// figure JSON against a clean in-process run. This is the engine half
// of the sharded-sweep protocol without internal/shard's coordination.
func TestShardSegmentRoundtrip(t *testing.T) {
	clean, err := Run(context.Background(), testSweep(), RunConfig{Workers: 1})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	cleanJSON := figureJSON(t, clean)

	var recs []CellRecord
	segDir := t.TempDir()
	for _, rng := range [][2]int{{0, 5}, {5, 12}} {
		sw := testSweep()
		lease := &LeaseMeta{Sweep: sw.ID, Start: rng[0], End: rng[1], Epoch: 1, Worker: "test"}
		dir := filepath.Join(segDir, lease.ID())
		res, err := Run(context.Background(), sw, RunConfig{
			Workers:    2,
			Checkpoint: &Checkpoint{Dir: dir},
			Shard:      &ShardSpec{Start: rng[0], End: rng[1], Lease: lease},
		})
		if err != nil {
			t.Fatalf("shard [%d,%d): %v", rng[0], rng[1], err)
		}
		// A shard run reports only its own cells: the rest of the grid is
		// excluded, not failed.
		if res.Partial {
			t.Errorf("shard [%d,%d) marked Partial", rng[0], rng[1])
		}
		seg, err := ReadSegment(journalPath(dir, sw.ID), sw)
		if err != nil {
			t.Fatalf("read segment [%d,%d): %v", rng[0], rng[1], err)
		}
		if seg.Lease != *lease {
			t.Errorf("segment lease %+v, want %+v", seg.Lease, *lease)
		}
		if len(seg.Records) != rng[1]-rng[0] {
			t.Errorf("segment [%d,%d) has %d records, want %d", rng[0], rng[1], len(seg.Records), rng[1]-rng[0])
		}
		recs = append(recs, seg.Records...)
	}

	mergedDir := t.TempDir()
	if _, err := WriteMergedJournal(mergedDir, testSweep(), recs); err != nil {
		t.Fatalf("write merged journal: %v", err)
	}
	merged, err := Run(context.Background(), testSweep(), RunConfig{
		Workers:    1,
		Checkpoint: &Checkpoint{Dir: mergedDir, Resume: true},
	})
	if err != nil {
		t.Fatalf("merged replay: %v", err)
	}
	if merged.Resumed != 12 {
		t.Errorf("merged replay restored %d cells, want 12", merged.Resumed)
	}
	if got := figureJSON(t, merged); got != cleanJSON {
		t.Errorf("merged figure JSON differs from clean run:\n%s\nvs\n%s", got, cleanJSON)
	}
}

// TestReadSegmentValidation: every way a segment can be unusable is an
// explicit error, never a silent partial read.
func TestReadSegmentValidation(t *testing.T) {
	sw := testSweep()
	lease := &LeaseMeta{Sweep: sw.ID, Start: 0, End: 6, Epoch: 2}
	dir := t.TempDir()
	if _, err := Run(context.Background(), sw, RunConfig{
		Workers:    1,
		Checkpoint: &Checkpoint{Dir: dir},
		Shard:      &ShardSpec{Start: 0, End: 6, Lease: lease},
	}); err != nil {
		t.Fatal(err)
	}
	segPath := journalPath(dir, sw.ID)

	t.Run("valid", func(t *testing.T) {
		if _, err := ReadSegment(segPath, sw); err != nil {
			t.Fatalf("valid segment rejected: %v", err)
		}
	})

	t.Run("torn tail", func(t *testing.T) {
		data, err := os.ReadFile(segPath)
		if err != nil {
			t.Fatal(err)
		}
		torn := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(torn, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = ReadSegment(torn, sw)
		if err == nil || !strings.Contains(err.Error(), "torn tail") {
			t.Fatalf("want torn-tail rejection, got %v", err)
		}
	})

	t.Run("no lease metadata", func(t *testing.T) {
		// A full-run checkpoint journal is a valid journal but not a
		// segment: it carries no lease and must not be merged as one.
		fullDir := t.TempDir()
		if _, err := Run(context.Background(), sw, RunConfig{
			Workers:    1,
			Checkpoint: &Checkpoint{Dir: fullDir},
		}); err != nil {
			t.Fatal(err)
		}
		_, err := ReadSegment(journalPath(fullDir, sw.ID), sw)
		if err == nil || !strings.Contains(err.Error(), "no lease metadata") {
			t.Fatalf("want lease-metadata rejection, got %v", err)
		}
	})

	t.Run("wrong sweep", func(t *testing.T) {
		other := testSweep()
		other.BaseSeed = 1234
		_, err := ReadSegment(segPath, other)
		if !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("want ErrCheckpointMismatch for wrong sweep, got %v", err)
		}
	})

	t.Run("missing file", func(t *testing.T) {
		_, err := ReadSegment(filepath.Join(t.TempDir(), "absent.journal"), sw)
		if !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("want os.ErrNotExist, got %v", err)
		}
	})
}

// TestShardSpecValidation: a shard range outside the grid is refused up
// front, and an empty range runs zero cells.
func TestShardSpecValidation(t *testing.T) {
	sw := testSweep()
	for _, bad := range []ShardSpec{{Start: -1, End: 4}, {Start: 0, End: 13}, {Start: 8, End: 4}} {
		bad := bad
		if _, err := Run(context.Background(), sw, RunConfig{Shard: &bad}); err == nil ||
			!strings.Contains(err.Error(), "shard range") {
			t.Errorf("Shard %+v: want range error, got %v", bad, err)
		}
	}
	res, err := Run(context.Background(), testSweep(), RunConfig{Shard: &ShardSpec{Start: 4, End: 4}})
	if err != nil {
		t.Fatalf("empty shard: %v", err)
	}
	if res.Partial {
		t.Error("empty shard marked Partial")
	}
}
