package engine

// Series is one plotted line: a label and a Y value per X position.
// It lives in the engine package (re-exported by internal/experiments)
// because the sweep runner assembles figures directly from cell results.
type Series struct {
	Label string `json:"label"`
	// Unit annotates table headers; empty means the figure's default
	// (µJ for cost figures).
	Unit string    `json:"unit,omitempty"`
	Y    []float64 `json:"y"`
	// CI95 optionally holds the 95% confidence half-width of each Y
	// (same length as Y) for experiments averaged over random seeds.
	CI95 []float64 `json:"ci95,omitempty"`
}

// Figure is the structured output of one experiment: the X axis and one
// series per algorithm/configuration, in the paper's units.
type Figure struct {
	ID     string    `json:"id"`     // e.g. "fig8"
	Title  string    `json:"title"`  // what the paper's figure shows
	XLabel string    `json:"xlabel"` // x-axis meaning
	YLabel string    `json:"ylabel"` // y-axis meaning (µJ for costs)
	X      []float64 `json:"x"`
	Series []Series  `json:"series"`
}

// Get returns the series with the given label, or nil.
func (f *Figure) Get(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}
