package engine

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffPinnedSchedule pins the exact deterministic backoff
// schedule for two cell seeds: base 10ms doubling to an 80ms cap, with
// splitmix64 jitter in [0.5, 1.0) keyed by (seed, retry). These values
// are part of the reproducibility contract — a rerun of the same sweep
// must replay the same delays, so any change here is a breaking change
// to recorded experiment timing, not a refactor.
func TestBackoffPinnedSchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	cases := []struct {
		seed  int64
		retry int
		want  time.Duration
	}{
		{seed: 7, retry: 1, want: 7615335},   // 7.615335ms
		{seed: 7, retry: 2, want: 17390873},  // 17.390873ms
		{seed: 7, retry: 3, want: 37774368},  // 37.774368ms
		{seed: 7, retry: 4, want: 57949571},  // 57.949571ms
		{seed: 7, retry: 5, want: 60444059},  // 60.444059ms
		{seed: 7, retry: 6, want: 48106378},  // 48.106378ms
		{seed: 42, retry: 1, want: 6181802},  // 6.181802ms
		{seed: 42, retry: 2, want: 10082189}, // 10.082189ms
		{seed: 42, retry: 3, want: 34135024}, // 34.135024ms
		{seed: 42, retry: 4, want: 40104135}, // 40.104135ms
		{seed: 42, retry: 5, want: 58637604}, // 58.637604ms
		{seed: 42, retry: 6, want: 69479805}, // 69.479805ms
	}
	for _, tc := range cases {
		if got := p.Backoff(tc.retry, tc.seed); got != tc.want {
			t.Errorf("Backoff(retry=%d, seed=%d) = %v, want %v", tc.retry, tc.seed, got, tc.want)
		}
	}
}

// TestBackoffMaxDelayClamp: once the exponential curve reaches MaxDelay,
// every later retry's delay stays within [MaxDelay/2, MaxDelay) — the
// cap scaled by the jitter range — no matter how large retry grows.
func TestBackoffMaxDelayClamp(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 16 * time.Millisecond}
	for retry := 5; retry <= 64; retry++ {
		for seed := int64(0); seed < 20; seed++ {
			d := p.Backoff(retry, seed)
			if d < p.MaxDelay/2 || d >= p.MaxDelay {
				t.Fatalf("Backoff(retry=%d, seed=%d) = %v outside clamp [%v, %v)",
					retry, seed, d, p.MaxDelay/2, p.MaxDelay)
			}
		}
	}
	// Uncapped policy must not overflow into a negative duration even at
	// absurd retry counts: the doubling loop detects overflow and falls
	// back to MaxDelay (zero here, meaning the base keeps the last
	// pre-overflow value's clamp path — the result must stay positive).
	huge := RetryPolicy{BaseDelay: time.Hour}
	if d := huge.Backoff(63, 1); d < 0 {
		t.Errorf("uncapped Backoff overflowed to %v", d)
	}
}

// TestRetryBudgetExhaustedByPanics: a cell whose algorithm panics on
// every attempt consumes exactly MaxAttempts attempts, surfaces as a
// panicking CellError, and fails the run — the panic never escapes the
// worker pool.
func TestRetryBudgetExhaustedByPanics(t *testing.T) {
	const budget = 3
	attempts := make(map[[2]int]int) // (point, seed) → attempts; runs serially at Workers:1
	sw := testSweep()
	sw.Algorithms = sw.Algorithms[:1]
	sw.Algorithms[0].Run = func(ctx context.Context, inst *Instance) (CellResult, error) {
		attempts[[2]int{inst.Point, inst.Seed}]++
		panic("deliberate test panic")
	}

	res, err := Run(context.Background(), sw, RunConfig{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: budget},
	})
	if err == nil {
		t.Fatal("run with always-panicking algorithm succeeded")
	}
	var cellErr *CellError
	if !errors.As(err, &cellErr) {
		t.Fatalf("want *CellError, got %T: %v", err, err)
	}
	if !cellErr.Panicked {
		t.Errorf("CellError not marked Panicked: %v", cellErr)
	}
	if cellErr.Attempts != budget {
		t.Errorf("CellError.Attempts = %d, want %d", cellErr.Attempts, budget)
	}
	if cellErr.Stack == "" {
		t.Error("panicking CellError carries no stack trace")
	}
	for cell, n := range attempts {
		if n != budget {
			t.Errorf("cell %v ran %d attempts, want exactly %d", cell, n, budget)
		}
	}
	if res == nil || len(res.Failed) == 0 {
		t.Fatal("result does not list the failed cells")
	}
	for _, f := range res.Failed {
		if f.Attempts != budget {
			t.Errorf("failed cell %s/%d attempts = %d, want %d", f.Algorithm, f.Seed, f.Attempts, budget)
		}
	}
}
