package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// FramedRecord is one decoded line of a CRC-framed JSONL file — the
// PR 5 journal format (journal.go) exposed generically so other
// crash-safe stores (the wrsnd plan-cache journal) can reuse the exact
// framing, CRC validation and torn-tail semantics without reimplementing
// them.
type FramedRecord struct {
	// Kind is the caller-defined record kind tag.
	Kind string
	// Rec is the CRC-validated payload.
	Rec json.RawMessage
}

// EncodeFramed frames one record as a CRC-32 JSONL line (newline
// included): the payload is marshalled, checksummed with CRC-32 (IEEE)
// and wrapped in the journal line envelope. A file of EncodeFramed lines
// round-trips through DecodeFramed.
func EncodeFramed(kind string, rec interface{}) ([]byte, error) {
	return encodeLine(kind, rec)
}

// DecodeFramed replays CRC-framed JSONL bytes into records plus the byte
// length of the valid prefix. Like the checkpoint journal's replay it is
// torn-tail tolerant: an unterminated, corrupt or CRC-failing *final*
// line is the artifact of a crash mid-append and is silently excluded
// from validLen (the caller may truncate it away); corruption anywhere
// earlier returns ErrJournalCorrupt.
func DecodeFramed(data []byte) (recs []FramedRecord, validLen int, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Unterminated final line: the append never completed.
			return recs, off, nil
		}
		next := off + nl + 1
		kind, raw, lerr := decodeLine(data[off : off+nl])
		if lerr != nil {
			if next >= len(data) {
				return recs, off, nil // torn tail: keep the valid prefix
			}
			return nil, 0, fmt.Errorf("%w: record at byte %d: %v", ErrJournalCorrupt, off, lerr)
		}
		recs = append(recs, FramedRecord{Kind: kind, Rec: raw})
		off = next
	}
	return recs, off, nil
}
