package engine

import (
	"context"
	"fmt"
	"time"
)

// RetryPolicy re-runs failed cells (solver errors, injected faults,
// recovered panics, per-cell timeouts) before declaring them terminally
// failed. The zero value disables retries: every cell gets exactly one
// attempt.
//
// Backoff is exponential and fully deterministic: the delay before retry
// k is BaseDelay*2^(k-1) capped at MaxDelay, scaled by a jitter factor
// in [0.5, 1.0) derived from the cell's instance seed — never from
// wall-clock randomness — so a rerun of the same sweep replays the same
// delays.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per cell (first run
	// included); values below 1 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the delay before the first retry (0 = retry
	// immediately).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = uncapped).
	MaxDelay time.Duration
}

// attempts returns the effective attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Attempts returns the effective attempt budget (always >= 1) — the
// exported form external retry loops (the wrsnd planning daemon) drive
// their attempt counters from.
func (p RetryPolicy) Attempts() int { return p.attempts() }

// Backoff returns the deterministic delay before retry number retry
// (1 = first retry) of the cell whose instance seed is seed.
func (p RetryPolicy) Backoff(retry int, seed int64) time.Duration {
	if p.BaseDelay <= 0 || retry < 1 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		next := d * 2
		if next < d { // overflow
			d = p.MaxDelay
			break
		}
		d = next
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Jitter in [0.5, 1.0), derived from (seed, retry) so reruns are
	// reproducible and concurrent cells don't retry in lockstep.
	h := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(retry))
	frac := 0.5 + float64(h>>11)/float64(1<<54)
	return time.Duration(float64(d) * frac)
}

// splitmix64 is the SplitMix64 finaliser: a cheap, platform-stable
// integer mixer behind deterministic jitter and chaos draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sleepCtx sleeps for d unless ctx is cancelled first; it reports
// whether the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// CellError is one cell's terminal failure: the cell's grid coordinates,
// how many attempts were spent, and — when the failure was a recovered
// solver panic — the panic value's message and stack trace. It unwraps
// to the last attempt's error, so errors.Is sees context.DeadlineExceeded
// for timed-out cells and ErrChaos for injected faults.
type CellError struct {
	Sweep       string
	Point, Seed int
	X           float64
	Algorithm   string
	// Attempts is how many attempts ran before the cell was declared
	// terminally failed.
	Attempts int
	// Panicked marks a recovered panic; Stack holds its stack trace.
	Panicked bool
	Stack    string
	// Err is the last attempt's error (for panics, "panic: <value>").
	Err error
}

func (e *CellError) Error() string {
	kind := "failed"
	if e.Panicked {
		kind = "panicked"
	}
	return fmt.Sprintf("engine: %s: %s at point %d (x=%v) seed %d %s after %d attempt(s): %v",
		e.Sweep, e.Algorithm, e.Point, e.X, e.Seed, kind, e.Attempts, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }
