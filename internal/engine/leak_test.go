package engine

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// settleGoroutines polls until the goroutine count returns to (roughly)
// the baseline, dumping stacks on timeout — the leak gate for the
// early-cancellation paths. Run under -race in CI.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for {
		runtime.GC()
		n = runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine leak: %d at baseline, %d after settling\n%s", baseline, n, buf)
}

// TestRunNoLeakOnCancelUnderSaturatedLimiter pins the regression where a
// cell queued behind a fully-occupied shared Limiter kept its worker
// goroutine pinned (and Run blocked) after the sweep's context was
// cancelled: the limiter wait must give up on cancellation, not wait for
// some other sweep to release a slot that may never come.
func TestRunNoLeakOnCancelUnderSaturatedLimiter(t *testing.T) {
	baseline := runtime.NumGoroutine()

	lim := NewLimiter(1)
	if !lim.TryAcquire() {
		t.Fatalf("fresh limiter has no free slot")
	}
	// The only slot is now held by "another sweep" and never released
	// until after Run must already have returned.

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	sw := testSweep()
	sw.Algorithms[0].Run = func(ctx context.Context, inst *Instance) (CellResult, error) {
		ran.Add(1)
		return CellResult{Values: []float64{1}, Evaluations: 1}, nil
	}

	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, sw, RunConfig{Workers: 4, Limiter: lim})
		done <- err
	}()
	// Give the workers time to park on the saturated limiter, then
	// cancel the sweep out from under them.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("Run still blocked 10s after cancellation with a saturated shared limiter\n%s", buf)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d cells ran despite the slot never being free", ran.Load())
	}
	lim.Release()
	settleGoroutines(t, baseline)
}

// TestRunNoLeakOnEarlyCancellation cancels a sweep while cells are
// mid-solve and requires every engine goroutine (workers, drain timer,
// progress plumbing) to exit.
func TestRunNoLeakOnEarlyCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{}, 64)
	sw := testSweep()
	for i := range sw.Algorithms {
		sw.Algorithms[i].Run = func(ctx context.Context, inst *Instance) (CellResult, error) {
			started <- struct{}{}
			<-ctx.Done()
			return CellResult{}, ctx.Err()
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, sw, RunConfig{Workers: 4, DrainGrace: 100 * time.Millisecond})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Run did not return after cancellation")
	}
	settleGoroutines(t, baseline)
}

// TestRetryNoAttemptsAfterCancellation: a cancelled sweep burns no retry
// budget — cells observed after cancellation fail once with the
// cancellation error instead of sleeping through MaxAttempts backoffs.
func TestRetryNoAttemptsAfterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var attempts atomic.Int64
	sw := testSweep()
	for i := range sw.Algorithms {
		sw.Algorithms[i].Run = func(ctx context.Context, inst *Instance) (CellResult, error) {
			attempts.Add(1)
			return CellResult{}, errors.New("always failing")
		}
	}
	start := time.Now()
	_, err := Run(ctx, sw, RunConfig{
		Workers: 2,
		Retry:   RetryPolicy{MaxAttempts: 5, BaseDelay: time.Second, MaxDelay: 5 * time.Second},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if got := attempts.Load(); got != 0 {
		t.Fatalf("%d attempts ran under a pre-cancelled context, want 0", got)
	}
	// 5 attempts with 1s base backoff would take seconds; failing fast
	// must not.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled sweep took %s, should fail fast", elapsed)
	}
}
