package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func figureJSON(t *testing.T, res *Result) string {
	t.Helper()
	buf, err := json.Marshal(res.Figure)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestCheckpointResumeDifferential is the kill-at-cell-K differential
// test: a sweep killed (context-cancelled) after K cells completed and
// resumed from its checkpoint journal produces byte-identical figure
// JSON to an uninterrupted run, for K ∈ {0, mid, all-but-one} and
// workers ∈ {1, 4}.
func TestCheckpointResumeDifferential(t *testing.T) {
	const total = 2 * 3 * 2 // points × seeds × algorithms of testSweep
	for _, workers := range []int{1, 4} {
		clean, err := Run(context.Background(), testSweep(), RunConfig{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d clean run: %v", workers, err)
		}
		cleanJSON := figureJSON(t, clean)

		for _, k := range []int{0, total / 2, total - 1} {
			t.Run(fmt.Sprintf("workers=%d/kill-at-%d", workers, k), func(t *testing.T) {
				dir := t.TempDir()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var finished atomic.Int64
				cfg := RunConfig{
					Workers:    workers,
					Checkpoint: &Checkpoint{Dir: dir},
					Progress: func(ev Event) {
						if ev.Kind == CellFinished && ev.Err == nil && !ev.Resumed {
							if finished.Add(1) >= int64(k) {
								cancel()
							}
						}
					},
				}
				if k == 0 {
					cancel()
				}
				res, err := Run(ctx, testSweep(), cfg)
				if err == nil {
					// The cancel raced with completion (possible for
					// k = total-1 at high worker counts); the journal
					// is then simply complete.
					if k < total-workers {
						t.Fatalf("interrupted run unexpectedly succeeded at k=%d", k)
					}
				} else if !errors.Is(err, context.Canceled) {
					t.Fatalf("interrupted run: want context.Canceled, got %v", err)
				} else if !res.Partial {
					t.Fatal("interrupted result not marked Partial")
				}

				resumed, err := Run(context.Background(), testSweep(), RunConfig{
					Workers:    workers,
					Checkpoint: &Checkpoint{Dir: dir, Resume: true},
				})
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				if resumed.Resumed < k {
					t.Errorf("resume restored %d cells, want at least the %d that finished before the kill", resumed.Resumed, k)
				}
				if got := figureJSON(t, resumed); got != cleanJSON {
					t.Errorf("resumed figure JSON differs from clean run:\n%s\nvs\n%s", got, cleanJSON)
				}
			})
		}
	}
}

// TestResumeWithoutJournal: -resume against an empty checkpoint
// directory is a fresh run, not an error.
func TestResumeWithoutJournal(t *testing.T) {
	clean, err := Run(context.Background(), testSweep(), RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), testSweep(), RunConfig{
		Workers:    2,
		Checkpoint: &Checkpoint{Dir: t.TempDir(), Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 0 {
		t.Errorf("Resumed = %d from an empty directory", res.Resumed)
	}
	if figureJSON(t, res) != figureJSON(t, clean) {
		t.Error("fresh resume run differs from clean run")
	}
}

// TestResumeCompleteJournal: resuming a fully complete journal restores
// every cell without running any algorithm, byte-identically.
func TestResumeCompleteJournal(t *testing.T) {
	dir := t.TempDir()
	first, err := Run(context.Background(), testSweep(), RunConfig{
		Workers:    2,
		Checkpoint: &Checkpoint{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := testSweep()
	for ai := range sw.Algorithms {
		sw.Algorithms[ai].Run = func(ctx context.Context, inst *Instance) (CellResult, error) {
			return CellResult{}, errors.New("must not run: every cell is journaled")
		}
	}
	res, err := Run(context.Background(), sw, RunConfig{
		Workers:    2,
		Checkpoint: &Checkpoint{Dir: dir, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 2*3*2 {
		t.Errorf("Resumed = %d, want all 12 cells", res.Resumed)
	}
	if figureJSON(t, res) != figureJSON(t, first) {
		t.Error("fully resumed run differs from original")
	}
	if res.Evaluations != first.Evaluations {
		t.Errorf("Evaluations not restored: %d vs %d", res.Evaluations, first.Evaluations)
	}
}

// TestResumeWithoutResumeFlagTruncates: pointing -checkpoint at an
// existing journal without Resume starts over.
func TestResumeWithoutResumeFlagTruncates(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), testSweep(), RunConfig{Workers: 2, Checkpoint: &Checkpoint{Dir: dir}}); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	sw := testSweep()
	for ai := range sw.Algorithms {
		inner := sw.Algorithms[ai].Run
		sw.Algorithms[ai].Run = func(ctx context.Context, inst *Instance) (CellResult, error) {
			ran.Add(1)
			return inner(ctx, inst)
		}
	}
	res, err := Run(context.Background(), sw, RunConfig{Workers: 2, Checkpoint: &Checkpoint{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 0 || ran.Load() != 2*3*2 {
		t.Errorf("without Resume: restored %d, ran %d — journal was not truncated", res.Resumed, ran.Load())
	}
}

// TestResumedProgressEvents: restored cells surface as Resumed finish
// events with zero duration, before any live cell runs.
func TestResumedProgressEvents(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), testSweep(), RunConfig{Workers: 2, Checkpoint: &Checkpoint{Dir: dir}}); err != nil {
		t.Fatal(err)
	}
	var events []Event
	_, err := Run(context.Background(), testSweep(), RunConfig{
		Workers:    2,
		Checkpoint: &Checkpoint{Dir: dir, Resume: true},
		Progress:   func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	resumed, maxDone := 0, 0
	for _, ev := range events {
		if ev.Kind != CellFinished {
			t.Errorf("unexpected non-finish event on a full resume: %+v", ev)
			continue
		}
		if !ev.Resumed || ev.Duration != 0 {
			t.Errorf("restored cell event not marked Resumed with zero duration: %+v", ev)
		}
		resumed++
		if ev.Done > maxDone {
			maxDone = ev.Done
		}
	}
	if resumed != 12 || maxDone != 12 {
		t.Errorf("resumed events = %d, maxDone = %d, want 12 each", resumed, maxDone)
	}
}

// TestResumeDeterministicAcrossWorkerCounts: a journal written at one
// worker count resumes byte-identically at another.
func TestResumeDeterministicAcrossWorkerCounts(t *testing.T) {
	clean, err := Run(context.Background(), testSweep(), RunConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var finished atomic.Int64
	_, _ = Run(ctx, testSweep(), RunConfig{
		Workers:    4,
		Checkpoint: &Checkpoint{Dir: dir},
		Progress: func(ev Event) {
			if ev.Kind == CellFinished && ev.Err == nil && finished.Add(1) >= 5 {
				cancel()
			}
		},
	})
	res, err := Run(context.Background(), testSweep(), RunConfig{
		Workers:    1,
		Checkpoint: &Checkpoint{Dir: dir, Resume: true},
		// A cell timeout also exercises the timeout path under resume.
		CellTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if figureJSON(t, res) != figureJSON(t, clean) {
		t.Error("cross-worker-count resume differs from clean run")
	}
}
