package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"wrsn/internal/charging"
	"wrsn/internal/energy"
	"wrsn/internal/geom"
	"wrsn/internal/model"
)

// testProblem draws random connected instances like the experiment
// generators do, small enough that every registered solver finishes in
// milliseconds.
func testProblem(rng *rand.Rand, posts, nodes int) (*model.Problem, error) {
	field := geom.Square(120)
	for attempt := 0; attempt < 1000; attempt++ {
		p := &model.Problem{
			Posts:    field.RandomPoints(rng, posts),
			BS:       field.Corner(),
			Nodes:    nodes,
			Energy:   energy.Default(),
			Charging: charging.Default(),
		}
		if err := p.Validate(); err == nil {
			return p, nil
		}
	}
	return nil, errors.New("no connected test instance")
}

func testSweep() *Sweep {
	sw := &Sweep{
		ID:       "test-sweep",
		Title:    "engine test sweep",
		XLabel:   "nodes",
		YLabel:   "cost",
		Seeds:    3,
		BaseSeed: 7,
	}
	for _, nodes := range []int{12, 16} {
		nodes := nodes
		sw.Points = append(sw.Points, Point{
			X:     float64(nodes),
			Label: fmt.Sprintf("%d nodes", nodes),
			Gen: ProblemGen(func(rng *rand.Rand) (*model.Problem, error) {
				return testProblem(rng, 5, nodes)
			}),
		})
	}
	for _, name := range []string{"rfh", "idb"} {
		solve := MustSolver(name)
		label := name
		sw.Algorithms = append(sw.Algorithms, Algorithm{
			Label:   label,
			Outputs: []SeriesSpec{{Label: label, CI: true}},
			Run: func(ctx context.Context, inst *Instance) (CellResult, error) {
				res, err := solve(ctx, inst.Problem())
				if err != nil {
					return CellResult{}, err
				}
				return CellResult{Values: []float64{res.Cost}, Evaluations: res.Evaluations}, nil
			},
		})
	}
	return sw
}

// TestRunDeterminism is the golden determinism check: the same sweep at
// workers 1, 4 and GOMAXPROCS must produce byte-identical figure JSON
// and identical raw cell values.
func TestRunDeterminism(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var goldenJSON []byte
	var goldenRaw [][][][]float64
	for _, w := range workerCounts {
		res, err := Run(context.Background(), testSweep(), RunConfig{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		buf, err := json.Marshal(res.Figure)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if goldenJSON == nil {
			goldenJSON = buf
			goldenRaw = res.Raw
			continue
		}
		if string(buf) != string(goldenJSON) {
			t.Errorf("workers=%d produced different figure JSON:\n%s\nvs workers=1:\n%s", w, buf, goldenJSON)
		}
		if !reflect.DeepEqual(res.Raw, goldenRaw) {
			t.Errorf("workers=%d produced different raw values", w)
		}
	}
}

// TestRunMemoDeterminism extends the golden determinism check across the
// shared-memo axis: the per-instance deployment-cost memo must never
// change a result, at any worker count, whether sized explicitly,
// defaulted, or disabled. Memo hits return exactly the cost the first
// pricing computed, so every combination is bit-identical by design;
// this test enforces it.
func TestRunMemoDeterminism(t *testing.T) {
	configs := []RunConfig{
		{Workers: 1},
		{Workers: 1, MemoEntries: model.DefaultSharedMemoEntries},
		{Workers: 4},
		{Workers: 4, MemoEntries: 64},
		{Workers: 4, MemoEntries: model.DefaultSharedMemoEntries},
	}
	var goldenJSON []byte
	var goldenRaw [][][][]float64
	for _, cfg := range configs {
		res, err := Run(context.Background(), testSweep(), cfg)
		if err != nil {
			t.Fatalf("workers=%d memo=%d: %v", cfg.Workers, cfg.MemoEntries, err)
		}
		buf, err := json.Marshal(res.Figure)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if goldenJSON == nil {
			goldenJSON = buf
			goldenRaw = res.Raw
			continue
		}
		if string(buf) != string(goldenJSON) {
			t.Errorf("workers=%d memo=%d produced different figure JSON:\n%s\nvs golden:\n%s",
				cfg.Workers, cfg.MemoEntries, buf, goldenJSON)
		}
		if !reflect.DeepEqual(res.Raw, goldenRaw) {
			t.Errorf("workers=%d memo=%d produced different raw values", cfg.Workers, cfg.MemoEntries)
		}
	}
}

// TestRunFigureShape checks labels, CI and series ordering follow the
// spec declaration order.
func TestRunFigureShape(t *testing.T) {
	res, err := Run(context.Background(), testSweep(), RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figure
	if fig.ID != "test-sweep" || len(fig.X) != 2 || fig.X[0] != 12 {
		t.Errorf("unexpected figure header: %+v", fig)
	}
	if len(fig.Series) != 2 || fig.Series[0].Label != "rfh" || fig.Series[1].Label != "idb" {
		t.Fatalf("series not in declaration order: %+v", fig.Series)
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 || len(s.CI95) != 2 {
			t.Errorf("series %q: wrong lengths: %+v", s.Label, s)
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Errorf("series %q: non-positive cost %v", s.Label, y)
			}
		}
	}
	if res.Timing.Cells != 2*3*2 {
		t.Errorf("timing cells = %d, want 12", res.Timing.Cells)
	}
	if res.Evaluations <= 0 {
		t.Errorf("evaluations not aggregated: %d", res.Evaluations)
	}
}

// TestRunVector checks the Fig6-style transposed assembly: one series
// per point, elementwise-averaged over seeds, on an explicit X axis.
func TestRunVector(t *testing.T) {
	sw := testSweep()
	sw.X = []float64{1, 2, 3}
	sw.Algorithms = []Algorithm{{
		Label:   "vec",
		Outputs: []SeriesSpec{{Vector: true}},
		Run: func(ctx context.Context, inst *Instance) (CellResult, error) {
			base := inst.X * float64(inst.Seed+1)
			return CellResult{Values: []float64{base, base + 1, base + 2}}, nil
		},
	}}
	res, err := Run(context.Background(), sw, RunConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figure
	if len(fig.Series) != len(sw.Points) {
		t.Fatalf("want one series per point, got %d", len(fig.Series))
	}
	if fig.Series[0].Label != "12 nodes" || fig.Series[1].Label != "16 nodes" {
		t.Errorf("vector series labels wrong: %+v", fig.Series)
	}
	// mean over seeds 0..2 of 12*(s+1) = 12*2 = 24 at the first X.
	if got := fig.Series[0].Y[0]; got != 24 {
		t.Errorf("vector mean = %v, want 24", got)
	}
}

// TestRunCancellation: a cancelled context aborts the sweep and the
// reported error unwraps to context.Canceled.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, testSweep(), RunConfig{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunCellTimeout: a cell exceeding CellTimeout fails the sweep with
// context.DeadlineExceeded, within roughly one timeout, and the error
// names the deadline that was hit (context.WithTimeoutCause).
func TestRunCellTimeout(t *testing.T) {
	sw := testSweep()
	var causes []string
	var mu sync.Mutex
	sw.Algorithms = []Algorithm{{
		Label:   "stuck",
		Outputs: []SeriesSpec{{Label: "stuck"}},
		Run: func(ctx context.Context, inst *Instance) (CellResult, error) {
			<-ctx.Done()
			mu.Lock()
			causes = append(causes, context.Cause(ctx).Error())
			mu.Unlock()
			return CellResult{}, ctx.Err()
		},
	}}
	start := time.Now()
	_, err := Run(context.Background(), sw, RunConfig{Workers: 2, CellTimeout: 30 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	const wantCause = "cell deadline (30ms) exceeded"
	if !strings.Contains(err.Error(), wantCause) {
		t.Errorf("sweep error %q does not name the cell deadline", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CellError, got %T: %v", err, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(causes) == 0 {
		t.Fatal("no cell observed a cancellation cause")
	}
	for _, c := range causes {
		if !strings.Contains(c, wantCause) {
			t.Errorf("context.Cause inside cell = %q, want it to name the 30ms deadline", c)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v, want about one cell timeout", elapsed)
	}
}

// TestRunPerPointSeeds: Point.Seeds overrides the sweep default.
func TestRunPerPointSeeds(t *testing.T) {
	sw := testSweep()
	sw.Points[1].Seeds = 1
	var mu sync.Mutex
	seen := map[string]int{}
	sw.Algorithms = sw.Algorithms[:1]
	inner := sw.Algorithms[0].Run
	sw.Algorithms[0].Run = func(ctx context.Context, inst *Instance) (CellResult, error) {
		mu.Lock()
		seen[fmt.Sprintf("%d/%d", inst.Point, inst.Seed)]++
		mu.Unlock()
		return inner(ctx, inst)
	}
	if _, err := Run(context.Background(), sw, RunConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3+1 {
		t.Errorf("cells run: %v, want 3 seeds for point 0 and 1 for point 1", seen)
	}
}

// TestRunSeedScheme: instance seeds follow BaseSeed + SeedStride*point
// + seed exactly.
func TestRunSeedScheme(t *testing.T) {
	sw := testSweep()
	sw.SeedStride = 100
	var mu sync.Mutex
	got := map[int64]bool{}
	sw.Algorithms = []Algorithm{{
		Label:   "probe",
		Outputs: []SeriesSpec{{Label: "probe"}},
		Run: func(ctx context.Context, inst *Instance) (CellResult, error) {
			mu.Lock()
			got[inst.InstanceSeed] = true
			mu.Unlock()
			return CellResult{Values: []float64{0}}, nil
		},
	}}
	if _, err := Run(context.Background(), sw, RunConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	for pi := 0; pi < 2; pi++ {
		for s := 0; s < 3; s++ {
			want := int64(7 + 100*pi + s)
			if !got[want] {
				t.Errorf("missing instance seed %d (have %v)", want, got)
			}
		}
	}
}

// TestRunValidation rejects malformed sweeps up front.
func TestRunValidation(t *testing.T) {
	bad := []*Sweep{
		{}, // no ID
		{ID: "x"},
		{ID: "x", Points: []Point{{Gen: ProblemGen(func(*rand.Rand) (*model.Problem, error) { return nil, nil })}}},
	}
	for i, sw := range bad {
		if _, err := Run(context.Background(), sw, RunConfig{}); err == nil {
			t.Errorf("sweep %d accepted", i)
		}
	}
	// Vector output must be alone and needs an explicit X.
	sw := testSweep()
	sw.Algorithms[0].Outputs = []SeriesSpec{{Vector: true}, {Label: "extra"}}
	if _, err := Run(context.Background(), sw, RunConfig{}); err == nil {
		t.Error("vector output with sibling accepted")
	}
	sw = testSweep()
	sw.Algorithms[0].Outputs = []SeriesSpec{{Vector: true}}
	if _, err := Run(context.Background(), sw, RunConfig{}); err == nil {
		t.Error("vector output without X accepted")
	}
}

// TestRegistry covers lookup, sorted listing and duplicate rejection.
func TestRegistry(t *testing.T) {
	for _, name := range []string{"rfh", "rfh-iterative", "idb", "idb-parallel", "local-search", "idb-local-search", "anneal", "auto", "optimal"} {
		if _, ok := Solver(name); !ok {
			t.Errorf("solver %q not registered (have %v)", name, Solvers())
		}
	}
	if _, ok := Solver("definitely-not-registered"); ok {
		t.Error("unknown solver resolved")
	}
	names := Solvers()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Solvers() not sorted: %v", names)
		}
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate Register", func() { Register("rfh", []string{model.KindDeployment}, MustSolver("rfh")) })
	mustPanic("empty Register", func() { Register("", nil, nil) })
	mustPanic("unknown MustSolver", func() { MustSolver("definitely-not-registered") })
}

// TestSharedLimiter: two sweeps sharing one single-slot limiter never
// run two cells at once.
func TestSharedLimiter(t *testing.T) {
	limiter := NewLimiter(1)
	var mu sync.Mutex
	active, maxActive := 0, 0
	probe := func(ctx context.Context, inst *Instance) (CellResult, error) {
		mu.Lock()
		active++
		if active > maxActive {
			maxActive = active
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		active--
		mu.Unlock()
		return CellResult{Values: []float64{1}}, nil
	}
	newSweep := func(id string) *Sweep {
		sw := testSweep()
		sw.ID = id
		sw.Algorithms = []Algorithm{{Label: "probe", Outputs: []SeriesSpec{{Label: "probe"}}, Run: probe}}
		return sw
	}
	var wg sync.WaitGroup
	for _, id := range []string{"a", "b"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if _, err := Run(context.Background(), newSweep(id), RunConfig{Workers: 4, Limiter: limiter}); err != nil {
				t.Errorf("sweep %s: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	if maxActive != 1 {
		t.Errorf("max concurrent cells = %d, want 1 under a single-slot limiter", maxActive)
	}
}

// TestProgressEvents: every cell yields a start and a finish event, and
// Done reaches Total.
func TestProgressEvents(t *testing.T) {
	var events []Event
	_, err := Run(context.Background(), testSweep(), RunConfig{
		Workers:  2,
		Progress: func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var started, finished, maxDone int
	for _, ev := range events {
		switch ev.Kind {
		case CellStarted:
			started++
		case CellFinished:
			finished++
			if ev.Done > maxDone {
				maxDone = ev.Done
			}
			if ev.Err != nil {
				t.Errorf("cell error: %v", ev.Err)
			}
		}
	}
	const total = 2 * 3 * 2
	if started != total || finished != total || maxDone != total {
		t.Errorf("events started=%d finished=%d maxDone=%d, want %d each", started, finished, maxDone, total)
	}
}
