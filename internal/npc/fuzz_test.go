package npc

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDIMACS hunts for panics and parse/serialise disagreements in
// the DIMACS reader. Run with `go test -fuzz=FuzzParseDIMACS ./internal/npc`;
// the seed corpus also executes on every plain `go test`.
func FuzzParseDIMACS(f *testing.F) {
	seeds := []string{
		"p cnf 3 2\n1 -2 3 0\n-1 2 -3 0\n",
		"c comment\np cnf 1 1\n1 0\n",
		"p cnf 0 0\n",
		"p cnf 2 1\n1 2\n0\n",
		"garbage",
		"p cnf 1 1\n",
		"p cnf 1 2\n1 0\n-1 0\n",
		"p cnf 9999 1\n1 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := ParseDIMACS(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must satisfy the validator...
		if vErr := formula.Validate(); vErr != nil {
			t.Fatalf("parser accepted a formula the validator rejects: %v\ninput: %q", vErr, input)
		}
		// ...and round-trip through our own writer.
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, formula); err != nil {
			t.Fatalf("cannot serialise accepted formula: %v", err)
		}
		back, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("cannot reparse own output %q: %v", buf.String(), err)
		}
		if back.String() != formula.String() {
			t.Fatalf("round trip changed formula: %q -> %q", formula, back)
		}
	})
}

// FuzzSolveAgainstBruteForce cross-checks DPLL on fuzz-generated tiny
// formulas encoded as byte strings.
func FuzzSolveAgainstBruteForce(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(3))
	f.Add([]byte{255, 254, 1, 1, 2}, uint8(2))
	f.Fuzz(func(t *testing.T, lits []byte, rawVars uint8) {
		nv := int(rawVars%8) + 1
		formula := &Formula{NumVars: nv}
		var clause Clause
		for _, b := range lits {
			v := int(b%uint8(nv)) + 1
			if b >= 128 {
				v = -v
			}
			clause = append(clause, Literal(v))
			if len(clause) == 3 {
				formula.Clauses = append(formula.Clauses, clause)
				clause = nil
			}
		}
		if len(formula.Clauses) == 0 || len(formula.Clauses) > 6 {
			return
		}
		count, err := CountSolutions(formula)
		if err != nil {
			return
		}
		_, sat, err := Solve(formula)
		if err != nil {
			t.Fatalf("Solve failed on %v: %v", formula, err)
		}
		if sat != (count > 0) {
			t.Fatalf("DPLL=%v but brute force count=%d for %v", sat, count, formula)
		}
	})
}
