package npc_test

import (
	"fmt"

	"wrsn/internal/npc"
)

// Example walks the paper's reduction end to end on the Fig. 3 clause:
// satisfiability of the formula is decided by whether the gadget
// network's optimal recharging cost reaches the bound W.
func Example() {
	formula := &npc.Formula{
		NumVars: 3,
		Clauses: []npc.Clause{{1, -2, -3}}, // x1 ∨ ¬x2 ∨ ¬x3
	}
	instance, err := npc.Reduce(formula, npc.DefaultParams())
	if err != nil {
		fmt.Println("reduce:", err)
		return
	}
	assignment, sat, err := npc.Solve(formula)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Printf("posts: %d, nodes: %d, W: %.1f\n", instance.NumPosts, instance.Nodes, instance.W)
	fmt.Println("satisfiable:", sat)

	deploy, parents, err := instance.CanonicalSolution(assignment)
	if err != nil {
		fmt.Println("canonical:", err)
		return
	}
	cost, err := instance.EvaluateSolution(deploy, parents)
	if err != nil {
		fmt.Println("evaluate:", err)
		return
	}
	fmt.Printf("canonical solution cost: %.1f (meets W: %v)\n", cost, cost <= instance.W)
	// Output:
	// posts: 8, nodes: 12, W: 141.5
	// satisfiable: true
	// canonical solution cost: 141.5 (meets W: true)
}
