package npc

import (
	"errors"
	"fmt"
	"math"

	"wrsn/internal/graph"
)

// Params are the radio/charging constants of the restricted problem the
// paper reduces to: two power levels with e2 = 4*e1, receive energy
// e0 < e1, single-node charging efficiency eta, and at most two nodes per
// post (a two-node post has twice the charging efficiency).
type Params struct {
	E0  float64 // receive energy per bit
	E1  float64 // transmit energy per bit at level l1 (l2 costs 4*E1)
	Eta float64 // single-node charging efficiency
}

// DefaultParams returns e0=1, e1=4, eta=1 (any values with 0<e0<e1 and
// 0<eta<=1 preserve the reduction).
func DefaultParams() Params { return Params{E0: 1, E1: 4, Eta: 1} }

// Validate checks the parameter constraints the proof relies on.
func (p Params) Validate() error {
	if !(p.E0 > 0 && p.E1 > 0 && p.E0 < p.E1) {
		return fmt.Errorf("npc: need 0 < e0 < e1, got e0=%g e1=%g", p.E0, p.E1)
	}
	if !(p.Eta > 0 && p.Eta <= 1) {
		return fmt.Errorf("npc: eta must be in (0, 1], got %g", p.Eta)
	}
	return nil
}

// GadgetEdge is a directed communication opportunity in the gadget
// network: the sender can reach To using power level Level (1 or 2).
type GadgetEdge struct {
	To    int
	Level int
}

// Instance is the deployment-and-routing instance produced by the
// reduction: the combinatorial U/V/S gadget network of Fig. 3.
type Instance struct {
	// Formula is the source 3-CNF formula.
	Formula *Formula
	// Params are the radio/charging constants.
	Params Params
	// NumPosts is N = 2n + 2m; the base station is vertex NumPosts.
	NumPosts int
	// Nodes is M = 3n + 3m.
	Nodes int
	// Labels names each post (U1.., V1.., S1,1..) for diagnostics.
	Labels []string
	// Edges[u] lists u's outgoing communication opportunities.
	Edges [][]GadgetEdge
	// W is the paper's decision bound: a solution of cost <= W exists
	// iff the formula is satisfiable.
	W float64
}

// Post index helpers. Layout: U_0..U_{m-1}, V_0..V_{m-1}, then for each
// variable i the pair (S_{i,1}, S_{i,2}).
func (in *Instance) uPost(j int) int    { return j }
func (in *Instance) vPost(j int) int    { return len(in.Formula.Clauses) + j }
func (in *Instance) sPost(i, k int) int { return 2*len(in.Formula.Clauses) + 2*i + (k - 1) }

// UPost, VPost and SPost expose the gadget layout for tests and tools.
// i is the 0-based variable index and k is 1 (positive) or 2 (negative).
func (in *Instance) UPost(j int) int { return in.uPost(j) }
func (in *Instance) VPost(j int) int { return in.vPost(j) }
func (in *Instance) SPost(i, k int) int {
	if k != 1 && k != 2 {
		panic(fmt.Sprintf("npc: SPost k must be 1 or 2, got %d", k))
	}
	return in.sPost(i, k)
}

// BSIndex returns the base-station vertex index.
func (in *Instance) BSIndex() int { return in.NumPosts }

// TxEnergy returns the per-bit transmit energy of level 1 or 2.
func (in *Instance) TxEnergy(level int) (float64, error) {
	switch level {
	case 1:
		return in.Params.E1, nil
	case 2:
		return 4 * in.Params.E1, nil
	default:
		return 0, fmt.Errorf("npc: invalid power level %d", level)
	}
}

// Reduce builds the paper's gadget instance from a 3-CNF formula:
//
//   - one post U_j and one post V_j per clause, one pair (S_i1, S_i2) per
//     variable;
//   - only the U_j can reach the base station, and only at l2;
//   - S_i1 can reach U_j at l2 iff x_i ∈ C_j (S_i2 iff ¬x_i ∈ C_j);
//   - siblings S_i1 and S_i2 reach each other at l1;
//   - V_j reaches the S posts of C_j's literals at l1;
//   - M = 3n+3m nodes over N = 2n+2m posts, at most two per post;
//   - W = 7m·e1/η + 9n·e1/η + m·e0/η + 3n·e0/(2η).
func Reduce(f *Formula, params Params) (*Instance, error) {
	if err := f.ValidateFor3CNF(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n, m := f.NumVars, len(f.Clauses)
	in := &Instance{
		Formula:  f,
		Params:   params,
		NumPosts: 2*n + 2*m,
		Nodes:    3*n + 3*m,
	}
	in.Edges = make([][]GadgetEdge, in.NumPosts)
	in.Labels = make([]string, in.NumPosts)
	for j := 0; j < m; j++ {
		in.Labels[in.uPost(j)] = fmt.Sprintf("U%d", j+1)
		in.Labels[in.vPost(j)] = fmt.Sprintf("V%d", j+1)
	}
	for i := 0; i < n; i++ {
		in.Labels[in.sPost(i, 1)] = fmt.Sprintf("S%d,1", i+1)
		in.Labels[in.sPost(i, 2)] = fmt.Sprintf("S%d,2", i+1)
	}

	addEdge := func(from, to, level int) {
		in.Edges[from] = append(in.Edges[from], GadgetEdge{To: to, Level: level})
	}
	for j := 0; j < m; j++ {
		addEdge(in.uPost(j), in.BSIndex(), 2)
		for _, l := range f.Clauses[j] {
			k := 1
			if l.Negated() {
				k = 2
			}
			s := in.sPost(l.Var()-1, k)
			addEdge(s, in.uPost(j), 2)
			addEdge(in.vPost(j), s, 1)
		}
	}
	for i := 0; i < n; i++ {
		addEdge(in.sPost(i, 1), in.sPost(i, 2), 1)
		addEdge(in.sPost(i, 2), in.sPost(i, 1), 1)
	}

	e0, e1, eta := params.E0, params.E1, params.Eta
	in.W = 7*float64(m)*e1/eta + 9*float64(n)*e1/eta + float64(m)*e0/eta + 3*float64(n)*e0/(2*eta)
	return in, nil
}

// edgeLevel returns the minimum level at which from can reach to, or 0.
// Duplicate edges (a literal repeated in a clause) resolve to the lowest
// level.
func (in *Instance) edgeLevel(from, to int) int {
	best := 0
	for _, e := range in.Edges[from] {
		if e.To == to && (best == 0 || e.Level < best) {
			best = e.Level
		}
	}
	return best
}

// EvaluateSolution computes the total recharging cost of a deployment
// (node count per post, each 1 or 2, summing to M) and routing (parent
// per post), validating feasibility against the gadget's reachability.
func (in *Instance) EvaluateSolution(deploy []int, parents []int) (float64, error) {
	n := in.NumPosts
	if len(deploy) != n || len(parents) != n {
		return 0, fmt.Errorf("npc: solution sized %d/%d, want %d", len(deploy), len(parents), n)
	}
	total := 0
	for i, m := range deploy {
		if m < 1 || m > 2 {
			return 0, fmt.Errorf("npc: post %s deployed with %d nodes, must be 1 or 2", in.Labels[i], m)
		}
		total += m
	}
	if total != in.Nodes {
		return 0, fmt.Errorf("npc: deployment uses %d nodes, instance has %d", total, in.Nodes)
	}

	// Per-post subtree sizes, with cycle/feasibility checks.
	levels := make([]int, n)
	for i, par := range parents {
		if par == i || par < 0 || par > n {
			return 0, fmt.Errorf("npc: post %s has invalid parent %d", in.Labels[i], par)
		}
		lvl := in.edgeLevel(i, par)
		if lvl == 0 {
			parentName := "BS"
			if par < n {
				parentName = in.Labels[par]
			}
			return 0, fmt.Errorf("npc: post %s cannot reach its parent %s", in.Labels[i], parentName)
		}
		levels[i] = lvl
	}
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	// Count descendants by walking each chain; detect cycles with a
	// visited-depth bound.
	for i := 0; i < n; i++ {
		v := parents[i]
		steps := 0
		for v != n {
			w[v]++
			v = parents[v]
			if steps++; steps > n {
				return 0, errors.New("npc: routing contains a cycle")
			}
		}
	}

	var cost float64
	for i := 0; i < n; i++ {
		tx, err := in.TxEnergy(levels[i])
		if err != nil {
			return 0, err
		}
		energy := float64(w[i])*tx + float64(w[i]-1)*in.Params.E0
		cost += energy / (float64(deploy[i]) * in.Params.Eta)
	}
	return cost, nil
}

// minCostForDeployment returns the cheapest routing cost for a fixed
// deployment: one Dijkstra under recharging-cost weights over the gadget
// edges (the same structural fact the main solvers use). Unreachable
// posts yield an error.
func (in *Instance) minCostForDeployment(deploy []int) (float64, []int, error) {
	n := in.NumPosts
	b := graph.NewBuilder(n + 1)
	for u := 0; u < n; u++ {
		for _, e := range in.Edges[u] {
			tx, err := in.TxEnergy(e.Level)
			if err != nil {
				return 0, nil, err
			}
			w := tx / (float64(deploy[u]) * in.Params.Eta)
			if e.To != n {
				w += in.Params.E0 / (float64(deploy[e.To]) * in.Params.Eta)
			}
			if err := b.AddEdge(u, e.To, w); err != nil {
				return 0, nil, err
			}
		}
	}
	dag, err := b.Build().ShortestPathDAG(n, 1e-12)
	if err != nil {
		return 0, nil, err
	}
	parents := make([]int, n)
	var total float64
	for u := 0; u < n; u++ {
		if !dag.Reachable(u) || len(dag.Parents[u]) == 0 {
			return 0, nil, fmt.Errorf("npc: post %s cannot reach the base station", in.Labels[u])
		}
		total += dag.Dist[u]
		parents[u] = dag.Parents[u][0]
	}
	return total, parents, nil
}

// OptimalResult is the outcome of exact optimisation of a gadget instance.
type OptimalResult struct {
	Cost    float64
	Deploy  []int
	Parents []int
	// Evaluations counts deployments examined.
	Evaluations int64
}

// MaxOptimalPosts bounds exhaustive gadget optimisation; beyond this the
// subset enumeration C(N, n+m) is hopeless anyway.
const MaxOptimalPosts = 40

// OptimalCost exactly minimises the gadget instance's total recharging
// cost over every deployment (choose which n+m posts receive the second
// node) and every feasible routing. The formula is satisfiable iff the
// returned cost is <= W (the executable form of the paper's Theorem).
func (in *Instance) OptimalCost() (*OptimalResult, error) {
	n := in.NumPosts
	if n > MaxOptimalPosts {
		return nil, fmt.Errorf("npc: instance with %d posts exceeds the exhaustive-optimisation limit %d", n, MaxOptimalPosts)
	}
	doubles := in.Nodes - n // number of posts holding two nodes
	deploy := make([]int, n)
	for i := range deploy {
		deploy[i] = 1
	}
	best := &OptimalResult{Cost: math.Inf(1)}
	var rec func(start, left int) error
	rec = func(start, left int) error {
		if left == 0 {
			cost, parents, err := in.minCostForDeployment(deploy)
			best.Evaluations++
			if err != nil {
				return err
			}
			if cost < best.Cost {
				best.Cost = cost
				best.Deploy = append(best.Deploy[:0], deploy...)
				best.Parents = append(best.Parents[:0], parents...)
			}
			return nil
		}
		for i := start; i <= n-left; i++ {
			deploy[i] = 2
			if err := rec(i+1, left-1); err != nil {
				return err
			}
			deploy[i] = 1
		}
		return nil
	}
	if err := rec(0, doubles); err != nil {
		return nil, err
	}
	if math.IsInf(best.Cost, 1) {
		return nil, errors.New("npc: no feasible deployment found")
	}
	return best, nil
}

// CanonicalSolution maps a satisfying assignment to the paper's
// prescribed deployment and routing, whose cost is exactly W:
//
//   - every U_j holds two nodes and uplinks to the BS at l2;
//   - for each variable, the post of the *true* literal holds two nodes;
//     its sibling holds one and routes to it at l1;
//   - each two-node S post uplinks at l2 to some clause containing its
//     literal;
//   - every V_j holds one node and routes at l1 to the two-node S post of
//     one of C_j's true literals.
//
// The assignment is first normalised: a variable whose true literal
// occurs in no clause is flipped (which preserves satisfaction), so every
// two-node S post has an l2 uplink.
func (in *Instance) CanonicalSolution(a Assignment) ([]int, []int, error) {
	f := in.Formula
	if !a.Satisfies(f) {
		return nil, nil, errors.New("npc: assignment does not satisfy the formula")
	}
	norm := append(Assignment(nil), a...)
	pos, neg := f.VariableOccurrences()
	for v := 1; v <= f.NumVars; v++ {
		if norm[v] && len(pos[v]) == 0 {
			norm[v] = false
		} else if !norm[v] && len(neg[v]) == 0 {
			norm[v] = true
		}
	}
	if !norm.Satisfies(f) {
		return nil, nil, errors.New("npc: internal error: normalisation broke satisfaction")
	}

	n, m := f.NumVars, len(f.Clauses)
	deploy := make([]int, in.NumPosts)
	parents := make([]int, in.NumPosts)
	for i := range deploy {
		deploy[i] = 1
	}
	for j := 0; j < m; j++ {
		deploy[in.uPost(j)] = 2
		parents[in.uPost(j)] = in.BSIndex()
	}
	// Variable gadgets.
	for i := 0; i < n; i++ {
		trueK, falseK := 1, 2
		if !norm[i+1] {
			trueK, falseK = 2, 1
		}
		truePost, falsePost := in.sPost(i, trueK), in.sPost(i, falseK)
		deploy[truePost] = 2
		parents[falsePost] = truePost
		// Uplink: any clause containing the true literal.
		occ := pos[i+1]
		if trueK == 2 {
			occ = neg[i+1]
		}
		if len(occ) == 0 {
			return nil, nil, fmt.Errorf("npc: internal error: true literal of x%d occurs nowhere after normalisation", i+1)
		}
		parents[truePost] = in.uPost(occ[0])
	}
	// Clause gadgets: V_j routes to the two-node S post of a true literal.
	for j := 0; j < m; j++ {
		assigned := false
		for _, l := range f.Clauses[j] {
			if norm[l.Var()] != l.Negated() { // literal true under norm
				k := 1
				if l.Negated() {
					k = 2
				}
				parents[in.vPost(j)] = in.sPost(l.Var()-1, k)
				assigned = true
				break
			}
		}
		if !assigned {
			return nil, nil, fmt.Errorf("npc: internal error: clause %d has no true literal", j)
		}
	}
	return deploy, parents, nil
}
