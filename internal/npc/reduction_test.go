package npc

import (
	"math"
	"math/rand"
	"os"
	"testing"
)

// mustReduce builds the gadget instance for f with default parameters.
func mustReduce(t *testing.T, f *Formula) *Instance {
	t.Helper()
	in, err := Reduce(f, DefaultParams())
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	return in
}

// formula builds a Formula from literal triples.
func formula(numVars int, clauses ...[3]int) *Formula {
	f := &Formula{NumVars: numVars}
	for _, c := range clauses {
		f.Clauses = append(f.Clauses, Clause{Literal(c[0]), Literal(c[1]), Literal(c[2])})
	}
	return f
}

func TestReduceShape(t *testing.T) {
	f := formula(3, [3]int{1, -2, -3}) // the paper's Fig. 3 example clause
	in := mustReduce(t, f)
	if in.NumPosts != 2*3+2*1 {
		t.Fatalf("NumPosts = %d, want %d", in.NumPosts, 8)
	}
	if in.Nodes != 3*3+3*1 {
		t.Fatalf("Nodes = %d, want %d", in.Nodes, 12)
	}
	// U1 reaches only the BS, at l2.
	if lvl := in.edgeLevel(in.UPost(0), in.BSIndex()); lvl != 2 {
		t.Errorf("U1->BS level = %d, want 2", lvl)
	}
	// S1,1 (x1 in C1) reaches U1 at l2; S1,2 does not.
	if lvl := in.edgeLevel(in.SPost(0, 1), in.UPost(0)); lvl != 2 {
		t.Errorf("S1,1->U1 level = %d, want 2", lvl)
	}
	if lvl := in.edgeLevel(in.SPost(0, 2), in.UPost(0)); lvl != 0 {
		t.Errorf("S1,2->U1 level = %d, want unreachable (0)", lvl)
	}
	// ¬x2 in C1: S2,2 reaches U1.
	if lvl := in.edgeLevel(in.SPost(1, 2), in.UPost(0)); lvl != 2 {
		t.Errorf("S2,2->U1 level = %d, want 2", lvl)
	}
	// Siblings reach each other at l1.
	if lvl := in.edgeLevel(in.SPost(0, 1), in.SPost(0, 2)); lvl != 1 {
		t.Errorf("S1,1->S1,2 level = %d, want 1", lvl)
	}
	// V1 reaches the clause's S posts at l1, and not the BS.
	if lvl := in.edgeLevel(in.VPost(0), in.SPost(0, 1)); lvl != 1 {
		t.Errorf("V1->S1,1 level = %d, want 1", lvl)
	}
	if lvl := in.edgeLevel(in.VPost(0), in.BSIndex()); lvl != 0 {
		t.Errorf("V1->BS level = %d, want unreachable (0)", lvl)
	}
}

func TestCanonicalSolutionCostsExactlyW(t *testing.T) {
	cases := []struct {
		name string
		f    *Formula
	}{
		{"fig3", formula(3, [3]int{1, -2, -3})},
		{"two_clauses", formula(3, [3]int{1, 2, 3}, [3]int{-1, -2, 3})},
		{"shared_literals", formula(2, [3]int{1, 2, 2}, [3]int{-1, 2, 2}, [3]int{1, -2, 1})},
		{"four_vars", formula(4, [3]int{1, -2, 3}, [3]int{-1, 2, -4}, [3]int{3, 4, -2})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := mustReduce(t, tc.f)
			a, sat, err := Solve(tc.f)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if !sat {
				t.Fatalf("formula unexpectedly unsatisfiable: %v", tc.f)
			}
			deploy, parents, err := in.CanonicalSolution(a)
			if err != nil {
				t.Fatalf("CanonicalSolution: %v", err)
			}
			cost, err := in.EvaluateSolution(deploy, parents)
			if err != nil {
				t.Fatalf("EvaluateSolution: %v", err)
			}
			if math.Abs(cost-in.W) > 1e-9 {
				t.Errorf("canonical solution cost = %.9f, want W = %.9f", cost, in.W)
			}
		})
	}
}

func TestReductionEquivalence(t *testing.T) {
	cases := []struct {
		name string
		f    *Formula
	}{
		{"sat_single", formula(3, [3]int{1, -2, -3})},
		{"sat_two", formula(2, [3]int{1, 2, 2}, [3]int{-1, -2, -2})},
		// x1 forced true and false via three-literal paddings:
		// (x1 ∨ x1 ∨ x1) ∧ (¬x1 ∨ ¬x1 ∨ ¬x1) is unsatisfiable.
		{"unsat_contradiction", formula(1, [3]int{1, 1, 1}, [3]int{-1, -1, -1})},
		// Classic 2-variable unsatisfiable core padded to width 3.
		{"unsat_two_vars", formula(2,
			[3]int{1, 2, 2}, [3]int{1, -2, -2}, [3]int{-1, 2, 2}, [3]int{-1, -2, -2})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := mustReduce(t, tc.f)
			_, sat, err := Solve(tc.f)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			opt, err := in.OptimalCost()
			if err != nil {
				t.Fatalf("OptimalCost: %v", err)
			}
			t.Logf("sat=%v optimal=%.6f W=%.6f evaluations=%d", sat, opt.Cost, in.W, opt.Evaluations)
			if sat && opt.Cost > in.W+1e-9 {
				t.Errorf("satisfiable formula but optimal cost %.9f > W %.9f", opt.Cost, in.W)
			}
			if !sat && opt.Cost <= in.W+1e-9 {
				t.Errorf("unsatisfiable formula but optimal cost %.9f <= W %.9f", opt.Cost, in.W)
			}
		})
	}
}

// TestReductionEquivalenceRandom cross-checks the SAT <=> cost<=W
// equivalence on random small formulas against brute-force SAT counting.
func TestReductionEquivalenceRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("random equivalence sweep")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		nv := 2 + rng.Intn(2) // 2..3 variables
		nc := 2 + rng.Intn(2) // 2..3 clauses
		f := &Formula{NumVars: nv}
		for c := 0; c < nc; c++ {
			var cl Clause
			for k := 0; k < 3; k++ {
				v := 1 + rng.Intn(nv)
				if rng.Intn(2) == 0 {
					cl = append(cl, Literal(-v))
				} else {
					cl = append(cl, Literal(v))
				}
			}
			f.Clauses = append(f.Clauses, cl)
		}
		if err := f.ValidateFor3CNF(); err != nil {
			continue // some variable unused; skip this draw
		}
		count, err := CountSolutions(f)
		if err != nil {
			t.Fatalf("CountSolutions: %v", err)
		}
		_, sat, err := Solve(f)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if sat != (count > 0) {
			t.Fatalf("DPLL disagreed with brute force on %v: dpll=%v count=%d", f, sat, count)
		}
		in := mustReduce(t, f)
		opt, err := in.OptimalCost()
		if err != nil {
			t.Fatalf("OptimalCost: %v", err)
		}
		if sat != (opt.Cost <= in.W+1e-9) {
			t.Errorf("trial %d: %v sat=%v but optimal=%.6f vs W=%.6f", trial, f, sat, opt.Cost, in.W)
		}
	}
}

// TestCorpusFormulas runs the full pipeline (parse -> DPLL -> reduce ->
// exact gadget optimisation) on the checked-in DIMACS corpus.
func TestCorpusFormulas(t *testing.T) {
	cases := []struct {
		file     string
		sat      bool
		optimise bool // exhaustive gadget optimisation feasible?
	}{
		{"testdata/pigeonhole_2_1.cnf", false, true},
		{"testdata/pigeonhole_3_2.cnf", false, false}, // 30-post gadget: DPLL-only
		{"testdata/chain_sat.cnf", true, true},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			f, err := os.Open(tc.file)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			formula, err := ParseDIMACS(f)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			assignment, sat, err := Solve(formula)
			if err != nil {
				t.Fatal(err)
			}
			if sat != tc.sat {
				t.Fatalf("DPLL verdict %v, want %v", sat, tc.sat)
			}
			in, err := Reduce(formula, DefaultParams())
			if err != nil {
				t.Fatalf("reduce: %v", err)
			}
			if sat {
				deploy, parents, err := in.CanonicalSolution(assignment)
				if err != nil {
					t.Fatal(err)
				}
				cost, err := in.EvaluateSolution(deploy, parents)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(cost-in.W) > 1e-9 {
					t.Errorf("canonical cost %.6f != W %.6f", cost, in.W)
				}
				return
			}
			if !tc.optimise {
				return
			}
			// Unsat: the gadget optimum must exceed W.
			opt, err := in.OptimalCost()
			if err != nil {
				t.Fatal(err)
			}
			if opt.Cost <= in.W+1e-9 {
				t.Errorf("unsat formula but optimum %.6f <= W %.6f", opt.Cost, in.W)
			}
		})
	}
}
