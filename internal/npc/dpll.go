package npc

import "fmt"

// Solve decides satisfiability of f with the DPLL procedure (unit
// propagation, pure-literal elimination, and branching on the first
// unassigned variable). For satisfiable formulas it returns a complete
// satisfying Assignment; unassigned variables default to false.
func Solve(f *Formula) (Assignment, bool, error) {
	if err := f.Validate(); err != nil {
		return nil, false, err
	}
	s := &dpllState{
		f:      f,
		assign: make([]int8, f.NumVars+1), // 0 unknown, +1 true, -1 false
	}
	ok := s.solve()
	if !ok {
		return nil, false, nil
	}
	out := make(Assignment, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = s.assign[v] > 0
	}
	if !out.Satisfies(f) {
		// A completed DPLL assignment must satisfy the formula; anything
		// else is a solver bug worth failing loudly on.
		return nil, false, fmt.Errorf("npc: internal error: DPLL returned non-satisfying assignment")
	}
	return out, true, nil
}

type dpllState struct {
	f      *Formula
	assign []int8
}

// litValue returns +1 if l is true under the current partial assignment,
// -1 if false, 0 if unknown.
func (s *dpllState) litValue(l Literal) int8 {
	v := s.assign[l.Var()]
	if l.Negated() {
		return -v
	}
	return v
}

// setLit makes l true.
func (s *dpllState) setLit(l Literal) {
	if l.Negated() {
		s.assign[l.Var()] = -1
	} else {
		s.assign[l.Var()] = 1
	}
}

// propagate applies unit propagation until fixpoint. It returns the
// variables it assigned and false on conflict (an empty clause).
func (s *dpllState) propagate() ([]int, bool) {
	var trail []int
	for {
		progressed := false
		for _, c := range s.f.Clauses {
			var (
				unknown      Literal
				unknownCount int
				satisfied    bool
			)
			for _, l := range c {
				switch s.litValue(l) {
				case +1:
					satisfied = true
				case 0:
					unknown = l
					unknownCount++
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch unknownCount {
			case 0:
				return trail, false // conflict
			case 1:
				s.setLit(unknown)
				trail = append(trail, unknown.Var())
				progressed = true
			}
		}
		if !progressed {
			return trail, true
		}
	}
}

// pureLiterals assigns variables that occur with a single polarity among
// not-yet-satisfied clauses, returning the assigned variables.
func (s *dpllState) pureLiterals() []int {
	seenPos := make([]bool, s.f.NumVars+1)
	seenNeg := make([]bool, s.f.NumVars+1)
	for _, c := range s.f.Clauses {
		satisfied := false
		for _, l := range c {
			if s.litValue(l) == +1 {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		for _, l := range c {
			if s.litValue(l) != 0 {
				continue
			}
			if l.Negated() {
				seenNeg[l.Var()] = true
			} else {
				seenPos[l.Var()] = true
			}
		}
	}
	var trail []int
	for v := 1; v <= s.f.NumVars; v++ {
		if s.assign[v] != 0 {
			continue
		}
		switch {
		case seenPos[v] && !seenNeg[v]:
			s.assign[v] = 1
			trail = append(trail, v)
		case seenNeg[v] && !seenPos[v]:
			s.assign[v] = -1
			trail = append(trail, v)
		}
	}
	return trail
}

// allSatisfied reports whether every clause is satisfied.
func (s *dpllState) allSatisfied() bool {
	for _, c := range s.f.Clauses {
		ok := false
		for _, l := range c {
			if s.litValue(l) == +1 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func (s *dpllState) undo(trail []int) {
	for _, v := range trail {
		s.assign[v] = 0
	}
}

func (s *dpllState) solve() bool {
	trail, ok := s.propagate()
	if !ok {
		s.undo(trail)
		return false
	}
	trail = append(trail, s.pureLiterals()...)
	if s.allSatisfied() {
		return true
	}
	// Branch on the first unassigned variable.
	branch := 0
	for v := 1; v <= s.f.NumVars; v++ {
		if s.assign[v] == 0 {
			branch = v
			break
		}
	}
	if branch == 0 {
		// All assigned but not all satisfied: conflict.
		s.undo(trail)
		return false
	}
	for _, val := range [...]int8{1, -1} {
		s.assign[branch] = val
		if s.solve() {
			return true
		}
		s.assign[branch] = 0
	}
	s.undo(trail)
	return false
}

// CountSolutions exhaustively counts satisfying assignments of f (over
// all 2^NumVars assignments); a test oracle for Solve on small formulas.
func CountSolutions(f *Formula) (int, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if f.NumVars > 24 {
		return 0, fmt.Errorf("npc: refusing to enumerate 2^%d assignments", f.NumVars)
	}
	count := 0
	a := make(Assignment, f.NumVars+1)
	for bits := 0; bits < 1<<uint(f.NumVars); bits++ {
		for v := 1; v <= f.NumVars; v++ {
			a[v] = bits&(1<<uint(v-1)) != 0
		}
		if a.Satisfies(f) {
			count++
		}
	}
	return count, nil
}
