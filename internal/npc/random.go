package npc

import (
	"fmt"
	"math/rand"
)

// RandomFormula draws a uniform random 3-CNF formula with nVars variables
// and nClauses clauses, retrying until every variable occurs in at least
// one clause (the reduction's requirement). Literal polarities and
// variable choices are uniform; clauses may repeat variables, exactly as
// the reduction permits.
func RandomFormula(rng *rand.Rand, nVars, nClauses int) (*Formula, error) {
	if nVars < 1 || nClauses < 1 {
		return nil, fmt.Errorf("npc: random formula needs >= 1 variable and clause, got %d/%d", nVars, nClauses)
	}
	if 3*nClauses < nVars {
		return nil, fmt.Errorf("npc: %d clauses cannot mention all %d variables", nClauses, nVars)
	}
	const attempts = 1000
	for attempt := 0; attempt < attempts; attempt++ {
		f := &Formula{NumVars: nVars, Clauses: make([]Clause, 0, nClauses)}
		for c := 0; c < nClauses; c++ {
			clause := make(Clause, 3)
			for k := range clause {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				clause[k] = Literal(v)
			}
			f.Clauses = append(f.Clauses, clause)
		}
		if f.ValidateFor3CNF() == nil {
			return f, nil
		}
	}
	// With 3*nClauses >= nVars a covering draw exists; force one by
	// seeding the first clauses with the missing variables.
	f := &Formula{NumVars: nVars, Clauses: make([]Clause, nClauses)}
	v := 1
	for c := range f.Clauses {
		clause := make(Clause, 3)
		for k := range clause {
			lit := v
			if v > nVars {
				lit = 1 + rng.Intn(nVars)
			} else {
				v++
			}
			if rng.Intn(2) == 0 {
				lit = -lit
			}
			clause[k] = Literal(lit)
		}
		f.Clauses[c] = clause
	}
	if err := f.ValidateFor3CNF(); err != nil {
		return nil, fmt.Errorf("npc: internal error building covering formula: %w", err)
	}
	return f, nil
}
