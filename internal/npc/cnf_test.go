package npc

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestLiteralHelpers(t *testing.T) {
	l := Literal(-3)
	if l.Var() != 3 || !l.Negated() || l.Neg() != 3 {
		t.Errorf("literal -3 misbehaves: var=%d negated=%v neg=%d", l.Var(), l.Negated(), l.Neg())
	}
	if got := l.String(); got != "¬x3" {
		t.Errorf("String = %q", got)
	}
	if got := Literal(2).String(); got != "x2" {
		t.Errorf("String = %q", got)
	}
}

func TestFormulaValidate(t *testing.T) {
	ok := &Formula{NumVars: 2, Clauses: []Clause{{1, -2}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid formula rejected: %v", err)
	}
	bad := []*Formula{
		{NumVars: -1},
		{NumVars: 1, Clauses: []Clause{{}}},
		{NumVars: 1, Clauses: []Clause{{0}}},
		{NumVars: 1, Clauses: []Clause{{2}}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("invalid formula %d accepted", i)
		}
	}
}

func TestValidateFor3CNF(t *testing.T) {
	ok := formula(2, [3]int{1, -2, 1})
	if err := ok.ValidateFor3CNF(); err != nil {
		t.Errorf("valid 3-CNF rejected: %v", err)
	}
	wide := &Formula{NumVars: 2, Clauses: []Clause{{1, -2}}}
	if err := wide.ValidateFor3CNF(); err == nil {
		t.Error("2-literal clause accepted as 3-CNF")
	}
	unused := formula(3, [3]int{1, 2, 1}) // x3 never occurs
	if err := unused.ValidateFor3CNF(); err == nil {
		t.Error("formula with unused variable accepted")
	}
	empty := &Formula{NumVars: 0}
	if err := empty.ValidateFor3CNF(); err == nil {
		t.Error("empty formula accepted")
	}
}

func TestAssignmentSatisfies(t *testing.T) {
	f := formula(2, [3]int{1, -2, -2})
	a := Assignment{false, true, true} // x1=T, x2=T
	if !a.Satisfies(f) {
		t.Error("x1=T should satisfy (x1 ∨ ¬x2 ∨ ¬x2)")
	}
	b := Assignment{false, false, true}
	if b.Satisfies(f) {
		t.Error("x1=F, x2=T should not satisfy")
	}
	if (Assignment{}).Satisfies(f) {
		t.Error("undersized assignment accepted")
	}
}

const exampleDIMACS = `c a comment
c another comment
p cnf 3 2
1 -2 3 0
-1 2
-3 0
`

func TestParseDIMACS(t *testing.T) {
	f, err := ParseDIMACS(strings.NewReader(exampleDIMACS))
	if err != nil {
		t.Fatalf("ParseDIMACS: %v", err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("parsed %d vars, %d clauses", f.NumVars, len(f.Clauses))
	}
	want := []Clause{{1, -2, 3}, {-1, 2, -3}}
	for i := range want {
		if len(f.Clauses[i]) != len(want[i]) {
			t.Fatalf("clause %d = %v, want %v", i, f.Clauses[i], want[i])
		}
		for j := range want[i] {
			if f.Clauses[i][j] != want[i][j] {
				t.Fatalf("clause %d = %v, want %v", i, f.Clauses[i], want[i])
			}
		}
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"no header", "1 2 3 0\n"},
		{"duplicate header", "p cnf 1 1\np cnf 1 1\n1 0\n"},
		{"malformed header", "p dnf 1 1\n1 0\n"},
		{"bad literal", "p cnf 1 1\nx 0\n"},
		{"count mismatch", "p cnf 1 2\n1 0\n"},
		{"variable out of range", "p cnf 1 1\n2 0\n"},
		{"empty input", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseDIMACS(strings.NewReader(tc.input)); err == nil {
				t.Error("malformed DIMACS accepted")
			}
		})
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := formula(3, [3]int{1, -2, 3}, [3]int{-1, 2, -3})
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatalf("reparsing own output: %v", err)
	}
	if back.String() != f.String() {
		t.Errorf("round trip changed formula: %q vs %q", back.String(), f.String())
	}
}

func TestFormulaString(t *testing.T) {
	f := formula(2, [3]int{1, -2, 2})
	want := "(x1 ∨ ¬x2 ∨ x2)"
	if got := f.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestVariableOccurrences(t *testing.T) {
	f := formula(2, [3]int{1, -2, 1}, [3]int{-1, 2, 2})
	pos, neg := f.VariableOccurrences()
	if len(pos[1]) != 1 || pos[1][0] != 0 {
		t.Errorf("pos[x1] = %v", pos[1])
	}
	if len(neg[1]) != 1 || neg[1][0] != 1 {
		t.Errorf("neg[x1] = %v", neg[1])
	}
	if len(pos[2]) != 1 || len(neg[2]) != 1 {
		t.Errorf("x2 occurrences: pos=%v neg=%v", pos[2], neg[2])
	}
}

// TestDPLLAgainstBruteForce fuzzes DPLL against exhaustive enumeration.
func TestDPLLAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		nv := 1 + rng.Intn(6)
		nc := 1 + rng.Intn(8)
		f := &Formula{NumVars: nv}
		for c := 0; c < nc; c++ {
			width := 1 + rng.Intn(3)
			var cl Clause
			for k := 0; k < width; k++ {
				v := 1 + rng.Intn(nv)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl = append(cl, Literal(v))
			}
			f.Clauses = append(f.Clauses, cl)
		}
		count, err := CountSolutions(f)
		if err != nil {
			t.Fatal(err)
		}
		a, sat, err := Solve(f)
		if err != nil {
			t.Fatal(err)
		}
		if sat != (count > 0) {
			t.Fatalf("trial %d: DPLL=%v, brute force count=%d for %v", trial, sat, count, f)
		}
		if sat && !a.Satisfies(f) {
			t.Fatalf("trial %d: DPLL returned non-satisfying assignment for %v", trial, f)
		}
	}
}

func TestCountSolutionsLimits(t *testing.T) {
	big := &Formula{NumVars: 30, Clauses: []Clause{{1, 2, 3}}}
	if _, err := CountSolutions(big); err == nil {
		t.Error("CountSolutions accepted 2^30 enumeration")
	}
}

func TestRandomFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		nv := 1 + rng.Intn(6)
		nc := (nv + 2) / 3 * (1 + rng.Intn(3)) // enough clauses to cover
		if 3*nc < nv {
			nc = (nv + 2) / 3
		}
		f, err := RandomFormula(rng, nv, nc)
		if err != nil {
			t.Fatalf("trial %d (nv=%d nc=%d): %v", trial, nv, nc, err)
		}
		if err := f.ValidateFor3CNF(); err != nil {
			t.Fatalf("trial %d: generated formula invalid: %v", trial, err)
		}
		if f.NumVars != nv || len(f.Clauses) != nc {
			t.Fatalf("trial %d: shape %d/%d, want %d/%d", trial, f.NumVars, len(f.Clauses), nv, nc)
		}
	}
	if _, err := RandomFormula(rng, 0, 1); err == nil {
		t.Error("zero variables accepted")
	}
	if _, err := RandomFormula(rng, 10, 1); err == nil {
		t.Error("uncoverable variable count accepted")
	}
}

func TestRandomFormulaDeterministic(t *testing.T) {
	a, err := RandomFormula(rand.New(rand.NewSource(5)), 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomFormula(rand.New(rand.NewSource(5)), 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different formulas:\n%s\n%s", a, b)
	}
}
