// Package npc makes the paper's NP-completeness proof (Section IV)
// executable. It provides:
//
//   - 3-CNF formula types with a DIMACS reader/writer and a DPLL
//     satisfiability solver (the reduction's source problem);
//   - the paper's reduction from 3-CNF-SAT to the restricted
//     deployment-and-routing problem (two power levels with 4*e1 = e2, at
//     most two nodes per post), building the U/V/S gadget network;
//   - the bound W and both directions of the equivalence: a satisfying
//     assignment maps to a solution of cost exactly W, and exact
//     optimisation of the gadget instance decides satisfiability by
//     comparing its optimum against W.
//
// The gadget networks are combinatorial (reachability is prescribed per
// edge, not geometric), so the package carries its own small instance
// representation and optimizer rather than reusing package model.
package npc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Literal is a signed variable reference: +v is x_v, -v is the negation
// of x_v. Variables are numbered from 1, as in DIMACS.
type Literal int

// Var returns the literal's variable number (always positive).
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Negated reports whether the literal is a negation.
func (l Literal) Negated() bool { return l < 0 }

// Neg returns the complementary literal.
func (l Literal) Neg() Literal { return -l }

// String renders the literal as x3 or ¬x3.
func (l Literal) String() string {
	if l < 0 {
		return fmt.Sprintf("¬x%d", -l)
	}
	return fmt.Sprintf("x%d", int(l))
}

// Clause is a disjunction of literals. The paper's reduction consumes
// clauses of exactly three literals; the SAT solver accepts any width.
type Clause []Literal

// Formula is a CNF formula over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks structural sanity: positive variable numbers within
// range and non-empty clauses.
func (f *Formula) Validate() error {
	if f.NumVars < 0 {
		return fmt.Errorf("npc: negative variable count %d", f.NumVars)
	}
	for ci, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("npc: clause %d is empty (trivially unsatisfiable; not representable)", ci)
		}
		for _, l := range c {
			if l == 0 {
				return fmt.Errorf("npc: clause %d contains the zero literal", ci)
			}
			if v := l.Var(); v > f.NumVars {
				return fmt.Errorf("npc: clause %d references x%d beyond declared %d variables", ci, v, f.NumVars)
			}
		}
	}
	return nil
}

// ValidateFor3CNF additionally requires exactly three literals per clause
// and every variable to occur in at least one clause — the paper's
// reduction needs occurrence so every S post has a potential l2 uplink.
func (f *Formula) ValidateFor3CNF() error {
	if err := f.Validate(); err != nil {
		return err
	}
	if f.NumVars == 0 || len(f.Clauses) == 0 {
		return errors.New("npc: reduction needs at least one variable and one clause")
	}
	seen := make([]bool, f.NumVars+1)
	for ci, c := range f.Clauses {
		if len(c) != 3 {
			return fmt.Errorf("npc: clause %d has %d literals, want exactly 3", ci, len(c))
		}
		for _, l := range c {
			seen[l.Var()] = true
		}
	}
	for v := 1; v <= f.NumVars; v++ {
		if !seen[v] {
			return fmt.Errorf("npc: variable x%d occurs in no clause", v)
		}
	}
	return nil
}

// Assignment maps variable v (1-based) to its truth value at index v;
// index 0 is unused.
type Assignment []bool

// Satisfies reports whether the assignment makes every clause true.
func (a Assignment) Satisfies(f *Formula) bool {
	if len(a) < f.NumVars+1 {
		return false
	}
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if a[l.Var()] != l.Negated() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// ParseDIMACS reads a CNF formula in DIMACS format: comment lines start
// with 'c', a header "p cnf <vars> <clauses>" precedes clause lines, and
// each clause is a whitespace-separated list of non-zero literals
// terminated by 0 (clauses may span lines).
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		f        *Formula
		declared int
		cur      Clause
		lineNum  int
	)
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if f != nil {
				return nil, fmt.Errorf("npc: line %d: duplicate DIMACS header", lineNum)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("npc: line %d: malformed header %q", lineNum, line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return nil, fmt.Errorf("npc: line %d: malformed header counts %q", lineNum, line)
			}
			// Never trust the header for allocation: a hostile "p cnf 1
			// 1122222222" line would otherwise pre-allocate gigabytes
			// (fuzzer-found). Cap the hint; append grows as needed.
			capHint := nc
			if capHint > 4096 {
				capHint = 4096
			}
			f = &Formula{NumVars: nv, Clauses: make([]Clause, 0, capHint)}
			declared = nc
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("npc: line %d: clause before DIMACS header", lineNum)
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("npc: line %d: bad literal %q", lineNum, tok)
			}
			if v == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			cur = append(cur, Literal(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("npc: reading DIMACS: %w", err)
	}
	if f == nil {
		return nil, errors.New("npc: no DIMACS header found")
	}
	if len(cur) > 0 {
		f.Clauses = append(f.Clauses, cur)
	}
	if declared != len(f.Clauses) {
		return nil, fmt.Errorf("npc: header declares %d clauses, found %d", declared, len(f.Clauses))
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// WriteDIMACS writes f in DIMACS CNF format.
func WriteDIMACS(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", int(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// String renders the formula in human-readable conjunctive form.
func (f *Formula) String() string {
	var sb strings.Builder
	for ci, c := range f.Clauses {
		if ci > 0 {
			sb.WriteString(" ∧ ")
		}
		sb.WriteByte('(')
		for li, l := range c {
			if li > 0 {
				sb.WriteString(" ∨ ")
			}
			sb.WriteString(l.String())
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// VariableOccurrences returns, for each variable 1..NumVars, the sorted
// clause indices where it occurs positively and negatively. A literal
// repeated within one clause contributes a single entry.
func (f *Formula) VariableOccurrences() (pos, neg [][]int) {
	pos = make([][]int, f.NumVars+1)
	neg = make([][]int, f.NumVars+1)
	appendOnce := func(s []int, ci int) []int {
		if n := len(s); n > 0 && s[n-1] == ci {
			return s
		}
		return append(s, ci)
	}
	for ci, c := range f.Clauses {
		for _, l := range c {
			if l.Negated() {
				neg[l.Var()] = appendOnce(neg[l.Var()], ci)
			} else {
				pos[l.Var()] = appendOnce(pos[l.Var()], ci)
			}
		}
	}
	for v := 1; v <= f.NumVars; v++ {
		sort.Ints(pos[v])
		sort.Ints(neg[v])
	}
	return pos, neg
}
