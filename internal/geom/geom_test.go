package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dist(tc.p, tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
		})
	}
}

func TestDistProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	symmetric := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return Dist(a, b) == Dist(b, a)
	}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	squaredConsistent := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		d, d2 := Dist(a, b), Dist2(a, b)
		if math.IsInf(d2, 1) || math.IsNaN(d2) {
			return true // overflowing inputs are out of scope
		}
		return math.Abs(d*d-d2) <= 1e-9*(1+d2)
	}
	if err := quick.Check(squaredConsistent, cfg); err != nil {
		t.Errorf("Dist2 consistency: %v", err)
	}
	triangle := func(ax, ay, bx, by, cx, cy float64) bool {
		// Bound inputs to avoid float overflow noise.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-6
	}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{1, 2}, Point{5, -2}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp(t=0) = %v, want %v", got, a)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp(t=1) = %v, want %v", got, b)
	}
	mid := Lerp(a, b, 0.5)
	if want := (Point{3, 0}); mid != want {
		t.Errorf("Lerp(t=0.5) = %v, want %v", mid, want)
	}
}

func TestVectorOps(t *testing.T) {
	p, q := Point{3, 4}, Point{1, -1}
	if got := p.Add(q); got != (Point{4, 3}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{2, 5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestFieldRandomPoints(t *testing.T) {
	f := Square(500)
	rng := rand.New(rand.NewSource(1))
	pts := f.RandomPoints(rng, 1000)
	if len(pts) != 1000 {
		t.Fatalf("got %d points, want 1000", len(pts))
	}
	for i, p := range pts {
		if !f.Contains(p) {
			t.Fatalf("point %d (%v) outside field", i, p)
		}
	}
	// Determinism: same seed, same points.
	again := f.RandomPoints(rand.New(rand.NewSource(1)), 1000)
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatalf("point %d differs across identical seeds: %v vs %v", i, pts[i], again[i])
		}
	}
}

func TestFieldRandomPointsMinSep(t *testing.T) {
	f := Square(1000)
	rng := rand.New(rand.NewSource(2))
	const minSep = 30.0
	pts := f.RandomPointsMinSep(rng, 50, minSep)
	if len(pts) != 50 {
		t.Fatalf("got %d points, want 50", len(pts))
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if Dist(pts[i], pts[j]) < minSep {
				t.Errorf("points %d and %d closer than %.0fm: %.2f", i, j, minSep, Dist(pts[i], pts[j]))
			}
		}
	}
	// Over-constrained requests still return the requested count.
	dense := f.RandomPointsMinSep(rng, 200, 900)
	if len(dense) != 200 {
		t.Errorf("over-constrained: got %d points, want 200", len(dense))
	}
}

func TestGrid(t *testing.T) {
	f := Square(100)
	for _, n := range []int{0, 1, 4, 7, 9, 10} {
		pts := f.Grid(n)
		if len(pts) != n {
			t.Errorf("Grid(%d) returned %d points", n, len(pts))
		}
		for _, p := range pts {
			if !f.Contains(p) {
				t.Errorf("Grid(%d) point %v outside field", n, p)
			}
		}
	}
	// A 4-point grid in a 100m square sits at the quarter points.
	pts := f.Grid(4)
	want := []Point{{25, 25}, {75, 25}, {25, 75}, {75, 75}}
	for i, w := range want {
		if Dist(pts[i], w) > 1e-9 {
			t.Errorf("Grid(4)[%d] = %v, want %v", i, pts[i], w)
		}
	}
}

func TestCentroidAndBoundingBox(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("Centroid(nil) = %v, want origin", got)
	}
	pts := []Point{{0, 0}, {4, 0}, {4, 2}, {0, 2}}
	if got := Centroid(pts); got != (Point{2, 1}) {
		t.Errorf("Centroid = %v, want (2,1)", got)
	}
	lo, hi := BoundingBox(pts)
	if lo != (Point{0, 0}) || hi != (Point{4, 2}) {
		t.Errorf("BoundingBox = %v, %v", lo, hi)
	}
}

func TestNearestIndex(t *testing.T) {
	if idx, d := NearestIndex(Point{}, nil); idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty slice: got (%d, %v)", idx, d)
	}
	pts := []Point{{10, 0}, {3, 4}, {3, 4}, {0, 1}}
	idx, d := NearestIndex(Point{0, 0}, pts)
	if idx != 3 || math.Abs(d-1) > 1e-12 {
		t.Errorf("got (%d, %v), want (3, 1)", idx, d)
	}
	// Ties resolve to the lowest index.
	idx, _ = NearestIndex(Point{3, 4}, pts[:3])
	if idx != 1 {
		t.Errorf("tie resolution: got %d, want 1", idx)
	}
}

func TestPathLength(t *testing.T) {
	if got := PathLength(nil); got != 0 {
		t.Errorf("PathLength(nil) = %v", got)
	}
	if got := PathLength([]Point{{0, 0}}); got != 0 {
		t.Errorf("single point = %v", got)
	}
	got := PathLength([]Point{{0, 0}, {3, 4}, {3, 0}})
	if math.Abs(got-9) > 1e-12 {
		t.Errorf("PathLength = %v, want 9", got)
	}
}

func TestFieldHelpers(t *testing.T) {
	f := Field{Width: 10, Height: 20}
	if f.Corner() != (Point{0, 0}) {
		t.Errorf("Corner = %v", f.Corner())
	}
	if f.Center() != (Point{5, 10}) {
		t.Errorf("Center = %v", f.Center())
	}
	if f.Area() != 200 {
		t.Errorf("Area = %v", f.Area())
	}
	if f.Contains(Point{10.1, 5}) {
		t.Error("Contains accepted a point past the width")
	}
	if !f.Contains(Point{10, 20}) {
		t.Error("Contains rejected the inclusive corner")
	}
}

func TestClusteredPointsDeterministic(t *testing.T) {
	f := Square(300)
	a := f.ClusteredPoints(rand.New(rand.NewSource(4)), 50, 3, 20)
	b := f.ClusteredPoints(rand.New(rand.NewSource(4)), 50, 3, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different clustered points at %d", i)
		}
	}
	// Degenerate cluster count clamps to 1 instead of panicking.
	c := f.ClusteredPoints(rand.New(rand.NewSource(5)), 10, 0, 15)
	if len(c) != 10 {
		t.Fatalf("got %d points", len(c))
	}
	for _, p := range c {
		if !f.Contains(p) {
			t.Fatalf("point %v escaped the field", p)
		}
	}
}
