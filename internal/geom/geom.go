// Package geom provides the two-dimensional geometry primitives used by the
// deployment-and-routing model: points, distances, and deterministic random
// generation of post locations inside a rectangular field.
//
// All coordinates are in meters. Random generation is fully deterministic
// given a seed so that every experiment in the paper reproduction can be
// replayed bit-for-bit.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the deployment field, in meters.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Dist returns the Euclidean distance between p and q in meters.
func Dist(p, q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for pure comparisons.
func Dist2(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y)
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Lerp linearly interpolates between p and q; t=0 yields p, t=1 yields q.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Field is a rectangular deployment area with its lower-left corner at the
// origin. The paper places the base station at the lower-left corner of a
// square field (Section VI-A).
type Field struct {
	Width  float64 `json:"width"`  // extent along X, meters
	Height float64 `json:"height"` // extent along Y, meters
}

// Square returns a side x side field, matching the paper's square
// deployment areas (200m x 200m and 500m x 500m).
func Square(side float64) Field {
	return Field{Width: side, Height: side}
}

// Contains reports whether p lies inside the field (inclusive of borders).
func (f Field) Contains(p Point) bool {
	return p.X >= 0 && p.X <= f.Width && p.Y >= 0 && p.Y <= f.Height
}

// Corner returns the lower-left corner of the field, where the paper
// locates the base station.
func (f Field) Corner() Point { return Point{0, 0} }

// Center returns the center of the field.
func (f Field) Center() Point { return Point{f.Width / 2, f.Height / 2} }

// Area returns the field area in square meters.
func (f Field) Area() float64 { return f.Width * f.Height }

// RandomPoints draws n points uniformly at random inside the field using
// rng. The result is deterministic for a fixed rng state.
func (f Field) RandomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * f.Width, Y: rng.Float64() * f.Height}
	}
	return pts
}

// minSeparationAttempts bounds the rejection-sampling loop in
// RandomPointsMinSep before the separation constraint is relaxed.
const minSeparationAttempts = 64

// RandomPointsMinSep draws n points uniformly at random subject to a
// best-effort minimum pairwise separation minSep (meters). Separation keeps
// random post sets from degenerating into coincident posts, which would
// make "posts" indistinguishable from one multi-node post. If a candidate
// cannot be placed after a bounded number of attempts the constraint is
// waived for that point, so the function always returns n points.
func (f Field) RandomPointsMinSep(rng *rand.Rand, n int, minSep float64) []Point {
	pts := make([]Point, 0, n)
	minSep2 := minSep * minSep
	for len(pts) < n {
		placed := false
		for attempt := 0; attempt < minSeparationAttempts; attempt++ {
			cand := Point{X: rng.Float64() * f.Width, Y: rng.Float64() * f.Height}
			ok := true
			for _, p := range pts {
				if Dist2(cand, p) < minSep2 {
					ok = false
					break
				}
			}
			if ok {
				pts = append(pts, cand)
				placed = true
				break
			}
		}
		if !placed {
			pts = append(pts, Point{X: rng.Float64() * f.Width, Y: rng.Float64() * f.Height})
		}
	}
	return pts
}

// ClusteredPoints draws n points from `clusters` Gaussian blobs whose
// centres are uniform in the field; sigma is the blob's standard
// deviation in meters. Points are clamped to the field. Clustered
// layouts model villages/buildings in monitoring deployments, in
// contrast to RandomPoints' uniform scatter.
func (f Field) ClusteredPoints(rng *rand.Rand, n, clusters int, sigma float64) []Point {
	if clusters < 1 {
		clusters = 1
	}
	centers := f.RandomPoints(rng, clusters)
	pts := make([]Point, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		p := Point{
			X: c.X + rng.NormFloat64()*sigma,
			Y: c.Y + rng.NormFloat64()*sigma,
		}
		p.X = math.Min(math.Max(p.X, 0), f.Width)
		p.Y = math.Min(math.Max(p.Y, 0), f.Height)
		pts[i] = p
	}
	return pts
}

// Grid returns ceil(sqrt(n))^2 >= n points arranged on a regular grid and
// truncated to exactly n. Grid layouts give reproducible, well-spread post
// sets for examples and tests.
func (f Field) Grid(n int) []Point {
	if n <= 0 {
		return nil
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]Point, 0, n)
	for r := 0; r < side && len(pts) < n; r++ {
		for c := 0; c < side && len(pts) < n; c++ {
			pts = append(pts, Point{
				X: (float64(c) + 0.5) * f.Width / float64(side),
				Y: (float64(r) + 0.5) * f.Height / float64(side),
			})
		}
	}
	return pts
}

// Centroid returns the centroid of pts; the zero Point when pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}

// BoundingBox returns the lower-left and upper-right corners of the
// axis-aligned bounding box of pts. Both are zero Points when pts is empty.
func BoundingBox(pts []Point) (lo, hi Point) {
	if len(pts) == 0 {
		return Point{}, Point{}
	}
	lo, hi = pts[0], pts[0]
	for _, p := range pts[1:] {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	return lo, hi
}

// NearestIndex returns the index in pts of the point nearest to q, and the
// distance to it. It returns (-1, +Inf) when pts is empty. Ties resolve to
// the lowest index, keeping tours and schedules deterministic.
func NearestIndex(q Point, pts []Point) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	for i, p := range pts {
		if d2 := Dist2(q, p); d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	if best < 0 {
		return -1, math.Inf(1)
	}
	return best, math.Sqrt(bestD2)
}

// PathLength returns the total length of the polyline visiting pts in order.
func PathLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += Dist(pts[i-1], pts[i])
	}
	return total
}
