package experiments

import (
	"fmt"
	"math/rand"

	"wrsn/internal/charging"
	"wrsn/internal/texttable"
)

// Fig1Result bundles the two sub-plots of the paper's Fig. 1 (one per
// inter-sensor spacing) plus the underlying measurement grid (Table II).
type Fig1Result struct {
	// Figures holds one Figure per spacing (5cm, 10cm): X = charger
	// distance (m), one series per simultaneous sensor count, Y = mean
	// received power per node (mW).
	Figures []Figure
	// Measurements is the full Table II grid with per-cell statistics.
	Measurements []charging.Measurement
}

// Fig1 reruns the (simulated) Powercast field experiment over the Table
// II parameter grid: 40 noisy trials per cell, averaged — reproducing the
// paper's observations: exponential decay with distance, a per-node drop
// from 1 to 2 sensors that is larger at 5cm spacing than at 10cm, and
// per-node power approximately flat from 2 to 6 sensors (near-linear
// network charging efficiency).
func Fig1(opts Options) (*Fig1Result, error) {
	lab := charging.DefaultLab()
	rng := rand.New(rand.NewSource(opts.baseSeed()))
	cells, err := lab.RunTableII(rng)
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{Measurements: cells}
	for _, spacing := range charging.TableIISensorSpacings {
		fig := Figure{
			ID:     fmt.Sprintf("fig1-%.0fcm", spacing*100),
			Title:  fmt.Sprintf("Field experiment: received power per node, sensor spacing %.0fcm", spacing*100),
			XLabel: "charger-to-sensor distance (m)",
			YLabel: "mean received power per node (mW)",
		}
		for _, d := range charging.TableIIChargerDistances {
			fig.X = append(fig.X, d)
		}
		for _, m := range charging.TableIISensorCounts {
			s := Series{Label: fmt.Sprintf("%d sensors", m)}
			for _, cell := range cells {
				if cell.Spacing == spacing && cell.Sensors == m {
					s.Y = append(s.Y, cell.MeanPerNodeMW)
				}
			}
			fig.Series = append(fig.Series, s)
		}
		res.Figures = append(res.Figures, fig)
	}
	return res, nil
}

// Tables renders the result in the paper's layout: one table per spacing,
// rows = charger distances, one column per sensor count, plus a
// network-efficiency summary table.
func (r *Fig1Result) Tables() []*texttable.Table {
	var out []*texttable.Table
	for _, fig := range r.Figures {
		headers := []string{"distance (m)"}
		for _, s := range fig.Series {
			headers = append(headers, s.Label+" (mW/node)")
		}
		t := texttable.New(fig.Title, headers...)
		for xi, x := range fig.X {
			row := []interface{}{x}
			for _, s := range fig.Series {
				row = append(row, s.Y[xi])
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}

	eff := texttable.New(
		"Network charging efficiency (% of charger power captured, all sensors combined)",
		"spacing (m)", "distance (m)", "1 sensor", "2 sensors", "4 sensors", "6 sensors")
	for _, spacing := range []float64{0.05, 0.10} {
		for _, d := range []float64{0.20, 0.60, 1.00} {
			row := []interface{}{spacing, d}
			for _, m := range []int{1, 2, 4, 6} {
				for _, cell := range r.Measurements {
					if cell.Spacing == spacing && cell.Sensors == m && cell.ChargerDist == d {
						row = append(row, cell.NetworkEffPct)
					}
				}
			}
			eff.AddRow(row...)
		}
	}
	out = append(out, eff)
	return out
}
