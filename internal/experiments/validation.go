package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"wrsn/internal/energy"
	"wrsn/internal/engine"
	"wrsn/internal/geom"
	"wrsn/internal/model"
	"wrsn/internal/sim"
	"wrsn/internal/solver"
	"wrsn/internal/stats"
)

// ExtSimValidation closes the loop between the analytic objective and the
// running system: for a batch of solved networks it simulates thousands
// of reporting rounds with an over-provisioned charger and reports the
// relative deviation between the charger's measured energy per delivered
// bit-round and model.Evaluate's prediction. Deviations sit well under a
// percent — evidence that the optimisation objective prices exactly what
// a real charging schedule pays. Unlike the comparison sweeps, every
// x position here is its own instance, so the sweep decorrelates points
// with SeedStride=1 and runs a single seed per point.
func ExtSimValidation(opts Options) (*Figure, error) {
	const (
		side       = 250.0
		posts      = 15
		nodes      = 60
		packetBits = 1000
	)
	seeds := opts.seeds(8, 2)
	rounds := 20000
	if opts.Quick {
		rounds = 8000
	}

	sw := &engine.Sweep{
		ID:         "ext-validation",
		Title:      "Extension: simulator vs analytic recharging cost (250x250m, 15 posts, 60 nodes)",
		XLabel:     "instance",
		YLabel:     "nJ per bit-round / % deviation",
		Seeds:      1,
		SeedStride: 1,
		BaseSeed:   opts.baseSeed(),
	}
	field := geom.Square(side)
	for s := 0; s < seeds; s++ {
		sw.Points = append(sw.Points, engine.Point{
			X:     float64(s + 1),
			Label: fmt.Sprintf("instance %d", s+1),
			Gen: engine.ProblemGen(func(rng *rand.Rand) (*model.Problem, error) {
				return model.GenerateProblem(rng, model.GenSpec{Field: field, Posts: posts, Nodes: nodes, Energy: energy.Default()})
			}),
		})
	}
	sw.Algorithms = []engine.Algorithm{{
		Label: "simulated RFH network",
		Outputs: []engine.SeriesSpec{
			{Label: "analytic cost", Unit: "nJ/bit-round"},
			{Label: "empirical cost", Unit: "nJ/bit-round"},
			{Label: "deviation", Unit: "%"},
		},
		Run: func(ctx context.Context, inst *engine.Instance) (engine.CellResult, error) {
			res, err := solver.RFHCtx(ctx, inst.Problem(), solver.RFHOptions{Iterations: solver.DefaultRFHIterations})
			if err != nil {
				return engine.CellResult{}, err
			}
			simulator, err := sim.New(sim.Config{
				Problem:  inst.Problem(),
				Solution: res.Solution,
				Charger: &sim.ChargerConfig{
					PowerPerRound: 1e9,
					SpeedPerRound: 1e6,
					FillToFrac:    0.95,
					TargetFrac:    0.90,
				},
				PacketBits:        packetBits,
				InitialChargeFrac: 0.93,
				Seed:              inst.InstanceSeed,
			})
			if err != nil {
				return engine.CellResult{}, err
			}
			m, err := simulator.RunCtx(ctx, rounds)
			if err != nil {
				return engine.CellResult{}, err
			}
			a, err := simulator.AnalyticCostPerBitRound()
			if err != nil {
				return engine.CellResult{}, err
			}
			e := m.EmpiricalCostPerBitRound(packetBits)
			return engine.CellResult{
				Values:      []float64{a, e, stats.RelDiff(e, a) * 100},
				Evaluations: res.Evaluations,
			}, nil
		},
	}}
	return runFigure(opts, sw)
}
