package experiments

import (
	"wrsn/internal/energy"
	"wrsn/internal/geom"
	"wrsn/internal/model"
	"wrsn/internal/sim"
	"wrsn/internal/solver"
	"wrsn/internal/stats"
)

// ExtSimValidation closes the loop between the analytic objective and the
// running system: for a batch of solved networks it simulates thousands
// of reporting rounds with an over-provisioned charger and reports the
// relative deviation between the charger's measured energy per delivered
// bit-round and model.Evaluate's prediction. Deviations sit well under a
// percent — evidence that the optimisation objective prices exactly what
// a real charging schedule pays.
func ExtSimValidation(opts Options) (*Figure, error) {
	const (
		side       = 250.0
		posts      = 15
		nodes      = 60
		packetBits = 1000
	)
	seeds := opts.seeds(8, 2)
	rounds := 20000
	if opts.Quick {
		rounds = 8000
	}

	fig := &Figure{
		ID:     "ext-validation",
		Title:  "Extension: simulator vs analytic recharging cost (250x250m, 15 posts, 60 nodes)",
		XLabel: "instance",
		YLabel: "nJ per bit-round / % deviation",
	}
	analytic := Series{Label: "analytic cost", Unit: "nJ/bit-round", Y: make([]float64, seeds)}
	empirical := Series{Label: "empirical cost", Unit: "nJ/bit-round", Y: make([]float64, seeds)}
	deviation := Series{Label: "deviation", Unit: "%", Y: make([]float64, seeds)}
	field := geom.Square(side)
	for s := 0; s < seeds; s++ {
		fig.X = append(fig.X, float64(s+1))
		rng := newSeededRNG(opts.baseSeed() + int64(s))
		p, err := model.GenerateProblem(rng, model.GenSpec{Field: field, Posts: posts, Nodes: nodes, Energy: energy.Default()})
		if err != nil {
			return nil, err
		}
		res, err := solver.IterativeRFH(p)
		if err != nil {
			return nil, err
		}
		simulator, err := sim.New(sim.Config{
			Problem:  p,
			Solution: res.Solution,
			Charger: &sim.ChargerConfig{
				PowerPerRound: 1e9,
				SpeedPerRound: 1e6,
				FillToFrac:    0.95,
				TargetFrac:    0.90,
			},
			PacketBits:        packetBits,
			InitialChargeFrac: 0.93,
			Seed:              opts.baseSeed() + int64(s),
		})
		if err != nil {
			return nil, err
		}
		m, err := simulator.Run(rounds)
		if err != nil {
			return nil, err
		}
		a, err := simulator.AnalyticCostPerBitRound()
		if err != nil {
			return nil, err
		}
		e := m.EmpiricalCostPerBitRound(packetBits)
		analytic.Y[s] = a
		empirical.Y[s] = e
		deviation.Y[s] = stats.RelDiff(e, a) * 100
	}
	fig.Series = []Series{analytic, empirical, deviation}
	return fig, nil
}
