package experiments

import (
	"strconv"
	"time"

	"wrsn/internal/energy"
	"wrsn/internal/geom"
	"wrsn/internal/model"
	"wrsn/internal/solver"
	"wrsn/internal/stats"
)

// ExtDelta studies IDB's per-round increment δ, which the paper introduces
// as "a system parameter" without evaluating: each round places δ nodes
// after examining C(N+δ-1, N-1) candidates, so larger δ is less greedy
// but combinatorially more expensive. The experiment reports cost and
// runtime per δ. In practice δ=1 is near-optimal — larger increments buy
// almost nothing for orders of magnitude more work, justifying the
// paper's δ=1 comparisons.
func ExtDelta(opts Options) (*Figure, error) {
	const (
		side  = 300.0
		posts = 25
		nodes = 125
	)
	deltas := []int{1, 2, 3, 4}
	seeds := opts.seeds(10, 2)

	fig := &Figure{
		ID:     "ext-delta",
		Title:  "Extension: IDB increment δ (300x300m, 25 posts, 125 nodes)",
		XLabel: "delta (nodes placed per round)",
		YLabel: "total recharging cost (µJ) / runtime (ms)",
	}
	for _, d := range deltas {
		fig.X = append(fig.X, float64(d))
	}
	cost := Series{Label: "IDB cost", Y: make([]float64, len(deltas))}
	runtime := Series{Label: "runtime", Unit: "ms", Y: make([]float64, len(deltas))}
	evals := Series{Label: "deployments evaluated", Unit: "-", Y: make([]float64, len(deltas))}
	field := geom.Square(side)
	for di, delta := range deltas {
		var costs, times, evalCounts []float64
		for s := 0; s < seeds; s++ {
			rng := newSeededRNG(opts.baseSeed() + int64(s))
			p, err := model.GenerateProblem(rng, model.GenSpec{Field: field, Posts: posts, Nodes: nodes, Energy: energy.Default()})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := solver.IDB(p, delta)
			if err != nil {
				return nil, err
			}
			costs = append(costs, njToMicroJ(res.Cost))
			times = append(times, float64(time.Since(start).Microseconds())/1000)
			evalCounts = append(evalCounts, float64(res.Evaluations))
		}
		var err error
		if cost.Y[di], err = stats.Mean(costs); err != nil {
			return nil, err
		}
		if runtime.Y[di], err = stats.Mean(times); err != nil {
			return nil, err
		}
		if evals.Y[di], err = stats.Mean(evalCounts); err != nil {
			return nil, err
		}
	}
	fig.Series = []Series{cost, runtime, evals}
	return fig, nil
}

// DeltaLabel names a delta value for table rendering.
func DeltaLabel(d int) string { return "δ=" + strconv.Itoa(d) }
