package experiments

import (
	"context"
	"math/rand"
	"strconv"
	"time"

	"wrsn/internal/energy"
	"wrsn/internal/engine"
	"wrsn/internal/geom"
	"wrsn/internal/model"
	"wrsn/internal/solver"
)

// ExtDelta studies IDB's per-round increment δ, which the paper introduces
// as "a system parameter" without evaluating: each round places δ nodes
// after examining C(N+δ-1, N-1) candidates, so larger δ is less greedy
// but combinatorially more expensive. The experiment reports cost and
// runtime per δ. In practice δ=1 is near-optimal — larger increments buy
// almost nothing for orders of magnitude more work, justifying the
// paper's δ=1 comparisons. (δ=1 is also the shape the incremental
// evaluator exploits best: each candidate is a single-post CostDelta
// probe against the round's committed deployment.)
func ExtDelta(opts Options) (*Figure, error) {
	const (
		side  = 300.0
		posts = 25
		nodes = 125
	)
	deltas := []int{1, 2, 3, 4}

	sw := &engine.Sweep{
		ID:       "ext-delta",
		Title:    "Extension: IDB increment δ (300x300m, 25 posts, 125 nodes)",
		XLabel:   "delta (nodes placed per round)",
		YLabel:   "total recharging cost (µJ) / runtime (ms)",
		Seeds:    opts.seeds(10, 2),
		BaseSeed: opts.baseSeed(),
	}
	field := geom.Square(side)
	for _, d := range deltas {
		sw.Points = append(sw.Points, engine.Point{
			X:     float64(d),
			Label: DeltaLabel(d),
			Gen: engine.ProblemGen(func(rng *rand.Rand) (*model.Problem, error) {
				return model.GenerateProblem(rng, model.GenSpec{Field: field, Posts: posts, Nodes: nodes, Energy: energy.Default()})
			}),
		})
	}
	sw.Algorithms = []engine.Algorithm{{
		Label: "IDB",
		Outputs: []engine.SeriesSpec{
			{Label: "IDB cost"},
			{Label: "runtime", Unit: "ms"},
			{Label: "deployments evaluated", Unit: "-"},
		},
		Run: func(ctx context.Context, inst *engine.Instance) (engine.CellResult, error) {
			delta := deltas[inst.Point]
			start := time.Now()
			res, err := solver.IDBCtx(ctx, inst.Problem(), delta)
			if err != nil {
				return engine.CellResult{}, err
			}
			return engine.CellResult{
				Values: []float64{
					njToMicroJ(res.Cost),
					float64(time.Since(start).Microseconds()) / 1000,
					float64(res.Evaluations),
				},
				Evaluations: res.Evaluations,
			}, nil
		},
	}}
	return runFigure(opts, sw)
}

// DeltaLabel names a delta value for table rendering.
func DeltaLabel(d int) string { return "δ=" + strconv.Itoa(d) }
