package experiments

import (
	"wrsn/internal/energy"
	"wrsn/internal/engine"
)

// Fig7a reproduces the small-scale comparison against the optimal
// solution with a varying node count: 200x200m field, 10 posts, nodes in
// {20, 24, 28, 32, 36}, averaged over 5 post distributions. The paper
// observes IDB(δ=1) matching the optimum at every point and RFH within
// ~3% of it.
func Fig7a(opts Options) (*Figure, error) {
	const (
		side  = 200.0
		posts = 10
	)
	nodeCounts := []int{20, 24, 28, 32, 36}
	seeds := opts.seeds(5, 2)
	if opts.Quick {
		nodeCounts = []int{20, 28, 36}
	}
	points := make([]sweepPoint, 0, len(nodeCounts))
	for _, m := range nodeCounts {
		points = append(points, sweepPoint{X: float64(m), Posts: posts, Nodes: m, Energy: energy.Default()})
	}
	sw := &engine.Sweep{
		ID:     "fig7a",
		Title:  "Heuristics vs optimal, varying node count (200x200m, 10 posts)",
		XLabel: "number of sensor nodes",
		YLabel: "total recharging cost (µJ)",
	}
	return runSweep(opts, side, points, []engine.Algorithm{optimalAlgorithm(), idbAlgorithm(1), rfhAlgorithm()}, seeds, sw)
}

// Fig7b reproduces the small-scale comparison with a varying post count:
// 200x200m field, 36 nodes, posts in {8, 9, 10, 11, 12}, 5 seeds. The
// paper notes IDB(δ=1) slightly above the optimum at 11 and 12 posts.
func Fig7b(opts Options) (*Figure, error) {
	const (
		side  = 200.0
		nodes = 36
	)
	postCounts := []int{8, 9, 10, 11, 12}
	seeds := opts.seeds(5, 2)
	if opts.Quick {
		postCounts = []int{8, 10, 12}
	}
	points := make([]sweepPoint, 0, len(postCounts))
	for _, n := range postCounts {
		points = append(points, sweepPoint{X: float64(n), Posts: n, Nodes: nodes, Energy: energy.Default()})
	}
	sw := &engine.Sweep{
		ID:     "fig7b",
		Title:  "Heuristics vs optimal, varying post count (200x200m, 36 nodes)",
		XLabel: "number of posts",
		YLabel: "total recharging cost (µJ)",
	}
	return runSweep(opts, side, points, []engine.Algorithm{optimalAlgorithm(), idbAlgorithm(1), rfhAlgorithm()}, seeds, sw)
}
