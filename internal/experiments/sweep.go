package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"wrsn/internal/energy"
	"wrsn/internal/geom"
	"wrsn/internal/model"
	"wrsn/internal/solver"
	"wrsn/internal/stats"
	"wrsn/internal/texttable"
)

// algorithm is one labelled solver entry in a comparison sweep.
type algorithm struct {
	Label string
	Run   func(p *model.Problem) (float64, error)
}

// rfhAlgorithm is the iterative RFH with the paper's seven iterations.
func rfhAlgorithm() algorithm {
	return algorithm{Label: "RFH", Run: func(p *model.Problem) (float64, error) {
		res, err := solver.IterativeRFH(p)
		if err != nil {
			return 0, err
		}
		return res.Cost, nil
	}}
}

// idbAlgorithm is IDB with the given delta.
func idbAlgorithm(delta int) algorithm {
	label := "IDB(δ=" + strconv.Itoa(delta) + ")"
	return algorithm{Label: label, Run: func(p *model.Problem) (float64, error) {
		res, err := solver.IDB(p, delta)
		if err != nil {
			return 0, err
		}
		return res.Cost, nil
	}}
}

// optimalAlgorithm is the exact branch-and-bound solver.
func optimalAlgorithm() algorithm {
	return algorithm{Label: "Optimal", Run: func(p *model.Problem) (float64, error) {
		res, err := solver.Optimal(p, solver.OptimalOptions{})
		if err != nil {
			return 0, err
		}
		return res.Cost, nil
	}}
}

// sweepPoint is one x-axis position of a comparison sweep.
type sweepPoint struct {
	X      float64
	Posts  int
	Nodes  int
	Energy energy.Model
}

// runSweep evaluates every algorithm on every sweep point, averaging
// total recharging cost (µJ) over `seeds` random post distributions. All
// algorithms see the *same* instances per (point, seed), matching the
// paper's methodology.
func runSweep(opts Options, side float64, points []sweepPoint, algos []algorithm, seeds int, fig *Figure) (*Figure, error) {
	field := geom.Square(side)
	for _, pt := range points {
		fig.X = append(fig.X, pt.X)
	}
	acc := make([][][]float64, len(algos)) // [algo][point][seed]
	for a := range acc {
		acc[a] = make([][]float64, len(points))
	}
	for pi, pt := range points {
		for s := 0; s < seeds; s++ {
			// The seed depends only on s, not on the sweep point: sweeps
			// that vary the node budget then compare identical post
			// distributions across points (the paper's methodology —
			// its cost-vs-M curves decrease monotonically, which only
			// holds when the instances are shared).
			rng := rand.New(rand.NewSource(opts.baseSeed() + int64(s)))
			p, err := randomConnectedProblem(rng, field, pt.Posts, pt.Nodes, pt.Energy)
			if err != nil {
				return nil, err
			}
			for ai, algo := range algos {
				cost, err := algo.Run(p)
				if err != nil {
					return nil, err
				}
				acc[ai][pi] = append(acc[ai][pi], njToMicroJ(cost))
			}
		}
	}
	for ai, algo := range algos {
		s := Series{
			Label: algo.Label,
			Y:     make([]float64, len(points)),
			CI95:  make([]float64, len(points)),
		}
		for pi := range points {
			mean, err := stats.Mean(acc[ai][pi])
			if err != nil {
				return nil, err
			}
			s.Y[pi] = mean
			ci, err := stats.CI95HalfWidth(acc[ai][pi])
			if err != nil {
				return nil, err
			}
			s.CI95[pi] = ci
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ComparisonTable renders a sweep figure: one row per X, one column per
// algorithm.
func ComparisonTable(fig *Figure) *texttable.Table {
	headers := []string{fig.XLabel}
	for _, s := range fig.Series {
		unit := s.Unit
		if unit == "" {
			unit = " (µJ)"
		} else if unit != "-" {
			unit = " (" + unit + ")"
		} else {
			unit = ""
		}
		headers = append(headers, s.Label+unit)
	}
	t := texttable.New(fig.Title, headers...)
	for xi, x := range fig.X {
		row := []interface{}{x}
		for _, s := range fig.Series {
			if len(s.CI95) == len(s.Y) && s.CI95[xi] > 0 {
				row = append(row, fmt.Sprintf("%.4f ±%.4f", s.Y[xi], s.CI95[xi]))
			} else {
				row = append(row, s.Y[xi])
			}
		}
		t.AddRow(row...)
	}
	return t
}
