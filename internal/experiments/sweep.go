package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"

	"wrsn/internal/energy"
	"wrsn/internal/engine"
	"wrsn/internal/geom"
	"wrsn/internal/model"
	"wrsn/internal/texttable"
)

// costAlgorithm adapts a context-aware solver into a one-output engine
// algorithm reporting total recharging cost in the paper's µJ, with a
// 95% confidence interval over seeds.
func costAlgorithm(label string, solve engine.SolveFunc) engine.Algorithm {
	return engine.Algorithm{
		Label:   label,
		Outputs: []engine.SeriesSpec{{Label: label, CI: true}},
		Run: func(ctx context.Context, inst *engine.Instance) (engine.CellResult, error) {
			res, err := solve(ctx, inst.Inst)
			if err != nil {
				return engine.CellResult{}, err
			}
			return engine.CellResult{
				Values:      []float64{njToMicroJ(res.Cost)},
				Evaluations: res.Evaluations,
			}, nil
		},
	}
}

// rfhAlgorithm is the iterative RFH with the paper's seven iterations.
func rfhAlgorithm() engine.Algorithm {
	return costAlgorithm("RFH", engine.MustSolver("rfh-iterative"))
}

// idbAlgorithm is IDB with the given delta.
func idbAlgorithm(delta int) engine.Algorithm {
	return costAlgorithm("IDB(δ="+strconv.Itoa(delta)+")", engine.IDBSolver(delta))
}

// optimalAlgorithm is the exact branch-and-bound solver.
func optimalAlgorithm() engine.Algorithm {
	return costAlgorithm("Optimal", engine.MustSolver("optimal"))
}

// sweepPoint is one x-axis position of a comparison sweep.
type sweepPoint struct {
	X      float64
	Posts  int
	Nodes  int
	Energy energy.Model
}

// comparisonSweep fills a sweep spec with the classic comparison shape:
// every algorithm solves the *same* random instances per (point, seed)
// — the instance seed depends only on the seed index, not on the sweep
// point, so sweeps that vary the node budget compare identical post
// distributions across points (the paper's methodology; its cost-vs-M
// curves decrease monotonically, which only holds when the instances
// are shared).
func comparisonSweep(opts Options, side float64, points []sweepPoint, algos []engine.Algorithm, seeds int, sw *engine.Sweep) *engine.Sweep {
	field := geom.Square(side)
	for _, pt := range points {
		pt := pt
		sw.Points = append(sw.Points, engine.Point{
			X:     pt.X,
			Label: fmt.Sprintf("x=%v", pt.X),
			Gen: engine.ProblemGen(func(rng *rand.Rand) (*model.Problem, error) {
				return randomConnectedProblem(rng, field, pt.Posts, pt.Nodes, pt.Energy)
			}),
		})
	}
	sw.Seeds = seeds
	sw.BaseSeed = opts.baseSeed()
	sw.Algorithms = algos
	return sw
}

// runSweep executes the classic comparison sweep and returns its figure.
func runSweep(opts Options, side float64, points []sweepPoint, algos []engine.Algorithm, seeds int, sw *engine.Sweep) (*Figure, error) {
	return runFigure(opts, comparisonSweep(opts, side, points, algos, seeds, sw))
}

// ComparisonTable renders a sweep figure: one row per X, one column per
// algorithm.
func ComparisonTable(fig *Figure) *texttable.Table {
	headers := []string{fig.XLabel}
	for _, s := range fig.Series {
		unit := s.Unit
		if unit == "" {
			unit = " (µJ)"
		} else if unit != "-" {
			unit = " (" + unit + ")"
		} else {
			unit = ""
		}
		headers = append(headers, s.Label+unit)
	}
	t := texttable.New(fig.Title, headers...)
	for xi, x := range fig.X {
		row := []interface{}{x}
		for _, s := range fig.Series {
			if len(s.CI95) == len(s.Y) && s.CI95[xi] > 0 {
				row = append(row, fmt.Sprintf("%.4f ±%.4f", s.Y[xi], s.CI95[xi]))
			} else {
				row = append(row, s.Y[xi])
			}
		}
		t.AddRow(row...)
	}
	return t
}
