package experiments

import (
	"wrsn/internal/energy"
	"wrsn/internal/geom"
	"wrsn/internal/model"
	"wrsn/internal/sim"
	"wrsn/internal/solver"
	"wrsn/internal/stats"
)

// ExtFaultTolerance probes the paper's fault-tolerance claim ("deploying
// multiple nodes in one post can increase the recharging efficiency and
// fault tolerance"): under sustained permanent node failures, how does
// the optimised (workload-concentrated) deployment's delivery compare to
// a uniform spread of the same node budget? Concentration keeps the heavy
// relay posts redundant exactly where a single failure would sever the
// most traffic, while uniform spreading leaves every post moderately
// redundant. The experiment sweeps the per-node failure rate and reports
// delivery for both under identical failure sequences.
func ExtFaultTolerance(opts Options) (*Figure, error) {
	const (
		side  = 250.0
		posts = 15
		nodes = 75
	)
	// Per-node per-round probabilities (failures per round follow
	// Binomial(alive, p)); over the 6000-round horizon these kill roughly
	// 0%, 14%, 45%, 78% and 99.8% of the fleet.
	failureRates := []float64{0, 2.5e-5, 1e-4, 2.5e-4, 1e-3}
	seeds := opts.seeds(6, 2)
	rounds := 3 * sim.DefaultBatteryRounds

	fig := &Figure{
		ID:     "ext-fault",
		Title:  "Extension: delivery under permanent node failures (250x250m, 15 posts, 75 nodes)",
		XLabel: "per-node failure probability per round",
		YLabel: "delivery ratio",
	}
	optimised := Series{Label: "optimised deployment", Unit: "-", Y: make([]float64, len(failureRates))}
	uniform := Series{Label: "uniform deployment", Unit: "-", Y: make([]float64, len(failureRates))}
	field := geom.Square(side)
	for fi, rate := range failureRates {
		fig.X = append(fig.X, rate)
		var optRatios, uniRatios []float64
		for s := 0; s < seeds; s++ {
			rng := newSeededRNG(opts.baseSeed() + int64(s))
			p, err := model.GenerateProblem(rng, model.GenSpec{Field: field, Posts: posts, Nodes: nodes, Energy: energy.Default()})
			if err != nil {
				return nil, err
			}
			opt, err := solver.IDB(p, 1)
			if err != nil {
				return nil, err
			}
			uniDeploy, err := model.UniformDeployment(p.N(), p.Nodes)
			if err != nil {
				return nil, err
			}
			uniTree, _, err := model.BestTreeFor(p, uniDeploy)
			if err != nil {
				return nil, err
			}
			run := func(sol model.Solution) (float64, error) {
				simulator, err := sim.New(sim.Config{
					Problem:  p,
					Solution: sol,
					Charger: &sim.ChargerConfig{
						PowerPerRound: 1e9,
						SpeedPerRound: 1e6,
					},
					FailurePerRound: rate,
					Seed:            opts.baseSeed() + int64(1000*fi) + int64(s),
				})
				if err != nil {
					return 0, err
				}
				m, err := simulator.Run(rounds)
				if err != nil {
					return 0, err
				}
				return m.DeliveryRatio(), nil
			}
			optRatio, err := run(opt.Solution)
			if err != nil {
				return nil, err
			}
			uniRatio, err := run(model.Solution{Deploy: uniDeploy, Tree: uniTree})
			if err != nil {
				return nil, err
			}
			optRatios = append(optRatios, optRatio)
			uniRatios = append(uniRatios, uniRatio)
		}
		var err error
		if optimised.Y[fi], err = stats.Mean(optRatios); err != nil {
			return nil, err
		}
		if uniform.Y[fi], err = stats.Mean(uniRatios); err != nil {
			return nil, err
		}
	}
	fig.Series = []Series{optimised, uniform}
	return fig, nil
}
