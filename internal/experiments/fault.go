package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"wrsn/internal/energy"
	"wrsn/internal/engine"
	"wrsn/internal/geom"
	"wrsn/internal/model"
	"wrsn/internal/sim"
	"wrsn/internal/solver"
)

// ExtFaultTolerance probes the paper's fault-tolerance claim ("deploying
// multiple nodes in one post can increase the recharging efficiency and
// fault tolerance"): under sustained permanent node failures, how does
// the optimised (workload-concentrated) deployment's delivery compare to
// a uniform spread of the same node budget? Concentration keeps the heavy
// relay posts redundant exactly where a single failure would sever the
// most traffic, while uniform spreading leaves every post moderately
// redundant. The experiment sweeps the per-node failure rate and reports
// delivery for both under identical failure sequences.
func ExtFaultTolerance(opts Options) (*Figure, error) {
	const (
		side  = 250.0
		posts = 15
		nodes = 75
	)
	// Per-node per-round probabilities (failures per round follow
	// Binomial(alive, p)); over the 6000-round horizon these kill roughly
	// 0%, 14%, 45%, 78% and 99.8% of the fleet.
	failureRates := []float64{0, 2.5e-5, 1e-4, 2.5e-4, 1e-3}
	rounds := 3 * sim.DefaultBatteryRounds

	sw := &engine.Sweep{
		ID:       "ext-fault",
		Title:    "Extension: delivery under permanent node failures (250x250m, 15 posts, 75 nodes)",
		XLabel:   "per-node failure probability per round",
		YLabel:   "delivery ratio",
		Seeds:    opts.seeds(6, 2),
		BaseSeed: opts.baseSeed(),
	}
	field := geom.Square(side)
	for _, rate := range failureRates {
		sw.Points = append(sw.Points, engine.Point{
			X:     rate,
			Label: fmt.Sprintf("p=%g", rate),
			Gen: engine.ProblemGen(func(rng *rand.Rand) (*model.Problem, error) {
				return model.GenerateProblem(rng, model.GenSpec{Field: field, Posts: posts, Nodes: nodes, Energy: energy.Default()})
			}),
		})
	}
	sw.Algorithms = []engine.Algorithm{{
		Label: "failure sweep",
		Outputs: []engine.SeriesSpec{
			{Label: "optimised deployment", Unit: "-"},
			{Label: "uniform deployment", Unit: "-"},
		},
		Run: func(ctx context.Context, inst *engine.Instance) (engine.CellResult, error) {
			rate := failureRates[inst.Point]
			opt, err := solver.IDBCtx(ctx, inst.Problem(), 1)
			if err != nil {
				return engine.CellResult{}, err
			}
			uniDeploy, err := model.UniformDeployment(inst.Problem().N(), inst.Problem().Nodes)
			if err != nil {
				return engine.CellResult{}, err
			}
			uniTree, _, err := model.BestTreeFor(inst.Problem(), uniDeploy)
			if err != nil {
				return engine.CellResult{}, err
			}
			// Both deployments replay the *same* failure sequence: the
			// simulator seed depends only on the cell, not the solution.
			simSeed := inst.BaseSeed + int64(1000*inst.Point) + int64(inst.Seed)
			run := func(sol model.Solution) (float64, error) {
				simulator, err := sim.New(sim.Config{
					Problem:  inst.Problem(),
					Solution: sol,
					Charger: &sim.ChargerConfig{
						PowerPerRound: 1e9,
						SpeedPerRound: 1e6,
					},
					FailurePerRound: rate,
					Seed:            simSeed,
				})
				if err != nil {
					return 0, err
				}
				m, err := simulator.RunCtx(ctx, rounds)
				if err != nil {
					return 0, err
				}
				return m.DeliveryRatio(), nil
			}
			optRatio, err := run(opt.Solution)
			if err != nil {
				return engine.CellResult{}, err
			}
			uniRatio, err := run(model.Solution{Deploy: uniDeploy, Tree: uniTree})
			if err != nil {
				return engine.CellResult{}, err
			}
			return engine.CellResult{
				Values:      []float64{optRatio, uniRatio},
				Evaluations: opt.Evaluations,
			}, nil
		},
	}}
	return runFigure(opts, sw)
}
