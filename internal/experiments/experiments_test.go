package experiments

import (
	"math"
	"strings"
	"testing"
)

// quick returns Options that shrink experiments for test runs.
func quick() Options { return Options{Quick: true} }

func TestFig1Shapes(t *testing.T) {
	res, err := Fig1(Options{})
	if err != nil {
		t.Fatalf("Fig1: %v", err)
	}
	if len(res.Figures) != 2 {
		t.Fatalf("want 2 sub-figures (5cm, 10cm spacing), got %d", len(res.Figures))
	}
	for _, fig := range res.Figures {
		// Observation 1: power decays with distance for every series.
		for _, s := range fig.Series {
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] >= s.Y[i-1] {
					t.Errorf("%s %s: power did not decay from %.2fm (%.3f) to %.2fm (%.3f)",
						fig.ID, s.Label, fig.X[i-1], s.Y[i-1], fig.X[i], s.Y[i])
				}
			}
		}
		one, two, six := fig.Get("1 sensors"), fig.Get("2 sensors"), fig.Get("6 sensors")
		if one == nil || two == nil || six == nil {
			t.Fatalf("%s: missing sensor-count series", fig.ID)
		}
		// Observation 2: per-node power drops from 1 to 2 sensors...
		if two.Y[0] >= one.Y[0] {
			t.Errorf("%s: no per-node drop from 1 to 2 sensors (%.3f vs %.3f)", fig.ID, one.Y[0], two.Y[0])
		}
		// ...and stays approximately flat from 2 to 6.
		if rel := math.Abs(six.Y[0]-two.Y[0]) / two.Y[0]; rel > 0.10 {
			t.Errorf("%s: per-node power not flat from 2 to 6 sensors (rel diff %.1f%%)", fig.ID, rel*100)
		}
	}
	// Observation 3: the 1->2 drop is larger at 5cm than at 10cm spacing.
	drop := func(fig *Figure) float64 {
		return (fig.Get("1 sensors").Y[0] - fig.Get("2 sensors").Y[0]) / fig.Get("1 sensors").Y[0]
	}
	if d5, d10 := drop(&res.Figures[0]), drop(&res.Figures[1]); d5 <= d10 {
		t.Errorf("mutual shadowing should be stronger at 5cm (drop %.1f%%) than 10cm (drop %.1f%%)", d5*100, d10*100)
	}
	// Single-node efficiency below 1% at 20cm, as the paper reports.
	for _, cell := range res.Measurements {
		if cell.Sensors == 1 && cell.ChargerDist == 0.20 {
			if cell.PerNodeEffPct >= 1.0 {
				t.Errorf("single-node efficiency at 20cm is %.2f%%, paper reports <1%%", cell.PerNodeEffPct)
			}
		}
	}
}

func TestFig6ConvergesAndDecreases(t *testing.T) {
	fig, err := Fig6(quick())
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	for _, s := range fig.Series {
		if len(s.Y) != Fig6Iterations {
			t.Fatalf("%s: %d iterations, want %d", s.Label, len(s.Y), Fig6Iterations)
		}
		if s.Y[0] < s.Y[len(s.Y)-1] {
			t.Errorf("%s: cost increased from %.4f to %.4f over iterations", s.Label, s.Y[0], s.Y[len(s.Y)-1])
		}
		// Convergence within seven rounds: later iterations are flat to 1%.
		base := s.Y[6]
		for i := 7; i < len(s.Y); i++ {
			if math.Abs(s.Y[i]-base)/base > 0.01 {
				t.Errorf("%s: iteration %d cost %.4f deviates >1%% from iteration 7's %.4f", s.Label, i+1, s.Y[i], base)
			}
		}
	}
}

func TestFig7aOrderingAndGaps(t *testing.T) {
	fig, err := Fig7a(quick())
	if err != nil {
		t.Fatalf("Fig7a: %v", err)
	}
	opt, idb, rfh := fig.Get("Optimal"), fig.Get("IDB(δ=1)"), fig.Get("RFH")
	if opt == nil || idb == nil || rfh == nil {
		t.Fatal("missing series")
	}
	const eps = 1e-9
	for i := range fig.X {
		if idb.Y[i] < opt.Y[i]-eps || rfh.Y[i] < opt.Y[i]-eps {
			t.Errorf("x=%v: a heuristic beat the optimum (opt=%.4f idb=%.4f rfh=%.4f)", fig.X[i], opt.Y[i], idb.Y[i], rfh.Y[i])
		}
		if gap := (rfh.Y[i] - opt.Y[i]) / opt.Y[i]; gap > 0.10 {
			t.Errorf("x=%v: RFH gap to optimal %.1f%% exceeds 10%%", fig.X[i], gap*100)
		}
		if gap := (idb.Y[i] - opt.Y[i]) / opt.Y[i]; gap > 0.03 {
			t.Errorf("x=%v: IDB gap to optimal %.1f%% exceeds 3%%", fig.X[i], gap*100)
		}
	}
	// Cost decreases as nodes are added (more charging efficiency).
	for i := 1; i < len(fig.X); i++ {
		if opt.Y[i] >= opt.Y[i-1] {
			t.Errorf("optimal cost did not decrease from %v to %v nodes (%.4f -> %.4f)",
				fig.X[i-1], fig.X[i], opt.Y[i-1], opt.Y[i])
		}
	}
}

func TestFig8Trends(t *testing.T) {
	fig, err := Fig8(quick())
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	idb, rfh := fig.Get("IDB(δ=1)"), fig.Get("RFH")
	for i := range fig.X {
		if idb.Y[i] > rfh.Y[i]+1e-9 {
			t.Errorf("x=%v: IDB (%.4f) worse than RFH (%.4f)", fig.X[i], idb.Y[i], rfh.Y[i])
		}
	}
	for i := 1; i < len(fig.X); i++ {
		if idb.Y[i] >= idb.Y[i-1] {
			t.Errorf("IDB cost did not decrease with more nodes (%.4f -> %.4f)", idb.Y[i-1], idb.Y[i])
		}
	}
}

func TestFig10NoSignificantImpact(t *testing.T) {
	fig, err := Fig10(quick())
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	// The paper's headline: extra transmission ranges have no significant
	// impact (short hops dominate under the d^4 law). Our recharge-cost
	// routing can additionally exploit an occasional long direct-to-BS
	// hop, so we assert the curves never *increase* and stay within 10%
	// of the 3-level baseline (EXPERIMENTS.md records the measured gap).
	for _, s := range fig.Series {
		base := s.Y[0]
		for i, y := range s.Y {
			if y > base*1.005 {
				t.Errorf("%s: cost rose with more power levels (%.4f at %v levels vs %.4f at %v)",
					s.Label, y, fig.X[i], base, fig.X[0])
			}
			if math.Abs(y-base)/base > 0.10 {
				t.Errorf("%s: cost at %v levels (%.4f) deviates >10%% from %v levels (%.4f)",
					s.Label, fig.X[i], y, fig.X[0], base)
			}
		}
	}
}

func TestExtGainOrdering(t *testing.T) {
	fig, err := ExtGain(quick())
	if err != nil {
		t.Fatalf("ExtGain: %v", err)
	}
	idb, rfh := fig.Get("IDB(δ=1)"), fig.Get("RFH")
	if idb == nil || rfh == nil {
		t.Fatal("missing series")
	}
	// Cost rises as the gain weakens (linear -> m^0.9 -> m^0.7), and IDB
	// stays at or below RFH under every gain model.
	for i := 0; i < 3; i++ {
		if i > 0 && idb.Y[i] <= idb.Y[i-1] {
			t.Errorf("IDB cost did not rise as gain weakened: %.4f -> %.4f", idb.Y[i-1], idb.Y[i])
		}
		if idb.Y[i] > rfh.Y[i]+1e-9 {
			t.Errorf("gain model %d: IDB (%.4f) worse than RFH (%.4f)", i, idb.Y[i], rfh.Y[i])
		}
	}
}

func TestExtOverheadMonotone(t *testing.T) {
	fig, err := ExtOverhead(quick())
	if err != nil {
		t.Fatalf("ExtOverhead: %v", err)
	}
	cost := fig.Get("RFH")
	for i := 1; i < len(cost.Y); i++ {
		if cost.Y[i] <= cost.Y[i-1] {
			t.Errorf("cost did not rise with overhead: %.4f -> %.4f at %v nJ",
				cost.Y[i-1], cost.Y[i], fig.X[i])
		}
	}
}

func TestExtChargerPolicyShapes(t *testing.T) {
	fig, err := ExtChargerPolicy(quick())
	if err != nil {
		t.Fatalf("ExtChargerPolicy: %v", err)
	}
	delivery := fig.Get("delivery ratio")
	if delivery == nil || len(delivery.Y) != 3 {
		t.Fatal("missing delivery series")
	}
	for i, d := range delivery.Y {
		if d <= 0 || d > 1 {
			t.Errorf("policy %d delivery ratio %v out of (0,1]", i, d)
		}
	}
	// Urgency never trails round-robin under pressure.
	if delivery.Y[0] < delivery.Y[1]-1e-9 {
		t.Errorf("urgency (%.4f) trails round-robin (%.4f)", delivery.Y[0], delivery.Y[1])
	}
}

func TestExtPortfolio(t *testing.T) {
	entries, err := ExtPortfolio(quick())
	if err != nil {
		t.Fatalf("ExtPortfolio: %v", err)
	}
	if len(entries) != 6 {
		t.Fatalf("got %d entries, want 6", len(entries))
	}
	byName := map[string]PortfolioEntry{}
	for _, e := range entries {
		byName[e.Solver] = e
		if e.MeanCost <= 0 || e.MeanGapPct < 0 {
			t.Errorf("degenerate entry %+v", e)
		}
	}
	// Quality ordering: iterating never hurts RFH; local search never
	// hurts its seed; IDB(+LS) is the quality frontier.
	if byName["iterative RFH"].MeanCost > byName["basic RFH"].MeanCost+1e-9 {
		t.Error("iterative RFH worse than basic RFH")
	}
	if byName["RFH + local search"].MeanCost > byName["iterative RFH"].MeanCost+1e-9 {
		t.Error("local search worsened RFH")
	}
	if byName["IDB + local search"].MeanCost > byName["IDB(δ=1)"].MeanCost+1e-9 {
		t.Error("local search worsened IDB")
	}
	// IDB+LS sits on (or within a fraction of a percent of) the
	// per-instance frontier; annealing can occasionally edge it out.
	if byName["IDB + local search"].MeanGapPct > 1.0 {
		t.Errorf("IDB+LS gap to the frontier %.3f%% is excessive", byName["IDB + local search"].MeanGapPct)
	}
	if byName["RFH + annealing"].MeanCost > byName["iterative RFH"].MeanCost+1e-9 {
		t.Error("annealing worsened its RFH seed")
	}
}

func TestExtLayoutOrdering(t *testing.T) {
	fig, err := ExtLayout(quick())
	if err != nil {
		t.Fatalf("ExtLayout: %v", err)
	}
	idb, rfh := fig.Get("IDB(δ=1)"), fig.Get("RFH")
	if idb == nil || rfh == nil || len(idb.Y) != 3 {
		t.Fatal("missing series")
	}
	for i := range idb.Y {
		if idb.Y[i] > rfh.Y[i]+1e-9 {
			t.Errorf("layout %v: IDB (%.4f) worse than RFH (%.4f)", fig.X[i], idb.Y[i], rfh.Y[i])
		}
		if idb.Y[i] <= 0 {
			t.Errorf("layout %v: degenerate cost", fig.X[i])
		}
	}
	// Clustered fields have shorter hops: cheaper than uniform.
	if idb.Y[1] >= idb.Y[0] {
		t.Errorf("clustered (%.4f) should be cheaper than uniform (%.4f)", idb.Y[1], idb.Y[0])
	}
}

func TestFig7bOrdering(t *testing.T) {
	fig, err := Fig7b(quick())
	if err != nil {
		t.Fatalf("Fig7b: %v", err)
	}
	opt, idb, rfh := fig.Get("Optimal"), fig.Get("IDB(δ=1)"), fig.Get("RFH")
	if opt == nil || idb == nil || rfh == nil {
		t.Fatal("missing series")
	}
	for i := range fig.X {
		if idb.Y[i] < opt.Y[i]-1e-9 || rfh.Y[i] < opt.Y[i]-1e-9 {
			t.Errorf("x=%v: heuristic beat the optimum", fig.X[i])
		}
	}
	// More posts with a fixed node budget -> more traffic, thinner
	// deployments -> higher cost (see EXPERIMENTS.md on the paper's
	// self-contradictory prose here).
	last := len(fig.X) - 1
	if opt.Y[last] <= opt.Y[0] {
		t.Errorf("cost should rise with post count at fixed M: %.4f -> %.4f", opt.Y[0], opt.Y[last])
	}
}

func TestFig9Ordering(t *testing.T) {
	fig, err := Fig9(quick())
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	idb, rfh := fig.Get("IDB(δ=1)"), fig.Get("RFH")
	for i := range fig.X {
		if idb.Y[i] > rfh.Y[i]+1e-9 {
			t.Errorf("x=%v: IDB (%.4f) worse than RFH (%.4f)", fig.X[i], idb.Y[i], rfh.Y[i])
		}
	}
}

func TestRenderingHelpers(t *testing.T) {
	fig, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	tbl := Fig6Table(fig)
	if tbl.NumRows() != Fig6Iterations {
		t.Errorf("Fig6Table rows = %d, want %d", tbl.NumRows(), Fig6Iterations)
	}
	cmp, err := Fig7a(quick())
	if err != nil {
		t.Fatal(err)
	}
	ct := ComparisonTable(cmp)
	if ct.NumRows() != len(cmp.X) {
		t.Errorf("ComparisonTable rows = %d, want %d", ct.NumRows(), len(cmp.X))
	}
	res, err := Fig1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tables := res.Tables()
	if len(tables) != 3 { // two sub-plots + efficiency summary
		t.Errorf("Fig1 tables = %d, want 3", len(tables))
	}
	for _, tb := range tables {
		if tb.NumRows() == 0 {
			t.Errorf("empty table %q", tb.Title)
		}
	}
}

func TestFigureGet(t *testing.T) {
	fig := &Figure{Series: []Series{{Label: "a"}, {Label: "b"}}}
	if fig.Get("b") == nil || fig.Get("missing") != nil {
		t.Error("Get misbehaves")
	}
}

func TestExtDeltaShapes(t *testing.T) {
	fig, err := ExtDelta(quick())
	if err != nil {
		t.Fatalf("ExtDelta: %v", err)
	}
	cost, evals := fig.Get("IDB cost"), fig.Get("deployments evaluated")
	if cost == nil || evals == nil {
		t.Fatal("missing series")
	}
	// The candidate count grows combinatorially with delta.
	for i := 1; i < len(evals.Y); i++ {
		if evals.Y[i] <= evals.Y[i-1] {
			t.Errorf("evaluations did not grow with delta: %.0f -> %.0f", evals.Y[i-1], evals.Y[i])
		}
	}
	// Quality moves only marginally: every delta within 5% of delta=1.
	for i, y := range cost.Y {
		if rel := math.Abs(y-cost.Y[0]) / cost.Y[0]; rel > 0.05 {
			t.Errorf("delta=%v cost %.4f deviates %.1f%% from delta=1's %.4f",
				fig.X[i], y, rel*100, cost.Y[0])
		}
	}
}

func TestSweepConfidenceIntervals(t *testing.T) {
	fig, err := Fig7a(Options{Quick: true, Seeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if len(s.CI95) != len(s.Y) {
			t.Fatalf("%s: CI length %d vs Y length %d", s.Label, len(s.CI95), len(s.Y))
		}
		for i, ci := range s.CI95 {
			if ci < 0 {
				t.Errorf("%s: negative CI at %d", s.Label, i)
			}
		}
	}
	tbl := ComparisonTable(fig)
	if !strings.Contains(tbl.String(), "±") {
		t.Errorf("multi-seed table should show ± intervals:\n%s", tbl.String())
	}
}

func TestExtSimValidationDeviationSmall(t *testing.T) {
	fig, err := ExtSimValidation(quick())
	if err != nil {
		t.Fatalf("ExtSimValidation: %v", err)
	}
	dev := fig.Get("deviation")
	if dev == nil || len(dev.Y) == 0 {
		t.Fatal("missing deviation series")
	}
	for i, d := range dev.Y {
		if math.Abs(d) > 5 {
			t.Errorf("instance %d: empirical deviates %.2f%% from analytic", i+1, d)
		}
	}
}

func TestExtFaultToleranceShapes(t *testing.T) {
	fig, err := ExtFaultTolerance(quick())
	if err != nil {
		t.Fatalf("ExtFaultTolerance: %v", err)
	}
	opt, uni := fig.Get("optimised deployment"), fig.Get("uniform deployment")
	if opt == nil || uni == nil {
		t.Fatal("missing series")
	}
	// No failures -> perfect delivery for both.
	if opt.Y[0] != 1 || uni.Y[0] != 1 {
		t.Errorf("failure-free delivery not perfect: opt=%.4f uni=%.4f", opt.Y[0], uni.Y[0])
	}
	// Delivery degrades (weakly) with the failure rate.
	last := len(fig.X) - 1
	if opt.Y[last] >= opt.Y[0] && uni.Y[last] >= uni.Y[0] {
		t.Error("neither deployment degraded under heavy failures")
	}
	for i, y := range opt.Y {
		if y < 0 || y > 1 || uni.Y[i] < 0 || uni.Y[i] > 1 {
			t.Errorf("delivery ratios out of range at %v", fig.X[i])
		}
	}
}

func TestExtRepairShapes(t *testing.T) {
	fig, err := ExtRepair(quick())
	if err != nil {
		t.Fatalf("ExtRepair: %v", err)
	}
	noRep, rep, spares := fig.Get("no repair"), fig.Get("online repair"), fig.Get("repair + spares")
	infl := fig.Get("repair cost inflation")
	if noRep == nil || rep == nil || spares == nil || infl == nil {
		t.Fatal("missing series")
	}
	// No failures: every policy delivers perfectly and the plan is never
	// touched.
	if noRep.Y[0] != 1 || rep.Y[0] != 1 || spares.Y[0] != 1 {
		t.Errorf("failure-free delivery not perfect: %.4f / %.4f / %.4f", noRep.Y[0], rep.Y[0], spares.Y[0])
	}
	if infl.Y[0] != 0 {
		t.Errorf("cost inflation %.2f%% without any failures", infl.Y[0])
	}
	// Under the heaviest failure rate, online repair must beat the static
	// tree: re-attached subtrees keep reporting where no-repair loses them
	// for the rest of the run.
	last := len(fig.X) - 1
	if rep.Y[last] <= noRep.Y[last] {
		t.Errorf("repair (%.4f) did not beat no-repair (%.4f) at rate %g",
			rep.Y[last], noRep.Y[last], fig.X[last])
	}
	for i := range fig.X {
		for _, s := range []*Series{noRep, rep, spares} {
			if s.Y[i] < 0 || s.Y[i] > 1 {
				t.Errorf("%s: delivery %.4f out of range at rate %g", s.Label, s.Y[i], fig.X[i])
			}
		}
	}
}
